package nbtrie

import (
	"math/rand"
	"testing"

	"nbtrie/internal/workload"
)

// TestCrossImplementationAgreement replays one deterministic workload
// stream sequentially through every implementation; since they all claim
// the same sequential set specification, every per-operation result and
// the final contents must agree pairwise across every registered
// implementation (the trie, the five baselines and the Morton-keyed
// spatial instantiation).
func TestCrossImplementationAgreement(t *testing.T) {
	const keyRange = 2048
	names := Implementations()
	mk := func() []Set {
		sets := make([]Set, len(names))
		for i, name := range names {
			s, err := NewSetWithWidth(name, 12)
			if err != nil {
				t.Fatal(err)
			}
			sets[i] = s
		}
		return sets
	}

	for seed := uint64(1); seed <= 3; seed++ {
		sets := mk()
		g := workload.NewGenerator(workload.MixI50D50, keyRange, seed)
		for i := 0; i < 30000; i++ {
			op := g.Next()
			var want bool
			for j, s := range sets {
				var got bool
				switch op.Kind {
				case workload.OpInsert:
					got = s.Insert(op.Key)
				case workload.OpDelete:
					got = s.Delete(op.Key)
				default:
					got = s.Contains(op.Key)
				}
				if j == 0 {
					want = got
				} else if got != want {
					t.Fatalf("seed %d op %d (%v %d): %s=%v but %s=%v",
						seed, i, op.Kind, op.Key, names[0], want, names[j], got)
				}
			}
		}
		for k := uint64(0); k < keyRange; k++ {
			want := sets[0].Contains(k)
			for j := 1; j < len(sets); j++ {
				if got := sets[j].Contains(k); got != want {
					t.Fatalf("seed %d final Contains(%d): %s=%v but %s=%v",
						seed, k, names[0], want, names[j], got)
				}
			}
		}
	}
}

// TestWorkloadMixesEndToEnd drives every paper mix through the Patricia
// trie with a per-key oracle, wiring workload generation, the replace
// path and the trie together.
func TestWorkloadMixesEndToEnd(t *testing.T) {
	mixes := []workload.Mix{
		workload.MixI5D5F90,
		workload.MixI50D50,
		workload.MixI15D15F70,
		workload.MixI10D10R80,
	}
	for _, mix := range mixes {
		p, err := NewPatriciaTrie(10)
		if err != nil {
			t.Fatal(err)
		}
		oracle := make(map[uint64]bool)
		g := workload.NewGenerator(mix, 1024, 99)
		for i := 0; i < 20000; i++ {
			op := g.Next()
			switch op.Kind {
			case workload.OpInsert:
				if got, want := p.Insert(op.Key), !oracle[op.Key]; got != want {
					t.Fatalf("mix %v: Insert(%d)=%v want %v", mix, op.Key, got, want)
				}
				oracle[op.Key] = true
			case workload.OpDelete:
				if got, want := p.Delete(op.Key), oracle[op.Key]; got != want {
					t.Fatalf("mix %v: Delete(%d)=%v want %v", mix, op.Key, got, want)
				}
				delete(oracle, op.Key)
			case workload.OpFind:
				if got, want := p.Contains(op.Key), oracle[op.Key]; got != want {
					t.Fatalf("mix %v: Contains(%d)=%v want %v", mix, op.Key, got, want)
				}
			case workload.OpReplace:
				want := oracle[op.Key] && !oracle[op.Key2] && op.Key != op.Key2
				if got := p.Replace(op.Key, op.Key2); got != want {
					t.Fatalf("mix %v: Replace(%d,%d)=%v want %v", mix, op.Key, op.Key2, got, want)
				}
				if want {
					delete(oracle, op.Key)
					oracle[op.Key2] = true
				}
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("mix %v: %v", mix, err)
		}
		if p.Size() != len(oracle) {
			t.Fatalf("mix %v: size %d, oracle %d", mix, p.Size(), len(oracle))
		}
	}
}

// TestOrderedQueriesUnderChurn interleaves ordered queries with random
// updates (single-threaded) and cross-checks them against a sorted
// oracle after every batch.
func TestOrderedQueriesUnderChurn(t *testing.T) {
	p, err := NewPatriciaTrie(10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	oracle := make(map[uint64]bool)
	for batch := 0; batch < 50; batch++ {
		for i := 0; i < 100; i++ {
			k := rng.Uint64() % 1024
			if rng.Intn(2) == 0 {
				p.Insert(k)
				oracle[k] = true
			} else {
				p.Delete(k)
				delete(oracle, k)
			}
		}
		var minK, maxK uint64
		var any bool
		for k := range oracle {
			if !any || k < minK {
				minK = k
			}
			if !any || k > maxK {
				maxK = k
			}
			any = true
		}
		gotMin, okMin := p.Min()
		gotMax, okMax := p.Max()
		if okMin != any || okMax != any || (any && (gotMin != minK || gotMax != maxK)) {
			t.Fatalf("batch %d: Min/Max = (%d,%v)/(%d,%v), oracle (%d/%d,%v)",
				batch, gotMin, okMin, gotMax, okMax, minK, maxK, any)
		}
	}
}

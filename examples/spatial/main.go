// Spatial index: the paper's GIS motivation for Replace. Points in the
// plane are stored as Morton (bit-interleaved) keys, which makes the
// Patricia trie a quadtree-like spatial index; moving an object is a
// single atomic Replace, so concurrent readers never observe a vehicle in
// two places or in none.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"nbtrie"
	"nbtrie/internal/keys"
)

// fleet tracks vehicles on a 2^15 x 2^15 grid; one Morton key per
// vehicle position (positions are kept unique by construction here).
type fleet struct {
	set *nbtrie.PatriciaTrie
}

func newFleet() (*fleet, error) {
	// 15+15 interleaved bits -> 30-bit Morton keys.
	set, err := nbtrie.NewPatriciaTrie(30)
	if err != nil {
		return nil, err
	}
	return &fleet{set: set}, nil
}

func key(x, y uint32) uint64 { return keys.Interleave2(x&0x7fff, y&0x7fff) }

func (f *fleet) park(x, y uint32) bool { return f.set.Insert(key(x, y)) }
func (f *fleet) at(x, y uint32) bool   { return f.set.Contains(key(x, y)) }

// move relocates a vehicle atomically; it fails (harmlessly) if the
// source is empty or the destination occupied.
func (f *fleet) move(fromX, fromY, toX, toY uint32) bool {
	return f.set.Replace(key(fromX, fromY), key(toX, toY))
}

func main() {
	f, err := newFleet()
	if err != nil {
		log.Fatal(err)
	}

	// Park a grid of vehicles at even coordinates.
	const n = 32
	for i := uint32(0); i < n; i++ {
		for j := uint32(0); j < n; j++ {
			f.park(2*i, 2*j)
		}
	}
	fmt.Println("vehicles parked:", f.set.Size())

	// Drivers jitter their vehicles concurrently; every move is atomic.
	var wg sync.WaitGroup
	var moves atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 5000; step++ {
				x := 2 * uint32(rng.Intn(n))
				y := 2 * uint32(rng.Intn(n))
				// Nudge to an odd cell and back: destinations at odd
				// coordinates cannot collide with parked vehicles.
				if f.move(x, y, x+1, y+1) {
					moves.Add(1)
					f.move(x+1, y+1, x, y)
				}
			}
		}(int64(w))
	}

	// A reader verifies conservation while everything is in motion: the
	// fleet size never changes because Replace is atomic.
	for i := 0; i < 20; i++ {
		if size := f.set.Size(); size != n*n {
			// Size() is a racy traversal, but with atomic moves a vehicle
			// is always somewhere; tolerate traversal skew silently and
			// rely on the final check below for the hard guarantee.
			_ = size
		}
	}
	wg.Wait()

	fmt.Println("successful atomic moves:", moves.Load())
	fmt.Println("fleet size after churn:", f.set.Size(), "(must equal", n*n, ")")
	fmt.Println("vehicle at (0,0):", f.at(0, 0))
}

// Spatial index: the paper's GIS motivation for Replace, on the public
// SpatialMap API. Points in the plane are stored under Morton
// (bit-interleaved) keys, which makes the Patricia trie a quadtree-like
// spatial index; moving an object is a single atomic Move (the paper's
// Replace), so concurrent readers never observe a vehicle in two places
// or in none, and axis-aligned rectangle queries are pruned Z-order
// range scans (InRect).
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"nbtrie"
)

func main() {
	// One entry per vehicle position, carrying the vehicle's ID. The
	// map covers the full uint32 x uint32 plane; this demo parks a
	// fleet on a small grid at even coordinates.
	fleet := nbtrie.NewSpatialMap[string]()
	const n = 32
	for i := uint32(0); i < n; i++ {
		for j := uint32(0); j < n; j++ {
			fleet.Store(2*i, 2*j, fmt.Sprintf("car-%d-%d", i, j))
		}
	}
	fmt.Println("vehicles parked:", fleet.Len())

	// Drivers jitter their vehicles concurrently; every move is atomic
	// and the vehicle's ID travels with it.
	var wg sync.WaitGroup
	var moves atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 5000; step++ {
				x := 2 * uint32(rng.Intn(n))
				y := 2 * uint32(rng.Intn(n))
				// Nudge to an odd cell and back: destinations at odd
				// coordinates cannot collide with parked vehicles.
				if fleet.Move(nbtrie.Point{X: x, Y: y}, nbtrie.Point{X: x + 1, Y: y + 1}) {
					moves.Add(1)
					fleet.Move(nbtrie.Point{X: x + 1, Y: y + 1}, nbtrie.Point{X: x, Y: y})
				}
			}
		}(int64(w))
	}
	wg.Wait()

	fmt.Println("successful atomic moves:", moves.Load())
	fmt.Println("fleet size after churn:", fleet.Len(), "(must equal", n*n, ")")

	// Rectangle query: who is parked in the 8x8 corner block? The scan
	// walks one Morton-code interval with subtree pruning.
	corner := 0
	for range fleet.InRect(nbtrie.Point{X: 0, Y: 0}, nbtrie.Point{X: 7, Y: 7}) {
		corner++
	}
	fmt.Println("vehicles in [0,7]x[0,7]:", corner, "(must equal 16)")

	if id, ok := fleet.Load(0, 0); ok {
		fmt.Println("vehicle at (0,0):", id)
	}
}

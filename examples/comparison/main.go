// Comparison: drives every registered set implementation — the paper's
// six plus the spatial and sharded engine instantiations — through the
// same mixed workload and prints a small throughput table: a miniature,
// single-shot version of what cmd/benchtrie measures rigorously.
package main

import (
	"fmt"
	"log"
	"time"

	"nbtrie"
	"nbtrie/internal/bench"
	"nbtrie/internal/workload"
)

func main() {
	// The registry enumerates every implementation — no hard-coded list.
	type impl struct {
		name    string
		replace nbtrie.ReplaceScope
		fanout  int
		mk      func() bench.Set
	}
	// Width 17 is the smallest covering the key range below — minimal on
	// purpose: the sharded front-end (PAT-S) routes on the top key bits,
	// so slack width would funnel every key into its first shard.
	var impls []impl
	for _, im := range nbtrie.AllImplementations() {
		impls = append(impls, impl{im.Legend, im.Replace, im.Fanout, func() bench.Set {
			s, err := im.New(17)
			if err != nil {
				log.Fatal(err)
			}
			return s
		}})
	}

	cfg := bench.Config{
		Mix:      workload.MixI15D15F70,
		KeyRange: 100_000,
		Threads:  4,
		Duration: 300 * time.Millisecond,
		Trials:   3,
		Warmup:   50 * time.Millisecond,
		Seed:     1,
	}
	fmt.Printf("workload %v, key range %d, %d goroutines, %d trials x %v\n\n",
		cfg.Mix, cfg.KeyRange, cfg.Threads, cfg.Trials, cfg.Duration)
	fmt.Printf("%-6s %6s %14s %8s  %s\n", "impl", "fanout", "mean ops/s", "±stddev", "replace")

	for _, im := range impls {
		sum, err := bench.RunExperiment(im.mk, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %6d %14.0f %7.1f%%  %s\n", im.name, im.fanout, sum.Mean, 100*sum.RelStddev(), im.replace)
	}
}

// Comparison: drives the paper's six set implementations through the
// same mixed workload and prints a small throughput table — a miniature,
// single-shot version of what cmd/benchtrie measures rigorously.
package main

import (
	"fmt"
	"log"
	"time"

	"nbtrie"
	"nbtrie/internal/bench"
	"nbtrie/internal/workload"
)

func main() {
	impls := []struct {
		name string
		mk   func() bench.Set
	}{
		{"PAT", func() bench.Set {
			p, err := nbtrie.NewPatriciaTrie(20)
			if err != nil {
				log.Fatal(err)
			}
			return p
		}},
		{"4-ST", func() bench.Set { return nbtrie.NewKST(4) }},
		{"BST", func() bench.Set { return nbtrie.NewBST() }},
		{"AVL", func() bench.Set { return nbtrie.NewAVL() }},
		{"SL", func() bench.Set { return nbtrie.NewSkipList() }},
		{"Ctrie", func() bench.Set { return nbtrie.NewCtrie() }},
	}

	cfg := bench.Config{
		Mix:      workload.MixI15D15F70,
		KeyRange: 100_000,
		Threads:  4,
		Duration: 300 * time.Millisecond,
		Trials:   3,
		Warmup:   50 * time.Millisecond,
		Seed:     1,
	}
	fmt.Printf("workload %v, key range %d, %d goroutines, %d trials x %v\n\n",
		cfg.Mix, cfg.KeyRange, cfg.Threads, cfg.Trials, cfg.Duration)
	fmt.Printf("%-6s %14s %8s\n", "impl", "mean ops/s", "±stddev")

	for _, im := range impls {
		sum, err := bench.RunExperiment(im.mk, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %14.0f %7.1f%%\n", im.name, sum.Mean, 100*sum.RelStddev())
	}
}

// Priority queue: the paper's second motivation for Replace. Tasks are
// encoded as (priority << idBits) | id keys, so trie order is priority
// order and changing a task's priority is one atomic Replace — readers
// never see the task vanish or exist at two priorities.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"nbtrie"
)

const (
	idBits   = 20
	prioBits = 10
)

// taskQueue is a concurrent priority queue over the trie's ordered key
// space.
type taskQueue struct {
	set *nbtrie.PatriciaTrie
}

func newTaskQueue() (*taskQueue, error) {
	set, err := nbtrie.NewPatriciaTrie(prioBits + idBits)
	if err != nil {
		return nil, err
	}
	return &taskQueue{set: set}, nil
}

func enc(prio uint32, id uint32) uint64 {
	return uint64(prio)<<idBits | uint64(id)
}

func dec(k uint64) (prio uint32, id uint32) {
	return uint32(k >> idBits), uint32(k & (1<<idBits - 1))
}

func (q *taskQueue) add(prio, id uint32) bool { return q.set.Insert(enc(prio, id)) }

// reprioritize changes a task's priority atomically.
func (q *taskQueue) reprioritize(id uint32, from, to uint32) bool {
	return q.set.Replace(enc(from, id), enc(to, id))
}

// popMin removes and returns the highest-priority (lowest key) task.
func (q *taskQueue) popMin() (prio, id uint32, ok bool) {
	for {
		k, found := q.set.Min()
		if !found {
			return 0, 0, false
		}
		if q.set.Delete(k) { // may race with another popper; retry if lost
			p, i := dec(k)
			return p, i, true
		}
	}
}

func main() {
	q, err := newTaskQueue()
	if err != nil {
		log.Fatal(err)
	}

	// Seed 1000 tasks at random priorities, remembering each task's
	// current priority so the booster issues well-formed replaces.
	prios := make([]uint32, 1000)
	for id := uint32(0); id < 1000; id++ {
		prios[id] = uint32(rand.Intn(512) + 256)
		q.add(prios[id], id)
	}

	// A booster promotes random tasks while workers drain the queue. A
	// boost that loses the race to a worker (task already popped) simply
	// fails — atomically, with no half-applied state.
	var wg sync.WaitGroup
	halfway := make(chan struct{}) // gate the workers so boosts visibly race
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		boosted := 0
		for attempt := 0; attempt < 2000; attempt++ {
			if attempt == 1000 {
				close(halfway)
			}
			id := uint32(rng.Intn(1000))
			to := uint32(rng.Intn(256)) // strictly better priority band
			if q.reprioritize(id, prios[id], to) {
				prios[id] = to
				boosted++
			}
		}
		fmt.Println("boost attempts that won the race:", boosted)
	}()
	<-halfway

	drained := make([][]uint32, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				prio, _, ok := q.popMin()
				if !ok {
					return
				}
				drained[w] = append(drained[w], prio)
			}
		}(w)
	}
	wg.Wait()

	total := 0
	for _, d := range drained {
		total += len(d)
	}
	fmt.Println("tasks drained:", total, "(must be 1000)")
	// Each worker individually pops in non-strictly-decreasing urgency
	// except where boosts interleave; global conservation is the
	// invariant we assert.
	if total != 1000 {
		log.Fatal("task conservation violated")
	}
	fmt.Println("queue empty:", q.set.Size() == 0)
}

// KV store: the value-bearing map layer in action. A Map[V] is a
// linearizable uint64 → V map with wait-free reads, sync.Map-style
// conditional updates, the paper's atomic ReplaceKey, and ordered
// iteration — here used as a tiny session store where renumbering a
// session (ReplaceKey) never loses its data, and CompareAndSwap
// implements optimistic concurrency on the values.
package main

import (
	"fmt"
	"log"
	"sync"

	"nbtrie"
)

type session struct {
	User string
	Hits int
}

func main() {
	store, err := nbtrie.NewMap[session](20)
	if err != nil {
		log.Fatal(err)
	}

	// Plain upserts and wait-free reads.
	store.Store(1001, session{User: "ada", Hits: 1})
	store.Store(1002, session{User: "grace", Hits: 1})
	if s, ok := store.Load(1001); ok {
		fmt.Println("session 1001:", s.User)
	}

	// LoadOrStore: first writer wins, everyone agrees on the winner.
	if s, loaded, _ := store.LoadOrStore(1001, session{User: "eve"}); loaded {
		fmt.Println("1001 already taken by:", s.User)
	}

	// Optimistic concurrency: bump the hit counter via CompareAndSwap.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				for {
					old, ok := store.Load(1002)
					if !ok {
						return
					}
					upd := old
					upd.Hits++
					if store.CompareAndSwap(1002, old, upd) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	s, _ := store.Load(1002)
	fmt.Println("session 1002 hits:", s.Hits) // 1 + 4*250

	// Atomic renumbering: the session's value travels with the key; no
	// reader ever sees the session at two ids or at none.
	if store.ReplaceKey(1002, 2002) {
		moved, _ := store.Load(2002)
		fmt.Println("moved to 2002, user:", moved.User)
	}

	// Ordered iteration over the live sessions.
	for id, s := range store.All() {
		fmt.Printf("id %d -> %s (%d hits)\n", id, s.User, s.Hits)
	}
}

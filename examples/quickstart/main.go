// Quickstart: the Patricia trie as a concurrent set, exercised from many
// goroutines, including the atomic Replace operation no ordinary
// insert+delete pair can express.
package main

import (
	"fmt"
	"log"
	"sync"

	"nbtrie"
)

func main() {
	// A trie over keys in [0, 2^20).
	set, err := nbtrie.NewPatriciaTrie(20)
	if err != nil {
		log.Fatal(err)
	}

	// Single-threaded basics.
	set.Insert(42)
	set.Insert(7)
	fmt.Println("contains 42:", set.Contains(42))   // true
	fmt.Println("contains 99:", set.Contains(99))   // false
	fmt.Println("insert 42 again:", set.Insert(42)) // false: already present

	// Replace moves an element atomically: at no instant is the set
	// missing both keys or holding both.
	ok := set.Replace(42, 43)
	fmt.Println("replace 42 -> 43:", ok, "| 42:", set.Contains(42), "| 43:", set.Contains(43))

	// All operations are safe from any number of goroutines, no locks.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				set.Insert(base + i)
			}
		}(1000 + 1000*uint64(g))
	}
	wg.Wait()

	fmt.Println("size after concurrent inserts:", set.Size())
	keys := set.Keys()
	fmt.Println("first keys in order:", keys[:5])
}

// Dictionary: the Section VI extension in action. A concurrent set of
// variable-length string keys (think routing tables, symbol tables,
// itemset mining — the Patricia trie applications the paper's intro
// cites) with atomic rename via Replace.
package main

import (
	"fmt"
	"sync"

	"nbtrie"
)

func main() {
	dict := nbtrie.NewStringTrie()

	// Words of any length coexist, including prefixes of each other.
	words := []string{
		"go", "gopher", "gophers", "concurrency", "trie", "patricia",
		"cas", "lock-free", "wait-free", "linearizable",
	}
	for _, w := range words {
		dict.Insert([]byte(w))
	}
	fmt.Println("words stored:", dict.Size())
	fmt.Println(`contains "gopher":`, dict.Contains([]byte("gopher")))
	fmt.Println(`contains "goph":`, dict.Contains([]byte("goph"))) // prefix ≠ member

	// Atomic rename: no reader ever sees both spellings or neither.
	dict.Replace([]byte("cas"), []byte("compare-and-swap"))
	fmt.Println(`after rename, "cas":`, dict.Contains([]byte("cas")),
		`"compare-and-swap":`, dict.Contains([]byte("compare-and-swap")))

	// Concurrent writers on disjoint namespaces.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				dict.Insert([]byte(fmt.Sprintf("ns%d/key-%04d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	fmt.Println("words after concurrent inserts:", dict.Size())

	got := dict.Keys()
	fmt.Println("first three in trie order:", string(got[0]), string(got[1]), string(got[2]))
}

module nbtrie

go 1.24

package nbtrie

import (
	"strings"
	"testing"

	"nbtrie/internal/settest"
)

// Every implementation exposed by the public API runs the same
// conformance battery (each internal package also runs it white-box).
// The list comes from the registry: registering an implementation is
// enough to put it under test.

// widthForRange returns a trie width that covers [0, keyRange] with a
// bit of slack for boundary probes.
func widthForRange(keyRange uint64) uint32 {
	width := uint32(1)
	for keyRange > 1<<width {
		width++
	}
	return width + 1
}

func TestConformanceAllImplementations(t *testing.T) {
	for _, name := range Implementations() {
		t.Run(name, func(t *testing.T) {
			settest.Run(t, func(keyRange uint64) settest.Set {
				s, err := NewSetWithWidth(name, widthForRange(keyRange))
				if err != nil {
					t.Fatalf("NewSetWithWidth(%q): %v", name, err)
				}
				return s
			})
		})
	}
}

func TestRegistry(t *testing.T) {
	names := Implementations()
	if len(names) != 9 || names[0] != "patricia" {
		t.Fatalf("Implementations() = %v; want the trie, five baselines and the extra engine instantiations, trie first", names)
	}
	if names[len(names)-3] != "spatial" || names[len(names)-2] != "sharded" || names[len(names)-1] != "karypatricia" {
		t.Fatalf("Implementations() = %v; spatial, sharded, karypatricia should close the registry", names)
	}
	for _, name := range names {
		if im, _ := LookupImplementation(name); im.Fanout < 2 {
			t.Fatalf("%s Fanout = %d, want >= 2", name, im.Fanout)
		}
	}
	if im, _ := LookupImplementation("karypatricia"); im.Fanout != 1<<KarySpan || im.Replace != ReplaceFull || !im.WaitFreeRead {
		t.Fatalf("karypatricia descriptor wrong: %+v", im)
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate registry name %q", name)
		}
		seen[name] = true
		im, ok := LookupImplementation(name)
		if !ok || im.Name != name || im.Legend == "" || im.Description == "" {
			t.Fatalf("LookupImplementation(%q) = %+v, %v", name, im, ok)
		}
		s, err := NewSet(name)
		if err != nil || s == nil {
			t.Fatalf("NewSet(%q): %v", name, err)
		}
		if !s.Insert(7) || !s.Contains(7) || !s.Delete(7) {
			t.Fatalf("NewSet(%q) produced a broken set", name)
		}
		// The structured replace capability must match the set surface:
		// exactly the ReplaceFull entries satisfy ReplaceSet. A per-shard
		// replace must NOT leak through the full-key-space interface.
		if _, isReplace := s.(ReplaceSet); (im.Replace == ReplaceFull) != isReplace {
			t.Fatalf("%q: ReplaceScope=%v but ReplaceSet assertion=%v", name, im.Replace, isReplace)
		}
	}
	if im, _ := LookupImplementation("sharded"); im.Replace != ReplacePerShard {
		t.Fatalf("sharded ReplaceScope = %v, want ReplacePerShard", im.Replace)
	}
	for _, scope := range []ReplaceScope{ReplaceNone, ReplaceFull, ReplacePerShard} {
		if scope.String() == "" || strings.HasPrefix(scope.String(), "ReplaceScope(") {
			t.Errorf("ReplaceScope(%d).String() = %q", scope, scope)
		}
	}
	// AllImplementations mirrors Implementations in order and content,
	// and hands out copies (mutating one must not poison the registry).
	impls := AllImplementations()
	if len(impls) != len(names) {
		t.Fatalf("AllImplementations() has %d entries, Implementations() %d", len(impls), len(names))
	}
	for i, im := range impls {
		if im.Name != names[i] {
			t.Errorf("AllImplementations()[%d] = %q, want %q", i, im.Name, names[i])
		}
	}
	impls[0].Name = "clobbered"
	if Implementations()[0] != "patricia" {
		t.Error("AllImplementations must return a copy")
	}

	// Legend labels resolve too, case-insensitively.
	if im, ok := LookupImplementation("pat"); !ok || im.Name != "patricia" {
		t.Errorf(`LookupImplementation("pat") = %+v, %v`, im, ok)
	}
	if _, ok := LookupImplementation("nope"); ok {
		t.Error("unknown name must not resolve")
	}
	if _, err := NewSet("nope"); err == nil {
		t.Error("NewSet with unknown name must error")
	}
}

func TestPatriciaTrieExtras(t *testing.T) {
	p, err := NewPatriciaTrie(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{5, 1, 9} {
		p.Insert(k)
	}
	if got := p.Keys(); len(got) != 3 || got[0] != 1 || got[2] != 9 {
		t.Errorf("Keys() = %v", got)
	}
	if p.Size() != 3 {
		t.Errorf("Size() = %d", p.Size())
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if p.Width() != 16 {
		t.Errorf("Width() = %d", p.Width())
	}
	if p.Dump() == "" {
		t.Error("Dump() empty")
	}
	if !p.Replace(5, 6) || p.Contains(5) || !p.Contains(6) {
		t.Error("Replace through the facade broken")
	}
	n := 0
	p.Range(func(uint64) bool { n++; return true })
	if n != 3 {
		t.Errorf("Range visited %d keys, want 3", n)
	}
	if k, ok := p.Min(); !ok || k != 1 {
		t.Errorf("Min = %d,%v", k, ok)
	}
	if k, ok := p.Max(); !ok || k != 9 {
		t.Errorf("Max = %d,%v", k, ok)
	}
	if k, ok := p.Ceiling(2); !ok || k != 6 {
		t.Errorf("Ceiling(2) = %d,%v", k, ok)
	}
	if k, ok := p.Floor(8); !ok || k != 6 {
		t.Errorf("Floor(8) = %d,%v", k, ok)
	}
}

func TestNoReplaceVariant(t *testing.T) {
	p, err := NewPatriciaTrieNoReplace(16)
	if err != nil {
		t.Fatal(err)
	}
	p.Insert(7)
	if !p.Contains(7) {
		t.Error("basic ops broken on no-replace trie")
	}
	defer func() {
		if recover() == nil {
			t.Error("Replace should panic on the no-replace variant")
		}
	}()
	p.Replace(7, 8)
}

func TestStringTrieFacade(t *testing.T) {
	s := NewStringTrie()
	if !s.Insert([]byte("alpha")) || s.Insert([]byte("alpha")) {
		t.Error("Insert semantics broken")
	}
	if !s.Contains([]byte("alpha")) || s.Contains([]byte("alp")) {
		t.Error("Contains semantics broken")
	}
	if !s.Replace([]byte("alpha"), []byte("beta")) {
		t.Error("Replace failed")
	}
	if s.Contains([]byte("alpha")) || !s.Contains([]byte("beta")) {
		t.Error("Replace left wrong state")
	}
	if !s.Delete([]byte("beta")) || s.Delete([]byte("beta")) {
		t.Error("Delete semantics broken")
	}
	s.Insert([]byte("k1"))
	s.Insert([]byte("k2"))
	if s.Size() != 2 || len(s.Keys()) != 2 {
		t.Error("Size/Keys broken")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewPatriciaTrie(0); err == nil {
		t.Error("width 0 should be rejected")
	}
	if _, err := NewPatriciaTrie(64); err == nil {
		t.Error("width 64 should be rejected")
	}
}

package nbtrie

import (
	"testing"

	"nbtrie/internal/settest"
)

// Every implementation exposed by the public API runs the same
// conformance battery (each internal package also runs it white-box).

func patFactory(t *testing.T) settest.Factory {
	t.Helper()
	return func(keyRange uint64) settest.Set {
		width := uint32(1)
		for keyRange > 1<<width {
			width++
		}
		p, err := NewPatriciaTrie(width + 1)
		if err != nil {
			t.Fatalf("NewPatriciaTrie: %v", err)
		}
		return p
	}
}

func TestPatriciaTrieConformance(t *testing.T) {
	settest.Run(t, patFactory(t))
}

func TestBSTConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return NewBST() })
}

func TestKSTConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return NewKST(4) })
}

func TestSkipListConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return NewSkipList() })
}

func TestAVLConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return NewAVL() })
}

func TestCtrieConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return NewCtrie() })
}

func TestPatriciaTrieExtras(t *testing.T) {
	p, err := NewPatriciaTrie(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{5, 1, 9} {
		p.Insert(k)
	}
	if got := p.Keys(); len(got) != 3 || got[0] != 1 || got[2] != 9 {
		t.Errorf("Keys() = %v", got)
	}
	if p.Size() != 3 {
		t.Errorf("Size() = %d", p.Size())
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if p.Width() != 16 {
		t.Errorf("Width() = %d", p.Width())
	}
	if p.Dump() == "" {
		t.Error("Dump() empty")
	}
	if !p.Replace(5, 6) || p.Contains(5) || !p.Contains(6) {
		t.Error("Replace through the facade broken")
	}
	n := 0
	p.Range(func(uint64) bool { n++; return true })
	if n != 3 {
		t.Errorf("Range visited %d keys, want 3", n)
	}
	if k, ok := p.Min(); !ok || k != 1 {
		t.Errorf("Min = %d,%v", k, ok)
	}
	if k, ok := p.Max(); !ok || k != 9 {
		t.Errorf("Max = %d,%v", k, ok)
	}
	if k, ok := p.Ceiling(2); !ok || k != 6 {
		t.Errorf("Ceiling(2) = %d,%v", k, ok)
	}
	if k, ok := p.Floor(8); !ok || k != 6 {
		t.Errorf("Floor(8) = %d,%v", k, ok)
	}
}

func TestNoReplaceVariant(t *testing.T) {
	p, err := NewPatriciaTrieNoReplace(16)
	if err != nil {
		t.Fatal(err)
	}
	p.Insert(7)
	if !p.Contains(7) {
		t.Error("basic ops broken on no-replace trie")
	}
	defer func() {
		if recover() == nil {
			t.Error("Replace should panic on the no-replace variant")
		}
	}()
	p.Replace(7, 8)
}

func TestStringTrieFacade(t *testing.T) {
	s := NewStringTrie()
	if !s.Insert([]byte("alpha")) || s.Insert([]byte("alpha")) {
		t.Error("Insert semantics broken")
	}
	if !s.Contains([]byte("alpha")) || s.Contains([]byte("alp")) {
		t.Error("Contains semantics broken")
	}
	if !s.Replace([]byte("alpha"), []byte("beta")) {
		t.Error("Replace failed")
	}
	if s.Contains([]byte("alpha")) || !s.Contains([]byte("beta")) {
		t.Error("Replace left wrong state")
	}
	if !s.Delete([]byte("beta")) || s.Delete([]byte("beta")) {
		t.Error("Delete semantics broken")
	}
	s.Insert([]byte("k1"))
	s.Insert([]byte("k2"))
	if s.Size() != 2 || len(s.Keys()) != 2 {
		t.Error("Size/Keys broken")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewPatriciaTrie(0); err == nil {
		t.Error("width 0 should be rejected")
	}
	if _, err := NewPatriciaTrie(64); err == nil {
		t.Error("width 64 should be rejected")
	}
}

package nbtrie

import (
	"iter"

	"nbtrie/internal/spatial"
)

// Point is a position in the 2^32 × 2^32 integer plane indexed by
// SpatialMap.
type Point struct {
	X, Y uint32
}

// SpatialMap is a linearizable concurrent spatial index: a map from
// points in the plane to values of type V, backed by the Morton-keyed
// instantiation of the same non-blocking Patricia-trie engine as Map
// and StringMap. Points are keyed by their Z-order (bit-interleaved)
// Morton codes, which makes the trie a quadtree-like index: nearby
// points share long key prefixes, and axis-aligned rectangle queries
// become pruned range scans over one code interval.
//
// Load and Contains are wait-free and allocation-free (Morton keys are
// fixed 65-bit strings, so the fixed-width read guarantee carries
// over); every mutation is lock-free. Move is the paper's atomic
// Replace on Z-order keys — the exact GIS scenario the paper motivates
// Replace with: relocating an object is one linearizable step, so
// concurrent readers never observe it at two positions or at none.
//
// CompareAndSwap and CompareAndDelete compare values with Go's ==, like
// sync.Map: they panic if the values are not comparable.
type SpatialMap[V any] struct {
	t *spatial.Trie[V]
}

// NewSpatialMap returns an empty spatial map covering the full
// uint32 × uint32 plane (no width parameter: the Morton key space is
// fixed at 64 bits).
func NewSpatialMap[V any]() *SpatialMap[V] {
	return &SpatialMap[V]{t: spatial.New[V]()}
}

// Load returns the value stored at (x, y). Wait-free: a bounded number
// of child-pointer reads, no CAS, no allocation.
func (m *SpatialMap[V]) Load(x, y uint32) (V, bool) { return m.t.Load(x, y) }

// Store binds (x, y) to val, inserting or overwriting (lock-free
// upsert).
func (m *SpatialMap[V]) Store(x, y uint32, val V) { m.t.Store(x, y, val) }

// LoadOrStore returns the value at (x, y) if present (loaded true);
// otherwise it stores val and returns it (loaded false).
func (m *SpatialMap[V]) LoadOrStore(x, y uint32, val V) (actual V, loaded bool) {
	return m.t.LoadOrStore(x, y, val)
}

// Delete removes the point at (x, y); false iff nothing was stored
// there.
func (m *SpatialMap[V]) Delete(x, y uint32) bool { return m.t.Delete(x, y) }

// Contains reports whether a point is stored at (x, y), wait-free and
// without allocating.
func (m *SpatialMap[V]) Contains(x, y uint32) bool { return m.t.Contains(x, y) }

// CompareAndSwap swaps the value at (x, y) from old to new if the stored
// value equals old (==; panics if the values are not comparable).
func (m *SpatialMap[V]) CompareAndSwap(x, y uint32, old, new V) bool {
	return m.t.CompareAndSwap(x, y, old, new)
}

// CompareAndDelete removes the point at (x, y) if its value equals old
// (==; panics if the values are not comparable).
func (m *SpatialMap[V]) CompareAndDelete(x, y uint32, old V) bool {
	return m.t.CompareAndDelete(x, y, old)
}

// Move atomically relocates the point at old to new, carrying its
// value: both the removal and the insertion become visible at a single
// linearization point. It returns true iff old held a point, new was
// free and the positions differ; otherwise the map is unchanged. This is
// the paper's Replace operation lifted to the plane.
func (m *SpatialMap[V]) Move(old, new Point) bool {
	return m.t.Move(old.X, old.Y, new.X, new.Y)
}

// Len returns the number of stored points, read from an atomic counter:
// O(1), allocation-free, exact at quiescence, and at most the number of
// in-flight mutations stale under concurrency (see Map.Len).
func (m *SpatialMap[V]) Len() int { return m.t.Len() }

// All iterates over every stored point in Z-order (Morton-code order).
// The sequence is read-only and safe under concurrent updates: points
// present for the whole iteration are always yielded, concurrent changes
// may or may not be observed (the Range contract as a Go iterator).
func (m *SpatialMap[V]) All() iter.Seq2[Point, V] {
	return func(yield func(Point, V) bool) {
		m.t.AscendMorton(0, func(_ uint64, x, y uint32, val V) bool {
			return yield(Point{X: x, Y: y}, val)
		})
	}
}

// InRect iterates over the stored points inside the axis-aligned
// rectangle [min.X, max.X] × [min.Y, max.Y] (inclusive), in Z-order. An
// empty rectangle (min exceeding max on either axis) yields nothing.
// The walk scans one Morton-code interval with subtree pruning and
// filters out the interval's out-of-rectangle points; same consistency
// contract as All.
func (m *SpatialMap[V]) InRect(min, max Point) iter.Seq2[Point, V] {
	return func(yield func(Point, V) bool) {
		m.t.InRect(min.X, min.Y, max.X, max.Y, func(x, y uint32, val V) bool {
			return yield(Point{X: x, Y: y}, val)
		})
	}
}

// Validate checks the structural invariants (tests/diagnostics;
// quiescent use only).
func (m *SpatialMap[V]) Validate() error { return m.t.Validate() }

// spatialSet adapts the Morton-keyed trie to the registry's Set
// interface: the uint64 key is the raw Morton code, so the adapter is a
// bijection and inherits the trie's exact set semantics (including
// atomic Replace).
type spatialSet struct {
	t *spatial.Trie[struct{}]
}

var _ ReplaceSet = spatialSet{}

func (s spatialSet) Insert(k uint64) bool         { return s.t.InsertCode(k) }
func (s spatialSet) Delete(k uint64) bool         { return s.t.DeleteCode(k) }
func (s spatialSet) Contains(k uint64) bool       { return s.t.ContainsCode(k) }
func (s spatialSet) Replace(old, new uint64) bool { return s.t.ReplaceCode(old, new) }

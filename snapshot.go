package nbtrie

import (
	"iter"

	"nbtrie/internal/core"
	"nbtrie/internal/sharded"
	"nbtrie/internal/spatial"
	"nbtrie/internal/strtrie"
)

// O(1) point-in-time snapshots, surfaced from the engine's
// generation-stamp protocol (DESIGN.md §9). A snapshot is a frozen,
// read-only view of a map at one instant: taking it costs O(1) time and
// allocation regardless of map size (O(shards) for ShardedMap), reading
// it never blocks or is blocked by live-map updates, and iterating it is
// a true consistent cut — unlike the live maps' All/Ascend, which only
// promise best-effort consistency under concurrent mutation.
//
// Snapshots share structure with the live map; memory for the shared
// parts is reclaimed by the garbage collector once both the snapshot and
// the live map have let go of them (drop the snapshot when done, there
// is no Close).

// MapSnapshot is a frozen point-in-time view of a Map.
type MapSnapshot[V any] struct {
	s *core.Snapshot[V]
}

// Snapshot returns a read-only view of the map at the moment of the
// call, in O(1) time and allocation independent of the map's size. The
// call briefly quiesces mutators (it waits for in-flight operations to
// finish, a bound set by individual lock-free operations, not by map
// size); afterwards mutators copy-on-write diverged paths and the
// snapshot stays frozen.
func (m *Map[V]) Snapshot() *MapSnapshot[V] {
	return &MapSnapshot[V]{s: m.t.Snapshot()}
}

// Load returns the value bound to k at the snapshot point. Wait-free,
// allocation-free, like Map.Load.
func (s *MapSnapshot[V]) Load(k uint64) (V, bool) { return s.s.Load(k) }

// Contains reports whether k had a binding at the snapshot point.
func (s *MapSnapshot[V]) Contains(k uint64) bool { return s.s.Contains(k) }

// Len returns the number of entries at the snapshot point. Exact: the
// count is captured with no mutation in flight.
func (s *MapSnapshot[V]) Len() int { return s.s.Len() }

// All iterates over the snapshot's entries in increasing key order — a
// consistent cut, unlike Map.All.
func (s *MapSnapshot[V]) All() iter.Seq2[uint64, V] { return s.Ascend(0) }

// Ascend iterates over the snapshot's entries with key >= from, in
// increasing key order.
func (s *MapSnapshot[V]) Ascend(from uint64) iter.Seq2[uint64, V] {
	return func(yield func(uint64, V) bool) {
		s.s.AscendKV(from, yield)
	}
}

// StringMapSnapshot is a frozen point-in-time view of a StringMap.
type StringMapSnapshot[V any] struct {
	s *strtrie.Snapshot[V]
}

// Snapshot returns a read-only view of the map at the moment of the
// call, in O(1) time and allocation independent of the map's size (see
// Map.Snapshot for the contract).
func (m *StringMap[V]) Snapshot() *StringMapSnapshot[V] {
	return &StringMapSnapshot[V]{s: m.t.Snapshot()}
}

// Load returns the value bound to k at the snapshot point.
func (s *StringMapSnapshot[V]) Load(k []byte) (V, bool) { return s.s.Load(k) }

// Contains reports whether k had a binding at the snapshot point.
func (s *StringMapSnapshot[V]) Contains(k []byte) bool { return s.s.Contains(k) }

// Len returns the number of entries at the snapshot point (exact).
func (s *StringMapSnapshot[V]) Len() int { return s.s.Len() }

// All iterates over the snapshot's entries in encoded-key order — a
// consistent cut, unlike StringMap.All.
func (s *StringMapSnapshot[V]) All() iter.Seq2[[]byte, V] {
	return func(yield func([]byte, V) bool) {
		s.s.AllKV(yield)
	}
}

// Ascend iterates over the snapshot's entries whose key sorts at or
// after from in encoded-key order; from must be non-empty.
func (s *StringMapSnapshot[V]) Ascend(from []byte) iter.Seq2[[]byte, V] {
	return func(yield func([]byte, V) bool) {
		s.s.AscendKV(from, yield)
	}
}

// SpatialMapSnapshot is a frozen point-in-time view of a SpatialMap.
type SpatialMapSnapshot[V any] struct {
	s *spatial.Snapshot[V]
}

// Snapshot returns a read-only view of the spatial map at the moment of
// the call, in O(1) time and allocation independent of the map's size
// (see Map.Snapshot for the contract). Because the view is frozen, a
// rectangle query over it never observes a concurrently Moved point at
// two positions or at none — the live map already guarantees that per
// lookup, the snapshot extends it to whole scans.
func (m *SpatialMap[V]) Snapshot() *SpatialMapSnapshot[V] {
	return &SpatialMapSnapshot[V]{s: m.t.Snapshot()}
}

// Load returns the value stored at (x, y) at the snapshot point.
func (s *SpatialMapSnapshot[V]) Load(x, y uint32) (V, bool) { return s.s.Load(x, y) }

// Contains reports whether a point was stored at (x, y) at the snapshot
// point.
func (s *SpatialMapSnapshot[V]) Contains(x, y uint32) bool { return s.s.Contains(x, y) }

// Len returns the number of stored points at the snapshot point (exact).
func (s *SpatialMapSnapshot[V]) Len() int { return s.s.Len() }

// All iterates over the snapshot's points in Z-order — a consistent
// cut, unlike SpatialMap.All.
func (s *SpatialMapSnapshot[V]) All() iter.Seq2[Point, V] {
	return func(yield func(Point, V) bool) {
		s.s.AscendMorton(0, func(_ uint64, x, y uint32, val V) bool {
			return yield(Point{X: x, Y: y}, val)
		})
	}
}

// InRect iterates over the snapshot's points inside the axis-aligned
// rectangle [min.X, max.X] × [min.Y, max.Y] (inclusive), in Z-order.
func (s *SpatialMapSnapshot[V]) InRect(min, max Point) iter.Seq2[Point, V] {
	return func(yield func(Point, V) bool) {
		s.s.InRect(min.X, min.Y, max.X, max.Y, func(x, y uint32, val V) bool {
			return yield(Point{X: x, Y: y}, val)
		})
	}
}

// ShardedMapSnapshot is a frozen point-in-time view of a ShardedMap:
// one engine snapshot per shard, each an exact cut of its shard. The
// per-shard cuts are taken sequentially, so the composite is not a
// single linearization point of the whole map — see
// ShardedMap.Snapshot.
type ShardedMapSnapshot[V any] struct {
	s *sharded.Snapshot[V]
}

// Snapshot returns a read-only view of every shard, in O(shards) time
// and allocation independent of the number of entries.
//
// Consistency is weaker than Map.Snapshot: each shard's view is an
// exact frozen cut of that shard, but the cuts are taken one after
// another rather than under a global barrier, so updates racing with
// the call may land on either side independently per shard (no torn
// entries, no duplicates — only cross-shard ordering is unpromised, the
// same window ShardedMap.Len and All already have). Callers that need a
// globally exact cut must quiesce writers around the call, as the
// nbtried server's persistence gate does.
func (m *ShardedMap[V]) Snapshot() *ShardedMapSnapshot[V] {
	return &ShardedMapSnapshot[V]{s: m.t.Snapshot()}
}

// Load returns the value bound to k in its shard's cut.
func (s *ShardedMapSnapshot[V]) Load(k uint64) (V, bool) { return s.s.Load(k) }

// Contains reports whether k had a binding in its shard's cut.
func (s *ShardedMapSnapshot[V]) Contains(k uint64) bool { return s.s.Contains(k) }

// Len sums the per-shard snapshot counts: exact per shard, exact
// globally when the snapshot was taken with writers quiesced.
func (s *ShardedMapSnapshot[V]) Len() int { return s.s.Len() }

// All iterates over the snapshot's entries in increasing key order,
// stitching the per-shard frozen walks.
func (s *ShardedMapSnapshot[V]) All() iter.Seq2[uint64, V] { return s.Ascend(0) }

// Ascend iterates over the snapshot's entries with key >= from, in
// increasing key order.
func (s *ShardedMapSnapshot[V]) Ascend(from uint64) iter.Seq2[uint64, V] {
	return func(yield func(uint64, V) bool) {
		s.s.AscendKV(from, yield)
	}
}

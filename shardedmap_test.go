package nbtrie

import (
	"errors"
	"sync"
	"testing"

	"nbtrie/internal/settest"
)

// shardedMapAdapter drives ShardedMap[uint64] through the settest map
// battery. The battery replaces between uniformly random key pairs, so
// it runs against a single-shard instance — the one configuration whose
// ReplaceKey covers the full key space; every routing path it exercises
// (locate, stitched Ascend, the ShardOf arithmetic) is the same code
// that runs multi-shard. Multi-shard behaviour — seam ordering, the
// cross-shard refusal, boundary keys — is pinned by the dedicated tests
// below and in internal/sharded, and the registry's set battery
// (TestConformanceAllImplementations) hammers a default-sharded instance
// concurrently.
type shardedMapAdapter struct {
	m *ShardedMap[uint64]
}

func (a shardedMapAdapter) Load(k uint64) (uint64, bool) { return a.m.Load(k) }
func (a shardedMapAdapter) Store(k, v uint64) bool       { return a.m.Store(k, v) }
func (a shardedMapAdapter) LoadOrStore(k, v uint64) (uint64, bool) {
	actual, loaded, _ := a.m.LoadOrStore(k, v)
	return actual, loaded
}
func (a shardedMapAdapter) Delete(k uint64) bool { return a.m.Delete(k) }
func (a shardedMapAdapter) CompareAndSwap(k, old, new uint64) bool {
	return a.m.CompareAndSwap(k, old, new)
}
func (a shardedMapAdapter) CompareAndDelete(k, old uint64) bool {
	return a.m.CompareAndDelete(k, old)
}
func (a shardedMapAdapter) ReplaceKey(old, new uint64) bool {
	swapped, err := a.m.ReplaceKey(old, new)
	if err != nil {
		panic(err) // single-shard: every in-range pair is same-shard
	}
	return swapped
}

func TestShardedMapConformance(t *testing.T) {
	settest.RunMap(t, func(keyRange uint64) settest.Map {
		m, err := NewShardedMap[uint64](widthForRange(keyRange), 1)
		if err != nil {
			t.Fatalf("NewShardedMap: %v", err)
		}
		return shardedMapAdapter{m}
	})
}

// TestShardedMapBasics exercises the public multi-shard surface: shard
// accounting, boundary keys, the ReplaceKey error contract and the
// stitched iterators.
func TestShardedMapBasics(t *testing.T) {
	m, err := NewShardedMap[string](10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width() != 10 || m.Shards() != 8 {
		t.Fatalf("Width/Shards = %d/%d, want 10/8", m.Width(), m.Shards())
	}
	span := uint64(1 << 10 / 8)

	// One entry per shard, inserted in reverse, plus both sides of a seam.
	for idx := uint64(8); idx > 0; idx-- {
		base := (idx - 1) * span
		if !m.Store(base, "base") {
			t.Fatalf("Store(%d) failed", base)
		}
	}
	m.Store(span-1, "last-of-0")
	if m.Len() != 9 {
		t.Fatalf("Len = %d, want 9", m.Len())
	}

	var ks []uint64
	for k, v := range m.All() {
		ks = append(ks, k)
		if v == "" {
			t.Fatalf("key %d lost its value", k)
		}
	}
	want := []uint64{0, span - 1, span, 2 * span, 3 * span, 4 * span, 5 * span, 6 * span, 7 * span}
	if len(ks) != len(want) {
		t.Fatalf("All yielded %v, want %v", ks, want)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("All[%d] = %d, want %d (stitched order broken)", i, ks[i], want[i])
		}
	}

	// Ascend resumes across the seam.
	ks = nil
	for k := range m.Ascend(span - 1) {
		ks = append(ks, k)
	}
	if len(ks) != 8 || ks[0] != span-1 || ks[1] != span {
		t.Fatalf("Ascend(seam-1) = %v", ks)
	}

	// Same-shard ReplaceKey works; cross-shard refuses with ErrCrossShard
	// and changes nothing.
	if !m.SameShard(0, span-1) || m.SameShard(0, span) {
		t.Fatal("SameShard disagrees with the partition")
	}
	if swapped, err := m.ReplaceKey(span-1, span-2); err != nil || !swapped {
		t.Fatalf("same-shard ReplaceKey = %v, %v", swapped, err)
	}
	if v, ok := m.Load(span - 2); !ok || v != "last-of-0" {
		t.Fatalf("value did not travel: %q,%v", v, ok)
	}
	if swapped, err := m.ReplaceKey(span-2, span+1); !errors.Is(err, ErrCrossShard) || swapped {
		t.Fatalf("cross-shard ReplaceKey = %v, %v; want false, ErrCrossShard", swapped, err)
	}
	if !m.Contains(span-2) || m.Contains(span+1) {
		t.Fatal("cross-shard ReplaceKey must leave the map unchanged")
	}

	// Out-of-range keys: absent everywhere, nil error on ReplaceKey.
	if m.Store(1<<10, "x") || m.Contains(1<<10) {
		t.Error("out-of-range key must be rejected")
	}
	if swapped, err := m.ReplaceKey(0, 1<<10); swapped || err != nil {
		t.Errorf("out-of-range ReplaceKey = %v, %v; want false, nil", swapped, err)
	}
}

// TestShardedMapDefaultShards: shards = 0 picks the documented default.
func TestShardedMapDefaultShards(t *testing.T) {
	m, err := NewShardedMap[int](30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Shards(); n < 1 || n > 256 || n&(n-1) != 0 {
		t.Fatalf("default shard count %d is not a power of two in [1, 256]", n)
	}
}

// TestShardedMapConcurrent hammers a multi-shard map from goroutines
// pinned to different shards plus one roaming across all of them,
// mixing same-shard ReplaceKey into the traffic.
func TestShardedMapConcurrent(t *testing.T) {
	m, err := NewShardedMap[uint64](12, 4)
	if err != nil {
		t.Fatal(err)
	}
	span := uint64(1 << 12 / 4)
	var wg sync.WaitGroup
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g%4) * span
			for i := uint64(0); i < 3000; i++ {
				k := base + i%span
				if g == 4 { // roamer: uniform over the whole space
					k = (i * 2654435761) % (1 << 12)
				}
				switch i % 4 {
				case 0:
					m.Store(k, k)
				case 1:
					if v, ok := m.Load(k); ok && v != k && v != k^1 {
						panic("foreign value")
					}
				case 2:
					m.Delete(k)
				case 3:
					if _, err := m.ReplaceKey(k, k^1); err != nil {
						panic(err) // sibling keys always share a shard
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedMapLoadDoesNotAllocate pins the public wait-free read path
// of the sharded map at multi-shard configuration: Load and Contains
// must stay allocation-free through the routing layer (the satellite
// twin of the registry-level Contains pin).
func TestShardedMapLoadDoesNotAllocate(t *testing.T) {
	m, err := NewShardedMap[int](20, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1<<20; k += 1 << 14 {
		m.Store(k, int(k)+7) // every shard gets entries
	}
	hit := uint64(3 << 14)
	if n := testing.AllocsPerRun(500, func() {
		if v, ok := m.Load(hit); !ok || v != int(hit)+7 {
			t.Fatal("Load(hit) wrong")
		}
		if _, ok := m.Load(hit + 1); ok {
			t.Fatal("Load(miss) false positive")
		}
		if !m.Contains(hit) {
			t.Fatal("Contains missed")
		}
	}); n != 0 {
		t.Errorf("ShardedMap read path allocates %v objects per call, want 0", n)
	}
}

// Command benchcheck is the benchmark-regression gate: it compares a
// candidate nbtrie-bench/v1 artifact (a fresh cmd/benchtrie -json run)
// against a checked-in baseline of the same figure and exits non-zero if
// anything regressed. CI runs it in the bench-smoke job so a throughput
// collapse or a new allocation on a pinned path fails the PR instead of
// landing silently.
//
// Usage:
//
//	benchcheck [-max-drop 25] [-alloc-slack 0.25] baseline.json candidate.json
//
// What fails the gate:
//   - a shared (series, thread-count) point whose candidate mean ops/sec
//     drops more than -max-drop percent below the baseline;
//   - any allocs/op pin (contains/insert/delete) rising by more than
//     -alloc-slack (absolute) — allocation counts are deterministic, so
//     the slack only absorbs AllocsPerRun quantization;
//   - a series present in the baseline but missing from the candidate.
//
// Points are matched by thread count, so a -quick candidate sweep
// (threads 1,2) gates correctly against a full checked-in baseline:
// unshared points are ignored. Extra candidate series (new
// implementations) pass freely — check in a regenerated baseline to
// start gating them.
//
// Exit status: 0 clean, 1 regression detected, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nbtrie/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		maxDrop    = fs.Float64("max-drop", 25, "tolerated throughput drop per shared point, in percent")
		allocSlack = fs.Float64("alloc-slack", 0.25, "tolerated absolute rise per allocs/op pin")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchcheck [flags] baseline.json candidate.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	baseline, err := bench.ReadArtifact(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck: baseline:", err)
		return 2
	}
	candidate, err := bench.ReadArtifact(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck: candidate:", err)
		return 2
	}
	if baseline.GOMAXPROCS != candidate.GOMAXPROCS {
		// Non-fatal: thread-scaling points measured under different core
		// budgets are apples to oranges, and the generous -max-drop is
		// what absorbs the difference. Say so instead of failing — the
		// baseline was simply recorded on different hardware.
		fmt.Fprintf(stderr,
			"benchcheck: warning: GOMAXPROCS differs (baseline %d, candidate %d); throughput points are not directly comparable and only the -max-drop %.0f%% tolerance bridges the gap\n",
			baseline.GOMAXPROCS, candidate.GOMAXPROCS, *maxDrop)
	}
	regs, err := bench.CompareArtifacts(baseline, candidate, bench.CompareOptions{
		MaxDrop:    *maxDrop / 100,
		AllocSlack: *allocSlack,
	})
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	if len(regs) > 0 {
		fmt.Fprintf(stderr, "benchcheck: figure %s: %d regression(s) vs %s:\n",
			baseline.Figure, len(regs), fs.Arg(0))
		for _, r := range regs {
			fmt.Fprintln(stderr, "  FAIL", r.Message)
		}
		return 1
	}
	fmt.Fprintf(stdout, "benchcheck: figure %s: ok (%d baseline series, tolerance -%.0f%% ops/sec, +%.2f allocs/op)\n",
		baseline.Figure, len(baseline.Series), *maxDrop, *allocSlack)
	return 0
}

package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"nbtrie/internal/bench"
)

func writeArtifact(t *testing.T, dir, fig string, mean float64, insertAllocs float64) string {
	t.Helper()
	a := bench.Artifact{Schema: bench.ArtifactSchema, Figure: fig}
	a.Series = []bench.ArtifactSeries{{
		Name:        "PAT",
		Points:      []bench.ArtifactPoint{{Threads: 1, MeanOpsPerSec: mean}},
		AllocsPerOp: &bench.AllocsProfile{Insert: insertAllocs},
	}}
	path, err := bench.WriteArtifact(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCleanGate(t *testing.T) {
	base := writeArtifact(t, t.TempDir(), "9b", 1000, 8)
	cand := writeArtifact(t, t.TempDir(), "9b", 950, 8)
	var out, errb bytes.Buffer
	if code := run([]string{base, cand}, &out, &errb); code != 0 {
		t.Fatalf("clean gate exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("expected ok summary, got %q", out.String())
	}
}

func TestRunThroughputRegressionFails(t *testing.T) {
	base := writeArtifact(t, t.TempDir(), "9b", 1000, 8)
	cand := writeArtifact(t, t.TempDir(), "9b", 100, 8)
	var out, errb bytes.Buffer
	if code := run([]string{"-max-drop", "25", base, cand}, &out, &errb); code != 1 {
		t.Fatalf("90%% drop exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "ops/sec") {
		t.Errorf("expected a throughput FAIL line, got %q", errb.String())
	}
	// The same drop passes under a generous enough tolerance.
	if code := run([]string{"-max-drop", "95", base, cand}, &out, &errb); code != 0 {
		t.Fatalf("drop within tolerance exited %d, want 0", code)
	}
}

func TestRunAllocRegressionFails(t *testing.T) {
	base := writeArtifact(t, t.TempDir(), "9b", 1000, 8)
	cand := writeArtifact(t, t.TempDir(), "9b", 1000, 9)
	var out, errb bytes.Buffer
	if code := run([]string{base, cand}, &out, &errb); code != 1 {
		t.Fatalf("allocs/op rise exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "allocs/op") {
		t.Errorf("expected an allocs/op FAIL line, got %q", errb.String())
	}
}

func TestRunUsageAndIOErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args exited %d, want 2", code)
	}
	if code := run([]string{"one.json"}, &out, &errb); code != 2 {
		t.Errorf("one arg exited %d, want 2", code)
	}
	good := writeArtifact(t, t.TempDir(), "9b", 1000, 8)
	if code := run([]string{good, filepath.Join(t.TempDir(), "missing.json")}, &out, &errb); code != 2 {
		t.Errorf("missing candidate exited %d, want 2", code)
	}
	// Mismatched figures are misuse, not a regression.
	other := writeArtifact(t, t.TempDir(), "9a", 1000, 8)
	if code := run([]string{good, other}, &out, &errb); code != 2 {
		t.Errorf("figure mismatch exited %d, want 2", code)
	}
}

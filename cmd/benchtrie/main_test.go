package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"nbtrie"
	"nbtrie/internal/bench"
)

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Errorf("parseThreads = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "0", "1,-2"} {
		if _, err := parseThreads(bad); err == nil {
			t.Errorf("parseThreads(%q) should fail", bad)
		}
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) != len(experiments) {
		t.Errorf("all: %v, %v", all, err)
	}
	one, err := selectExperiments("9b")
	if err != nil || len(one) != 1 || one[0].id != "9b" {
		t.Errorf("9b: %v, %v", one, err)
	}
	if _, err := selectExperiments("nope"); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestWidthFor(t *testing.T) {
	cases := map[uint64]uint32{
		2:         1,
		100:       7,
		128:       7,
		129:       8,
		1_000:     10,
		1_000_000: 20,
	}
	for keyRange, want := range cases {
		if got := widthFor(keyRange); got != want {
			t.Errorf("widthFor(%d) = %d, want %d", keyRange, got, want)
		}
	}
}

// TestFitWidthDigitGranularity pins the -width 0 auto-fit fix for k-ary
// implementations: the minimal covering width rounds up to a whole
// number of s-bit digits (s = log2 fanout), so a fanout-16 trie asked
// for 59 bits gets 60 rather than a truncated top digit. Binary and
// non-power-of-two fanouts pass through; 63 is the hard cap.
func TestFitWidthDigitGranularity(t *testing.T) {
	cases := []struct {
		width  uint32
		fanout int
		want   uint32
	}{
		{59, 16, 60}, // the regression: s=4 rounds 59 up
		{60, 16, 60},
		{7, 16, 8},
		{59, 2, 59},  // binary: unchanged
		{59, 0, 59},  // unset fanout: unchanged
		{10, 4, 10},  // s=2, already aligned
		{11, 4, 12},  // s=2 rounds up
		{59, 32, 60}, // s=5
		{62, 16, 63}, // cap: 64 is out of the key layer's range
		{59, 3, 59},  // non-power-of-two fanout: unchanged
	}
	for _, c := range cases {
		if got := fitWidth(c.width, c.fanout); got != c.want {
			t.Errorf("fitWidth(%d, %d) = %d, want %d", c.width, c.fanout, got, c.want)
		}
	}
}

func TestFormatOps(t *testing.T) {
	cases := map[float64]string{
		12:        "12 op/s",
		4_500:     "4.5k op/s",
		2_340_000: "2.34M op/s",
	}
	for in, want := range cases {
		if got := formatOps(in); got != want {
			t.Errorf("formatOps(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRunSmallExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep")
	}
	err := run([]string{"-fig", "9a", "-duration", "10ms", "-warmup", "0s",
		"-trials", "1", "-threads", "1,2", "-width", "8"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVMode(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep")
	}
	err := run([]string{"-fig", "10", "-duration", "10ms", "-warmup", "0s",
		"-trials", "1", "-threads", "1", "-width", "21", "-csv"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunJSONQuickWritesArtifacts drives the artifact pipeline end to
// end: -json -quick on a cheap figure must write a parseable
// BENCH_<figure>.json with every registry series and an allocs/op
// profile for each.
func TestRunJSONQuickWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep")
	}
	dir := t.TempDir()
	err := run([]string{"-fig", "9a", "-json", "-quick", "-out", dir,
		"-duration", "10ms", "-width", "8"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, bench.ArtifactFilename("9a")))
	if err != nil {
		t.Fatal(err)
	}
	var a bench.Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if a.Schema != bench.ArtifactSchema || a.Figure != "9a" || !a.Quick {
		t.Errorf("artifact header wrong: %+v", a)
	}
	if len(a.Series) != len(nbtrie.Implementations()) {
		t.Fatalf("artifact has %d series, want one per registry entry (%d)",
			len(a.Series), len(nbtrie.Implementations()))
	}
	for _, s := range a.Series {
		if len(s.Points) == 0 || s.Points[0].MeanOpsPerSec <= 0 {
			t.Errorf("series %s has no usable points: %+v", s.Name, s.Points)
		}
		if s.AllocsPerOp == nil {
			t.Errorf("series %s is missing its allocs/op profile", s.Name)
		}
	}
	// The Patricia trie's wait-free read must profile allocation-free
	// through the artifact pipeline too.
	for _, s := range a.Series {
		if s.Name == "PAT" && s.AllocsPerOp.Contains != 0 {
			t.Errorf("PAT contains allocs/op = %v in artifact, want 0", s.AllocsPerOp.Contains)
		}
	}
}

func TestRunRejectsJSONPlusCSV(t *testing.T) {
	if err := run([]string{"-fig", "9a", "-json", "-csv"}); err == nil {
		t.Fatal("-json and -csv together must error")
	}
}

func TestRunRejectsNarrowWidth(t *testing.T) {
	err := run([]string{"-fig", "8a", "-duration", "1ms", "-trials", "1",
		"-threads", "1", "-width", "8"})
	if err == nil {
		t.Fatal("width 8 cannot hold key range 10^6; expected error")
	}
}

func TestFactoriesEnumerateRegistry(t *testing.T) {
	full, err := selectExperiments("8a")
	if err != nil {
		t.Fatal(err)
	}
	fs := factories(full[0], 21)
	if len(fs) != len(nbtrie.Implementations()) {
		t.Fatalf("figure 8a should run every registered implementation, got %d of %d",
			len(fs), len(nbtrie.Implementations()))
	}
	if fs[0].name != "PAT" {
		t.Errorf("legend order broken: first series is %q", fs[0].name)
	}
	for _, f := range fs {
		s := f.mk()
		if !s.Insert(1) || !s.Contains(1) {
			t.Errorf("%s: factory produced a broken set", f.name)
		}
	}

	rep, err := selectExperiments("10")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range factories(rep[0], 21) {
		im, ok := nbtrie.LookupImplementation(f.name)
		if !ok || im.Replace != nbtrie.ReplaceFull {
			t.Errorf("replace figure must only run replace-capable impls, got %q", f.name)
		}
	}
}

// Command benchtrie regenerates the evaluation of Shafiei, "Non-blocking
// Patricia Tries with Replace Operations" (ICDCS 2013): Figures 8-11 plus
// the medium-contention experiment described in the text. Each figure is
// a throughput-vs-threads sweep of the Patricia trie (PAT) against the
// paper's five baselines, printed as aligned series tables (mean ± stddev
// over the configured trials).
//
// Usage:
//
//	benchtrie -fig all                      # every experiment
//	benchtrie -fig 9b -duration 2s -trials 8
//	benchtrie -fig 10 -threads 1,2,4,8
//	benchtrie -fig 9b -json                 # write BENCH_9b.json
//	benchtrie -json -quick -out artifacts   # fast smoke of every figure
//
// Figures: 8a 8b 9a 9b 10 11 medium all.
//
// -json switches the output to machine-readable benchmark artifacts:
// one BENCH_<figure>.json per figure (schema internal/bench.Artifact),
// holding mean±stddev ops/sec per series per thread count plus a
// benchmem-style allocs/op profile of each implementation. -quick
// shrinks durations, trials and the thread sweep to smoke-test levels so
// CI can verify the emitter and the bench families end to end.
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nbtrie"
	"nbtrie/internal/bench"
	"nbtrie/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrie:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtrie", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "experiment: 8a 8b 9a 9b 10 11 medium all")
		duration = fs.Duration("duration", 500*time.Millisecond, "length of each timed trial (paper: 4s)")
		warmup   = fs.Duration("warmup", 100*time.Millisecond, "warmup run per data point (paper: 10s)")
		trials   = fs.Int("trials", 3, "timed trials per data point (paper: 8)")
		threads  = fs.String("threads", "", "comma-separated thread counts (default: adapted to host)")
		width    = fs.Uint("width", 0, "Patricia trie key width in bits (must cover the key range; 0 = smallest width covering each figure's range)")
		seed     = fs.Uint64("seed", 1, "base RNG seed")
		csv      = fs.Bool("csv", false, "emit machine-readable CSV (figure,impl,threads,mean_ops_per_sec,stddev) instead of tables")
		jsonOut  = fs.Bool("json", false, "write one BENCH_<figure>.json artifact per figure instead of tables")
		outDir   = fs.String("out", ".", "directory for -json artifacts")
		quick    = fs.Bool("quick", false, "smoke-test settings: tiny duration, 1 trial, threads 1,2 (unless -threads is given)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csv && *jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	// -quick only lowers defaults; flags the user set explicitly win.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *quick {
		if !explicit["duration"] {
			*duration = 20 * time.Millisecond
		}
		if !explicit["warmup"] {
			*warmup = 0
		}
		if !explicit["trials"] {
			*trials = 1
		}
	}

	ths := bench.DefaultThreads()
	if *quick {
		ths = []int{1, 2}
	}
	if *threads != "" {
		var err error
		if ths, err = parseThreads(*threads); err != nil {
			return err
		}
	}

	exps, err := selectExperiments(*fig)
	if err != nil {
		return err
	}

	switch {
	case *csv:
		fmt.Println("figure,impl,threads,mean_ops_per_sec,stddev")
	case !*jsonOut:
		fmt.Printf("host: GOMAXPROCS=%d  threads=%v  duration=%v  trials=%d\n\n",
			runtime.GOMAXPROCS(0), ths, *duration, *trials)
	}

	for _, e := range exps {
		cfg := bench.Config{
			Mix:      e.mix,
			KeyRange: e.keyRange,
			Duration: *duration,
			Warmup:   *warmup,
			Trials:   *trials,
			SeqLen:   e.seqLen,
			Seed:     *seed,
		}
		// -width 0 (the default) sizes each figure's trie to its key
		// range. A minimal width matters beyond memory: the sharded
		// front-end routes on the top key bits, so a width far wider than
		// the range would park every key in shard 0 and measure nothing.
		w := uint32(*width)
		if w == 0 {
			w = widthFor(e.keyRange)
		}
		if *jsonOut {
			if err := runJSONExperiment(e, cfg, ths, w, *outDir, *quick); err != nil {
				return err
			}
			continue
		}
		if err := runExperiment(e, cfg, ths, w, *csv); err != nil {
			return err
		}
	}
	return nil
}

// widthFor returns the smallest trie width whose key space [0, 2^w)
// covers [0, keyRange).
func widthFor(keyRange uint64) uint32 {
	return max(1, uint32(bits.Len64(keyRange-1)))
}

// fitWidth adapts a figure-level width to one implementation: a k-ary
// trie resolving s = log2(fanout) bits per digit wants its width rounded
// up to a whole number of digits, so the auto-fit minimal width (-width
// 0) never hands it a truncated top digit (e.g. width 59 at fanout 16
// becomes 60). Binary implementations and non-power-of-two fanouts pass
// through unchanged; implementations that ignore width are unaffected by
// construction. The result is capped at the key layer's 63-bit maximum,
// where a last partial digit is unavoidable and handled by the engine.
func fitWidth(width uint32, fanout int) uint32 {
	if fanout <= 2 || bits.OnesCount(uint(fanout)) != 1 {
		return width
	}
	s := uint32(bits.TrailingZeros(uint(fanout)))
	if r := width % s; r != 0 {
		width += s - r
	}
	return min(width, 63)
}

// runJSONExperiment runs one figure and writes its BENCH_<figure>.json
// artifact: the throughput sweep of every series plus a single-threaded
// allocs/op profile per implementation.
func runJSONExperiment(e experiment, cfg bench.Config, ths []int, width uint32, outDir string, quick bool) error {
	if uint64(1)<<width < cfg.KeyRange {
		return fmt.Errorf("width %d cannot hold key range %d", width, cfg.KeyRange)
	}
	a := bench.NewArtifact(e.id, e.title, cfg, width, quick)
	for _, f := range factories(e, width) {
		series, err := bench.RunSeries(f.name, f.mk, cfg, ths)
		if err != nil {
			return err
		}
		series.Fanout = f.fanout
		allocs := bench.MeasureAllocs(f.mk, cfg.KeyRange)
		a.AddSeries(series, &allocs)
	}
	path, err := bench.WriteArtifact(outDir, a)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// experiment describes one figure of the paper. replaceOnly marks the
// figures whose workload contains replace operations; only
// implementations whose registry entry advertises a full-key-space
// replace (ReplaceScope == ReplaceFull) can run them — a per-shard
// replace would silently skip the cross-shard pairs the uniform
// workload generates, so it does not qualify. (In the paper: PAT
// alone.)
type experiment struct {
	id          string
	title       string
	mix         workload.Mix
	keyRange    uint64
	seqLen      uint64
	replaceOnly bool
}

var experiments = []experiment{
	{id: "8a", title: "Figure 8 (top): uniform keys, i5-d5-f90, range (0,10^6)",
		mix: workload.MixI5D5F90, keyRange: 1_000_000},
	{id: "8b", title: "Figure 8 (bottom): uniform keys, i50-d50-f0, range (0,10^6)",
		mix: workload.MixI50D50, keyRange: 1_000_000},
	{id: "9a", title: "Figure 9 (top): uniform keys, i5-d5-f90, range (0,100)",
		mix: workload.MixI5D5F90, keyRange: 100},
	{id: "9b", title: "Figure 9 (bottom): uniform keys, i50-d50-f0, range (0,100)",
		mix: workload.MixI50D50, keyRange: 100},
	{id: "10", title: "Figure 10: replace operations, i10-d10-r80, range (0,10^6), replace-capable only",
		mix: workload.MixI10D10R80, keyRange: 1_000_000, replaceOnly: true},
	{id: "11", title: "Figure 11: non-uniform keys (runs of 50), i15-d15-f70, range (0,10^6)",
		mix: workload.MixI15D15F70, keyRange: 1_000_000, seqLen: 50},
	{id: "medium", title: "Section V text: uniform keys, i15-d15-f70, range (0,10^3) (medium contention)",
		mix: workload.MixI15D15F70, keyRange: 1_000},
}

func selectExperiments(fig string) ([]experiment, error) {
	if fig == "all" {
		return experiments, nil
	}
	for _, e := range experiments {
		if e.id == fig {
			return []experiment{e}, nil
		}
	}
	return nil, fmt.Errorf("unknown figure %q (want 8a 8b 9a 9b 10 11 medium all)", fig)
}

// factories returns the implementations of one figure by enumerating
// the registry, which already lists them in the paper's legend order.
// Figures with replace operations keep only replace-capable entries.
func factories(e experiment, width uint32) []factory {
	var out []factory
	for _, im := range nbtrie.AllImplementations() {
		if e.replaceOnly && im.Replace != nbtrie.ReplaceFull {
			continue
		}
		w := fitWidth(width, im.Fanout)
		mk := im.New
		out = append(out, factory{
			name:   im.Legend,
			fanout: im.Fanout,
			mk: func() bench.Set {
				s, err := mk(w)
				if err != nil {
					panic(err)
				}
				return s
			},
		})
	}
	return out
}

type factory struct {
	name   string
	fanout int
	mk     func() bench.Set
}

func runExperiment(e experiment, cfg bench.Config, ths []int, width uint32, csv bool) error {
	if uint64(1)<<width < cfg.KeyRange {
		return fmt.Errorf("width %d cannot hold key range %d", width, cfg.KeyRange)
	}
	if !csv {
		fmt.Println(e.title)
		fmt.Printf("%-16s", "threads")
		for _, th := range ths {
			fmt.Printf("%16d", th)
		}
		fmt.Println()
	}
	for _, f := range factories(e, width) {
		series, err := bench.RunSeries(f.name, f.mk, cfg, ths)
		if err != nil {
			return err
		}
		if csv {
			for _, p := range series.Points {
				fmt.Printf("%s,%s,%d,%.0f,%.0f\n",
					e.id, series.Name, p.Threads, p.Summary.Mean, p.Summary.Stddev)
			}
			continue
		}
		// The label carries the registry's fanout so the table never
		// implies a binary structure it isn't measuring.
		fmt.Printf("%-16s", fmt.Sprintf("%s [fanout:%d]", series.Name, f.fanout))
		for _, p := range series.Points {
			fmt.Printf("%13s ±%.0f%%", formatOps(p.Summary.Mean), 100*p.Summary.RelStddev())
		}
		fmt.Println()
	}
	if !csv {
		fmt.Println()
	}
	return nil
}

func formatOps(x float64) string {
	switch {
	case x >= 1e6:
		return fmt.Sprintf("%.2fM op/s", x/1e6)
	case x >= 1e3:
		return fmt.Sprintf("%.1fk op/s", x/1e3)
	default:
		return fmt.Sprintf("%.0f op/s", x)
	}
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// Command nbtried is the network daemon over the sharded non-blocking
// Patricia trie: a RESP2-subset key-value server (see internal/server
// for the protocol subset and the command → engine-op mapping). Any
// RESP2 client — redis-cli included — can speak to it:
//
//	nbtried -addr 127.0.0.1:6380
//	redis-cli -p 6380 SET foo bar
//	redis-cli -p 6380 GET foo
//
// Flags:
//
//	-addr       listen address (host:port; port 0 picks a free port)
//	-keyer      wire-key mapping: "bytes" (1-7 raw bytes, the default)
//	            or "decimal" (canonical decimal integers)
//	-width      key width in bits for the decimal keyer (default 63;
//	            the bytes keyer is fixed at 59)
//	-shards     shard count for the backing map (0 = GOMAXPROCS-based)
//	-span       trie digit width in bits: each internal node resolves
//	            span key bits through 2^span children (1 = the paper's
//	            binary nodes; 4 packs a node into one cache line and
//	            quarters the trie depth)
//	-max-bulk   largest accepted bulk string (keys and values), bytes
//	-scan-count SCAN's default page size
//	-dispatch   request dispatch mode: "conn" (each connection executes
//	            its own commands; the default) or "affine" (single-key
//	            commands are routed to per-shard worker goroutines —
//	            see DESIGN.md §10)
//	-port-file  write the actual listen address to this file once
//	            listening (for scripts that start on a random port)
//
// Observability (see DESIGN.md §13):
//
//	-metrics-addr            optional HTTP listener serving the
//	                         Prometheus text exposition at /metrics and
//	                         net/http/pprof at /debug/pprof/ (off unless
//	                         set; counters are collected either way)
//	-slowlog-log-slower-than SLOWLOG threshold in microseconds, with
//	                         Redis's semantics: 0 logs every command,
//	                         negative disables (default 10000 = 10ms)
//	-slowlog-max-len         SLOWLOG ring capacity (default 128)
//
// Durability (all off by default; see DESIGN.md §9):
//
//	-dir         data directory; setting it enables persistence.
//	             Recovery (base dump, then the AOF chain) runs before
//	             the listener opens, so no client ever sees a
//	             half-recovered keyspace.
//	-aof         append every acknowledged mutation to an append-only
//	             file (requires -dir)
//	-appendfsync AOF sync policy: always (an acknowledged write
//	             survives any crash), everysec (≤ ~1s of acked writes
//	             at risk; the Redis default), or no
//	-save        SAVE-style background dump every N seconds (0 = only
//	             on explicit SAVE/BGSAVE commands)
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// live connections are torn down, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nbtrie/internal/persist"
	"nbtrie/internal/resp"
	"nbtrie/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nbtried:", err)
		os.Exit(1)
	}
}

// run parses flags, serves until ctx is cancelled (or the listener
// fails) and returns nil on a graceful shutdown. Factored from main so
// tests can drive the whole daemon in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nbtried", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:6380", "listen address (host:port; port 0 = random free port)")
		keyerName   = fs.String("keyer", "bytes", "wire-key mapping: bytes or decimal")
		width       = fs.Uint("width", 63, "key width in bits for the decimal keyer (the bytes keyer is fixed at 59)")
		shards      = fs.Int("shards", 0, "shard count (0 = default, else a power of two in [1, 256])")
		span        = fs.Uint("span", 1, "trie digit width in bits, in [1, 6]: nodes have 2^span children")
		maxBulk     = fs.Int("max-bulk", resp.DefaultLimits.MaxBulkLen, "largest accepted bulk string in bytes")
		scanCount   = fs.Int("scan-count", 10, "SCAN's default page size")
		dispatch    = fs.String("dispatch", "conn", "dispatch mode: conn or affine")
		portFile    = fs.String("port-file", "", "write the actual listen address here once listening")
		metricsAddr = fs.String("metrics-addr", "", "observability HTTP listener (host:port): Prometheus /metrics + /debug/pprof (off when empty)")
		slowerThan  = fs.Int64("slowlog-log-slower-than", server.SlowlogDefaultUS, "log commands slower than this many microseconds (0 = every command, negative = off)")
		slowlogMax  = fs.Int("slowlog-max-len", 128, "slowlog ring capacity")
		dir         = fs.String("dir", "", "data directory; enables persistence")
		aof         = fs.Bool("aof", false, "append acknowledged mutations to an append-only file (requires -dir)")
		fsyncMode   = fs.String("appendfsync", "everysec", "AOF sync policy: always, everysec or no")
		savePer     = fs.Int("save", 0, "background dump every N seconds (0 = only on SAVE/BGSAVE)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	keyer, err := buildKeyer(*keyerName, uint32(*width))
	if err != nil {
		return err
	}
	policy, err := persist.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		return err
	}
	if *aof && *dir == "" {
		return fmt.Errorf("-aof requires -dir")
	}
	if *savePer < 0 {
		return fmt.Errorf("-save must be >= 0")
	}
	// The flag keeps Redis's semantics (0 = log everything, negative =
	// off); Config uses sentinels so its zero value means "default
	// threshold", so translate here.
	slowlogUS := *slowerThan
	switch {
	case slowlogUS == 0:
		slowlogUS = server.SlowlogAll
	case slowlogUS < 0:
		slowlogUS = server.SlowlogOff
	}
	srv, err := server.New(server.Config{
		Keyer:               keyer,
		Shards:              *shards,
		Span:                uint32(*span),
		Limits:              resp.Limits{MaxBulkLen: *maxBulk},
		ScanDefaultCount:    *scanCount,
		Dispatch:            *dispatch,
		SlowlogSlowerThanUS: slowlogUS,
		SlowlogMaxLen:       *slowlogMax,
		Persist:             server.PersistConfig{Dir: *dir, AOF: *aof, Fsync: policy},
	})
	if err != nil {
		return err
	}
	if *savePer > 0 && *dir != "" {
		stopSaver := srv.StartPeriodicSave(time.Duration(*savePer) * time.Second)
		defer stopSaver()
	}
	// The observability listener is a PRIVATE mux: registering pprof on
	// http.DefaultServeMux would expose profiling to anything else in
	// the process that serves the default mux, and the daemon must not
	// export /debug handlers unless the operator opted in.
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		hs := &http.Server{Handler: mux}
		go hs.Serve(mln)
		defer hs.Close()
		fmt.Fprintf(stdout, "nbtried: metrics on http://%s/metrics\n", mln.Addr())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(stdout, "nbtried %s listening on %s (keyer=%s width=%d shards=%d span=%d)\n",
		server.Version, ln.Addr(), keyer.Name(), keyer.Width(), srv.DB().Shards(), *span)

	// A cancelled context (signal, test shutdown) closes the server,
	// which unblocks Serve with a nil error: the graceful path.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			srv.Close()
		case <-done: // Serve failed on its own; don't leak the goroutine
		}
	}()
	if err := srv.Serve(ln); err != nil {
		// A signal can land between Listen and Serve: the watcher then
		// closes the server first and Serve refuses with an error even
		// though this is the graceful path. Cancellation always means a
		// clean shutdown, whatever Serve managed to observe.
		if ctx.Err() == nil {
			return err
		}
	}
	// Serve can return while the watcher's Close is still draining
	// connection goroutines; Close is idempotent and waits, so this
	// call is the synchronization point — no handler is cut off by
	// process exit.
	srv.Close()
	fmt.Fprintln(stdout, "nbtried: shut down")
	return nil
}

// buildKeyer resolves the -keyer/-width flag pair.
func buildKeyer(name string, width uint32) (server.Keyer, error) {
	if name == "decimal" {
		if width < 1 || width > 63 {
			return nil, fmt.Errorf("width %d out of range [1, 63]", width)
		}
		return server.DecimalKeyer{KeyWidth: width}, nil
	}
	return server.NewKeyer(name)
}

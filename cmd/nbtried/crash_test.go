package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"nbtrie/internal/persist"
	"nbtrie/internal/resp"
	"nbtrie/internal/server"
)

// TestCrashRecoveryBattery is the durability acceptance test: a real
// nbtried process with -aof -appendfsync always is SIGKILLed mid-write
// over and over; after every restart, every write the previous
// incarnation ACKNOWLEDGED must still be there with the right value.
// Writes that were in flight at the kill (sent, no reply read) are
// allowed to be present or absent — but if present they must be intact
// and must then persist forever. Occasional BGSAVEs run during the
// traffic so kills also land mid-rotation and mid-dump. After the last
// cycle the data directory is opened in-process to run the trie's
// structural Validate over the recovered state.
//
// The battery runs once per dispatch mode: affine moves the
// store+append critical section from connection goroutines into shard
// workers, and the zero-acked-write-loss promise must hold identically
// on that path.
func TestCrashRecoveryBattery(t *testing.T) {
	cycles := 50
	if testing.Short() {
		cycles = 6
	}
	for _, dispatch := range []string{"conn", "affine"} {
		t.Run(dispatch, func(t *testing.T) { crashBattery(t, cycles, dispatch) })
	}
}

func crashBattery(t *testing.T, cycles int, dispatch string) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	portFile := filepath.Join(t.TempDir(), "port")
	rng := rand.New(rand.NewSource(7))

	acked := map[string]string{} // promised: must survive every crash
	maybe := map[string]string{} // in flight at a kill: either fate is legal

	for cycle := 0; cycle < cycles; cycle++ {
		os.Remove(portFile)
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-port-file", portFile,
			"-dispatch", dispatch,
			"-dir", dataDir, "-aof", "-appendfsync", "always")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addr := waitPortFile(t, portFile)
		c := dialRESP(t, addr)

		// Every previously acknowledged write must have survived.
		verifyAll(t, c, cycle, acked)
		// In-flight writes of the previous incarnation: present means
		// durable now (they are in the recovered state, so every later
		// dump/AOF carries them) — promote; absent means dropped forever.
		for k, v := range maybe {
			if got, ok := getOne(t, c, k); ok {
				if got != v {
					t.Fatalf("cycle %d: in-flight key %q recovered with value %q, want %q", cycle, k, got, v)
				}
				acked[k] = v
			}
		}
		maybe = map[string]string{}

		// New traffic, killed at a random moment. The writer records a
		// key as acked only after reading its +OK; the one in flight at
		// the kill goes to maybe.
		killAfter := time.Duration(1+rng.Intn(12)) * time.Millisecond
		killed := make(chan struct{})
		go func() {
			time.Sleep(killAfter)
			cmd.Process.Signal(syscall.SIGKILL)
			close(killed)
		}()
		if cycle%5 == 2 {
			c.cmd("BGSAVE") // rotation racing the kill and the writes
			c.read()        // reply content irrelevant; may even fail mid-kill
		}
		for i := 0; i < 4000; i++ {
			k := fmt.Sprintf("c%02dk%03d", cycle, i)
			v := fmt.Sprintf("%d.%d", cycle, i)
			// Every 7th write carries a long TTL (SETEX = SET + PEXPIREAT
			// in the AOF): acked TTL'd writes must survive kills exactly
			// like plain SETs — the deadline is hours away, so for the
			// battery's value assertions they are ordinary durable keys.
			var err error
			if i%7 == 3 {
				err = c.cmd("SETEX", k, "3600", v)
			} else {
				err = c.cmd("SET", k, v)
			}
			if err != nil {
				break
			}
			maybe[k] = v
			if r, err := c.read(); err != nil || r.Kind != resp.TypeSimple {
				break // killed mid-ack: stays in maybe
			}
			delete(maybe, k)
			acked[k] = v
		}
		<-killed
		cmd.Wait() // reap; exit status is the SIGKILL, not a test signal
		c.close()
	}

	// Final incarnation opened in-process: full content + structural check.
	srv, err := server.New(server.Config{Persist: server.PersistConfig{
		Dir: dataDir, AOF: true, Fsync: persist.SyncAlways}})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer srv.Close()
	if err := srv.DB().Validate(); err != nil {
		t.Fatalf("recovered trie fails Validate: %v", err)
	}
	keyer := server.BytesKeyer{}
	for k, v := range acked {
		kk, err := keyer.Encode([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		got, ok := srv.DB().Load(kk)
		if !ok || string(got) != v {
			t.Fatalf("acked key %q lost or damaged after %d crash cycles (got %q, ok=%v)", k, cycles, got, ok)
		}
	}
	t.Logf("%d crash cycles: %d acknowledged writes, zero lost", cycles, len(acked))
}

// buildDaemon compiles the real binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nbtried")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func waitPortFile(t *testing.T, path string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b))
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("port file never appeared")
	return ""
}

// crashClient is a raw pipelining-capable RESP client whose errors are
// data, not fatal: the server dying underneath it is the test.
type crashClient struct {
	conn net.Conn
	r    *bufio.Reader
	w    *resp.Writer
}

func dialRESP(t *testing.T, addr string) *crashClient {
	t.Helper()
	var conn net.Conn
	var err error
	for i := 0; i < 100; i++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return &crashClient{conn: conn, r: bufio.NewReader(conn), w: resp.NewWriter(bufio.NewWriter(conn))}
}

func (c *crashClient) cmd(args ...string) error {
	c.w.WriteCommandString(args...)
	return c.w.Flush()
}

func (c *crashClient) read() (resp.Value, error) {
	return resp.ReadReply(c.r, resp.Limits{})
}

func (c *crashClient) close() { c.conn.Close() }

func getOne(t *testing.T, c *crashClient, k string) (string, bool) {
	t.Helper()
	if err := c.cmd("GET", k); err != nil {
		t.Fatal(err)
	}
	v, err := c.read()
	if err != nil {
		t.Fatal(err)
	}
	if v.IsNull() {
		return "", false
	}
	return string(v.Str), true
}

// verifyAll pipelines a GET for every acknowledged key and checks each
// reply — the zero-acked-write-loss assertion, run after every crash.
func verifyAll(t *testing.T, c *crashClient, cycle int, acked map[string]string) {
	t.Helper()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
		c.w.WriteCommandString("GET", k)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatalf("cycle %d: verify flush: %v", cycle, err)
	}
	for _, k := range keys {
		v, err := c.read()
		if err != nil {
			t.Fatalf("cycle %d: verify read: %v", cycle, err)
		}
		if v.IsNull() || string(v.Str) != acked[k] {
			t.Fatalf("cycle %d: ACKNOWLEDGED write %q lost or damaged: got %s, want %q",
				cycle, k, v, acked[k])
		}
	}
}

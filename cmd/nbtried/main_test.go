package main

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nbtrie/internal/resp"
)

// TestDaemonLifecycle drives the whole daemon in-process: random port,
// port file, one client session, then graceful shutdown via context
// cancellation (the signal path minus the signal).
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	portFile := filepath.Join(dir, "port.txt")
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-port-file", portFile}, &out, os.Stderr)
	}()

	// Wait for the port file.
	var addr string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("port file never appeared")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := resp.NewWriter(bufio.NewWriter(conn))
	w.WriteCommandString("SET", "k", "v")
	w.WriteCommandString("GET", "k")
	w.WriteCommandString("DBSIZE")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"OK", `"v"`, "(integer) 1"} {
		v, err := resp.ReadReply(r, resp.Limits{})
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if v.String() != want {
			t.Fatalf("reply %d = %s, want %s", i, v, want)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shut down") {
		t.Fatalf("daemon output missing lifecycle lines:\n%s", out.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	ctx := context.Background()
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-keyer", "md5"},
		{"-keyer", "decimal", "-width", "99"},
		{"-shards", "3"},
		{"-addr", "not an address"},
		{"-aof"}, // -aof without -dir
		{"-appendfsync", "sometimes"},
		{"-dir", os.DevNull + "/nope", "-save", "-1"},
	} {
		if err := run(ctx, args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestBuildKeyer(t *testing.T) {
	k, err := buildKeyer("decimal", 20)
	if err != nil || k.Width() != 20 {
		t.Fatalf("decimal@20: %v, %v", k, err)
	}
	k, err = buildKeyer("bytes", 63) // width ignored for bytes
	if err != nil || k.Width() != 59 {
		t.Fatalf("bytes: %v, %v", k, err)
	}
}

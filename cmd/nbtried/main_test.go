package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nbtrie/internal/resp"
)

// TestDaemonLifecycle drives the whole daemon in-process: random port,
// port file, one client session, then graceful shutdown via context
// cancellation (the signal path minus the signal).
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	portFile := filepath.Join(dir, "port.txt")
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-port-file", portFile}, &out, os.Stderr)
	}()

	// Wait for the port file.
	var addr string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("port file never appeared")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := resp.NewWriter(bufio.NewWriter(conn))
	w.WriteCommandString("SET", "k", "v")
	w.WriteCommandString("GET", "k")
	w.WriteCommandString("DBSIZE")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"OK", `"v"`, "(integer) 1"} {
		v, err := resp.ReadReply(r, resp.Limits{})
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if v.String() != want {
			t.Fatalf("reply %d = %s, want %s", i, v, want)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shut down") {
		t.Fatalf("daemon output missing lifecycle lines:\n%s", out.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	ctx := context.Background()
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-keyer", "md5"},
		{"-keyer", "decimal", "-width", "99"},
		{"-shards", "3"},
		{"-addr", "not an address"},
		{"-aof"}, // -aof without -dir
		{"-appendfsync", "sometimes"},
		{"-dir", os.DevNull + "/nope", "-save", "-1"},
	} {
		if err := run(ctx, args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestBuildKeyer(t *testing.T) {
	k, err := buildKeyer("decimal", 20)
	if err != nil || k.Width() != 20 {
		t.Fatalf("decimal@20: %v, %v", k, err)
	}
	k, err = buildKeyer("bytes", 63) // width ignored for bytes
	if err != nil || k.Width() != 59 {
		t.Fatalf("bytes: %v, %v", k, err)
	}
}

// TestDaemonMetricsEndpoint boots with the observability listener and
// the Redis-semantics slowlog flag (0 = log everything), drives traffic
// over RESP, and scrapes /metrics plus a pprof endpoint over HTTP.
func TestDaemonMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	portFile := filepath.Join(dir, "port.txt")
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-port-file", portFile,
			"-metrics-addr", "127.0.0.1:0",
			"-slowlog-log-slower-than", "0",
		}, writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return out.Write(p)
		}), os.Stderr)
	}()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}()

	var addr, metricsURL string
	for i := 0; i < 200 && (addr == "" || metricsURL == ""); i++ {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
		}
		mu.Lock()
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "nbtried: metrics on "); ok {
				metricsURL = strings.TrimSpace(rest)
			}
		}
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" || metricsURL == "" {
		t.Fatalf("startup incomplete: addr=%q metricsURL=%q", addr, metricsURL)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := resp.NewWriter(bufio.NewWriter(conn))
	w.WriteCommandString("SET", "k", "v")
	w.WriteCommandString("SLOWLOG", "LEN")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := resp.ReadReply(r, resp.Limits{}); err != nil || v.String() != "OK" {
		t.Fatalf("SET = %s (%v), want OK", v, err)
	}
	// -slowlog-log-slower-than 0 means the SET was logged.
	if v, err := resp.ReadReply(r, resp.Limits{}); err != nil || v.Kind != resp.TypeInt || v.Int < 1 {
		t.Fatalf("SLOWLOG LEN = %s (%v), want >= 1", v, err)
	}

	body := httpGet(t, metricsURL)
	if !strings.Contains(body, `nbtried_commands_total{cmd="set"} 1`) {
		t.Errorf("/metrics missing the SET count:\n%s", body)
	}
	if !strings.Contains(body, "nbtried_engine_help_total") {
		t.Error("/metrics missing engine families")
	}
	if b := httpGet(t, strings.TrimSuffix(metricsURL, "/metrics")+"/debug/pprof/cmdline"); len(b) == 0 {
		t.Error("pprof cmdline endpoint returned nothing")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"nbtrie/internal/resp"
)

// TestExpiryCrashRecovery is the TTL durability acceptance test from the
// issue: a daemon running -aof -appendfsync always takes 1000 TTL'd
// writes — half with deadlines hours away, half expiring within
// milliseconds — and is SIGKILLed once every write is acknowledged.
// After the downtime has consumed the short deadlines, the restarted
// daemon must serve every long-TTL key with a sane remaining TTL and
// none of the expired ones: deadlines are absolute in the AOF
// (PEXPIREAT), so dying and coming back late expires exactly what wall
// time says should be gone.
func TestExpiryCrashRecovery(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	portFile := filepath.Join(t.TempDir(), "port")

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-port-file", portFile,
		"-dir", dataDir, "-aof", "-appendfsync", "always")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := waitPortFile(t, portFile)
	c := dialRESP(t, addr)

	// 1000 keys, alternating long (1h, via SETEX) and short (150ms, via
	// SET + PEXPIRE). Pipelined; every ack is required before the kill.
	const n = 1000
	expect := 0
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", i)
		if i%2 == 0 {
			c.w.WriteCommandString("SETEX", k, "3600", "long")
			expect++
		} else {
			c.w.WriteCommandString("SET", k, "short")
			c.w.WriteCommandString("PEXPIRE", k, "150")
			expect += 2
		}
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < expect; i++ {
		if v, err := c.read(); err != nil || v.Kind == resp.TypeError {
			t.Fatalf("reply %d: %s, %v", i, v, err)
		}
	}

	cmd.Process.Signal(syscall.SIGKILL)
	cmd.Wait()
	c.close()
	time.Sleep(200 * time.Millisecond) // downtime outlives every short deadline

	os.Remove(portFile)
	cmd2 := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-port-file", portFile,
		"-dir", dataDir, "-aof", "-appendfsync", "always")
	cmd2.Stderr = os.Stderr
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { cmd2.Process.Kill(); cmd2.Wait() }()
	addr2 := waitPortFile(t, portFile)
	c2 := dialRESP(t, addr2)
	defer c2.close()

	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", i)
		c2.w.WriteCommandString("GET", k)
		c2.w.WriteCommandString("TTL", k)
	}
	if err := c2.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", i)
		got, err1 := c2.read()
		ttl, err2 := c2.read()
		if err1 != nil || err2 != nil {
			t.Fatalf("verify %s: %v / %v", k, err1, err2)
		}
		if i%2 == 0 {
			if got.IsNull() || string(got.Str) != "long" {
				t.Fatalf("unexpired key %s lost across the crash: %s", k, got)
			}
			if ttl.Kind != resp.TypeInt || ttl.Int <= 0 || ttl.Int > 3600 {
				t.Fatalf("unexpired key %s recovered with TTL %s, want (0, 3600]", k, ttl)
			}
		} else {
			if !got.IsNull() {
				t.Fatalf("key %s expired during downtime but was served: %s", k, got)
			}
			if ttl.Kind != resp.TypeInt || ttl.Int != -2 {
				t.Fatalf("expired key %s: TTL = %s, want -2", k, ttl)
			}
		}
	}
	t.Logf("%d/2 long-TTL keys recovered live, %d/2 short-TTL keys expired across the crash", n, n)
}

// TestExpiryRestartCycle cycles the daemon through both recovery paths —
// pure AOF replay, then a SAVE so the next boot recovers deadlines from
// the TTL-carrying base dump — asserting after every restart that the
// absolute deadline is intact (remaining TTL shrinks, never resets or
// vanishes).
func TestExpiryRestartCycle(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	portFile := filepath.Join(t.TempDir(), "port")

	start := func() *exec.Cmd {
		os.Remove(portFile)
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-port-file", portFile,
			"-dir", dataDir, "-aof", "-appendfsync", "always")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	kill := func(cmd *exec.Cmd) {
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()
	}

	cmd := start()
	c := dialRESP(t, waitPortFile(t, portFile))
	c.cmd("SET", "k", "v")
	c.read()
	c.cmd("EXPIRE", "k", "7200")
	c.read()
	c.cmd("SET", "plain", "p") // control: no TTL, must stay TTL-less
	c.read()
	kill(cmd)
	c.close()

	prev := int64(7200)
	for cycle := 0; cycle < 3; cycle++ {
		cmd = start()
		c = dialRESP(t, waitPortFile(t, portFile))

		if err := c.cmd("TTL", "k"); err != nil {
			t.Fatal(err)
		}
		ttl, err := c.read()
		if err != nil || ttl.Kind != resp.TypeInt {
			t.Fatalf("cycle %d: TTL = %s, %v", cycle, ttl, err)
		}
		if ttl.Int <= 0 || ttl.Int > prev {
			t.Fatalf("cycle %d: TTL %d not in (0, %d] — the deadline drifted across restart", cycle, ttl.Int, prev)
		}
		prev = ttl.Int
		if v, ok := getOne(t, c, "k"); !ok || v != "v" {
			t.Fatalf("cycle %d: value lost: %q, %v", cycle, v, ok)
		}
		c.cmd("TTL", "plain")
		if pt, err := c.read(); err != nil || pt.Int != -1 {
			t.Fatalf("cycle %d: control key grew a TTL: %s, %v", cycle, pt, err)
		}

		if cycle == 0 {
			// Fold the AOF into a base dump: from the next boot on, the
			// deadline must come back from the dump's expireAt field.
			if err := c.cmd("SAVE"); err != nil {
				t.Fatal(err)
			}
			if v, err := c.read(); err != nil || v.Kind == resp.TypeError {
				t.Fatalf("SAVE failed: %s, %v", v, err)
			}
			ents, err := os.ReadDir(dataDir)
			if err != nil {
				t.Fatal(err)
			}
			sawBase := false
			for _, e := range ents {
				if len(e.Name()) >= 4 && e.Name()[:4] == "base" {
					sawBase = true
				}
			}
			if !sawBase {
				t.Fatalf("SAVE left no base dump in %s", dataDir)
			}
		}
		if cycle == 1 {
			// Re-arm through GETEX so the third incarnation replays a
			// post-dump PEXPIREAT on top of the dump's deadline.
			c.cmd("GETEX", "k", "EX", strconv.FormatInt(prev-1, 10))
			if v, err := c.read(); err != nil || v.Kind == resp.TypeError {
				t.Fatalf("GETEX re-arm failed: %s, %v", v, err)
			}
			prev--
		}
		kill(cmd)
		c.close()
	}
}

// Command triecli is an interactive inspector for the non-blocking
// Patricia trie. It reads commands from stdin and prints results and —
// on demand — the trie's internal structure, which makes the paper's
// figures (labels as prefixes, two dummy leaves, replace rewiring) easy
// to see.
//
// Commands:
//
//	insert K        add key K
//	delete K        remove key K
//	find K          membership test
//	replace K1 K2   atomically move K1 to K2
//	keys            list keys in order
//	size            count keys
//	dump            print the trie structure
//	quit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nbtrie"
)

func main() {
	if err := run(os.Stdin, os.Stdout, 16); err != nil {
		fmt.Fprintln(os.Stderr, "triecli:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer, width uint32) error {
	trie, err := nbtrie.NewPatriciaTrie(width)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "patricia trie over [0, %d); commands: insert/delete/find/replace/keys/size/dump/quit\n",
		uint64(1)<<width)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if done := exec(trie, out, line, width); done {
			return nil
		}
	}
	return sc.Err()
}

// exec runs one command line; it returns true on quit.
func exec(trie *nbtrie.PatriciaTrie, out io.Writer, line string, width uint32) bool {
	fields := strings.Fields(line)
	cmd := fields[0]

	parseKey := func(i int) (uint64, bool) {
		if i >= len(fields) {
			fmt.Fprintf(out, "error: %s needs %d key argument(s)\n", cmd, i)
			return 0, false
		}
		k, err := strconv.ParseUint(fields[i], 10, 64)
		if err != nil || k >= uint64(1)<<width {
			fmt.Fprintf(out, "error: bad key %q (range is [0, %d))\n", fields[i], uint64(1)<<width)
			return 0, false
		}
		return k, true
	}

	switch cmd {
	case "insert":
		if k, ok := parseKey(1); ok {
			fmt.Fprintln(out, trie.Insert(k))
		}
	case "delete":
		if k, ok := parseKey(1); ok {
			fmt.Fprintln(out, trie.Delete(k))
		}
	case "find":
		if k, ok := parseKey(1); ok {
			fmt.Fprintln(out, trie.Contains(k))
		}
	case "replace":
		k1, ok := parseKey(1)
		if !ok {
			return false
		}
		k2, ok := parseKey(2)
		if !ok {
			return false
		}
		fmt.Fprintln(out, trie.Replace(k1, k2))
	case "keys":
		fmt.Fprintln(out, trie.Keys())
	case "size":
		fmt.Fprintln(out, trie.Size())
	case "dump":
		fmt.Fprint(out, trie.Dump())
	case "quit", "exit":
		return true
	default:
		fmt.Fprintf(out, "error: unknown command %q\n", cmd)
	}
	return false
}

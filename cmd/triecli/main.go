// Command triecli is an interactive inspector for the concurrent-set
// implementations in this repository. It reads commands from stdin and
// prints results and — on demand — the structure's internals, which
// makes the paper's figures (labels as prefixes, two dummy leaves,
// replace rewiring) easy to see.
//
// The implementation is chosen with -impl from the registry (see the
// impls command); the default is the paper's Patricia trie. Commands
// needing a capability the chosen implementation lacks (replace, dump,
// ordered keys) say so instead of failing.
//
// Commands:
//
//	insert K        add key K
//	delete K        remove key K
//	find K          membership test
//	replace K1 K2   atomically move K1 to K2 (replace-capable impls)
//	keys            list keys (in order where supported)
//	size            count keys
//	dump            print the internal structure (where supported)
//	impls           list the registered implementations
//	quit
//
// With -connect addr, triecli instead becomes an interactive RESP
// client for a running nbtried server, sharing the wire codec
// (internal/resp) with the server and cmd/nbtriebench. Each input line
// is sent verbatim as one command — `set foo bar`, `get foo`,
// `scan 0 count 5`, `info` — and the reply is printed in a
// redis-cli-like rendering; quit (or EOF) exits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"

	"nbtrie"
	"nbtrie/internal/resp"
)

func main() {
	fs := flag.NewFlagSet("triecli", flag.ContinueOnError)
	impl := fs.String("impl", "patricia", "implementation to drive (see the impls command)")
	width := fs.Uint("width", 16, "key width in bits: keys lie in [0, 2^width)")
	connect := fs.String("connect", "", "connect to a running nbtried at host:port instead of driving an in-process set")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	var err error
	if *connect != "" {
		err = runConnect(os.Stdin, os.Stdout, *connect)
	} else {
		err = run(os.Stdin, os.Stdout, *impl, uint32(*width))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "triecli:", err)
		os.Exit(1)
	}
}

// runConnect is the -connect REPL: one line in, one RESP command out,
// one reply printed. The QUIT command is forwarded (the server answers
// and closes); a local EOF just disconnects.
func runConnect(in io.Reader, out io.Writer, addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := resp.NewWriter(bufio.NewWriter(conn))
	fmt.Fprintf(out, "connected to nbtried at %s; type commands (get/set/del/scan/rename/ping/info/dbsize/quit)\n", addr)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		w.WriteCommandString(fields...)
		if err := w.Flush(); err != nil {
			return err
		}
		v, err := resp.ReadReply(r, resp.Limits{})
		if err != nil {
			return fmt.Errorf("reading reply: %w", err)
		}
		fmt.Fprintln(out, v)
		if strings.EqualFold(fields[0], "quit") {
			return nil
		}
	}
	return sc.Err()
}

func run(in io.Reader, out io.Writer, impl string, width uint32) error {
	// Validate here: width-ignoring baselines would otherwise accept any
	// width and uint64(1)<<width would overflow for width >= 64.
	if width < 1 || width > 63 {
		return fmt.Errorf("width %d out of range [1, 63]", width)
	}
	s, err := nbtrie.NewSetWithWidth(impl, width)
	if err != nil {
		return err
	}
	im, _ := nbtrie.LookupImplementation(impl)
	fmt.Fprintf(out, "%s (%s) over [0, %d); commands: insert/delete/find/replace/keys/size/dump/impls/quit\n",
		im.Name, im.Legend, uint64(1)<<width)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if done := exec(s, out, line, width); done {
			return nil
		}
	}
	return sc.Err()
}

// Optional capabilities probed from the chosen implementation.
type sizer interface{ Size() int }
type keyser interface{ Keys() []uint64 }
type dumper interface{ Dump() string }

// exec runs one command line against the set; it returns true on quit.
func exec(s nbtrie.Set, out io.Writer, line string, width uint32) bool {
	fields := strings.Fields(line)
	cmd := fields[0]

	parseKey := func(i int) (uint64, bool) {
		if i >= len(fields) {
			fmt.Fprintf(out, "error: %s needs %d key argument(s)\n", cmd, i)
			return 0, false
		}
		k, err := strconv.ParseUint(fields[i], 10, 64)
		if err != nil || k >= uint64(1)<<width {
			fmt.Fprintf(out, "error: bad key %q (range is [0, %d))\n", fields[i], uint64(1)<<width)
			return 0, false
		}
		return k, true
	}

	switch cmd {
	case "insert":
		if k, ok := parseKey(1); ok {
			fmt.Fprintln(out, s.Insert(k))
		}
	case "delete":
		if k, ok := parseKey(1); ok {
			fmt.Fprintln(out, s.Delete(k))
		}
	case "find":
		if k, ok := parseKey(1); ok {
			fmt.Fprintln(out, s.Contains(k))
		}
	case "replace":
		rs, canReplace := s.(nbtrie.ReplaceSet)
		if !canReplace {
			fmt.Fprintln(out, "error: this implementation has no atomic replace")
			return false
		}
		k1, ok := parseKey(1)
		if !ok {
			return false
		}
		k2, ok := parseKey(2)
		if !ok {
			return false
		}
		fmt.Fprintln(out, rs.Replace(k1, k2))
	case "keys":
		ks, ok := s.(keyser)
		if !ok {
			fmt.Fprintln(out, "error: this implementation does not enumerate keys")
			return false
		}
		fmt.Fprintln(out, ks.Keys())
	case "size":
		sz, ok := s.(sizer)
		if !ok {
			fmt.Fprintln(out, "error: this implementation does not report its size")
			return false
		}
		fmt.Fprintln(out, sz.Size())
	case "dump":
		d, ok := s.(dumper)
		if !ok {
			fmt.Fprintln(out, "error: this implementation has no structure dump")
			return false
		}
		fmt.Fprint(out, d.Dump())
	case "impls":
		for _, im := range nbtrie.AllImplementations() {
			replace := ""
			if im.Replace != nbtrie.ReplaceNone {
				replace = " [replace:" + im.Replace.String() + "]"
			}
			fmt.Fprintf(out, "%-12s %-6s [fanout:%d]%s %s\n", im.Name, im.Legend, im.Fanout, replace, im.Description)
		}
	case "quit", "exit":
		return true
	default:
		fmt.Fprintf(out, "error: unknown command %q\n", cmd)
	}
	return false
}

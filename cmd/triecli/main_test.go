package main

import (
	"net"
	"strings"
	"testing"

	"nbtrie/internal/server"
)

func TestCLISession(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"insert 5",
		"insert 5",
		"find 5",
		"replace 5 9",
		"find 5",
		"find 9",
		"keys",
		"size",
		"dump",
		"delete 9",
		"size",
		"quit",
	}, "\n"))
	var out strings.Builder
	if err := run(in, &out, "patricia", 8); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"true\nfalse\ntrue\ntrue\nfalse\ntrue\n[9]\n1\n", // command results in order
		"dummy", // dump shows the dummy leaves
		"leaf",  // and at least one leaf line
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(got), "0") {
		t.Errorf("final size should be 0:\n%s", got)
	}
}

func TestCLIErrors(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"insert",       // missing key
		"insert 999",   // out of range for width 8
		"insert abc",   // not a number
		"frobnicate 1", // unknown command
		"replace 1",    // missing second key
		"quit",
	}, "\n"))
	var out strings.Builder
	if err := run(in, &out, "patricia", 8); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.String(), "error:"); n != 5 {
		t.Errorf("expected 5 error lines, got %d:\n%s", n, out.String())
	}
}

func TestCLIEmptyAndEOF(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("\n\n  \n"), &out, "patricia", 8); err != nil {
		t.Fatal(err)
	}
}

func TestCLIBaselineImplementation(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"insert 5",
		"find 5",
		"replace 5 9", // BST has no atomic replace
		"dump",        // and no structure dump
		"quit",
	}, "\n"))
	var out strings.Builder
	if err := run(in, &out, "bst", 8); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "true\ntrue\n") {
		t.Errorf("insert/find through a baseline broken:\n%s", got)
	}
	if n := strings.Count(got, "error:"); n != 2 {
		t.Errorf("replace+dump on BST should produce 2 capability errors, got %d:\n%s", n, got)
	}
}

func TestCLIImplsCommand(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("impls\nquit\n"), &out, "PAT", 8); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"patricia", "bst", "kst", "avl", "skiplist", "ctrie", "[replace:full]", "[replace:per-shard]"} {
		if !strings.Contains(got, want) {
			t.Errorf("impls output missing %q:\n%s", want, got)
		}
	}
}

func TestCLIUnknownImplementation(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("quit\n"), &out, "nope", 8); err == nil {
		t.Fatal("unknown implementation must error")
	}
}

func TestCLIWidthValidation(t *testing.T) {
	for _, w := range []uint32{0, 64, 100} {
		var out strings.Builder
		if err := run(strings.NewReader("quit\n"), &out, "bst", w); err == nil {
			t.Errorf("width %d must be rejected", w)
		}
	}
}

// TestCLIConnectMode drives the -connect REPL against an in-process
// nbtried server: the third consumer of the shared RESP codec.
func TestCLIConnectMode(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()

	in := strings.NewReader(strings.Join([]string{
		"ping",
		"set foo bar",
		"get foo",
		"dbsize",
		"nosuchcmd",
		"quit",
	}, "\n"))
	var out strings.Builder
	if err := runConnect(in, &out, ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"connected to nbtried",
		"PONG",
		"OK",
		`"bar"`,
		"(integer) 1",
		`(error) ERR unknown command "nosuchcmd"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("connect session missing %q:\n%s", want, got)
		}
	}
}

func TestCLIConnectRefused(t *testing.T) {
	var out strings.Builder
	if err := runConnect(strings.NewReader("ping\n"), &out, "127.0.0.1:1"); err == nil {
		t.Fatal("connecting to a dead address must error")
	}
}

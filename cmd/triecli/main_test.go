package main

import (
	"strings"
	"testing"
)

func TestCLISession(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"insert 5",
		"insert 5",
		"find 5",
		"replace 5 9",
		"find 5",
		"find 9",
		"keys",
		"size",
		"dump",
		"delete 9",
		"size",
		"quit",
	}, "\n"))
	var out strings.Builder
	if err := run(in, &out, 8); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"true\nfalse\ntrue\ntrue\nfalse\ntrue\n[9]\n1\n", // command results in order
		"dummy", // dump shows the dummy leaves
		"leaf",  // and at least one leaf line
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(got), "0") {
		t.Errorf("final size should be 0:\n%s", got)
	}
}

func TestCLIErrors(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"insert",       // missing key
		"insert 999",   // out of range for width 8
		"insert abc",   // not a number
		"frobnicate 1", // unknown command
		"replace 1",    // missing second key
		"quit",
	}, "\n"))
	var out strings.Builder
	if err := run(in, &out, 8); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.String(), "error:"); n != 5 {
		t.Errorf("expected 5 error lines, got %d:\n%s", n, out.String())
	}
}

func TestCLIEmptyAndEOF(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("\n\n  \n"), &out, 8); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"bytes"
	"net"
	"path/filepath"
	"strings"
	"testing"

	"nbtrie/internal/bench"
	"nbtrie/internal/server"
)

// startServer runs an in-process nbtried-equivalent on a random port.
func startServer(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

// TestSmokeAgainstServer: the -smoke battery must pass against the real
// server — this is the same check CI runs across processes.
func TestSmokeAgainstServer(t *testing.T) {
	addr := startServer(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-addr", addr, "-smoke"}, &out, &errOut); err != nil {
		t.Fatalf("smoke failed: %v", err)
	}
	if !strings.Contains(out.String(), "smoke ok") {
		t.Fatalf("smoke output: %q", out.String())
	}
}

// TestQuickBenchWritesArtifact runs the quick sweep end to end and
// checks the emitted artifact parses, has the expected shape, and pins
// a non-empty codec allocation profile.
func TestQuickBenchWritesArtifact(t *testing.T) {
	addr := startServer(t)
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	args := []string{"-addr", addr, "-quick", "-json", "-out", dir,
		"-duration", "50ms", "-warmup", "10ms", "-pipeline", "8"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("bench failed: %v\n%s", err, errOut.String())
	}
	path := filepath.Join(dir, "BENCH_server.json")
	a, err := bench.ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Figure != "server" || a.Schema != bench.ArtifactSchema {
		t.Fatalf("artifact header: %+v", a)
	}
	if a.Config.PipelineDepth != 8 || a.Config.ValueSize != 64 {
		t.Fatalf("artifact config: %+v", a.Config)
	}
	if len(a.Series) != 1 || a.Series[0].Name != "get90-set10" {
		t.Fatalf("series: %+v", a.Series)
	}
	pts := a.Series[0].Points
	if len(pts) != 2 || pts[0].Threads != 1 || pts[1].Threads != 2 {
		t.Fatalf("points: %+v", pts)
	}
	for _, p := range pts {
		if p.MeanOpsPerSec <= 0 {
			t.Fatalf("non-positive throughput: %+v", p)
		}
	}
	if a.Series[0].AllocsPerOp == nil {
		t.Fatal("artifact missing the codec allocs profile")
	}
	// Server-counted per-command calls ride along on every point, and
	// must roughly agree with the workload shape: the 90/10 mix ran
	// both GETs and SETs in every measured window.
	for _, p := range pts {
		if p.ServerCmdCalls["get"] <= 0 || p.ServerCmdCalls["set"] <= 0 {
			t.Fatalf("point %d missing server-side get/set counts: %+v", p.Threads, p.ServerCmdCalls)
		}
		if p.ServerCmdCalls["get"] < p.ServerCmdCalls["set"] {
			t.Fatalf("point %d: server counted get=%d < set=%d under a 90/10 GET mix",
				p.Threads, p.ServerCmdCalls["get"], p.ServerCmdCalls["set"])
		}
	}
	// The artifact must gate cleanly against itself.
	if regs, err := bench.CompareArtifacts(a, a, bench.CompareOptions{MaxDrop: 0.5, AllocSlack: 0.25}); err != nil || len(regs) != 0 {
		t.Fatalf("self-comparison: %v, %v", regs, err)
	}
}

// TestCodecAllocsDeterministic: the pinned profile is the whole point
// of gating allocs strictly; two measurements must agree exactly.
func TestCodecAllocsDeterministic(t *testing.T) {
	a := codecAllocs(64)
	b := codecAllocs(64)
	if a != b {
		t.Fatalf("codec allocs not deterministic: %+v vs %+v", a, b)
	}
	// GET and SET replies carry a payload the parser must copy, so at
	// least one allocation each; DEL's integer reply parses into a
	// stack Value and is rightly allocation-free.
	if a.Contains <= 0 || a.Insert <= 0 || a.Delete != 0 {
		t.Fatalf("implausible codec profile: %+v", a)
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-clients", "0"},
		{"-clients", "x"},
		{"-get-pct", "101"},
		{"-pipeline", "0"},
	} {
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	// Unreachable server: a readable connection error, not a hang.
	if err := run([]string{"-addr", "127.0.0.1:1", "-quick"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "cannot reach server") {
		t.Errorf("unreachable server: %v", err)
	}
}

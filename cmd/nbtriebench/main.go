// Command nbtriebench is the load generator for nbtried: it drives a
// running server over TCP with a configurable number of client
// connections, each pipelining batches of GET/SET commands over keys
// drawn from the repository's workload generator (internal/workload,
// the same key distributions as the library benchmarks), and reports
// throughput per client count in the same nbtrie-bench/v1 artifact
// format cmd/benchtrie emits — so cmd/benchcheck gates server
// throughput exactly like the library figures.
//
//	nbtried -addr 127.0.0.1:0 -port-file port.txt &
//	nbtriebench -addr "$(cat port.txt)" -json -out .
//	benchcheck -max-drop 90 BENCH_server.json fresh/BENCH_server.json
//
// Keys are rendered as decimal strings, which both built-in keyers
// accept (the bytes keyer as short ASCII; the decimal keyer natively),
// so -key-range must stay below 10^7 when the server runs the default
// bytes keyer (7-byte keys).
//
// The artifact's allocs/op profile pins the *client codec* rather than
// the server (whose allocations the wire hides): allocations per
// encoded+parsed GET (contains), SET (insert) and DEL (delete) round
// trip through internal/resp. Those counts are deterministic, so the
// benchcheck gate keeps them strict while throughput stays tolerant.
//
// -smoke runs a quick correctness battery against a *freshly started,
// empty* server with the default bytes keyer and >= 2 shards (it
// asserts exact DBSIZE/SCAN contents and leaves a few keys behind, so
// it is not rerunnable against the same instance): basic command
// semantics, pipelining, RENAME's atomic same-shard move plus its
// two-phase cross-shard move (RENAMESTRICT keeps the old refusal), and
// a TTL battery (EXPIRE/TTL/PERSIST/SETEX/GETEX, lazy expiry of a past
// deadline). It exercises the same client codec and exits non-zero on
// the first mismatch, which makes it the CI end-to-end check when run
// under -race.
//
// -ttl adds a TTL-churn series to the sweep: a quarter of the write
// side becomes SETEX with a 1-second deadline, so keys expire and are
// lazily purged / reaped underneath the measured GET traffic — the
// expiry subsystem's overhead shows up as a gated series
// ("get90-set10+ttl") instead of silently taxing the main one.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nbtrie/internal/bench"
	"nbtrie/internal/resp"
	"nbtrie/internal/server"
	"nbtrie/internal/stats"
	"nbtrie/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nbtriebench:", err)
		os.Exit(1)
	}
}

type options struct {
	addr      string
	clients   []int
	pipeline  int
	valueSize int
	getPct    int
	keyRange  uint64
	duration  time.Duration
	warmup    time.Duration
	trials    int
	seed      uint64
	quick     bool
	jsonOut   bool
	outDir    string
	smoke     bool
	noPrefill bool
	bgsave    bool
	ttl       bool
	ttlChurn  bool // this sweep's writes are SETEX-mixed (set by runBench, not a flag)
	suffix    string
	appendOut bool
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nbtriebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:6380", "server address (host:port)")
		clientsStr = fs.String("clients", "1,2,4", "comma-separated client-connection counts to sweep")
		pipeline   = fs.Int("pipeline", 16, "pipeline depth: commands in flight per connection")
		valueSize  = fs.Int("value-size", 64, "SET value size in bytes")
		getPct     = fs.Int("get-pct", 90, "percentage of GETs; the rest are SETs")
		keyRange   = fs.Uint64("key-range", 100_000, "keys drawn uniformly from [0, key-range)")
		duration   = fs.Duration("duration", 2*time.Second, "measured time per trial")
		warmup     = fs.Duration("warmup", 500*time.Millisecond, "warmup before the trials of each point")
		trials     = fs.Int("trials", 3, "measured trials per point")
		seed       = fs.Uint64("seed", 1, "workload seed")
		quick      = fs.Bool("quick", false, "tiny sweep for smoke/CI use (shrinks duration, trials, clients, key range)")
		jsonOut    = fs.Bool("json", false, "write the BENCH_server.json artifact")
		outDir     = fs.String("out", ".", "artifact output directory")
		smoke      = fs.Bool("smoke", false, "run the correctness battery instead of the benchmark (needs a fresh empty server with the default bytes keyer)")
		noPrefill  = fs.Bool("no-prefill", false, "skip prefilling every other key before measuring")
		bgsave     = fs.Bool("bgsave", false, "fire BGSAVE every 100ms during every trial (server must run with -dir); measures dump-under-load throughput")
		ttl        = fs.Bool("ttl", false, "add a TTL-churn series: 1/4 of writes become SETEX with a 1s deadline, so expiry runs under the measured load")
		suffix     = fs.String("series-suffix", "", "appended to every series name (e.g. \"-affine\" when benchmarking a -dispatch=affine server)")
		appendFl   = fs.Bool("append", false, "with -json: merge series into an existing artifact instead of overwriting it (same-name series are replaced)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := options{
		addr: *addr, pipeline: *pipeline, valueSize: *valueSize,
		getPct: *getPct, keyRange: *keyRange, duration: *duration,
		warmup: *warmup, trials: *trials, seed: *seed, quick: *quick,
		jsonOut: *jsonOut, outDir: *outDir, smoke: *smoke, noPrefill: *noPrefill,
		bgsave: *bgsave, ttl: *ttl, suffix: *suffix, appendOut: *appendFl,
	}
	for _, f := range strings.Split(*clientsStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -clients entry %q", f)
		}
		opt.clients = append(opt.clients, n)
	}
	if opt.quick {
		opt.duration = 200 * time.Millisecond
		opt.warmup = 50 * time.Millisecond
		opt.trials = 1
		opt.keyRange = 10_000
		opt.clients = []int{1, 2}
	}
	if opt.getPct < 0 || opt.getPct > 100 {
		return fmt.Errorf("-get-pct %d out of [0, 100]", opt.getPct)
	}
	if opt.pipeline < 1 {
		return fmt.Errorf("-pipeline must be >= 1")
	}
	if opt.smoke {
		if err := runSmoke(opt.addr); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "smoke ok")
		return nil
	}
	return runBench(opt, stdout)
}

// client is one benchmark connection with the shared codec.
type client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *resp.Writer
}

func dialClient(addr string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    resp.NewWriter(bufio.NewWriterSize(conn, 64<<10)),
	}, nil
}

func (c *client) close() { c.conn.Close() }

// do sends one command and reads one reply (setup paths only; the
// benchmark loop pipelines by hand).
func (c *client) do(args ...string) (resp.Value, error) {
	c.w.WriteCommandString(args...)
	if err := c.w.Flush(); err != nil {
		return resp.Value{}, err
	}
	return resp.ReadReply(c.r, resp.Limits{})
}

// prefill stores a value under every other key so GETs hit about half
// the time, mirroring the library harness's half-full prefill.
func prefill(opt options) error {
	c, err := dialClient(opt.addr)
	if err != nil {
		return err
	}
	defer c.close()
	val := string(bytes.Repeat([]byte{'x'}, opt.valueSize))
	inFlight := 0
	for k := uint64(0); k < opt.keyRange; k += 2 {
		c.w.WriteCommandString("SET", strconv.FormatUint(k, 10), val)
		inFlight++
		if inFlight == 512 {
			if err := drain(c, inFlight); err != nil {
				return fmt.Errorf("prefill: %w", err)
			}
			inFlight = 0
		}
	}
	return drain(c, inFlight)
}

// drain flushes and consumes n replies, failing on any error reply.
func drain(c *client, n int) error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		v, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			return err
		}
		if err := v.Err(); err != nil {
			return fmt.Errorf("server error: %w", err)
		}
	}
	return nil
}

// trial runs nClients pipelined connections for d and returns aggregate
// completed commands per second plus per-command latency samples in
// microseconds. Latency is measured client-side per pipelined batch —
// flush to last reply parsed — divided by the pipeline depth: the
// amortized per-command cost a pipelining client actually experiences,
// not the isolated round-trip time of an unpipelined command.
func trial(opt options, nClients int, d time.Duration, trialSeed uint64) (float64, []float64, error) {
	mix := workload.Mix{FindPct: opt.getPct, InsertPct: 100 - opt.getPct}
	clients := make([]*client, nClients)
	for i := range clients {
		c, err := dialClient(opt.addr)
		if err != nil {
			return 0, nil, err
		}
		defer c.close()
		clients[i] = c
	}
	val := string(bytes.Repeat([]byte{'x'}, opt.valueSize))
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int64
		lats  []float64
		fail  error
	)
	deadline := time.Now().Add(d)
	if opt.bgsave {
		// The dump-under-load scenario: rotations and snapshot streams
		// race the measured traffic for the whole trial. BGSAVE replies
		// are read but not required to succeed ("already in progress" is
		// routine) — EXCEPT "persistence is disabled", which means the
		// whole measurement is vacuous and must abort.
		admin, err := dialClient(opt.addr)
		if err != nil {
			return 0, nil, err
		}
		defer admin.close()
		if v, err := admin.do("BGSAVE"); err != nil {
			return 0, nil, err
		} else if e := v.Err(); e != nil && strings.Contains(e.Error(), "disabled") {
			return 0, nil, fmt.Errorf("-bgsave needs a server started with -dir: %w", e)
		}
		stopSaver := make(chan struct{})
		saverDone := make(chan struct{})
		defer func() { close(stopSaver); <-saverDone }()
		go func() {
			defer close(saverDone)
			t := time.NewTicker(100 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if _, err := admin.do("BGSAVE"); err != nil {
						return
					}
				case <-stopSaver:
					return
				}
			}
		}()
	}
	for i, c := range clients {
		wg.Add(1)
		go func(c *client, seed uint64) {
			defer wg.Done()
			g := workload.NewGenerator(mix, opt.keyRange, seed)
			n := int64(0)
			samples := make([]float64, 0, 4096)
			var err error
			for time.Now().Before(deadline) {
				// One pipelined batch: write opt.pipeline commands,
				// flush once, read opt.pipeline replies.
				for j := 0; j < opt.pipeline; j++ {
					op := g.Next()
					key := strconv.FormatUint(op.Key, 10)
					switch {
					case op.Kind == workload.OpFind:
						c.w.WriteCommandString("GET", key)
					case opt.ttlChurn && op.Key%4 == 0:
						// TTL churn: deadlines a second out, so keys armed
						// early in the trial expire under the later traffic
						// and the lazy checks + reaper run while we measure.
						c.w.WriteCommandString("SETEX", key, "1", val)
					default:
						c.w.WriteCommandString("SET", key, val)
					}
				}
				batchStart := time.Now()
				if err = drain(c, opt.pipeline); err != nil {
					break
				}
				samples = append(samples,
					time.Since(batchStart).Seconds()*1e6/float64(opt.pipeline))
				n += int64(opt.pipeline)
			}
			mu.Lock()
			total += n
			lats = append(lats, samples...)
			if err != nil && fail == nil {
				fail = err
			}
			mu.Unlock()
		}(c, trialSeed*1000003+uint64(i)*7919)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if fail != nil {
		return 0, nil, fail
	}
	if elapsed <= 0 {
		return 0, nil, nil
	}
	return float64(total) / elapsed.Seconds(), lats, nil
}

// probeDispatchMode asks the server how it dispatches (the INFO
// "dispatch:" line), so the in-process alloc probe measures the same
// path the throughput numbers came from. Unknown/old servers report
// "conn" — the default path.
func probeDispatchMode(c *client) string {
	v, err := c.do("INFO")
	if err != nil || v.Kind != resp.TypeBulk {
		return "conn"
	}
	for _, line := range strings.Split(string(v.Str), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "dispatch:"); ok {
			return rest
		}
	}
	return "conn"
}

// probeCommandstats snapshots the server's per-command call counters
// (the INFO Commandstats section, cmdstat_<name>:calls=N,...). sweep
// diffs two snapshots around a point's measured trials, so the artifact
// carries what the server counted for exactly that window — warmup and
// other points excluded. nil on any failure (old server, no INFO):
// the extras are additive, never load-bearing.
func probeCommandstats(addr string) map[string]int64 {
	c, err := dialClient(addr)
	if err != nil {
		return nil
	}
	defer c.close()
	v, err := c.do("INFO", "commandstats")
	if err != nil || v.Kind != resp.TypeBulk {
		return nil
	}
	m := make(map[string]int64)
	for _, line := range strings.Split(string(v.Str), "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "cmdstat_")
		if !ok {
			continue
		}
		name, fields, ok := strings.Cut(rest, ":")
		if !ok {
			continue
		}
		for _, kv := range strings.Split(fields, ",") {
			if cv, ok := strings.CutPrefix(kv, "calls="); ok {
				if n, err := strconv.ParseInt(cv, 10, 64); err == nil {
					m[name] = n
				}
			}
		}
	}
	return m
}

// diffCommandstats returns after-before for every command that moved.
// nil when either snapshot failed or nothing moved.
func diffCommandstats(before, after map[string]int64) map[string]int64 {
	if before == nil || after == nil {
		return nil
	}
	var d map[string]int64
	for name, n := range after {
		if delta := n - before[name]; delta > 0 {
			if d == nil {
				d = make(map[string]int64)
			}
			d[name] = delta
		}
	}
	return d
}

func runBench(opt options, stdout io.Writer) error {
	// Fail fast with a readable error if the server is not there.
	probe, err := dialClient(opt.addr)
	if err != nil {
		return fmt.Errorf("cannot reach server: %w", err)
	}
	if v, err := probe.do("PING"); err != nil || v.Kind != resp.TypeSimple {
		probe.close()
		return fmt.Errorf("server at %s did not answer PING (%v, %v)", opt.addr, v, err)
	}
	dispatchMode := probeDispatchMode(probe)
	probe.close()

	if !opt.noPrefill {
		if err := prefill(opt); err != nil {
			return err
		}
	}

	baseName := fmt.Sprintf("get%d-set%d%s", opt.getPct, 100-opt.getPct, opt.suffix)
	fmt.Fprintf(stdout, "nbtriebench: %s @ %s (dispatch=%s), pipeline %d, %dB values, key range %d, %d x %v per point\n",
		baseName, opt.addr, dispatchMode, opt.pipeline, opt.valueSize, opt.keyRange, opt.trials, opt.duration)

	sweep := func(o options, name string) (bench.Series, error) {
		fmt.Fprintf(stdout, "%s\n%8s %14s %8s %10s %10s\n", name, "clients", "mean ops/s", "±stddev", "p50 µs", "p99 µs")
		series := bench.Series{Name: name}
		for _, nClients := range o.clients {
			if o.warmup > 0 {
				if _, _, err := trial(o, nClients, o.warmup, o.seed+500009); err != nil {
					return series, err
				}
			}
			before := probeCommandstats(o.addr)
			xs := make([]float64, 0, o.trials)
			var lats []float64 // pooled across trials of this point
			for tr := 0; tr < o.trials; tr++ {
				x, ls, err := trial(o, nClients, o.duration, o.seed+uint64(tr)+1000003)
				if err != nil {
					return series, err
				}
				xs = append(xs, x)
				lats = append(lats, ls...)
			}
			cmdCalls := diffCommandstats(before, probeCommandstats(o.addr))
			sum := stats.Summarize(xs)
			p50 := stats.Percentile(lats, 50)
			p99 := stats.Percentile(lats, 99)
			series.Points = append(series.Points, bench.Point{
				Threads: nClients, Summary: sum,
				P50LatencyUS: p50, P99LatencyUS: p99,
				ServerCmdCalls: cmdCalls,
			})
			fmt.Fprintf(stdout, "%8d %14.0f %7.1f%% %10.1f %10.1f\n",
				nClients, sum.Mean, 100*sum.RelStddev(), p50, p99)
		}
		return series, nil
	}

	plain := opt
	plain.bgsave = false
	series, err := sweep(plain, baseName)
	if err != nil {
		return err
	}
	// With -bgsave, a second sweep runs the identical workload while
	// BGSAVE cycles fire continuously: the two series side by side in
	// the artifact are the "dumps never block mutators" evidence, and
	// benchcheck gates the bgsave series like any other.
	var bgSeries *bench.Series
	if opt.bgsave {
		s, err := sweep(opt, baseName+"+bgsave")
		if err != nil {
			return err
		}
		bgSeries = &s
	}
	// With -ttl, a third sweep runs the same mix with a quarter of the
	// writes as 1-second SETEX: expiring keys churn through the deadline
	// index while GETs take the lazy-expiry path, and benchcheck gates
	// the series so expiry overhead can't regress silently.
	var ttlSeries *bench.Series
	if opt.ttl {
		to := plain
		to.ttlChurn = true
		s, err := sweep(to, baseName+"+ttl")
		if err != nil {
			return err
		}
		ttlSeries = &s
	}

	if opt.jsonOut {
		cfg := bench.Config{
			Mix:      workload.Mix{FindPct: opt.getPct, InsertPct: 100 - opt.getPct},
			KeyRange: opt.keyRange,
			Duration: opt.duration,
			Warmup:   opt.warmup,
			Trials:   opt.trials,
			Seed:     opt.seed,
		}
		a := bench.NewArtifact("server", "nbtried RESP server: pipelined GET/SET over loopback TCP", cfg, 0, opt.quick)
		a.Config.PipelineDepth = opt.pipeline
		a.Config.ValueSize = opt.valueSize
		a.Machine = bench.HostMachine()
		allocs := codecAllocs(opt.valueSize)
		a.AddSeries(series, &allocs)
		// The server-side dispatch pins ride on the main series. The probe
		// runs in-process against the same dispatch mode the server
		// reported, so the artifact records the path that produced the
		// throughput numbers above.
		if sp, err := server.MeasureServerPathAllocs(dispatchMode, opt.valueSize); err == nil {
			a.Series[len(a.Series)-1].ServerAllocsPerOp = &bench.ServerAllocsProfile{
				Get: sp.Get, Set: sp.Set, SetCodec: sp.SetCodec,
				Del: sp.Del, Exists: sp.Exists, MGet: sp.MGet,
			}
		} else {
			fmt.Fprintf(stdout, "warning: server-path alloc probe failed: %v\n", err)
		}
		if bgSeries != nil {
			a.AddSeries(*bgSeries, nil)
		}
		if ttlSeries != nil {
			a.AddSeries(*ttlSeries, nil)
		}
		// -append folds this run's series into an existing artifact (the
		// two-mode BENCH_server.json workflow: one daemon per dispatch
		// mode, two nbtriebench runs, one file). Same-name series are
		// replaced; everything else in the existing artifact is kept.
		if opt.appendOut {
			existingPath := filepath.Join(opt.outDir, bench.ArtifactFilename("server"))
			if existing, err := bench.ReadArtifact(existingPath); err == nil {
				for _, s := range a.Series {
					replaced := false
					for i := range existing.Series {
						if existing.Series[i].Name == s.Name {
							existing.Series[i] = s
							replaced = true
							break
						}
					}
					if !replaced {
						existing.Series = append(existing.Series, s)
					}
				}
				existing.Machine = a.Machine
				a = existing
			} else if !os.IsNotExist(err) {
				return fmt.Errorf("-append: %w", err)
			}
		}
		path, err := bench.WriteArtifact(opt.outDir, a)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	return nil
}

// codecAllocs pins the client codec's allocations per command round
// trip — encode the request into a buffer, parse a canned reply — with
// no network or server involved, so the counts are deterministic:
// contains = GET (bulk reply), insert = SET (+OK), delete = DEL (:1).
func codecAllocs(valueSize int) bench.AllocsProfile {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 64<<10)
	w := resp.NewWriter(bw)
	val := strings.Repeat("x", valueSize)
	getReply := []byte("$5\r\nhello\r\n")
	okReply := []byte("+OK\r\n")
	intReply := []byte(":1\r\n")
	var rd bytes.Reader
	br := bufio.NewReaderSize(nil, 4<<10)
	roundTrip := func(reply []byte, cmd func()) float64 {
		return testing.AllocsPerRun(200, func() {
			buf.Reset()
			cmd()
			if err := w.Flush(); err != nil {
				panic(err)
			}
			rd.Reset(reply)
			br.Reset(&rd)
			v, err := resp.ReadReply(br, resp.Limits{})
			if err != nil || v.Kind == resp.TypeError {
				panic(fmt.Sprintf("codec round trip broke: %v %v", v, err))
			}
		})
	}
	return bench.AllocsProfile{
		Contains: roundTrip(getReply, func() { w.WriteCommandString("GET", "key:123456") }),
		Insert:   roundTrip(okReply, func() { w.WriteCommandString("SET", "key:123456", val) }),
		Delete:   roundTrip(intReply, func() { w.WriteCommandString("DEL", "key:123456") }),
	}
}

// runSmoke is the end-to-end correctness battery. It requires a fresh,
// empty server (bytes keyer, >= 2 shards): the assertions are exact and
// the battery leaves keys behind.
func runSmoke(addr string) error {
	c, err := dialClient(addr)
	if err != nil {
		return err
	}
	defer c.close()

	expect := func(want string, args ...string) error {
		v, err := c.do(args...)
		if err != nil {
			return fmt.Errorf("%v: %w", args, err)
		}
		if got := v.String(); got != want {
			return fmt.Errorf("%v = %s, want %s", args, got, want)
		}
		return nil
	}
	expectErr := func(fragment string, args ...string) error {
		v, err := c.do(args...)
		if err != nil {
			return fmt.Errorf("%v: %w", args, err)
		}
		if v.Kind != resp.TypeError || !strings.Contains(string(v.Str), fragment) {
			return fmt.Errorf("%v = %s, want error containing %q", args, v, fragment)
		}
		return nil
	}
	// expectIntRange tolerates clock skid: TTL on a freshly armed key is
	// its round-up remainder, which any pause between commands can shave.
	expectIntRange := func(lo, hi int64, args ...string) error {
		v, err := c.do(args...)
		if err != nil {
			return fmt.Errorf("%v: %w", args, err)
		}
		if v.Kind != resp.TypeInt || v.Int < lo || v.Int > hi {
			return fmt.Errorf("%v = %s, want integer in [%d, %d]", args, v, lo, hi)
		}
		return nil
	}

	checks := []func() error{
		func() error { return expect("PONG", "PING") },
		func() error { return expect("OK", "SET", "aa", "v1") },
		func() error { return expect(`"v1"`, "GET", "aa") },
		func() error { return expect("(integer) 1", "EXISTS", "aa") },
		func() error { return expect("(nil)", "GET", "zz") },
		func() error { return expect("OK", "MSET", "ab", "v2", "ac", "v3") },
		func() error { return expect("(integer) 3", "DBSIZE") },
		// Same-shard atomic rename: "aa" -> "ad" share their first
		// byte, hence their shard for any shard count up to 256.
		func() error { return expect("OK", "RENAME", "aa", "ad") },
		func() error { return expect("(nil)", "GET", "aa") },
		func() error { return expect(`"v1"`, "GET", "ad") },
		func() error { return expectErr("no such key", "RENAME", "aa", "ae") },
		func() error { return expectErr("destination key exists", "RENAME", "ab", "ac") },
		// Cross-shard: "ad" (0x61...) and "\xe1d" differ in the top key
		// bit, so they land in different shards for any shard count >= 2.
		// RENAMESTRICT keeps the atomic-only contract and refuses;
		// RENAME performs the two-phase move (DESIGN.md §12).
		func() error { return expectErr("CROSSSHARD", "RENAMESTRICT", "ad", "\xe1d") },
		func() error { return expect(`"v1"`, "GET", "ad") },
		func() error { return expect("OK", "RENAME", "ad", "\xe1d") },
		func() error { return expect("(nil)", "GET", "ad") },
		func() error { return expect(`"v1"`, "GET", "\xe1d") },
		func() error { return expectErr("destination key exists", "RENAME", "ab", "\xe1d") },
		func() error { return expectErr("exceeds the 7-byte maximum", "SET", "12345678", "v") },
		func() error { return expect("(integer) 1", "DEL", "\xe1d", "nope") },
		func() error { return expect("(integer) 2", "DBSIZE") },
		// TTL battery: arm, observe, disarm, and lazily expire.
		func() error { return expect("(integer) -1", "TTL", "ab") },
		func() error { return expect("(integer) -2", "TTL", "nope") },
		func() error { return expect("(integer) 0", "EXPIRE", "nope", "100") },
		func() error { return expect("(integer) 1", "EXPIRE", "ab", "100") },
		func() error { return expectIntRange(1, 100, "TTL", "ab") },
		func() error { return expectIntRange(1, 100_000, "PTTL", "ab") },
		func() error { return expect("(integer) 1", "PERSIST", "ab") },
		func() error { return expect("(integer) -1", "TTL", "ab") },
		func() error { return expect("OK", "SETEX", "tt", "100", "vt") },
		func() error { return expectIntRange(1, 100, "TTL", "tt") },
		func() error { return expect(`"vt"`, "GETEX", "tt", "PERSIST") },
		func() error { return expect("(integer) -1", "TTL", "tt") },
		// A deadline in the past deletes immediately (Redis replies :1).
		func() error { return expect("(integer) 1", "PEXPIREAT", "tt", "1") },
		func() error { return expect("(nil)", "GET", "tt") },
		func() error { return expect("(integer) -2", "TTL", "tt") },
		func() error { return expect("(integer) 2", "DBSIZE") },
	}
	for _, check := range checks {
		if err := check(); err != nil {
			return err
		}
	}

	// SCAN must return every live key exactly once.
	seen := map[string]int{}
	cursor := "0"
	for i := 0; ; i++ {
		if i > 100 {
			return fmt.Errorf("SCAN did not terminate")
		}
		v, err := c.do("SCAN", cursor, "COUNT", "1")
		if err != nil {
			return err
		}
		if v.Kind != resp.TypeArray || len(v.Array) != 2 {
			return fmt.Errorf("SCAN reply shape: %s", v)
		}
		for _, k := range v.Array[1].Array {
			seen[string(k.Str)]++
		}
		cursor = string(v.Array[0].Str)
		if cursor == "0" {
			break
		}
	}
	if len(seen) != 2 || seen["ab"] != 1 || seen["ac"] != 1 {
		return fmt.Errorf("SCAN keys = %v, want ab and ac exactly once", seen)
	}

	// Pipelining: a burst of writes answered in order.
	const burst = 50
	for i := 0; i < burst; i++ {
		c.w.WriteCommandString("SET", "p", strconv.Itoa(i))
		c.w.WriteCommandString("GET", "p")
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for i := 0; i < burst; i++ {
		set, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			return err
		}
		if set.Kind != resp.TypeSimple {
			return fmt.Errorf("pipelined SET %d = %s", i, set)
		}
		get, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			return err
		}
		if want := strconv.Itoa(i); string(get.Str) != want {
			return fmt.Errorf("pipelined GET %d = %s, want %q: replies out of order", i, get, want)
		}
	}
	return nil
}

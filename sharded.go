package nbtrie

import (
	"iter"

	"nbtrie/internal/sharded"
)

// ErrCrossShard is returned by ShardedMap.ReplaceKey when the two keys
// live in different shards. Replace atomicity is a per-shard guarantee —
// one engine instance, one linearization point — and the sharded map
// refuses to fake a cross-shard replace with locks or a non-atomic
// delete+insert. Callers that can tolerate the intermediate states can
// compose Delete and Store themselves; callers that need atomicity must
// pick keys in the same shard (see ShardedMap.SameShard) or use the
// unsharded Map.
var ErrCrossShard = sharded.ErrCrossShard

// ShardedMap is a Map-alike built for multi-core write throughput: the
// key space [0, 2^width) is partitioned into 2^s contiguous slices by
// the top s key bits, each served by an independent instance of the
// non-blocking Patricia-trie engine. Writers touching different shards
// contend on nothing at all — no shared root, no shared helping traffic
// — which is what buys write scaling the single-root trie cannot offer;
// see DESIGN.md §5 for the scheme and its measured effect.
//
// Per-operation guarantees are per shard and match Map: Load and
// Contains are wait-free and allocation-free, every single-key mutation
// is lock-free, and ReplaceKey is the paper's atomic Replace when old
// and new share a shard (a cross-shard pair returns ErrCrossShard —
// atomicity is never faked). All and Ascend stitch the per-shard ascents
// into the global ascending key order. Aggregate reads (Len, iteration)
// are per-shard-exact but not a global snapshot, the same Range contract
// as Map.
//
// CompareAndSwap and CompareAndDelete compare values with Go's ==, like
// sync.Map: they panic if the values are not comparable.
type ShardedMap[V any] struct {
	t *sharded.Trie[V]
}

// NewShardedMap returns an empty sharded map over keys in [0, 2^width);
// width must be in [1, 63]. shards selects the shard count: 0 picks the
// default (runtime.GOMAXPROCS rounded up to a power of two, floored at 8
// and capped at 256); any other value must be a power of two in
// [1, 256]. The count is clamped so each shard keeps at least one key
// bit; Shards reports the count in effect.
func NewShardedMap[V any](width uint32, shards int) (*ShardedMap[V], error) {
	t, err := sharded.New[V](width, shards)
	if err != nil {
		return nil, err
	}
	return &ShardedMap[V]{t: t}, nil
}

// NewShardedMapSpan is NewShardedMap with each shard's trie built at
// digit width span: 2^span-child internal nodes resolve span key bits
// per level (see NewKaryPatriciaTrie), composing the sharded write
// scaling with the k-ary depth cut. span must be in [1, 6]; 1 is
// NewShardedMap.
func NewShardedMapSpan[V any](width uint32, shards int, span uint32) (*ShardedMap[V], error) {
	t, err := sharded.NewSpan[V](width, shards, span)
	if err != nil {
		return nil, err
	}
	return &ShardedMap[V]{t: t}, nil
}

// Load returns the value bound to k. Wait-free and allocation-free: a
// shard index computation, then one pure-read descent of the owning
// shard.
func (m *ShardedMap[V]) Load(k uint64) (V, bool) {
	return m.t.Load(k)
}

// Store binds k to val, inserting or overwriting (lock-free upsert
// within the owning shard). It returns false only when k is out of range
// for the map's width.
func (m *ShardedMap[V]) Store(k uint64, val V) bool {
	return m.t.Store(k, val)
}

// LoadOrStore returns the existing value for k if present (loaded true);
// otherwise it stores val and returns it (loaded false). ok is false
// only when k is out of range — nothing was loaded or stored.
func (m *ShardedMap[V]) LoadOrStore(k uint64, val V) (actual V, loaded, ok bool) {
	return m.t.LoadOrStore(k, val)
}

// Delete removes k; false iff k was absent.
func (m *ShardedMap[V]) Delete(k uint64) bool {
	return m.t.Delete(k)
}

// CompareAndSwap swaps k's value from old to new if the stored value
// equals old (==; panics if the values are not comparable).
func (m *ShardedMap[V]) CompareAndSwap(k uint64, old, new V) bool {
	return m.t.CompareAndSwap(k, old, new)
}

// CompareAndDelete deletes k if its value equals old (==; panics if the
// values are not comparable).
func (m *ShardedMap[V]) CompareAndDelete(k uint64, old V) bool {
	return m.t.CompareAndDelete(k, old)
}

// ReplaceKey atomically rebinds old's value to the key new, removing
// old, when both keys live in the same shard: one linearization point,
// the value travels, exactly Map.ReplaceKey. swapped is true iff old was
// present and new absent (and old != new). When the keys are in range
// but owned by different shards nothing happens and err is
// ErrCrossShard; out-of-range keys return (false, nil) like Map.
func (m *ShardedMap[V]) ReplaceKey(old, new uint64) (swapped bool, err error) {
	return m.t.Replace(old, new)
}

// DeleteFunc deletes k if cond returns true for its stored value,
// returning true iff the key was deleted. Unlike CompareAndDelete it
// never boxes or compares values, so it works for non-comparable value
// types (byte slices); the engine pins the inspected leaf until the
// delete commits, so the value cond approved is exactly the value
// removed. cond may run more than once under contention and must be
// side-effect free. This is the primitive nbtried's expiry uses to purge
// a key only if it still holds the expired value.
func (m *ShardedMap[V]) DeleteFunc(k uint64, cond func(V) bool) bool {
	return m.t.DeleteFunc(k, cond)
}

// MoveKey moves the value stored under from to the key to. Same-shard
// pairs are the atomic ReplaceKey. Cross-shard pairs run a two-phase
// protocol — register an in-flight marker, insert at the destination
// (failing without side effects if it is occupied), then delete the
// source — which is not atomic: a reader can observe both copies during
// the window, but never neither (the source is deleted only after the
// destination insert committed). The marker gives mutual exclusion per
// source key (a concurrent move of the same source fails with
// ErrMoveBusy) and lets ResolveMoves finish a move whose goroutine died
// between phases. moved is (true, nil) when the value moved and
// (false, nil) when the source was absent, the destination occupied, or
// a key out of range. See DESIGN.md §12 for the full protocol and its
// visibility window.
func (m *ShardedMap[V]) MoveKey(from, to uint64) (moved bool, err error) {
	return m.t.MoveKey(from, to)
}

// ErrMoveBusy is returned by MoveKey when a cross-shard move of the same
// source key is already in flight.
var ErrMoveBusy = sharded.ErrMoveBusy

// ResolveMoves completes or abandons cross-shard moves interrupted
// between phases, driven by their in-flight markers: a move whose
// destination insert committed is finished (source deleted), one that
// never became visible is abandoned with the source intact. Returns the
// number completed. Quiescent use only — recovery, not concurrent use.
func (m *ShardedMap[V]) ResolveMoves() int {
	return m.t.ResolveMoves()
}

// Contains reports whether k has a binding, wait-free and without
// allocating.
func (m *ShardedMap[V]) Contains(k uint64) bool {
	return m.t.Contains(k)
}

// Len sums the per-shard atomic entry counters: O(shards) loads, no
// allocation. Exact at quiescence; under concurrent updates each shard
// lags by at most its in-flight mutations and the sum is not a global
// snapshot — the same consistency window as All/Ascend.
func (m *ShardedMap[V]) Len() int {
	return m.t.Len()
}

// Width returns the key width the map was built with.
func (m *ShardedMap[V]) Width() uint32 {
	return m.t.Width()
}

// Shards returns the number of shards in effect.
func (m *ShardedMap[V]) Shards() int {
	return m.t.Shards()
}

// SameShard reports whether a and b are both in range and owned by the
// same shard — the precondition for an atomic ReplaceKey between them.
func (m *ShardedMap[V]) SameShard(a, b uint64) bool {
	return m.t.SameShard(a, b)
}

// ShardOf returns the index (in [0, Shards())) of the shard owning k,
// and false for keys outside the map's width. Shard-affine callers —
// nbtried's -dispatch=affine routes each single-key command to a
// per-shard worker with it — get the same partition the map itself
// uses, so "same shard" here means "no contention there".
func (m *ShardedMap[V]) ShardOf(k uint64) (int, bool) {
	return m.t.ShardOf(k)
}

// All iterates over all entries in increasing key order, stitching the
// per-shard ascents. Same consistency contract as Map.All per shard;
// entries in different shards are not a single snapshot.
func (m *ShardedMap[V]) All() iter.Seq2[uint64, V] {
	return m.Ascend(0)
}

// Ascend iterates over the entries with key >= from, in increasing key
// order. Shards entirely below from are skipped and the first shard
// resumes from from, so a midpoint resume costs one descent.
func (m *ShardedMap[V]) Ascend(from uint64) iter.Seq2[uint64, V] {
	return func(yield func(uint64, V) bool) {
		m.t.AscendKV(from, yield)
	}
}

// Validate checks every shard's structural invariants — the paper's
// proof invariants plus per-instantiation label checks. Quiescent use
// only (tests, diagnostics, post-recovery verification).
func (m *ShardedMap[V]) Validate() error {
	return m.t.Validate()
}

// shardedSet adapts the sharded trie to the registry's Set interface.
// It deliberately does not implement ReplaceSet: the sharded trie's
// replace is atomic only within a shard, and a partial Replace cannot
// honor the registry's full-key-space contract.
type shardedSet struct {
	t *sharded.Trie[struct{}]
}

var _ Set = shardedSet{}

func (s shardedSet) Insert(k uint64) bool   { return s.t.Insert(k) }
func (s shardedSet) Delete(k uint64) bool   { return s.t.Delete(k) }
func (s shardedSet) Contains(k uint64) bool { return s.t.Contains(k) }

// Size lets tools (triecli's size command) read the per-shard atomic
// counters through the set view.
func (s shardedSet) Size() int { return s.t.Len() }

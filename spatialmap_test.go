package nbtrie

import (
	"testing"

	"nbtrie/internal/keys"
	"nbtrie/internal/settest"
)

// spatialMapAdapter drives SpatialMap[uint64] through the settest map
// battery: the uint64 key deinterleaves into plane coordinates, so the
// whole coordinate API — including Move as ReplaceKey — gets the
// sequential-oracle, race and linearizability checking the other map
// implementations get. Together with TestMapConformance and
// TestStringMapConformance (map_test.go), every map-capable
// implementation in the repository passes settest.RunMap.
type spatialMapAdapter struct {
	m *SpatialMap[uint64]
}

func sxy(k uint64) (uint32, uint32) { return keys.Deinterleave2(k) }

func (a spatialMapAdapter) Load(k uint64) (uint64, bool) {
	x, y := sxy(k)
	return a.m.Load(x, y)
}
func (a spatialMapAdapter) Store(k, v uint64) bool {
	x, y := sxy(k)
	a.m.Store(x, y, v)
	return true
}
func (a spatialMapAdapter) LoadOrStore(k, v uint64) (uint64, bool) {
	x, y := sxy(k)
	return a.m.LoadOrStore(x, y, v)
}
func (a spatialMapAdapter) Delete(k uint64) bool {
	x, y := sxy(k)
	return a.m.Delete(x, y)
}
func (a spatialMapAdapter) CompareAndSwap(k, old, new uint64) bool {
	x, y := sxy(k)
	return a.m.CompareAndSwap(x, y, old, new)
}
func (a spatialMapAdapter) CompareAndDelete(k, old uint64) bool {
	x, y := sxy(k)
	return a.m.CompareAndDelete(x, y, old)
}
func (a spatialMapAdapter) ReplaceKey(old, new uint64) bool {
	ox, oy := sxy(old)
	nx, ny := sxy(new)
	return a.m.Move(Point{X: ox, Y: oy}, Point{X: nx, Y: ny})
}

func TestSpatialMapConformance(t *testing.T) {
	settest.RunMap(t, func(uint64) settest.Map {
		return spatialMapAdapter{NewSpatialMap[uint64]()}
	})
}

func TestSpatialMapBasics(t *testing.T) {
	m := NewSpatialMap[string]()
	m.Store(10, 20, "truck")
	if v, ok := m.Load(10, 20); !ok || v != "truck" {
		t.Errorf("Load = %q,%v", v, ok)
	}
	if m.Contains(20, 10) {
		t.Error("transposed point must be distinct")
	}
	if !m.Move(Point{10, 20}, Point{11, 20}) {
		t.Error("Move failed")
	}
	if v, ok := m.Load(11, 20); !ok || v != "truck" {
		t.Errorf("value did not travel with Move: %q,%v", v, ok)
	}
	if m.Contains(10, 20) {
		t.Error("old position survived Move")
	}
	if m.Move(Point{11, 20}, Point{11, 20}) {
		t.Error("Move onto itself must fail")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSpatialMapIterators(t *testing.T) {
	m := NewSpatialMap[int]()
	pts := []Point{{1, 1}, {2, 5}, {5, 2}, {6, 6}, {100, 100}}
	for i, p := range pts {
		m.Store(p.X, p.Y, i)
	}

	seen := map[Point]int{}
	for p, v := range m.All() {
		seen[p] = v
	}
	if len(seen) != len(pts) {
		t.Fatalf("All() yielded %d points, want %d", len(seen), len(pts))
	}
	for i, p := range pts {
		if seen[p] != i {
			t.Errorf("All()[%v] = %d, want %d", p, seen[p], i)
		}
	}

	// InRect [1,6]x[1,6] excludes only (100,100).
	n := 0
	for p, v := range m.InRect(Point{1, 1}, Point{6, 6}) {
		if p.X > 6 || p.Y > 6 {
			t.Errorf("InRect yielded out-of-rect point %v", p)
		}
		if v < 0 || v > 3 {
			t.Errorf("InRect yielded wrong value %d for %v", v, p)
		}
		n++
	}
	if n != 4 {
		t.Errorf("InRect yielded %d points, want 4", n)
	}

	// Single-cell rectangle.
	n = 0
	for p := range m.InRect(Point{2, 5}, Point{2, 5}) {
		if (p != Point{2, 5}) {
			t.Errorf("point rect yielded %v", p)
		}
		n++
	}
	if n != 1 {
		t.Errorf("point rect yielded %d points", n)
	}

	// Inverted rectangle is empty; early break stops the walk.
	for p := range m.InRect(Point{6, 6}, Point{1, 1}) {
		t.Errorf("inverted rect yielded %v", p)
	}
	n = 0
	for range m.All() {
		n++
		break
	}
	if n != 1 {
		t.Errorf("break after first yield, saw %d", n)
	}
}

// TestSpatialMapReadPathDoesNotAllocate extends the wait-free-read pins
// to the Morton instantiation at the public surface.
func TestSpatialMapReadPathDoesNotAllocate(t *testing.T) {
	m := NewSpatialMap[int]()
	for x := uint32(0); x < 32; x++ {
		for y := uint32(0); y < 32; y++ {
			m.Store(x, y, int(x*32+y))
		}
	}
	if n := testing.AllocsPerRun(500, func() {
		if v, ok := m.Load(7, 9); !ok || v != 7*32+9 {
			t.Fatal("Load(7,9) wrong")
		}
		if !m.Contains(3, 3) || m.Contains(77, 77) {
			t.Fatal("Contains wrong")
		}
	}); n != 0 {
		t.Errorf("SpatialMap read path allocates %v objects per call, want 0", n)
	}
}

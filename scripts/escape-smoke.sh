#!/bin/sh
# escape-smoke.sh [logfile] — escape-analysis smoke over the RESP fast
# path. Runs go vet over the hot-path packages, then rebuilds them with
# -gcflags=-m and records every value the compiler moves to the heap.
#
# The log is a diagnostic artifact, not a gate: the allocation *counts*
# on the pinned paths are enforced deterministically by
# internal/resp/alloc_test.go and internal/server/alloc_test.go, while
# the -m output explains WHERE a regression came from when one of those
# pins fails — and its phrasing changes between compiler releases, so
# gating CI on it would break on every Go bump. The script therefore
# always exits 0.
#
# A throwaway GOCACHE forces a real recompile: Go's build cache is
# content-addressed, so a warm cache would silently produce an empty
# log.

out="${1:-escape-smoke.log}"
pkgs="./internal/resp ./internal/server ./internal/engine ./internal/core ./internal/obs"

{
    echo "# escape-analysis smoke: $(go version)"
    echo
    echo "## go vet $pkgs"
    if go vet $pkgs 2>&1; then
        echo "vet: clean"
    else
        echo "vet: FAILED (see above; the blocking vet step catches this too)"
    fi
    echo
    echo "## heap escapes on the hot path (go build -gcflags=-m)"
    mlog="$(mktemp)"
    GOCACHE="$(mktemp -d)" go build -gcflags='-m' $pkgs 2>&1 |
        grep -E 'escapes to heap|moved to heap' >"$mlog"
    sort <"$mlog" | uniq -c | sort -rn
    echo
    echo "## k-ary read path (engine.go search/child loads)"
    # The engine's wait-free reads (Find/Get and the search descents)
    # must not heap-allocate — the 0-alloc Load/Contains pins in
    # internal/core/alloc_test.go enforce the count; this section points
    # at the culprit line when one of those pins fails. Escapes in
    # engine.go outside the update/replace/snapshot files are the
    # read-path suspects: the child-array loads (inline pair or ext
    # slice) should all stay on the stack.
    if grep 'engine/engine\.go' "$mlog"; then
        echo "(engine.go escape sites above: cross-check against the"
        echo "0-alloc read pins before assuming they are cold-path.)"
    else
        echo "none: the descent (incl. the k-ary child-array reads) is heap-free"
    fi
    echo
    echo "## obs record paths (Counter.Inc / Striped.Add / Hist.Record)"
    # Every command and every engine help/retry crosses these; the
    # 0-alloc pins in internal/obs/obs_test.go (AllocsPerRun) enforce
    # the count, this section localizes the site when one fails. The
    # only expected obs escapes are the snapshot/render side (Load,
    # Snapshot, Quantile) — cold by construction.
    if grep 'obs/' "$mlog"; then
        echo "(obs escape sites above: anything in Inc/Add/Record is a"
        echo "hot-path regression; snapshot-side sites are expected.)"
    else
        echo "none: the record paths are heap-free"
    fi
    rm -f "$mlog"
    echo
    echo "(counts are per-site; sites in cold paths — setup, errors,"
    echo "admin commands — are expected and harmless. The steady-state"
    echo "loop is pinned by the alloc tests, not by this list.)"
} >"$out" 2>&1

echo "wrote $out ($(wc -l <"$out") lines)"
exit 0

package nbtrie

import "nbtrie/internal/engine"

// EngineStats is a point-in-time snapshot of a trie's contention
// counters — the runtime signature of the paper's flag/help protocol.
// Every counter is recorded wait-free and allocation-free inside the
// engine (see internal/obs), so reading these changes nothing about the
// trie's guarantees.
//
// Helper-vs-initiator semantics: Help counts every execution of the help
// routine, including the one each update performs for itself, so it is
// roughly "mutations plus helping traffic" and nonzero on any trie that
// has ever been written. The remaining counters are pure contention
// signals and are exactly zero when the trie has only ever been mutated
// by one goroutine at a time:
//
//   - HelpAssists: operations that completed (part of) a *different*
//     operation's work after finding its flag planted.
//   - ChildCASFailures: child-pointer CASes inside help that found the
//     pointer already swung by a racing helper of the same update.
//   - FlagBacktracks: help executions that failed to flag every node and
//     unwound.
//   - OpRetries: mutator retry-loop iterations past the first.
//   - SnapshotRenewals: stale-generation internal nodes copied into the
//     current generation by the first mutation to descend through them
//     after a Snapshot.
//
// DepthBuckets is a log2 histogram of per-mutation search depths:
// bucket 0 counts depth 0 and bucket b>0 counts depths in
// [2^(b-1), 2^b). DepthSamples and DepthSum are its count and sum.
type EngineStats struct {
	Help             int64
	HelpAssists      int64
	ChildCASFailures int64
	FlagBacktracks   int64
	OpRetries        int64
	SnapshotRenewals int64

	DepthSamples int64
	DepthSum     int64
	DepthBuckets [65]int64
}

// engineStatsOf converts the internal snapshot to the public struct.
func engineStatsOf(s engine.StatsSnapshot) EngineStats {
	return EngineStats{
		Help:             s.Help,
		HelpAssists:      s.HelpAssist,
		ChildCASFailures: s.ChildCASFail,
		FlagBacktracks:   s.FlagBacktrack,
		OpRetries:        s.OpRetries,
		SnapshotRenewals: s.SnapshotRenewals,
		DepthSamples:     s.Depth.Count,
		DepthSum:         s.Depth.Sum,
		DepthBuckets:     s.Depth.Buckets,
	}
}

// EngineStats returns the map's contention counters.
func (m *Map[V]) EngineStats() EngineStats { return engineStatsOf(m.t.EngineStats()) }

// EngineStats returns the map's contention counters.
func (m *StringMap[V]) EngineStats() EngineStats { return engineStatsOf(m.t.EngineStats()) }

// EngineStats returns the map's contention counters.
func (m *SpatialMap[V]) EngineStats() EngineStats { return engineStatsOf(m.t.EngineStats()) }

// EngineStats returns the contention counters summed over all shards.
// Shards are snapshotted independently — the sum is not one global cut,
// which is fine for monitoring.
func (m *ShardedMap[V]) EngineStats() EngineStats { return engineStatsOf(m.t.EngineStats()) }

// ShardEngineStats returns shard i's own contention counters; i must be
// in [0, Shards()). Per-shard deltas localize hot spots that the
// aggregate view averages away.
func (m *ShardedMap[V]) ShardEngineStats(i int) EngineStats {
	return engineStatsOf(m.t.ShardEngineStats(i))
}

package nbtrie

// Benchmark families regenerating the paper's evaluation (Section V).
// One family per figure; sub-benchmarks are the figure's series (the six
// implementations of the paper's legend). Throughput corresponds to
// 1/ns-per-op; vary concurrency with -cpu, e.g.:
//
//	go test -bench 'Fig09' -cpu 1,2,4,8 -benchmem
//
// cmd/benchtrie runs the same experiments as wall-clock throughput sweeps
// with the paper's prefill/warmup/trials protocol and prints the series
// tables; these testing.B variants are the quick, profiling-friendly
// form. Ablation benchmarks for the design choices called out in
// DESIGN.md follow at the bottom.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"nbtrie/internal/bench"
	"nbtrie/internal/workload"
)

// mkSet builds an implementation through the registry (legend labels
// resolve as well as registry names).
func mkSet(b *testing.B, name string, width uint32) bench.Set {
	b.Helper()
	s, err := NewSetWithWidth(name, width)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// legend returns the series labels in the paper's order, from the
// registry.
func legend() []string {
	impls := AllImplementations()
	out := make([]string, 0, len(impls))
	for _, im := range impls {
		out = append(out, im.Legend)
	}
	return out
}

// widthFor returns the smallest trie width covering keyRange.
func widthFor(keyRange uint64) uint32 {
	w := uint32(1)
	for uint64(1)<<w < keyRange {
		w++
	}
	return w
}

// runMix drives one prefilled set with the given mix under RunParallel.
func runMix(b *testing.B, s bench.Set, mix workload.Mix, keyRange, seqLen uint64) {
	b.Helper()
	bench.Prefill(s, keyRange, 1)
	rs, hasReplace := s.(bench.ReplaceSet)
	if mix.ReplacePct > 0 && !hasReplace {
		b.Fatalf("mix %v needs replace support", mix)
	}
	var seeds atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seed := seeds.Add(1) * 0x9e3779b9
		var g *workload.Generator
		if seqLen > 0 {
			g = workload.NewSequenceGenerator(mix, keyRange, seqLen, seed)
		} else {
			g = workload.NewGenerator(mix, keyRange, seed)
		}
		for pb.Next() {
			op := g.Next()
			switch op.Kind {
			case workload.OpInsert:
				s.Insert(op.Key)
			case workload.OpDelete:
				s.Delete(op.Key)
			case workload.OpFind:
				s.Contains(op.Key)
			case workload.OpReplace:
				rs.Replace(op.Key, op.Key2)
			}
		}
	})
}

// figBench runs one figure: every legend entry on the same workload.
func figBench(b *testing.B, mix workload.Mix, keyRange, seqLen uint64) {
	width := widthFor(keyRange)
	for _, name := range legend() {
		b.Run(name, func(b *testing.B) {
			runMix(b, mkSet(b, name, width), mix, keyRange, seqLen)
		})
	}
}

// BenchmarkFig08a_LowContention_i5d5f90 is Figure 8 (top): uniform keys
// in (0, 10^6), 5% inserts / 5% deletes / 90% finds.
func BenchmarkFig08a_LowContention_i5d5f90(b *testing.B) {
	figBench(b, workload.MixI5D5F90, 1_000_000, 0)
}

// BenchmarkFig08b_LowContention_i50d50 is Figure 8 (bottom): uniform keys
// in (0, 10^6), 50% inserts / 50% deletes.
func BenchmarkFig08b_LowContention_i50d50(b *testing.B) {
	figBench(b, workload.MixI50D50, 1_000_000, 0)
}

// BenchmarkFig09a_HighContention_i5d5f90 is Figure 9 (top): uniform keys
// in (0, 100) — very high contention — 5/5/90.
func BenchmarkFig09a_HighContention_i5d5f90(b *testing.B) {
	figBench(b, workload.MixI5D5F90, 100, 0)
}

// BenchmarkFig09b_HighContention_i50d50 is Figure 9 (bottom): uniform
// keys in (0, 100), all updates.
func BenchmarkFig09b_HighContention_i50d50(b *testing.B) {
	figBench(b, workload.MixI50D50, 100, 0)
}

// BenchmarkFig10_Replace_PAT is Figure 10: 10% inserts / 10% deletes /
// 80% replaces on uniform keys in (0, 10^6). Only PAT supports an atomic
// replace, exactly as in the paper ("we could not compare these results
// with other data structures since none provide atomic replace").
func BenchmarkFig10_Replace_PAT(b *testing.B) {
	runMix(b, mkSet(b, "PAT", widthFor(1_000_000)), workload.MixI10D10R80, 1_000_000, 0)
}

// BenchmarkFig11_NonUniform_i15d15f70 is Figure 11: operations walk runs
// of 50 consecutive keys from random starting points, 15/15/70, range
// (0, 10^6) — the skewed workload where fixed-height structures (PAT,
// Ctrie) outrun comparison-based trees.
func BenchmarkFig11_NonUniform_i15d15f70(b *testing.B) {
	figBench(b, workload.MixI15D15F70, 1_000_000, 50)
}

// BenchmarkMediumContention_i15d15f70 is the Section V text experiment
// the paper describes but does not plot: key range (0, 10^3).
func BenchmarkMediumContention_i15d15f70(b *testing.B) {
	figBench(b, workload.MixI15D15F70, 1_000, 0)
}

// --- Ablations (design choices from DESIGN.md) ---

// BenchmarkAblation_KST_k sweeps the k-ary tree's branching factor around
// the paper's choice k=4 (Brown & Helga found 4 optimal).
func BenchmarkAblation_KST_k(b *testing.B) {
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runMix(b, NewKST(k), workload.MixI5D5F90, 1_000_000, 0)
		})
	}
}

// BenchmarkAblation_PAT_Width sweeps the trie's key width (= height
// bound) at fixed key range, isolating the cost of longer search paths.
func BenchmarkAblation_PAT_Width(b *testing.B) {
	for _, w := range []uint32{20, 32, 48, 63} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p, err := NewPatriciaTrie(w)
			if err != nil {
				b.Fatal(err)
			}
			runMix(b, p, workload.MixI5D5F90, 1_000_000, 0)
		})
	}
}

// BenchmarkAblation_SearchRmvd measures the paper's Section V
// optimization: for replace-free workloads the search can skip the
// logical-removal check on leaves.
func BenchmarkAblation_SearchRmvd(b *testing.B) {
	w := widthFor(1_000_000)
	b.Run("WithRmvdCheck", func(b *testing.B) {
		p, err := NewPatriciaTrie(w)
		if err != nil {
			b.Fatal(err)
		}
		runMix(b, p, workload.MixI5D5F90, 1_000_000, 0)
	})
	b.Run("NoRmvdCheck", func(b *testing.B) {
		p, err := NewPatriciaTrieNoReplace(w)
		if err != nil {
			b.Fatal(err)
		}
		runMix(b, p, workload.MixI5D5F90, 1_000_000, 0)
	})
}

// BenchmarkAblation_Prefill contrasts the paper's half-full start with an
// empty start (tree shape and hit rates differ drastically).
func BenchmarkAblation_Prefill(b *testing.B) {
	w := widthFor(1_000_000)
	b.Run("HalfFull", func(b *testing.B) {
		p, _ := NewPatriciaTrie(w)
		runMix(b, p, workload.MixI50D50, 1_000_000, 0)
	})
	b.Run("Empty", func(b *testing.B) {
		p, _ := NewPatriciaTrie(w)
		var seeds atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			g := workload.NewGenerator(workload.MixI50D50, 1_000_000, seeds.Add(1))
			for pb.Next() {
				op := g.Next()
				if op.Kind == workload.OpInsert {
					p.Insert(op.Key)
				} else {
					p.Delete(op.Key)
				}
			}
		})
	})
}

// BenchmarkContains_PAT isolates the wait-free find on a half-full
// million-key trie (pure-read path, no CAS).
func BenchmarkContains_PAT(b *testing.B) {
	p, err := NewPatriciaTrie(widthFor(1_000_000))
	if err != nil {
		b.Fatal(err)
	}
	bench.Prefill(p, 1_000_000, 1)
	var seeds atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := workload.NewGenerator(workload.Mix{FindPct: 100}, 1_000_000, seeds.Add(1))
		for pb.Next() {
			p.Contains(g.Next().Key)
		}
	})
}

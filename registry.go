package nbtrie

import (
	"fmt"
	"sort"
	"strings"

	"nbtrie/internal/sharded"
	"nbtrie/internal/spatial"
)

// ReplaceScope is the structured replace capability of a registered
// implementation. A bare "has replace" bool could not express the
// sharded front-end honestly: its Replace is the paper's atomic
// operation within a shard and refused (ErrCrossShard) across shards,
// which is neither "no replace" nor "replace over the full key space".
type ReplaceScope uint8

const (
	// ReplaceNone: the implementation has no atomic replace at all (the
	// paper's five baselines).
	ReplaceNone ReplaceScope = iota
	// ReplaceFull: the paper's atomic Replace over the entire key
	// space; the implementation satisfies ReplaceSet.
	ReplaceFull
	// ReplacePerShard: replace is atomic only between keys owned by the
	// same shard and refused otherwise. The set view does NOT satisfy
	// ReplaceSet — a partial replace cannot honor its full-key-space
	// contract — but ShardedMap.ReplaceKey exposes the per-shard
	// operation, with SameShard as the precondition probe.
	ReplacePerShard
)

// String renders the scope for tables and CLIs.
func (s ReplaceScope) String() string {
	switch s {
	case ReplaceFull:
		return "full"
	case ReplacePerShard:
		return "per-shard"
	case ReplaceNone:
		return "none"
	default:
		return fmt.Sprintf("ReplaceScope(%d)", uint8(s))
	}
}

// Implementation describes one registered concurrent-set implementation:
// the paper's Patricia trie, the five baselines of its evaluation, the
// Morton-keyed spatial instantiation of the shared engine, and the
// sharded front-end that partitions the key space across engine
// instances.
// Tools (cmd/benchtrie, cmd/triecli, the conformance tests and the
// examples) enumerate this registry instead of hard-coding the list, so
// a new implementation registers once and appears everywhere.
type Implementation struct {
	// Name is the stable registry key, e.g. "patricia".
	Name string
	// Legend is the label used in the paper's figures, e.g. "PAT".
	Legend string
	// Description is a one-line human-readable summary with the citation.
	Description string
	// Replace is the structured replace capability: none, full
	// (ReplaceSet is satisfied), or per-shard (atomic within a shard,
	// refused across; only the map layer exposes it). Tools that need
	// the paper's whole-key-space Replace must check for ReplaceFull,
	// not merely "not none".
	Replace ReplaceScope
	// WaitFreeRead reports whether the implementation's Contains is
	// wait-free — a pure read that performs no CAS, helps no other
	// operation and allocates nothing. Implementations claiming this are
	// held to it by an AllocsPerRun regression test at the public layer
	// (alloc_test.go), so a boxing or helping regression on the read
	// path fails CI rather than silently costing throughput.
	WaitFreeRead bool
	// Fanout is the branching factor of the structure's interior nodes:
	// how many key partitions each level resolves (2 for binary trees
	// and tries, 4 for the 4-ST, 32 for the Ctrie, 16 for the span-4
	// k-ary trie). Tools report it in series labels instead of assuming
	// binary; expected depth scales with 1/log2(Fanout).
	Fanout int
	// New returns a fresh, empty set able to hold keys in [0, 2^width).
	// Implementations without a bounded key space ignore width.
	New func(width uint32) (Set, error)
}

// DefaultWidth is the key width NewSet uses for width-parameterized
// implementations: the widest supported key space, [0, 2^63).
const DefaultWidth = 63

// registry lists the implementations in the paper's legend order
// (Figures 8-11), with this repository's extra engine instantiations
// appended after the paper's six. Names and legends must be unique
// case-insensitively.
var registry = []Implementation{
	{
		Name:         "patricia",
		Fanout:       2,
		Legend:       "PAT",
		Description:  "non-blocking Patricia trie with Replace (Shafiei, ICDCS 2013); wait-free Contains",
		Replace:      ReplaceFull,
		WaitFreeRead: true,
		New: func(width uint32) (Set, error) {
			return NewPatriciaTrie(width)
		},
	},
	{
		Name:        "kst",
		Fanout:      4,
		Legend:      "4-ST",
		Description: "non-blocking k-ary (k=4) external search tree (Brown & Helga, OPODIS 2011)",
		New: func(uint32) (Set, error) {
			return NewKST(4), nil
		},
	},
	{
		Name:        "bst",
		Fanout:      2,
		Legend:      "BST",
		Description: "non-blocking external binary search tree (Ellen et al., PODC 2010)",
		New: func(uint32) (Set, error) {
			return NewBST(), nil
		},
	},
	{
		Name:        "avl",
		Fanout:      2,
		Legend:      "AVL",
		Description: "lock-based relaxed-balance AVL tree with optimistic reads (Bronson et al., PPoPP 2010)",
		New: func(uint32) (Set, error) {
			return NewAVL(), nil
		},
	},
	{
		Name:        "skiplist",
		Fanout:      2,
		Legend:      "SL",
		Description: "lock-free skip list (ConcurrentSkipListMap lineage)",
		New: func(uint32) (Set, error) {
			return NewSkipList(), nil
		},
	},
	{
		Name:        "ctrie",
		Fanout:      32,
		Legend:      "Ctrie",
		Description: "non-blocking 32-way concurrent hash trie, no snapshots (Prokopec et al., PPoPP 2012)",
		New: func(uint32) (Set, error) {
			return NewCtrie(), nil
		},
	},
	{
		Name:         "spatial",
		Fanout:       2,
		Legend:       "PAT-Z",
		Description:  "Morton-keyed spatial instantiation of the shared engine (65-bit Z-order keys; atomic point moves via Replace)",
		Replace:      ReplaceFull,
		WaitFreeRead: true,
		New: func(uint32) (Set, error) {
			// The Morton key space is fixed at 64 bits (the full
			// uint32 × uint32 plane); width is ignored. The uint64 set
			// key is the raw Morton code.
			return spatialSet{t: spatial.New[struct{}]()}, nil
		},
	},
	{
		Name:         "sharded",
		Fanout:       2,
		Legend:       "PAT-S",
		Description:  "sharded front-end: 2^s independent engine instances partitioned by the top key bits, for multi-core write scaling (replace atomic per shard, refused cross-shard)",
		Replace:      ReplacePerShard,
		WaitFreeRead: true,
		New: func(width uint32) (Set, error) {
			t, err := sharded.New[struct{}](width, 0)
			if err != nil {
				return nil, err
			}
			return shardedSet{t: t}, nil
		},
	},
	{
		Name:         "karypatricia",
		Fanout:       1 << KarySpan,
		Legend:       "PAT-K",
		Description:  "k-ary engine instantiation: 16-child cache-line-sized nodes resolve 4 key bits per level, same flag/help protocol and atomic Replace",
		Replace:      ReplaceFull,
		WaitFreeRead: true,
		New: func(width uint32) (Set, error) {
			return NewKaryPatriciaTrie(width, KarySpan)
		},
	},
}

// Implementations returns the registered implementation names in the
// paper's legend order (PAT first, then the five baselines).
func Implementations() []string {
	names := make([]string, len(registry))
	for i, im := range registry {
		names[i] = im.Name
	}
	return names
}

// AllImplementations returns the full descriptors in the paper's legend
// order, for callers that enumerate the registry (no name round-trip
// through LookupImplementation needed). The returned slice is a copy.
func AllImplementations() []Implementation {
	out := make([]Implementation, len(registry))
	copy(out, registry)
	return out
}

// LookupImplementation resolves a name — either the registry key or the
// paper's legend label, case-insensitively — to its descriptor.
func LookupImplementation(name string) (Implementation, bool) {
	for _, im := range registry {
		if strings.EqualFold(name, im.Name) || strings.EqualFold(name, im.Legend) {
			return im, true
		}
	}
	return Implementation{}, false
}

// NewSet builds a fresh set by implementation name (registry key or
// legend label, case-insensitive), using DefaultWidth for
// width-parameterized implementations. Unknown names list the valid
// choices in the error.
func NewSet(name string) (Set, error) {
	return NewSetWithWidth(name, DefaultWidth)
}

// NewSetWithWidth is NewSet with an explicit key width for
// width-parameterized implementations ([0, 2^width) key space); the
// baselines without a width parameter ignore it.
func NewSetWithWidth(name string, width uint32) (Set, error) {
	im, ok := LookupImplementation(name)
	if !ok {
		names := Implementations()
		sort.Strings(names)
		return nil, fmt.Errorf("nbtrie: unknown implementation %q (want one of %s)",
			name, strings.Join(names, ", "))
	}
	return im.New(width)
}

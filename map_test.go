package nbtrie

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"nbtrie/internal/settest"
)

// mapAdapter drives Map[uint64] through the settest map battery.
type mapAdapter struct {
	m *Map[uint64]
}

func (a mapAdapter) Load(k uint64) (uint64, bool) { return a.m.Load(k) }
func (a mapAdapter) Store(k, v uint64) bool       { return a.m.Store(k, v) }
func (a mapAdapter) LoadOrStore(k, v uint64) (uint64, bool) {
	actual, loaded, _ := a.m.LoadOrStore(k, v)
	return actual, loaded
}
func (a mapAdapter) Delete(k uint64) bool                   { return a.m.Delete(k) }
func (a mapAdapter) CompareAndSwap(k, old, new uint64) bool { return a.m.CompareAndSwap(k, old, new) }
func (a mapAdapter) CompareAndDelete(k, old uint64) bool    { return a.m.CompareAndDelete(k, old) }
func (a mapAdapter) ReplaceKey(old, new uint64) bool        { return a.m.ReplaceKey(old, new) }

// setAdapter presents Map[uint64] as a plain set, so the map layer also
// passes the set conformance battery (Insert == LoadOrStore-if-absent).
type setAdapter struct {
	m *Map[uint64]
}

func (a setAdapter) Insert(k uint64) bool {
	_, loaded, _ := a.m.LoadOrStore(k, k)
	return !loaded
}
func (a setAdapter) Delete(k uint64) bool         { return a.m.Delete(k) }
func (a setAdapter) Contains(k uint64) bool       { return a.m.Contains(k) }
func (a setAdapter) Replace(old, new uint64) bool { return a.m.ReplaceKey(old, new) }

func newTestMap(t *testing.T, keyRange uint64) *Map[uint64] {
	t.Helper()
	m, err := NewMap[uint64](widthForRange(keyRange))
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return m
}

// TestMapConformance runs the full value-aware battery — concurrent
// LoadOrStore/CompareAndSwap races and linearizability checking with
// value reads — against Map[uint64].
func TestMapConformance(t *testing.T) {
	settest.RunMap(t, func(keyRange uint64) settest.Map {
		return mapAdapter{newTestMap(t, keyRange)}
	})
}

// stringMapAdapter drives StringMap[uint64] through the same battery by
// encoding uint64 keys as their big-endian byte strings (order- and
// identity-preserving), so strtrie's independent map-operation
// implementations get the linearizability checking too.
type stringMapAdapter struct {
	m *StringMap[uint64]
}

func strKey(k uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, k+1) // +1: keys must be non-empty anyway, avoid all-zero confusion in dumps
}

func (a stringMapAdapter) Load(k uint64) (uint64, bool) { return a.m.Load(strKey(k)) }
func (a stringMapAdapter) Store(k, v uint64) bool       { a.m.Store(strKey(k), v); return true }
func (a stringMapAdapter) LoadOrStore(k, v uint64) (uint64, bool) {
	return a.m.LoadOrStore(strKey(k), v)
}
func (a stringMapAdapter) Delete(k uint64) bool { return a.m.Delete(strKey(k)) }
func (a stringMapAdapter) CompareAndSwap(k, old, new uint64) bool {
	return a.m.CompareAndSwap(strKey(k), old, new)
}
func (a stringMapAdapter) CompareAndDelete(k, old uint64) bool {
	return a.m.CompareAndDelete(strKey(k), old)
}
func (a stringMapAdapter) ReplaceKey(old, new uint64) bool {
	return a.m.ReplaceKey(strKey(old), strKey(new))
}

func TestStringMapConformance(t *testing.T) {
	settest.RunMap(t, func(uint64) settest.Map {
		return stringMapAdapter{NewStringMap[uint64]()}
	})
}

// TestMapAsSetConformance runs the set battery over the Map adapter:
// the map layer must still be a correct linearizable set.
func TestMapAsSetConformance(t *testing.T) {
	settest.Run(t, func(keyRange uint64) settest.Set {
		return setAdapter{newTestMap(t, keyRange)}
	})
}

func TestMapBasicsAndIterators(t *testing.T) {
	m, err := NewMap[string](16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width() != 16 {
		t.Errorf("Width() = %d", m.Width())
	}
	for k, v := range map[uint64]string{30: "c", 10: "a", 20: "b"} {
		if !m.Store(k, v) {
			t.Fatalf("Store(%d) failed", k)
		}
	}
	if m.Len() != 3 || !m.Contains(20) {
		t.Error("Len/Contains broken")
	}

	var ks []uint64
	var vs []string
	for k, v := range m.All() {
		ks = append(ks, k)
		vs = append(vs, v)
	}
	if len(ks) != 3 || ks[0] != 10 || ks[1] != 20 || ks[2] != 30 {
		t.Errorf("All() keys = %v, want ascending 10 20 30", ks)
	}
	if vs[0] != "a" || vs[1] != "b" || vs[2] != "c" {
		t.Errorf("All() values = %v", vs)
	}

	ks = nil
	for k := range m.Ascend(11) {
		ks = append(ks, k)
	}
	if len(ks) != 2 || ks[0] != 20 {
		t.Errorf("Ascend(11) keys = %v", ks)
	}

	// Early break must stop the walk.
	n := 0
	for range m.All() {
		n++
		break
	}
	if n != 1 {
		t.Errorf("break after first yield, saw %d", n)
	}

	if !m.ReplaceKey(10, 15) {
		t.Error("ReplaceKey failed")
	}
	if v, ok := m.Load(15); !ok || v != "a" {
		t.Errorf("value did not travel with ReplaceKey: %q,%v", v, ok)
	}
}

func TestMapOutOfRangeKeys(t *testing.T) {
	m, err := NewMap[int](8)
	if err != nil {
		t.Fatal(err)
	}
	m.Store(3, 33)
	for _, k := range []uint64{256, ^uint64(0)} {
		if m.Store(k, 1) {
			t.Errorf("Store(%d) must fail on a width-8 map", k)
		}
		if _, ok := m.Load(k); ok {
			t.Errorf("Load(%d) must miss", k)
		}
		if v, loaded, ok := m.LoadOrStore(k, 1); ok || loaded || v != 0 {
			t.Errorf("LoadOrStore(%d) = %d,%v,%v; want zero,false,false and no store", k, v, loaded, ok)
		}
		if m.Delete(k) || m.CompareAndSwap(k, 1, 2) || m.CompareAndDelete(k, 1) {
			t.Errorf("mutations on out-of-range %d must fail", k)
		}
		if m.ReplaceKey(3, k) || m.ReplaceKey(k, 5) {
			t.Errorf("ReplaceKey involving %d must fail", k)
		}
	}
	if v, ok := m.Load(3); !ok || v != 33 {
		t.Error("in-range entry damaged by out-of-range probing")
	}
}

func TestStringMap(t *testing.T) {
	m := NewStringMap[int]()
	m.Store([]byte("go"), 1)
	m.Store([]byte("gopher"), 2)
	if v, ok := m.Load([]byte("go")); !ok || v != 1 {
		t.Errorf("Load(go) = %d,%v", v, ok)
	}
	if _, ok := m.Load([]byte("gop")); ok {
		t.Error("prefix must not be a member")
	}
	if v, loaded := m.LoadOrStore([]byte("go"), 9); !loaded || v != 1 {
		t.Errorf("LoadOrStore(present) = %d,%v", v, loaded)
	}
	if !m.CompareAndSwap([]byte("go"), 1, 10) || m.CompareAndSwap([]byte("go"), 1, 11) {
		t.Error("CompareAndSwap semantics broken")
	}
	if !m.ReplaceKey([]byte("gopher"), []byte("ferret")) {
		t.Error("ReplaceKey failed")
	}
	if v, ok := m.Load([]byte("ferret")); !ok || v != 2 {
		t.Errorf("ReplaceKey dropped the value: %d,%v", v, ok)
	}
	if m.Contains([]byte("gopher")) {
		t.Error("old key survived ReplaceKey")
	}
	if !m.CompareAndDelete([]byte("go"), 10) || m.Len() != 1 {
		t.Error("CompareAndDelete broken")
	}

	got := 0
	for k, v := range m.All() {
		got++
		if !bytes.Equal(k, []byte("ferret")) || v != 2 {
			t.Errorf("All() yielded %q=%d", k, v)
		}
	}
	if got != 1 {
		t.Errorf("All() yielded %d entries, want 1", got)
	}
}

// TestStringMapAscend pins the API-parity iterator: StringMap.Ascend
// mirrors Map.Ascend over the encoded-key order, including midpoint
// resume, early break, and the documented prefix-after-extension quirk.
func TestStringMapAscend(t *testing.T) {
	m := NewStringMap[int]()
	words := []string{"apple", "banana", "cherry", "pear", "zebra"}
	for i, w := range words {
		m.Store([]byte(w), i)
	}

	var got []string
	for k, v := range m.Ascend([]byte("banana")) {
		got = append(got, string(k))
		if v < 0 || v >= len(words) {
			t.Errorf("Ascend yielded wrong value %d for %q", v, k)
		}
	}
	want := []string{"banana", "cherry", "pear", "zebra"}
	if len(got) != len(want) {
		t.Fatalf("Ascend(banana) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend(banana)[%d] = %q, want %q", i, got[i], want[i])
		}
	}

	// A from-key that is not a member starts at its successor.
	got = nil
	for k := range m.Ascend([]byte("blueberry")) {
		got = append(got, string(k))
	}
	if len(got) != 3 || got[0] != "cherry" {
		t.Fatalf("Ascend(blueberry) = %v", got)
	}

	// Early break stops the walk.
	n := 0
	for range m.Ascend([]byte("apple")) {
		n++
		break
	}
	if n != 1 {
		t.Errorf("break after first yield, saw %d", n)
	}

	// Encoded order sorts a proper prefix after its extensions
	// (Section VI terminator 11 > continuation pairs), so Ascend from
	// the prefix skips its extensions.
	m2 := NewStringMap[int]()
	m2.Store([]byte("app"), 1)
	m2.Store([]byte("applesauce"), 2)
	got = nil
	for k := range m2.Ascend([]byte("app")) {
		got = append(got, string(k))
	}
	if len(got) != 1 || got[0] != "app" {
		t.Fatalf("Ascend(app) over a prefix pair = %v (encoded order puts extensions first)", got)
	}

	// The set-level twin agrees.
	s := NewStringTrie()
	for _, w := range words {
		s.Insert([]byte(w))
	}
	got = nil
	for k := range s.Ascend([]byte("cherry")) {
		got = append(got, string(k))
	}
	if len(got) != 3 || got[0] != "cherry" || got[2] != "zebra" {
		t.Fatalf("StringTrie.Ascend(cherry) = %v", got)
	}
}

// TestStringMapConcurrent hammers a StringMap from several goroutines on
// overlapping string keys.
func TestStringMapConcurrent(t *testing.T) {
	m := NewStringMap[int]()
	keys := [][]byte{
		[]byte("a"), []byte("ab"), []byte("abc"), []byte("b"), []byte("ba"),
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(g+i)%len(keys)]
				m.Store(k, g)
				if v, ok := m.Load(k); ok {
					if v < 0 || v >= goroutines {
						panic("torn value")
					}
				}
				if v, ok := m.Load(k); ok {
					m.CompareAndDelete(k, v)
				}
			}
		}(g)
	}
	wg.Wait()
	for _, k := range keys {
		if v, ok := m.Load(k); ok && (v < 0 || v >= goroutines) {
			t.Errorf("key %q holds impossible value %d", k, v)
		}
	}
}

func TestSetIterators(t *testing.T) {
	p, err := NewPatriciaTrie(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{5, 1, 9} {
		p.Insert(k)
	}
	var ks []uint64
	for k := range p.All() {
		ks = append(ks, k)
	}
	if len(ks) != 3 || ks[0] != 1 || ks[2] != 9 {
		t.Errorf("PatriciaTrie.All() = %v", ks)
	}
	ks = nil
	for k := range p.Ascend(5) {
		ks = append(ks, k)
	}
	if len(ks) != 2 || ks[0] != 5 {
		t.Errorf("PatriciaTrie.Ascend(5) = %v", ks)
	}

	s := NewStringTrie()
	s.Insert([]byte("b"))
	s.Insert([]byte("a"))
	var sk []string
	for k := range s.All() {
		sk = append(sk, string(k))
	}
	if len(sk) != 2 || sk[0] != "a" || sk[1] != "b" {
		t.Errorf("StringTrie.All() = %v", sk)
	}
}

package nbtrie

import (
	"iter"

	"nbtrie/internal/core"
	"nbtrie/internal/strtrie"
)

// Map is a linearizable concurrent map from uint64 keys to values of
// type V, backed by the paper's non-blocking Patricia trie. Load is
// wait-free (a pure read: no CAS, no allocation); every mutating
// operation is lock-free. All methods are safe for unrestricted
// concurrent use.
//
// Values are attached to trie leaves immutably and unboxed — the trie is
// generic all the way down, so storing an int never allocates an
// interface box and Load returns the value straight from the leaf. A
// value update installs a freshly allocated leaf through the same
// flagged child-CAS protocol as the paper's structural updates, so the
// no-ABA invariant — child pointers only ever swing to new nodes —
// carries over unchanged, and a reader can never observe a torn value.
//
// CompareAndSwap and CompareAndDelete compare values with Go's ==, like
// sync.Map: they panic if V (or the dynamic value stored) is not
// comparable.
type Map[V any] struct {
	t *core.Trie[V]
}

// NewMap returns an empty map over keys in [0, 2^width); width must be
// in [1, 63]. Keys outside the range are treated as permanently absent:
// lookups miss and stores report failure, but nothing panics.
func NewMap[V any](width uint32) (*Map[V], error) {
	t, err := core.New[V](width)
	if err != nil {
		return nil, err
	}
	return &Map[V]{t: t}, nil
}

// Load returns the value bound to k. It is wait-free — at most width+1
// child-pointer reads, no CAS, regardless of concurrent updates — and
// performs no allocation.
func (m *Map[V]) Load(k uint64) (V, bool) {
	return m.t.Load(k)
}

// Store binds k to val, inserting or overwriting (lock-free upsert). It
// returns false only when k is out of range for the map's width.
func (m *Map[V]) Store(k uint64, val V) bool {
	return m.t.Store(k, val)
}

// LoadOrStore returns the existing value for k if present (loaded true);
// otherwise it stores val and returns it (loaded false). ok is false
// only when k is out of range — nothing was loaded or stored and actual
// is the zero value — so a rejected write is always distinguishable
// from a successful store.
func (m *Map[V]) LoadOrStore(k uint64, val V) (actual V, loaded, ok bool) {
	return m.t.LoadOrStore(k, val)
}

// Delete removes k; false iff k was absent.
func (m *Map[V]) Delete(k uint64) bool {
	return m.t.Delete(k)
}

// CompareAndSwap swaps k's value from old to new if the stored value
// equals old (==; panics if the values are not comparable). True iff the
// swap happened.
func (m *Map[V]) CompareAndSwap(k uint64, old, new V) bool {
	return m.t.CompareAndSwap(k, old, new)
}

// CompareAndDelete deletes k if its value equals old (==; panics if the
// values are not comparable). True iff the entry was deleted.
func (m *Map[V]) CompareAndDelete(k uint64, old V) bool {
	return m.t.CompareAndDelete(k, old)
}

// ReplaceKey atomically rebinds old's value to the key new, removing
// old: both changes become visible at a single linearization point, and
// the value travels with the key. It returns true iff old was present
// and new absent (and old != new); otherwise the map is unchanged. This
// is the paper's Replace operation lifted to the map layer.
func (m *Map[V]) ReplaceKey(old, new uint64) bool {
	return m.t.Replace(old, new)
}

// Contains reports whether k has a binding, wait-free and without
// allocating.
func (m *Map[V]) Contains(k uint64) bool {
	return m.t.Contains(k)
}

// Len returns the number of entries, read from an atomic counter
// maintained on the successful insert and delete paths: O(1) and
// allocation-free. It is exact whenever no mutation is in flight; under
// concurrent updates it lags by at most the number of in-flight
// operations (each successful insert/delete is counted exactly once,
// just after its linearization point).
func (m *Map[V]) Len() int {
	return m.t.Len()
}

// Width returns the key width the map was built with.
func (m *Map[V]) Width() uint32 {
	return m.t.Width()
}

// All iterates over all entries in increasing key order. The sequence is
// read-only and safe under concurrent updates: entries present for the
// whole iteration are always yielded, concurrent changes may or may not
// be observed (same contract as PatriciaTrie.Range).
func (m *Map[V]) All() iter.Seq2[uint64, V] {
	return m.Ascend(0)
}

// Ascend iterates over the entries with key >= from, in increasing key
// order. Subtrees below from are pruned, so resuming from a midpoint
// costs one descent rather than a full scan.
func (m *Map[V]) Ascend(from uint64) iter.Seq2[uint64, V] {
	return func(yield func(uint64, V) bool) {
		m.t.AscendKV(from, yield)
	}
}

// StringMap is the Section VI extension as a map: a linearizable
// concurrent map from arbitrary-length byte-string keys to values of
// type V, stored unboxed on the trie leaves. Loads are lock-free (no
// longer wait-free: key length is unbounded); all mutations are
// lock-free. Keys must be non-empty (the empty string's encoding
// collides with a dummy leaf) and are captured logically by their bit
// encoding, so callers may reuse key slices.
//
// CompareAndSwap and CompareAndDelete compare values with Go's ==, like
// sync.Map: they panic if the values are not comparable.
type StringMap[V any] struct {
	t *strtrie.Trie[V]
}

// NewStringMap returns an empty variable-length-key map.
func NewStringMap[V any]() *StringMap[V] {
	return &StringMap[V]{t: strtrie.New[V]()}
}

// Load returns the value bound to k (read-only, lock-free). The only
// allocation on this path is the key's bit encoding.
func (m *StringMap[V]) Load(k []byte) (V, bool) {
	return m.t.Load(k)
}

// Store binds k to val, inserting or overwriting (lock-free upsert).
func (m *StringMap[V]) Store(k []byte, val V) {
	m.t.Store(k, val)
}

// LoadOrStore returns the existing value for k if present (loaded true);
// otherwise it stores val and returns it (loaded false).
func (m *StringMap[V]) LoadOrStore(k []byte, val V) (actual V, loaded bool) {
	return m.t.LoadOrStore(k, val)
}

// Delete removes k; false iff k was absent.
func (m *StringMap[V]) Delete(k []byte) bool {
	return m.t.Delete(k)
}

// CompareAndSwap swaps k's value from old to new if the stored value
// equals old. True iff the swap happened.
func (m *StringMap[V]) CompareAndSwap(k []byte, old, new V) bool {
	return m.t.CompareAndSwap(k, old, new)
}

// CompareAndDelete deletes k if its value equals old. True iff the entry
// was deleted.
func (m *StringMap[V]) CompareAndDelete(k []byte, old V) bool {
	return m.t.CompareAndDelete(k, old)
}

// ReplaceKey atomically rebinds old's value to the key new, removing
// old, at a single linearization point. True iff old was present and new
// absent.
func (m *StringMap[V]) ReplaceKey(old, new []byte) bool {
	return m.t.Replace(old, new)
}

// Contains reports whether k has a binding.
func (m *StringMap[V]) Contains(k []byte) bool {
	return m.t.Contains(k)
}

// Len returns the number of entries, read from an atomic counter: O(1),
// allocation-free, exact at quiescence, and at most the number of
// in-flight mutations stale under concurrency (see Map.Len).
func (m *StringMap[V]) Len() int {
	return m.t.Len()
}

// All iterates over all entries in encoded-key order (lexicographic,
// except that a proper prefix follows its extensions). Same consistency
// contract as Map.All.
func (m *StringMap[V]) All() iter.Seq2[[]byte, V] {
	return func(yield func([]byte, V) bool) {
		m.t.AllKV(yield)
	}
}

// Ascend iterates over the entries whose key sorts at or after from in
// encoded-key order, mirroring Map.Ascend. Subtrees below from are
// pruned, so resuming an iteration from a midpoint costs one descent
// rather than a full scan. from must be non-empty, like every StringMap
// key.
func (m *StringMap[V]) Ascend(from []byte) iter.Seq2[[]byte, V] {
	return func(yield func([]byte, V) bool) {
		m.t.AscendKV(from, yield)
	}
}

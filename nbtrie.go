// Package nbtrie provides non-blocking Patricia tries reproducing
// Shafiei, "Non-blocking Patricia Tries with Replace Operations"
// (ICDCS 2013), exposed at two levels:
//
//   - a value-bearing, generics-friendly concurrent map — Map[V] for
//     uint64 keys, StringMap[V] for byte-string keys and SpatialMap[V]
//     for points in the plane (Morton/Z-order keys, with atomic Move
//     and rectangle queries) — with the sync.Map operation set (Load,
//     Store, LoadOrStore, Delete, CompareAndSwap, CompareAndDelete),
//     the paper's atomic ReplaceKey(old, new), and Go iterators (All,
//     Ascend, InRect) over the trie's sorted key space. Load is
//     wait-free except on StringMap (unbounded keys make it lock-free);
//     every mutation is lock-free. Values live immutably and unboxed on
//     trie leaves, so a value update is a fresh-leaf child CAS, readers
//     never see torn data, and Load allocates nothing.
//
// All three key spaces are instantiations of one shared update engine
// (internal/engine): the descriptor/flag/help protocol of the paper is
// written once, generic over the key type, and each trie contributes
// only its key encoding and dummy bounds (see DESIGN.md).
//
//   - the paper's set layer: PatriciaTrie (wait-free Contains,
//     lock-free Insert/Delete, and the lock-free atomic Replace none of
//     the baselines provide), StringTrie (the Section VI unbounded-key
//     extension), and the five concurrent-set baselines of the paper's
//     evaluation — the Ellen-et-al. non-blocking BST, a non-blocking
//     k-ary search tree, a lock-free skip list, a Bronson-style
//     lock-based AVL tree and a Prokopec concurrent hash trie.
//
// The implementation registry (Implementations, NewSet,
// LookupImplementation) enumerates the set implementations by name, so
// benchmarks, tests and tools pick them up uniformly.
//
// All structures are safe for unrestricted concurrent use and rely on
// the Go garbage collector for memory reclamation, mirroring the paper's
// Java setting. Out-of-range keys are never errors: operations on a
// fixed-width trie treat them as permanently absent.
package nbtrie

import (
	"iter"

	"nbtrie/internal/avl"
	"nbtrie/internal/bst"
	"nbtrie/internal/core"
	"nbtrie/internal/ctrie"
	"nbtrie/internal/kst"
	"nbtrie/internal/skiplist"
	"nbtrie/internal/strtrie"
)

// Set is a linearizable concurrent set of uint64 keys. All methods may be
// called from any number of goroutines without external synchronization.
type Set interface {
	// Insert adds k to the set; it returns false iff k was present.
	Insert(k uint64) bool
	// Delete removes k from the set; it returns false iff k was absent.
	Delete(k uint64) bool
	// Contains reports whether k is in the set, without modifying it.
	Contains(k uint64) bool
}

// ReplaceSet is a Set with the paper's atomic replace operation.
type ReplaceSet interface {
	Set
	// Replace removes old and inserts new atomically: both changes become
	// visible at a single linearization point. It returns true iff old
	// was present and new absent (and old != new); otherwise the set is
	// unchanged.
	Replace(old, new uint64) bool
}

// PatriciaTrie is the paper's non-blocking Patricia trie. Contains is
// wait-free; Insert, Delete and Replace are lock-free. The key space is
// [0, 2^width) for the width given at construction; keys outside it are
// treated as permanently absent (Contains and Delete report false,
// Insert and Replace fail) rather than panicking.
type PatriciaTrie struct {
	t *core.Trie[struct{}]
}

var _ ReplaceSet = (*PatriciaTrie)(nil)

// NewPatriciaTrie returns an empty trie over keys in [0, 2^width);
// width must be in [1, 63].
func NewPatriciaTrie(width uint32) (*PatriciaTrie, error) {
	t, err := core.New[struct{}](width)
	if err != nil {
		return nil, err
	}
	return &PatriciaTrie{t: t}, nil
}

// NewPatriciaTrieNoReplace returns a trie with the paper's Section V
// fast-path optimization for workloads that never call Replace: searches
// skip the logical-removal check. Calling Replace on it panics.
func NewPatriciaTrieNoReplace(width uint32) (*PatriciaTrie, error) {
	t, err := core.New(width, core.WithoutReplace[struct{}]())
	if err != nil {
		return nil, err
	}
	return &PatriciaTrie{t: t}, nil
}

// KarySpan is the digit width of the registry's "karypatricia" (PAT-K)
// entry: 4 bits per level, 16-child internal nodes sized to one or two
// cache lines.
const KarySpan = 4

// NewKaryPatriciaTrie returns a k-ary trie over keys in [0, 2^width):
// the same non-blocking engine and guarantees as NewPatriciaTrie —
// wait-free allocation-free Contains, lock-free updates, atomic Replace
// — but each internal node resolves span key bits through 2^span child
// slots, cutting expected depth span-fold. span must be in [1, 6];
// span 1 is exactly NewPatriciaTrie.
func NewKaryPatriciaTrie(width, span uint32) (*PatriciaTrie, error) {
	t, err := core.New(width, core.WithSpan[struct{}](span))
	if err != nil {
		return nil, err
	}
	return &PatriciaTrie{t: t}, nil
}

// Insert adds k; false iff k was present or out of range. Lock-free.
func (p *PatriciaTrie) Insert(k uint64) bool { return p.t.Insert(k) }

// Delete removes k; false iff k was absent (out-of-range keys are always
// absent). Lock-free.
func (p *PatriciaTrie) Delete(k uint64) bool { return p.t.Delete(k) }

// Contains reports membership; out-of-range keys are never members.
// Wait-free: it completes in at most width+1 child-pointer reads
// regardless of concurrent updates.
func (p *PatriciaTrie) Contains(k uint64) bool { return p.t.Contains(k) }

// Replace atomically moves membership from old to new; true iff old was
// present and new absent (an out-of-range key on either side makes it
// fail). Lock-free.
func (p *PatriciaTrie) Replace(old, new uint64) bool { return p.t.Replace(old, new) }

// Size returns the number of keys; quiescent use only.
func (p *PatriciaTrie) Size() int { return p.t.Size() }

// Keys returns the keys in increasing order; quiescent use only.
func (p *PatriciaTrie) Keys() []uint64 { return p.t.Keys() }

// Range calls fn on each key in increasing order until fn returns false.
func (p *PatriciaTrie) Range(fn func(k uint64) bool) { p.t.Range(fn) }

// All iterates over the keys in increasing order. Entries present for
// the whole iteration are always yielded; concurrent changes may or may
// not be observed (the Range contract as a Go iterator).
func (p *PatriciaTrie) All() iter.Seq[uint64] { return p.Ascend(0) }

// Ascend iterates over the keys >= from in increasing order, pruning
// subtrees below from.
func (p *PatriciaTrie) Ascend(from uint64) iter.Seq[uint64] {
	return func(yield func(uint64) bool) {
		p.t.AscendKV(from, func(k uint64, _ struct{}) bool { return yield(k) })
	}
}

// Validate checks the trie's structural invariants (tests/diagnostics;
// quiescent use only).
func (p *PatriciaTrie) Validate() error { return p.t.Validate() }

// Dump renders the trie structure for debugging; quiescent use only.
func (p *PatriciaTrie) Dump() string { return p.t.Dump() }

// Width returns the key width the trie was built with.
func (p *PatriciaTrie) Width() uint32 { return p.t.Width() }

// Min returns the smallest key in the set. Exact at quiescence;
// best-effort under concurrent updates (like Range).
func (p *PatriciaTrie) Min() (uint64, bool) { return p.t.Min() }

// Max returns the largest key in the set (same consistency as Min).
func (p *PatriciaTrie) Max() (uint64, bool) { return p.t.Max() }

// Ceiling returns the smallest key >= k (same consistency as Min).
func (p *PatriciaTrie) Ceiling(k uint64) (uint64, bool) { return p.t.Ceiling(k) }

// Floor returns the largest key <= k (same consistency as Min).
func (p *PatriciaTrie) Floor(k uint64) (uint64, bool) { return p.t.Floor(k) }

// NewBST returns the non-blocking external binary search tree of Ellen,
// Fatourou, Ruppert and van Breugel (PODC 2010) — the paper's BST
// baseline.
func NewBST() Set { return bst.New() }

// NewKST returns a non-blocking k-ary external search tree after Brown &
// Helga (OPODIS 2011) — the paper's 4-ST baseline. arity < 2 falls back
// to the paper's k = 4.
func NewKST(arity int) Set { return kst.New(arity) }

// NewSkipList returns a lock-free skip list — the paper's SL baseline
// (Java's ConcurrentSkipListMap lineage).
func NewSkipList() Set { return skiplist.New() }

// NewAVL returns a lock-based relaxed-balance AVL tree with optimistic
// reads after Bronson et al. (PPoPP 2010) — the paper's AVL baseline.
func NewAVL() Set { return avl.New() }

// NewCtrie returns a non-blocking 32-way hash trie after Prokopec et al.
// (PPoPP 2012), without snapshots — the paper's Ctrie baseline.
func NewCtrie() Set { return ctrie.New() }

// StringTrie is the paper's Section VI extension: a non-blocking
// Patricia trie over arbitrary-length byte-string keys. Each key is
// encoded bit-wise (0→01, 1→10, end→11) so the encoded key space is
// prefix-free. Searches are lock-free (no longer wait-free: key length
// is unbounded); Insert, Delete and Replace are lock-free. Keys must be
// non-empty — the empty string's encoding collides with a dummy leaf.
type StringTrie struct {
	t *strtrie.Trie[struct{}]
}

// NewStringTrie returns an empty variable-length-key trie.
func NewStringTrie() *StringTrie { return &StringTrie{t: strtrie.New[struct{}]()} }

// Insert adds k; false iff k was present. k is copied logically via its
// encoding, so the caller may reuse the slice.
func (s *StringTrie) Insert(k []byte) bool { return s.t.Insert(k) }

// Delete removes k; false iff k was absent.
func (s *StringTrie) Delete(k []byte) bool { return s.t.Delete(k) }

// Contains reports whether k is in the set.
func (s *StringTrie) Contains(k []byte) bool { return s.t.Contains(k) }

// Replace atomically removes old and inserts new; true iff old was
// present and new absent.
func (s *StringTrie) Replace(old, new []byte) bool { return s.t.Replace(old, new) }

// Size returns the number of keys; quiescent use only.
func (s *StringTrie) Size() int { return s.t.Size() }

// Keys returns the keys in encoded order (lexicographic except that a
// proper prefix follows its extensions); quiescent use only.
func (s *StringTrie) Keys() [][]byte { return s.t.Keys() }

// All iterates over the keys in encoded order, with the same concurrent-
// read contract as PatriciaTrie.All.
func (s *StringTrie) All() iter.Seq[[]byte] {
	return func(yield func([]byte) bool) {
		s.t.AllKV(func(k []byte, _ struct{}) bool { return yield(k) })
	}
}

// Ascend iterates over the keys sorting at or after from in encoded
// order, pruning subtrees below from — the set-level twin of
// StringMap.Ascend. from must be non-empty, like every StringTrie key.
func (s *StringTrie) Ascend(from []byte) iter.Seq[[]byte] {
	return func(yield func([]byte) bool) {
		s.t.AscendKV(from, func(k []byte, _ struct{}) bool { return yield(k) })
	}
}

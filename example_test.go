package nbtrie_test

import (
	"fmt"

	"nbtrie"
)

// The basic set operations of the non-blocking Patricia trie.
func ExampleNewPatriciaTrie() {
	set, err := nbtrie.NewPatriciaTrie(16) // keys in [0, 65536)
	if err != nil {
		panic(err)
	}
	fmt.Println(set.Insert(42))   // newly added
	fmt.Println(set.Insert(42))   // duplicate
	fmt.Println(set.Contains(42)) // wait-free lookup
	fmt.Println(set.Delete(42))
	fmt.Println(set.Contains(42))
	// Output:
	// true
	// false
	// true
	// true
	// false
}

// Replace removes one key and inserts another atomically: there is no
// instant at which both keys are absent or both present.
func ExamplePatriciaTrie_Replace() {
	set, _ := nbtrie.NewPatriciaTrie(16)
	set.Insert(100)

	fmt.Println(set.Replace(100, 200)) // moves the element
	fmt.Println(set.Contains(100), set.Contains(200))
	fmt.Println(set.Replace(100, 300)) // 100 is gone: no-op
	fmt.Println(set.Replace(200, 200)) // same key: no-op by specification
	// Output:
	// true
	// false true
	// false
	// false
}

// Ordered queries walk the trie's sorted leaves.
func ExamplePatriciaTrie_Ceiling() {
	set, _ := nbtrie.NewPatriciaTrie(16)
	for _, k := range []uint64{10, 20, 30} {
		set.Insert(k)
	}
	if k, ok := set.Ceiling(15); ok {
		fmt.Println(k)
	}
	if k, ok := set.Floor(15); ok {
		fmt.Println(k)
	}
	min, _ := set.Min()
	max, _ := set.Max()
	fmt.Println(min, max)
	// Output:
	// 20
	// 10
	// 10 30
}

// The Section VI extension stores arbitrary-length byte strings.
func ExampleNewStringTrie() {
	dict := nbtrie.NewStringTrie()
	dict.Insert([]byte("gopher"))
	dict.Insert([]byte("go")) // prefixes of stored keys are fine

	fmt.Println(dict.Contains([]byte("go")))
	fmt.Println(dict.Contains([]byte("gop"))) // prefix != member
	fmt.Println(dict.Replace([]byte("gopher"), []byte("ferret")))
	fmt.Println(dict.Size())
	// Output:
	// true
	// false
	// true
	// 2
}

// A Map binds values to keys with the sync.Map operation set plus the
// paper's atomic ReplaceKey, which moves a binding between keys at a
// single linearization point.
func ExampleNewMap() {
	m, err := nbtrie.NewMap[string](16)
	if err != nil {
		panic(err)
	}
	m.Store(1, "one")
	fmt.Println(m.LoadOrStore(1, "uno")) // already bound (loaded=true, ok=true)
	fmt.Println(m.CompareAndSwap(1, "one", "ONE"))
	fmt.Println(m.ReplaceKey(1, 2)) // the value travels with the key
	v, ok := m.Load(2)
	fmt.Println(v, ok)
	// Output:
	// one true true
	// true
	// true
	// ONE true
}

// All and Ascend iterate the map in key order (Go 1.23 range-over-func).
func ExampleMap_Ascend() {
	m, _ := nbtrie.NewMap[string](16)
	m.Store(30, "c")
	m.Store(10, "a")
	m.Store(20, "b")
	for k, v := range m.Ascend(15) {
		fmt.Println(k, v)
	}
	// Output:
	// 20 b
	// 30 c
}

// The registry enumerates every implementation by name; NewSet builds
// one without hard-coding a switch.
func ExampleNewSet() {
	for _, name := range nbtrie.Implementations() {
		s, err := nbtrie.NewSet(name)
		if err != nil {
			panic(err)
		}
		s.Insert(42)
		fmt.Println(name, s.Contains(42))
	}
	// Output:
	// patricia true
	// kst true
	// bst true
	// avl true
	// skiplist true
	// ctrie true
	// spatial true
	// sharded true
	// karypatricia true
}

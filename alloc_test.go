package nbtrie

import (
	"fmt"
	"testing"
)

// Allocation pins for the wait-free read path at the public API layer.
// The white-box pins in internal/core catch regressions in the
// algorithm; these catch regressions in the wrapping — an interface
// conversion or closure sneaking into Map.Load, or a registry
// implementation whose Contains quietly starts boxing. Every registry
// entry that claims WaitFreeRead is held to zero allocations here, so a
// new trie variant registers once and inherits the check.

func TestRegistryWaitFreeReadsDoNotAllocate(t *testing.T) {
	checked := 0
	for _, im := range AllImplementations() {
		if !im.WaitFreeRead {
			continue
		}
		checked++
		t.Run(im.Name, func(t *testing.T) {
			s, err := im.New(20)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 1024; k++ {
				s.Insert(k)
			}
			if n := testing.AllocsPerRun(500, func() {
				if !s.Contains(512) {
					t.Fatal("Contains(512) missed")
				}
				if s.Contains(4096) {
					t.Fatal("Contains(4096) false positive")
				}
			}); n != 0 {
				t.Errorf("%s.Contains allocates %v objects per call; its registry entry claims a wait-free (allocation-free) read", im.Name, n)
			}
		})
	}
	if checked == 0 {
		t.Fatal("no registry implementation claims WaitFreeRead; the Patricia trie should")
	}
}

// TestMapReadPathDoesNotAllocate pins the de-boxing win of the generic
// value layer at the public surface: Map[V] stores values unboxed, so
// Load and Contains stay allocation-free for value types that would
// previously have been boxed into the leaf's interface field.
func TestMapReadPathDoesNotAllocate(t *testing.T) {
	t.Run("int", func(t *testing.T) {
		m, err := NewMap[int](20)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 1024; k++ {
			m.Store(k, int(k)+100000)
		}
		if n := testing.AllocsPerRun(500, func() {
			if v, ok := m.Load(512); !ok || v != 100512 {
				t.Fatal("Load(512) wrong")
			}
			if _, ok := m.Load(4096); ok {
				t.Fatal("Load(4096) false positive")
			}
			if !m.Contains(512) {
				t.Fatal("Contains(512) missed")
			}
		}); n != 0 {
			t.Errorf("Map[int] read path allocates %v objects per call, want 0", n)
		}
	})
	t.Run("struct", func(t *testing.T) {
		type point struct{ X, Y float64 }
		m, err := NewMap[point](20)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 256; k++ {
			m.Store(k, point{X: float64(k), Y: -float64(k)})
		}
		if n := testing.AllocsPerRun(500, func() {
			if v, ok := m.Load(100); !ok || v.X != 100 {
				t.Fatal("Load(100) wrong")
			}
		}); n != 0 {
			t.Errorf("Map[struct] Load allocates %v objects per call, want 0", n)
		}
	})
}

// TestStringMapLoadAllocationBudget: the byte-string trie cannot be
// allocation-free on reads — the key must be bit-encoded first — but
// that encoding is the only permitted allocation. The search and the
// unboxed value read must add nothing.
func TestStringMapLoadAllocationBudget(t *testing.T) {
	m := NewStringMap[int]()
	for i := 0; i < 256; i++ {
		m.Store([]byte(fmt.Sprintf("key-%03d", i)), i)
	}
	key := []byte("key-100")
	if n := testing.AllocsPerRun(500, func() {
		if v, ok := m.Load(key); !ok || v != 100 {
			t.Fatal("Load wrong")
		}
	}); n > 1 {
		t.Errorf("StringMap Load allocates %v objects per call; budget is 1 (the key encoding)", n)
	}
}

package nbtrie

import (
	"fmt"
	"sync"
	"testing"
)

// Len is maintained by per-trie (per-shard, for ShardedMap) atomic
// counters bumped only on successful insert/delete paths, so it must be
// O(1)-cheap, allocation-free, exact at quiescence, and must never
// drift no matter how much concurrent helping happened. These tests pin
// that contract at the public surface for all four map flavors.

func TestLenAllMaps(t *testing.T) {
	t.Run("Map", func(t *testing.T) {
		m, err := NewMap[int](16)
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != 0 {
			t.Fatalf("fresh map Len = %d", m.Len())
		}
		for k := uint64(0); k < 100; k++ {
			m.Store(k, int(k))
		}
		m.Store(50, -1) // overwrite: no count change
		if m.Len() != 100 {
			t.Fatalf("Len = %d, want 100", m.Len())
		}
		if !m.ReplaceKey(10, 1000) || m.Len() != 100 {
			t.Fatalf("after ReplaceKey Len = %d, want 100", m.Len())
		}
		for k := uint64(0); k < 50; k++ {
			m.Delete(k)
		}
		// 10 was already moved away, so one of those deletes missed.
		if m.Len() != 51 {
			t.Fatalf("Len = %d, want 51", m.Len())
		}
	})
	t.Run("StringMap", func(t *testing.T) {
		m := NewStringMap[int]()
		for i := 0; i < 64; i++ {
			m.Store([]byte(fmt.Sprintf("k%02d", i)), i)
		}
		if m.Len() != 64 {
			t.Fatalf("Len = %d, want 64", m.Len())
		}
		m.Delete([]byte("k07"))
		m.ReplaceKey([]byte("k08"), []byte("moved"))
		if m.Len() != 63 {
			t.Fatalf("Len = %d, want 63", m.Len())
		}
	})
	t.Run("SpatialMap", func(t *testing.T) {
		m := NewSpatialMap[string]()
		for i := uint32(0); i < 32; i++ {
			m.Store(i, i*2, "p")
		}
		if m.Len() != 32 {
			t.Fatalf("Len = %d, want 32", m.Len())
		}
		if !m.Move(Point{X: 3, Y: 6}, Point{X: 500, Y: 500}) || m.Len() != 32 {
			t.Fatalf("after Move Len = %d, want 32", m.Len())
		}
		m.Delete(4, 8)
		if m.Len() != 31 {
			t.Fatalf("Len = %d, want 31", m.Len())
		}
	})
	t.Run("ShardedMap", func(t *testing.T) {
		m, err := NewShardedMap[int](16, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Spread keys across all shards: the top 3 bits of a 16-bit key
		// pick the shard, so stride the inserts through the whole space.
		for k := uint64(0); k < 1<<16; k += 257 {
			m.Store(k, int(k))
		}
		want := (1<<16 + 256) / 257
		if m.Len() != want {
			t.Fatalf("Len = %d, want %d", m.Len(), want)
		}
		m.Delete(0)
		if m.Len() != want-1 {
			t.Fatalf("Len = %d, want %d", m.Len(), want-1)
		}
	})
}

// TestShardedLenConcurrent hammers a ShardedMap across every shard from
// many goroutines and checks the summed per-shard counters against a
// full traversal at quiescence.
func TestShardedLenConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 4000
		width   = 12
	)
	m, err := NewShardedMap[uint64](width, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < rounds; i++ {
				k := next() % (1 << width)
				switch next() % 5 {
				case 0:
					m.Store(k, seed)
				case 1:
					m.Delete(k)
				case 2:
					m.LoadOrStore(k, seed)
				case 3:
					m.CompareAndDelete(k, seed)
				case 4:
					m.ReplaceKey(k, next()%(1<<width)) // may be cross-shard: refused, no change
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	n := 0
	for range m.All() {
		n++
	}
	if got := m.Len(); got != n {
		t.Fatalf("at quiescence Len() = %d but iteration found %d entries", got, n)
	}
}

// TestLenDoesNotAllocate: the counter read must stay as cheap as the
// wait-free read path it sits next to.
func TestLenDoesNotAllocate(t *testing.T) {
	m, err := NewShardedMap[int](16, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 512; k++ {
		m.Store(k, 1)
	}
	if n := testing.AllocsPerRun(200, func() {
		if m.Len() != 512 {
			t.Fatal("Len wrong")
		}
		if _, ok := m.Load(5); !ok {
			t.Fatal("Load missed")
		}
		if !m.Contains(5) {
			t.Fatal("Contains missed")
		}
	}); n != 0 {
		t.Errorf("Len/Load/Contains allocate %v objects per call, want 0", n)
	}
}

// Package skiplist implements a lock-free skip list set, the repository's
// stand-in for the Java ConcurrentSkipListMap baseline ("SL") of the
// paper's evaluation. The algorithm is the classic lock-free skip list of
// the Fraser / Fomitchev–Ruppert / Lea lineage as presented by Herlihy &
// Shavit: a node is deleted logically by marking its next pointers from
// the top level down, and marked nodes are physically snipped out by
// subsequent traversals.
//
// Go has no spare pointer bits to steal, so each (next, marked) pair is
// boxed in an immutable cell swapped by CAS on an atomic.Pointer. Every
// cell is freshly allocated, which also rules out ABA. The garbage
// collector reclaims snipped nodes, as in the Java original.
package skiplist

import (
	"math/bits"
	"sync/atomic"
)

const maxLevel = 24 // supports ~2^24 elements at p = 1/2

// rank orders the head sentinel below and the tail sentinel above every
// user key.
type rank uint8

const (
	rankHead rank = iota
	rankUser
	rankTail
)

type key struct {
	v uint64
	r rank
}

func (a key) less(b key) bool {
	if a.r != b.r {
		return a.r < b.r
	}
	return a.v < b.v
}

func (a key) equal(b key) bool { return a.r == b.r && a.v == b.v }

// cell is one immutable (successor, marked) pair. marked means the node
// owning this cell is logically deleted at that level.
type cell struct {
	next   *node
	marked bool
}

type node struct {
	key      key
	topLevel int
	next     []atomic.Pointer[cell]
}

func newNode(k key, topLevel int) *node {
	n := &node{key: k, topLevel: topLevel, next: make([]atomic.Pointer[cell], topLevel+1)}
	for i := range n.next {
		n.next[i].Store(&cell{})
	}
	return n
}

// List is the lock-free skip list set.
type List struct {
	head *node
	seed atomic.Uint64
}

// New returns an empty skip list.
func New() *List {
	head := newNode(key{r: rankHead}, maxLevel)
	tail := newNode(key{r: rankTail}, maxLevel)
	for i := 0; i <= maxLevel; i++ {
		head.next[i].Store(&cell{next: tail})
	}
	l := &List{head: head}
	l.seed.Store(0x9e3779b97f4a7c15)
	return l
}

// randomLevel draws a geometric(1/2) level from a shared splitmix64
// stream; the single atomic add is cheap and keeps the list deterministic
// enough for tests without the contention of a locked rand.Source.
func (l *List) randomLevel() int {
	x := l.seed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	lvl := bits.TrailingZeros64(x | 1<<maxLevel)
	return lvl
}

// find locates k, filling preds/succs per level and physically removing
// any marked nodes it passes. It returns true if an unmarked node with
// key k was found at the bottom level.
func (l *List) find(k key, preds, succs *[maxLevel + 1]*node) bool {
retry:
	for {
		pred := l.head
		for level := maxLevel; level >= 0; level-- {
			curr := pred.next[level].Load().next
			for {
				c := curr.next[level].Load()
				for c.marked {
					// curr is logically deleted: snip it at this level.
					pc := pred.next[level].Load()
					if pc.marked || pc.next != curr {
						continue retry
					}
					if !pred.next[level].CompareAndSwap(pc, &cell{next: c.next}) {
						continue retry
					}
					curr = c.next
					c = curr.next[level].Load()
				}
				if curr.key.less(k) {
					pred = curr
					curr = c.next
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		return succs[0].key.equal(k)
	}
}

// Contains reports whether k is in the set. It never writes: marked nodes
// are skipped, not snipped.
func (l *List) Contains(k uint64) bool {
	kk := key{v: k, r: rankUser}
	pred := l.head
	var curr *node
	for level := maxLevel; level >= 0; level-- {
		curr = pred.next[level].Load().next
		for {
			c := curr.next[level].Load()
			if c.marked {
				curr = c.next
				continue
			}
			if curr.key.less(kk) {
				pred = curr
				curr = c.next
				continue
			}
			break
		}
	}
	return curr.key.equal(kk)
}

// Insert adds k, returning false if already present.
func (l *List) Insert(k uint64) bool {
	kk := key{v: k, r: rankUser}
	topLevel := l.randomLevel()
	var preds, succs [maxLevel + 1]*node
	for {
		if l.find(kk, &preds, &succs) {
			return false
		}
		nn := newNode(kk, topLevel)
		for level := 0; level <= topLevel; level++ {
			nn.next[level].Store(&cell{next: succs[level]})
		}
		// Link at the bottom level first: this is the linearization point.
		pc := preds[0].next[0].Load()
		if pc.marked || pc.next != succs[0] {
			continue
		}
		if !preds[0].next[0].CompareAndSwap(pc, &cell{next: nn}) {
			continue
		}
		// Link the upper levels, re-finding on interference. The element
		// is already in the set (bottom-level link is the linearization
		// point); upper links are an optimization, so we stop quietly if
		// the node is deleted under us.
		for level := 1; level <= topLevel; level++ {
			for {
				if succs[level] == nn {
					break // already linked at this level by a re-find race
				}
				// Refresh nn's forward pointer to the current successor.
				nc := nn.next[level].Load()
				if nc.marked {
					return true // concurrently deleted; stop linking
				}
				if nc.next != succs[level] &&
					!nn.next[level].CompareAndSwap(nc, &cell{next: succs[level]}) {
					continue
				}
				pc := preds[level].next[level].Load()
				if !pc.marked && pc.next == succs[level] &&
					preds[level].next[level].CompareAndSwap(pc, &cell{next: nn}) {
					break
				}
				l.find(kk, &preds, &succs)
				if succs[0] != nn {
					return true // nn was deleted and snipped while linking
				}
			}
		}
		return true
	}
}

// Delete removes k, returning false if absent. The victim is marked top
// down; marking the bottom level is the linearization point and only one
// deleter can win it.
func (l *List) Delete(k uint64) bool {
	kk := key{v: k, r: rankUser}
	var preds, succs [maxLevel + 1]*node
	for {
		if !l.find(kk, &preds, &succs) {
			return false
		}
		victim := succs[0]
		for level := victim.topLevel; level >= 1; level-- {
			for {
				c := victim.next[level].Load()
				if c.marked {
					break
				}
				if victim.next[level].CompareAndSwap(c, &cell{next: c.next, marked: true}) {
					break
				}
			}
		}
		for {
			c := victim.next[0].Load()
			if c.marked {
				return false // another deleter won
			}
			if victim.next[0].CompareAndSwap(c, &cell{next: c.next, marked: true}) {
				l.find(kk, &preds, &succs) // physical cleanup
				return true
			}
		}
	}
}

// Size counts user keys; quiescent use only.
func (l *List) Size() int {
	n := 0
	for curr := l.head.next[0].Load().next; curr.key.r != rankTail; curr = curr.next[0].Load().next {
		if !curr.next[0].Load().marked {
			n++
		}
	}
	return n
}

package skiplist

import (
	"testing"

	"nbtrie/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return New() })
}

func TestSizeQuiescent(t *testing.T) {
	l := New()
	for k := uint64(0); k < 200; k++ {
		l.Insert(k)
	}
	if got := l.Size(); got != 200 {
		t.Errorf("Size() = %d, want 200", got)
	}
	for k := uint64(0); k < 200; k += 2 {
		l.Delete(k)
	}
	if got := l.Size(); got != 100 {
		t.Errorf("Size() = %d, want 100", got)
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	l := New()
	var counts [maxLevel + 1]int
	const draws = 1 << 16
	for i := 0; i < draws; i++ {
		lv := l.randomLevel()
		if lv < 0 || lv > maxLevel {
			t.Fatalf("level %d out of range", lv)
		}
		counts[lv]++
	}
	// Roughly half the draws should be level 0 and the tail should decay;
	// loose bounds, this only guards against a broken mixer.
	if counts[0] < draws/3 || counts[0] > 2*draws/3 {
		t.Errorf("level-0 fraction %d/%d far from 1/2", counts[0], draws)
	}
	if counts[maxLevel] > draws/100 {
		t.Errorf("top level drawn too often: %d", counts[maxLevel])
	}
}

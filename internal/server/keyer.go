package server

import (
	"fmt"
	"math"
	"strconv"
)

// A Keyer maps wire keys (the byte strings clients send) into the
// fixed-width uint64 key space of the backing sharded trie, and back.
// Making this pluggable — instead of, say, hashing every string to 64
// bits — keeps the width/shard configuration honest: the mapping must
// be *injective* (two distinct wire keys never collide on one trie
// key, so a SET can never clobber an unrelated key) and *invertible*
// (SCAN walks the trie's key space and must render each key back as
// the byte string the client knows). Keys the mapping cannot represent
// are refused with an error the server surfaces as a RESP error; they
// are never silently truncated or hashed.
//
// A Keyer that additionally preserves lexicographic order (BytesKeyer
// does; DecimalKeyer preserves numeric order) makes SCAN's cursor
// iterate in the corresponding key order, for free, because the trie
// ascends its encoded key space.
type Keyer interface {
	// Name identifies the keyer in INFO output and CLI flags.
	Name() string
	// Width is the trie key width in bits this keyer encodes into; the
	// server sizes its ShardedMap with it.
	Width() uint32
	// Encode maps a wire key to a trie key in [0, 2^Width()), or
	// returns an error describing why the key is not representable.
	Encode(key []byte) (uint64, error)
	// Decode renders a trie key produced by Encode back into the wire
	// key. It is only defined on Encode's image; the server only calls
	// it on keys read back out of the trie.
	Decode(k uint64) []byte
	// DecodeAppend appends the wire form of k to dst and returns the
	// extended slice, so hot paths (SCAN replies, AOF re-rendering in
	// affine dispatch) can reuse one scratch buffer instead of
	// allocating per key. Same domain restriction as Decode.
	DecodeAppend(dst []byte, k uint64) []byte
}

// NewKeyer resolves a keyer by name: "bytes" (BytesKeyer) or "decimal"
// (DecimalKeyer at the maximum width 63).
func NewKeyer(name string) (Keyer, error) {
	switch name {
	case "bytes":
		return BytesKeyer{}, nil
	case "decimal":
		return DecimalKeyer{KeyWidth: 63}, nil
	default:
		return nil, fmt.Errorf("unknown keyer %q (want bytes or decimal)", name)
	}
}

// DecimalKeyer interprets wire keys as canonical decimal integers in
// [0, 2^KeyWidth): "0", "7", "1000001". Rejected: empty keys, any
// non-digit (including signs and spaces), leading zeros ("007" —
// canonical form keeps the mapping bijective, so SCAN returns exactly
// the spelling that was stored), and values outside the width. Numeric
// order of the wire keys equals trie key order, so SCAN ascends
// numerically.
type DecimalKeyer struct {
	// KeyWidth is the trie width in bits, in [1, 63].
	KeyWidth uint32
}

// Name implements Keyer.
func (DecimalKeyer) Name() string { return "decimal" }

// Width implements Keyer.
func (d DecimalKeyer) Width() uint32 { return d.KeyWidth }

// Encode implements Keyer.
func (d DecimalKeyer) Encode(key []byte) (uint64, error) {
	if len(key) == 0 {
		return 0, fmt.Errorf("empty key")
	}
	if len(key) > 1 && key[0] == '0' {
		return 0, fmt.Errorf("decimal keyer: key %q has leading zeros (canonical decimal only)", key)
	}
	for _, c := range key {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("decimal keyer: key %q is not a decimal integer", key)
		}
	}
	// Accumulate manually: strconv.ParseUint(string(key), ...) would
	// heap-allocate the string conversion on every command.
	var n uint64
	for _, c := range key {
		dig := uint64(c - '0')
		if n > (math.MaxUint64-dig)/10 {
			return 0, fmt.Errorf("decimal keyer: key %q out of range", key)
		}
		n = n*10 + dig
	}
	if n >= uint64(1)<<d.KeyWidth {
		return 0, fmt.Errorf("decimal keyer: key %q outside [0, 2^%d)", key, d.KeyWidth)
	}
	return n, nil
}

// Decode implements Keyer.
func (DecimalKeyer) Decode(k uint64) []byte {
	return strconv.AppendUint(nil, k, 10)
}

// DecodeAppend implements Keyer.
func (DecimalKeyer) DecodeAppend(dst []byte, k uint64) []byte {
	return strconv.AppendUint(dst, k, 10)
}

// BytesKeyer maps short binary keys — 1 to 7 arbitrary bytes, NULs and
// all — injectively into a 59-bit trie key: the bytes big-endian in
// the top 56 bits, zero-padded, with the byte count in the low 3 bits
// to disambiguate the padding ("a" vs "a\x00"). The mapping preserves
// lexicographic order: the padded bytes dominate the comparison and
// the length tag breaks exactly the zero-padding ties, in which the
// shorter key is the lexicographically smaller one. Rejected: empty
// keys and keys longer than 7 bytes.
//
// Seven bytes is not much of a namespace for a general cache, but it
// is the honest maximum a 64-bit trie key can carry reversibly; wider
// key spaces belong to a StringMap-backed server (future work), not to
// a lossy hash bolted onto this one.
type BytesKeyer struct{}

// BytesKeyerMaxLen is the longest wire key BytesKeyer can represent.
const BytesKeyerMaxLen = 7

// Name implements Keyer.
func (BytesKeyer) Name() string { return "bytes" }

// Width implements Keyer: 7 bytes of payload plus the 3-bit length tag.
func (BytesKeyer) Width() uint32 { return 59 }

// Encode implements Keyer.
func (BytesKeyer) Encode(key []byte) (uint64, error) {
	n := len(key)
	if n == 0 {
		return 0, fmt.Errorf("empty key")
	}
	if n > BytesKeyerMaxLen {
		return 0, fmt.Errorf("bytes keyer: key of %d bytes exceeds the %d-byte maximum", n, BytesKeyerMaxLen)
	}
	var v uint64
	for _, b := range key {
		v = v<<8 | uint64(b)
	}
	v <<= 8 * uint(BytesKeyerMaxLen-n) // left-align: pad toward the low bytes
	return v<<3 | uint64(n), nil
}

// Decode implements Keyer.
func (b BytesKeyer) Decode(k uint64) []byte {
	return b.DecodeAppend(nil, k)
}

// DecodeAppend implements Keyer.
func (BytesKeyer) DecodeAppend(dst []byte, k uint64) []byte {
	n := int(k & 7)
	v := k >> 3
	for i := 0; i < n; i++ {
		dst = append(dst, byte(v>>(8*uint(BytesKeyerMaxLen-1-i))))
	}
	return dst
}

package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nbtrie/internal/persist"
	"nbtrie/internal/resp"
)

func persistCfg(dir string) Config {
	return Config{Persist: PersistConfig{Dir: dir, AOF: true, Fsync: persist.SyncAlways}}
}

// restart closes the running server and boots a fresh one over the same
// data directory — the crash-free half of the recovery contract.
func restart(t *testing.T, s *Server, cfg Config) (*Server, string) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("Close before restart: %v", err)
	}
	return startServer(t, cfg)
}

func TestPersistRecoverAfterRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir)
	s, addr := startServer(t, cfg)
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "alpha", "1")
	c.mustSimple("OK", "SET", "beta", "2")
	c.mustSimple("OK", "SET", "gamma", "3")
	c.mustInt(1, "DEL", "beta")
	c.mustSimple("OK", "RENAME", "gamma", "delta")
	c.mustSimple("OK", "MSET", "m1", "x", "m2", "y")
	c.mustSimple("OK", "SET", "alpha", "1b") // overwrite must replay last-wins

	_, addr2 := restart(t, s, cfg)
	c2 := dial(t, addr2)
	c2.mustBulk("1b", "GET", "alpha")
	c2.mustNull("GET", "beta")
	c2.mustNull("GET", "gamma")
	c2.mustBulk("3", "GET", "delta")
	c2.mustBulk("x", "GET", "m1")
	c2.mustBulk("y", "GET", "m2")
	c2.mustInt(4, "DBSIZE")
}

func TestPersistSaveRotatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir)
	s, addr := startServer(t, cfg)
	c := dial(t, addr)
	for i := 0; i < 100; i++ {
		c.mustSimple("OK", "SET", fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	c.mustSimple("OK", "SAVE")
	// Post-SAVE writes land in the rotated segment only.
	c.mustSimple("OK", "SET", "post", "save")
	c.mustInt(1, "DEL", "k000")

	// The manifest must have swung to the new base with exactly one
	// segment — the exact-boundary recipe.
	m, ok, err := persist.ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest after SAVE: ok=%v err=%v", ok, err)
	}
	if m.Base == "" || len(m.Incrs) != 1 {
		t.Fatalf("manifest after SAVE = %+v, want base + 1 segment", m)
	}

	_, addr2 := restart(t, s, cfg)
	c2 := dial(t, addr2)
	c2.mustBulk("save", "GET", "post")
	c2.mustNull("GET", "k000")
	c2.mustBulk("v42", "GET", "k042")
	c2.mustInt(100, "DBSIZE") // 100 - k000 + post
}

func TestPersistWithoutAOFOnlySaveSurvives(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Persist: PersistConfig{Dir: dir, AOF: false}}
	s, addr := startServer(t, cfg)
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "durable", "yes")
	c.mustSimple("OK", "SAVE")
	c.mustSimple("OK", "SET", "vol", "lost")

	_, addr2 := restart(t, s, cfg)
	c2 := dial(t, addr2)
	c2.mustBulk("yes", "GET", "durable")
	c2.mustNull("GET", "vol")
}

// TestPersistBGSAVEExactBoundary hammers unique-key SETs from several
// connections while BGSAVEs rotate underneath, then restarts: every
// acknowledged write must be present exactly once. This is the
// dump/AOF double-application test — if a record landed both in a
// snapshot and in a replayed segment, or in neither, recovery diverges.
func TestPersistBGSAVEExactBoundary(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir)
	s, addr := startServer(t, cfg)

	const writers = 4
	const perWriter = 300
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			c := dial(t, addr)
			for i := 0; i < perWriter; i++ {
				c.mustSimple("OK", "SET",
					fmt.Sprintf("w%d-%04d", wr, i), fmt.Sprintf("%d:%d", wr, i))
			}
		}(wr)
	}
	// Rotations racing the writers.
	admin := dial(t, addr)
	for i := 0; i < 5; i++ {
		v := admin.do("BGSAVE")
		if v.Kind == resp.TypeError {
			// A save already in flight is the only acceptable refusal.
			if want := "already in progress"; !contains(string(v.Str), want) {
				t.Fatalf("BGSAVE error %q", v.Str)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()

	s2, addr2 := restart(t, s, cfg)
	c2 := dial(t, addr2)
	for wr := 0; wr < writers; wr++ {
		for i := 0; i < perWriter; i++ {
			c2.mustBulk(fmt.Sprintf("%d:%d", wr, i), "GET", fmt.Sprintf("w%d-%04d", wr, i))
		}
	}
	if got := s2.DB().Len(); got != writers*perWriter {
		t.Fatalf("recovered %d keys, want %d", got, writers*perWriter)
	}
	if err := s2.DB().Validate(); err != nil {
		t.Fatalf("recovered trie invalid: %v", err)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestPersistTornTailTruncated simulates the crash shape fsync=always
// promises to survive: a partial record at the AOF tail is discarded,
// everything before it recovers.
func TestPersistTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir)
	s, addr := startServer(t, cfg)
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "whole", "record")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the live segment: append half a RESP record.
	m, ok, err := persist.ReadManifest(dir)
	if err != nil || !ok || len(m.Incrs) == 0 {
		t.Fatalf("manifest: ok=%v err=%v m=%+v", ok, err, m)
	}
	seg := filepath.Join(dir, m.Incrs[len(m.Incrs)-1])
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("*3\r\n$3\r\nSET\r\n$4\r\nto")
	f.Close()

	_, addr2 := startServer(t, cfg)
	c2 := dial(t, addr2)
	c2.mustBulk("record", "GET", "whole")
	c2.mustInt(1, "DBSIZE")
	_ = addr
	_ = addr2
}

// TestPersistRefusesCorruption: damage BEFORE the tail is not a tear;
// the server must refuse to boot rather than serve a silent subset.
func TestPersistRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir)
	s, addr := startServer(t, cfg)
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "a", "1")
	c.mustSimple("OK", "SET", "b", "2")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_ = addr

	m, _, _ := persist.ReadManifest(dir)
	seg := filepath.Join(dir, m.Incrs[len(m.Incrs)-1])
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[0] = '!' // first record's framing destroyed: corruption, not a tear
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a corrupt AOF segment")
	}
}

func TestPersistLastSaveAndInfo(t *testing.T) {
	dir := t.TempDir()
	_, addr := startServer(t, persistCfg(dir))
	c := dial(t, addr)
	c.mustInt(0, "LASTSAVE")
	c.mustSimple("OK", "SET", "k", "v")
	c.mustSimple("OK", "SAVE")
	if v := c.do("LASTSAVE"); v.Kind != resp.TypeInt || v.Int <= 0 {
		t.Fatalf("LASTSAVE after SAVE = %s", v)
	}
	info := c.do("INFO")
	for _, want := range []string{
		"# Persistence", "aof_enabled:1", "aof_fsync:always",
		"rdb_last_bgsave_status:ok", "persistence_dir:" + dir,
	} {
		if !contains(string(info.Str), want) {
			t.Errorf("INFO missing %q", want)
		}
	}
}

func TestPersistDisabledCommands(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	c.mustErrContain("persistence is disabled", "SAVE")
	c.mustErrContain("persistence is disabled", "BGSAVE")
	c.mustInt(0, "LASTSAVE")
}

// TestScanSnapshotConsistentCut: a full cursor walk returns exactly the
// keys present when the cursor was opened — concurrent SETs and DELs
// between pages are invisible to it (DESIGN.md §8).
func TestScanSnapshotConsistentCut(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	const n = 100
	for i := 0; i < n; i++ {
		c.mustSimple("OK", "SET", fmt.Sprintf("key%03d", i), "v")
	}

	seen := map[string]int{}
	cursor := "0"
	pages := 0
	for {
		v := c.do("SCAN", cursor, "COUNT", "7")
		if v.Kind != resp.TypeArray || len(v.Array) != 2 {
			t.Fatalf("SCAN reply %s", v)
		}
		for _, k := range v.Array[1].Array {
			seen[string(k.Str)]++
		}
		cursor = string(v.Array[0].Str)
		pages++
		if pages == 2 {
			// Mid-walk churn: none of this may leak into the cursor.
			c.mustSimple("OK", "SET", "zzz-new", "late")
			c.mustInt(1, "DEL", "key050")
			c.mustSimple("OK", "SET", "key051", "overwritten")
		}
		if cursor == "0" {
			break
		}
		if pages > 2*n {
			t.Fatal("SCAN never terminated")
		}
	}
	if len(seen) != n {
		t.Fatalf("walk saw %d distinct keys, want %d", len(seen), n)
	}
	for k, cnt := range seen {
		if cnt != 1 {
			t.Errorf("key %q returned %d times", k, cnt)
		}
	}
	if _, ok := seen["zzz-new"]; ok {
		t.Error("key inserted mid-walk leaked into the snapshot cursor")
	}
	if _, ok := seen["key050"]; !ok {
		t.Error("key deleted mid-walk vanished from the snapshot cursor")
	}
}

// TestScanCursorEviction: the cursor table is bounded; the evicted
// (oldest) cursor terminates cleanly with an empty final page.
func TestScanCursorEviction(t *testing.T) {
	_, addr := startServer(t, Config{MaxScanCursors: 2})
	c := dial(t, addr)
	for i := 0; i < 30; i++ {
		c.mustSimple("OK", "SET", fmt.Sprintf("k%02d", i), "v")
	}
	open := func() string {
		v := c.do("SCAN", "0", "COUNT", "5")
		return string(v.Array[0].Str)
	}
	c1 := open()
	open()
	open()
	open() // table cap 2: c1 must be long gone
	if c1 == "0" {
		t.Fatal("first SCAN finished in one page; COUNT too large for the test")
	}
	v := c.do("SCAN", c1)
	if string(v.Array[0].Str) != "0" || len(v.Array[1].Array) != 0 {
		t.Fatalf("evicted cursor: got cursor=%s page=%d, want clean termination",
			v.Array[0].Str, len(v.Array[1].Array))
	}
}

// TestPersistAcrossKeyers: the dump stores wire keys, so a restart with
// a different shard count recovers identically.
func TestPersistShardCountChange(t *testing.T) {
	dir := t.TempDir()
	cfgA := Config{Shards: 2, Persist: PersistConfig{Dir: dir, AOF: true, Fsync: persist.SyncAlways}}
	s, addr := startServer(t, cfgA)
	c := dial(t, addr)
	for i := 0; i < 64; i++ {
		c.mustSimple("OK", "SET", "key-"+strconv.Itoa(i), strconv.Itoa(i))
	}
	c.mustSimple("OK", "SAVE")
	c.mustSimple("OK", "SET", "tail", "write")

	cfgB := cfgA
	cfgB.Shards = 8
	_, addr2 := restart(t, s, cfgB)
	c2 := dial(t, addr2)
	c2.mustBulk("33", "GET", "key-33")
	c2.mustBulk("write", "GET", "tail")
	c2.mustInt(65, "DBSIZE")
}

// TestPersistDegradedRefusesMutations: after an AOF write error the
// server must refuse every mutating command with -MISCONF (never
// silently ack writes it can no longer make durable) while reads keep
// serving, and INFO must surface the failure.
func TestPersistDegradedRefusesMutations(t *testing.T) {
	dir := t.TempDir()
	s, addr := startServer(t, persistCfg(dir))
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "pre", "1")
	c.mustSimple("OK", "SET", "src", "v")

	s.pst.degradeAOF(fmt.Errorf("disk on fire"))

	c.mustErrContain("MISCONF", "SET", "post", "2")
	c.mustErrContain("MISCONF", "DEL", "pre")
	c.mustErrContain("MISCONF", "MSET", "a", "1", "b", "2")
	c.mustErrContain("MISCONF", "RENAME", "src", "dst")
	// Reads stay up, and no refused mutation leaked into the map.
	c.mustBulk("1", "GET", "pre")
	c.mustBulk("v", "GET", "src")
	c.mustNull("GET", "post")
	c.mustInt(2, "DBSIZE")

	info := c.do("INFO")
	if info.Kind != resp.TypeBulk || !strings.Contains(string(info.Str), "aof_last_write_status:disk on fire") {
		t.Fatalf("INFO does not surface the AOF failure:\n%s", info.Str)
	}
}

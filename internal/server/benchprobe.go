package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"testing"

	"nbtrie/internal/expiry"
	"nbtrie/internal/resp"
)

// In-process measurement of the server dispatch path, exported for
// cmd/nbtriebench's artifact: a TCP load generator can only see client
// codec allocations, while the numbers that decide the server's GC
// pressure — wire parse → dispatch → reply encode, per command — are
// hidden behind the socket. The probe runs that exact path (the same
// ReadCommandReuse + session.dispatch the connection loop uses) against
// an in-memory server with the replies discarded, so the counts are
// deterministic and benchcheck can gate them strictly.

// PathAllocs is the steady-state allocations per command on the server
// dispatch path. Get/Del/Exists/MGet run the full path, engine
// included (their engine ops are allocation-free; Del is measured on an
// absent key — a successful delete's node unlinking is engine work
// pinned by the library artifacts). Set is the full path including the
// engine's store (which allocates trie nodes); SetCodec subtracts an
// engine-only baseline, isolating the codec's contribution — the
// pinned "≤ 1": the value's single copy out of the arena.
type PathAllocs struct {
	Get      float64
	Set      float64
	SetCodec float64
	Del      float64
	Exists   float64
	MGet     float64
}

// loopReader replays the same request bytes forever, so a measurement
// loop never sees EOF or a growing input.
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// MeasureServerPathAllocs profiles the dispatch path with valueSize-byte
// SET payloads. dispatchMode is a Config.Dispatch value ("", "conn",
// "affine"); affine measurements include the route → shard worker →
// drain round trip per command.
func MeasureServerPathAllocs(dispatchMode string, valueSize int) (PathAllocs, error) {
	s, err := New(Config{Dispatch: dispatchMode})
	if err != nil {
		return PathAllocs{}, err
	}
	defer s.Close()
	w := resp.NewWriter(bufio.NewWriterSize(io.Discard, 32<<10))
	ss := newSession(s, w)

	val := bytes.Repeat([]byte{'x'}, valueSize)
	seed := func(key string) error {
		k, err := s.keyer.Encode([]byte(key))
		if err != nil {
			return err
		}
		s.db.Store(k, bytes.Clone(val))
		return nil
	}
	for _, key := range []string{"key:123", "aa", "ab"} {
		if err := seed(key); err != nil {
			return PathAllocs{}, err
		}
	}
	// Arm far-future TTLs on the MGET keys so the pins cover BOTH sides
	// of the lazy expiry check: GET/EXISTS/SET on key:123 take the
	// no-arming fast path (one index miss), MGET's aa/ab take the
	// arming-present path (index hit + clock comparison). Both must stay
	// allocation-free.
	for _, key := range []string{"aa", "ab"} {
		k, err := s.keyer.Encode([]byte(key))
		if err != nil {
			return PathAllocs{}, err
		}
		s.exp.Set(k, expiry.MaxDeadlineMS)
	}

	measure := func(wire []byte) float64 {
		rr := resp.NewRequestReader(bufio.NewReaderSize(&loopReader{data: wire}, 16<<10), s.cfg.Limits)
		// Warm the arena, span table, session scratch and (in affine
		// mode) the per-op worker scratch to steady state.
		for i := 0; i < 8; i++ {
			args, err := rr.ReadCommandReuse()
			if err != nil {
				panic(err)
			}
			ss.dispatch(args)
		}
		ss.drain()
		n := testing.AllocsPerRun(200, func() {
			args, err := rr.ReadCommandReuse()
			if err != nil {
				panic(err)
			}
			ss.dispatch(args)
			ss.drain()
		})
		return n
	}

	bulk := func(arg []byte) string {
		return fmt.Sprintf("$%d\r\n%s\r\n", len(arg), arg)
	}
	p := PathAllocs{
		Get:    measure([]byte("*2\r\n$3\r\nGET\r\n$7\r\nkey:123\r\n")),
		Exists: measure([]byte("*2\r\n$6\r\nEXISTS\r\n$7\r\nkey:123\r\n")),
		Del:    measure([]byte("*2\r\n$3\r\nDEL\r\n$2\r\nzz\r\n")),
		MGet:   measure([]byte("*4\r\n$4\r\nMGET\r\n$2\r\naa\r\n$2\r\nab\r\n$2\r\nzz\r\n")),
		Set:    measure([]byte("*3\r\n$3\r\nSET\r\n$7\r\nkey:123\r\n" + bulk(val))),
	}

	// Engine-only baseline for the same overwrite, to isolate the codec
	// half of SET. Measured on a key the loop above warmed.
	k, err := s.keyer.Encode([]byte("key:123"))
	if err != nil {
		return PathAllocs{}, err
	}
	engine := testing.AllocsPerRun(200, func() { s.db.Store(k, val) })
	p.SetCodec = p.Set - engine
	if p.SetCodec < 0 {
		p.SetCodec = 0
	}
	return p, nil
}

package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"nbtrie/internal/obs"
)

// cmdIndex enumerates every command the server dispatches, for dense
// per-command counter/histogram indexing. cmdOther absorbs unknown
// commands so even garbage traffic is visible in the metrics.
type cmdIndex int

const (
	cmdGet cmdIndex = iota
	cmdSet
	cmdDel
	cmdExists
	cmdMGet
	cmdMSet
	cmdPing
	cmdQuit
	cmdDBSize
	cmdScan
	cmdRename
	cmdRenameStrict
	cmdExpire
	cmdPExpire
	cmdExpireAt
	cmdPExpireAt
	cmdTTL
	cmdPTTL
	cmdPersist
	cmdSetEx
	cmdGetEx
	cmdSave
	cmdBGSave
	cmdLastSave
	cmdInfo
	cmdSlowlog
	cmdOther
	cmdCount
)

// cmdNames maps cmdIndex to the lowercase name used in metric labels and
// INFO commandstats lines (Redis renders cmdstat keys lowercase).
var cmdNames = [cmdCount]string{
	cmdGet: "get", cmdSet: "set", cmdDel: "del", cmdExists: "exists",
	cmdMGet: "mget", cmdMSet: "mset", cmdPing: "ping", cmdQuit: "quit",
	cmdDBSize: "dbsize", cmdScan: "scan", cmdRename: "rename",
	cmdRenameStrict: "renamestrict", cmdExpire: "expire",
	cmdPExpire: "pexpire", cmdExpireAt: "expireat",
	cmdPExpireAt: "pexpireat", cmdTTL: "ttl", cmdPTTL: "pttl",
	cmdPersist: "persist", cmdSetEx: "setex", cmdGetEx: "getex",
	cmdSave: "save", cmdBGSave: "bgsave", cmdLastSave: "lastsave",
	cmdInfo: "info", cmdSlowlog: "slowlog", cmdOther: "other",
}

// cmdIndexOf classifies an upcased command word. The []byte→string
// conversions in the switch are elided by the compiler (comparison
// only), so this is allocation-free — it sits on the per-command hot
// path in both dispatch modes.
func cmdIndexOf(cmd []byte) cmdIndex {
	switch string(cmd) {
	case "GET":
		return cmdGet
	case "SET":
		return cmdSet
	case "DEL":
		return cmdDel
	case "EXISTS":
		return cmdExists
	case "MGET":
		return cmdMGet
	case "MSET":
		return cmdMSet
	case "PING":
		return cmdPing
	case "QUIT":
		return cmdQuit
	case "DBSIZE":
		return cmdDBSize
	case "SCAN":
		return cmdScan
	case "RENAME":
		return cmdRename
	case "RENAMESTRICT":
		return cmdRenameStrict
	case "EXPIRE":
		return cmdExpire
	case "PEXPIRE":
		return cmdPExpire
	case "EXPIREAT":
		return cmdExpireAt
	case "PEXPIREAT":
		return cmdPExpireAt
	case "TTL":
		return cmdTTL
	case "PTTL":
		return cmdPTTL
	case "PERSIST":
		return cmdPersist
	case "SETEX":
		return cmdSetEx
	case "GETEX":
		return cmdGetEx
	case "SAVE":
		return cmdSave
	case "BGSAVE":
		return cmdBGSave
	case "LASTSAVE":
		return cmdLastSave
	case "INFO":
		return cmdInfo
	case "SLOWLOG":
		return cmdSlowlog
	}
	return cmdOther
}

// opCmdIndex maps affine op kinds to command indices, for recording
// routed ops at drain time.
var opCmdIndex = [...]cmdIndex{
	opGet: cmdGet, opSet: cmdSet, opDel: cmdDel, opExists: cmdExists,
}

// metrics is the server's always-on counter registry. Per-command call
// and error counters are striped by connection (obs.Striped) so a busy
// multi-core server's connections don't serialize on a shared cache
// line; latency histograms are one obs.Hist per command (each Record is
// two atomic adds). Every record path here is wait-free and zero-alloc —
// the same discipline as the engine counters — which is what lets the
// server keep its pinned 0-alloc GET/EXISTS/DEL/MGET paths with metrics
// permanently enabled.
type metrics struct {
	cmdCalls *obs.Striped       // [cmdCount] per-command dispatches
	cmdErrs  *obs.Striped       // [cmdCount] error replies per command
	latency  [cmdCount]obs.Hist // per-command latency, microseconds

	bytesIn  obs.Counter // socket reads (per fill, not per command)
	bytesOut obs.Counter // socket writes

	aofCommit obs.Hist // commitAOF duration, microseconds (batches with work)
	reapPass  obs.Hist // reaper pass duration, microseconds

	// connSeq hands each new session a stripe index.
	connSeq atomic.Uint32
}

func newMetrics() *metrics {
	return &metrics{
		cmdCalls: obs.NewStriped(int(cmdCount)),
		cmdErrs:  obs.NewStriped(int(cmdCount)),
	}
}

// record accounts one dispatched command: a call, its latency and any
// error replies it produced. Wait-free, zero-alloc.
func (m *metrics) record(stripe uint32, ci cmdIndex, d time.Duration, errs int64) {
	m.cmdCalls.Inc(stripe, int(ci))
	if errs > 0 {
		m.cmdErrs.Add(stripe, int(ci), errs)
	}
	m.latency[ci].Record(uint64(d.Microseconds()))
}

// WriteMetrics renders the full registry — server, command, expiry,
// persistence and engine families — in the Prometheus text exposition
// format. Counters scrape-side allocate freely; only the record paths
// are pinned.
func (s *Server) WriteMetrics(w io.Writer) {
	m := s.met
	var b strings.Builder
	b.Grow(16 << 10)

	fmt.Fprintf(&b, "# HELP nbtried_uptime_seconds Seconds since the server started.\n"+
		"# TYPE nbtried_uptime_seconds gauge\n"+
		"nbtried_uptime_seconds %d\n", int64(time.Since(s.start).Seconds()))
	fmt.Fprintf(&b, "# HELP nbtried_connected_clients Currently open client connections.\n"+
		"# TYPE nbtried_connected_clients gauge\n"+
		"nbtried_connected_clients %d\n", s.connectedClients())
	fmt.Fprintf(&b, "# HELP nbtried_connections_total Connections accepted since start.\n"+
		"# TYPE nbtried_connections_total counter\n"+
		"nbtried_connections_total %d\n", s.totalConns.Load())
	fmt.Fprintf(&b, "# HELP nbtried_net_input_bytes_total Bytes read from client sockets.\n"+
		"# TYPE nbtried_net_input_bytes_total counter\n"+
		"nbtried_net_input_bytes_total %d\n", m.bytesIn.Load())
	fmt.Fprintf(&b, "# HELP nbtried_net_output_bytes_total Bytes written to client sockets.\n"+
		"# TYPE nbtried_net_output_bytes_total counter\n"+
		"nbtried_net_output_bytes_total %d\n", m.bytesOut.Load())

	b.WriteString("# HELP nbtried_commands_total Commands dispatched, by command.\n" +
		"# TYPE nbtried_commands_total counter\n")
	for ci := cmdIndex(0); ci < cmdCount; ci++ {
		if n := m.cmdCalls.Load(int(ci)); n > 0 {
			fmt.Fprintf(&b, "nbtried_commands_total{cmd=%q} %d\n", cmdNames[ci], n)
		}
	}
	b.WriteString("# HELP nbtried_command_errors_total Error replies, by command.\n" +
		"# TYPE nbtried_command_errors_total counter\n")
	for ci := cmdIndex(0); ci < cmdCount; ci++ {
		if n := m.cmdErrs.Load(int(ci)); n > 0 {
			fmt.Fprintf(&b, "nbtried_command_errors_total{cmd=%q} %d\n", cmdNames[ci], n)
		}
	}

	b.WriteString("# HELP nbtried_command_latency_seconds Command latency, by command.\n" +
		"# TYPE nbtried_command_latency_seconds histogram\n")
	for ci := cmdIndex(0); ci < cmdCount; ci++ {
		snap := m.latency[ci].Snapshot()
		if snap.Count == 0 {
			continue
		}
		writeHistProm(&b, "nbtried_command_latency_seconds", fmt.Sprintf("cmd=%q", cmdNames[ci]), snap)
	}

	fmt.Fprintf(&b, "# HELP nbtried_keys Live keys in the map.\n"+
		"# TYPE nbtried_keys gauge\n"+
		"nbtried_keys %d\n", s.db.Len())
	expired, passes := s.exp.Stats()
	fmt.Fprintf(&b, "# HELP nbtried_keys_with_ttl Keys with an armed deadline.\n"+
		"# TYPE nbtried_keys_with_ttl gauge\n"+
		"nbtried_keys_with_ttl %d\n", s.exp.Len())
	fmt.Fprintf(&b, "# HELP nbtried_expired_keys_total Keys expired (lazy + reaper).\n"+
		"# TYPE nbtried_expired_keys_total counter\n"+
		"nbtried_expired_keys_total %d\n", expired)
	fmt.Fprintf(&b, "# HELP nbtried_reaper_passes_total Background reaper passes.\n"+
		"# TYPE nbtried_reaper_passes_total counter\n"+
		"nbtried_reaper_passes_total %d\n", passes)
	if snap := m.reapPass.Snapshot(); snap.Count > 0 {
		b.WriteString("# HELP nbtried_reaper_pass_duration_seconds Reaper pass duration.\n" +
			"# TYPE nbtried_reaper_pass_duration_seconds histogram\n")
		writeHistProm(&b, "nbtried_reaper_pass_duration_seconds", "", snap)
	}

	aofEnabled := 0
	if s.pst != nil && s.pst.aofOn {
		aofEnabled = 1
	}
	fmt.Fprintf(&b, "# HELP nbtried_aof_enabled Whether the append-only file is enabled.\n"+
		"# TYPE nbtried_aof_enabled gauge\n"+
		"nbtried_aof_enabled %d\n", aofEnabled)
	if snap := m.aofCommit.Snapshot(); snap.Count > 0 {
		b.WriteString("# HELP nbtried_aof_commit_duration_seconds AOF group-commit duration.\n" +
			"# TYPE nbtried_aof_commit_duration_seconds histogram\n")
		writeHistProm(&b, "nbtried_aof_commit_duration_seconds", "", snap)
	}

	es := s.db.EngineStats()
	b.WriteString("# HELP nbtried_engine_help_total help() executions (initiators + helpers).\n" +
		"# TYPE nbtried_engine_help_total counter\n")
	fmt.Fprintf(&b, "nbtried_engine_help_total %d\n", es.Help)
	b.WriteString("# HELP nbtried_engine_help_assists_total Operations that completed another operation's work.\n" +
		"# TYPE nbtried_engine_help_assists_total counter\n")
	fmt.Fprintf(&b, "nbtried_engine_help_assists_total %d\n", es.HelpAssists)
	b.WriteString("# HELP nbtried_engine_child_cas_failures_total Child CASes lost to a racing helper.\n" +
		"# TYPE nbtried_engine_child_cas_failures_total counter\n")
	fmt.Fprintf(&b, "nbtried_engine_child_cas_failures_total %d\n", es.ChildCASFailures)
	b.WriteString("# HELP nbtried_engine_flag_backtracks_total help() executions that failed flagging and unwound.\n" +
		"# TYPE nbtried_engine_flag_backtracks_total counter\n")
	fmt.Fprintf(&b, "nbtried_engine_flag_backtracks_total %d\n", es.FlagBacktracks)
	b.WriteString("# HELP nbtried_engine_op_retries_total Mutator retry-loop iterations past the first.\n" +
		"# TYPE nbtried_engine_op_retries_total counter\n")
	fmt.Fprintf(&b, "nbtried_engine_op_retries_total %d\n", es.OpRetries)
	b.WriteString("# HELP nbtried_engine_snapshot_renewals_total Stale-generation nodes renewed after a snapshot.\n" +
		"# TYPE nbtried_engine_snapshot_renewals_total counter\n")
	fmt.Fprintf(&b, "nbtried_engine_snapshot_renewals_total %d\n", es.SnapshotRenewals)
	if es.DepthSamples > 0 {
		depth := obs.HistSnapshot{Buckets: es.DepthBuckets, Count: es.DepthSamples, Sum: es.DepthSum}
		b.WriteString("# HELP nbtried_engine_depth Trie descent depth per mutation (levels, not seconds).\n" +
			"# TYPE nbtried_engine_depth histogram\n")
		writeHistRaw(&b, "nbtried_engine_depth", "", depth)
	}

	fmt.Fprintf(&b, "# HELP nbtried_slowlog_entries Entries currently in the slowlog ring.\n"+
		"# TYPE nbtried_slowlog_entries gauge\n"+
		"nbtried_slowlog_entries %d\n", s.slog.len())

	io.WriteString(w, b.String())
}

// promMaxBucket caps the exposed `le` boundaries: 2^40 µs ≈ 13 days of
// latency is beyond any real observation, and the +Inf bucket absorbs
// the tail, so higher boundaries only bloat the scrape.
const promMaxBucket = 40

// writeHistProm renders a microsecond log2 histogram as a Prometheus
// histogram in SECONDS: bucket b's exclusive upper bound 2^b µs becomes
// le="2^b / 1e6".
func writeHistProm(b *strings.Builder, name, label string, s obs.HistSnapshot) {
	lbl, plain := "", ""
	if label != "" {
		lbl = label + ","
		plain = "{" + label + "}"
	}
	var cum int64
	for i := 0; i < obs.NumBuckets && i <= promMaxBucket; i++ {
		cum += s.Buckets[i]
		if s.Buckets[i] == 0 && i > 0 {
			// Only emit boundaries that close out samples, plus le=1µs so
			// every series has a floor bucket. Prometheus tolerates sparse
			// le sets as long as they are cumulative.
			continue
		}
		le := float64(obs.BucketUpper(i)) / 1e6
		fmt.Fprintf(b, "%s_bucket{%sle=\"%g\"} %d\n", name, lbl, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, lbl, s.Count)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, plain, float64(s.Sum)/1e6)
	fmt.Fprintf(b, "%s_count%s %d\n", name, plain, s.Count)
}

// writeHistRaw renders a unitless log2 histogram (e.g. trie depth) with
// its native bucket bounds.
func writeHistRaw(b *strings.Builder, name, label string, s obs.HistSnapshot) {
	lbl, plain := "", ""
	if label != "" {
		lbl = label + ","
		plain = "{" + label + "}"
	}
	var cum int64
	for i := 0; i < obs.NumBuckets && i <= promMaxBucket; i++ {
		cum += s.Buckets[i]
		if s.Buckets[i] == 0 && i > 0 {
			continue
		}
		fmt.Fprintf(b, "%s_bucket{%sle=\"%d\"} %d\n", name, lbl, obs.BucketUpper(i), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, lbl, s.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, plain, s.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, plain, s.Count)
}

// MetricsHandler serves WriteMetrics over HTTP (the /metrics endpoint).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
}

// commandstatsText renders the INFO # Commandstats section body.
func (s *Server) commandstatsText(b *strings.Builder) {
	m := s.met
	for ci := cmdIndex(0); ci < cmdCount; ci++ {
		calls := m.cmdCalls.Load(int(ci))
		if calls == 0 {
			continue
		}
		snap := m.latency[ci].Snapshot()
		perCall := float64(0)
		if snap.Count > 0 {
			perCall = float64(snap.Sum) / float64(snap.Count)
		}
		fmt.Fprintf(b, "cmdstat_%s:calls=%d,usec=%d,usec_per_call=%.2f,errors=%d\r\n",
			cmdNames[ci], calls, snap.Sum, perCall, m.cmdErrs.Load(int(ci)))
	}
}

// latencystatsText renders the INFO # Latencystats section body.
func (s *Server) latencystatsText(b *strings.Builder) {
	m := s.met
	for ci := cmdIndex(0); ci < cmdCount; ci++ {
		snap := m.latency[ci].Snapshot()
		if snap.Count == 0 {
			continue
		}
		fmt.Fprintf(b, "latency_percentiles_usec_%s:p50=%d,p99=%d,p99.9=%d\r\n",
			cmdNames[ci], snap.Quantile(0.50), snap.Quantile(0.99), snap.Quantile(0.999))
	}
}

// engineText renders the INFO # Engine section body: the aggregate
// contention counters plus a per-shard help breakdown (shards with zero
// help traffic are omitted).
func (s *Server) engineText(b *strings.Builder) {
	es := s.db.EngineStats()
	fmt.Fprintf(b, "engine_help_total:%d\r\n", es.Help)
	fmt.Fprintf(b, "engine_help_assists_total:%d\r\n", es.HelpAssists)
	fmt.Fprintf(b, "engine_child_cas_failures_total:%d\r\n", es.ChildCASFailures)
	fmt.Fprintf(b, "engine_flag_backtracks_total:%d\r\n", es.FlagBacktracks)
	fmt.Fprintf(b, "engine_op_retries_total:%d\r\n", es.OpRetries)
	fmt.Fprintf(b, "engine_snapshot_renewals_total:%d\r\n", es.SnapshotRenewals)
	depth := obs.HistSnapshot{Buckets: es.DepthBuckets, Count: es.DepthSamples, Sum: es.DepthSum}
	fmt.Fprintf(b, "engine_depth_samples:%d\r\n", es.DepthSamples)
	fmt.Fprintf(b, "engine_depth_p50:%d\r\n", depth.Quantile(0.50))
	fmt.Fprintf(b, "engine_depth_p99:%d\r\n", depth.Quantile(0.99))
	type shardHelp struct {
		shard int
		help  int64
	}
	var hot []shardHelp
	for i := 0; i < s.db.Shards(); i++ {
		if ss := s.db.ShardEngineStats(i); ss.Help > 0 {
			hot = append(hot, shardHelp{i, ss.Help})
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].help > hot[j].help })
	for _, h := range hot {
		fmt.Fprintf(b, "engine_shard%d_help:%d\r\n", h.shard, h.help)
	}
}

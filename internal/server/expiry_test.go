package server

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nbtrie/internal/resp"
)

// fakeClock is the injectable millisecond clock the expiry tests drive
// by hand; it starts well away from zero so deadline arithmetic never
// brushes the clamp floor.
type fakeClock struct{ ms atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ms.Store(1_000_000)
	return c
}
func (c *fakeClock) now() int64       { return c.ms.Load() }
func (c *fakeClock) advance(ms int64) { c.ms.Add(ms) }
func (c *fakeClock) cfg(base Config) Config {
	base.Clock = c.now
	return base
}

func TestServerExpireTTLBasics(t *testing.T) {
	clk := newFakeClock()
	_, addr := startServer(t, clk.cfg(Config{}))
	c := dial(t, addr)

	c.mustSimple("OK", "SET", "k", "v")
	c.mustInt(-1, "TTL", "k") // exists, no deadline
	c.mustInt(-2, "TTL", "nope")
	c.mustInt(0, "EXPIRE", "nope", "100")

	c.mustInt(1, "EXPIRE", "k", "100")
	c.mustInt(100, "TTL", "k")
	c.mustInt(100_000, "PTTL", "k")

	clk.advance(500)
	c.mustInt(100, "TTL", "k") // 99.5s rounds to nearest: 100
	c.mustInt(99_500, "PTTL", "k")
	c.mustBulk("v", "GET", "k") // not yet due

	clk.advance(99_500) // exactly at the deadline: due
	c.mustNull("GET", "k")
	c.mustInt(0, "EXISTS", "k")
	c.mustInt(-2, "TTL", "k")
	c.mustInt(0, "DBSIZE") // the lazy purge removed the value, not just hid it
}

func TestServerExpireVariants(t *testing.T) {
	clk := newFakeClock()
	_, addr := startServer(t, clk.cfg(Config{}))
	c := dial(t, addr)

	c.mustSimple("OK", "MSET", "a", "1", "b", "2", "c", "3", "d", "4")
	c.mustInt(1, "PEXPIRE", "a", "1500")
	c.mustInt(2, "TTL", "a") // 1.5s rounds to nearest: 2
	now := clk.now()
	c.mustInt(1, "EXPIREAT", "b", itoa((now+30_000)/1000))
	c.mustInt(30, "TTL", "b")
	c.mustInt(1, "PEXPIREAT", "c", itoa(now+2000))
	c.mustInt(2000, "PTTL", "c")

	// Already-past deadline: the key is deleted immediately, reply :1.
	c.mustInt(1, "EXPIRE", "d", "-5")
	c.mustNull("GET", "d")
	c.mustInt(3, "DBSIZE")

	// Re-arming replaces the deadline outright (no min/max games).
	c.mustInt(1, "EXPIRE", "a", "500")
	c.mustInt(500_000, "PTTL", "a")

	// Bad argument: standard Redis error, nothing armed.
	c.mustErrContain("not an integer", "EXPIRE", "a", "soon")
	c.mustInt(500_000, "PTTL", "a")
	c.mustErrContain("wrong number of arguments", "EXPIRE", "a")
}

func TestServerSetexGetex(t *testing.T) {
	clk := newFakeClock()
	_, addr := startServer(t, clk.cfg(Config{}))
	c := dial(t, addr)

	c.mustSimple("OK", "SETEX", "s", "60", "cached")
	c.mustBulk("cached", "GET", "s")
	c.mustInt(60, "TTL", "s")
	c.mustErrContain("invalid expire time", "SETEX", "s", "0", "x")
	c.mustErrContain("invalid expire time", "SETEX", "s", "-3", "x")
	c.mustInt(60, "TTL", "s") // refused SETEX changed nothing

	// GETEX reads and re-arms in one command.
	c.mustBulk("cached", "GETEX", "s", "EX", "120")
	c.mustInt(120, "TTL", "s")
	c.mustBulk("cached", "GETEX", "s", "PX", "5000")
	c.mustInt(5000, "PTTL", "s")
	c.mustBulk("cached", "GETEX", "s", "PXAT", itoa(clk.now()+9000))
	c.mustInt(9000, "PTTL", "s")
	c.mustBulk("cached", "GETEX", "s") // bare GETEX: read, deadline untouched
	c.mustInt(9000, "PTTL", "s")
	c.mustBulk("cached", "GETEX", "s", "PERSIST")
	c.mustInt(-1, "TTL", "s")

	// GETEX with a past deadline deletes, like EXPIRE.
	c.mustBulk("cached", "GETEX", "s", "EXAT", "1")
	c.mustNull("GET", "s")

	c.mustNull("GETEX", "absent", "EX", "10")
	c.mustErrContain("syntax error", "GETEX", "s", "NEVER")
	c.mustErrContain("syntax error", "GETEX", "s", "WHENEVER", "10")
}

func TestServerPersistCommand(t *testing.T) {
	clk := newFakeClock()
	_, addr := startServer(t, clk.cfg(Config{}))
	c := dial(t, addr)

	c.mustSimple("OK", "SET", "k", "v")
	c.mustInt(0, "PERSIST", "k") // no deadline to drop
	c.mustInt(1, "EXPIRE", "k", "100")
	c.mustInt(1, "PERSIST", "k")
	c.mustInt(-1, "TTL", "k")
	c.mustInt(0, "PERSIST", "absent")

	// The dropped deadline really is gone: time passes, the key stays.
	clk.advance(500_000)
	c.mustBulk("v", "GET", "k")
}

func TestServerWriteCommandsClearTTL(t *testing.T) {
	clk := newFakeClock()
	_, addr := startServer(t, clk.cfg(Config{}))
	c := dial(t, addr)

	// Plain SET discards the old arming (Redis semantics).
	c.mustSimple("OK", "SETEX", "k", "10", "v1")
	c.mustSimple("OK", "SET", "k", "v2")
	c.mustInt(-1, "TTL", "k")
	clk.advance(60_000)
	c.mustBulk("v2", "GET", "k")

	// MSET too.
	c.mustInt(1, "EXPIRE", "k", "10")
	c.mustSimple("OK", "MSET", "k", "v3", "j", "x")
	c.mustInt(-1, "TTL", "k")

	// DEL drops the arming with the value: a later re-SET is clean.
	c.mustInt(1, "EXPIRE", "k", "10")
	c.mustInt(1, "DEL", "k")
	c.mustSimple("OK", "SET", "k", "v4")
	c.mustInt(-1, "TTL", "k")
	clk.advance(60_000)
	c.mustBulk("v4", "GET", "k")
}

func TestServerScanSkipsExpired(t *testing.T) {
	clk := newFakeClock()
	_, addr := startServer(t, clk.cfg(Config{Keyer: DecimalKeyer{KeyWidth: 16}}))
	c := dial(t, addr)

	c.mustSimple("OK", "MSET", "10", "a", "20", "b", "30", "c")
	c.mustInt(1, "EXPIRE", "20", "5")
	clk.advance(10_000)

	v := c.do("SCAN", "0", "COUNT", "100")
	if v.Kind != resp.TypeArray || len(v.Array) != 2 {
		t.Fatalf("SCAN reply shape: %s", v)
	}
	var got []string
	for _, k := range v.Array[1].Array {
		got = append(got, string(k.Str))
	}
	if len(got) != 2 || got[0] != "10" || got[1] != "30" {
		t.Fatalf("SCAN over a half-expired keyspace = %v, want [10 30]", got)
	}
}

func TestServerRenameMovesTTL(t *testing.T) {
	clk := newFakeClock()
	s, addr := startServer(t, clk.cfg(Config{Keyer: DecimalKeyer{KeyWidth: 16}, Shards: 8}))
	c := dial(t, addr)

	// Same-shard rename carries the deadline.
	c.mustSimple("OK", "SET", "100", "v")
	c.mustInt(1, "PEXPIRE", "100", "30000")
	clk.advance(10_000)
	c.mustSimple("OK", "RENAME", "100", "200")
	c.mustInt(20_000, "PTTL", "200")
	c.mustInt(-2, "TTL", "100")

	// Cross-shard two-phase move carries it too.
	if s.DB().SameShard(200, 8392) {
		t.Fatal("test premise broken: keys share a shard")
	}
	c.mustSimple("OK", "RENAME", "200", "8392")
	c.mustInt(20_000, "PTTL", "8392")
	c.mustInt(-2, "TTL", "200")

	// And the moved deadline still fires.
	clk.advance(20_000)
	c.mustNull("GET", "8392")

	// An expired source renames as absent.
	c.mustSimple("OK", "SET", "300", "w")
	c.mustInt(1, "PEXPIRE", "300", "50")
	clk.advance(51)
	c.mustErrContain("no such key", "RENAME", "300", "400")

	// An expired-but-unpurged destination must not block the rename: it
	// reads as absent everywhere else, so the move purges it and
	// proceeds instead of answering "destination key exists".
	c.mustSimple("OK", "MSET", "500", "live", "600", "dying")
	c.mustInt(1, "PEXPIRE", "600", "50")
	clk.advance(51)
	c.mustSimple("OK", "RENAME", "500", "600") // same shard
	c.mustBulk("live", "GET", "600")
	c.mustInt(-1, "TTL", "600") // the dead destination's arming is gone

	c.mustSimple("OK", "MSET", "700", "live2", "8500", "dying2")
	c.mustInt(1, "PEXPIRE", "8500", "50")
	clk.advance(51)
	if s.DB().SameShard(700, 8500) {
		t.Fatal("test premise broken: keys share a shard")
	}
	c.mustSimple("OK", "RENAME", "700", "8500") // cross-shard two-phase
	c.mustBulk("live2", "GET", "8500")
	c.mustInt(-1, "TTL", "8500")
}

// TestServerReaperPurges uses the real wall clock: short TTLs must
// vanish from DBSIZE (which takes no lazy-expiry path) without any
// client ever touching the keys again — that is the reaper working.
func TestServerReaperPurges(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)

	c.mustSimple("OK", "MSET", "a", "1", "b", "2", "keep", "3")
	c.mustInt(1, "PEXPIRE", "a", "30")
	c.mustInt(1, "PEXPIRE", "b", "60")

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := c.do("DBSIZE"); v.Kind == resp.TypeInt && v.Int == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reaper did not purge: DBSIZE = %s", c.do("DBSIZE"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.mustBulk("3", "GET", "keep")

	info := c.do("INFO")
	if !strings.Contains(string(info.Str), "expired_keys:2") {
		t.Fatalf("INFO lacks expired_keys:2:\n%s", info.Str)
	}
}

// TestServerReapNow drives the reaper synchronously against the fake
// clock: deadlines pass with no reads and no wall time, one forced pass
// purges exactly what is due.
func TestServerReapNow(t *testing.T) {
	clk := newFakeClock()
	s, addr := startServer(t, clk.cfg(Config{}))
	c := dial(t, addr)

	c.mustSimple("OK", "MSET", "a", "1", "b", "2", "c", "3")
	c.mustInt(1, "PEXPIRE", "a", "1000")
	c.mustInt(1, "PEXPIRE", "b", "2000")
	if n := s.ReapNow(); n != 0 {
		t.Fatalf("ReapNow before any deadline = %d", n)
	}
	clk.advance(1500)
	if n := s.ReapNow(); n != 1 {
		t.Fatalf("ReapNow past a's deadline = %d, want 1", n)
	}
	c.mustInt(2, "DBSIZE")
	clk.advance(1000)
	if n := s.ReapNow(); n != 1 {
		t.Fatalf("ReapNow past b's deadline = %d, want 1", n)
	}
	c.mustInt(1, "DBSIZE")
	c.mustBulk("3", "GET", "c")
}

func TestServerExpiryAffineMode(t *testing.T) {
	clk := newFakeClock()
	_, addr := startServer(t, clk.cfg(Config{Dispatch: "affine"}))
	c := dial(t, addr)

	// GET/EXISTS run on shard workers; EXPIRE/TTL run inline behind the
	// drain barrier. The lazy check must hold on both paths.
	c.mustSimple("OK", "SET", "k", "v")
	c.mustInt(1, "PEXPIRE", "k", "1000")
	c.mustBulk("v", "GET", "k")
	c.mustInt(1, "EXISTS", "k")
	clk.advance(1001)
	c.mustNull("GET", "k")
	c.mustInt(0, "EXISTS", "k")
	c.mustInt(0, "DBSIZE")

	// Routed SET clears a TTL (worker-side clearTTL).
	c.mustSimple("OK", "SET", "j", "v1")
	c.mustInt(1, "PEXPIRE", "j", "1000")
	c.mustSimple("OK", "SET", "j", "v2")
	c.mustInt(-1, "TTL", "j")
	clk.advance(5000)
	c.mustBulk("v2", "GET", "j")

	// Routed DEL drops the arming with the value.
	c.mustInt(1, "PEXPIRE", "j", "1000")
	c.mustInt(1, "DEL", "j")
	c.mustSimple("OK", "SET", "j", "v3")
	c.mustInt(-1, "TTL", "j")
}

func TestServerTTLSurvivesRestart(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	cfg := clk.cfg(persistCfg(dir))
	s, addr := startServer(t, cfg)
	c := dial(t, addr)

	// A rename whose destination had expired (and was lazily purged) at
	// serve time: replay re-arms the destination from its earlier
	// PEXPIREAT record, and the replayed RENAME must clear that stale
	// arming off the moved value — or the reaper's opening pass eats it
	// right after recovery.
	c.mustSimple("OK", "MSET", "mvsrc", "live", "mvdst", "dying")
	c.mustInt(1, "PEXPIRE", "mvdst", "50")
	clk.advance(51)
	c.mustSimple("OK", "RENAME", "mvsrc", "mvdst")
	c.mustInt(-1, "TTL", "mvdst")

	c.mustSimple("OK", "SET", "long", "v1")
	c.mustInt(1, "PEXPIRE", "long", "500000")
	c.mustSimple("OK", "SETEX", "short", "30", "v2") // 30s: dies during downtime
	c.mustSimple("OK", "SET", "keep2", "v3")
	c.mustSimple("OK", "SET", "drop", "v4")
	c.mustInt(1, "EXPIRE", "drop", "100")
	c.mustInt(1, "PERSIST", "drop")
	clk.advance(100_000)

	// AOF-only restart: deadlines come back from PEXPIREAT records, the
	// 30s key expired while "down", PERSIST replay keeps dropped alive.
	s2, addr2 := restart(t, s, cfg)
	c2 := dial(t, addr2)
	c2.mustBulk("v1", "GET", "long")
	c2.mustInt(400_000, "PTTL", "long")
	c2.mustNull("GET", "short")
	c2.mustInt(-1, "TTL", "keep2")
	c2.mustInt(-1, "TTL", "drop")
	c2.mustBulk("live", "GET", "mvdst") // survived the stale-arming replay
	c2.mustInt(-1, "TTL", "mvdst")
	c2.mustInt(0, "EXISTS", "mvsrc")
	clk.advance(200_000)
	c2.mustBulk("v4", "GET", "drop")

	// Dump restart: SAVE folds the AOF into a TTL-carrying base dump;
	// the deadline must survive the dump → recover round trip too.
	c2.mustSimple("OK", "SAVE")
	_, addr3 := restart(t, s2, cfg)
	c3 := dial(t, addr3)
	c3.mustInt(200_000, "PTTL", "long")
	c3.mustBulk("v1", "GET", "long")
	clk.advance(200_000)
	c3.mustNull("GET", "long")
	c3.mustBulk("v3", "GET", "keep2")
}

func TestServerInfoExpirySection(t *testing.T) {
	clk := newFakeClock()
	_, addr := startServer(t, clk.cfg(Config{}))
	c := dial(t, addr)

	c.mustSimple("OK", "MSET", "a", "1", "b", "2")
	c.mustInt(1, "EXPIRE", "a", "100")
	info := string(c.do("INFO").Str)
	for _, want := range []string{"# Expiry", "keys_with_ttl:1", "expired_keys:0", "reaper_passes:"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO lacks %q:\n%s", want, info)
		}
	}
	clk.advance(200_000)
	c.mustNull("GET", "a")
	info = string(c.do("INFO").Str)
	for _, want := range []string{"keys_with_ttl:0", "expired_keys:1"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO after expiry lacks %q:\n%s", want, info)
		}
	}
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

// FuzzTTLArgs throws arbitrary argument vectors at every TTL-touching
// command through the real dispatch path (parse → dispatch → reply
// encode, no socket). The properties: never panic, and always produce
// exactly one well-formed RESP reply per command.
func FuzzTTLArgs(f *testing.F) {
	f.Add(uint8(0), []byte("k\x00100"))
	f.Add(uint8(1), []byte("k\x00-9999999999999999999"))
	f.Add(uint8(7), []byte("k\x0060\x00value"))
	f.Add(uint8(8), []byte("k\x00EX\x0010"))
	f.Add(uint8(8), []byte("k\x00PERSIST"))
	f.Add(uint8(4), []byte("k"))
	f.Add(uint8(8), []byte("k\x00PXAT\x00notanumber"))

	cmds := []string{"EXPIRE", "PEXPIRE", "EXPIREAT", "PEXPIREAT", "TTL", "PTTL", "PERSIST", "SETEX", "GETEX", "RENAME"}

	s, err := New(Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })

	f.Fuzz(func(t *testing.T, sel uint8, raw []byte) {
		if len(raw) > 512 {
			return
		}
		cmd := cmds[int(sel)%len(cmds)]
		args := [][]byte{[]byte(cmd)}
		for _, part := range bytes.SplitN(raw, []byte{0}, 6) {
			args = append(args, part)
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		ss := newSession(s, resp.NewWriter(bw))
		ss.dispatch(args)
		if err := ss.w.Flush(); err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(bytes.NewReader(out.Bytes()))
		if _, err := resp.ReadReply(br, resp.Limits{}); err != nil {
			t.Fatalf("%s %q produced an unreadable reply %q: %v", cmd, raw, out.Bytes(), err)
		}
		if rest, _ := br.Peek(1); len(rest) != 0 {
			t.Fatalf("%s %q produced more than one reply: %q", cmd, raw, out.Bytes())
		}
	})
}

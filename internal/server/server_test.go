package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"nbtrie/internal/persist"
	"nbtrie/internal/resp"
)

// startServer spins a server on a random loopback port and returns a
// dialer; everything is torn down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close, want nil", err)
		}
	})
	return s, ln.Addr().String()
}

// testClient is a minimal synchronous RESP client over the shared codec.
type testClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
	w    *resp.Writer
}

func dial(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{
		t:    t,
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    resp.NewWriter(bufio.NewWriter(conn)),
	}
}

// do sends one command and reads one reply.
func (c *testClient) do(args ...string) resp.Value {
	c.t.Helper()
	c.w.WriteCommandString(args...)
	if err := c.w.Flush(); err != nil {
		c.t.Fatal(err)
	}
	v, err := resp.ReadReply(c.r, resp.Limits{})
	if err != nil {
		c.t.Fatalf("%v: %v", args, err)
	}
	return v
}

func (c *testClient) mustSimple(want string, args ...string) {
	c.t.Helper()
	if v := c.do(args...); v.Kind != resp.TypeSimple || string(v.Str) != want {
		c.t.Fatalf("%v = %s, want +%s", args, v, want)
	}
}

func (c *testClient) mustInt(want int64, args ...string) {
	c.t.Helper()
	if v := c.do(args...); v.Kind != resp.TypeInt || v.Int != want {
		c.t.Fatalf("%v = %s, want :%d", args, v, want)
	}
}

func (c *testClient) mustBulk(want string, args ...string) {
	c.t.Helper()
	if v := c.do(args...); v.Kind != resp.TypeBulk || string(v.Str) != want {
		c.t.Fatalf("%v = %s, want %q", args, v, want)
	}
}

func (c *testClient) mustNull(args ...string) {
	c.t.Helper()
	if v := c.do(args...); !v.IsNull() {
		c.t.Fatalf("%v = %s, want (nil)", args, v)
	}
}

func (c *testClient) mustErrContain(want string, args ...string) {
	c.t.Helper()
	v := c.do(args...)
	if v.Kind != resp.TypeError || !strings.Contains(string(v.Str), want) {
		c.t.Fatalf("%v = %s, want error containing %q", args, v, want)
	}
}

func TestServerBasics(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)

	c.mustSimple("PONG", "PING")
	c.mustBulk("hello", "PING", "hello")
	c.mustNull("GET", "nope")
	c.mustSimple("OK", "SET", "foo", "bar")
	c.mustBulk("bar", "GET", "foo")
	c.mustInt(1, "EXISTS", "foo")
	c.mustInt(2, "EXISTS", "foo", "foo", "nope")
	c.mustInt(1, "DBSIZE")
	c.mustSimple("OK", "SET", "foo", "rebound") // overwrite
	c.mustBulk("rebound", "GET", "foo")
	c.mustInt(1, "DBSIZE")
	c.mustInt(1, "DEL", "foo", "ghost")
	c.mustInt(0, "DBSIZE")
	c.mustNull("GET", "foo")

	// Case-insensitive commands.
	c.mustSimple("OK", "set", "k", "v")
	c.mustBulk("v", "gEt", "k")

	// MSET/MGET.
	c.mustSimple("OK", "MSET", "a", "1", "b", "2")
	v := c.do("MGET", "a", "nope", "b")
	if v.Kind != resp.TypeArray || len(v.Array) != 3 ||
		string(v.Array[0].Str) != "1" || !v.Array[1].IsNull() || string(v.Array[2].Str) != "2" {
		t.Fatalf("MGET = %s", v)
	}

	// Errors keep the connection alive.
	c.mustErrContain("unknown command", "FLUSHALL")
	c.mustErrContain("wrong number of arguments", "SET", "justkey")
	c.mustErrContain("9 bytes exceeds", "SET", "eightbyte", "v") // bytes keyer limit
	c.mustSimple("PONG", "PING")

	// INFO mentions the engine and the keyspace.
	info := c.do("INFO")
	if info.Kind != resp.TypeBulk || !strings.Contains(string(info.Str), "engine:nbtrie-sharded-patricia") {
		t.Fatalf("INFO = %s", info)
	}

	// QUIT answers then closes.
	c.mustSimple("OK", "QUIT")
	if _, err := resp.ReadReply(c.r, resp.Limits{}); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

// TestServerBinaryValues: values are raw bytes, CRLF and NUL included.
func TestServerBinaryValues(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	val := "a\r\nb\x00c"
	c.mustSimple("OK", "SET", "bin", val)
	c.mustBulk(val, "GET", "bin")
	c.mustSimple("OK", "SET", "empty", "")
	c.mustBulk("", "GET", "empty")
	c.mustInt(1, "EXISTS", "empty")
}

// TestServerPipelining writes a whole batch of commands before reading
// a single reply and then requires every reply, in request order.
func TestServerPipelining(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)

	const n = 200
	for i := 0; i < n; i++ {
		c.w.WriteCommandString("SET", fmt.Sprintf("k%03d", i%50), fmt.Sprintf("v%d", i))
		c.w.WriteCommandString("GET", fmt.Sprintf("k%03d", i%50))
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		set, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			t.Fatalf("reply %d: %v", 2*i, err)
		}
		if set.Kind != resp.TypeSimple || string(set.Str) != "OK" {
			t.Fatalf("pipelined SET %d = %s", i, set)
		}
		get, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			t.Fatalf("reply %d: %v", 2*i+1, err)
		}
		if want := fmt.Sprintf("v%d", i); get.Kind != resp.TypeBulk || string(get.Str) != want {
			t.Fatalf("pipelined GET %d = %s, want %q (in-order replies)", i, get, want)
		}
	}
}

// TestServerRename covers all four outcomes: atomic same-shard rename,
// missing source, existing destination, and the cross-shard refusal.
func TestServerRename(t *testing.T) {
	// Decimal keyer at width 16 with 8 shards: the top 3 bits route, so
	// keys 0..8191 share shard 0 and 8192 lands in shard 1 — the shard
	// boundary is exactly computable for the test.
	s, addr := startServer(t, Config{Keyer: DecimalKeyer{KeyWidth: 16}, Shards: 8})
	if s.DB().Shards() != 8 {
		t.Fatalf("shards = %d", s.DB().Shards())
	}
	c := dial(t, addr)

	c.mustSimple("OK", "SET", "100", "payload")
	c.mustSimple("OK", "RENAME", "100", "200") // same shard: atomic Replace
	c.mustNull("GET", "100")
	c.mustBulk("payload", "GET", "200")

	c.mustErrContain("no such key", "RENAME", "100", "300")

	c.mustSimple("OK", "SET", "300", "other")
	c.mustErrContain("destination key exists", "RENAME", "200", "300")
	c.mustBulk("payload", "GET", "200") // refused rename changed nothing
	c.mustBulk("other", "GET", "300")

	// Rename to self: Redis semantics, no Replace involved.
	c.mustSimple("OK", "RENAME", "200", "200")
	c.mustErrContain("no such key", "RENAME", "5555", "5555")
	c.mustErrContain("not a decimal", "RENAME", "ghost", "ghost")

	// Cross-shard: 200 is in shard 0, 8192+200 in shard 1. Strict mode
	// preserves the atomic-only contract and refuses; plain RENAME runs
	// the two-phase move (DESIGN.md §12) and succeeds.
	if s.DB().SameShard(200, 8392) {
		t.Fatal("test premise broken: keys share a shard")
	}
	c.mustErrContain("CROSSSHARD", "RENAMESTRICT", "200", "8392")
	c.mustBulk("payload", "GET", "200") // refusal was not a partial move
	c.mustNull("GET", "8392")

	c.mustSimple("OK", "RENAME", "200", "8392") // two-phase cross-shard move
	c.mustNull("GET", "200")
	c.mustBulk("payload", "GET", "8392")

	// RENAMESTRICT is the same command on same-shard pairs.
	c.mustSimple("OK", "SET", "400", "strictv")
	c.mustSimple("OK", "RENAMESTRICT", "400", "500")
	c.mustBulk("strictv", "GET", "500")
	c.mustErrContain("no such key", "RENAMESTRICT", "400", "600")

	// Cross-shard destination-exists: MoveKey refuses, nothing moved.
	c.mustErrContain("destination key exists", "RENAME", "300", "8392")
	c.mustBulk("other", "GET", "300")
	c.mustBulk("payload", "GET", "8392")
}

// TestServerScan walks a known key set page by page and requires every
// key exactly once, in order, with a terminating cursor.
func TestServerScan(t *testing.T) {
	_, addr := startServer(t, Config{Keyer: DecimalKeyer{KeyWidth: 20}})
	c := dial(t, addr)

	const n = 137
	want := make([]string, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%d", i*13)
		want = append(want, key)
		c.mustSimple("OK", "SET", key, "x")
	}
	c.mustInt(n, "DBSIZE")

	var got []string
	cursor := "0"
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("SCAN did not terminate")
		}
		v := c.do("SCAN", cursor, "COUNT", "10")
		if v.Kind != resp.TypeArray || len(v.Array) != 2 || v.Array[1].Kind != resp.TypeArray {
			t.Fatalf("SCAN reply shape: %s", v)
		}
		for _, k := range v.Array[1].Array {
			got = append(got, string(k.Str))
		}
		cursor = string(v.Array[0].Str)
		if cursor == "0" {
			break
		}
	}
	if len(got) != n {
		t.Fatalf("SCAN returned %d keys, want %d", len(got), n)
	}
	for i, k := range got {
		if k != want[i] {
			t.Fatalf("SCAN key %d = %q, want %q (numeric order)", i, k, want[i])
		}
	}

	// Default COUNT and option errors.
	if v := c.do("SCAN", "0"); v.Kind != resp.TypeArray || len(v.Array[1].Array) != 10 {
		t.Fatalf("default COUNT page = %s", v)
	}
	c.mustErrContain("invalid cursor", "SCAN", "abc")
	c.mustErrContain("COUNT", "SCAN", "0", "MATCH", "*")
	c.mustErrContain("COUNT must be", "SCAN", "0", "COUNT", "0")
}

// TestServerConcurrentClients hammers the server from many connections
// and checks the surviving keyspace against DBSIZE; together with -race
// this is the connection-level concurrency smoke.
func TestServerConcurrentClients(t *testing.T) {
	s, addr := startServer(t, Config{})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			wr := resp.NewWriter(bufio.NewWriter(conn))
			// Each worker owns its key and also fights over a shared one.
			mine := fmt.Sprintf("own%d", id)
			for i := 0; i < 300; i++ {
				wr.WriteCommandString("SET", mine, fmt.Sprintf("%d", i))
				wr.WriteCommandString("SET", "shared", fmt.Sprintf("w%d-%d", id, i))
				wr.WriteCommandString("GET", mine)
				wr.WriteCommandString("DEL", "victim")
				wr.WriteCommandString("SET", "victim", "v")
			}
			if err := wr.Flush(); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 300*5; i++ {
				if _, err := resp.ReadReply(r, resp.Limits{}); err != nil {
					t.Errorf("worker %d reply %d: %v", id, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// At quiescence: workers' own keys + shared + possibly victim.
	n := s.DB().Len()
	if n < workers+1 || n > workers+2 {
		t.Fatalf("DBSIZE = %d, want %d or %d", n, workers+1, workers+2)
	}
}

// TestServerProtocolErrorClosesConnection: framing errors (here: an
// inline command) are answered and then the connection dies.
func TestServerProtocolErrorClosesConnection(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET foo\r\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	v, err := resp.ReadReply(r, resp.Limits{})
	if err != nil || v.Kind != resp.TypeError || !strings.Contains(string(v.Str), "inline commands") {
		t.Fatalf("inline command reply = %s, %v", v, err)
	}
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("connection survived a protocol error")
	}
}

// TestServerOversizedBulkRejected: the configured bulk limit is
// enforced mid-parse and kills the connection.
func TestServerOversizedBulkRejected(t *testing.T) {
	_, addr := startServer(t, Config{Limits: resp.Limits{MaxBulkLen: 64}})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$100000\r\n")
	v, err := resp.ReadReply(bufio.NewReader(conn), resp.Limits{})
	if err != nil || v.Kind != resp.TypeError || !strings.Contains(string(v.Str), "exceeds limit") {
		t.Fatalf("oversized bulk reply = %s, %v", v, err)
	}
}

// TestServerGracefulClose: Close unblocks Serve, drops live
// connections and leaves the server reusable for inspection.
func TestServerGracefulClose(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()

	c := dial(t, ln.Addr().String())
	c.mustSimple("OK", "SET", "k", "v")

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve after Close: %v", err)
	}
	// The live connection was torn down.
	if _, err := resp.ReadReply(c.r, resp.Limits{}); err == nil {
		t.Fatal("connection survived Close")
	}
	// Data outlives the listener (the map belongs to the Server).
	if v, ok := s.DB().Load(mustEncode(t, BytesKeyer{}, "k")); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatal("stored value lost across Close")
	}
	// Double Close is fine; Serve after Close refuses.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ln2, _ := net.Listen("tcp", "127.0.0.1:0")
	if err := s.Serve(ln2); err == nil {
		t.Fatal("Serve on a closed server must refuse")
	}
}

func mustEncode(t *testing.T, k Keyer, key string) uint64 {
	t.Helper()
	v, err := k.Encode([]byte(key))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// Regression tests for the review findings: hostile SCAN counts, raw
// bytes in error replies, and half-applied multi-key batches.

// TestServerScanHostileCount: a client-supplied COUNT must be clamped
// to the resolved array limit before it sizes any allocation — the
// daemon survives and answers within limits.
func TestServerScanHostileCount(t *testing.T) {
	_, addr := startServer(t, Config{Keyer: DecimalKeyer{KeyWidth: 20}})
	c := dial(t, addr)
	for i := 0; i < 2000; i++ {
		c.w.WriteCommandString("SET", fmt.Sprintf("%d", i), "x")
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := resp.ReadReply(c.r, resp.Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, count := range []string{"4611686018427387904", "999999999", "2000"} {
		v := c.do("SCAN", "0", "COUNT", count)
		if v.Kind != resp.TypeArray || len(v.Array) != 2 {
			t.Fatalf("SCAN COUNT %s reply shape: %s", count, v)
		}
		if got := len(v.Array[1].Array); got > resp.DefaultLimits.MaxArrayLen {
			t.Fatalf("SCAN COUNT %s returned %d keys, beyond the array limit", count, got)
		}
	}
	c.mustSimple("PONG", "PING") // server alive, stream in sync
}

// TestServerErrorRepliesAreCRLFSafe: raw client bytes echoed into an
// error reply must not be able to split the RESP stream.
func TestServerErrorRepliesAreCRLFSafe(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	// Command name and SCAN option carrying CRLF and a fake reply.
	evil := "x\r\n:999\r\n+OK"
	c.w.WriteCommand([]byte(evil))
	c.w.WriteCommandString("PING")
	c.w.WriteCommandString("SCAN", "0", evil, "5")
	c.w.WriteCommandString("PING")
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []byte{resp.TypeError, resp.TypeSimple, resp.TypeError, resp.TypeSimple} {
		v, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			t.Fatalf("reply %d: %v (stream desynchronized)", i, err)
		}
		if v.Kind != want {
			t.Fatalf("reply %d = %s, want kind %q", i, v, want)
		}
	}
}

// TestServerMultiKeyBatchesValidateFirst: an invalid key anywhere in a
// DEL/EXISTS/MGET/MSET batch fails the whole command before any effect.
func TestServerMultiKeyBatchesValidateFirst(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "aa", "1")
	c.mustSimple("OK", "SET", "ab", "2")

	longKey := "12345678" // 8 bytes: rejected by the bytes keyer
	c.mustErrContain("8 bytes exceeds", "DEL", "aa", longKey, "ab")
	c.mustInt(2, "EXISTS", "aa", "ab") // nothing was deleted
	c.mustErrContain("8 bytes exceeds", "EXISTS", "aa", longKey)
	c.mustErrContain("8 bytes exceeds", "MGET", "aa", longKey)
	c.mustErrContain("8 bytes exceeds", "MSET", "ac", "3", longKey, "4")
	c.mustInt(0, "EXISTS", "ac") // MSET applied nothing
	c.mustSimple("PONG", "PING")
}

// TestServerFlushesBeforeBlockingOnPartialCommand: a complete command
// followed by a *partial* next command in the same send must still get
// its reply — the flush has to happen when the parser blocks on the
// socket, not only when the read buffer is empty.
func TestServerFlushesBeforeBlockingOnPartialCommand(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One whole PING plus the opening bytes of a second command.
	if _, err := conn.Write([]byte("*1\r\n$4\r\nPING\r\n*1\r\n$4\r\nPI")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	v, err := resp.ReadReply(r, resp.Limits{})
	if err != nil {
		t.Fatalf("PONG withheld while the next command is partial: %v", err)
	}
	if v.Kind != resp.TypeSimple || string(v.Str) != "PONG" {
		t.Fatalf("reply = %s, want +PONG", v)
	}
	// Completing the second command still works on the same stream.
	if _, err := conn.Write([]byte("NG\r\n")); err != nil {
		t.Fatal(err)
	}
	if v, err = resp.ReadReply(r, resp.Limits{}); err != nil || string(v.Str) != "PONG" {
		t.Fatalf("second reply = %s, %v", v, err)
	}
}

// TestServerAffineBasics: the full command surface behaves identically
// under -dispatch=affine — routed single-key commands, inline
// multi-key/admin commands, errors, and case-insensitivity.
func TestServerAffineBasics(t *testing.T) {
	_, addr := startServer(t, Config{Dispatch: "affine"})
	c := dial(t, addr)

	c.mustSimple("PONG", "PING")
	c.mustNull("GET", "nope")
	c.mustSimple("OK", "SET", "foo", "bar")
	c.mustBulk("bar", "GET", "foo")
	c.mustInt(1, "EXISTS", "foo")
	c.mustInt(1, "DEL", "foo")
	c.mustInt(0, "DEL", "foo")
	c.mustNull("GET", "foo")
	c.mustSimple("OK", "set", "k", "v") // lowercase routes too
	c.mustBulk("v", "gEt", "k")
	c.mustSimple("OK", "MSET", "a", "1", "b", "2")
	v := c.do("MGET", "a", "k", "nope")
	if v.Kind != resp.TypeArray || len(v.Array) != 3 ||
		string(v.Array[0].Str) != "1" || string(v.Array[1].Str) != "v" || !v.Array[2].IsNull() {
		t.Fatalf("MGET = %s", v)
	}
	c.mustErrContain("unknown command", "FLUSHALL")
	c.mustErrContain("9 bytes exceeds", "SET", "eightbyte", "v")
	info := c.do("INFO")
	if info.Kind != resp.TypeBulk || !strings.Contains(string(info.Str), "dispatch:affine") {
		t.Fatalf("INFO must report affine dispatch: %s", info)
	}
	c.mustSimple("OK", "QUIT")
}

// TestServerAffinePipelinedOrdering: a deep pipelined burst mixing
// routed commands (different shards, same keys repeatedly) with inline
// barrier commands must come back strictly in request order — the
// reassembly protocol's core promise.
func TestServerAffinePipelinedOrdering(t *testing.T) {
	s, addr := startServer(t, Config{Dispatch: "affine", Shards: 8})
	if s.DB().Shards() != 8 {
		t.Fatalf("shards = %d", s.DB().Shards())
	}
	c := dial(t, addr)

	const rounds = 300 // several affineBurstMax rings' worth
	for i := 0; i < rounds; i++ {
		key := fmt.Sprintf("k%d", i%17)
		c.w.WriteCommandString("SET", key, fmt.Sprintf("v%d", i))
		c.w.WriteCommandString("GET", key)
		if i%50 == 49 {
			// Inline command mid-burst: forces a drain barrier and must
			// slot into the reply stream exactly here.
			c.w.WriteCommandString("DBSIZE")
		}
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		set, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			t.Fatalf("SET reply %d: %v", i, err)
		}
		if set.Kind != resp.TypeSimple || string(set.Str) != "OK" {
			t.Fatalf("SET %d = %s", i, set)
		}
		get, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			t.Fatalf("GET reply %d: %v", i, err)
		}
		// Same-key FIFO through one shard ring: the GET pipelined right
		// after its SET must observe exactly that SET's value.
		if want := fmt.Sprintf("v%d", i); get.Kind != resp.TypeBulk || string(get.Str) != want {
			t.Fatalf("GET %d = %s, want %q (per-key order broken)", i, get, want)
		}
		if i%50 == 49 {
			size, err := resp.ReadReply(c.r, resp.Limits{})
			if err != nil || size.Kind != resp.TypeInt {
				t.Fatalf("DBSIZE reply %d: %s, %v", i, size, err)
			}
		}
	}
}

// TestServerAffineConcurrentClients: many routers fanning into the same
// shard workers, with -race watching the op hand-off protocol.
func TestServerAffineConcurrentClients(t *testing.T) {
	s, addr := startServer(t, Config{Dispatch: "affine"})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			wr := resp.NewWriter(bufio.NewWriter(conn))
			mine := fmt.Sprintf("own%d", id)
			for i := 0; i < 300; i++ {
				wr.WriteCommandString("SET", mine, fmt.Sprintf("%d", i))
				wr.WriteCommandString("SET", "shared", fmt.Sprintf("w%d-%d", id, i))
				wr.WriteCommandString("GET", mine)
				wr.WriteCommandString("DEL", "victim")
				wr.WriteCommandString("SET", "victim", "v")
			}
			if err := wr.Flush(); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 300*5; i++ {
				v, err := resp.ReadReply(r, resp.Limits{})
				if err != nil {
					t.Errorf("worker %d reply %d: %v", id, i, err)
					return
				}
				if i%5 == 2 { // the GET of the worker's own key
					if want := fmt.Sprintf("%d", i/5); string(v.Str) != want {
						t.Errorf("worker %d own-key GET = %s, want %q", id, v, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	n := s.DB().Len()
	if n < workers+1 || n > workers+2 {
		t.Fatalf("DBSIZE = %d, want %d or %d", n, workers+1, workers+2)
	}
}

// TestServerHugeReplyCommitsBeforeImplicitFlush: a single reply larger
// than the 16KB write buffer forces bufio to write through to the
// socket mid-dispatch — the implicit-flush path that must ALSO run the
// AOF commit before any reply byte escapes. With appendfsync=always,
// pipelining SETs before and after a >buffer MGET and getting every
// reply back intact proves the oversized reply neither desynchronized
// the stream nor slipped acknowledgements past the commit hook.
func TestServerHugeReplyCommitsBeforeImplicitFlush(t *testing.T) {
	dir := t.TempDir()
	_, addr := startServer(t, Config{
		Persist: PersistConfig{Dir: dir, AOF: true, Fsync: persist.SyncAlways},
	})
	c := dial(t, addr)

	// Eight 5KB values: the MGET reply (~40KB) overflows the 16KB write
	// buffer at least twice while the batch's SET records are pending.
	big := strings.Repeat("x", 5<<10)
	keys := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	for _, k := range keys {
		c.mustSimple("OK", "SET", k, big)
	}

	c.w.WriteCommandString("SET", "pre", "before-huge")
	c.w.WriteCommandString(append([]string{"MGET"}, keys...)...)
	c.w.WriteCommandString("SET", "post", "after-huge")
	c.w.WriteCommandString("GET", "post")
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := resp.ReadReply(c.r, resp.Limits{}); err != nil || string(v.Str) != "OK" {
		t.Fatalf("pre-huge SET = %s, %v", v, err)
	}
	v, err := resp.ReadReply(c.r, resp.Limits{})
	if err != nil || v.Kind != resp.TypeArray || len(v.Array) != len(keys) {
		t.Fatalf("huge MGET = %s, %v", v, err)
	}
	for i, e := range v.Array {
		if string(e.Str) != big {
			t.Fatalf("MGET element %d corrupted (len %d)", i, len(e.Str))
		}
	}
	if v, err := resp.ReadReply(c.r, resp.Limits{}); err != nil || string(v.Str) != "OK" {
		t.Fatalf("post-huge SET = %s, %v", v, err)
	}
	if v, err := resp.ReadReply(c.r, resp.Limits{}); err != nil || string(v.Str) != "after-huge" {
		t.Fatalf("post-huge GET = %s, %v", v, err)
	}
}

// TestServerMidBurstThresholdFlush: a long pipelined burst whose
// accumulated replies pass the flush threshold must stream out in
// chunks — the client sees early replies while the server is still
// consuming the burst's tail (regression test for the unbounded
// reply-buffer growth fix).
func TestServerMidBurstThresholdFlush(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	val := strings.Repeat("y", 1<<10)
	c.mustSimple("OK", "SET", "t", val)

	// 64 GETs of a 1KB value ≈ 64KB of replies against a 12KB threshold
	// and a 16KB buffer: replies MUST arrive without the client sending
	// anything further (no deadlock, no unbounded buffering).
	const n = 64
	for i := 0; i < n; i++ {
		c.w.WriteCommandString("GET", "t")
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := resp.ReadReply(c.r, resp.Limits{})
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if string(v.Str) != val {
			t.Fatalf("reply %d corrupted", i)
		}
	}
}

// TestServerSpan pins the -span plumbing: a Config.Span of 4 builds the
// k-ary sharded map, INFO reports it, and the command surface (SET/GET/
// DEL/RENAME/SCAN) is unchanged on the wider nodes. Span 0 defaults to
// 1 and out-of-range spans refuse to construct.
func TestServerSpan(t *testing.T) {
	if _, err := New(Config{Span: 7}); err == nil {
		t.Fatal("span 7 must be rejected")
	}
	s, addr := startServer(t, Config{Keyer: DecimalKeyer{KeyWidth: 16}, Shards: 8, Span: 4})
	c := dial(t, addr)

	info := c.do("INFO")
	if info.Kind != resp.TypeBulk || !strings.Contains(string(info.Str), "trie_span_bits:4") {
		t.Fatalf("INFO must report the trie span: %s", info)
	}
	c.mustSimple("OK", "SET", "100", "payload")
	c.mustBulk("payload", "GET", "100")
	c.mustSimple("OK", "RENAME", "100", "200")
	c.mustNull("GET", "100")
	c.mustBulk("payload", "GET", "200")
	c.mustInt(1, "DEL", "200")
	c.mustNull("GET", "200")

	// The default span reports as 1.
	s2, addr2 := startServer(t, Config{Keyer: DecimalKeyer{KeyWidth: 16}})
	defer s2.Close()
	c2 := dial(t, addr2)
	info2 := c2.do("INFO")
	if !strings.Contains(string(info2.Str), "trie_span_bits:1") {
		t.Fatalf("default span must report 1: %s", info2)
	}
	_ = s
}

package server

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"nbtrie/internal/resp"
)

// metricsText renders the Prometheus exposition for assertions.
func metricsText(t *testing.T, s *Server) string {
	t.Helper()
	var b strings.Builder
	s.WriteMetrics(&b)
	return b.String()
}

// metricValue extracts the value of a single-sample family (exact line
// prefix match, e.g. `nbtried_keys ` or `nbtried_commands_total{cmd="get"} `).
func metricValue(t *testing.T, text, prefix string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			var v int64
			if _, err := fmt.Sscanf(rest, "%d", &v); err != nil {
				t.Fatalf("metric %s: bad value %q", prefix, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", prefix)
	return 0
}

func TestMetricsFamiliesAndCounts(t *testing.T) {
	for _, mode := range []string{"conn", "affine"} {
		t.Run(mode, func(t *testing.T) {
			s, addr := startServer(t, Config{Dispatch: mode})

			// Idle: the engine's contention counters must read zero before
			// any command touches the trie.
			idle := metricsText(t, s)
			for _, m := range []string{
				"nbtried_engine_help_total",
				"nbtried_engine_help_assists_total",
				"nbtried_engine_child_cas_failures_total",
				"nbtried_engine_flag_backtracks_total",
				"nbtried_engine_op_retries_total",
				"nbtried_engine_snapshot_renewals_total",
			} {
				if v := metricValue(t, idle, m); v != 0 {
					t.Errorf("idle server: %s = %d, want 0", m, v)
				}
			}

			c := dial(t, addr)
			c.mustSimple("OK", "SET", "a", "1")
			c.mustBulk("1", "GET", "a")
			c.mustNull("GET", "missing")
			c.mustInt(1, "DEL", "a")
			c.mustErrContain("wrong number of arguments", "GET")

			text := metricsText(t, s)
			// Exact per-command counts: the error-arity GET still counts as
			// a GET call and as one GET error.
			if v := metricValue(t, text, `nbtried_commands_total{cmd="get"}`); v != 3 {
				t.Errorf(`commands_total{cmd="get"} = %d, want 3`, v)
			}
			if v := metricValue(t, text, `nbtried_commands_total{cmd="set"}`); v != 1 {
				t.Errorf(`commands_total{cmd="set"} = %d, want 1`, v)
			}
			if v := metricValue(t, text, `nbtried_command_errors_total{cmd="get"}`); v != 1 {
				t.Errorf(`command_errors_total{cmd="get"} = %d, want 1`, v)
			}
			if v := metricValue(t, text, "nbtried_engine_help_total"); v == 0 {
				t.Error("engine_help_total still zero after a SET")
			}
			if v := metricValue(t, text, "nbtried_connections_total"); v != 1 {
				t.Errorf("connections_total = %d, want 1", v)
			}
			for _, m := range []string{
				"nbtried_net_input_bytes_total",
				"nbtried_net_output_bytes_total",
				`nbtried_command_latency_seconds_count{cmd="set"}`,
			} {
				if v := metricValue(t, text, m); v <= 0 {
					t.Errorf("%s = %d, want > 0", m, v)
				}
			}
			// Histogram well-formedness: a +Inf bucket per emitted family.
			if !strings.Contains(text, `nbtried_command_latency_seconds_bucket{cmd="set",le="+Inf"}`) {
				t.Error("command latency histogram missing +Inf bucket for set")
			}
			if !strings.Contains(text, "nbtried_engine_depth_bucket{") {
				t.Error("engine depth histogram missing after mutations")
			}
		})
	}
}

func TestMetricsHandlerHTTP(t *testing.T) {
	s, addr := startServer(t, Config{})
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "k", "v")

	rr := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d, want 200", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if !strings.Contains(rr.Body.String(), `nbtried_commands_total{cmd="set"} 1`) {
		t.Error("handler body missing the SET count")
	}
}

// TestMetricsEngineContention drives concurrent same-key writers through
// the server and checks the contention counters move. On a single-CPU
// run the CAS windows are only interleaved by preemption, so the strict
// nonzero assertion applies only when real parallelism is available (the
// deterministic helper-counted test lives in internal/engine).
func TestMetricsEngineContention(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := dial(t, addr)
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", i%16)
				if g%2 == 0 {
					c.mustSimple("OK", "SET", k, "v")
				} else {
					c.do("DEL", k)
				}
			}
		}(g)
	}
	wg.Wait()
	text := metricsText(t, s)
	help := metricValue(t, text, "nbtried_engine_help_total")
	if help == 0 {
		t.Fatal("engine_help_total zero after 16k mutations")
	}
	contended := metricValue(t, text, "nbtried_engine_child_cas_failures_total") +
		metricValue(t, text, "nbtried_engine_op_retries_total") +
		metricValue(t, text, "nbtried_engine_help_assists_total") +
		metricValue(t, text, "nbtried_engine_flag_backtracks_total")
	t.Logf("help=%d contended=%d (GOMAXPROCS=%d)", help, contended, runtime.GOMAXPROCS(0))
	if contended == 0 && runtime.GOMAXPROCS(0) > 1 {
		t.Error("no contention counter moved despite parallel same-key writers")
	}
}

func TestSlowlogCommands(t *testing.T) {
	for _, mode := range []string{"conn", "affine"} {
		t.Run(mode, func(t *testing.T) {
			_, addr := startServer(t, Config{
				Dispatch:            mode,
				SlowlogSlowerThanUS: SlowlogAll,
				SlowlogMaxLen:       4,
			})
			c := dial(t, addr)
			c.mustSimple("OK", "SET", "a", "1")
			c.mustBulk("1", "GET", "a")

			v := c.do("SLOWLOG", "GET")
			if v.Kind != resp.TypeArray || len(v.Array) < 2 {
				t.Fatalf("SLOWLOG GET = %s, want >=2 entries", v)
			}
			// Newest first: entry 0 is the GET, entry 1 the SET. Each entry
			// is [id, unix-ts, duration-us, args...].
			e := v.Array[0]
			if e.Kind != resp.TypeArray || len(e.Array) != 4 {
				t.Fatalf("entry = %s, want 4 fields", e)
			}
			if e.Array[0].Kind != resp.TypeInt || e.Array[2].Kind != resp.TypeInt {
				t.Fatalf("entry ids/durations not integers: %s", e)
			}
			args := e.Array[3]
			if args.Kind != resp.TypeArray || len(args.Array) != 2 ||
				!strings.EqualFold(string(args.Array[0].Str), "GET") {
				t.Fatalf("newest entry args = %s, want [GET a]", args)
			}

			// LEN is capped at SlowlogMaxLen; the ring keeps the newest.
			for i := 0; i < 10; i++ {
				c.mustSimple("OK", "SET", fmt.Sprintf("k%d", i), "v")
			}
			lv := c.do("SLOWLOG", "LEN")
			if lv.Kind != resp.TypeInt || lv.Int != 4 {
				t.Fatalf("SLOWLOG LEN = %s, want 4", lv)
			}

			// GET n limits, GET -1 returns all.
			if got := c.do("SLOWLOG", "GET", "2"); len(got.Array) != 2 {
				t.Fatalf("SLOWLOG GET 2 returned %d entries", len(got.Array))
			}
			if got := c.do("SLOWLOG", "GET", "-1"); len(got.Array) != 4 {
				t.Fatalf("SLOWLOG GET -1 returned %d entries, want 4", len(got.Array))
			}

			// With SlowlogAll the RESET itself is logged after it empties
			// the ring (Redis does the same with slowlog-log-slower-than 0).
			c.mustSimple("OK", "SLOWLOG", "RESET")
			c.mustInt(1, "SLOWLOG", "LEN")
			c.mustErrContain("unknown SLOWLOG subcommand", "SLOWLOG", "HELP")
			c.mustErrContain("count should be >= -1", "SLOWLOG", "GET", "-5")
		})
	}
}

func TestSlowlogTruncation(t *testing.T) {
	_, addr := startServer(t, Config{SlowlogSlowerThanUS: SlowlogAll})
	c := dial(t, addr)
	// 40 arguments (MSET k v ×...): the entry keeps 31 + a marker.
	args := []string{"MSET"}
	for i := 0; i < 20; i++ {
		args = append(args, fmt.Sprintf("k%d", i), strings.Repeat("x", 200))
	}
	c.mustSimple("OK", args...)
	v := c.do("SLOWLOG", "GET", "1")
	entry := v.Array[0].Array[3]
	if len(entry.Array) != slowlogMaxArgs {
		t.Fatalf("logged %d args, want %d (31 + marker)", len(entry.Array), slowlogMaxArgs)
	}
	last := string(entry.Array[slowlogMaxArgs-1].Str)
	if !strings.Contains(last, "more arguments)") {
		t.Errorf("last arg = %q, want truncation marker", last)
	}
	// The 200-byte values are cut to 128 + a byte marker.
	val := string(entry.Array[2].Str)
	if !strings.HasPrefix(val, strings.Repeat("x", slowlogMaxArgLen)) || !strings.Contains(val, "(72 more bytes)") {
		t.Errorf("value arg = %q, want 128 x's + (72 more bytes) marker", val)
	}
}

func TestSlowlogDisabled(t *testing.T) {
	_, addr := startServer(t, Config{SlowlogSlowerThanUS: SlowlogOff})
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "a", "1")
	c.mustInt(0, "SLOWLOG", "LEN")
}

func TestInfoSectionFiltering(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	c.mustSimple("OK", "SET", "a", "1")
	c.mustBulk("1", "GET", "a")

	full := c.do("INFO")
	if full.Kind != resp.TypeBulk {
		t.Fatalf("INFO = %s, want bulk", full)
	}
	for _, h := range []string{
		"# Server", "# Clients", "# Stats", "# Commandstats",
		"# Latencystats", "# Expiry", "# Persistence", "# Engine", "# Keyspace",
	} {
		if !strings.Contains(string(full.Str), h+"\r\n") {
			t.Errorf("INFO missing section header %q", h)
		}
	}

	// One section: exactly that header, no others.
	one := c.do("INFO", "persistence")
	if one.Kind != resp.TypeBulk {
		t.Fatalf("INFO persistence = %s, want bulk", one)
	}
	body := string(one.Str)
	if !strings.HasPrefix(body, "# Persistence\r\n") {
		t.Fatalf("INFO persistence = %q, want only the Persistence section", body)
	}
	if strings.Count(body, "# ") != 1 {
		t.Errorf("INFO persistence contains extra sections: %q", body)
	}

	// Case-insensitive, Redis-style.
	if u := c.do("INFO", "KEYSPACE"); !strings.HasPrefix(string(u.Str), "# Keyspace\r\n") {
		t.Errorf("INFO KEYSPACE = %q, want the Keyspace section", u.Str)
	}

	// Unknown section: empty bulk, not an error.
	unknown := c.do("INFO", "nosuchsection")
	if unknown.Kind != resp.TypeBulk || len(unknown.Str) != 0 {
		t.Fatalf("INFO nosuchsection = %s, want empty bulk", unknown)
	}

	// "all"/"default"/"everything" behave like no argument.
	for _, sel := range []string{"all", "default", "everything"} {
		v := c.do("INFO", sel)
		if !strings.Contains(string(v.Str), "# Keyspace\r\n") || !strings.Contains(string(v.Str), "# Server\r\n") {
			t.Errorf("INFO %s missing sections", sel)
		}
	}

	c.mustErrContain("wrong number of arguments", "INFO", "a", "b")

	// Commandstats reflects the commands this test ran.
	cs := c.do("INFO", "commandstats")
	if !strings.Contains(string(cs.Str), "cmdstat_set:calls=1,") {
		t.Errorf("INFO commandstats = %q, want cmdstat_set:calls=1", cs.Str)
	}
	if !strings.Contains(string(cs.Str), "cmdstat_get:calls=1,") {
		t.Errorf("INFO commandstats = %q, want cmdstat_get:calls=1", cs.Str)
	}
	ls := c.do("INFO", "latencystats")
	if !strings.Contains(string(ls.Str), "latency_percentiles_usec_get:p50=") {
		t.Errorf("INFO latencystats = %q, want get percentiles", ls.Str)
	}
}

func TestInfoEngineSection(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	c := dial(t, addr)
	for i := 0; i < 64; i++ {
		c.mustSimple("OK", "SET", fmt.Sprintf("key%03d", i), "v")
	}
	v := c.do("INFO", "engine")
	body := string(v.Str)
	for _, want := range []string{
		"engine_help_total:", "engine_help_assists_total:",
		"engine_child_cas_failures_total:", "engine_op_retries_total:",
		"engine_depth_samples:", "engine_depth_p50:",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("INFO engine missing %q in %q", want, body)
		}
	}
	if !strings.Contains(body, "engine_shard0_help:") && !strings.Contains(body, "engine_shard") {
		t.Errorf("INFO engine missing per-shard breakdown: %q", body)
	}
}

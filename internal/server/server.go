// Package server is nbtried's network layer: a pipelined, RESP2-subset
// key-value server over the repository's sharded non-blocking Patricia
// trie (ShardedMap[[]byte]). It is the first layer of the ROADMAP's
// "production-scale system serving heavy traffic": the paper's
// lock-free engine does the synchronization, so the server needs no
// lock around the data path at all — every connection goroutine calls
// straight into the trie.
//
// # Connection model and pipelining
//
// One goroutine per connection, with a buffered reader and writer.
// Requests are processed strictly in arrival order and replies are
// written in that same order into the write buffer, so pipelining —
// a client sending N commands before reading any reply — works by
// construction. The write buffer is flushed exactly when the request
// parser is about to block on the socket (a read-side hook, see
// flushBeforeRead), i.e. once the batch of already-received requests —
// complete or partial — is answered as far as possible; a deep
// pipeline therefore costs one syscall per batch, not per command, and
// a reply is never withheld while the connection waits for input.
//
// # Command → engine-op mapping
//
//	GET     → ShardedMap.Load          (wait-free, 0-alloc in the trie)
//	SET     → ShardedMap.Store         (lock-free upsert)
//	DEL     → ShardedMap.Delete        (lock-free)
//	EXISTS  → ShardedMap.Contains      (wait-free)
//	MGET    → n × Load                 (each key individually linearizable)
//	MSET    → n × Store                (not atomic across keys; documented)
//	DBSIZE  → ShardedMap.Len           (per-shard atomic counters)
//	SCAN    → ShardedMap.Ascend        (cursor = next trie key)
//	RENAME  → ShardedMap.MoveKey       (the paper's atomic Replace when
//	          the keys share a shard; a documented two-phase move —
//	          insert-then-delete with an in-flight marker — across
//	          shards, DESIGN.md §12)
//	RENAMESTRICT → ShardedMap.ReplaceKey (atomic-only: cross-shard
//	          pairs are refused with -CROSSSHARD, never emulated)
//	EXPIRE/PEXPIRE/EXPIREAT/PEXPIREAT/TTL/PTTL/PERSIST/SETEX/GETEX
//	        → expiry.Index             (secondary deadline-ordered trie;
//	          lazy expiry on every read path + background reaper,
//	          deadlines durable as absolute PEXPIREAT AOF records and
//	          dump fields — DESIGN.md §12)
//
// Wire keys pass through a pluggable Keyer (see keyer.go); values are
// stored as the raw request bytes (the RESP reader hands each argument
// out as a freshly allocated slice, so storing it aliases nothing).
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbtrie"
	"nbtrie/internal/expiry"
	"nbtrie/internal/resp"
)

// Version is reported by INFO.
const Version = "0.6.0"

// Config parameterizes a Server. The zero value is usable: BytesKeyer,
// default shard count, default protocol limits.
type Config struct {
	// Keyer maps wire keys to trie keys; nil means BytesKeyer{}.
	Keyer Keyer
	// Shards is handed to NewShardedMap: 0 picks the default
	// (GOMAXPROCS-derived), otherwise a power of two in [1, 256].
	Shards int
	// Span is the trie digit width inside every shard: each internal
	// node resolves Span key bits through 2^Span children (see
	// nbtrie.NewKaryPatriciaTrie). 0 means 1 (the paper's binary
	// nodes); otherwise it must be in [1, 6].
	Span uint32
	// Limits bounds the request parser; zero fields take resp.DefaultLimits.
	Limits resp.Limits
	// ScanDefaultCount is SCAN's page size when no COUNT is given;
	// 0 means 10 (Redis's default).
	ScanDefaultCount int
	// Persist enables durability (see persist.go); zero Dir disables it.
	Persist PersistConfig
	// MaxScanCursors caps the live snapshot-backed SCAN cursor table;
	// 0 means 128. When full, the oldest cursor is evicted (its SCAN
	// then terminates early with cursor 0, which clients must already
	// tolerate — Redis cursors expire too).
	MaxScanCursors int
	// Dispatch selects the dispatch model: "conn" (default; each
	// connection goroutine calls straight into the trie) or "affine"
	// (single-key commands are routed to per-shard worker loops so
	// writers on different shards never share cache lines; see
	// affine.go and DESIGN.md §10).
	Dispatch string
	// Clock returns the current time in Unix milliseconds; nil means
	// the wall clock. Expiry deadlines are evaluated against it —
	// injectable so expiry tests are deterministic.
	Clock func() int64
	// SlowlogSlowerThanUS is the slowlog admission threshold in
	// microseconds. 0 selects the default (10ms); SlowlogOff disables
	// the log; SlowlogAll records every command. Note the deliberate
	// divergence from the Redis config value (where 0 means
	// log-everything): the zero-value Config must keep the 0-alloc
	// command paths, and logging everything copies arguments.
	// cmd/nbtried's -slowlog-log-slower-than flag keeps exact Redis
	// semantics and maps onto these sentinels.
	SlowlogSlowerThanUS int64
	// SlowlogMaxLen is the slowlog ring capacity; 0 means 128.
	SlowlogMaxLen int
}

// Server owns the map and the listener lifecycle. Create with New,
// start with Serve (or ListenAndServe), stop with Close; Close unblocks
// Serve, closes every live connection and waits for their goroutines.
type Server struct {
	cfg   Config
	keyer Keyer
	db    *nbtrie.ShardedMap[[]byte]
	start time.Time

	// exp is the deadline-ordered expiry index (see internal/expiry and
	// expiry.go in this package); clock feeds every deadline comparison.
	// The reaper goroutine wakes on the earliest armed deadline and
	// range-scans everything due; reapStop/reapDone bound its lifetime.
	exp      *expiry.Index
	clock    func() int64
	reapStop chan struct{}
	reapDone chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup

	// gate is the persistence boundary (see persist.go): mutating
	// commands hold RLock across map update + AOF append; a dump
	// rotation holds Lock for its O(shards) instant. With persistence
	// off it is an uncontended RLock — a few nanoseconds per mutation.
	gate sync.RWMutex
	pst  *persister // nil when persistence is disabled

	// aff is the shard-affine dispatcher (nil in conn mode): per-shard
	// worker goroutines fed by request rings (see affine.go).
	aff *affineDispatcher

	// Snapshot-backed SCAN cursor table (see scan in dispatch.go).
	scanMu   sync.Mutex
	scans    map[uint64]*scanCursor
	scanNext uint64

	totalConns atomic.Int64
	totalCmds  atomic.Int64

	// met is the always-on metrics registry (see metrics.go); slog the
	// slowlog ring (slowlog.go). Both exist on every server — exposure
	// (the -metrics-addr listener) is opt-in, recording is not, and the
	// record paths are wait-free and allocation-free by construction.
	met  *metrics
	slog *slowlog
}

// New builds a server and its backing map.
func New(cfg Config) (*Server, error) {
	if cfg.Keyer == nil {
		cfg.Keyer = BytesKeyer{}
	}
	if cfg.ScanDefaultCount <= 0 {
		cfg.ScanDefaultCount = 10
	}
	// Resolve the limits once: the dispatcher sizes replies (SCAN's
	// page cap) from the same values the request parser enforces. The
	// default page size is clamped too — a page larger than the array
	// limit would be rejected by every consumer of the shared codec.
	cfg.Limits = cfg.Limits.WithDefaults()
	if cfg.ScanDefaultCount > cfg.Limits.MaxArrayLen {
		cfg.ScanDefaultCount = cfg.Limits.MaxArrayLen
	}
	if cfg.MaxScanCursors <= 0 {
		cfg.MaxScanCursors = 128
	}
	switch cfg.Dispatch {
	case "":
		cfg.Dispatch = "conn"
	case "conn", "affine":
	default:
		return nil, fmt.Errorf("server: unknown dispatch mode %q (want conn or affine)", cfg.Dispatch)
	}
	if cfg.Span == 0 {
		cfg.Span = 1
	}
	db, err := nbtrie.NewShardedMapSpan[[]byte](cfg.Keyer.Width(), cfg.Shards, cfg.Span)
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() int64 { return time.Now().UnixMilli() }
	}
	// The expiry index shares the primary map's width and shard count so
	// a key's TTL lives on the same shard partition as its value. It must
	// exist before recovery runs: replayed PEXPIREAT records and dump
	// deadlines land in it.
	exp, err := expiry.New(cfg.Keyer.Width(), db.Shards())
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		keyer:    cfg.Keyer,
		db:       db,
		start:    time.Now(),
		exp:      exp,
		clock:    clock,
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
		scans:    make(map[uint64]*scanCursor),
		scanNext: 1,
		met:      newMetrics(),
		slog:     newSlowlog(cfg.SlowlogSlowerThanUS, cfg.SlowlogMaxLen),
	}
	if cfg.Persist.Dir != "" {
		// Recovery runs to completion before New returns — and so
		// before any listener can exist: no client ever observes a
		// partially recovered keyspace. Corruption (as opposed to a
		// torn AOF tail) refuses to boot rather than silently serving
		// a subset of committed data.
		p, err := openPersister(s, cfg.Persist)
		if err != nil {
			return nil, err
		}
		s.pst = p
	}
	if cfg.Dispatch == "affine" {
		// Workers start after recovery: the first routed op must see the
		// fully recovered keyspace, and recovery itself stays
		// single-threaded.
		s.aff = newAffineDispatcher(s)
	}
	// The reaper starts after recovery too: its opening pass purges
	// whatever expired while the process was down, so a recovered
	// keyspace converges to live-keys-only without waiting for reads.
	go s.reaperLoop()
	return s, nil
}

// DB exposes the backing map (tests and embedders).
func (s *Server) DB() *nbtrie.ShardedMap[[]byte] { return s.db }

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close is called (which returns
// nil here) or the listener fails. The caller keeps ln's address —
// listen on ":0" for a random port.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil // graceful: Close closed the listener under us
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		// Add under the same lock that registers the conn: Close holds
		// this lock before its wg.Wait, so Wait can never run between
		// the registration and the Add and miss this goroutine.
		s.wg.Add(1)
		s.mu.Unlock()
		s.totalConns.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(c)
		}()
	}
}

// Close stops accepting, closes every live connection and waits for
// all connection goroutines to drain. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	// Every connection goroutine has drained, so no more ops can be
	// routed: the affine workers stop first (they may still be draining
	// appends), then the reaper (its purges mutate the map but never the
	// AOF), and only then is the persister sealed — same "no append can
	// race the shutdown" order as conn mode.
	if s.aff != nil {
		s.aff.stop()
	}
	close(s.reapStop)
	<-s.reapDone
	if s.pst != nil {
		s.pst.close()
	}
	return err
}

// dropConn removes a finished connection from the live set.
func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// connectedClients reports the live connection count (INFO).
func (s *Server) connectedClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// commitBeforeWrite interposes on the connection's WRITE side: every
// byte headed for the socket first forces the AOF batch commit. This is
// the durability half of the batching contract, placed where it cannot
// be bypassed: the explicit batch flush (flushBeforeRead below) reaches
// the socket through here, and so does bufio's IMPLICIT write-through
// when a single reply larger than the write buffer overflows it — a
// path a commit hook on the flush call alone would miss, creating a
// window where a client reads "+OK" whose record is still in the AOF's
// user-space buffer. A failed commit poisons the write instead: the
// batch's replies die unsent (bufio errors are sticky), the connection
// drops, and the client observes an error, never a false ack.
type commitBeforeWrite struct {
	c net.Conn
	s *Server
}

// errAOFCommitFailed tears down a connection whose batch commit failed
// before its replies could falsely acknowledge the writes.
var errAOFCommitFailed = errors.New("server: aof commit failed; dropping connection without acknowledging the batch")

func (cw commitBeforeWrite) Write(p []byte) (int, error) {
	if !cw.s.commitAOF() {
		return 0, errAOFCommitFailed
	}
	n, err := cw.c.Write(p)
	if n > 0 {
		cw.s.met.bytesOut.Add(int64(n))
	}
	return n, err
}

// flushBeforeRead interposes on the connection's read side: any read
// that goes to the socket — which is exactly when the request parser
// has exhausted its buffer and is about to block — first drains any
// in-flight affine ops and flushes the pending replies. This is what
// makes the pipelining model deadlock free in every case: a client
// that sent N complete commands plus a *partial* (N+1)-th and then
// waits for replies before sending the rest still gets its N replies,
// because the parser's next fill flushes before blocking. A simple
// "flush when the read buffer is empty" check cannot express that (the
// buffer is non-empty, yet the parser is about to block).
//
// The same moment is the durability batch boundary: the flush reaches
// the socket through commitBeforeWrite, so the AOF commit (write;
// +fsync under appendfsync always) runs strictly BEFORE the replies —
// group commit, one write(+fsync) per pipelined batch rather than per
// command.
type flushBeforeRead struct {
	c  net.Conn
	ss *session
}

func (f flushBeforeRead) Read(p []byte) (int, error) {
	f.ss.drain()
	if f.ss.w.Buffered() > 0 {
		if err := f.ss.w.Flush(); err != nil {
			return 0, err
		}
	}
	n, err := f.c.Read(p)
	if n > 0 {
		f.ss.s.met.bytesIn.Add(int64(n))
	}
	return n, err
}

// replyFlushThreshold bounds how many reply bytes accumulate before the
// connection loop forces a flush mid-burst, so a long pipelined batch
// of fat replies is streamed in bounded chunks instead of stalling the
// client until the parser blocks. (A single oversized reply is already
// handled below this layer: it overflows bufio straight through
// commitBeforeWrite.)
const replyFlushThreshold = 12 << 10

// handle runs one connection's read-dispatch-write loop. Protocol
// errors are answered (best effort) and then kill the connection, like
// Redis: after a framing error the stream offset cannot be trusted.
func (s *Server) handle(c net.Conn) {
	defer s.dropConn(c)
	w := resp.NewWriter(bufio.NewWriterSize(commitBeforeWrite{c: c, s: s}, 16<<10))
	ss := newSession(s, w)
	// Replies accumulate in w across a pipelined batch and are flushed
	// by the flushBeforeRead hook the moment the parser needs more
	// bytes from the socket: one write syscall per batch, and never a
	// withheld reply while the connection blocks reading. The reader
	// reuses a per-connection arena (ReadCommandReuse): argument slices
	// are valid only until the next ReadCommandReuse call, and dispatch
	// copies out (resp.Detach) exactly the bytes that outlive the
	// command — SET/MSET values headed into the map.
	rr := resp.NewRequestReader(bufio.NewReaderSize(flushBeforeRead{c: c, ss: ss}, 16<<10), s.cfg.Limits)
	for {
		args, err := rr.ReadCommandReuse()
		if err != nil {
			// Routed ops may still be in flight when the parser fails
			// without touching the socket (malformed bytes mid-buffer);
			// their replies precede the error on the wire.
			ss.drain()
			if resp.IsProtocolError(err) {
				w.WriteError("ERR protocol error: " + err.Error())
				w.Flush()
			}
			return
		}
		s.totalCmds.Add(1)
		quit := ss.dispatch(args)
		if w.Buffered() >= replyFlushThreshold {
			if err := w.Flush(); err != nil {
				// Commit failure (or a dead socket): the batch's remaining
				// replies must not be acknowledged either.
				return
			}
		}
		if quit {
			w.Flush()
			return
		}
	}
}

// infoSection is one named block of the INFO reply. name is the
// lowercase match key for `INFO <section>`; title the rendered header.
type infoSection struct {
	name  string
	title string
	body  func(*strings.Builder)
}

// infoSections lists every INFO block, in render order. The section
// bodies write plain "key:value\r\n" lines with no headers or blank
// lines — infoText owns the framing, so a single-section reply and the
// full reply format identically.
func (s *Server) infoSections() []infoSection {
	return []infoSection{
		{"server", "Server", func(b *strings.Builder) {
			fmt.Fprintf(b, "nbtried_version:%s\r\n", Version)
			b.WriteString("engine:nbtrie-sharded-patricia\r\n")
			fmt.Fprintf(b, "keyer:%s\r\n", s.keyer.Name())
			fmt.Fprintf(b, "key_width_bits:%d\r\n", s.keyer.Width())
			fmt.Fprintf(b, "shards:%d\r\n", s.db.Shards())
			fmt.Fprintf(b, "trie_span_bits:%d\r\n", s.cfg.Span)
			fmt.Fprintf(b, "dispatch:%s\r\n", s.cfg.Dispatch)
			fmt.Fprintf(b, "uptime_in_seconds:%d\r\n", int64(time.Since(s.start).Seconds()))
		}},
		{"clients", "Clients", func(b *strings.Builder) {
			fmt.Fprintf(b, "connected_clients:%d\r\n", s.connectedClients())
		}},
		{"stats", "Stats", func(b *strings.Builder) {
			fmt.Fprintf(b, "total_connections_received:%d\r\n", s.totalConns.Load())
			fmt.Fprintf(b, "total_commands_processed:%d\r\n", s.totalCmds.Load())
			var errs int64
			for ci := cmdIndex(0); ci < cmdCount; ci++ {
				errs += s.met.cmdErrs.Load(int(ci))
			}
			fmt.Fprintf(b, "total_error_replies:%d\r\n", errs)
			fmt.Fprintf(b, "total_net_input_bytes:%d\r\n", s.met.bytesIn.Load())
			fmt.Fprintf(b, "total_net_output_bytes:%d\r\n", s.met.bytesOut.Load())
			fmt.Fprintf(b, "slowlog_len:%d\r\n", s.slog.len())
		}},
		{"commandstats", "Commandstats", s.commandstatsText},
		{"latencystats", "Latencystats", s.latencystatsText},
		{"expiry", "Expiry", func(b *strings.Builder) {
			expired, passes := s.exp.Stats()
			fmt.Fprintf(b, "keys_with_ttl:%d\r\n", s.exp.Len())
			fmt.Fprintf(b, "expired_keys:%d\r\n", expired)
			fmt.Fprintf(b, "reaper_passes:%d\r\n", passes)
		}},
		{"persistence", "Persistence", func(b *strings.Builder) {
			if s.pst != nil {
				b.WriteString(s.pst.info())
				return
			}
			b.WriteString("persistence_dir:\r\naof_enabled:0\r\n")
		}},
		{"engine", "Engine", s.engineText},
		{"keyspace", "Keyspace", func(b *strings.Builder) {
			fmt.Fprintf(b, "db0:keys=%d\r\n", s.db.Len())
		}},
	}
}

// infoText renders the INFO reply. section is the already-lowercased
// requested section; "" (no argument), "all", "default" and
// "everything" render every section, any other name renders exactly
// that section, and an unknown name renders nothing (the caller's empty
// bulk reply — Redis semantics).
func (s *Server) infoText(section string) string {
	all := section == "" || section == "all" || section == "default" || section == "everything"
	var b strings.Builder
	first := true
	for _, sec := range s.infoSections() {
		if !all && sec.name != section {
			continue
		}
		if !first {
			b.WriteString("\r\n")
		}
		first = false
		b.WriteString("# ")
		b.WriteString(sec.title)
		b.WriteString("\r\n")
		sec.body(&b)
	}
	return b.String()
}

// Package server is nbtried's network layer: a pipelined, RESP2-subset
// key-value server over the repository's sharded non-blocking Patricia
// trie (ShardedMap[[]byte]). It is the first layer of the ROADMAP's
// "production-scale system serving heavy traffic": the paper's
// lock-free engine does the synchronization, so the server needs no
// lock around the data path at all — every connection goroutine calls
// straight into the trie.
//
// # Connection model and pipelining
//
// One goroutine per connection, with a buffered reader and writer.
// Requests are processed strictly in arrival order and replies are
// written in that same order into the write buffer, so pipelining —
// a client sending N commands before reading any reply — works by
// construction. The write buffer is flushed exactly when the request
// parser is about to block on the socket (a read-side hook, see
// flushBeforeRead), i.e. once the batch of already-received requests —
// complete or partial — is answered as far as possible; a deep
// pipeline therefore costs one syscall per batch, not per command, and
// a reply is never withheld while the connection waits for input.
//
// # Command → engine-op mapping
//
//	GET     → ShardedMap.Load          (wait-free, 0-alloc in the trie)
//	SET     → ShardedMap.Store         (lock-free upsert)
//	DEL     → ShardedMap.Delete        (lock-free)
//	EXISTS  → ShardedMap.Contains      (wait-free)
//	MGET    → n × Load                 (each key individually linearizable)
//	MSET    → n × Store                (not atomic across keys; documented)
//	DBSIZE  → ShardedMap.Len           (per-shard atomic counters)
//	SCAN    → ShardedMap.Ascend        (cursor = next trie key)
//	RENAME  → ShardedMap.ReplaceKey    (the paper's atomic Replace;
//	          cross-shard pairs are refused with -CROSSSHARD, never
//	          emulated with delete+insert)
//
// Wire keys pass through a pluggable Keyer (see keyer.go); values are
// stored as the raw request bytes (the RESP reader hands each argument
// out as a freshly allocated slice, so storing it aliases nothing).
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nbtrie"
	"nbtrie/internal/resp"
)

// Version is reported by INFO.
const Version = "0.5.0"

// Config parameterizes a Server. The zero value is usable: BytesKeyer,
// default shard count, default protocol limits.
type Config struct {
	// Keyer maps wire keys to trie keys; nil means BytesKeyer{}.
	Keyer Keyer
	// Shards is handed to NewShardedMap: 0 picks the default
	// (GOMAXPROCS-derived), otherwise a power of two in [1, 256].
	Shards int
	// Limits bounds the request parser; zero fields take resp.DefaultLimits.
	Limits resp.Limits
	// ScanDefaultCount is SCAN's page size when no COUNT is given;
	// 0 means 10 (Redis's default).
	ScanDefaultCount int
	// Persist enables durability (see persist.go); zero Dir disables it.
	Persist PersistConfig
	// MaxScanCursors caps the live snapshot-backed SCAN cursor table;
	// 0 means 128. When full, the oldest cursor is evicted (its SCAN
	// then terminates early with cursor 0, which clients must already
	// tolerate — Redis cursors expire too).
	MaxScanCursors int
}

// Server owns the map and the listener lifecycle. Create with New,
// start with Serve (or ListenAndServe), stop with Close; Close unblocks
// Serve, closes every live connection and waits for their goroutines.
type Server struct {
	cfg   Config
	keyer Keyer
	db    *nbtrie.ShardedMap[[]byte]
	start time.Time

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup

	// gate is the persistence boundary (see persist.go): mutating
	// commands hold RLock across map update + AOF append; a dump
	// rotation holds Lock for its O(shards) instant. With persistence
	// off it is an uncontended RLock — a few nanoseconds per mutation.
	gate sync.RWMutex
	pst  *persister // nil when persistence is disabled

	// Snapshot-backed SCAN cursor table (see scan in dispatch.go).
	scanMu   sync.Mutex
	scans    map[uint64]*scanCursor
	scanNext uint64

	totalConns atomic.Int64
	totalCmds  atomic.Int64
}

// New builds a server and its backing map.
func New(cfg Config) (*Server, error) {
	if cfg.Keyer == nil {
		cfg.Keyer = BytesKeyer{}
	}
	if cfg.ScanDefaultCount <= 0 {
		cfg.ScanDefaultCount = 10
	}
	// Resolve the limits once: the dispatcher sizes replies (SCAN's
	// page cap) from the same values the request parser enforces. The
	// default page size is clamped too — a page larger than the array
	// limit would be rejected by every consumer of the shared codec.
	cfg.Limits = cfg.Limits.WithDefaults()
	if cfg.ScanDefaultCount > cfg.Limits.MaxArrayLen {
		cfg.ScanDefaultCount = cfg.Limits.MaxArrayLen
	}
	if cfg.MaxScanCursors <= 0 {
		cfg.MaxScanCursors = 128
	}
	db, err := nbtrie.NewShardedMap[[]byte](cfg.Keyer.Width(), cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		keyer:    cfg.Keyer,
		db:       db,
		start:    time.Now(),
		conns:    make(map[net.Conn]struct{}),
		scans:    make(map[uint64]*scanCursor),
		scanNext: 1,
	}
	if cfg.Persist.Dir != "" {
		// Recovery runs to completion before New returns — and so
		// before any listener can exist: no client ever observes a
		// partially recovered keyspace. Corruption (as opposed to a
		// torn AOF tail) refuses to boot rather than silently serving
		// a subset of committed data.
		p, err := openPersister(s, cfg.Persist)
		if err != nil {
			return nil, err
		}
		s.pst = p
	}
	return s, nil
}

// DB exposes the backing map (tests and embedders).
func (s *Server) DB() *nbtrie.ShardedMap[[]byte] { return s.db }

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close is called (which returns
// nil here) or the listener fails. The caller keeps ln's address —
// listen on ":0" for a random port.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil // graceful: Close closed the listener under us
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		// Add under the same lock that registers the conn: Close holds
		// this lock before its wg.Wait, so Wait can never run between
		// the registration and the Add and miss this goroutine.
		s.wg.Add(1)
		s.mu.Unlock()
		s.totalConns.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(c)
		}()
	}
}

// Close stops accepting, closes every live connection and waits for
// all connection goroutines to drain. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	// Every connection goroutine has drained: no append can race the
	// persister's shutdown (wait for an in-flight BGSAVE, seal the AOF).
	if s.pst != nil {
		s.pst.close()
	}
	return err
}

// dropConn removes a finished connection from the live set.
func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// connectedClients reports the live connection count (INFO).
func (s *Server) connectedClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// flushBeforeRead interposes on the connection's read side: any read
// that goes to the socket — which is exactly when the request parser
// has exhausted its buffer and is about to block — first flushes the
// pending replies. This is what makes the pipelining model deadlock
// free in every case: a client that sent N complete commands plus a
// *partial* (N+1)-th and then waits for replies before sending the
// rest still gets its N replies, because the parser's next fill
// flushes before blocking. A simple "flush when the read buffer is
// empty" check cannot express that (the buffer is non-empty, yet the
// parser is about to block).
//
// The same moment is the durability batch boundary: the AOF commit
// (write; +fsync under appendfsync always) runs strictly BEFORE the
// reply flush, so no client ever reads an acknowledgement whose record
// is not at least handed to the kernel — group commit, one
// write(+fsync) per pipelined batch rather than per command.
type flushBeforeRead struct {
	c net.Conn
	s *Server
	w *resp.Writer
}

// errAOFCommitFailed tears down a connection whose batch commit failed
// before its replies could falsely acknowledge the writes.
var errAOFCommitFailed = errors.New("server: aof commit failed; dropping connection without acknowledging the batch")

func (f flushBeforeRead) Read(p []byte) (int, error) {
	if f.w.Buffered() > 0 {
		if !f.s.commitAOF() {
			// The batch's records never became durable; flushing its
			// replies would be false acknowledgement. Poisoning the read
			// drops the connection with the replies unsent — the client
			// observes an error, not an ack.
			return 0, errAOFCommitFailed
		}
		if err := f.w.Flush(); err != nil {
			return 0, err
		}
	}
	return f.c.Read(p)
}

// handle runs one connection's read-dispatch-write loop. Protocol
// errors are answered (best effort) and then kill the connection, like
// Redis: after a framing error the stream offset cannot be trusted.
func (s *Server) handle(c net.Conn) {
	defer s.dropConn(c)
	w := resp.NewWriter(bufio.NewWriterSize(c, 16<<10))
	// Replies accumulate in w across a pipelined batch and are flushed
	// by the flushBeforeRead hook the moment the parser needs more
	// bytes from the socket: one write syscall per batch, and never a
	// withheld reply while the connection blocks reading.
	rr := resp.NewRequestReader(bufio.NewReaderSize(flushBeforeRead{c: c, s: s, w: w}, 16<<10), s.cfg.Limits)
	for {
		args, err := rr.ReadCommand()
		if err != nil {
			if resp.IsProtocolError(err) {
				w.WriteError("ERR protocol error: " + err.Error())
				if s.commitAOF() {
					w.Flush()
				}
			}
			return
		}
		s.totalCmds.Add(1)
		if quit := s.dispatch(w, args); quit {
			// Same ordering as flushBeforeRead: a failed commit means the
			// buffered replies must die with the connection, unflushed.
			if s.commitAOF() {
				w.Flush()
			}
			return
		}
	}
}

// infoText renders the INFO reply.
func (s *Server) infoText() string {
	persistence := "\r\n# Persistence\r\npersistence_dir:\r\naof_enabled:0\r\n"
	if s.pst != nil {
		persistence = s.pst.info()
	}
	return fmt.Sprintf(
		"# Server\r\n"+
			"nbtried_version:%s\r\n"+
			"engine:nbtrie-sharded-patricia\r\n"+
			"keyer:%s\r\n"+
			"key_width_bits:%d\r\n"+
			"shards:%d\r\n"+
			"uptime_in_seconds:%d\r\n"+
			"\r\n# Clients\r\n"+
			"connected_clients:%d\r\n"+
			"\r\n# Stats\r\n"+
			"total_connections_received:%d\r\n"+
			"total_commands_processed:%d\r\n"+
			"%s"+
			"\r\n# Keyspace\r\n"+
			"db0:keys=%d\r\n",
		Version,
		s.keyer.Name(),
		s.keyer.Width(),
		s.db.Shards(),
		int64(time.Since(s.start).Seconds()),
		s.connectedClients(),
		s.totalConns.Load(),
		s.totalCmds.Load(),
		persistence,
		s.db.Len(),
	)
}

package server

import (
	"bytes"
	"testing"
)

func TestDecimalKeyerRoundTrip(t *testing.T) {
	d := DecimalKeyer{KeyWidth: 20}
	for _, key := range []string{"0", "1", "7", "42", "1048575"} {
		k, err := d.Encode([]byte(key))
		if err != nil {
			t.Fatalf("Encode(%q): %v", key, err)
		}
		if got := string(d.Decode(k)); got != key {
			t.Errorf("Decode(Encode(%q)) = %q", key, got)
		}
	}
}

func TestDecimalKeyerRejects(t *testing.T) {
	d := DecimalKeyer{KeyWidth: 20}
	for _, key := range []string{"", "007", "-1", "+1", " 1", "1 ", "abc", "1a", "1048576", "99999999999999999999999"} {
		if k, err := d.Encode([]byte(key)); err == nil {
			t.Errorf("Encode(%q) = %d, want error", key, k)
		}
	}
}

func TestBytesKeyerRoundTrip(t *testing.T) {
	b := BytesKeyer{}
	keys := [][]byte{
		[]byte("a"), []byte("ab"), []byte("abcdefg"),
		{0}, {0, 0}, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		[]byte("a\x00b"), []byte("1234567"),
	}
	seen := map[uint64][]byte{}
	for _, key := range keys {
		k, err := b.Encode(key)
		if err != nil {
			t.Fatalf("Encode(%q): %v", key, err)
		}
		if k >= 1<<b.Width() {
			t.Fatalf("Encode(%q) = %d outside the %d-bit space", key, k, b.Width())
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("collision: %q and %q both encode to %d", prev, key, k)
		}
		seen[k] = key
		if got := b.Decode(k); !bytes.Equal(got, key) {
			t.Errorf("Decode(Encode(%q)) = %q", key, got)
		}
	}
	for _, key := range [][]byte{{}, []byte("12345678")} {
		if _, err := b.Encode(key); err == nil {
			t.Errorf("Encode(%q) accepted, want error", key)
		}
	}
}

// TestBytesKeyerOrder: trie-key order must equal lexicographic wire-key
// order, so SCAN walks keys in the order a client expects.
func TestBytesKeyerOrder(t *testing.T) {
	b := BytesKeyer{}
	sorted := [][]byte{
		{0}, {0, 0}, {0, 1}, []byte("a"), []byte("a\x00"), []byte("a\x00\x00"),
		[]byte("a\x01"), []byte("ab"), []byte("abcdefg"), []byte("b"), {0xff}, {0xff, 0x00},
	}
	for i := 1; i < len(sorted); i++ {
		prev, _ := b.Encode(sorted[i-1])
		cur, _ := b.Encode(sorted[i])
		if prev >= cur {
			t.Errorf("order broken: %q (%d) !< %q (%d)", sorted[i-1], prev, sorted[i], cur)
		}
	}
}

// TestBytesKeyerExhaustiveShort proves injectivity exhaustively for all
// 1- and 2-byte keys (the padding/length-tag interplay lives there).
func TestBytesKeyerExhaustiveShort(t *testing.T) {
	b := BytesKeyer{}
	seen := make(map[uint64]bool, 256+65536)
	n := 0
	for x := 0; x < 256; x++ {
		k, err := b.Encode([]byte{byte(x)})
		if err != nil || seen[k] {
			t.Fatalf("1-byte %02x: err=%v dup=%v", x, err, seen[k])
		}
		seen[k] = true
		n++
	}
	for x := 0; x < 65536; x++ {
		k, err := b.Encode([]byte{byte(x >> 8), byte(x)})
		if err != nil || seen[k] {
			t.Fatalf("2-byte %04x: err=%v dup=%v", x, err, seen[k])
		}
		seen[k] = true
		n++
	}
	if n != 256+65536 {
		t.Fatalf("covered %d keys", n)
	}
}

// TestDecodeAppend: DecodeAppend must agree with Decode and extend the
// caller's buffer in place, and the Encode/DecodeAppend pair must be
// allocation-free once scratch is warm — the server's affine dispatch
// re-renders AOF keys with it on every mutation.
func TestDecodeAppend(t *testing.T) {
	b := BytesKeyer{}
	d := DecimalKeyer{KeyWidth: 63}
	scratch := append([]byte(nil), "prefix:"...)
	for _, key := range [][]byte{[]byte("a"), []byte("abcdefg"), {0, 1, 2}} {
		k, err := b.Encode(key)
		if err != nil {
			t.Fatal(err)
		}
		got := b.DecodeAppend(scratch, k)
		if !bytes.Equal(got, append(append([]byte(nil), scratch...), key...)) {
			t.Errorf("DecodeAppend(%q, Encode(%q)) = %q", scratch, key, got)
		}
	}
	for _, key := range []string{"0", "42", "9223372036854775807"} {
		k, err := d.Encode([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if got := d.DecodeAppend(nil, k); string(got) != key {
			t.Errorf("decimal DecodeAppend = %q, want %q", got, key)
		}
	}

	wire := []byte("key:123")
	buf := make([]byte, 0, 16)
	if allocs := testing.AllocsPerRun(100, func() {
		k, err := b.Encode(wire)
		if err != nil {
			panic(err)
		}
		if buf = b.DecodeAppend(buf[:0], k); len(buf) != len(wire) {
			panic("lost bytes")
		}
	}); allocs != 0 {
		t.Errorf("bytes Encode+DecodeAppend allocates %.1f/op, pinned at 0", allocs)
	}
	num := []byte("123456789")
	if allocs := testing.AllocsPerRun(100, func() {
		k, err := d.Encode(num)
		if err != nil {
			panic(err)
		}
		if buf = d.DecodeAppend(buf[:0], k); len(buf) != len(num) {
			panic("lost bytes")
		}
	}); allocs != 0 {
		t.Errorf("decimal Encode+DecodeAppend allocates %.1f/op, pinned at 0", allocs)
	}
}

func TestNewKeyer(t *testing.T) {
	for _, name := range []string{"bytes", "decimal"} {
		k, err := NewKeyer(name)
		if err != nil || k.Name() != name {
			t.Errorf("NewKeyer(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := NewKeyer("md5"); err == nil {
		t.Error("NewKeyer must reject unknown names")
	}
	// The widths must be accepted by the sharded map.
	for _, name := range []string{"bytes", "decimal"} {
		k, _ := NewKeyer(name)
		if _, err := New(Config{Keyer: k}); err != nil {
			t.Errorf("server over %s keyer: %v", name, err)
		}
	}
}

package server

import (
	"bytes"
	"testing"
)

func TestDecimalKeyerRoundTrip(t *testing.T) {
	d := DecimalKeyer{KeyWidth: 20}
	for _, key := range []string{"0", "1", "7", "42", "1048575"} {
		k, err := d.Encode([]byte(key))
		if err != nil {
			t.Fatalf("Encode(%q): %v", key, err)
		}
		if got := string(d.Decode(k)); got != key {
			t.Errorf("Decode(Encode(%q)) = %q", key, got)
		}
	}
}

func TestDecimalKeyerRejects(t *testing.T) {
	d := DecimalKeyer{KeyWidth: 20}
	for _, key := range []string{"", "007", "-1", "+1", " 1", "1 ", "abc", "1a", "1048576", "99999999999999999999999"} {
		if k, err := d.Encode([]byte(key)); err == nil {
			t.Errorf("Encode(%q) = %d, want error", key, k)
		}
	}
}

func TestBytesKeyerRoundTrip(t *testing.T) {
	b := BytesKeyer{}
	keys := [][]byte{
		[]byte("a"), []byte("ab"), []byte("abcdefg"),
		{0}, {0, 0}, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		[]byte("a\x00b"), []byte("1234567"),
	}
	seen := map[uint64][]byte{}
	for _, key := range keys {
		k, err := b.Encode(key)
		if err != nil {
			t.Fatalf("Encode(%q): %v", key, err)
		}
		if k >= 1<<b.Width() {
			t.Fatalf("Encode(%q) = %d outside the %d-bit space", key, k, b.Width())
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("collision: %q and %q both encode to %d", prev, key, k)
		}
		seen[k] = key
		if got := b.Decode(k); !bytes.Equal(got, key) {
			t.Errorf("Decode(Encode(%q)) = %q", key, got)
		}
	}
	for _, key := range [][]byte{{}, []byte("12345678")} {
		if _, err := b.Encode(key); err == nil {
			t.Errorf("Encode(%q) accepted, want error", key)
		}
	}
}

// TestBytesKeyerOrder: trie-key order must equal lexicographic wire-key
// order, so SCAN walks keys in the order a client expects.
func TestBytesKeyerOrder(t *testing.T) {
	b := BytesKeyer{}
	sorted := [][]byte{
		{0}, {0, 0}, {0, 1}, []byte("a"), []byte("a\x00"), []byte("a\x00\x00"),
		[]byte("a\x01"), []byte("ab"), []byte("abcdefg"), []byte("b"), {0xff}, {0xff, 0x00},
	}
	for i := 1; i < len(sorted); i++ {
		prev, _ := b.Encode(sorted[i-1])
		cur, _ := b.Encode(sorted[i])
		if prev >= cur {
			t.Errorf("order broken: %q (%d) !< %q (%d)", sorted[i-1], prev, sorted[i], cur)
		}
	}
}

// TestBytesKeyerExhaustiveShort proves injectivity exhaustively for all
// 1- and 2-byte keys (the padding/length-tag interplay lives there).
func TestBytesKeyerExhaustiveShort(t *testing.T) {
	b := BytesKeyer{}
	seen := make(map[uint64]bool, 256+65536)
	n := 0
	for x := 0; x < 256; x++ {
		k, err := b.Encode([]byte{byte(x)})
		if err != nil || seen[k] {
			t.Fatalf("1-byte %02x: err=%v dup=%v", x, err, seen[k])
		}
		seen[k] = true
		n++
	}
	for x := 0; x < 65536; x++ {
		k, err := b.Encode([]byte{byte(x >> 8), byte(x)})
		if err != nil || seen[k] {
			t.Fatalf("2-byte %04x: err=%v dup=%v", x, err, seen[k])
		}
		seen[k] = true
		n++
	}
	if n != 256+65536 {
		t.Fatalf("covered %d keys", n)
	}
}

func TestNewKeyer(t *testing.T) {
	for _, name := range []string{"bytes", "decimal"} {
		k, err := NewKeyer(name)
		if err != nil || k.Name() != name {
			t.Errorf("NewKeyer(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := NewKeyer("md5"); err == nil {
		t.Error("NewKeyer must reject unknown names")
	}
	// The widths must be accepted by the sharded map.
	for _, name := range []string{"bytes", "decimal"} {
		k, _ := NewKeyer(name)
		if _, err := New(Config{Keyer: k}); err != nil {
			t.Errorf("server over %s keyer: %v", name, err)
		}
	}
}

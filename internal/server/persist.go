package server

import (
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"nbtrie/internal/persist"
)

// Durability orchestration: how the server composes internal/persist's
// dumps, AOF segments and manifest with the map's O(1) snapshots.
//
// # The exact-boundary invariant
//
// Recovery is "load the base dump, then replay the AOF chain". That is
// only correct if every acknowledged mutation lands in EXACTLY one of
// the two — a record that is both in the dump and in a replayed segment
// is applied twice, and replay is not idempotent across reorderings
// (replaying an old "RENAME a b" after a newer "SET a v" resurrects b
// with the wrong value). The server enforces the boundary with one
// RWMutex, gate: every mutating command holds gate.RLock across its
// map update AND its AOF append, and a rotation holds gate.Lock while
// it (a) opens a fresh AOF segment, (b) commits the manifest listing it
// and (c) takes the map snapshot the dump will stream from. Writers are
// quiesced for those three steps only — O(shards) work plus three file
// operations, independent of data size; the dump itself streams from
// the frozen snapshot with no lock held. Every mutation therefore
// observes the rotation entirely before it (its map update is in the
// snapshot, its record in an old segment the next manifest drops) or
// entirely after (not in the snapshot, record in the new segment).
//
// The gate also makes the sharded snapshot's documented weakness moot
// here: taken under gate.Lock, the per-shard cuts see an identical
// (quiesced) world, so the composite IS a globally exact cut.
//
// # Crash windows
//
//   - Mid-dump: the manifest committed in step (b) still names the old
//     base plus the WHOLE segment chain including the new segment, so a
//     crash recovers everything acknowledged up to the crash. The
//     half-written dump is an unreferenced temp file; recovery ignores
//     and removes it.
//   - After the dump completes, it is fsynced and renamed, then a
//     second manifest commit swings base to it and drops the
//     pre-rotation segments. Both manifest commits are atomic
//     (temp+fsync+rename+dir-fsync), so recovery sees the old or the
//     new recipe, never a mix. Old files are deleted only after the
//     commit that stops referencing them.
//   - Mid-append: the AOF tail tears. Under appendfsync always a torn
//     record was never acknowledged (the fsync happens before the reply
//     flush), so truncating it loses nothing a client was promised.
//
// # Acknowledgement ordering
//
// Connections buffer replies per pipelined batch and flush when the
// parser would block (flushBeforeRead). The AOF commit is hooked into
// that same moment, BEFORE the reply flush: append (buffered, under
// gate.RLock) → aof.Commit (write syscall; +fsync under always) →
// reply flush. A client that has seen "+OK" therefore knows the record
// is at least in the kernel (always: on stable storage) — the classic
// group-commit pattern, one write+fsync per batch rather than per
// command.

// PersistConfig enables durability. Zero Dir means disabled.
type PersistConfig struct {
	// Dir is the data directory (created if missing).
	Dir string
	// AOF appends every acknowledged mutation to an append-only file.
	// Without it only explicit SAVE/BGSAVE dumps persist.
	AOF bool
	// Fsync is the AOF sync policy (appendfsync).
	Fsync persist.SyncPolicy
}

// persister is the server's durability state.
type persister struct {
	s      *Server
	dir    string
	aofOn  bool
	policy persist.SyncPolicy

	// mu serializes SAVE/BGSAVE/rotation bookkeeping and Close; it is
	// never held while streaming a dump.
	mu       sync.Mutex
	aof      *persist.AOF
	manifest persist.Manifest
	seq      uint64 // highest sequence number in use

	bgActive   atomic.Bool
	lastSave   atomic.Int64 // unix seconds of the last completed dump
	saveStatus atomic.Value // string: "ok" or the last dump error
	aofStatus  atomic.Value // string: "ok" or the last append error
	bgWG       sync.WaitGroup
}

// openPersister recovers dir's state into s.db (dump, then AOF chain,
// truncating a torn tail) and arranges for new appends; called from New
// before any listener exists, so recovery sees no concurrency.
func openPersister(s *Server, cfg PersistConfig) (*persister, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	p := &persister{s: s, dir: cfg.Dir, aofOn: cfg.AOF, policy: cfg.Fsync}
	p.saveStatus.Store("ok")
	p.aofStatus.Store("ok")

	m, ok, err := persist.ReadManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if ok {
		if err := p.recover(m); err != nil {
			return nil, err
		}
		p.manifest = m
	}
	p.removeUnreferenced()

	if p.aofOn {
		// Appends go to a fresh segment committed into the manifest
		// before the first record can land in it, so a crash at any
		// point finds every segment it needs listed.
		p.seq++
		name := persist.IncrName(p.seq)
		p.manifest.Incrs = append(p.manifest.Incrs, name)
		if err := persist.WriteManifest(p.dir, p.manifest); err != nil {
			return nil, err
		}
		a, err := persist.OpenAOF(filepath.Join(p.dir, name), p.policy)
		if err != nil {
			return nil, err
		}
		p.aof = a
	}
	return p, nil
}

// recover loads the manifest's recipe into the (empty) map.
func (p *persister) recover(m persist.Manifest) error {
	if m.Base != "" {
		if n, ok := persist.SeqOf(m.Base); ok && n > p.seq {
			p.seq = n
		}
		err := persist.LoadDump(p.dir, m.Base, func(k, v []byte) error {
			return p.s.applyRecord([][]byte{[]byte("SET"), k, v})
		})
		if err != nil {
			return fmt.Errorf("server: loading base dump %s: %w", m.Base, err)
		}
	}
	for _, name := range m.Incrs {
		if n, ok := persist.SeqOf(name); ok && n > p.seq {
			p.seq = n
		}
		_, truncated, err := persist.ReplayFile(
			filepath.Join(p.dir, name), p.s.cfg.Limits, p.s.applyRecord)
		if err != nil {
			return fmt.Errorf("server: replaying %s: %w", name, err)
		}
		if truncated {
			fmt.Fprintf(os.Stderr, "nbtried: truncated torn tail of %s (crash artifact; the partial record was never acknowledged)\n", name)
		}
	}
	return nil
}

// removeUnreferenced deletes dump/segment-shaped files the manifest
// does not name — half-written temp files and stale bases/segments a
// crash interrupted the cleanup of.
func (p *persister) removeUnreferenced() {
	referenced := map[string]bool{persist.ManifestName: true}
	if p.manifest.Base != "" {
		referenced[p.manifest.Base] = true
	}
	for _, n := range p.manifest.Incrs {
		referenced[n] = true
	}
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if !referenced[e.Name()] {
			os.Remove(filepath.Join(p.dir, e.Name()))
		}
	}
}

// applyRecord replays one AOF/dump record against the map. It is the
// replay-side mirror of the dispatch mutations, minus replies and
// re-appending; it runs single-threaded (recovery) so the multi-step
// RENAME needs no atomicity.
func (s *Server) applyRecord(args [][]byte) error {
	if len(args) == 0 {
		return fmt.Errorf("empty record")
	}
	switch string(toUpper(args[0])) {
	case "SET":
		if len(args) != 3 {
			return fmt.Errorf("SET record with %d args", len(args))
		}
		k, err := s.keyer.Encode(args[1])
		if err != nil {
			return err
		}
		s.db.Store(k, args[2])
	case "DEL":
		if len(args) < 2 {
			return fmt.Errorf("DEL record with %d args", len(args))
		}
		for _, key := range args[1:] {
			k, err := s.keyer.Encode(key)
			if err != nil {
				return err
			}
			s.db.Delete(k)
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			return fmt.Errorf("MSET record with %d args", len(args))
		}
		for i := 1; i < len(args); i += 2 {
			k, err := s.keyer.Encode(args[i])
			if err != nil {
				return err
			}
			s.db.Store(k, args[i+1])
		}
	case "RENAME":
		if len(args) != 3 {
			return fmt.Errorf("RENAME record with %d args", len(args))
		}
		old, err := s.keyer.Encode(args[1])
		if err != nil {
			return err
		}
		new, err := s.keyer.Encode(args[2])
		if err != nil {
			return err
		}
		if old == new {
			return nil
		}
		if v, ok := s.db.Load(old); ok {
			s.db.Delete(old)
			s.db.Store(new, v)
		}
	default:
		return fmt.Errorf("unknown record command %q", args[0])
	}
	return nil
}

// appendMutation records one acknowledged mutation. Callers hold
// gate.RLock across the map update and this call (the exact-boundary
// invariant). A write error degrades to in-memory service and is
// surfaced through INFO rather than failing client commands.
func (s *Server) appendMutation(args ...[]byte) {
	p := s.pst
	if p == nil || !p.aofOn {
		return
	}
	if err := p.aof.Append(args...); err != nil {
		p.aofStatus.CompareAndSwap("ok", err.Error())
	}
}

// commitAOF is the batch-boundary hook: everything appended since the
// last commit reaches the file (and stable storage, under always)
// before the replies for the batch are flushed.
func (s *Server) commitAOF() {
	p := s.pst
	if p == nil || !p.aofOn {
		return
	}
	if err := p.aof.Commit(); err != nil {
		p.aofStatus.CompareAndSwap("ok", err.Error())
	}
}

// save runs a dump cycle. background=false is SAVE: the dump streams
// before save returns. background=true is BGSAVE: save returns once the
// snapshot is taken and a goroutine streams the dump. In both modes
// mutators are quiesced only for the rotation instant.
func (p *persister) save(background bool) error {
	p.mu.Lock()
	if p.bgActive.Load() {
		p.mu.Unlock()
		return fmt.Errorf("a background save is already in progress")
	}

	// Rotation, under the write gate: fresh segment, conservative
	// manifest (old base + whole chain + fresh segment), snapshot.
	dumpSeq := p.seq + 1
	var newSeg *persist.AOF
	var err error
	prev := p.manifest

	p.s.gate.Lock()
	if p.aofOn {
		segName := persist.IncrName(dumpSeq)
		newSeg, err = persist.OpenAOF(filepath.Join(p.dir, segName), p.policy)
		if err != nil {
			p.s.gate.Unlock()
			p.mu.Unlock()
			return err
		}
		next := persist.Manifest{Base: prev.Base, Incrs: append(append([]string{}, prev.Incrs...), segName)}
		if err := persist.WriteManifest(p.dir, next); err != nil {
			p.s.gate.Unlock()
			p.mu.Unlock()
			newSeg.Close()
			os.Remove(filepath.Join(p.dir, segName))
			return err
		}
		p.manifest = next
	}
	p.seq = dumpSeq
	snap := p.s.db.Snapshot() // globally exact: writers are quiesced by the gate
	oldSeg := p.aof
	if p.aofOn {
		p.aof = newSeg
	}
	p.s.gate.Unlock()

	if oldSeg != nil {
		// Every record in the old segment is covered by the snapshot;
		// seal it so its bytes are durable before the new base could
		// ever replace it in the recipe.
		oldSeg.Close()
	}

	doDump := func() error {
		defer p.bgActive.Store(false)
		err := p.writeDumpAndCommit(snap, dumpSeq)
		if err != nil {
			p.saveStatus.Store(err.Error())
			return err
		}
		p.saveStatus.Store("ok")
		p.lastSave.Store(time.Now().Unix())
		return nil
	}
	// bgActive is set before mu is released, so a racing SAVE/BGSAVE is
	// refused from this instant until the dump commits; the dump itself
	// runs lock-free (writeDumpAndCommit retakes mu only to swing the
	// manifest).
	p.bgActive.Store(true)
	p.bgWG.Add(1)
	p.mu.Unlock()
	if !background {
		defer p.bgWG.Done()
		return doDump()
	}
	go func() {
		defer p.bgWG.Done()
		doDump()
	}()
	return nil
}

// writeDumpAndCommit streams the snapshot into base-<seq>, swings the
// manifest to it and removes the files the new recipe dropped.
func (p *persister) writeDumpAndCommit(snap snapshotIter, seq uint64) error {
	baseName := persist.BaseName(seq)
	err := persist.SaveDump(p.dir, baseName, func(fn func(k, v []byte) bool) {
		for k, v := range snap.All() {
			if !fn(p.s.keyer.Decode(k), v) {
				return
			}
		}
	})
	if err != nil {
		return err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.manifest
	next := persist.Manifest{Base: baseName}
	if p.aofOn {
		// The segment opened by this cycle's rotation — and any opened
		// by later rotations while a BGSAVE streamed — hold exactly the
		// post-snapshot records.
		next.Incrs = segmentsAtOrAfter(old.Incrs, seq)
	}
	if err := persist.WriteManifest(p.dir, next); err != nil {
		return err
	}
	p.manifest = next

	drop := map[string]bool{}
	if old.Base != "" && old.Base != baseName {
		drop[old.Base] = true
	}
	for _, n := range old.Incrs {
		drop[n] = true
	}
	for _, n := range next.Incrs {
		delete(drop, n)
	}
	for n := range drop {
		os.Remove(filepath.Join(p.dir, n))
	}
	return nil
}

// segmentsAtOrAfter filters the chain to segments with sequence >= seq.
func segmentsAtOrAfter(chain []string, seq uint64) []string {
	var out []string
	for _, n := range chain {
		if s, ok := persist.SeqOf(n); ok && s >= seq {
			out = append(out, n)
		}
	}
	return out
}

// snapshotIter is the slice of ShardedMapSnapshot the dump needs;
// narrowing it keeps writeDumpAndCommit testable.
type snapshotIter interface {
	All() iter.Seq2[uint64, []byte]
}

// StartPeriodicSave triggers a BGSAVE-equivalent dump cycle every
// period (the daemon's -save flag). A cycle that finds another save in
// flight is skipped, not queued. The returned stop function halts the
// ticker and waits for its goroutine; call it before Close. With
// persistence disabled it is a no-op.
func (s *Server) StartPeriodicSave(period time.Duration) (stop func()) {
	if s.pst == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := s.pst.save(true); err == nil {
					continue
				}
				// "already in progress" or an I/O failure: either way the
				// next tick retries; failures also land in saveStatus.
			case <-quit:
				return
			}
		}
	}()
	return func() { close(quit); <-done }
}

// close seals the persister: waits for an in-flight background dump and
// syncs+closes the current segment. Called after every connection
// goroutine has drained, so no append can race it.
func (p *persister) close() {
	p.bgWG.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.aof != nil {
		p.aof.Close()
		p.aof = nil
	}
}

// infoPersistence renders INFO's persistence section.
func (p *persister) info() string {
	aofEnabled := 0
	var aofSize int64
	segs := 0
	if p.aofOn {
		aofEnabled = 1
		p.mu.Lock()
		if p.aof != nil {
			aofSize = p.aof.Size()
		}
		segs = len(p.manifest.Incrs)
		p.mu.Unlock()
	}
	bg := 0
	if p.bgActive.Load() {
		bg = 1
	}
	return fmt.Sprintf(
		"\r\n# Persistence\r\n"+
			"persistence_dir:%s\r\n"+
			"aof_enabled:%d\r\n"+
			"aof_fsync:%s\r\n"+
			"aof_current_size:%d\r\n"+
			"aof_segments:%d\r\n"+
			"aof_last_write_status:%s\r\n"+
			"rdb_bgsave_in_progress:%d\r\n"+
			"rdb_last_save_time:%d\r\n"+
			"rdb_last_bgsave_status:%s\r\n",
		p.dir,
		aofEnabled,
		p.policy,
		aofSize,
		segs,
		p.aofStatus.Load(),
		bg,
		p.lastSave.Load(),
		p.saveStatus.Load(),
	)
}

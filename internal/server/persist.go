package server

import (
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"nbtrie/internal/expiry"
	"nbtrie/internal/persist"
	"nbtrie/internal/resp"
)

// Durability orchestration: how the server composes internal/persist's
// dumps, AOF segments and manifest with the map's O(1) snapshots.
//
// # The exact-boundary invariant
//
// Recovery is "load the base dump, then replay the AOF chain". That is
// only correct if every acknowledged mutation lands in EXACTLY one of
// the two — a record that is both in the dump and in a replayed segment
// is applied twice, and replay is not idempotent across reorderings
// (replaying an old "RENAME a b" after a newer "SET a v" resurrects b
// with the wrong value). The server enforces the boundary with one
// RWMutex, gate: every mutating command holds gate.RLock across its
// map update AND its AOF append, and a rotation holds gate.Lock while
// it (a) opens a fresh AOF segment, (b) commits the manifest listing
// it, (c) takes the map snapshot the dump will stream from and (d)
// seals the old segment (flush + fsync + close). Writers are quiesced
// for those four steps only — O(shards) work plus a handful of file
// operations whose cost is bounded by one batch's buffered appends,
// independent of data size; the dump itself streams from the frozen
// snapshot with no lock held. Every mutation therefore observes the
// rotation entirely before it (its map update is in the snapshot, its
// record durable in an old segment the next manifest drops) or
// entirely after (not in the snapshot, record in the new segment).
// Step (d) inside the gate is load-bearing: batch commits
// (commitAOF) also run under gate.RLock against whatever segment is
// current, so a pre-swap append can only be acknowledged after either
// its own segment's commit or the rotation's seal has made it durable.
//
// The gate also makes the sharded snapshot's documented weakness moot
// here: taken under gate.Lock, the per-shard cuts see an identical
// (quiesced) world, so the composite IS a globally exact cut.
//
// # Crash windows
//
//   - Mid-dump: the manifest committed in step (b) still names the old
//     base plus the WHOLE segment chain including the new segment, so a
//     crash recovers everything acknowledged up to the crash. The
//     half-written dump is an unreferenced temp file; recovery ignores
//     and removes it.
//   - After the dump completes, it is fsynced and renamed, then a
//     second manifest commit swings base to it and drops the
//     pre-rotation segments. Both manifest commits are atomic
//     (temp+fsync+rename+dir-fsync), so recovery sees the old or the
//     new recipe, never a mix. Old files are deleted only after the
//     commit that stops referencing them.
//   - Mid-append: the AOF tail tears. Under appendfsync always a torn
//     record was never acknowledged (the fsync happens before the reply
//     flush), so truncating it loses nothing a client was promised.
//
// # Acknowledgement ordering
//
// Connections buffer replies per pipelined batch and flush when the
// parser would block (flushBeforeRead). The AOF commit is hooked into
// that same moment, BEFORE the reply flush: append (buffered, under
// gate.RLock) → aof.Commit (write syscall; +fsync under always, itself
// under gate.RLock — see commitAOF) → reply flush. A client that has
// seen "+OK" therefore knows the record is at least in the kernel
// (always: on stable storage) — the classic group-commit pattern, one
// write+fsync per batch rather than per command. When the commit
// FAILS, the batch's replies are never flushed: the connection drops,
// the AOF degrades (stderr + INFO), and dispatch refuses further
// mutations with -MISCONF — a failed disk can delay or kill client
// traffic but can never turn into a false acknowledgement.

// PersistConfig enables durability. Zero Dir means disabled.
type PersistConfig struct {
	// Dir is the data directory (created if missing).
	Dir string
	// AOF appends every acknowledged mutation to an append-only file.
	// Without it only explicit SAVE/BGSAVE dumps persist.
	AOF bool
	// Fsync is the AOF sync policy (appendfsync).
	Fsync persist.SyncPolicy
}

// persister is the server's durability state.
type persister struct {
	s      *Server
	dir    string
	aofOn  bool
	policy persist.SyncPolicy

	// mu serializes SAVE/BGSAVE/rotation bookkeeping and Close; it is
	// never held while streaming a dump.
	mu       sync.Mutex
	aof      *persist.AOF
	manifest persist.Manifest
	seq      uint64 // highest sequence number in use

	bgActive   atomic.Bool
	lastSave   atomic.Int64 // unix seconds of the last completed dump
	saveStatus atomic.Value // string: "ok" or the last dump error
	aofStatus  atomic.Value // string: "ok" or the last append error
	bgWG       sync.WaitGroup
}

// openPersister recovers dir's state into s.db (dump, then AOF chain,
// truncating a torn tail) and arranges for new appends; called from New
// before any listener exists, so recovery sees no concurrency.
func openPersister(s *Server, cfg PersistConfig) (*persister, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	p := &persister{s: s, dir: cfg.Dir, aofOn: cfg.AOF, policy: cfg.Fsync}
	p.saveStatus.Store("ok")
	p.aofStatus.Store("ok")

	m, ok, err := persist.ReadManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if ok {
		if err := p.recover(m); err != nil {
			return nil, err
		}
		p.manifest = m
	}
	p.removeUnreferenced()

	if p.aofOn {
		// Appends go to a fresh segment committed into the manifest
		// before the first record can land in it, so a crash at any
		// point finds every segment it needs listed.
		p.seq++
		name := persist.IncrName(p.seq)
		p.manifest.Incrs = append(p.manifest.Incrs, name)
		if err := persist.WriteManifest(p.dir, p.manifest); err != nil {
			return nil, err
		}
		a, err := persist.OpenAOF(filepath.Join(p.dir, name), p.policy)
		if err != nil {
			return nil, err
		}
		p.aof = a
	}
	return p, nil
}

// recover loads the manifest's recipe into the (empty) map.
func (p *persister) recover(m persist.Manifest) error {
	if m.Base != "" {
		if n, ok := persist.SeqOf(m.Base); ok && n > p.seq {
			p.seq = n
		}
		err := persist.LoadDump(p.dir, m.Base, func(k, v []byte, expireAtMS uint64) error {
			if err := p.s.applyRecord([][]byte{[]byte("SET"), k, v}); err != nil {
				return err
			}
			if expireAtMS != 0 {
				// Re-arm the dumped deadline, even one already past: the
				// reaper's opening pass (and any lazy read) purges it, the
				// same convergence path as replayed PEXPIREAT records.
				ek, err := p.s.keyer.Encode(k)
				if err != nil {
					return err
				}
				p.s.exp.Set(ek, int64(expireAtMS))
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("server: loading base dump %s: %w", m.Base, err)
		}
	}
	for _, name := range m.Incrs {
		if n, ok := persist.SeqOf(name); ok && n > p.seq {
			p.seq = n
		}
		_, truncated, err := persist.ReplayFile(
			filepath.Join(p.dir, name), p.s.cfg.Limits, p.s.applyRecord)
		if err != nil {
			return fmt.Errorf("server: replaying %s: %w", name, err)
		}
		if truncated {
			fmt.Fprintf(os.Stderr, "nbtried: truncated torn tail of %s (crash artifact; the partial record was never acknowledged)\n", name)
		}
	}
	return nil
}

// removeUnreferenced deletes dump/segment-shaped files the manifest
// does not name — half-written temp files and stale bases/segments a
// crash interrupted the cleanup of.
func (p *persister) removeUnreferenced() {
	referenced := map[string]bool{persist.ManifestName: true}
	if p.manifest.Base != "" {
		referenced[p.manifest.Base] = true
	}
	for _, n := range p.manifest.Incrs {
		referenced[n] = true
	}
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if !referenced[e.Name()] {
			os.Remove(filepath.Join(p.dir, e.Name()))
		}
	}
}

// applyRecord replays one AOF/dump record against the map (and the
// expiry index: every record that changes a key's TTL state at serve
// time changes it identically at replay time). It is the replay-side
// mirror of the dispatch mutations, minus replies and re-appending; it
// runs single-threaded (recovery) so the multi-step RENAME needs no
// atomicity. Reaper purges are deliberately NOT recorded: recovery
// re-evaluates the replayed absolute deadlines against the clock, so an
// expiry that happened while up happens again (lazily or on the
// reaper's opening pass) after a restart.
func (s *Server) applyRecord(args [][]byte) error {
	if len(args) == 0 {
		return fmt.Errorf("empty record")
	}
	switch string(toUpper(args[0])) {
	case "SET":
		if len(args) != 3 {
			return fmt.Errorf("SET record with %d args", len(args))
		}
		k, err := s.keyer.Encode(args[1])
		if err != nil {
			return err
		}
		s.db.Store(k, args[2])
		s.exp.Clear(k) // plain SET discards any earlier arming
	case "DEL":
		if len(args) < 2 {
			return fmt.Errorf("DEL record with %d args", len(args))
		}
		for _, key := range args[1:] {
			k, err := s.keyer.Encode(key)
			if err != nil {
				return err
			}
			s.db.Delete(k)
			s.exp.Clear(k)
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			return fmt.Errorf("MSET record with %d args", len(args))
		}
		for i := 1; i < len(args); i += 2 {
			k, err := s.keyer.Encode(args[i])
			if err != nil {
				return err
			}
			s.db.Store(k, args[i+1])
			s.exp.Clear(k)
		}
	case "RENAME":
		if len(args) != 3 {
			return fmt.Errorf("RENAME record with %d args", len(args))
		}
		old, err := s.keyer.Encode(args[1])
		if err != nil {
			return err
		}
		new, err := s.keyer.Encode(args[2])
		if err != nil {
			return err
		}
		if old == new {
			return nil
		}
		if v, ok := s.db.Load(old); ok {
			s.db.Delete(old)
			s.db.Store(new, v)
			// At serve time a rename's destination holds no arming when
			// the move lands (it was absent, or expired and lazily
			// purged — arming included). Replay must match: an earlier
			// PEXPIREAT record may have re-armed the destination's old
			// (possibly past) deadline, which must not survive onto the
			// moved value, or the opening reaper pass eats it.
			s.exp.Clear(new)
			// The deadline travels with the value, exactly as it did at
			// serve time (both the atomic and the two-phase rename log
			// this one record).
			if e, had := s.exp.Lookup(old); had {
				s.exp.Set(new, e.DeadlineMS)
				s.exp.Remove(old, e)
			}
		}
	case "PEXPIREAT":
		// Absolute-deadline arming: every wire-level EXPIRE variant is
		// logged in this one canonical form (Redis does the same
		// translation), so replay never depends on the clock at replay
		// time. A deadline already past is still armed — the reaper's
		// opening pass purges it, which is what makes downtime expiry
		// converge.
		if len(args) != 3 {
			return fmt.Errorf("PEXPIREAT record with %d args", len(args))
		}
		k, err := s.keyer.Encode(args[1])
		if err != nil {
			return err
		}
		ms, ok := parseIntArg(args[2])
		if !ok {
			return fmt.Errorf("PEXPIREAT record with bad deadline %q", args[2])
		}
		if s.db.Contains(k) {
			s.exp.Set(k, ms)
		}
	case "PERSIST":
		if len(args) != 2 {
			return fmt.Errorf("PERSIST record with %d args", len(args))
		}
		k, err := s.keyer.Encode(args[1])
		if err != nil {
			return err
		}
		s.exp.Clear(k)
	default:
		return fmt.Errorf("unknown record command %q", args[0])
	}
	return nil
}

// appendMutation records one acknowledged mutation. Callers hold
// gate.RLock across the map update and this call (the exact-boundary
// invariant); that RLock is also what makes reading p.aof safe, since
// rotations swap it under gate.Lock.
func (s *Server) appendMutation(args ...[]byte) {
	p := s.pst
	if p == nil || !p.aofOn {
		return
	}
	if err := p.aof.Append(args...); err != nil {
		p.degradeAOF(err)
	}
}

// commitAOF is the batch-boundary hook: everything appended since the
// last commit reaches the file (and stable storage, under always)
// before the replies for the batch are flushed. It holds gate.RLock so
// the p.aof read is ordered against rotations: a rotation seals the
// previous segment before releasing the gate, so the segment committed
// here either is the one this batch appended to, or post-dates a seal
// that already made those appends durable — a post-swap commit can
// never acknowledge records still buffered in the pre-swap segment.
//
// A false return means the commit failed and the batch's replies MUST
// NOT be flushed: they would acknowledge writes that never became
// durable. Callers drop the connection instead.
func (s *Server) commitAOF() (ok bool) {
	p := s.pst
	if p == nil || !p.aofOn {
		return true
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	if p.aof == nil {
		return true
	}
	start := time.Now()
	if err := p.aof.Commit(); err != nil {
		p.degradeAOF(err)
		return false
	}
	// Commit duration covers the buffered write-out plus the fsync under
	// appendfsync=always — the per-batch durability cost a client's reply
	// waits on.
	s.met.aofCommit.Record(uint64(time.Since(start).Microseconds()))
	return true
}

// degradeAOF records the first AOF write error. The INFO status flips
// from "ok", one loud line goes to stderr, and from then on dispatch
// refuses every mutating command with -MISCONF (persistDegraded below):
// the server never keeps silently acking writes it can no longer make
// durable. Reads keep working; recovery is operator action + restart.
func (p *persister) degradeAOF(err error) {
	if p.aofStatus.CompareAndSwap("ok", err.Error()) {
		fmt.Fprintf(os.Stderr, "nbtried: AOF write failed; refusing further mutations (-MISCONF) until restart: %v\n", err)
	}
}

// persistDegraded reports whether the AOF has recorded a write error.
func (s *Server) persistDegraded() bool {
	p := s.pst
	return p != nil && p.aofOn && p.aofStatus.Load() != "ok"
}

// misconf answers the Redis-style refusal for mutations while the AOF
// is broken.
func (s *Server) misconf(w *resp.Writer) {
	w.WriteError(fmt.Sprintf(
		"MISCONF AOF write failed (%s); mutating commands are disabled so acknowledged writes stay durable — fix the data directory and restart",
		s.pst.aofStatus.Load()))
}

// save runs a dump cycle. background=false is SAVE: the dump streams
// before save returns. background=true is BGSAVE: save returns once the
// snapshot is taken and a goroutine streams the dump. In both modes
// mutators are quiesced only for the rotation instant.
func (p *persister) save(background bool) error {
	p.mu.Lock()
	if p.bgActive.Load() {
		p.mu.Unlock()
		return fmt.Errorf("a background save is already in progress")
	}

	// Rotation, under the write gate: fresh segment, conservative
	// manifest (old base + whole chain + fresh segment), snapshot.
	dumpSeq := p.seq + 1
	var newSeg *persist.AOF
	var err error
	prev := p.manifest

	p.s.gate.Lock()
	if p.aofOn {
		segName := persist.IncrName(dumpSeq)
		newSeg, err = persist.OpenAOF(filepath.Join(p.dir, segName), p.policy)
		if err != nil {
			p.s.gate.Unlock()
			p.mu.Unlock()
			return err
		}
		next := persist.Manifest{Base: prev.Base, Incrs: append(append([]string{}, prev.Incrs...), segName)}
		if err := persist.WriteManifest(p.dir, next); err != nil {
			p.s.gate.Unlock()
			p.mu.Unlock()
			newSeg.Close()
			os.Remove(filepath.Join(p.dir, segName))
			return err
		}
		p.manifest = next
	}
	p.seq = dumpSeq
	// Both snapshots under the same gate.Lock instant: the dump's
	// (value, deadline) pairs are one consistent cut — no TTL for a key
	// the value cut doesn't have, no value whose arming the TTL cut
	// missed.
	snap := p.s.db.Snapshot() // globally exact: writers are quiesced by the gate
	expSnap := p.s.exp.Snapshot()
	oldSeg := p.aof
	if p.aofOn {
		p.aof = newSeg
	}
	if oldSeg != nil {
		// Seal (flush + fsync + close) the old segment BEFORE releasing
		// the gate. commitAOF runs under gate.RLock and commits whatever
		// p.aof points to, so a batch appended pre-swap can be committed
		// — and its replies acknowledged — against the NEW segment only.
		// Sealing inside the gate makes those pre-swap records durable
		// before any such acknowledgement is possible; sealing after the
		// unlock would leave a window where a crash loses acked bytes
		// still sitting in the old segment's write buffer.
		oldSeg.Close()
	}
	p.s.gate.Unlock()

	doDump := func() error {
		defer p.bgActive.Store(false)
		err := p.writeDumpAndCommit(snap, expSnap, dumpSeq)
		if err != nil {
			p.saveStatus.Store(err.Error())
			return err
		}
		p.saveStatus.Store("ok")
		p.lastSave.Store(time.Now().Unix())
		return nil
	}
	// bgActive is set before mu is released, so a racing SAVE/BGSAVE is
	// refused from this instant until the dump commits; the dump itself
	// runs lock-free (writeDumpAndCommit retakes mu only to swing the
	// manifest).
	p.bgActive.Store(true)
	p.bgWG.Add(1)
	p.mu.Unlock()
	if !background {
		defer p.bgWG.Done()
		return doDump()
	}
	go func() {
		defer p.bgWG.Done()
		doDump()
	}()
	return nil
}

// writeDumpAndCommit streams the snapshot into base-<seq>, swings the
// manifest to it and removes the files the new recipe dropped. Each
// record carries the key's deadline from the expiry cut (0 = no TTL),
// so a dump restores TTL state without any AOF record.
func (p *persister) writeDumpAndCommit(snap snapshotIter, expSnap *expiry.Snapshot, seq uint64) error {
	baseName := persist.BaseName(seq)
	err := persist.SaveDump(p.dir, baseName, func(fn func(k, v []byte, expireAtMS uint64) bool) {
		for k, v := range snap.All() {
			if !fn(p.s.keyer.Decode(k), v, uint64(expSnap.DeadlineMS(k))) {
				return
			}
		}
	})
	if err != nil {
		return err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.manifest
	next := persist.Manifest{Base: baseName}
	if p.aofOn {
		// The segment opened by this cycle's rotation — and any opened
		// by later rotations while a BGSAVE streamed — hold exactly the
		// post-snapshot records.
		next.Incrs = segmentsAtOrAfter(old.Incrs, seq)
	}
	if err := persist.WriteManifest(p.dir, next); err != nil {
		return err
	}
	p.manifest = next

	drop := map[string]bool{}
	if old.Base != "" && old.Base != baseName {
		drop[old.Base] = true
	}
	for _, n := range old.Incrs {
		drop[n] = true
	}
	for _, n := range next.Incrs {
		delete(drop, n)
	}
	for n := range drop {
		os.Remove(filepath.Join(p.dir, n))
	}
	return nil
}

// segmentsAtOrAfter filters the chain to segments with sequence >= seq.
func segmentsAtOrAfter(chain []string, seq uint64) []string {
	var out []string
	for _, n := range chain {
		if s, ok := persist.SeqOf(n); ok && s >= seq {
			out = append(out, n)
		}
	}
	return out
}

// snapshotIter is the slice of ShardedMapSnapshot the dump needs;
// narrowing it keeps writeDumpAndCommit testable.
type snapshotIter interface {
	All() iter.Seq2[uint64, []byte]
}

// StartPeriodicSave triggers a BGSAVE-equivalent dump cycle every
// period (the daemon's -save flag). A cycle that finds another save in
// flight is skipped, not queued. The returned stop function halts the
// ticker and waits for its goroutine; call it before Close. With
// persistence disabled it is a no-op.
func (s *Server) StartPeriodicSave(period time.Duration) (stop func()) {
	if s.pst == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := s.pst.save(true); err == nil {
					continue
				}
				// "already in progress" or an I/O failure: either way the
				// next tick retries; failures also land in saveStatus.
			case <-quit:
				return
			}
		}
	}()
	return func() { close(quit); <-done }
}

// close seals the persister: waits for an in-flight background dump and
// syncs+closes the current segment. Called after every connection
// goroutine has drained, so no append can race it.
func (p *persister) close() {
	p.bgWG.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	// gate.Lock keeps the p.aof write ordered with commitAOF's
	// gate.RLock reads (same mu→gate order as save's rotation); by the
	// time close runs the connections are drained, so this is
	// belt-and-braces for the race detector, not a live contention.
	p.s.gate.Lock()
	defer p.s.gate.Unlock()
	if p.aof != nil {
		p.aof.Close()
		p.aof = nil
	}
}

// infoPersistence renders INFO's persistence section.
func (p *persister) info() string {
	aofEnabled := 0
	var aofSize int64
	segs := 0
	if p.aofOn {
		aofEnabled = 1
		p.mu.Lock()
		if p.aof != nil {
			aofSize = p.aof.Size()
		}
		segs = len(p.manifest.Incrs)
		p.mu.Unlock()
	}
	bg := 0
	if p.bgActive.Load() {
		bg = 1
	}
	return fmt.Sprintf(
		"persistence_dir:%s\r\n"+
			"aof_enabled:%d\r\n"+
			"aof_fsync:%s\r\n"+
			"aof_current_size:%d\r\n"+
			"aof_segments:%d\r\n"+
			"aof_last_write_status:%s\r\n"+
			"rdb_bgsave_in_progress:%d\r\n"+
			"rdb_last_save_time:%d\r\n"+
			"rdb_last_bgsave_status:%s\r\n",
		p.dir,
		aofEnabled,
		p.policy,
		aofSize,
		segs,
		p.aofStatus.Load(),
		bg,
		p.lastSave.Load(),
		p.saveStatus.Load(),
	)
}

package server

import (
	"strconv"
	"sync"
	"time"
)

// Slowlog threshold sentinels for Config.SlowlogSlowerThanUS. The zero
// value selects the DEFAULT threshold, not log-everything: a zero-value
// Config must keep the pinned 0-alloc command paths, and logging every
// command copies its arguments. cmd/nbtried maps the Redis-semantics
// flag (-slowlog-log-slower-than: 0 = everything, negative = off) onto
// these.
const (
	// SlowlogDefaultUS is the threshold used when Config leaves
	// SlowlogSlowerThanUS at zero: 10ms, Redis's default.
	SlowlogDefaultUS = 10_000
	// SlowlogOff disables slowlog recording entirely.
	SlowlogOff = -1
	// SlowlogAll records every command regardless of duration.
	SlowlogAll = -2
)

// slowlogMaxArgs / slowlogMaxArgLen bound what one entry copies: Redis
// keeps 32 arguments of 128 bytes (minus truncation markers); the same
// caps keep a slow MSET from pinning megabytes in the ring.
const (
	slowlogMaxArgs   = 32
	slowlogMaxArgLen = 128
)

// slowlogEntry is one logged command. Args are truncated private copies
// — the originals live in the connection's RESP arena and die with the
// command.
type slowlogEntry struct {
	ID         int64
	UnixTime   int64
	DurationUS int64
	Args       [][]byte
}

// slowlog is the Redis-style ring of the slowest commands. A plain
// mutex, not obs counters: the log only admits commands that already
// took ≥ threshold (10ms default), so the lock is far off the hot path;
// the threshold COMPARISON is the only thing fast commands ever pay.
type slowlog struct {
	thresholdUS int64 // resolved: >=0 active threshold, SlowlogOff, or SlowlogAll
	maxLen      int

	mu     sync.Mutex
	nextID int64
	ring   []slowlogEntry
	head   int // next write position
	size   int
}

func newSlowlog(thresholdUS int64, maxLen int) *slowlog {
	switch {
	case thresholdUS == 0:
		thresholdUS = SlowlogDefaultUS
	case thresholdUS < 0 && thresholdUS != SlowlogAll:
		thresholdUS = SlowlogOff
	}
	if maxLen <= 0 {
		maxLen = 128
	}
	return &slowlog{thresholdUS: thresholdUS, maxLen: maxLen, ring: make([]slowlogEntry, maxLen)}
}

// admits is the hot-path check: one comparison, no lock, no allocation.
func (sl *slowlog) admits(d time.Duration) bool {
	if sl.thresholdUS == SlowlogAll {
		return true
	}
	return sl.thresholdUS >= 0 && d.Microseconds() >= sl.thresholdUS
}

// add records one command. Callers check admits first; add copies and
// truncates the arguments (they are arena-backed and about to die).
func (sl *slowlog) add(d time.Duration, args [][]byte) {
	n := len(args)
	truncated := 0
	if n > slowlogMaxArgs {
		truncated = n - slowlogMaxArgs + 1
		n = slowlogMaxArgs - 1
	}
	cp := make([][]byte, 0, n+1)
	for _, a := range args[:n] {
		if len(a) > slowlogMaxArgLen {
			marker := []byte("... (" + strconv.Itoa(len(a)-slowlogMaxArgLen) + " more bytes)")
			t := make([]byte, 0, slowlogMaxArgLen+len(marker))
			t = append(t, a[:slowlogMaxArgLen]...)
			t = append(t, marker...)
			cp = append(cp, t)
			continue
		}
		cp = append(cp, append([]byte(nil), a...))
	}
	if truncated > 0 {
		cp = append(cp, []byte("... ("+strconv.Itoa(truncated)+" more arguments)"))
	}
	sl.mu.Lock()
	id := sl.nextID
	sl.nextID++
	sl.ring[sl.head] = slowlogEntry{
		ID:         id,
		UnixTime:   time.Now().Unix(),
		DurationUS: d.Microseconds(),
		Args:       cp,
	}
	sl.head = (sl.head + 1) % sl.maxLen
	if sl.size < sl.maxLen {
		sl.size++
	}
	sl.mu.Unlock()
}

// get returns up to n entries, newest first (Redis's SLOWLOG GET order).
// n < 0 means all.
func (sl *slowlog) get(n int) []slowlogEntry {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if n < 0 || n > sl.size {
		n = sl.size
	}
	out := make([]slowlogEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, sl.ring[(sl.head-i+sl.maxLen)%sl.maxLen])
	}
	return out
}

func (sl *slowlog) reset() {
	sl.mu.Lock()
	for i := range sl.ring {
		sl.ring[i] = slowlogEntry{}
	}
	sl.head, sl.size = 0, 0
	sl.mu.Unlock()
}

func (sl *slowlog) len() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.size
}

// slowlogCmd implements SLOWLOG GET [n] / RESET / LEN.
func (ss *session) slowlogCmd(args [][]byte) {
	w := ss.w
	if len(args) < 2 {
		ss.wrongArity("SLOWLOG")
		return
	}
	switch string(ss.upper(args[1])) {
	case "GET":
		n := 10
		if len(args) == 3 {
			v, err := strconv.Atoi(string(args[2]))
			if err != nil || v < -1 {
				w.WriteError("ERR count should be >= -1")
				return
			}
			n = v
		} else if len(args) > 3 {
			ss.wrongArity("SLOWLOG")
			return
		}
		entries := ss.s.slog.get(n)
		w.WriteArrayHeader(len(entries))
		for _, e := range entries {
			w.WriteArrayHeader(4)
			w.WriteInt(e.ID)
			w.WriteInt(e.UnixTime)
			w.WriteInt(e.DurationUS)
			w.WriteArrayHeader(len(e.Args))
			for _, a := range e.Args {
				w.WriteBulk(a)
			}
		}
	case "RESET":
		if len(args) != 2 {
			ss.wrongArity("SLOWLOG")
			return
		}
		ss.s.slog.reset()
		w.WriteSimple("OK")
	case "LEN":
		if len(args) != 2 {
			ss.wrongArity("SLOWLOG")
			return
		}
		w.WriteInt(int64(ss.s.slog.len()))
	default:
		w.WriteError("ERR unknown SLOWLOG subcommand (GET, RESET, LEN)")
	}
}

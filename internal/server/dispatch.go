package server

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"nbtrie"
	"nbtrie/internal/resp"
)

// session is one connection's dispatch state: the reply writer plus the
// scratch buffers that make the steady-state hot path allocation-free.
// Arguments arrive as views into the connection's RESP arena
// (ReadCommandReuse) and are valid only for the current command; the
// ONLY bytes dispatch copies out of the arena are SET/MSET values
// headed into the map (resp.Detach — exactly one allocation each, the
// value's own backing array). Everything else — command word, keys,
// reply bytes — is consumed before the next command overwrites it.
type session struct {
	s *Server
	w *resp.Writer

	ks     []uint64 // encodeKeys scratch, reused across commands
	cmdBuf []byte   // upper's scratch: the upcased command word

	// stripe is this connection's index into the striped per-command
	// counters (see metrics.go) — assigned once per session so counter
	// writes from different connections land on different cache lines.
	stripe uint32

	// Affine-mode state (nil/empty in conn mode): a fixed ring of op
	// slots with stable addresses, ss.ops[:pend] routed and not yet
	// answered, the per-shard chains being assembled for the current
	// drain window, and the barrier the workers signal completion on.
	// See affine.go.
	ops     []affineOp
	pend    int
	tails   []*affineOp // per shard: chain tail (head is tail's first link)
	heads   []*affineOp // per shard: chain head, nil when no pending ops
	touched []int       // shards with a non-empty chain, in first-use order
	wg      wgBarrier
}

func newSession(s *Server, w *resp.Writer) *session {
	ss := &session{s: s, w: w, stripe: s.met.connSeq.Add(1)}
	if s.aff != nil {
		ss.ops = make([]affineOp, affineBurstMax)
		for i := range ss.ops {
			ss.ops[i].done = &ss.wg
		}
		n := s.db.Shards()
		ss.heads = make([]*affineOp, n)
		ss.tails = make([]*affineOp, n)
		ss.touched = make([]int, 0, n)
	}
	return ss
}

// dispatch answers one command into ss.w (the caller flushes). It
// returns true when the connection should close (QUIT). Unknown
// commands and arity/key errors are ordinary RESP errors: the
// connection survives, only protocol-level framing errors are fatal
// (handled by the caller).
//
// This wrapper owns per-command accounting: it classifies the command,
// times the inline execution, and records calls / errors / latency into
// the metrics registry plus the slowlog threshold check — all wait-free
// and allocation-free (time.Now is a vDSO read; the slowlog only copies
// arguments for commands that already blew the threshold). Routed
// affine ops skip this path and are recorded at drain time instead,
// where their replies are written (see affine.go).
func (ss *session) dispatch(args [][]byte) (quit bool) {
	// Upcase into session scratch (args[0] must stay intact: the
	// unknown-command error echoes it as typed), then switch directly
	// on the []byte→string conversions: both are allocation-free once
	// the scratch is warm, and the compiler elides the conversion copy
	// when the string is only compared.
	cmd := ss.upper(args[0])
	if ss.s.aff != nil {
		if ss.route(cmd, args) {
			return false
		}
		// Not routable: run inline, AFTER every routed op has finished,
		// so per-key ordering and reply ordering both hold (see
		// affine.go for the protocol).
		ss.drain()
	}
	ci := cmdIndexOf(cmd)
	errsBefore := ss.w.ErrorCount()
	start := time.Now()
	quit = ss.dispatchCmd(cmd, args)
	d := time.Since(start)
	ss.s.met.record(ss.stripe, ci, d, ss.w.ErrorCount()-errsBefore)
	if ss.s.slog.admits(d) {
		ss.s.slog.add(d, args)
	}
	return quit
}

// dispatchCmd executes one inline command (everything but routed affine
// ops goes through here).
func (ss *session) dispatchCmd(cmd []byte, args [][]byte) (quit bool) {
	s, w := ss.s, ss.w
	switch string(cmd) {
	case "PING":
		switch len(args) {
		case 1:
			w.WriteSimple("PONG")
		case 2:
			w.WriteBulk(args[1])
		default:
			ss.wrongArity("PING")
		}
	case "QUIT":
		w.WriteSimple("OK")
		return true
	case "GET":
		if len(args) != 2 {
			ss.wrongArity("GET")
			return
		}
		k, ok := ss.encodeKey(args[1])
		if !ok {
			return
		}
		if v, found := s.getLive(k); found {
			w.WriteBulk(v)
		} else {
			w.WriteNull()
		}
	case "SET":
		if len(args) != 3 {
			ss.wrongArity("SET")
			return
		}
		if s.persistDegraded() {
			s.misconf(w)
			return
		}
		k, ok := ss.encodeKey(args[1])
		if !ok {
			return
		}
		// args[2] is arena-backed and dies with this command; Detach
		// copies out the one slice that outlives it (the stored value).
		// Map update and AOF record stay on one side of any dump
		// rotation (the gate); the AOF append itself copies args into
		// its own buffer synchronously, so arena-backed keys are safe to
		// pass through.
		v := resp.Detach(args[2])
		s.gate.RLock()
		// TTL cleared BEFORE the store (SET discards any deadline): a
		// concurrent purge that loads the fresh value then re-checks the
		// arming finds it gone and aborts — see expiry.go.
		s.clearTTL(k)
		s.db.Store(k, v)
		s.appendMutation(args...)
		s.gate.RUnlock()
		w.WriteSimple("OK")
	case "DEL":
		if len(args) < 2 {
			ss.wrongArity("DEL")
			return
		}
		if s.persistDegraded() {
			s.misconf(w)
			return
		}
		// Validate every key before the first delete: an invalid key
		// mid-batch must fail the command without having half-applied it.
		ks, ok := ss.encodeKeys(args[1:])
		if !ok {
			return
		}
		n := int64(0)
		s.gate.RLock()
		for _, k := range ks {
			// Capture the arming BEFORE the delete so the removal is
			// conditional on it: a SETEX racing in after the delete
			// installs a fresh arming this DEL must not clobber.
			e, hadTTL := s.exp.Lookup(k)
			if s.db.Delete(k) {
				n++
			}
			if hadTTL {
				s.exp.Remove(k, e)
			}
		}
		if n > 0 {
			// Replaying a DEL of the keys that were already absent is a
			// no-op, so the whole command is one record.
			s.appendMutation(args...)
		}
		s.gate.RUnlock()
		w.WriteInt(n)
	case "EXISTS":
		if len(args) < 2 {
			ss.wrongArity("EXISTS")
			return
		}
		ks, ok := ss.encodeKeys(args[1:])
		if !ok {
			return
		}
		n := int64(0)
		for _, k := range ks {
			if s.existsLive(k) {
				n++
			}
		}
		w.WriteInt(n)
	case "MGET":
		if len(args) < 2 {
			ss.wrongArity("MGET")
			return
		}
		// Validate every key before emitting the array header: a key
		// error halfway through an array reply would corrupt the stream.
		ks, ok := ss.encodeKeys(args[1:])
		if !ok {
			return
		}
		// Replies go straight into the connection writer — no
		// intermediate value slice; the stored values are never copied.
		w.WriteArrayHeader(len(ks))
		for _, k := range ks {
			if v, found := s.getLive(k); found {
				w.WriteBulk(v)
			} else {
				w.WriteNull()
			}
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			ss.wrongArity("MSET")
			return
		}
		if s.persistDegraded() {
			s.misconf(w)
			return
		}
		ks := ss.ks[:0]
		for i := 1; i < len(args); i += 2 {
			k, ok := ss.encodeKey(args[i])
			if !ok {
				return
			}
			ks = append(ks, k)
		}
		ss.ks = ks
		// Each Store is individually linearizable; the batch is not
		// atomic as a whole (the trie has no multi-key transaction), but
		// the pre-validation above means it either starts with every key
		// accepted or not at all. Values outlive the arena: detach each.
		s.gate.RLock()
		for i, k := range ks {
			args[2+2*i] = resp.Detach(args[2+2*i])
			s.clearTTL(k)
			s.db.Store(k, args[2+2*i])
		}
		s.appendMutation(args...)
		s.gate.RUnlock()
		w.WriteSimple("OK")
	case "DBSIZE":
		if len(args) != 1 {
			ss.wrongArity("DBSIZE")
			return
		}
		w.WriteInt(int64(s.db.Len()))
	case "SCAN":
		ss.scan(args)
	case "RENAME":
		ss.rename(args, false)
	case "RENAMESTRICT":
		ss.rename(args, true)
	case "EXPIRE":
		ss.expireCmd(args, 1000, false)
	case "PEXPIRE":
		ss.expireCmd(args, 1, false)
	case "EXPIREAT":
		ss.expireCmd(args, 1000, true)
	case "PEXPIREAT":
		ss.expireCmd(args, 1, true)
	case "TTL":
		ss.ttlCmd(args, false)
	case "PTTL":
		ss.ttlCmd(args, true)
	case "PERSIST":
		ss.persistCmd(args)
	case "SETEX":
		ss.setex(args)
	case "GETEX":
		ss.getex(args)
	case "SAVE", "BGSAVE":
		if len(args) != 1 {
			ss.wrongArity(string(args[0]))
			return
		}
		if s.pst == nil {
			w.WriteError("ERR persistence is disabled (start nbtried with -dir)")
			return
		}
		bg := string(args[0]) == "BGSAVE"
		if err := s.pst.save(bg); err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		if bg {
			w.WriteSimple("Background saving started")
		} else {
			w.WriteSimple("OK")
		}
	case "LASTSAVE":
		if len(args) != 1 {
			ss.wrongArity("LASTSAVE")
			return
		}
		if s.pst == nil {
			w.WriteInt(0)
			return
		}
		w.WriteInt(s.pst.lastSave.Load())
	case "INFO":
		switch len(args) {
		case 1:
			w.WriteBulkString(s.infoText(""))
		case 2:
			// Redis semantics: INFO <section> returns only that section;
			// an unknown section name returns an empty bulk. INFO is cold,
			// so lowering the argument may allocate freely.
			w.WriteBulkString(s.infoText(strings.ToLower(string(args[1]))))
		default:
			ss.wrongArity("INFO")
		}
	case "SLOWLOG":
		ss.slowlogCmd(args)
	default:
		// %q, not %s: args[0] is raw client bytes and a bare CR/LF would
		// split the RESP reply stream.
		w.WriteError(fmt.Sprintf("ERR unknown command %q", args[0]))
	}
	return false
}

// scanCursor is one open SCAN: a frozen O(1) snapshot of the map plus
// the trie key the next page starts from.
type scanCursor struct {
	snap *nbtrie.ShardedMapSnapshot[[]byte]
	next uint64
}

// scan implements SCAN cursor [COUNT n], backed by the engine's O(1)
// snapshots: SCAN 0 freezes a snapshot and every later page of that
// cursor walks the SAME frozen keyspace in ascending key order. A full
// cursor walk is therefore a consistent cut — every key in the snapshot
// exactly once, no duplicates, no skips, and no concurrent mutation
// visible mid-scan (strictly stronger than Redis's guarantee; see
// DESIGN.md §8). The wire cursor is an opaque server-assigned id, not a
// resume key.
//
// Cursors live in a bounded table; the oldest is evicted when it fills,
// and a SCAN with an unknown/evicted id terminates with cursor 0 and an
// empty page — the shape Redis clients already handle for an exhausted
// scan. Snapshots are reclaimed by GC when their cursor is dropped.
func (ss *session) scan(args [][]byte) {
	s, w := ss.s, ss.w
	if len(args) != 2 && len(args) != 4 {
		ss.wrongArity("SCAN")
		return
	}
	cursor, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		w.WriteError("ERR invalid cursor")
		return
	}
	count := s.cfg.ScanDefaultCount
	if len(args) == 4 {
		// Reusing the command-word scratch is safe here: dispatch's
		// switch has already consumed it by the time an arm runs.
		if string(ss.upper(args[2])) != "COUNT" {
			w.WriteError(fmt.Sprintf("ERR syntax error: expected COUNT, got %q", args[2]))
			return
		}
		c, err := strconv.Atoi(string(args[3]))
		if err != nil || c < 1 {
			w.WriteError("ERR COUNT must be a positive integer")
			return
		}
		// Clamp to the resolved array limit before sizing anything: an
		// unclamped client COUNT would drive the page allocation (and
		// the reply array) arbitrarily large.
		if c > s.cfg.Limits.MaxArrayLen {
			c = s.cfg.Limits.MaxArrayLen
		}
		count = c
	}

	var sc *scanCursor
	if cursor == 0 {
		sc = &scanCursor{snap: s.db.Snapshot()}
	} else {
		s.scanMu.Lock()
		sc = s.scans[cursor]
		delete(s.scans, cursor) // re-registered below if the walk continues
		s.scanMu.Unlock()
		if sc == nil {
			// Unknown or evicted: terminate the client's loop cleanly.
			w.WriteArrayHeader(2)
			w.WriteBulk([]byte("0"))
			w.WriteArrayHeader(0)
			return
		}
	}

	keys := make([][]byte, 0, count)
	more := false
	for k := range sc.snap.Ascend(sc.next) {
		if len(keys) == count {
			sc.next = k // the first key of the next page
			more = true
			break
		}
		// Lazy expiry applies to SCAN too: a key whose deadline has
		// passed since the snapshot froze is skipped (and purged from
		// the live map, not the frozen cut).
		if s.expireIfDue(k) {
			continue
		}
		keys = append(keys, s.keyer.Decode(k))
	}

	var id uint64
	if more {
		s.scanMu.Lock()
		id = s.scanNext
		s.scanNext++
		s.scans[id] = sc
		if len(s.scans) > s.cfg.MaxScanCursors {
			oldest := id
			for other := range s.scans {
				if other < oldest {
					oldest = other
				}
			}
			delete(s.scans, oldest)
		}
		s.scanMu.Unlock()
	}

	w.WriteArrayHeader(2)
	w.WriteBulk(strconv.AppendUint(nil, id, 10))
	w.WriteArrayHeader(len(keys))
	for _, key := range keys {
		w.WriteBulk(key)
	}
}

// rename implements RENAME old new (and its strict variant,
// RENAMESTRICT). Same-shard pairs are always the paper's atomic Replace
// — ShardedMap.MoveKey routes them through ReplaceKey, one
// linearization point moving the value from old to new. Cross-shard
// pairs diverge:
//
//   - RENAME runs the documented two-phase MoveKey (DESIGN.md §12):
//     insert at the destination, then delete the source. Not atomic — a
//     concurrent reader can briefly see both keys — but never neither,
//     and the in-flight marker makes the move recoverable. This is
//     MOVE-style semantics, announced rather than faked atomicity.
//   - RENAMESTRICT preserves the old contract: cross-shard pairs are
//     refused with -CROSSSHARD (mirroring Redis Cluster's -CROSSSLOT),
//     for clients that must know their rename was one linearization
//     point.
//
// In both variants an existing destination is an error, not an
// overwrite: Replace and MoveKey are insert-if-absent by definition,
// and silently deleting the destination first would need a second
// linearization point. A deadline on the source travels with the value
// (re-armed on the destination after the move, same loose-consistency
// window as the move itself).
func (ss *session) rename(args [][]byte, strict bool) {
	s, w := ss.s, ss.w
	cmdName := "RENAME"
	if strict {
		cmdName = "RENAMESTRICT"
	}
	if len(args) != 3 {
		ss.wrongArity(cmdName)
		return
	}
	// Refuse like every other mutation while the AOF is degraded; the
	// rename-to-self fast path below mutates nothing but gets the same
	// refusal for predictability.
	if s.persistDegraded() {
		s.misconf(w)
		return
	}
	old, ok := ss.encodeKey(args[1])
	if !ok {
		return
	}
	new, ok := ss.encodeKey(args[2])
	if !ok {
		return
	}
	if old == new {
		// Degenerate rename-to-self: Replace refuses (old != new is part
		// of its contract), but "key exists" would be a misleading
		// error. Match Redis: succeed iff the key exists.
		if s.existsLive(old) {
			w.WriteSimple("OK")
		} else {
			w.WriteError("ERR no such key")
		}
		return
	}
	// An expired-but-unpurged source must rename as absent.
	if s.expireIfDue(old) {
		w.WriteError("ERR no such key")
		return
	}
	// And an expired-but-unpurged destination must not block the move:
	// it reads as absent everywhere else, so "destination key exists"
	// would be a lie. Purge it before attempting the move.
	s.expireIfDue(new)
	// The source's arming, captured before the move so it can travel:
	// conditional removal afterwards, same discipline as DEL.
	oldArming, hadTTL := s.exp.Lookup(old)

	var moved bool
	var err error
	s.gate.RLock()
	if strict {
		moved, err = s.db.ReplaceKey(old, new)
	} else {
		moved, err = s.db.MoveKey(old, new)
	}
	if moved {
		if hadTTL {
			// Re-arm the destination, then drop the source's arming.
			// Readers can see the destination without its TTL for the
			// instant between — the index's documented loose window.
			s.exp.Set(new, oldArming.DeadlineMS)
			s.exp.Remove(old, oldArming)
		}
		// One AOF record for the move; replay re-expresses it as
		// load+delete+store (+ deadline move), which is safe
		// single-threaded (recovery).
		s.appendMutation([]byte("RENAME"), args[1], args[2])
	}
	s.gate.RUnlock()
	if err != nil {
		switch {
		case errors.Is(err, nbtrie.ErrCrossShard):
			// Strict mode only. -CROSSSHARD mirrors Redis Cluster's
			// -CROSSSLOT: the operation is well-formed but these two keys
			// cannot be moved atomically; plain RENAME moves them with
			// two-phase (non-atomic) semantics instead.
			w.WriteError(fmt.Sprintf(
				"CROSSSHARD keys map to different shards (%d-shard map); atomic RENAMESTRICT is per-shard — use RENAME for a two-phase cross-shard move, see DESIGN.md §12: %v",
				s.db.Shards(), err))
		case errors.Is(err, nbtrie.ErrMoveBusy):
			w.WriteError("ERR cross-shard move of this key already in flight; retry")
		default:
			w.WriteError("ERR " + err.Error())
		}
		return
	}
	if moved {
		w.WriteSimple("OK")
		return
	}
	// Distinguish the two failure modes for the error message only;
	// the check is best-effort under concurrency, the refusal itself
	// was decided atomically by Replace/MoveKey.
	if !s.db.Contains(old) {
		w.WriteError("ERR no such key")
	} else {
		w.WriteError("ERR destination key exists (RENAME is insert-if-absent, like the trie's atomic Replace; DEL it first to overwrite)")
	}
}

// encodeKey maps a wire key through the keyer, answering a RESP error
// and returning ok=false when the key is not representable.
func (ss *session) encodeKey(key []byte) (uint64, bool) {
	k, err := ss.s.keyer.Encode(key)
	if err != nil {
		ss.w.WriteError("ERR " + err.Error())
		return 0, false
	}
	return k, true
}

// encodeKeys maps a batch of wire keys into the session's reusable
// scratch, failing the whole command on the first unrepresentable one
// *before* the caller acts on any — so a multi-key command is never
// half-applied and never emits a partial array reply. The returned
// slice is valid until the next encodeKeys/MSET on this session.
func (ss *session) encodeKeys(keys [][]byte) ([]uint64, bool) {
	ks := ss.ks[:0]
	for _, key := range keys {
		k, ok := ss.encodeKey(key)
		if !ok {
			return nil, false
		}
		ks = append(ks, k)
	}
	ss.ks = ks
	return ks, true
}

// wrongArity is the standard Redis arity error.
func (ss *session) wrongArity(cmd string) {
	ss.w.WriteError(fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd))
}

// upper returns b upper-cased into the session's reused scratch —
// allocation-free once the scratch has grown to the longest command
// word, and it leaves b intact (error replies echo the command as the
// client typed it). The returned slice is valid until the next call.
func (ss *session) upper(b []byte) []byte {
	ss.cmdBuf = append(ss.cmdBuf[:0], b...)
	upperInPlace(ss.cmdBuf)
	return ss.cmdBuf
}

// upperInPlace upper-cases ASCII in place (only ever applied to the
// session-owned scratch, never to caller bytes).
func upperInPlace(b []byte) {
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - ('a' - 'A')
		}
	}
}

// toUpper returns an upper-cased copy only when needed; replay-side
// callers (applyRecord) that must not mutate shared test fixtures keep
// using it.
func toUpper(b []byte) []byte {
	if i := bytes.IndexFunc(b, func(r rune) bool { return 'a' <= r && r <= 'z' }); i < 0 {
		return b
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

package server

import (
	"bytes"
	"fmt"
	"strconv"

	"nbtrie"
	"nbtrie/internal/resp"
)

// dispatch answers one command into w (the caller flushes). It returns
// true when the connection should close (QUIT). Unknown commands and
// arity/key errors are ordinary RESP errors: the connection survives,
// only protocol-level framing errors are fatal (handled by the caller).
func (s *Server) dispatch(w *resp.Writer, args [][]byte) (quit bool) {
	cmd := string(toUpper(args[0]))
	switch cmd {
	case "PING":
		switch len(args) {
		case 1:
			w.WriteSimple("PONG")
		case 2:
			w.WriteBulk(args[1])
		default:
			s.wrongArity(w, cmd)
		}
	case "QUIT":
		w.WriteSimple("OK")
		return true
	case "GET":
		if len(args) != 2 {
			s.wrongArity(w, cmd)
			return
		}
		k, ok := s.encodeKey(w, args[1])
		if !ok {
			return
		}
		if v, found := s.db.Load(k); found {
			w.WriteBulk(v)
		} else {
			w.WriteNull()
		}
	case "SET":
		if len(args) != 3 {
			s.wrongArity(w, cmd)
			return
		}
		if s.persistDegraded() {
			s.misconf(w)
			return
		}
		k, ok := s.encodeKey(w, args[1])
		if !ok {
			return
		}
		// args[2] is a fresh slice from the RESP reader; storing it
		// directly is safe (nothing else aliases it). Map update and
		// AOF record stay on one side of any dump rotation (the gate).
		s.gate.RLock()
		s.db.Store(k, args[2])
		s.appendMutation(args...)
		s.gate.RUnlock()
		w.WriteSimple("OK")
	case "DEL":
		if len(args) < 2 {
			s.wrongArity(w, cmd)
			return
		}
		if s.persistDegraded() {
			s.misconf(w)
			return
		}
		// Validate every key before the first delete: an invalid key
		// mid-batch must fail the command without having half-applied it.
		ks, ok := s.encodeKeys(w, args[1:])
		if !ok {
			return
		}
		n := int64(0)
		s.gate.RLock()
		for _, k := range ks {
			if s.db.Delete(k) {
				n++
			}
		}
		if n > 0 {
			// Replaying a DEL of the keys that were already absent is a
			// no-op, so the whole command is one record.
			s.appendMutation(args...)
		}
		s.gate.RUnlock()
		w.WriteInt(n)
	case "EXISTS":
		if len(args) < 2 {
			s.wrongArity(w, cmd)
			return
		}
		ks, ok := s.encodeKeys(w, args[1:])
		if !ok {
			return
		}
		n := int64(0)
		for _, k := range ks {
			if s.db.Contains(k) {
				n++
			}
		}
		w.WriteInt(n)
	case "MGET":
		if len(args) < 2 {
			s.wrongArity(w, cmd)
			return
		}
		// Validate every key before emitting the array header: a key
		// error halfway through an array reply would corrupt the stream.
		ks, ok := s.encodeKeys(w, args[1:])
		if !ok {
			return
		}
		w.WriteArrayHeader(len(ks))
		for _, k := range ks {
			if v, found := s.db.Load(k); found {
				w.WriteBulk(v)
			} else {
				w.WriteNull()
			}
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			s.wrongArity(w, cmd)
			return
		}
		if s.persistDegraded() {
			s.misconf(w)
			return
		}
		ks := make([]uint64, 0, (len(args)-1)/2)
		for i := 1; i < len(args); i += 2 {
			k, ok := s.encodeKey(w, args[i])
			if !ok {
				return
			}
			ks = append(ks, k)
		}
		// Each Store is individually linearizable; the batch is not
		// atomic as a whole (the trie has no multi-key transaction), but
		// the pre-validation above means it either starts with every key
		// accepted or not at all.
		s.gate.RLock()
		for i, k := range ks {
			s.db.Store(k, args[2+2*i])
		}
		s.appendMutation(args...)
		s.gate.RUnlock()
		w.WriteSimple("OK")
	case "DBSIZE":
		if len(args) != 1 {
			s.wrongArity(w, cmd)
			return
		}
		w.WriteInt(int64(s.db.Len()))
	case "SCAN":
		s.scan(w, args)
	case "RENAME":
		s.rename(w, args)
	case "SAVE", "BGSAVE":
		if len(args) != 1 {
			s.wrongArity(w, cmd)
			return
		}
		if s.pst == nil {
			w.WriteError("ERR persistence is disabled (start nbtried with -dir)")
			return
		}
		if err := s.pst.save(cmd == "BGSAVE"); err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		if cmd == "BGSAVE" {
			w.WriteSimple("Background saving started")
		} else {
			w.WriteSimple("OK")
		}
	case "LASTSAVE":
		if len(args) != 1 {
			s.wrongArity(w, cmd)
			return
		}
		if s.pst == nil {
			w.WriteInt(0)
			return
		}
		w.WriteInt(s.pst.lastSave.Load())
	case "INFO":
		if len(args) > 2 {
			s.wrongArity(w, cmd)
			return
		}
		w.WriteBulkString(s.infoText())
	default:
		// %q, not %s: args[0] is raw client bytes and a bare CR/LF would
		// split the RESP reply stream.
		w.WriteError(fmt.Sprintf("ERR unknown command %q", args[0]))
	}
	return false
}

// scanCursor is one open SCAN: a frozen O(1) snapshot of the map plus
// the trie key the next page starts from.
type scanCursor struct {
	snap *nbtrie.ShardedMapSnapshot[[]byte]
	next uint64
}

// scan implements SCAN cursor [COUNT n], backed by the engine's O(1)
// snapshots: SCAN 0 freezes a snapshot and every later page of that
// cursor walks the SAME frozen keyspace in ascending key order. A full
// cursor walk is therefore a consistent cut — every key in the snapshot
// exactly once, no duplicates, no skips, and no concurrent mutation
// visible mid-scan (strictly stronger than Redis's guarantee; see
// DESIGN.md §8). The wire cursor is an opaque server-assigned id, not a
// resume key.
//
// Cursors live in a bounded table; the oldest is evicted when it fills,
// and a SCAN with an unknown/evicted id terminates with cursor 0 and an
// empty page — the shape Redis clients already handle for an exhausted
// scan. Snapshots are reclaimed by GC when their cursor is dropped.
func (s *Server) scan(w *resp.Writer, args [][]byte) {
	if len(args) != 2 && len(args) != 4 {
		s.wrongArity(w, "SCAN")
		return
	}
	cursor, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		w.WriteError("ERR invalid cursor")
		return
	}
	count := s.cfg.ScanDefaultCount
	if len(args) == 4 {
		if string(toUpper(args[2])) != "COUNT" {
			w.WriteError(fmt.Sprintf("ERR syntax error: expected COUNT, got %q", args[2]))
			return
		}
		c, err := strconv.Atoi(string(args[3]))
		if err != nil || c < 1 {
			w.WriteError("ERR COUNT must be a positive integer")
			return
		}
		// Clamp to the resolved array limit before sizing anything: an
		// unclamped client COUNT would drive the page allocation (and
		// the reply array) arbitrarily large.
		if c > s.cfg.Limits.MaxArrayLen {
			c = s.cfg.Limits.MaxArrayLen
		}
		count = c
	}

	var sc *scanCursor
	if cursor == 0 {
		sc = &scanCursor{snap: s.db.Snapshot()}
	} else {
		s.scanMu.Lock()
		sc = s.scans[cursor]
		delete(s.scans, cursor) // re-registered below if the walk continues
		s.scanMu.Unlock()
		if sc == nil {
			// Unknown or evicted: terminate the client's loop cleanly.
			w.WriteArrayHeader(2)
			w.WriteBulk([]byte("0"))
			w.WriteArrayHeader(0)
			return
		}
	}

	keys := make([][]byte, 0, count)
	more := false
	for k := range sc.snap.Ascend(sc.next) {
		if len(keys) == count {
			sc.next = k // the first key of the next page
			more = true
			break
		}
		keys = append(keys, s.keyer.Decode(k))
	}

	var id uint64
	if more {
		s.scanMu.Lock()
		id = s.scanNext
		s.scanNext++
		s.scans[id] = sc
		if len(s.scans) > s.cfg.MaxScanCursors {
			oldest := id
			for other := range s.scans {
				if other < oldest {
					oldest = other
				}
			}
			delete(s.scans, oldest)
		}
		s.scanMu.Unlock()
	}

	w.WriteArrayHeader(2)
	w.WriteBulk(strconv.AppendUint(nil, id, 10))
	w.WriteArrayHeader(len(keys))
	for _, key := range keys {
		w.WriteBulk(key)
	}
}

// rename implements RENAME old new as the paper's atomic Replace.
// Same-shard pairs get ShardedMap.ReplaceKey: one linearization point
// moves the value from old to new. Cross-shard pairs are refused with
// -CROSSSHARD (the sharded trie's documented contract: replace
// atomicity is per shard, and the server will not fake it with a
// non-atomic delete+insert). Unlike Redis, an existing destination is
// an error, not an overwrite: Replace is insert-if-absent by
// definition, and silently deleting the destination first would need a
// second linearization point.
func (s *Server) rename(w *resp.Writer, args [][]byte) {
	if len(args) != 3 {
		s.wrongArity(w, "RENAME")
		return
	}
	// Refuse like every other mutation while the AOF is degraded; the
	// rename-to-self fast path below mutates nothing but gets the same
	// refusal for predictability.
	if s.persistDegraded() {
		s.misconf(w)
		return
	}
	old, ok := s.encodeKey(w, args[1])
	if !ok {
		return
	}
	new, ok := s.encodeKey(w, args[2])
	if !ok {
		return
	}
	if old == new {
		// Degenerate rename-to-self: Replace refuses (old != new is part
		// of its contract), but "key exists" would be a misleading
		// error. Match Redis: succeed iff the key exists.
		if s.db.Contains(old) {
			w.WriteSimple("OK")
		} else {
			w.WriteError("ERR no such key")
		}
		return
	}
	s.gate.RLock()
	swapped, err := s.db.ReplaceKey(old, new)
	if swapped {
		// One AOF record for the atomic move; replay re-expresses it as
		// load+delete+store, which is safe single-threaded (recovery).
		s.appendMutation(args...)
	}
	s.gate.RUnlock()
	if err != nil {
		// ErrCrossShard. -CROSSSHARD mirrors Redis Cluster's -CROSSSLOT:
		// the operation is well-formed but these two keys cannot be
		// moved atomically; the client may retry with same-shard keys
		// or compose DEL+SET itself, accepting the intermediate states.
		w.WriteError(fmt.Sprintf(
			"CROSSSHARD keys map to different shards (%d-shard map); atomic RENAME is per-shard — see DESIGN.md §8: %v",
			s.db.Shards(), err))
		return
	}
	if swapped {
		w.WriteSimple("OK")
		return
	}
	// Distinguish the two failure modes for the error message only;
	// the check is best-effort under concurrency, the refusal itself
	// was decided atomically by Replace.
	if !s.db.Contains(old) {
		w.WriteError("ERR no such key")
	} else {
		w.WriteError("ERR destination key exists (RENAME is the trie's atomic Replace: insert-if-absent; DEL it first to overwrite)")
	}
}

// encodeKey maps a wire key through the keyer, answering a RESP error
// and returning ok=false when the key is not representable.
func (s *Server) encodeKey(w *resp.Writer, key []byte) (uint64, bool) {
	k, err := s.keyer.Encode(key)
	if err != nil {
		w.WriteError("ERR " + err.Error())
		return 0, false
	}
	return k, true
}

// encodeKeys maps a batch of wire keys, failing the whole command on
// the first unrepresentable one *before* the caller acts on any — so a
// multi-key command is never half-applied and never emits a partial
// array reply.
func (s *Server) encodeKeys(w *resp.Writer, keys [][]byte) ([]uint64, bool) {
	ks := make([]uint64, 0, len(keys))
	for _, key := range keys {
		k, ok := s.encodeKey(w, key)
		if !ok {
			return nil, false
		}
		ks = append(ks, k)
	}
	return ks, true
}

// wrongArity is the standard Redis arity error.
func (s *Server) wrongArity(w *resp.Writer, cmd string) {
	w.WriteError(fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd))
}

// toUpper upper-cases ASCII in place-ish (fresh slice only when
// needed); command words are short so this stays cheap.
func toUpper(b []byte) []byte {
	if i := bytes.IndexFunc(b, func(r rune) bool { return 'a' <= r && r <= 'z' }); i < 0 {
		return b
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

package server

import (
	"bytes"
	"fmt"
	"strconv"

	"nbtrie/internal/resp"
)

// dispatch answers one command into w (the caller flushes). It returns
// true when the connection should close (QUIT). Unknown commands and
// arity/key errors are ordinary RESP errors: the connection survives,
// only protocol-level framing errors are fatal (handled by the caller).
func (s *Server) dispatch(w *resp.Writer, args [][]byte) (quit bool) {
	cmd := string(toUpper(args[0]))
	switch cmd {
	case "PING":
		switch len(args) {
		case 1:
			w.WriteSimple("PONG")
		case 2:
			w.WriteBulk(args[1])
		default:
			s.wrongArity(w, cmd)
		}
	case "QUIT":
		w.WriteSimple("OK")
		return true
	case "GET":
		if len(args) != 2 {
			s.wrongArity(w, cmd)
			return
		}
		k, ok := s.encodeKey(w, args[1])
		if !ok {
			return
		}
		if v, found := s.db.Load(k); found {
			w.WriteBulk(v)
		} else {
			w.WriteNull()
		}
	case "SET":
		if len(args) != 3 {
			s.wrongArity(w, cmd)
			return
		}
		k, ok := s.encodeKey(w, args[1])
		if !ok {
			return
		}
		// args[2] is a fresh slice from the RESP reader; storing it
		// directly is safe (nothing else aliases it).
		s.db.Store(k, args[2])
		w.WriteSimple("OK")
	case "DEL":
		if len(args) < 2 {
			s.wrongArity(w, cmd)
			return
		}
		// Validate every key before the first delete: an invalid key
		// mid-batch must fail the command without having half-applied it.
		ks, ok := s.encodeKeys(w, args[1:])
		if !ok {
			return
		}
		n := int64(0)
		for _, k := range ks {
			if s.db.Delete(k) {
				n++
			}
		}
		w.WriteInt(n)
	case "EXISTS":
		if len(args) < 2 {
			s.wrongArity(w, cmd)
			return
		}
		ks, ok := s.encodeKeys(w, args[1:])
		if !ok {
			return
		}
		n := int64(0)
		for _, k := range ks {
			if s.db.Contains(k) {
				n++
			}
		}
		w.WriteInt(n)
	case "MGET":
		if len(args) < 2 {
			s.wrongArity(w, cmd)
			return
		}
		// Validate every key before emitting the array header: a key
		// error halfway through an array reply would corrupt the stream.
		ks, ok := s.encodeKeys(w, args[1:])
		if !ok {
			return
		}
		w.WriteArrayHeader(len(ks))
		for _, k := range ks {
			if v, found := s.db.Load(k); found {
				w.WriteBulk(v)
			} else {
				w.WriteNull()
			}
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			s.wrongArity(w, cmd)
			return
		}
		ks := make([]uint64, 0, (len(args)-1)/2)
		for i := 1; i < len(args); i += 2 {
			k, ok := s.encodeKey(w, args[i])
			if !ok {
				return
			}
			ks = append(ks, k)
		}
		// Each Store is individually linearizable; the batch is not
		// atomic as a whole (the trie has no multi-key transaction), but
		// the pre-validation above means it either starts with every key
		// accepted or not at all.
		for i, k := range ks {
			s.db.Store(k, args[2+2*i])
		}
		w.WriteSimple("OK")
	case "DBSIZE":
		if len(args) != 1 {
			s.wrongArity(w, cmd)
			return
		}
		w.WriteInt(int64(s.db.Len()))
	case "SCAN":
		s.scan(w, args)
	case "RENAME":
		s.rename(w, args)
	case "INFO":
		if len(args) > 2 {
			s.wrongArity(w, cmd)
			return
		}
		w.WriteBulkString(s.infoText())
	default:
		// %q, not %s: args[0] is raw client bytes and a bare CR/LF would
		// split the RESP reply stream.
		w.WriteError(fmt.Sprintf("ERR unknown command %q", args[0]))
	}
	return false
}

// scan implements SCAN cursor [COUNT n]: a stateless cursor walk over
// the trie's ascending key order. The cursor is the decimal trie key
// the next page starts from — 0 opens the scan, and the server replies
// 0 when the key space is exhausted. Because the trie iterates in key
// order and the cursor is a plain resume point, the usual Redis SCAN
// caveats shrink: every key present for the whole scan is returned
// exactly once (no duplicates, ever), and keys inserted or deleted
// concurrently may or may not appear.
func (s *Server) scan(w *resp.Writer, args [][]byte) {
	if len(args) != 2 && len(args) != 4 {
		s.wrongArity(w, "SCAN")
		return
	}
	cursor, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		w.WriteError("ERR invalid cursor")
		return
	}
	count := s.cfg.ScanDefaultCount
	if len(args) == 4 {
		if string(toUpper(args[2])) != "COUNT" {
			w.WriteError(fmt.Sprintf("ERR syntax error: expected COUNT, got %q", args[2]))
			return
		}
		c, err := strconv.Atoi(string(args[3]))
		if err != nil || c < 1 {
			w.WriteError("ERR COUNT must be a positive integer")
			return
		}
		// Clamp to the resolved array limit before sizing anything: an
		// unclamped client COUNT would drive the page allocation (and
		// the reply array) arbitrarily large.
		if c > s.cfg.Limits.MaxArrayLen {
			c = s.cfg.Limits.MaxArrayLen
		}
		count = c
	}
	keys := make([][]byte, 0, count)
	next := uint64(0)
	for k := range s.db.Ascend(cursor) {
		if len(keys) == count {
			next = k // the first key of the next page
			break
		}
		keys = append(keys, s.keyer.Decode(k))
	}
	w.WriteArrayHeader(2)
	w.WriteBulk(strconv.AppendUint(nil, next, 10))
	w.WriteArrayHeader(len(keys))
	for _, key := range keys {
		w.WriteBulk(key)
	}
}

// rename implements RENAME old new as the paper's atomic Replace.
// Same-shard pairs get ShardedMap.ReplaceKey: one linearization point
// moves the value from old to new. Cross-shard pairs are refused with
// -CROSSSHARD (the sharded trie's documented contract: replace
// atomicity is per shard, and the server will not fake it with a
// non-atomic delete+insert). Unlike Redis, an existing destination is
// an error, not an overwrite: Replace is insert-if-absent by
// definition, and silently deleting the destination first would need a
// second linearization point.
func (s *Server) rename(w *resp.Writer, args [][]byte) {
	if len(args) != 3 {
		s.wrongArity(w, "RENAME")
		return
	}
	old, ok := s.encodeKey(w, args[1])
	if !ok {
		return
	}
	new, ok := s.encodeKey(w, args[2])
	if !ok {
		return
	}
	if old == new {
		// Degenerate rename-to-self: Replace refuses (old != new is part
		// of its contract), but "key exists" would be a misleading
		// error. Match Redis: succeed iff the key exists.
		if s.db.Contains(old) {
			w.WriteSimple("OK")
		} else {
			w.WriteError("ERR no such key")
		}
		return
	}
	swapped, err := s.db.ReplaceKey(old, new)
	if err != nil {
		// ErrCrossShard. -CROSSSHARD mirrors Redis Cluster's -CROSSSLOT:
		// the operation is well-formed but these two keys cannot be
		// moved atomically; the client may retry with same-shard keys
		// or compose DEL+SET itself, accepting the intermediate states.
		w.WriteError(fmt.Sprintf(
			"CROSSSHARD keys map to different shards (%d-shard map); atomic RENAME is per-shard — see DESIGN.md §8: %v",
			s.db.Shards(), err))
		return
	}
	if swapped {
		w.WriteSimple("OK")
		return
	}
	// Distinguish the two failure modes for the error message only;
	// the check is best-effort under concurrency, the refusal itself
	// was decided atomically by Replace.
	if !s.db.Contains(old) {
		w.WriteError("ERR no such key")
	} else {
		w.WriteError("ERR destination key exists (RENAME is the trie's atomic Replace: insert-if-absent; DEL it first to overwrite)")
	}
}

// encodeKey maps a wire key through the keyer, answering a RESP error
// and returning ok=false when the key is not representable.
func (s *Server) encodeKey(w *resp.Writer, key []byte) (uint64, bool) {
	k, err := s.keyer.Encode(key)
	if err != nil {
		w.WriteError("ERR " + err.Error())
		return 0, false
	}
	return k, true
}

// encodeKeys maps a batch of wire keys, failing the whole command on
// the first unrepresentable one *before* the caller acts on any — so a
// multi-key command is never half-applied and never emits a partial
// array reply.
func (s *Server) encodeKeys(w *resp.Writer, keys [][]byte) ([]uint64, bool) {
	ks := make([]uint64, 0, len(keys))
	for _, key := range keys {
		k, ok := s.encodeKey(w, key)
		if !ok {
			return nil, false
		}
		ks = append(ks, k)
	}
	return ks, true
}

// wrongArity is the standard Redis arity error.
func (s *Server) wrongArity(w *resp.Writer, cmd string) {
	w.WriteError(fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd))
}

// toUpper upper-cases ASCII in place-ish (fresh slice only when
// needed); command words are short so this stays cheap.
func toUpper(b []byte) []byte {
	if i := bytes.IndexFunc(b, func(r rune) bool { return 'a' <= r && r <= 'z' }); i < 0 {
		return b
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

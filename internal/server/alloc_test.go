package server

import (
	"testing"
)

// Steady-state allocation pins for the full server dispatch path (wire
// parse → dispatch → reply encode), the server half of the resp-layer
// pins in internal/resp/alloc_test.go. The acceptance bars from the
// perf issue: GET/EXISTS/DEL/MGET at 0 allocs/op, SET's codec share at
// ≤ 1 (the value's copy out of the connection arena); the engine's own
// store-path allocations are pinned separately by the library
// artifacts.
func TestServerPathAllocPins(t *testing.T) {
	for _, mode := range []string{"conn", "affine"} {
		t.Run(mode, func(t *testing.T) {
			p, err := MeasureServerPathAllocs(mode, 64)
			if err != nil {
				t.Fatal(err)
			}
			pins := []struct {
				op   string
				got  float64
				want float64
			}{
				{"GET", p.Get, 0},
				{"EXISTS", p.Exists, 0},
				{"DEL", p.Del, 0},
				{"MGET", p.MGet, 0},
				{"SET codec", p.SetCodec, 1},
			}
			for _, pin := range pins {
				if pin.got > pin.want {
					t.Errorf("%s: %.1f allocs/op on the server path, pinned at %.0f", pin.op, pin.got, pin.want)
				}
			}
			// The full SET path must be exactly codec + engine: if this
			// grows, something beyond the store and the one Detach crept in.
			if p.Set < p.SetCodec {
				t.Errorf("full SET %.1f below its codec share %.1f — probe broken", p.Set, p.SetCodec)
			}
			t.Logf("%s: get=%.1f exists=%.1f del=%.1f mget=%.1f set=%.1f set_codec=%.1f",
				mode, p.Get, p.Exists, p.Del, p.MGet, p.Set, p.SetCodec)
		})
	}
}

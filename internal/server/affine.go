// Shard-affine dispatch (-dispatch=affine): instead of every connection
// goroutine calling into whatever shard its key happens to hash to —
// which puts all cores on all shards and makes contending writers share
// cache lines — each shard gets ONE worker goroutine fed by a buffered
// request ring, and connection goroutines become routers. A shard's
// trie is then mutated by exactly one goroutine in the steady state, so
// its hot nodes stay in one core's cache and the engine's CAS loops
// stop retrying (the lock-free engine is still there, unchanged — it is
// what makes mixing affine workers with inline fallback commands and
// SCAN snapshots safe without any new locking).
//
// # Protocol
//
// The connection goroutine classifies each parsed command:
//
//   - Single-key GET / SET / DEL / EXISTS with a representable key is
//     routed: an op slot from the connection's fixed ring records the
//     command and is LINKED onto a per-shard chain the connection is
//     assembling, and the connection moves on to the NEXT pipelined
//     command. Nothing crosses a goroutine boundary yet.
//   - Everything else (multi-key commands, SCAN, INFO, errors, ...)
//     runs inline on the connection goroutine — but only after a drain
//     barrier (below), so its effects and its reply are ordered after
//     every routed op.
//
// Replies must leave in command order, so routed replies are deferred:
// the connection drains at each of exactly three moments — the ring is
// full, an inline command needs to run, or the parser is about to block
// on the socket (flushBeforeRead, which is also the batch's AOF-commit
// + flush boundary). A drain hands each touched shard its whole chain
// in ONE channel send, waits for all of them (one WaitGroup per
// connection, one Done per chain), then writes the replies in ring
// order. A pipelined burst of routable commands therefore costs one
// send + one wake-up per touched shard per burst — not per command —
// which is what keeps the router/worker hand-off cheaper than the work
// it carries even for sub-microsecond GETs.
//
// # Ordering
//
// Per-key ordering is the channel's FIFO: same key → same shard → same
// ring, and the single worker executes ring order. Cross-key ordering
// within a connection is NOT preserved between routed ops (GET a may
// execute after a later SET b), which is invisible to the client: each
// reply still carries its own command's result, and any command that
// could observe cross-key ordering (MGET, MSET, SCAN, RENAME) runs
// inline behind the drain barrier. Linearizability per key is the
// engine's own guarantee, unchanged.
//
// # Durability
//
// Workers preserve the PR 6 exact-boundary invariant verbatim: a worker
// holds gate.RLock across map-update + AOF-append for each mutating op,
// so a dump rotation still quiesces every mutator (conn-inline AND
// affine workers) at one instant. Two consequences:
//
//   - The op must own bytes that survive until the worker runs: the SET
//     value is detached at routing time (the same single copy conn mode
//     pays), and the AOF key is re-rendered from the trie key with
//     Keyer.DecodeAppend into per-op scratch — valid because keyers are
//     bijective on their image, and allocation-free once warm.
//   - Reply release still implies durability: routed replies are
//     written only after drain, drain happens-before the batch flush,
//     and the flush reaches the socket through commitBeforeWrite's
//     commitAOF. An append that failed leaves the AOF's buffered writer
//     with a sticky error, the commit fails, and the batch's replies —
//     including any "+OK" a worker queued — die unflushed with the
//     connection.
package server

import (
	"sync"
	"time"

	"nbtrie/internal/resp"
)

// affineBurstMax is the per-connection op ring size: the most routed
// commands in flight before the connection must reassemble replies.
// Big enough to cover a deep pipelined burst, small enough that the
// ring (and its reply data) stays cache-resident.
const affineBurstMax = 64

// affineRingDepth is each shard channel's buffer, in CHAINS (each entry
// is one connection's whole per-shard chain for one drain window, so a
// connection occupies at most one entry per shard at a time): enough
// for many connections to burst without blocking the routers.
const affineRingDepth = 4 * affineBurstMax

// wgBarrier is the per-connection completion barrier workers signal on.
type wgBarrier = sync.WaitGroup

const (
	opGet = iota
	opSet
	opDel
	opExists
)

var (
	cmdSET = []byte("SET")
	cmdDEL = []byte("DEL")
)

// affineOp is one routed command. Slots live in a fixed per-connection
// ring (stable addresses) and are reused burst after burst; keyBuf and
// argsBuf are per-slot scratch, so a warm steady state routes GET/DEL/
// EXISTS with zero allocations and SET with the value's one Detach.
type affineOp struct {
	kind  int
	k     uint64
	val   []byte // detached SET value (op owns it until the map does)
	v     []byte // GET result
	found bool
	next  *affineOp // same connection, same shard, same drain window

	keyBuf  []byte    // worker scratch: wire key re-rendered for the AOF
	argsBuf [3][]byte // worker scratch: AOF record headers
	done    *wgBarrier

	// start is stamped at routing time; the drain loop diffs it when the
	// reply is written, so a routed op's recorded latency covers queueing
	// plus execution — what the client actually waited, minus the wire.
	start time.Time
}

// affineDispatcher owns the per-shard workers and their rings.
type affineDispatcher struct {
	s     *Server
	chans []chan *affineOp
	wg    sync.WaitGroup
	once  sync.Once
}

func newAffineDispatcher(s *Server) *affineDispatcher {
	d := &affineDispatcher{s: s, chans: make([]chan *affineOp, s.db.Shards())}
	for i := range d.chans {
		d.chans[i] = make(chan *affineOp, affineRingDepth)
		d.wg.Add(1)
		go d.run(d.chans[i])
	}
	return d
}

// stop closes the rings and waits for the workers. Callers guarantee no
// router is live (Server.Close waits for the connection goroutines
// first), so closing cannot race a send.
func (d *affineDispatcher) stop() {
	d.once.Do(func() {
		for _, ch := range d.chans {
			close(ch)
		}
		d.wg.Wait()
	})
}

// run is one shard's worker loop: the only goroutine that mutates this
// shard in the steady state (inline fallback commands still can — the
// engine is lock-free, affinity is a performance property, not a
// correctness one).
func (d *affineDispatcher) run(ch chan *affineOp) {
	defer d.wg.Done()
	s := d.s
	for head := range ch {
		// Each receive is one connection's chain for one drain window,
		// executed in routing order (per-key FIFO). The single Done after
		// the walk publishes every op's results at once: the worker's
		// writes happen-before the Done in program order, and the router
		// reads them only after wg.Wait.
		for op := head; op != nil; op = op.next {
			switch op.kind {
			case opGet:
				// Same lazy-expiry check as conn-mode getLive: a key past
				// its deadline reads as absent (and is purged en passant).
				if s.expireIfDue(op.k) {
					op.v, op.found = nil, false
				} else {
					op.v, op.found = s.db.Load(op.k)
				}
			case opExists:
				op.found = !s.expireIfDue(op.k) && s.db.Contains(op.k)
			case opSet:
				// Same gate discipline as conn-mode dispatch: map update and
				// AOF record on one side of any rotation, and the TTL cleared
				// BEFORE the store (the SET↔purge ordering protocol in
				// expiry.go).
				s.gate.RLock()
				s.clearTTL(op.k)
				s.db.Store(op.k, op.val)
				op.keyBuf = s.keyer.DecodeAppend(op.keyBuf[:0], op.k)
				op.argsBuf[0], op.argsBuf[1], op.argsBuf[2] = cmdSET, op.keyBuf, op.val
				s.appendMutation(op.argsBuf[:3]...)
				s.gate.RUnlock()
			case opDel:
				s.gate.RLock()
				// Capture the arming before the delete, remove it
				// conditionally after — same discipline as conn-mode DEL
				// (an unconditional clear could clobber a racing SETEX's
				// fresh arming).
				e, hadTTL := s.exp.Lookup(op.k)
				op.found = s.db.Delete(op.k)
				if hadTTL {
					s.exp.Remove(op.k, e)
				}
				if op.found {
					op.keyBuf = s.keyer.DecodeAppend(op.keyBuf[:0], op.k)
					op.argsBuf[0], op.argsBuf[1] = cmdDEL, op.keyBuf
					s.appendMutation(op.argsBuf[:2]...)
				}
				s.gate.RUnlock()
			}
		}
		head.done.Done()
	}
}

// route classifies the upcased command word and, when it is a routable
// single-key command, fills an op slot and links it onto the owning
// shard's chain (handed to the worker at the next drain). false means
// the caller must drain and dispatch inline — either the command is not
// routable, or it needs an error/misconf reply that inline dispatch
// produces identically.
func (ss *session) route(cmd []byte, args [][]byte) bool {
	var kind int
	switch string(cmd) {
	case "GET":
		if len(args) != 2 {
			return false
		}
		kind = opGet
	case "EXISTS":
		if len(args) != 2 {
			return false
		}
		kind = opExists
	case "SET":
		if len(args) != 3 {
			return false
		}
		kind = opSet
	case "DEL":
		if len(args) != 2 {
			return false
		}
		kind = opDel
	default:
		return false
	}
	s := ss.s
	if (kind == opSet || kind == opDel) && s.persistDegraded() {
		return false // inline path answers -MISCONF
	}
	k, err := s.keyer.Encode(args[1])
	if err != nil {
		return false // inline path answers the key error
	}
	shard, ok := s.db.ShardOf(k)
	if !ok {
		return false
	}
	if ss.pend == len(ss.ops) {
		ss.drain()
	}
	op := &ss.ops[ss.pend]
	ss.pend++
	op.kind, op.k = kind, k
	op.val, op.v, op.found = nil, nil, false
	op.next = nil
	op.start = time.Now()
	if kind == opSet {
		// The arena slice dies with this command; the op must own the
		// value until the worker hands it to the map.
		op.val = resp.Detach(args[2])
	}
	if tail := ss.tails[shard]; tail != nil {
		tail.next = op
	} else {
		ss.heads[shard] = op
		ss.touched = append(ss.touched, shard)
	}
	ss.tails[shard] = op
	return true
}

// drain is the reassembly barrier: hand every touched shard its chain
// (one send each), wait for all of them, then write the replies in
// command order. No-op outside affine mode.
func (ss *session) drain() {
	if ss.pend == 0 {
		return
	}
	for _, shard := range ss.touched {
		ss.wg.Add(1)
		ss.s.aff.chans[shard] <- ss.heads[shard]
		ss.heads[shard], ss.tails[shard] = nil, nil
	}
	ss.touched = ss.touched[:0]
	ss.wg.Wait()
	for i := 0; i < ss.pend; i++ {
		op := &ss.ops[i]
		switch op.kind {
		case opGet:
			if op.found {
				ss.w.WriteBulk(op.v)
			} else {
				ss.w.WriteNull()
			}
		case opSet:
			ss.w.WriteSimple("OK")
		case opDel, opExists:
			if op.found {
				ss.w.WriteInt(1)
			} else {
				ss.w.WriteInt(0)
			}
		}
		// Routed ops never produce error replies (errors are answered
		// inline), so the errs delta is always zero here.
		d := time.Since(op.start)
		ss.s.met.record(ss.stripe, opCmdIndex[op.kind], d, 0)
		if ss.s.slog.admits(d) {
			ss.slowRouted(op, d)
		}
		// Drop value references so the ring does not pin dead values
		// until the slot's next reuse; scratch buffers stay.
		op.val, op.v = nil, nil
	}
	ss.pend = 0
}

// slowRouted logs a routed op to the slowlog, reconstructing the wire
// arguments from the trie key (keyers are bijective on their image).
// Only runs for ops past the threshold, so the allocations don't matter.
func (ss *session) slowRouted(op *affineOp, d time.Duration) {
	key := ss.s.keyer.DecodeAppend(nil, op.k)
	switch op.kind {
	case opGet:
		ss.s.slog.add(d, [][]byte{[]byte("GET"), key})
	case opExists:
		ss.s.slog.add(d, [][]byte{[]byte("EXISTS"), key})
	case opSet:
		ss.s.slog.add(d, [][]byte{[]byte("SET"), key, op.val})
	case opDel:
		ss.s.slog.add(d, [][]byte{[]byte("DEL"), key})
	}
}

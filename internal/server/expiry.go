package server

// Key expiry: the server-side half of the expiry subsystem (the index
// itself is internal/expiry; DESIGN.md §12 has the full protocol).
//
// Every read path is lazy: a key whose deadline has passed reads as
// absent and is purged on the spot. The background reaper (reaperLoop)
// is the eager half — it sleeps until the earliest armed deadline and
// range-scans everything due, so expired keys stop occupying memory even
// if nothing ever reads them.
//
// # Why a purge can never eat a live value
//
// The index is loosely consistent with the primary map, so every purge
// is doubly conditional, and the write paths order their two updates to
// make the dangerous interleavings impossible (Go atomics are
// sequentially consistent):
//
//   - purge (purgeExpired): load the primary value FIRST, re-verify the
//     arming is still the expired Entry we saw, then delete the primary
//     key only if it still holds that exact value (identity, via
//     DeleteFunc), and finally remove the arming only if it is still
//     that exact Entry.
//   - plain SET: clear the arming BEFORE storing the new value. A purge
//     that loaded the fresh value re-checks the arming afterwards and
//     finds it gone (or changed) — abort.
//   - SET with TTL (SETEX/GETEX EX): install the new arming BEFORE
//     storing the value. A purge racing the store either sees the new
//     arming (abort) or deletes the OLD value identity — after which
//     the store simply re-inserts the new value under the new arming.
//
// The one residual anomaly: an EXPIRE re-arming a key in the same
// instant a purge commits can lose the key as if the old deadline fired
// first — which it did; the re-arm merely lost the race. Documented in
// DESIGN.md §12 as the price of the lock-free loosely-consistent index.

import (
	"math"
	"strconv"
	"time"

	"nbtrie/internal/expiry"
	"nbtrie/internal/resp"
)

// nowMS is the server's current time in Unix milliseconds.
func (s *Server) nowMS() int64 { return s.clock() }

// expireIfDue is the lazy read-path check: true means k's deadline has
// passed (the caller must treat the key as absent); the expired value is
// purged best-effort on the way out. For keys with no arming this is one
// wait-free allocation-free index load — the cost added to GET/EXISTS/
// MGET — and the clock is only consulted when an arming exists.
func (s *Server) expireIfDue(k uint64) bool {
	e, ok := s.exp.Lookup(k)
	if !ok {
		return false
	}
	if e.DeadlineMS > s.nowMS() {
		return false
	}
	s.purgeExpired(k, e)
	return true
}

// purgeExpired removes k if it still holds the value it held while the
// expired arming e was in force. Returns true iff this call deleted the
// primary value. See the file comment for the ordering argument.
func (s *Server) purgeExpired(k uint64, e expiry.Entry) bool {
	v, ok := s.db.Load(k)
	if !ok {
		// Value already gone (concurrent DEL or purge): drop the
		// orphaned arming if it is still e.
		s.exp.Remove(k, e)
		return false
	}
	if cur, ok := s.exp.Lookup(k); !ok || cur != e {
		return false // re-armed or cleared since the caller's check
	}
	// Identity-conditional delete: same backing array, same length. A
	// value freshly stored by a racing SET is a different allocation and
	// survives. (Zero-length values have no element to take the address
	// of; for them length equality is the whole check.)
	deleted := s.db.DeleteFunc(k, func(have []byte) bool {
		return len(have) == len(v) && (len(v) == 0 || &have[0] == &v[0])
	})
	s.exp.Remove(k, e)
	if deleted {
		s.exp.NoteExpired()
	}
	return deleted
}

// clearTTL drops k's arming, conditional on the arming observed now —
// the plain-SET path (which clears before storing; see the file
// comment). Paths that clear AFTER a delete (DEL, past-deadline
// EXPIRE/GETEX) must instead capture the arming before the delete and
// Remove it conditionally, or a SETEX racing into the gap would have
// its fresh arming clobbered.
func (s *Server) clearTTL(k uint64) {
	if e, ok := s.exp.Lookup(k); ok {
		s.exp.Remove(k, e)
	}
}

// existsLive reports whether k is present and unexpired (purging it if
// due).
func (s *Server) existsLive(k uint64) bool {
	return !s.expireIfDue(k) && s.db.Contains(k)
}

// getLive is Load behind the lazy expiry check.
func (s *Server) getLive(k uint64) ([]byte, bool) {
	if s.expireIfDue(k) {
		return nil, false
	}
	return s.db.Load(k)
}

// reapOnce runs one reaper pass over everything due by now.
func (s *Server) reapOnce() int {
	start := time.Now()
	n := s.exp.Reap(s.nowMS(), s.purgeExpired)
	s.met.reapPass.Record(uint64(time.Since(start).Microseconds()))
	return n
}

// ReapNow forces one synchronous reaper pass and returns the number of
// keys it expired (tests and diagnostics; the background reaper does
// this on its own schedule).
func (s *Server) ReapNow() int { return s.reapOnce() }

// reaperLoop is the background reaper: sleep until the earliest armed
// deadline, scan everything due, repeat. The missed-wakeup protocol with
// Index.Set: Arm(MaxInt64) BEFORE reading Earliest, so any Set landing
// between the read and the sleep sees an "infinitely late" armed value
// and signals Wake; then Arm(deadline) so only genuinely earlier
// deadlines signal while sleeping.
func (s *Server) reaperLoop() {
	defer close(s.reapDone)
	// Opening pass: purge whatever expired before the process started
	// (recovery replays absolute deadlines; some are already past).
	s.reapOnce()
	for {
		s.exp.Arm(math.MaxInt64)
		deadline, ok := s.exp.Earliest()
		if !ok {
			select {
			case <-s.reapStop:
				return
			case <-s.exp.Wake():
				continue
			}
		}
		s.exp.Arm(deadline)
		if wait := deadline - s.nowMS(); wait > 0 {
			t := time.NewTimer(time.Duration(wait) * time.Millisecond)
			select {
			case <-s.reapStop:
				t.Stop()
				return
			case <-s.exp.Wake():
				t.Stop()
				continue // an earlier deadline arrived; re-plan
			case <-t.C:
			}
		}
		s.reapOnce()
	}
}

// ---- wire commands ----

// parseIntArg parses a signed 64-bit integer argument (seconds or
// milliseconds). Shared by dispatch and AOF replay (PEXPIREAT records).
func parseIntArg(b []byte) (int64, bool) {
	n, err := strconv.ParseInt(string(b), 10, 64)
	return n, err == nil
}

// parseIntArg answers the standard Redis error on failure.
func (ss *session) parseIntArg(b []byte) (int64, bool) {
	n, ok := parseIntArg(b)
	if !ok {
		ss.w.WriteError("ERR value is not an integer or out of range")
	}
	return n, ok
}

// deadlineFromArg turns a parsed quantity into an absolute deadline in
// Unix milliseconds, saturating instead of overflowing: n units of
// unitMS each, absolute (EXPIREAT/PEXPIREAT) or relative to now
// (EXPIRE/PEXPIRE).
func deadlineFromArg(now, n, unitMS int64, absolute bool) int64 {
	lim := expiry.MaxDeadlineMS / unitMS
	var ms int64
	switch {
	case n > lim:
		ms = expiry.MaxDeadlineMS
	case n < -lim:
		ms = -expiry.MaxDeadlineMS
	default:
		ms = n * unitMS
	}
	if absolute {
		return ms
	}
	return now + ms
}

// expireCmd implements EXPIRE/PEXPIRE/EXPIREAT/PEXPIREAT: arm (or
// re-arm) a key's deadline. Replies :1 when a deadline was set (or the
// key deleted outright for an already-past deadline, Redis semantics),
// :0 when the key does not exist. The AOF record is always the absolute
// form — PEXPIREAT key <ms> — so replay is immune to replay-time clocks.
func (ss *session) expireCmd(args [][]byte, unitMS int64, absolute bool) {
	s, w := ss.s, ss.w
	if len(args) != 3 {
		ss.wrongArity(string(args[0]))
		return
	}
	if s.persistDegraded() {
		s.misconf(w)
		return
	}
	k, ok := ss.encodeKey(args[1])
	if !ok {
		return
	}
	n, ok := ss.parseIntArg(args[2])
	if !ok {
		return
	}
	now := s.nowMS()
	deadline := deadlineFromArg(now, n, unitMS, absolute)
	if !s.existsLive(k) {
		w.WriteInt(0)
		return
	}
	if deadline <= now {
		// Already past: Redis deletes the key immediately and logs the
		// deletion, not the no-op timeout. Capture the arming BEFORE the
		// delete so the removal is conditional on it — a SETEX racing in
		// after the delete installs a fresh arming this deletion must not
		// clobber (same discipline as DEL).
		s.gate.RLock()
		e, hadTTL := s.exp.Lookup(k)
		deleted := s.db.Delete(k)
		if hadTTL {
			s.exp.Remove(k, e)
		}
		if deleted {
			s.appendMutation([]byte("DEL"), args[1])
		}
		s.gate.RUnlock()
		if deleted {
			s.exp.NoteExpired()
		}
		w.WriteInt(1)
		return
	}
	s.gate.RLock()
	s.exp.Set(k, deadline)
	s.appendMutation([]byte("PEXPIREAT"), args[1], strconv.AppendInt(nil, deadline, 10))
	s.gate.RUnlock()
	w.WriteInt(1)
}

// ttlCmd implements TTL (seconds, rounded to nearest — Redis semantics,
// so 100ms remaining reports 0, not 1) and PTTL (milliseconds): -2 when
// the key does not exist (or has expired), -1 when it has no deadline,
// else the remaining time.
func (ss *session) ttlCmd(args [][]byte, inMS bool) {
	s, w := ss.s, ss.w
	if len(args) != 2 {
		ss.wrongArity(string(args[0]))
		return
	}
	k, ok := ss.encodeKey(args[1])
	if !ok {
		return
	}
	if !s.existsLive(k) {
		w.WriteInt(-2)
		return
	}
	e, ok := s.exp.Lookup(k)
	if !ok {
		w.WriteInt(-1)
		return
	}
	rem := e.DeadlineMS - s.nowMS()
	if rem < 0 {
		rem = 0
	}
	if inMS {
		w.WriteInt(rem)
	} else {
		w.WriteInt((rem + 500) / 1000)
	}
}

// persistCmd implements PERSIST: drop the deadline, reply :1 iff one was
// dropped.
func (ss *session) persistCmd(args [][]byte) {
	s, w := ss.s, ss.w
	if len(args) != 2 {
		ss.wrongArity("PERSIST")
		return
	}
	if s.persistDegraded() {
		s.misconf(w)
		return
	}
	k, ok := ss.encodeKey(args[1])
	if !ok {
		return
	}
	if !s.existsLive(k) {
		w.WriteInt(0)
		return
	}
	s.gate.RLock()
	cleared := s.exp.Clear(k)
	if cleared {
		s.appendMutation([]byte("PERSIST"), args[1])
	}
	s.gate.RUnlock()
	if cleared {
		w.WriteInt(1)
	} else {
		w.WriteInt(0)
	}
}

// setex implements SETEX key seconds value: SET + EXPIRE as one command.
// The arming is installed BEFORE the value is stored (see the file
// comment), and the AOF carries the pair SET + PEXPIREAT — the same
// absolute translation Redis uses.
func (ss *session) setex(args [][]byte) {
	s, w := ss.s, ss.w
	if len(args) != 4 {
		ss.wrongArity("SETEX")
		return
	}
	if s.persistDegraded() {
		s.misconf(w)
		return
	}
	k, ok := ss.encodeKey(args[1])
	if !ok {
		return
	}
	sec, ok := ss.parseIntArg(args[2])
	if !ok {
		return
	}
	if sec <= 0 {
		w.WriteError("ERR invalid expire time in 'setex' command")
		return
	}
	deadline := deadlineFromArg(s.nowMS(), sec, 1000, false)
	v := resp.Detach(args[3])
	s.gate.RLock()
	s.exp.Set(k, deadline)
	s.db.Store(k, v)
	s.appendMutation([]byte("SET"), args[1], v)
	s.appendMutation([]byte("PEXPIREAT"), args[1], strconv.AppendInt(nil, deadline, 10))
	s.gate.RUnlock()
	w.WriteSimple("OK")
}

// getex implements GETEX key [EX s | PX ms | EXAT s | PXAT ms |
// PERSIST]: GET that can atomically re-arm or disarm the deadline.
func (ss *session) getex(args [][]byte) {
	s, w := ss.s, ss.w
	if len(args) < 2 || len(args) > 4 {
		ss.wrongArity("GETEX")
		return
	}
	k, ok := ss.encodeKey(args[1])
	if !ok {
		return
	}
	// Parse the option before touching anything so a syntax error
	// mutates nothing.
	var (
		doPersist bool
		doExpire  bool
		unitMS    int64
		absolute  bool
		n         int64
	)
	switch len(args) {
	case 2:
	case 3:
		if string(ss.upper(args[2])) != "PERSIST" {
			w.WriteError("ERR syntax error")
			return
		}
		doPersist = true
	case 4:
		switch string(ss.upper(args[2])) {
		case "EX":
			unitMS, absolute = 1000, false
		case "PX":
			unitMS, absolute = 1, false
		case "EXAT":
			unitMS, absolute = 1000, true
		case "PXAT":
			unitMS, absolute = 1, true
		default:
			w.WriteError("ERR syntax error")
			return
		}
		var okN bool
		if n, okN = ss.parseIntArg(args[3]); !okN {
			return
		}
		doExpire = true
	}
	if (doPersist || doExpire) && s.persistDegraded() {
		s.misconf(w)
		return
	}
	v, found := s.getLive(k)
	if !found {
		w.WriteNull()
		return
	}
	now := s.nowMS()
	switch {
	case doPersist:
		s.gate.RLock()
		if s.exp.Clear(k) {
			s.appendMutation([]byte("PERSIST"), args[1])
		}
		s.gate.RUnlock()
	case doExpire:
		deadline := deadlineFromArg(now, n, unitMS, absolute)
		if deadline <= now {
			// Arming captured BEFORE the delete, removal conditional on
			// it — same race and same discipline as the EXPIRE past-
			// deadline path above.
			s.gate.RLock()
			e, hadTTL := s.exp.Lookup(k)
			if s.db.Delete(k) {
				s.appendMutation([]byte("DEL"), args[1])
				s.exp.NoteExpired()
			}
			if hadTTL {
				s.exp.Remove(k, e)
			}
			s.gate.RUnlock()
		} else {
			s.gate.RLock()
			s.exp.Set(k, deadline)
			s.appendMutation([]byte("PEXPIREAT"), args[1], strconv.AppendInt(nil, deadline, 10))
			s.gate.RUnlock()
		}
	}
	w.WriteBulk(v)
}

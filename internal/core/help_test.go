package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// White-box tests of the coordination machinery: the help routine's
// backtrack path, newDesc's duplicate handling and ordering, the
// logical-removal predicate, and createNode's conflict helping — the
// paths a happy-path workload rarely exercises deterministically.

// TestHelpBacktracksOnStaleFlag drives help with a descriptor whose
// oldInfo is stale for its second flag target: flagging must fail
// partway, the already-flagged node must be unflagged by the backtrack
// CASes, and help must report failure.
func TestHelpBacktracksOnStaleFlag(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(3)   // encodes with leading 0 bit: left subtree
	tr.Insert(255) // encodes with leading 1 bit: right subtree

	a := tr.root.child[0].Load()
	b := tr.root.child[1].Load()
	if a.leaf || b.leaf {
		t.Fatal("test setup: expected internal children")
	}
	stale := newUnflag[any]() // never the current info of b
	d := &desc[any]{kind: kindFlag, nFlag: 2, nUnflag: 2}
	d.flag[0], d.flag[1] = a, b
	d.oldInfo[0], d.oldInfo[1] = a.info.Load(), stale
	d.unflag[0], d.unflag[1] = a, b

	if tr.help(d) {
		t.Fatal("help must fail when a flag CAS cannot succeed")
	}
	if d.flagDone.Load() {
		t.Error("flagDone must stay false on a failed attempt")
	}
	if a.info.Load().flagged() {
		t.Error("backtrack CAS must unflag the first node")
	}
	if b.info.Load().flagged() {
		t.Error("second node must never have been flagged")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestHelpIsIdempotent re-runs help on an already-completed descriptor:
// every CAS must fail harmlessly and the result stay true.
func TestHelpIsIdempotent(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(7)
	r := tr.search(tr.encode(9))
	nodeInfo := r.node.info.Load()
	newNode := tr.makeInternal(copyNode(r.node), newLeaf[any](tr.encode(9), tr.klen), nodeInfo)
	if newNode == nil {
		t.Fatal("setup: makeInternal failed")
	}
	d := tr.newDesc(
		[4]*node[any]{r.p}, [4]*desc[any]{r.pInfo}, 1,
		[2]*node[any]{r.p}, 1,
		[2]*node[any]{r.p}, [2]*node[any]{r.node}, [2]*node[any]{newNode}, 1,
		nil)
	if d == nil || !tr.help(d) {
		t.Fatal("setup: first help must succeed")
	}
	for i := 0; i < 3; i++ {
		if !tr.help(d) {
			t.Fatal("replayed help must still report success")
		}
	}
	if !tr.Contains(9) || tr.Size() != 2 {
		t.Error("replayed help corrupted the trie")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewDescDuplicateHandling(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(3)
	n := tr.root.child[0].Load()
	info := n.info.Load()

	// Same node twice with the same oldInfo: deduplicated to one entry.
	d := tr.newDesc(
		[4]*node[any]{n, n}, [4]*desc[any]{info, info}, 2,
		[2]*node[any]{n, n}, 2,
		[2]*node[any]{n}, [2]*node[any]{nil}, [2]*node[any]{newLeaf[any](tr.encode(1), tr.klen)}, 1,
		nil)
	if d == nil {
		t.Fatal("duplicates with equal oldInfo must be accepted")
	}
	if d.nFlag != 1 || d.nUnflag != 1 {
		t.Errorf("dedup left nFlag=%d nUnflag=%d, want 1/1", d.nFlag, d.nUnflag)
	}

	// Same node with different oldInfo: the node changed between reads.
	if tr.newDesc(
		[4]*node[any]{n, n}, [4]*desc[any]{info, newUnflag[any]()}, 2,
		[2]*node[any]{n}, 1,
		[2]*node[any]{n}, [2]*node[any]{nil}, [2]*node[any]{newLeaf[any](tr.encode(1), tr.klen)}, 1,
		nil) != nil {
		t.Error("duplicates with different oldInfo must be rejected")
	}

	// A flagged oldInfo: the conflicting update gets helped, nil returned.
	flagged := &desc[any]{kind: kindFlag}
	if tr.newDesc(
		[4]*node[any]{n}, [4]*desc[any]{flagged}, 1,
		[2]*node[any]{n}, 1,
		[2]*node[any]{n}, [2]*node[any]{nil}, [2]*node[any]{newLeaf[any](tr.encode(1), tr.klen)}, 1,
		nil) != nil {
		t.Error("flagged oldInfo must be rejected")
	}
}

func TestNewDescSortsByLabel(t *testing.T) {
	tr := mustNew(t, 8)
	for _, k := range []uint64{3, 9, 200, 77} {
		tr.Insert(k)
	}
	// Gather three internal nodes and pass them in reverse label order.
	var internals []*node[any]
	var collect func(*node[any])
	collect = func(n *node[any]) {
		if n.leaf {
			return
		}
		internals = append(internals, n)
		collect(n.child[0].Load())
		collect(n.child[1].Load())
	}
	collect(tr.root)
	if len(internals) < 3 {
		t.Fatalf("setup: want >=3 internal nodes, got %d", len(internals))
	}
	ns := [4]*node[any]{internals[2], internals[0], internals[1]}
	is := [4]*desc[any]{ns[0].info.Load(), ns[1].info.Load(), ns[2].info.Load()}
	d := tr.newDesc(ns, is, 3,
		[2]*node[any]{ns[0]}, 1,
		[2]*node[any]{ns[0]}, [2]*node[any]{nil}, [2]*node[any]{newLeaf[any](tr.encode(1), tr.klen)}, 1,
		nil)
	if d == nil {
		t.Fatal("newDesc failed")
	}
	for i := 1; i < int(d.nFlag); i++ {
		if !labelLess(d.flag[i-1], d.flag[i]) {
			t.Fatalf("flag array not sorted at %d", i)
		}
		// The oldInfo permutation must follow its node.
		if d.flag[i].info.Load() != d.oldInfo[i] {
			t.Fatalf("oldInfo not permuted with flag at %d", i)
		}
	}
}

func TestLogicallyRemovedPredicate(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(5)
	leaf5 := tr.search(tr.encode(5)).node

	if logicallyRemoved(leaf5.info.Load()) {
		t.Error("unflagged leaf must not be logically removed")
	}
	// Fabricate a replace-style flag whose pNode still points at
	// oldChild: not yet removed.
	p := tr.search(tr.encode(5)).p
	d := &desc[any]{kind: kindFlag, nPNode: 1}
	d.pNode[0] = p
	d.oldChild[0] = leaf5
	if logicallyRemoved(d) {
		t.Error("leaf still linked under pNode[0] is not removed")
	}
	// Once oldChild is no longer a child of pNode[0], it is removed.
	d.oldChild[0] = newLeaf[any](tr.encode(9), tr.klen)
	if !logicallyRemoved(d) {
		t.Error("leaf unlinked from pNode[0] must report removed")
	}
}

func TestMakeInternalConflictHelps(t *testing.T) {
	tr := mustNew(t, 8)
	a := newLeaf[any](tr.encode(5), tr.klen)
	b := newLeaf[any](tr.encode(5), tr.klen) // identical labels: prefix conflict

	if tr.makeInternal(a, b, nil) != nil {
		t.Error("equal labels must yield nil")
	}
	// With a completed Flag as info, makeInternal helps it (idempotent
	// re-help) and still returns nil.
	tr.Insert(7)
	r := tr.search(tr.encode(9))
	nodeInfo := r.node.info.Load()
	nn := tr.makeInternal(copyNode(r.node), newLeaf[any](tr.encode(9), tr.klen), nodeInfo)
	d := tr.newDesc(
		[4]*node[any]{r.p}, [4]*desc[any]{r.pInfo}, 1,
		[2]*node[any]{r.p}, 1,
		[2]*node[any]{r.p}, [2]*node[any]{r.node}, [2]*node[any]{nn}, 1,
		nil)
	tr.help(d)
	if tr.makeInternal(a, b, d) != nil {
		t.Error("conflict with flagged info must still yield nil")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestQuickOpSequences is the testing/quick property test over random
// operation sequences: the trie must agree with a map oracle on every
// result and on the final contents.
func TestQuickOpSequences(t *testing.T) {
	type op struct {
		Kind byte
		K    uint16
		K2   uint16
	}
	f := func(ops []op) bool {
		tr, err := New[any](16)
		if err != nil {
			return false
		}
		oracle := make(map[uint64]bool)
		for _, o := range ops {
			k, k2 := uint64(o.K), uint64(o.K2)
			switch o.Kind % 4 {
			case 0:
				if tr.Insert(k) != !oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if tr.Delete(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			case 2:
				if tr.Contains(k) != oracle[k] {
					return false
				}
			case 3:
				want := oracle[k] && !oracle[k2] && k != k2
				if tr.Replace(k, k2) != want {
					return false
				}
				if want {
					delete(oracle, k)
					oracle[k2] = true
				}
			}
		}
		if tr.Validate() != nil {
			return false
		}
		if tr.Size() != len(oracle) {
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(11)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

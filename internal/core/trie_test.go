package core

import (
	"math/rand"
	"sort"
	"testing"
)

// mustNew builds a Trie[any] — the loosest instantiation, letting the
// white-box tests exercise the set view and arbitrary value payloads on
// the same trie. Allocation pins use concrete instantiations instead
// (see alloc_test.go).
func mustNew(t *testing.T, width uint32, opts ...Option[any]) *Trie[any] {
	t.Helper()
	tr, err := New(width, opts...)
	if err != nil {
		t.Fatalf("New(%d): %v", width, err)
	}
	return tr
}

func TestNewWidthValidation(t *testing.T) {
	for _, w := range []uint32{0, 64, 100} {
		if _, err := New[any](w); err == nil {
			t.Errorf("New(%d) should fail", w)
		}
	}
	for _, w := range []uint32{1, 32, 63} {
		if _, err := New[any](w); err != nil {
			t.Errorf("New(%d): %v", w, err)
		}
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := mustNew(t, 16)
	if tr.Contains(0) || tr.Contains(42) || tr.Contains(65535) {
		t.Error("empty trie should contain nothing")
	}
	if n := tr.Size(); n != 0 {
		t.Errorf("Size() = %d, want 0", n)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInsertContainsDelete(t *testing.T) {
	tr := mustNew(t, 16)
	ks := []uint64{0, 1, 2, 100, 65535, 32768, 7}
	for _, k := range ks {
		if !tr.Insert(k) {
			t.Fatalf("Insert(%d) = false on empty slot", k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	for _, k := range ks {
		if !tr.Contains(k) {
			t.Errorf("Contains(%d) = false after insert", k)
		}
	}
	if tr.Contains(3) || tr.Contains(101) {
		t.Error("Contains reports absent key as present")
	}
	if got := tr.Size(); got != len(ks) {
		t.Errorf("Size() = %d, want %d", got, len(ks))
	}
	for _, k := range ks {
		if !tr.Delete(k) {
			t.Errorf("Delete(%d) = false on present key", k)
		}
		if tr.Contains(k) {
			t.Errorf("Contains(%d) = true after delete", k)
		}
	}
	if got := tr.Size(); got != 0 {
		t.Errorf("Size() = %d after deleting all, want 0", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := mustNew(t, 8)
	if !tr.Insert(5) || tr.Insert(5) {
		t.Error("second Insert(5) should return false")
	}
	if got := tr.Size(); got != 1 {
		t.Errorf("Size() = %d, want 1", got)
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := mustNew(t, 8)
	if tr.Delete(5) {
		t.Error("Delete on empty trie should return false")
	}
	tr.Insert(5)
	if tr.Delete(6) {
		t.Error("Delete(6) should return false when only 5 present")
	}
	if !tr.Contains(5) {
		t.Error("failed Delete must not disturb other keys")
	}
}

func TestBoundaryKeys(t *testing.T) {
	// Extreme user keys map next to the dummies; make sure they work.
	tr := mustNew(t, 8)
	for _, k := range []uint64{0, 255} {
		if !tr.Insert(k) || !tr.Contains(k) {
			t.Errorf("boundary key %d not usable", k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0, 255} {
		if !tr.Delete(k) {
			t.Errorf("Delete(%d) failed", k)
		}
	}
}

func TestReplaceSemantics(t *testing.T) {
	// All four presence combinations of (old, new).
	cases := []struct {
		name     string
		pre      []uint64
		old, new uint64
		want     bool
		post     []uint64
	}{
		{"old present, new absent", []uint64{1, 2}, 1, 3, true, []uint64{2, 3}},
		{"old absent", []uint64{2}, 1, 3, false, []uint64{2}},
		{"new present", []uint64{1, 3}, 1, 3, false, []uint64{1, 3}},
		{"both fail", []uint64{3}, 1, 3, false, []uint64{3}},
		{"same key present", []uint64{1}, 1, 1, false, []uint64{1}},
		{"same key absent", []uint64{2}, 1, 1, false, []uint64{2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := mustNew(t, 8)
			for _, k := range c.pre {
				tr.Insert(k)
			}
			if got := tr.Replace(c.old, c.new); got != c.want {
				t.Fatalf("Replace(%d,%d) = %v, want %v", c.old, c.new, got, c.want)
			}
			got := tr.Keys()
			if !equalU64(got, c.post) {
				t.Fatalf("post state %v, want %v", got, c.post)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReplaceExhaustiveSmall drives Replace through every special case by
// enumerating all source/destination pairs over every set of up to three
// keys in a 4-bit key space. The special cases of Figure 6 (shared leaf,
// shared parent, grandparent overlap) all occur among these runs.
func TestReplaceExhaustiveSmall(t *testing.T) {
	const width = 4
	const universe = 1 << width
	sets := [][]uint64{{}}
	for a := uint64(0); a < universe; a++ {
		sets = append(sets, []uint64{a})
		for b := a + 1; b < universe; b++ {
			sets = append(sets, []uint64{a, b})
			for c := b + 1; c < universe; c++ {
				sets = append(sets, []uint64{a, b, c})
			}
		}
	}
	for _, set := range sets {
		for vd := uint64(0); vd < universe; vd++ {
			for vi := uint64(0); vi < universe; vi++ {
				tr := mustNew(t, width)
				in := make(map[uint64]bool, len(set))
				for _, k := range set {
					tr.Insert(k)
					in[k] = true
				}
				want := in[vd] && !in[vi] && vd != vi
				if got := tr.Replace(vd, vi); got != want {
					t.Fatalf("set %v: Replace(%d,%d) = %v, want %v", set, vd, vi, got, want)
				}
				if want {
					delete(in, vd)
					in[vi] = true
				}
				for k := uint64(0); k < universe; k++ {
					if tr.Contains(k) != in[k] {
						t.Fatalf("set %v after Replace(%d,%d): Contains(%d) = %v, want %v",
							set, vd, vi, k, tr.Contains(k), in[k])
					}
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("set %v after Replace(%d,%d): %v", set, vd, vi, err)
				}
			}
		}
	}
}

func TestSequentialOracle(t *testing.T) {
	for _, width := range []uint32{4, 10, 63} {
		for seed := int64(0); seed < 4; seed++ {
			tr := mustNew(t, width)
			rng := rand.New(rand.NewSource(seed))
			keyRange := uint64(1) << min(width, 12)
			oracle := make(map[uint64]bool)
			for i := 0; i < 20000; i++ {
				k := rng.Uint64() % keyRange
				switch rng.Intn(4) {
				case 0:
					if got, want := tr.Insert(k), !oracle[k]; got != want {
						t.Fatalf("w=%d seed=%d op=%d Insert(%d)=%v want %v", width, seed, i, k, got, want)
					}
					oracle[k] = true
				case 1:
					if got, want := tr.Delete(k), oracle[k]; got != want {
						t.Fatalf("w=%d seed=%d op=%d Delete(%d)=%v want %v", width, seed, i, k, got, want)
					}
					delete(oracle, k)
				case 2:
					k2 := rng.Uint64() % keyRange
					want := oracle[k] && !oracle[k2] && k != k2
					if got := tr.Replace(k, k2); got != want {
						t.Fatalf("w=%d seed=%d op=%d Replace(%d,%d)=%v want %v", width, seed, i, k, k2, got, want)
					}
					if want {
						delete(oracle, k)
						oracle[k2] = true
					}
				case 3:
					if got, want := tr.Contains(k), oracle[k]; got != want {
						t.Fatalf("w=%d seed=%d op=%d Contains(%d)=%v want %v", width, seed, i, k, got, want)
					}
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("w=%d seed=%d: %v", width, seed, err)
			}
			wantKeys := make([]uint64, 0, len(oracle))
			for k := range oracle {
				wantKeys = append(wantKeys, k)
			}
			sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
			if got := tr.Keys(); !equalU64(got, wantKeys) {
				t.Fatalf("w=%d seed=%d final keys mismatch: got %d keys, want %d", width, seed, len(got), len(wantKeys))
			}
		}
	}
}

func TestWithoutReplaceOption(t *testing.T) {
	tr := mustNew(t, 8, WithoutReplace[any]())
	tr.Insert(1)
	if !tr.Contains(1) || tr.Contains(2) {
		t.Error("basic ops must still work with WithoutReplace")
	}
	defer func() {
		if recover() == nil {
			t.Error("Replace on a WithoutReplace trie should panic")
		}
	}()
	tr.Replace(1, 2)
}

func TestOutOfRangeKeysAreAbsent(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(3)
	for _, k := range []uint64{256, 1 << 20, ^uint64(0)} {
		if tr.Insert(k) {
			t.Errorf("Insert(%d) on width-8 trie must return false", k)
		}
		if tr.Contains(k) {
			t.Errorf("Contains(%d) on width-8 trie must return false", k)
		}
		if tr.Delete(k) {
			t.Errorf("Delete(%d) on width-8 trie must return false", k)
		}
		if tr.Replace(3, k) || tr.Replace(k, 5) {
			t.Errorf("Replace involving out-of-range %d must return false", k)
		}
		if tr.Store(k, "v") {
			t.Errorf("Store(%d) on width-8 trie must return false", k)
		}
		if _, ok := tr.Load(k); ok {
			t.Errorf("Load(%d) on width-8 trie must report absent", k)
		}
		if _, ok := tr.Ceiling(k); ok {
			t.Errorf("Ceiling(%d) on width-8 trie must be empty", k)
		}
		if f, ok := tr.Floor(k); !ok || f != 3 {
			t.Errorf("Floor(%d) = %d,%v; want the max key 3", k, f, ok)
		}
	}
	if !tr.Contains(3) {
		t.Error("in-range key lost during out-of-range probing")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestKeysSortedAndRangeStops(t *testing.T) {
	tr := mustNew(t, 8)
	for _, k := range []uint64{9, 3, 200, 77} {
		tr.Insert(k)
	}
	if got := tr.Keys(); !equalU64(got, []uint64{3, 9, 77, 200}) {
		t.Errorf("Keys() = %v", got)
	}
	var seen []uint64
	tr.Range(func(k uint64) bool {
		seen = append(seen, k)
		return len(seen) < 2
	})
	if len(seen) != 2 {
		t.Errorf("Range should stop after fn returns false, saw %v", seen)
	}
}

func TestDumpSmoke(t *testing.T) {
	tr := mustNew(t, 4)
	tr.Insert(5)
	tr.Insert(6)
	s := tr.Dump()
	if s == "" {
		t.Error("Dump returned empty string")
	}
}

// (Corruption-detection tests for Validate live in internal/engine,
// which owns the node structure; see engine's inspect tests.)

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package core implements the non-blocking binary Patricia trie of
// Shafiei, "Non-blocking Patricia Tries with Replace Operations"
// (ICDCS 2013). The trie implements a linearizable set of fixed-width
// integer keys — and, through the value payload V carried on leaves, a
// linearizable uint64 → V map — with
//
//   - a wait-free Contains/Load (the paper's find), which only reads
//     shared memory and never performs CAS,
//   - lock-free Insert and Delete, and
//   - a lock-free Replace(old, new) that removes one key and inserts
//     another atomically, even though the two changes touch two different
//     child pointers. Both changes become visible at the first successful
//     child CAS, which is the operation's linearization point.
//
// Coordination follows the flag/help scheme of Ellen et al. (PODC 2010),
// extended per the paper: every update publishes a descriptor (the paper's
// Flag object) carrying everything helpers need, flags the internal nodes
// whose child pointers it will change (in label order, to avoid livelock),
// performs the child CASes, and unflags the survivors. Nodes removed from
// the trie stay flagged forever, and child pointers are only ever swung to
// freshly allocated nodes, so neither info nor child fields can suffer ABA.
// Memory reclamation is the garbage collector's job, exactly as in the
// paper's Java setting.
//
// The hot paths are deliberately allocation-lean (see DESIGN.md): values
// are stored unboxed in the leaf (the set view instantiates V = struct{}),
// descriptors are built from fixed-size arrays that live on the caller's
// stack, and speculative node construction is deferred until the captured
// info values are known not to belong to a conflicting update. The one
// allocation that must never be optimized away is the fresh Unflag written
// by every unflag CAS: reusing Unflag objects would let a node's info
// field repeat a value, re-opening the ABA window the paper closes.
package core

import (
	"sync/atomic"

	"nbtrie/internal/keys"
)

// node is the paper's Node type. Leaves and internal nodes share one
// struct: a node is a leaf iff leaf is true, in which case its child
// pointers are never set. The label (bits, plen) is immutable after
// construction; bits is left-aligned and canonical (zero beyond plen).
// Leaf labels always have plen == ℓ (the trie's key length).
type node[V any] struct {
	bits uint64
	plen uint32
	leaf bool

	// val is the value payload of a leaf, stored unboxed (zero for
	// internal nodes; the set view uses V = struct{}, which occupies no
	// space at all). Like the label it is immutable after construction: a
	// value update installs a fresh leaf through the same child-CAS path
	// as every other update, so the no-ABA argument — child pointers are
	// only ever swung to freshly allocated nodes — is untouched, and
	// readers never observe a half-written value.
	val V

	// info stores a pointer to the descriptor of the update operating on
	// this node (a Flag object), or a fresh unflag descriptor when no
	// update is in progress. It is never nil: the paper uses allocated
	// Unflag objects rather than null precisely so that info values never
	// repeat and flag CASes cannot suffer ABA.
	info atomic.Pointer[desc[V]]

	// child holds the left (0) and right (1) children of an internal node.
	child [2]atomic.Pointer[node[V]]
}

// newLeaf returns a leaf node with the given full-length label, a zero
// value payload and a fresh unflag descriptor.
func newLeaf[V any](bits uint64, klen uint32) *node[V] {
	var zero V
	return newLeafVal(bits, klen, zero)
}

// newLeafVal returns a leaf node carrying a value payload.
func newLeafVal[V any](bits uint64, klen uint32, val V) *node[V] {
	n := &node[V]{bits: bits, plen: klen, leaf: true, val: val}
	n.info.Store(newUnflag[V]())
	return n
}

// newInternal returns an internal node with the given label and children.
// The children must already be ordered: left's bit at position plen is 0.
func newInternal[V any](bits uint64, plen uint32, left, right *node[V]) *node[V] {
	n := &node[V]{bits: bits, plen: plen}
	n.info.Store(newUnflag[V]())
	n.child[0].Store(left)
	n.child[1].Store(right)
	return n
}

// copyNode returns a fresh copy of n (the paper's "new copy of node",
// lines 26 and 52). For an internal node the children are read now; the
// caller must have read n's info field beforehand, which — per Lemma 31 —
// guarantees the children cannot change between this copy and the child
// CAS that installs it, so the copy is faithful when it becomes reachable.
func copyNode[V any](n *node[V]) *node[V] {
	if n.leaf {
		return newLeafVal(n.bits, n.plen, n.val)
	}
	return newInternal(n.bits, n.plen, n.child[0].Load(), n.child[1].Load())
}

// labelIsPrefixOf reports whether a's label is a prefix of b's label.
func labelIsPrefixOf[V any](a, b *node[V]) bool {
	return a.plen <= b.plen && keys.IsPrefix(a.bits, a.plen, b.bits)
}

// labelLess is the total order on internal-node labels used to sort flag
// arrays (line 115); flagging in a fixed global order prevents livelock
// (the "blaming" argument of the paper's progress proof). Reachable nodes
// have distinct labels (Lemma 9), and comparing (bits, plen)
// lexicographically orders distinct labels totally.
func labelLess[V any](a, b *node[V]) bool {
	if a.bits != b.bits {
		return a.bits < b.bits
	}
	return a.plen < b.plen
}

// descKind discriminates the two Info subtypes of the paper.
type descKind uint8

const (
	kindUnflag descKind = iota + 1 // no update in progress at the node
	kindFlag                       // an update owns the node
)

// desc is the paper's Info object. A desc with kind == kindUnflag uses no
// other field; a fresh unflag is allocated for every unflagging so that a
// node's info field never repeats a value. A desc with kind == kindFlag
// describes one update operation completely, so that any process reading
// it can finish the update (help).
//
// Fixed-size arrays with explicit lengths keep each descriptor to a single
// allocation; an update flags at most four internal nodes and changes at
// most two child pointers (the replace general case). newDesc receives
// the same fixed-size arrays as stack values, so a failed attempt
// allocates nothing at all.
type desc[V any] struct {
	kind descKind

	nFlag   uint8 // entries used in flag/oldInfo
	nUnflag uint8 // entries used in unflag
	nPNode  uint8 // entries used in pNode/oldChild/newChild

	// flag lists the internal nodes to flag, sorted by label; oldInfo[i]
	// is the expected prior value of flag[i].info for the flag CAS.
	flag    [4]*node[V]
	oldInfo [4]*desc[V]

	// unflag lists the flagged nodes that remain in the trie and must be
	// unflagged once the child CASes are done. Nodes in flag but not in
	// unflag are removed by the update and stay flagged ("marked").
	unflag [2]*node[V]

	// For each i, the update CASes the appropriate child pointer of
	// pNode[i] from oldChild[i] to newChild[i].
	pNode    [2]*node[V]
	oldChild [2]*node[V]
	newChild [2]*node[V]

	// rmvLeaf, when non-nil, is the leaf holding the replaced key of a
	// general-case replace. It is flagged (plain store) after all flag
	// CASes succeed and before the first child CAS; searches reaching it
	// afterwards use logicallyRemoved to decide whether the key is gone.
	rmvLeaf *node[V]

	// flagDone is set once every node in flag was flagged successfully;
	// helpers use it to distinguish "the update already happened and the
	// node was unflagged" from "flagging failed, back off" (lines 93-106).
	flagDone atomic.Bool
}

// newUnflag allocates a fresh Unflag descriptor. The allocation is
// load-bearing: each unflag CAS must install a pointer the node's info
// field has never held before, or a delayed flag CAS comparing against a
// recycled Unflag could succeed long after its update was decided (ABA).
// Do not pool or intern these.
func newUnflag[V any]() *desc[V] { return &desc[V]{kind: kindUnflag} }

// flagged reports whether d is a Flag descriptor.
func (d *desc[V]) flagged() bool { return d.kind == kindFlag }

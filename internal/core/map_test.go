package core

import (
	"math/rand"
	"sync"
	"testing"
)

// White-box tests of the value layer: map semantics against an oracle,
// value transport through Replace, and the wait-free (CAS-free) Load.

func TestMapBasicSemantics(t *testing.T) {
	tr := mustNew(t, 8)

	if _, ok := tr.Load(5); ok {
		t.Error("Load on empty trie must miss")
	}
	if !tr.Store(5, "a") {
		t.Error("Store(5) must succeed")
	}
	if v, ok := tr.Load(5); !ok || v != "a" {
		t.Errorf("Load(5) = %v,%v want a,true", v, ok)
	}
	if !tr.Store(5, "b") { // overwrite
		t.Error("overwriting Store(5) must succeed")
	}
	if v, _ := tr.Load(5); v != "b" {
		t.Errorf("Load(5) after overwrite = %v, want b", v)
	}

	if v, loaded, ok := tr.LoadOrStore(5, "c"); !ok || !loaded || v != "b" {
		t.Errorf("LoadOrStore(present) = %v,%v want b,true", v, loaded)
	}
	if v, loaded, ok := tr.LoadOrStore(6, "c"); !ok || loaded || v != "c" {
		t.Errorf("LoadOrStore(absent) = %v,%v want c,false", v, loaded)
	}

	if tr.CompareAndSwap(5, "wrong", "x") {
		t.Error("CAS with wrong old value must fail")
	}
	if tr.CompareAndSwap(99, "b", "x") {
		t.Error("CAS on absent key must fail")
	}
	if !tr.CompareAndSwap(5, "b", "x") {
		t.Error("CAS with right old value must succeed")
	}
	if v, _ := tr.Load(5); v != "x" {
		t.Errorf("Load(5) after CAS = %v, want x", v)
	}

	if tr.CompareAndDelete(5, "wrong") || !tr.Contains(5) {
		t.Error("CompareAndDelete with wrong value must not delete")
	}
	if !tr.CompareAndDelete(5, "x") || tr.Contains(5) {
		t.Error("CompareAndDelete with right value must delete")
	}
	if tr.CompareAndDelete(5, "x") {
		t.Error("CompareAndDelete on absent key must fail")
	}

	// The set API observes map-stored keys (value nil vs. set insert).
	if !tr.Contains(6) || !tr.Delete(6) {
		t.Error("set view of a stored key broken")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestMapSequentialOracle replays a random workload over the full map
// surface against a Go map oracle.
func TestMapSequentialOracle(t *testing.T) {
	const keyRange = 256
	tr := mustNew(t, 8)
	rng := rand.New(rand.NewSource(7))
	oracle := make(map[uint64]int)
	for i := 0; i < 30000; i++ {
		k := rng.Uint64() % keyRange
		val := rng.Intn(8)
		switch rng.Intn(7) {
		case 0: // Store
			if !tr.Store(k, val) {
				t.Fatalf("op %d: Store(%d) failed", i, k)
			}
			oracle[k] = val
		case 1: // Load
			ov, oOK := oracle[k]
			v, ok := tr.Load(k)
			if ok != oOK || (ok && v != ov) {
				t.Fatalf("op %d: Load(%d) = %v,%v want %v,%v", i, k, v, ok, ov, oOK)
			}
		case 2: // LoadOrStore
			ov, oOK := oracle[k]
			v, loaded, ok := tr.LoadOrStore(k, val)
			if !ok {
				t.Fatalf("op %d: LoadOrStore(%d) rejected an in-range key", i, k)
			}
			if loaded != oOK {
				t.Fatalf("op %d: LoadOrStore(%d) loaded=%v want %v", i, k, loaded, oOK)
			}
			if loaded && v != ov {
				t.Fatalf("op %d: LoadOrStore(%d) = %v want %v", i, k, v, ov)
			}
			if !loaded {
				oracle[k] = val
			}
		case 3: // CompareAndSwap
			old := rng.Intn(8)
			ov, oOK := oracle[k]
			want := oOK && ov == old
			if got := tr.CompareAndSwap(k, old, val); got != want {
				t.Fatalf("op %d: CAS(%d,%d,%d) = %v want %v", i, k, old, val, got, want)
			}
			if want {
				oracle[k] = val
			}
		case 4: // CompareAndDelete
			old := rng.Intn(8)
			ov, oOK := oracle[k]
			want := oOK && ov == old
			if got := tr.CompareAndDelete(k, old); got != want {
				t.Fatalf("op %d: CompareAndDelete(%d,%d) = %v want %v", i, k, old, got, want)
			}
			if want {
				delete(oracle, k)
			}
		case 5: // Delete
			_, oOK := oracle[k]
			if got := tr.Delete(k); got != oOK {
				t.Fatalf("op %d: Delete(%d) = %v want %v", i, k, got, oOK)
			}
			delete(oracle, k)
		case 6: // Replace carries the value to the new key
			k2 := rng.Uint64() % keyRange
			ov, oOK := oracle[k]
			_, o2OK := oracle[k2]
			want := oOK && !o2OK && k != k2
			if got := tr.Replace(k, k2); got != want {
				t.Fatalf("op %d: Replace(%d,%d) = %v want %v", i, k, k2, got, want)
			}
			if want {
				delete(oracle, k)
				oracle[k2] = ov
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != len(oracle) {
		t.Fatalf("size %d, oracle %d", tr.Size(), len(oracle))
	}
	for k, ov := range oracle {
		if v, ok := tr.Load(k); !ok || v != ov {
			t.Fatalf("final Load(%d) = %v,%v want %v,true", k, v, ok, ov)
		}
	}
}

// TestReplaceCarriesValue pins the value-transport semantics of Replace
// through each of the paper's structural cases by replaying replaces at
// many key distances.
func TestReplaceCarriesValue(t *testing.T) {
	tr := mustNew(t, 8)
	rng := rand.New(rand.NewSource(3))
	oracle := make(map[uint64]int)
	for i := 0; i < 4000; i++ {
		k := rng.Uint64() % 64
		if rng.Intn(2) == 0 {
			tr.Store(k, int(k))
			oracle[k] = int(k)
		}
		k2 := rng.Uint64() % 64
		ov, oOK := oracle[k]
		_, o2OK := oracle[k2]
		want := oOK && !o2OK && k != k2
		if got := tr.Replace(k, k2); got != want {
			t.Fatalf("Replace(%d,%d) = %v want %v", k, k2, got, want)
		}
		if want {
			delete(oracle, k)
			oracle[k2] = ov
			if v, ok := tr.Load(k2); !ok || v != ov {
				t.Fatalf("Replace(%d,%d) dropped the value: got %v,%v want %v", k, k2, v, ok, ov)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// (TestLoadPerformsNoCAS — the stalled-update wait-free-read proof —
// lives in internal/engine, next to the failure-injection hook it uses.)

// TestConcurrentLoadOrStore: many goroutines race LoadOrStore on the same
// keys; for each key exactly one value wins and every goroutine observes
// that winner.
func TestConcurrentLoadOrStore(t *testing.T) {
	const (
		goroutines = 8
		keyCount   = 64
	)
	tr := mustNew(t, 8)
	got := make([][]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		got[g] = make([]any, keyCount)
		go func(g int) {
			defer wg.Done()
			for k := uint64(0); k < keyCount; k++ {
				v, _, _ := tr.LoadOrStore(k, g)
				got[g][k] = v
			}
		}(g)
	}
	wg.Wait()
	for k := uint64(0); k < keyCount; k++ {
		winner, ok := tr.Load(k)
		if !ok {
			t.Fatalf("key %d missing after LoadOrStore race", k)
		}
		for g := 0; g < goroutines; g++ {
			if got[g][k] != winner {
				t.Fatalf("key %d: goroutine %d saw %v, winner %v", k, g, got[g][k], winner)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestConcurrentCompareAndSwap uses CAS loops as contended counters: the
// final count must equal the number of successful increments.
func TestConcurrentCompareAndSwap(t *testing.T) {
	const (
		goroutines = 8
		increments = 2000
	)
	tr := mustNew(t, 4)
	tr.Store(1, 0)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					v, ok := tr.Load(1)
					if !ok {
						panic("counter key vanished")
					}
					if tr.CompareAndSwap(1, v, v.(int)+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := tr.Load(1); v != goroutines*increments {
		t.Fatalf("counter = %v, want %d", v, goroutines*increments)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestConcurrentStoreDeleteAccounting mixes upserts, CompareAndDelete and
// plain deletes on a tiny key space and checks per-key consistency at
// quiescence: whatever survived must be a value some goroutine stored.
func TestConcurrentStoreDeleteAccounting(t *testing.T) {
	const (
		goroutines = 8
		ops        = 5000
		keyRange   = 8
	)
	tr := mustNew(t, 4)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < ops; i++ {
				k := rng.Uint64() % keyRange
				switch rng.Intn(3) {
				case 0:
					tr.Store(k, g)
				case 1:
					if v, ok := tr.Load(k); ok {
						if _, isInt := v.(int); !isInt {
							panic("torn value observed")
						}
					}
				case 2:
					if v, ok := tr.Load(k); ok {
						tr.CompareAndDelete(k, v)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for k := uint64(0); k < keyRange; k++ {
		if v, ok := tr.Load(k); ok {
			if g, isInt := v.(int); !isInt || g < 0 || g >= goroutines {
				t.Fatalf("key %d holds impossible value %v", k, v)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAscendKV checks the ordered value iteration and its pruning.
func TestAscendKV(t *testing.T) {
	tr := mustNew(t, 8)
	for _, k := range []uint64{3, 9, 77, 200} {
		tr.Store(k, int(k)*10)
	}
	var ks []uint64
	tr.AscendKV(0, func(k uint64, v any) bool {
		ks = append(ks, k)
		if v != int(k)*10 {
			t.Errorf("AscendKV(%d) value %v", k, v)
		}
		return true
	})
	if len(ks) != 4 || ks[0] != 3 || ks[3] != 200 {
		t.Errorf("AscendKV(0) keys = %v", ks)
	}
	ks = nil
	tr.AscendKV(10, func(k uint64, v any) bool {
		ks = append(ks, k)
		return true
	})
	if len(ks) != 2 || ks[0] != 77 || ks[1] != 200 {
		t.Errorf("AscendKV(10) keys = %v", ks)
	}
	ks = nil
	tr.AscendKV(9, func(k uint64, v any) bool {
		ks = append(ks, k)
		return false // early stop
	})
	if len(ks) != 1 || ks[0] != 9 {
		t.Errorf("AscendKV(9) with early stop = %v", ks)
	}
	tr.AscendKV(201, func(k uint64, v any) bool {
		t.Errorf("AscendKV(201) yielded %d", k)
		return true
	})
	tr.AscendKV(1<<20, func(k uint64, v any) bool {
		t.Errorf("AscendKV out of range yielded %d", k)
		return true
	})
}

package core

import (
	"nbtrie/internal/keys"
)

// testHookAfterFlagging, when non-nil, runs inside help after all flag
// CASes succeeded and before the child CASes. It exists only for
// failure-injection tests (stalling an operation at its most delicate
// point); it is nil in production and must only be set at quiescence.
var testHookAfterFlagging func(*desc)

// help carries out the real work of the update described by the Flag
// descriptor I (lines 86-106). It may be called by the update's own
// process or by any process that encounters I while flagging; all calls
// perform the same CAS sequence, and the algorithm guarantees each step
// succeeds exactly once regardless of how many helpers race.
//
// The steps, in order: flag every node in I.flag (label order); if all
// succeeded, publish flagDone, flag the removed leaf (general-case
// replace only), and perform the child CASes; finally unflag survivors
// (success) or backtrack the flags (failure). The update is linearized at
// its first successful child CAS.
func (t *Trie) help(i *desc) bool {
	doChildCAS := true
	for j := 0; j < int(i.nFlag) && doChildCAS; j++ {
		n := i.flag[j]
		n.info.CompareAndSwap(i.oldInfo[j], i) // flag CAS (line 90)
		doChildCAS = n.info.Load() == i
	}

	if doChildCAS {
		if h := testHookAfterFlagging; h != nil {
			// Failure-injection point for tests: a process can be stalled
			// here, "crashed" with its flags planted, to prove that other
			// processes finish its update for it.
			h(i)
		}
		i.flagDone.Store(true)
		if i.rmvLeaf != nil {
			// Flag the leaf to be removed (line 95). A plain store
			// suffices in the paper because only helpers of I reach here
			// and they all write the same value; Lemma 40 shows no other
			// Flag can land on this leaf first.
			i.rmvLeaf.info.Store(i)
		}
		for j := 0; j < int(i.nPNode); j++ {
			p, nc := i.pNode[j], i.newChild[j]
			k := keys.BitAt(nc.bits, p.plen)
			p.child[k].CompareAndSwap(i.oldChild[j], nc) // child CAS (line 98)
		}
	}

	if i.flagDone.Load() {
		for j := int(i.nUnflag) - 1; j >= 0; j-- {
			i.unflag[j].info.CompareAndSwap(i, newUnflag()) // unflag CAS (line 101)
		}
		return true
	}
	for j := int(i.nFlag) - 1; j >= 0; j-- {
		i.flag[j].info.CompareAndSwap(i, newUnflag()) // backtrack CAS (line 105)
	}
	return false
}

// newDesc builds the Flag descriptor for an update (the paper's newFlag,
// lines 107-116). It returns nil — after helping the conflicting update,
// if any — when some node to be flagged is already owned by another
// operation, or when the same node was captured twice with different info
// values (its children may have changed between the two reads). Otherwise
// it deduplicates, sorts the flag set by label, and packs the descriptor.
func (t *Trie) newDesc(
	flag []*node, oldInfo []*desc, unflag []*node,
	pNode, oldChild, newChild []*node, rmvLeaf *node,
) *desc {
	// Lines 108-111: if any captured info value is a Flag, that update is
	// incomplete; help it and make the caller retry from scratch.
	for _, oi := range oldInfo {
		if oi.flagged() {
			t.help(oi)
			return nil
		}
	}

	// Lines 112-114: duplicates with disagreeing old values mean the node
	// changed between our two reads of it; retry. Otherwise keep the
	// first occurrence only.
	for a := 0; a < len(flag); a++ {
		for b := a + 1; b < len(flag); b++ {
			if flag[a] == flag[b] && oldInfo[a] != oldInfo[b] {
				return nil
			}
		}
	}
	df := make([]*node, 0, len(flag))
	di := make([]*desc, 0, len(flag))
	for a, n := range flag {
		dup := false
		for b := 0; b < a; b++ {
			if flag[b] == n {
				dup = true
				break
			}
		}
		if !dup {
			df = append(df, n)
			di = append(di, oldInfo[a])
		}
	}
	du := make([]*node, 0, len(unflag))
	for a, n := range unflag {
		dup := false
		for b := 0; b < a; b++ {
			if unflag[b] == n {
				dup = true
				break
			}
		}
		if !dup {
			du = append(du, n)
		}
	}

	// Line 115: sort the flag set (and its old values) by label so every
	// operation flags nodes in the same global order.
	for a := 1; a < len(df); a++ {
		for b := a; b > 0 && labelLess(df[b], df[b-1]); b-- {
			df[b], df[b-1] = df[b-1], df[b]
			di[b], di[b-1] = di[b-1], di[b]
		}
	}

	d := &desc{
		kind:    kindFlag,
		nFlag:   uint8(len(df)),
		nUnflag: uint8(len(du)),
		nPNode:  uint8(len(pNode)),
		rmvLeaf: rmvLeaf,
	}
	copy(d.flag[:], df)
	copy(d.oldInfo[:], di)
	copy(d.unflag[:], du)
	copy(d.pNode[:], pNode)
	copy(d.oldChild[:], oldChild)
	copy(d.newChild[:], newChild)
	return d
}

// makeInternal is the paper's createNode (lines 117-121): it returns a new
// internal node whose label is the longest common prefix of the two
// labels and whose children are n1 and n2 in bit order. If either label
// is a prefix of the other no such node exists; in that case the captured
// info value is helped if it is a Flag (the usual cause: n1 is a stale
// copy of a node another update is replacing) and nil is returned so the
// caller retries.
func (t *Trie) makeInternal(n1, n2 *node, info *desc) *node {
	if labelIsPrefixOf(n1, n2) || labelIsPrefixOf(n2, n1) {
		if info != nil && info.flagged() {
			t.help(info)
		}
		return nil
	}
	cpl := keys.CommonPrefixLen(n1.bits, n2.bits) // < min(plen1, plen2)
	bits := n1.bits & keys.Mask(cpl)
	if keys.BitAt(n1.bits, cpl) == 0 {
		return newInternal(bits, cpl, n1, n2)
	}
	return newInternal(bits, cpl, n2, n1)
}

// Insert adds k to the set, returning false if it was already present
// (lines 20-32). Out-of-range keys are rejected (false). The leaf (or
// internal node) at the insertion point is replaced by a new internal
// node whose children are a fresh leaf for k and a fresh copy of the
// displaced node; copying avoids ABA on child pointers. When the
// displaced node is internal it is flagged permanently, since it leaves
// the trie.
func (t *Trie) Insert(k uint64) bool {
	return t.InsertValue(k, nil)
}

// InsertValue is Insert with a value payload bound to the fresh leaf.
func (t *Trie) InsertValue(k uint64, val any) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	for {
		r := t.search(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if t.tryInsert(v, val, r) {
			return true
		}
	}
}

// tryInsert attempts one round of the insert protocol for the internal
// key v at the position located by r; it returns false when the caller
// must re-search and retry (conflicting update helped, or CAS lost).
func (t *Trie) tryInsert(v uint64, val any, r searchResult) bool {
	n := r.node
	nodeInfo := n.info.Load() // line 25: info before children
	newNode := t.makeInternal(copyNode(n), newLeafVal(v, t.klen, val), nodeInfo)
	if newNode == nil {
		return false
	}
	var i *desc
	if !n.leaf {
		i = t.newDesc(
			[]*node{r.p, n}, []*desc{r.pInfo, nodeInfo},
			[]*node{r.p},
			[]*node{r.p}, []*node{n}, []*node{newNode}, nil)
	} else {
		i = t.newDesc(
			[]*node{r.p}, []*desc{r.pInfo},
			[]*node{r.p},
			[]*node{r.p}, []*node{n}, []*node{newNode}, nil)
	}
	return i != nil && t.help(i)
}

// Delete removes k from the set, returning false if it was absent
// (lines 33-41). Out-of-range keys are reported absent. The parent of
// k's leaf is replaced by the leaf's sibling; both the grandparent and
// the parent are flagged, and the parent — which leaves the trie — stays
// flagged forever.
func (t *Trie) Delete(k uint64) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if t.tryDelete(v, r) {
			return true
		}
	}
}

// tryDelete attempts one round of the delete protocol for the internal
// key v located by r; false means re-search and retry.
func (t *Trie) tryDelete(v uint64, r searchResult) bool {
	sib := r.p.child[1-keys.BitAt(v, r.p.plen)].Load()
	if r.gp == nil {
		// A leaf that is a direct child of the root necessarily holds
		// a dummy key (the 0-prefix and 1-prefix subtrees always
		// contain their dummies), and dummies never match a user key,
		// so this branch is unreachable; retry defensively.
		return false
	}
	i := t.newDesc(
		[]*node{r.gp, r.p}, []*desc{r.gpInfo, r.pInfo},
		[]*node{r.gp},
		[]*node{r.gp}, []*node{r.p}, []*node{sib}, nil)
	return i != nil && t.help(i)
}

package core

import "nbtrie/internal/keys"

// Ordered queries. The trie's leaves are sorted by label, so
// predecessor/successor queries are direct structural walks. Like Range,
// these read without synchronization: results are exact at quiescence
// and best-effort under concurrent updates (each visited link was
// current at the moment it was read).

// Min returns the smallest key in the set.
func (t *Trie[V]) Min() (uint64, bool) { return t.Ceiling(0) }

// Max returns the largest key in the set.
func (t *Trie[V]) Max() (uint64, bool) {
	if t.width == 64 {
		return t.Floor(^uint64(0))
	}
	return t.Floor(uint64(1)<<t.width - 1)
}

// Ceiling returns the smallest key >= k, if any. A k beyond the trie's
// key range has no ceiling.
func (t *Trie[V]) Ceiling(k uint64) (uint64, bool) {
	v, inRange := t.encodeOK(k)
	if !inRange {
		return 0, false
	}
	if bits, ok := t.ceilNode(t.root, v); ok {
		return keys.Decode(bits, t.width), true
	}
	return 0, false
}

// Floor returns the largest key <= k, if any. A k beyond the trie's key
// range bounds every member, so its floor is the maximum.
func (t *Trie[V]) Floor(k uint64) (uint64, bool) {
	v, inRange := t.encodeOK(k)
	if !inRange {
		return t.Max()
	}
	if bits, ok := t.floorNode(t.root, v); ok {
		return keys.Decode(bits, t.width), true
	}
	return 0, false
}

// subtreeMax returns the largest label a key under n can have.
func subtreeMax[V any](n *node[V]) uint64 {
	return n.bits | ^keys.Mask(n.plen)
}

// usableLeaf reports whether a leaf holds a live user key.
func (t *Trie[V]) usableLeaf(n *node[V]) bool {
	if n.bits == keys.DummyMin(t.width) || n.bits == keys.DummyMax(t.width) {
		return false
	}
	return !logicallyRemoved(n.info.Load())
}

func (t *Trie[V]) ceilNode(n *node[V], v uint64) (uint64, bool) {
	if n.leaf {
		if n.bits >= v && t.usableLeaf(n) {
			return n.bits, true
		}
		return 0, false
	}
	left := n.child[0].Load()
	if subtreeMax(left) >= v {
		if bits, ok := t.ceilNode(left, v); ok {
			return bits, ok
		}
	}
	return t.ceilNode(n.child[1].Load(), v)
}

// AscendKV calls fn on every key >= from, in increasing order with the
// bound value, until fn returns false. It shares Range's consistency
// contract: read-only, exact at quiescence, best-effort under concurrent
// updates. Subtrees whose label range lies entirely below from are
// pruned, so resuming an iteration from a midpoint costs one descent,
// not a full walk.
func (t *Trie[V]) AscendKV(from uint64, fn func(k uint64, val V) bool) {
	v, inRange := t.encodeOK(from)
	if !inRange {
		return // nothing at or above a key beyond the range
	}
	t.ascendNode(t.root, v, fn)
}

func (t *Trie[V]) ascendNode(n *node[V], v uint64, fn func(k uint64, val V) bool) bool {
	if n.leaf {
		if n.bits >= v && t.usableLeaf(n) {
			return fn(keys.Decode(n.bits, t.width), n.val)
		}
		return true
	}
	for idx := 0; idx < 2; idx++ {
		c := n.child[idx].Load()
		if subtreeMax(c) < v {
			continue // every leaf below c sorts before v
		}
		if !t.ascendNode(c, v, fn) {
			return false
		}
	}
	return true
}

func (t *Trie[V]) floorNode(n *node[V], v uint64) (uint64, bool) {
	if n.leaf {
		if n.bits <= v && t.usableLeaf(n) {
			return n.bits, true
		}
		return 0, false
	}
	right := n.child[1].Load()
	if right.bits <= v {
		if bits, ok := t.floorNode(right, v); ok {
			return bits, ok
		}
	}
	return t.floorNode(n.child[0].Load(), v)
}

package core

import "nbtrie/internal/keys"

// Ordered queries. The trie's leaves are sorted by label, so
// predecessor/successor queries are direct structural walks. Like Range,
// these read without synchronization: results are exact at quiescence
// and best-effort under concurrent updates (each visited link was
// current at the moment it was read).

// Min returns the smallest key in the set.
func (t *Trie) Min() (uint64, bool) { return t.Ceiling(0) }

// Max returns the largest key in the set.
func (t *Trie) Max() (uint64, bool) {
	if t.width == 64 {
		return t.Floor(^uint64(0))
	}
	return t.Floor(uint64(1)<<t.width - 1)
}

// Ceiling returns the smallest key >= k, if any.
func (t *Trie) Ceiling(k uint64) (uint64, bool) {
	v := t.encode(k)
	if bits, ok := t.ceilNode(t.root, v); ok {
		return keys.Decode(bits, t.width), true
	}
	return 0, false
}

// Floor returns the largest key <= k, if any.
func (t *Trie) Floor(k uint64) (uint64, bool) {
	v := t.encode(k)
	if bits, ok := t.floorNode(t.root, v); ok {
		return keys.Decode(bits, t.width), true
	}
	return 0, false
}

// subtreeMax returns the largest label a key under n can have.
func subtreeMax(n *node) uint64 {
	return n.bits | ^keys.Mask(n.plen)
}

// usableLeaf reports whether a leaf holds a live user key.
func (t *Trie) usableLeaf(n *node) bool {
	if n.bits == keys.DummyMin(t.width) || n.bits == keys.DummyMax(t.width) {
		return false
	}
	return !logicallyRemoved(n.info.Load())
}

func (t *Trie) ceilNode(n *node, v uint64) (uint64, bool) {
	if n.leaf {
		if n.bits >= v && t.usableLeaf(n) {
			return n.bits, true
		}
		return 0, false
	}
	left := n.child[0].Load()
	if subtreeMax(left) >= v {
		if bits, ok := t.ceilNode(left, v); ok {
			return bits, ok
		}
	}
	return t.ceilNode(n.child[1].Load(), v)
}

func (t *Trie) floorNode(n *node, v uint64) (uint64, bool) {
	if n.leaf {
		if n.bits <= v && t.usableLeaf(n) {
			return n.bits, true
		}
		return 0, false
	}
	right := n.child[1].Load()
	if right.bits <= v {
		if bits, ok := t.floorNode(right, v); ok {
			return bits, ok
		}
	}
	return t.floorNode(n.child[0].Load(), v)
}

package core

import "nbtrie/internal/keys"

// Ordered queries, delegated to the engine's Compare-driven walks and
// decoded back to user keys. Like Range, these read without
// synchronization: results are exact at quiescence and best-effort under
// concurrent updates (each visited link was current at the moment it was
// read).

// Min returns the smallest key in the set.
func (t *Trie[V]) Min() (uint64, bool) { return t.Ceiling(0) }

// Max returns the largest key in the set.
func (t *Trie[V]) Max() (uint64, bool) {
	return t.Floor(uint64(1)<<t.width - 1)
}

// Ceiling returns the smallest key >= k, if any. A k beyond the trie's
// key range has no ceiling.
func (t *Trie[V]) Ceiling(k uint64) (uint64, bool) {
	v, inRange := t.encodeOK(k)
	if !inRange {
		return 0, false
	}
	if label, ok := t.e.Ceiling(v); ok {
		return keys.DecodeUint64(label, t.width), true
	}
	return 0, false
}

// Floor returns the largest key <= k, if any. A k beyond the trie's key
// range bounds every member, so its floor is the maximum.
func (t *Trie[V]) Floor(k uint64) (uint64, bool) {
	v, inRange := t.encodeOK(k)
	if !inRange {
		return t.Max()
	}
	if label, ok := t.e.Floor(v); ok {
		return keys.DecodeUint64(label, t.width), true
	}
	return 0, false
}

// AscendKV calls fn on every key >= from, in increasing order with the
// bound value, until fn returns false. It shares Range's consistency
// contract: read-only, exact at quiescence, best-effort under concurrent
// updates. Subtrees whose label range lies entirely below from are
// pruned, so resuming an iteration from a midpoint costs one descent,
// not a full walk.
func (t *Trie[V]) AscendKV(from uint64, fn func(k uint64, val V) bool) {
	v, inRange := t.encodeOK(from)
	if !inRange {
		return // nothing at or above a key beyond the range
	}
	t.e.AscendKV(v, func(label keys.Uint64Key, val V) bool {
		return fn(keys.DecodeUint64(label, t.width), val)
	})
}

package core

import (
	"fmt"

	"nbtrie/internal/keys"
)

// The helpers in this file traverse the trie without synchronization and
// are intended for quiescent use (tests, examples, offline inspection).
// Called concurrently with updates they are safe — they only read — but
// may observe a mix of states; only Range documents a weaker concurrent
// guarantee.

// Range calls fn for every user key in the set, in increasing order,
// until fn returns false. Dummy leaves and logically removed leaves are
// skipped. Concurrent updates may or may not be observed; keys that are
// present for the whole traversal are always reported. It is the
// key-only view of AscendKV from the bottom of the key space.
func (t *Trie[V]) Range(fn func(k uint64) bool) {
	t.AscendKV(0, func(k uint64, _ V) bool { return fn(k) })
}

// Keys returns every user key in the set in increasing order.
func (t *Trie[V]) Keys() []uint64 {
	var out []uint64
	t.Range(func(k uint64) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Size returns the number of user keys in the set by traversal.
func (t *Trie[V]) Size() int { return t.e.Size() }

// Len returns the number of user keys from the engine's atomic counter:
// O(1), allocation-free, exact at quiescence, and at most the number of
// in-flight mutations stale under concurrency (see engine.Trie.Len).
func (t *Trie[V]) Len() int { return t.e.Len() }

// Validate checks the structural invariants of the trie and returns the
// first violation found, or nil. It must be called at quiescence. The
// engine checks the key-agnostic invariants (Invariant 7 label
// lengthening, two children, dummy extremes, sorted leaves, no reachable
// flags); this instantiation adds the fixed-width label shape: canonical
// bits and exact label lengths (full ℓ for leaves, < ℓ for internal
// nodes).
func (t *Trie[V]) Validate() error {
	return t.e.Validate(func(label keys.Uint64Key, leaf bool) error {
		if label.Bits()&^keys.Mask(label.Len()) != 0 {
			return fmt.Errorf("label %#x/%d is not canonical", label.Bits(), label.Len())
		}
		if leaf {
			if label.Len() != t.klen {
				return fmt.Errorf("leaf label length %d != key length %d", label.Len(), t.klen)
			}
		} else if label.Len() >= t.klen {
			return fmt.Errorf("internal label length %d must be < key length %d", label.Len(), t.klen)
		}
		return nil
	})
}

// Dump renders the trie structure as an indented multi-line string, for
// debugging and the triecli tool. Quiescent use only.
func (t *Trie[V]) Dump() string {
	return t.e.Dump(func(label keys.Uint64Key, leaf bool) string {
		if !leaf {
			return fmt.Sprintf("node %q", label.String())
		}
		switch {
		case label.Equal(keys.Uint64DummyMin(t.width)):
			return fmt.Sprintf("leaf %s (dummy 0^ℓ)", label)
		case label.Equal(keys.Uint64DummyMax(t.width)):
			return fmt.Sprintf("leaf %s (dummy 1^ℓ)", label)
		default:
			return fmt.Sprintf("leaf %s = %d", label, keys.DecodeUint64(label, t.width))
		}
	})
}

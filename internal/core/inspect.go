package core

import (
	"fmt"
	"strings"

	"nbtrie/internal/keys"
)

// The helpers in this file traverse the trie without synchronization and
// are intended for quiescent use (tests, examples, offline inspection).
// Called concurrently with updates they are safe — they only read — but
// may observe a mix of states; only Range documents a weaker concurrent
// guarantee.

// Range calls fn for every user key in the set, in increasing order,
// until fn returns false. Dummy leaves and logically removed leaves are
// skipped. Concurrent updates may or may not be observed; keys that are
// present for the whole traversal are always reported. It is the
// key-only view of AscendKV from the bottom of the key space.
func (t *Trie[V]) Range(fn func(k uint64) bool) {
	t.AscendKV(0, func(k uint64, _ V) bool { return fn(k) })
}

// Keys returns every user key in the set in increasing order.
func (t *Trie[V]) Keys() []uint64 {
	var out []uint64
	t.Range(func(k uint64) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Size returns the number of user keys in the set.
func (t *Trie[V]) Size() int {
	n := 0
	t.Range(func(uint64) bool {
		n++
		return true
	})
	return n
}

// Validate checks the structural invariants of the trie and returns the
// first violation found, or nil. It must be called at quiescence (no
// concurrent updates). Checked invariants, from the paper's proof:
//
//   - Invariant 7: if x.child[i] = y then x.label · i is a prefix of
//     y.label; hence labels strictly lengthen along every path.
//   - Every internal node has exactly two non-nil children (Lemma 4).
//   - Labels are canonical and leaf labels have full length ℓ.
//   - The two dummy leaves are the extreme leaves of the trie.
//   - Leaf labels appear in strictly increasing order.
//   - No reachable node is flagged (Lemma 64: after every help call
//     returns, no reachable node's info is a Flag).
func (t *Trie[V]) Validate() error {
	if t.root.plen != 0 || t.root.leaf {
		return fmt.Errorf("root must be an internal node with empty label")
	}
	var leaves []uint64
	if err := t.validateNode(t.root, &leaves); err != nil {
		return err
	}
	if len(leaves) < 2 {
		return fmt.Errorf("trie must always hold the two dummy leaves, found %d leaves", len(leaves))
	}
	for i := 1; i < len(leaves); i++ {
		if leaves[i-1] >= leaves[i] {
			return fmt.Errorf("leaf labels out of order: %#x before %#x", leaves[i-1], leaves[i])
		}
	}
	if leaves[0] != keys.DummyMin(t.width) {
		return fmt.Errorf("leftmost leaf %#x is not the 0^ℓ dummy", leaves[0])
	}
	if leaves[len(leaves)-1] != keys.DummyMax(t.width) {
		return fmt.Errorf("rightmost leaf %#x is not the 1^ℓ dummy", leaves[len(leaves)-1])
	}
	return nil
}

func (t *Trie[V]) validateNode(n *node[V], leaves *[]uint64) error {
	if n.bits&^keys.Mask(n.plen) != 0 {
		return fmt.Errorf("label %#x/%d is not canonical", n.bits, n.plen)
	}
	if n.info.Load().flagged() {
		return fmt.Errorf("reachable node %#x/%d is flagged at quiescence", n.bits, n.plen)
	}
	if n.leaf {
		if n.plen != t.klen {
			return fmt.Errorf("leaf label length %d != key length %d", n.plen, t.klen)
		}
		*leaves = append(*leaves, n.bits)
		return nil
	}
	if n.plen >= t.klen {
		return fmt.Errorf("internal label length %d must be < key length %d", n.plen, t.klen)
	}
	for idx := 0; idx < 2; idx++ {
		c := n.child[idx].Load()
		if c == nil {
			return fmt.Errorf("internal node %#x/%d has nil child %d", n.bits, n.plen, idx)
		}
		if c.plen <= n.plen {
			return fmt.Errorf("child label length %d not longer than parent's %d", c.plen, n.plen)
		}
		if !keys.IsPrefix(n.bits, n.plen, c.bits) {
			return fmt.Errorf("parent label %#x/%d is not a prefix of child label %#x/%d",
				n.bits, n.plen, c.bits, c.plen)
		}
		if keys.BitAt(c.bits, n.plen) != idx {
			return fmt.Errorf("child %d of %#x/%d has wrong branch bit", idx, n.bits, n.plen)
		}
		if err := t.validateNode(c, leaves); err != nil {
			return err
		}
	}
	return nil
}

// Dump renders the trie structure as an indented multi-line string, for
// debugging and the triecli tool. Quiescent use only.
func (t *Trie[V]) Dump() string {
	var sb strings.Builder
	t.dumpNode(&sb, t.root, 0)
	return sb.String()
}

func (t *Trie[V]) dumpNode(sb *strings.Builder, n *node[V], depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	label := labelString(n.bits, n.plen)
	if n.leaf {
		switch n.bits {
		case keys.DummyMin(t.width):
			fmt.Fprintf(sb, "leaf %s (dummy 0^ℓ)\n", label)
		case keys.DummyMax(t.width):
			fmt.Fprintf(sb, "leaf %s (dummy 1^ℓ)\n", label)
		default:
			fmt.Fprintf(sb, "leaf %s = %d\n", label, keys.Decode(n.bits, t.width))
		}
		return
	}
	fmt.Fprintf(sb, "node %q\n", label)
	t.dumpNode(sb, n.child[0].Load(), depth+1)
	t.dumpNode(sb, n.child[1].Load(), depth+1)
}

func labelString(bits uint64, plen uint32) string {
	if plen == 0 {
		return "ε"
	}
	var sb strings.Builder
	for i := uint32(0); i < plen; i++ {
		sb.WriteByte(byte('0' + keys.BitAt(bits, i)))
	}
	return sb.String()
}

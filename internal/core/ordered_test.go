package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOrderedQueriesBasic(t *testing.T) {
	tr := mustNew(t, 8)
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty trie should report absent")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty trie should report absent")
	}
	for _, k := range []uint64{10, 200, 55} {
		tr.Insert(k)
	}
	if k, ok := tr.Min(); !ok || k != 10 {
		t.Errorf("Min = %d,%v want 10", k, ok)
	}
	if k, ok := tr.Max(); !ok || k != 200 {
		t.Errorf("Max = %d,%v want 200", k, ok)
	}
	if k, ok := tr.Ceiling(11); !ok || k != 55 {
		t.Errorf("Ceiling(11) = %d,%v want 55", k, ok)
	}
	if k, ok := tr.Ceiling(55); !ok || k != 55 {
		t.Errorf("Ceiling(55) = %d,%v want 55", k, ok)
	}
	if _, ok := tr.Ceiling(201); ok {
		t.Error("Ceiling(201) should be absent")
	}
	if k, ok := tr.Floor(54); !ok || k != 10 {
		t.Errorf("Floor(54) = %d,%v want 10", k, ok)
	}
	if k, ok := tr.Floor(255); !ok || k != 200 {
		t.Errorf("Floor(255) = %d,%v want 200", k, ok)
	}
	if _, ok := tr.Floor(9); ok {
		t.Error("Floor(9) should be absent")
	}
}

func TestOrderedQueriesBoundaryWidths(t *testing.T) {
	// Extreme widths: 1-bit space {0,1} and the full 63-bit space.
	tr1 := mustNew(t, 1)
	tr1.Insert(0)
	tr1.Insert(1)
	if k, ok := tr1.Min(); !ok || k != 0 {
		t.Errorf("width1 Min = %d,%v", k, ok)
	}
	if k, ok := tr1.Max(); !ok || k != 1 {
		t.Errorf("width1 Max = %d,%v", k, ok)
	}

	tr63 := mustNew(t, 63)
	big := uint64(1)<<63 - 1
	tr63.Insert(0)
	tr63.Insert(big)
	if k, ok := tr63.Max(); !ok || k != big {
		t.Errorf("width63 Max = %d,%v", k, ok)
	}
	if k, ok := tr63.Ceiling(1); !ok || k != big {
		t.Errorf("width63 Ceiling(1) = %d,%v", k, ok)
	}
}

func TestOrderedQueriesOracle(t *testing.T) {
	tr := mustNew(t, 10)
	rng := rand.New(rand.NewSource(5))
	present := make(map[uint64]bool)
	for i := 0; i < 300; i++ {
		k := rng.Uint64() % 1024
		if rng.Intn(3) == 0 {
			tr.Delete(k)
			delete(present, k)
		} else {
			tr.Insert(k)
			present[k] = true
		}
	}
	sorted := make([]uint64, 0, len(present))
	for k := range present {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for probe := uint64(0); probe < 1024; probe += 7 {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= probe })
		gotK, gotOK := tr.Ceiling(probe)
		if wantOK := i < len(sorted); gotOK != wantOK || (gotOK && gotK != sorted[i]) {
			t.Fatalf("Ceiling(%d) = %d,%v; oracle %v", probe, gotK, gotOK, sorted[i:min(i+1, len(sorted))])
		}
		j := sort.Search(len(sorted), func(i int) bool { return sorted[i] > probe }) - 1
		gotK, gotOK = tr.Floor(probe)
		if wantOK := j >= 0; gotOK != wantOK || (gotOK && gotK != sorted[j]) {
			t.Fatalf("Floor(%d) = %d,%v; oracle j=%d", probe, gotK, gotOK, j)
		}
	}
}

// (TestOrderedSkipsLogicallyRemoved, which fabricates a replace
// descriptor by hand, lives in internal/engine with the rest of the
// white-box protocol tests.)

package core

import (
	"fmt"

	"nbtrie/internal/keys"
)

// Trie is a non-blocking Patricia trie implementing a linearizable set of
// uint64 keys in [0, 2^width) — and a linearizable uint64 → V map through
// the value payload carried unboxed on every leaf. All methods are safe
// for concurrent use by any number of goroutines without external
// synchronization. The pure set view instantiates V = struct{}, which
// occupies no space in the leaf.
type Trie[V any] struct {
	width uint32
	klen  uint32
	root  *node[V]

	// skipRmvdCheck applies the paper's Section V optimization for
	// workloads without replace operations: the search does not inspect
	// leaf info fields for logical removal. Replace must not be used on
	// such a trie.
	skipRmvdCheck bool
}

// Option configures a Trie.
type Option[V any] func(*Trie[V])

// WithoutReplace applies the paper's Section V optimization ("we
// eliminated the rmvd variable in search operations"): searches skip the
// logical-removal check that only replace operations can trigger. Calling
// Replace on a trie built with this option panics.
func WithoutReplace[V any]() Option[V] {
	return func(t *Trie[V]) { t.skipRmvdCheck = true }
}

// New returns an empty trie over keys in [0, 2^width). Width must be in
// [1, keys.MaxWidth].
func New[V any](width uint32, opts ...Option[V]) (*Trie[V], error) {
	if width < 1 || width > keys.MaxWidth {
		return nil, fmt.Errorf("patricia trie: width %d out of range [1, %d]", width, keys.MaxWidth)
	}
	klen := keys.KeyLen(width)
	t := &Trie[V]{width: width, klen: klen}
	t.root = newInternal(0, 0,
		newLeaf[V](keys.DummyMin(width), klen),
		newLeaf[V](keys.DummyMax(width), klen))
	for _, o := range opts {
		o(t)
	}
	return t, nil
}

// Width returns the user-key width in bits.
func (t *Trie[V]) Width() uint32 { return t.width }

// encode maps a user key into the internal left-aligned key space,
// panicking on out-of-range keys. The exported operations never call it
// with an out-of-range key (they go through encodeOK); it is retained for
// white-box tests that construct internal keys directly.
func (t *Trie[V]) encode(k uint64) uint64 {
	if !keys.InRange(k, t.width) {
		panic(fmt.Sprintf("patricia trie: key %d out of range for width %d", k, t.width))
	}
	return keys.Encode(k, t.width)
}

// encodeOK maps a user key into the internal key space, reporting false
// for keys outside [0, 2^width). Out-of-range keys are never members of
// the set, so every operation treats them as simply absent instead of
// panicking.
func (t *Trie[V]) encodeOK(k uint64) (uint64, bool) {
	if !keys.InRange(k, t.width) {
		return 0, false
	}
	return keys.Encode(k, t.width), true
}

// searchResult carries the paper's 6-tuple ⟨gp, p, node, gpInfo, pInfo,
// rmvd⟩ returned by search.
type searchResult[V any] struct {
	gp, p, node   *node[V]
	gpInfo, pInfo *desc[V]
	rmvd          bool
}

// search locates the internal key v, per lines 76-85. It starts at the
// root and descends by the bit of v at each node's label length, stopping
// at a leaf or at an internal node whose label is no longer a prefix of v.
// It is wait-free: labels strictly lengthen along any path (Invariant 7),
// so the loop runs at most ℓ times. It performs no CAS, never writes
// shared memory, and never allocates.
func (t *Trie[V]) search(v uint64) searchResult[V] {
	var r searchResult[V]
	n := t.root
	for !n.leaf && keys.IsPrefix(n.bits, n.plen, v) {
		r.gp, r.gpInfo = r.p, r.pInfo
		r.p, r.pInfo = n, n.info.Load()
		n = r.p.child[keys.BitAt(v, r.p.plen)].Load()
	}
	r.node = n
	if n.leaf && !t.skipRmvdCheck {
		r.rmvd = logicallyRemoved(n.info.Load())
	}
	return r
}

// logicallyRemoved implements lines 122-124: a leaf whose info field holds
// the Flag of a general-case replace is logically removed once that
// replace's first child CAS has happened, which is detectable by the old
// child no longer being a child of pNode[0] (Lemma 41).
func logicallyRemoved[V any](i *desc[V]) bool {
	if !i.flagged() {
		return false
	}
	p, old := i.pNode[0], i.oldChild[0]
	return p.child[0].Load() != old && p.child[1].Load() != old
}

// keyInTrie implements lines 125-126.
func keyInTrie[V any](n *node[V], v uint64, rmvd bool) bool {
	return n.leaf && n.bits == v && !rmvd
}

// Contains reports whether k is in the set. It is wait-free, never
// modifies the trie and never allocates (the paper's find, lines 72-75).
// Out-of-range keys are reported absent.
func (t *Trie[V]) Contains(k uint64) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	r := t.search(v)
	return keyInTrie(r.node, v, r.rmvd)
}

// Load returns the value stored under k, or (zero, false) when k is not
// in the set. Like Contains it is wait-free and allocation-free: one
// descent, only reads, no CAS, and the value comes back unboxed straight
// from the leaf. Leaf values are immutable (updates install fresh
// leaves), so the value returned is exactly the one bound to k at the
// linearization point.
func (t *Trie[V]) Load(k uint64) (V, bool) {
	var zero V
	v, ok := t.encodeOK(k)
	if !ok {
		return zero, false
	}
	r := t.search(v)
	if !keyInTrie(r.node, v, r.rmvd) {
		return zero, false
	}
	return r.node.val, true
}

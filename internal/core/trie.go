// Package core is the fixed-width instantiation of the shared
// non-blocking update engine (internal/engine): the Patricia trie of
// Shafiei, "Non-blocking Patricia Tries with Replace Operations"
// (ICDCS 2013) over uint64 keys in [0, 2^width), with the value payload
// V carried on leaves making it a linearizable uint64 → V map.
//
// All protocol code — descriptors, flagging, helping, the child CASes,
// replace's case analysis — lives in internal/engine; this package
// contributes only the key layer: user keys are shifted into the
// (width+1)-bit internal space (keys.EncodeUint64, the paper's k -> k+1
// mapping that frees the dummy strings) and validated for range, with
// out-of-range keys treated as permanently absent rather than errors.
//
// Because keys.Uint64Key has bounded length and pure value arithmetic,
// this instantiation keeps the paper's strongest read guarantee:
// Contains/Load are wait-free — at most width+1 child-pointer reads, no
// CAS, no allocation — which is what Implementation.WaitFreeRead
// advertises at the registry layer. (The byte-string instantiation,
// internal/strtrie, is the contrast: unbounded keys make its search
// lock-free only.)
package core

import (
	"fmt"

	"nbtrie/internal/engine"
	"nbtrie/internal/keys"
)

// Trie is a non-blocking Patricia trie implementing a linearizable set
// of uint64 keys in [0, 2^width) — and a linearizable uint64 → V map
// through the value payload carried unboxed on every leaf. All methods
// are safe for concurrent use by any number of goroutines without
// external synchronization. The pure set view instantiates
// V = struct{}, which occupies no space in the leaf.
type Trie[V any] struct {
	width uint32
	klen  uint32
	span  uint32
	e     *engine.Trie[keys.Uint64Key, V]
}

// Option configures a Trie.
type Option[V any] func(*options)

type options struct {
	withoutReplace bool
	span           uint32
}

// WithoutReplace applies the paper's Section V optimization ("we
// eliminated the rmvd variable in search operations"): searches skip the
// logical-removal check that only replace operations can trigger. Calling
// Replace on a trie built with this option panics.
func WithoutReplace[V any]() Option[V] {
	return func(o *options) { o.withoutReplace = true }
}

// WithSpan sets the digit width s in bits: internal nodes carry 2^s
// child slots (a span-4 node's 16 pointers pack into two cache lines)
// and every level of the trie resolves s key bits, cutting expected
// depth s-fold at the cost of wider node copies on the update paths. s
// must be in [1, 6]; 1 — the default — is the paper's binary trie.
// Fixed-width keys all share one length, so every span satisfies the
// engine's digit-soundness constraint, including widths where the
// bottom digit is partial. All guarantees are unchanged: wait-free
// allocation-free reads, lock-free updates, atomic Replace, O(1)
// snapshots.
func WithSpan[V any](s uint32) Option[V] {
	if s < 1 || s > 6 {
		panic("patricia trie: span must be in [1, 6]")
	}
	return func(o *options) { o.span = s }
}

// New returns an empty trie over keys in [0, 2^width). Width must be in
// [1, keys.MaxWidth].
func New[V any](width uint32, opts ...Option[V]) (*Trie[V], error) {
	if width < 1 || width > keys.MaxWidth {
		return nil, fmt.Errorf("patricia trie: width %d out of range [1, %d]", width, keys.MaxWidth)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	var eopts []engine.Option[keys.Uint64Key, V]
	if o.withoutReplace {
		eopts = append(eopts, engine.WithoutReplace[keys.Uint64Key, V]())
	}
	span := o.span
	if span == 0 {
		span = 1
	}
	if span > 1 {
		eopts = append(eopts, engine.WithSpan[keys.Uint64Key, V](span))
	}
	return &Trie[V]{
		width: width,
		klen:  keys.KeyLen(width),
		span:  span,
		e:     engine.New[keys.Uint64Key, V](keys.Uint64DummyMin(width), keys.Uint64DummyMax(width), eopts...),
	}, nil
}

// Width returns the user-key width in bits.
func (t *Trie[V]) Width() uint32 { return t.width }

// Span returns the digit width s: each internal node resolves s key
// bits through 2^s child slots. 1 unless set with WithSpan.
func (t *Trie[V]) Span() uint32 { return t.span }

// encodeOK maps a user key into the internal key space, reporting false
// for keys outside [0, 2^width). Out-of-range keys are never members of
// the set, so every operation treats them as simply absent instead of
// panicking.
func (t *Trie[V]) encodeOK(k uint64) (keys.Uint64Key, bool) {
	if !keys.InRange(k, t.width) {
		return keys.Uint64Key{}, false
	}
	return keys.EncodeUint64(k, t.width), true
}

// Contains reports whether k is in the set. It is wait-free, never
// modifies the trie and never allocates (the paper's find, lines 72-75).
// Out-of-range keys are reported absent.
func (t *Trie[V]) Contains(k uint64) bool {
	v, ok := t.encodeOK(k)
	return ok && t.e.Contains(v)
}

// Load returns the value stored under k, or (zero, false) when k is not
// in the set. Like Contains it is wait-free and allocation-free: one
// descent, only reads, no CAS, and the value comes back unboxed straight
// from the leaf.
func (t *Trie[V]) Load(k uint64) (V, bool) {
	v, ok := t.encodeOK(k)
	if !ok {
		var zero V
		return zero, false
	}
	return t.e.Load(v)
}

// Insert adds k to the set, returning false if it was already present.
// Out-of-range keys are rejected (false). Lock-free.
func (t *Trie[V]) Insert(k uint64) bool {
	var zero V
	return t.InsertValue(k, zero)
}

// InsertValue is Insert with a value payload bound to the fresh leaf.
func (t *Trie[V]) InsertValue(k uint64, val V) bool {
	v, ok := t.encodeOK(k)
	return ok && t.e.InsertValue(v, val)
}

// Delete removes k from the set, returning false if it was absent.
// Out-of-range keys are reported absent. Lock-free.
func (t *Trie[V]) Delete(k uint64) bool {
	v, ok := t.encodeOK(k)
	return ok && t.e.Delete(v)
}

// Replace atomically removes old and inserts new, returning true exactly
// when old was present and new absent; the value payload travels with
// the key. Out-of-range keys make the operation fail (an out-of-range
// old is never present; an out-of-range new cannot be inserted).
// Replace panics if the trie was built with WithoutReplace.
func (t *Trie[V]) Replace(old, new uint64) bool {
	vd, okD := t.encodeOK(old)
	vi, okI := t.encodeOK(new)
	if !okD || !okI {
		return false
	}
	return t.e.Replace(vd, vi)
}

// Store binds k to val, inserting the key if absent and overwriting the
// value if present (lock-free upsert). It returns false only for
// out-of-range keys, which cannot be stored.
func (t *Trie[V]) Store(k uint64, val V) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	t.e.Store(v, val)
	return true
}

// LoadOrStore returns the value bound to k if present (loaded == true);
// otherwise it stores val and returns it. The load path is wait-free.
// ok is false only for out-of-range keys, which can neither be loaded
// nor stored; loaded is false and actual is the zero value in that case.
func (t *Trie[V]) LoadOrStore(k uint64, val V) (actual V, loaded, ok bool) {
	v, inRange := t.encodeOK(k)
	if !inRange {
		var zero V
		return zero, false, false
	}
	actual, loaded = t.e.LoadOrStore(v, val)
	return actual, loaded, true
}

// CompareAndSwap swaps the value bound to k from old to new if the stored
// value equals old (interface equality; old must be comparable). It
// returns true iff the swap happened.
func (t *Trie[V]) CompareAndSwap(k uint64, old, new V) bool {
	v, ok := t.encodeOK(k)
	return ok && t.e.CompareAndSwap(v, old, new)
}

// CompareAndDelete deletes k if its stored value equals old (interface
// equality; old must be comparable). It returns true iff the key was
// deleted.
func (t *Trie[V]) CompareAndDelete(k uint64, old V) bool {
	v, ok := t.encodeOK(k)
	return ok && t.e.CompareAndDelete(v, old)
}

// DeleteFunc deletes k if cond returns true for its stored value,
// returning true iff the key was deleted. The value cond approved is the
// value removed (the engine pins the inspected leaf until the delete
// commits). cond may run more than once under contention and must be
// side-effect free.
func (t *Trie[V]) DeleteFunc(k uint64, cond func(V) bool) bool {
	v, ok := t.encodeOK(k)
	return ok && t.e.DeleteFunc(v, cond)
}

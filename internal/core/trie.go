package core

import (
	"fmt"

	"nbtrie/internal/keys"
)

// Trie is a non-blocking Patricia trie implementing a linearizable set of
// uint64 keys in [0, 2^width). All methods are safe for concurrent use by
// any number of goroutines without external synchronization.
//
// Internally keys are width+1 bits long (the paper's ℓ), shifted by one so
// that the two permanent dummy leaves 0^ℓ and 1^ℓ can never collide with a
// user key. The root is a permanent internal node labelled ε whose subtree
// always contains both dummies, so the trie always has at least two leaves
// and the root never needs replacing, exactly as in the paper's
// initialization (Figure 2, line 19).
type Trie struct {
	width uint32
	klen  uint32
	root  *node

	// skipRmvdCheck applies the paper's Section V optimization for
	// workloads without replace operations: the search does not inspect
	// leaf info fields for logical removal. Replace must not be used on
	// such a trie.
	skipRmvdCheck bool
}

// Option configures a Trie.
type Option func(*Trie)

// WithoutReplace applies the paper's Section V optimization ("we
// eliminated the rmvd variable in search operations"): searches skip the
// logical-removal check that only replace operations can trigger. Calling
// Replace on a trie built with this option panics.
func WithoutReplace() Option {
	return func(t *Trie) { t.skipRmvdCheck = true }
}

// New returns an empty trie over keys in [0, 2^width). Width must be in
// [1, keys.MaxWidth].
func New(width uint32, opts ...Option) (*Trie, error) {
	if width < 1 || width > keys.MaxWidth {
		return nil, fmt.Errorf("patricia trie: width %d out of range [1, %d]", width, keys.MaxWidth)
	}
	klen := keys.KeyLen(width)
	t := &Trie{width: width, klen: klen}
	t.root = newInternal(0, 0,
		newLeaf(keys.DummyMin(width), klen),
		newLeaf(keys.DummyMax(width), klen))
	for _, o := range opts {
		o(t)
	}
	return t, nil
}

// Width returns the user-key width in bits.
func (t *Trie) Width() uint32 { return t.width }

// encode maps a user key into the internal left-aligned key space,
// panicking on out-of-range keys. The exported operations never call it
// with an out-of-range key (they go through encodeOK); it is retained for
// white-box tests that construct internal keys directly.
func (t *Trie) encode(k uint64) uint64 {
	if !keys.InRange(k, t.width) {
		panic(fmt.Sprintf("patricia trie: key %d out of range for width %d", k, t.width))
	}
	return keys.Encode(k, t.width)
}

// encodeOK maps a user key into the internal key space, reporting false
// for keys outside [0, 2^width). Out-of-range keys are never members of
// the set, so every operation treats them as simply absent instead of
// panicking.
func (t *Trie) encodeOK(k uint64) (uint64, bool) {
	if !keys.InRange(k, t.width) {
		return 0, false
	}
	return keys.Encode(k, t.width), true
}

// searchResult carries the paper's 6-tuple ⟨gp, p, node, gpInfo, pInfo,
// rmvd⟩ returned by search.
type searchResult struct {
	gp, p, node   *node
	gpInfo, pInfo *desc
	rmvd          bool
}

// search locates the internal key v, per lines 76-85. It starts at the
// root and descends by the bit of v at each node's label length, stopping
// at a leaf or at an internal node whose label is no longer a prefix of v.
// It is wait-free: labels strictly lengthen along any path (Invariant 7),
// so the loop runs at most ℓ times. It performs no CAS and never writes
// shared memory.
func (t *Trie) search(v uint64) searchResult {
	var r searchResult
	n := t.root
	for !n.leaf && keys.IsPrefix(n.bits, n.plen, v) {
		r.gp, r.gpInfo = r.p, r.pInfo
		r.p, r.pInfo = n, n.info.Load()
		n = r.p.child[keys.BitAt(v, r.p.plen)].Load()
	}
	r.node = n
	if n.leaf && !t.skipRmvdCheck {
		r.rmvd = logicallyRemoved(n.info.Load())
	}
	return r
}

// logicallyRemoved implements lines 122-124: a leaf whose info field holds
// the Flag of a general-case replace is logically removed once that
// replace's first child CAS has happened, which is detectable by the old
// child no longer being a child of pNode[0] (Lemma 41).
func logicallyRemoved(i *desc) bool {
	if !i.flagged() {
		return false
	}
	p, old := i.pNode[0], i.oldChild[0]
	return p.child[0].Load() != old && p.child[1].Load() != old
}

// keyInTrie implements lines 125-126.
func keyInTrie(n *node, v uint64, rmvd bool) bool {
	return n.leaf && n.bits == v && !rmvd
}

// Contains reports whether k is in the set. It is wait-free and never
// modifies the trie (the paper's find, lines 72-75). Out-of-range keys
// are reported absent.
func (t *Trie) Contains(k uint64) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	r := t.search(v)
	return keyInTrie(r.node, v, r.rmvd)
}

// Load returns the value stored under k, or (nil, false) when k is not in
// the set. Like Contains it is wait-free: one descent, only reads, no CAS.
// Leaf values are immutable (updates install fresh leaves), so the value
// returned is exactly the one bound to k at the linearization point.
func (t *Trie) Load(k uint64) (any, bool) {
	v, ok := t.encodeOK(k)
	if !ok {
		return nil, false
	}
	r := t.search(v)
	if !keyInTrie(r.node, v, r.rmvd) {
		return nil, false
	}
	return r.node.val, true
}

package core

// Map operations: the trie as a linearizable uint64 → V map. Every leaf
// carries an immutable, unboxed value payload, so a value update is a
// structural update — the leaf is replaced wholesale by a fresh leaf via
// the same flag/child-CAS protocol as the paper's Replace special case 1
// (overwrite the leaf at the insertion point). That keeps all of the
// paper's invariants intact: child pointers only ever swing to freshly
// allocated nodes (no ABA), the flag on the leaf's parent serializes the
// overwrite against any concurrent insert/delete/replace touching the
// same pointer, and the overwrite is linearized at its single child CAS.
//
// Reads (Load) reuse the wait-free search and add only a field read of
// the immutable leaf; they perform no CAS, write no shared memory and
// allocate nothing — the value is stored unboxed in the leaf.
//
// CompareAndSwap and CompareAndDelete compare values with Go interface
// equality, mirroring sync.Map: the old value must be comparable or the
// comparison panics. Because leaf values are immutable, a value read at
// search time is still the leaf's value when the parent flag CAS
// succeeds — the flag CAS aborts if the parent's info changed since the
// search, and the paper's Lemma 31 argument then pins the child pointer
// (and hence the leaf) for the duration.

// Store binds k to val, inserting the key if absent and overwriting the
// value if present (lock-free upsert). It returns false only for
// out-of-range keys, which cannot be stored.
func (t *Trie[V]) Store(k uint64, val V) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			if t.tryInsert(v, val, r) {
				return true
			}
			continue
		}
		if t.tryOverwrite(v, val, r) {
			return true
		}
	}
}

// LoadOrStore returns the value bound to k if present (loaded == true);
// otherwise it stores val and returns it. The load path is wait-free.
// ok is false only for out-of-range keys, which can neither be loaded
// nor stored; loaded is false and actual is the zero value in that case.
func (t *Trie[V]) LoadOrStore(k uint64, val V) (actual V, loaded, ok bool) {
	v, inRange := t.encodeOK(k)
	if !inRange {
		var zero V
		return zero, false, false
	}
	for {
		r := t.search(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return r.node.val, true, true
		}
		if t.tryInsert(v, val, r) {
			return val, false, true
		}
	}
}

// valuesEqual compares two values with Go interface equality (the
// sync.Map contract): it panics when the values are not comparable. The
// conversions to any may box, but only on the CompareAndSwap /
// CompareAndDelete paths, which mutate and hence allocate anyway.
func valuesEqual[V any](a, b V) bool {
	return any(a) == any(b)
}

// CompareAndSwap swaps the value bound to k from old to new if the stored
// value equals old (interface equality; old must be comparable). It
// returns true iff the swap happened.
func (t *Trie[V]) CompareAndSwap(k uint64, old, new V) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if !valuesEqual(r.node.val, old) {
			return false
		}
		if t.tryOverwrite(v, new, r) {
			return true
		}
	}
}

// CompareAndDelete deletes k if its stored value equals old (interface
// equality; old must be comparable). It returns true iff the key was
// deleted.
func (t *Trie[V]) CompareAndDelete(k uint64, old V) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if !valuesEqual(r.node.val, old) {
			return false
		}
		// The value check above is still valid when the delete commits:
		// tryDelete's flag CAS on the parent fails unless the parent's
		// info is unchanged since the search, which pins the leaf we
		// inspected (a concurrent overwrite must flag the same parent).
		if t.tryDelete(v, r) {
			return true
		}
	}
}

// tryOverwrite attempts to replace the live leaf r.node (holding internal
// key v) with a fresh leaf carrying val — the descriptor shape of the
// paper's Replace special case 1: flag the parent, one child CAS from the
// old leaf to the new. False means re-search and retry. The fresh leaf is
// only built once the captured parent info is known not to be a Flag.
func (t *Trie[V]) tryOverwrite(v uint64, val V, r searchResult[V]) bool {
	if t.helpConflict(r.pInfo, nil, nil, nil) {
		return false
	}
	i := t.newDesc(
		[4]*node[V]{r.p}, [4]*desc[V]{r.pInfo}, 1,
		[2]*node[V]{r.p}, 1,
		[2]*node[V]{r.p}, [2]*node[V]{r.node},
		[2]*node[V]{newLeafVal(v, t.klen, val)}, 1,
		nil)
	return i != nil && t.help(i)
}

package core

// Map operations: the trie as a linearizable uint64 → value map. Every
// leaf carries an immutable value payload, so a value update is a
// structural update — the leaf is replaced wholesale by a fresh leaf via
// the same flag/child-CAS protocol as the paper's Replace special case 1
// (overwrite the leaf at the insertion point). That keeps all of the
// paper's invariants intact: child pointers only ever swing to freshly
// allocated nodes (no ABA), the flag on the leaf's parent serializes the
// overwrite against any concurrent insert/delete/replace touching the
// same pointer, and the overwrite is linearized at its single child CAS.
//
// Reads (Load) reuse the wait-free search and add only a field read of
// the immutable leaf; they perform no CAS and write no shared memory.
//
// CompareAndSwap and CompareAndDelete compare values with Go interface
// equality, mirroring sync.Map: the old value must be comparable or the
// comparison panics. Because leaf values are immutable, a value read at
// search time is still the leaf's value when the parent flag CAS
// succeeds — the flag CAS aborts if the parent's info changed since the
// search, and the paper's Lemma 31 argument then pins the child pointer
// (and hence the leaf) for the duration.

// Store binds k to val, inserting the key if absent and overwriting the
// value if present (lock-free upsert). It returns false only for
// out-of-range keys, which cannot be stored.
func (t *Trie) Store(k uint64, val any) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			if t.tryInsert(v, val, r) {
				return true
			}
			continue
		}
		if t.tryOverwrite(v, val, r) {
			return true
		}
	}
}

// LoadOrStore returns the value bound to k if present (loaded == true);
// otherwise it stores val and returns it. The load path is wait-free.
// ok is false only for out-of-range keys, which can neither be loaded
// nor stored; loaded is false and actual is nil in that case.
func (t *Trie) LoadOrStore(k uint64, val any) (actual any, loaded, ok bool) {
	v, inRange := t.encodeOK(k)
	if !inRange {
		return nil, false, false
	}
	for {
		r := t.search(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return r.node.val, true, true
		}
		if t.tryInsert(v, val, r) {
			return val, false, true
		}
	}
}

// CompareAndSwap swaps the value bound to k from old to new if the stored
// value equals old (interface equality; old must be comparable). It
// returns true iff the swap happened.
func (t *Trie) CompareAndSwap(k uint64, old, new any) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if r.node.val != old {
			return false
		}
		if t.tryOverwrite(v, new, r) {
			return true
		}
	}
}

// CompareAndDelete deletes k if its stored value equals old (interface
// equality; old must be comparable). It returns true iff the key was
// deleted.
func (t *Trie) CompareAndDelete(k uint64, old any) bool {
	v, ok := t.encodeOK(k)
	if !ok {
		return false
	}
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if r.node.val != old {
			return false
		}
		// The value check above is still valid when the delete commits:
		// tryDelete's flag CAS on the parent fails unless the parent's
		// info is unchanged since the search, which pins the leaf we
		// inspected (a concurrent overwrite must flag the same parent).
		if t.tryDelete(v, r) {
			return true
		}
	}
}

// tryOverwrite attempts to replace the live leaf r.node (holding internal
// key v) with a fresh leaf carrying val — the descriptor shape of the
// paper's Replace special case 1: flag the parent, one child CAS from the
// old leaf to the new. False means re-search and retry.
func (t *Trie) tryOverwrite(v uint64, val any, r searchResult) bool {
	i := t.newDesc(
		[]*node{r.p}, []*desc{r.pInfo},
		[]*node{r.p},
		[]*node{r.p}, []*node{r.node},
		[]*node{newLeafVal(v, t.klen, val)}, nil)
	return i != nil && t.help(i)
}

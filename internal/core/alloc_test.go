package core

import (
	"testing"

	"nbtrie/internal/keys"
)

// Allocation regression pins for the allocation-lean update protocol.
// The read path must be allocation-free outright; the update paths get a
// fixed budget derived from the nodes an update must create (each a
// distinct heap object by the no-ABA rule) plus the descriptor and the
// fresh Unflag of the final unflag CAS. If one of these tests starts
// failing, garbage crept back into a hot path — see DESIGN.md before
// raising a budget.

const (
	// insertAllocBudget: fresh leaf + its unflag, copy of the displaced
	// leaf + its unflag, joining internal node + its unflag, the Flag
	// descriptor, and the fresh Unflag of the unflag CAS.
	insertAllocBudget = 8
	// overwriteAllocBudget: fresh leaf + its unflag, the Flag
	// descriptor, and the unflag-CAS Unflag.
	overwriteAllocBudget = 4
	// deleteAllocBudget: the Flag descriptor and the unflag-CAS Unflag
	// (the sibling is re-linked, not rebuilt).
	deleteAllocBudget = 2
)

func TestContainsIsAllocationFree(t *testing.T) {
	tr, err := New[struct{}](20)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1024; k++ {
		tr.Insert(k)
	}
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Contains(512) {
			t.Fatal("Contains(512) missed")
		}
		if tr.Contains(4096) {
			t.Fatal("Contains(4096) false positive")
		}
	}); n != 0 {
		t.Errorf("Contains allocates %v objects per call, want 0", n)
	}
}

// TestLoadIsAllocationFree pins the headline win of the generic value
// layer: Trie[int] stores ints unboxed in the leaf, so Load involves no
// interface conversion — zero allocations on hit and miss alike.
func TestLoadIsAllocationFree(t *testing.T) {
	tr, err := New[int](20)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1024; k++ {
		tr.Store(k, int(k)+100000)
	}
	if n := testing.AllocsPerRun(500, func() {
		if v, ok := tr.Load(512); !ok || v != 100512 {
			t.Fatal("Load(512) wrong")
		}
		if _, ok := tr.Load(4096); ok {
			t.Fatal("Load(4096) false positive")
		}
	}); n != 0 {
		t.Errorf("Load allocates %v objects per call, want 0", n)
	}
}

func TestUpdateAllocationBudgets(t *testing.T) {
	tr, err := New[int](30)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1024; k++ {
		tr.Store(k, int(k))
	}

	k := uint64(1 << 20)
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Store(k, 100000+int(k)) {
			t.Fatal("insert Store failed")
		}
		k++
	}); n > insertAllocBudget {
		t.Errorf("uncontended insert allocates %v objects, budget %d", n, insertAllocBudget)
	}

	if n := testing.AllocsPerRun(500, func() {
		if !tr.Store(512, 100000) {
			t.Fatal("overwrite Store failed")
		}
	}); n > overwriteAllocBudget {
		t.Errorf("uncontended overwrite allocates %v objects, budget %d", n, overwriteAllocBudget)
	}

	d := uint64(1 << 20)
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Delete(d) {
			t.Fatal("Delete failed")
		}
		d++
	}); n > deleteAllocBudget {
		t.Errorf("uncontended delete allocates %v objects, budget %d", n, deleteAllocBudget)
	}
}

// TestTryDeleteRootChildDefensive pins the defensive ordering in
// tryDelete: the gp == nil branch must be taken before anything is read
// through the search result. The situation cannot arise through Delete —
// a leaf directly under the root is necessarily one of the two permanent
// dummies (the 0-prefix and 1-prefix subtrees always contain them), and
// dummy labels never equal an encoded user key, so keyInTrie rejects the
// position first — but tryDelete must still fail closed when handed such
// a result, leaving the trie untouched.
func TestTryDeleteRootChildDefensive(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(7)

	dummy := tr.root.child[0].Load()
	for !dummy.leaf {
		dummy = dummy.child[0].Load()
	}
	if dummy.bits != keys.DummyMin(tr.width) {
		t.Fatal("setup: leftmost leaf should be the 0^ℓ dummy")
	}
	r := searchResult[any]{
		p:     tr.root,
		pInfo: tr.root.info.Load(),
		node:  dummy,
		// gp and gpInfo deliberately nil: the root has no parent.
	}
	if tr.tryDelete(dummy.bits, r) {
		t.Error("tryDelete with nil gp must refuse")
	}
	if !tr.Contains(7) || tr.Size() != 1 {
		t.Error("defensive tryDelete must not disturb the trie")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

package core

import (
	"testing"
)

// Allocation regression pins for the allocation-lean update protocol.
// The read path must be allocation-free outright; the update paths get a
// fixed budget derived from the nodes an update must create (each a
// distinct heap object by the no-ABA rule) plus the descriptor and the
// fresh Unflag of the final unflag CAS. If one of these tests starts
// failing, garbage crept back into a hot path — see DESIGN.md before
// raising a budget.

const (
	// insertAllocBudget: fresh leaf + its unflag, copy of the displaced
	// leaf + its unflag, joining internal node + its unflag, the Flag
	// descriptor, and the fresh Unflag of the unflag CAS.
	insertAllocBudget = 8
	// overwriteAllocBudget: fresh leaf + its unflag, the Flag
	// descriptor, and the unflag-CAS Unflag.
	overwriteAllocBudget = 4
	// deleteAllocBudget: the Flag descriptor and the unflag-CAS Unflag
	// (the sibling is re-linked, not rebuilt).
	deleteAllocBudget = 2

	// The span-4 (k-ary) budgets. A wide internal node costs one extra
	// allocation (its 16-slot child array), and the slot-oriented paths
	// rebuild a node where the binary trie re-links: an insert is either
	// a slot fill (parent copy: node + ext + unflag; fresh leaf +
	// unflag; descriptor + final Unflag = 7) or a leaf displacement
	// (binary shape + ext on the joining node = 9); a delete is either a
	// contraction (2, as binary) or a slot clear (parent copy + desc +
	// Unflag = 5). The pins take each path's worst case; depth-per-level
	// is what the wider nodes buy. See DESIGN.md §11 for the full table.
	karyInsertAllocBudget = 9
	karyDeleteAllocBudget = 5
)

func TestContainsIsAllocationFree(t *testing.T) {
	tr, err := New[struct{}](20)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1024; k++ {
		tr.Insert(k)
	}
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Contains(512) {
			t.Fatal("Contains(512) missed")
		}
		if tr.Contains(4096) {
			t.Fatal("Contains(4096) false positive")
		}
	}); n != 0 {
		t.Errorf("Contains allocates %v objects per call, want 0", n)
	}
}

// TestLoadIsAllocationFree pins the headline win of the generic value
// layer: Trie[int] stores ints unboxed in the leaf, so Load involves no
// interface conversion — zero allocations on hit and miss alike.
func TestLoadIsAllocationFree(t *testing.T) {
	tr, err := New[int](20)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1024; k++ {
		tr.Store(k, int(k)+100000)
	}
	if n := testing.AllocsPerRun(500, func() {
		if v, ok := tr.Load(512); !ok || v != 100512 {
			t.Fatal("Load(512) wrong")
		}
		if _, ok := tr.Load(4096); ok {
			t.Fatal("Load(4096) false positive")
		}
	}); n != 0 {
		t.Errorf("Load allocates %v objects per call, want 0", n)
	}
}

func TestUpdateAllocationBudgets(t *testing.T) {
	tr, err := New[int](30)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1024; k++ {
		tr.Store(k, int(k))
	}

	k := uint64(1 << 20)
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Store(k, 100000+int(k)) {
			t.Fatal("insert Store failed")
		}
		k++
	}); n > insertAllocBudget {
		t.Errorf("uncontended insert allocates %v objects, budget %d", n, insertAllocBudget)
	}

	if n := testing.AllocsPerRun(500, func() {
		if !tr.Store(512, 100000) {
			t.Fatal("overwrite Store failed")
		}
	}); n > overwriteAllocBudget {
		t.Errorf("uncontended overwrite allocates %v objects, budget %d", n, overwriteAllocBudget)
	}

	d := uint64(1 << 20)
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Delete(d) {
			t.Fatal("Delete failed")
		}
		d++
	}); n > deleteAllocBudget {
		t.Errorf("uncontended delete allocates %v objects, budget %d", n, deleteAllocBudget)
	}
}

// TestKaryAllocationBudgets is the span-4 twin: the read path must stay
// allocation-free (the k-ary win is depth, never read-path garbage), and
// the update paths get the wider budgets documented above.
func TestKaryAllocationBudgets(t *testing.T) {
	tr, err := New(30, WithSpan[int](4))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1024; k++ {
		tr.Store(k, int(k))
	}

	if n := testing.AllocsPerRun(500, func() {
		if v, ok := tr.Load(512); !ok || v != 512 {
			t.Fatal("Load(512) wrong")
		}
		if tr.Contains(1 << 25) {
			t.Fatal("Contains false positive")
		}
	}); n != 0 {
		t.Errorf("span-4 read path allocates %v objects per call, want 0", n)
	}

	k := uint64(1 << 20)
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Store(k, 100000+int(k)) {
			t.Fatal("insert Store failed")
		}
		k++
	}); n > karyInsertAllocBudget {
		t.Errorf("uncontended span-4 insert allocates %v objects, budget %d", n, karyInsertAllocBudget)
	}

	if n := testing.AllocsPerRun(500, func() {
		if !tr.Store(512, 100000) {
			t.Fatal("overwrite Store failed")
		}
	}); n > overwriteAllocBudget {
		t.Errorf("uncontended span-4 overwrite allocates %v objects, budget %d", n, overwriteAllocBudget)
	}

	d := uint64(1 << 20)
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Delete(d) {
			t.Fatal("Delete failed")
		}
		d++
	}); n > karyDeleteAllocBudget {
		t.Errorf("uncontended span-4 delete allocates %v objects, budget %d", n, karyDeleteAllocBudget)
	}
}

// (TestTryDeleteRootChildDefensive, a white-box test of the engine's
// tryDelete, lives in internal/engine.)

package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Concurrency tests. The algorithm's correctness does not depend on
// parallel hardware, but forcing several OS threads maximizes genuine
// interleavings; the -race detector validates the memory-model claims.

func withThreads(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestConcurrentDisjointInserts gives each goroutine a private slice of
// the key space; afterwards every inserted key must be present. Updates
// to disjoint parts of the trie must not disturb one another (a headline
// claim of the paper).
func TestConcurrentDisjointInserts(t *testing.T) {
	withThreads(t, 8)
	const (
		goroutines = 8
		perG       = 2000
	)
	tr := mustNew(t, 20)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				if !tr.Insert(base + i) {
					t.Errorf("Insert(%d) returned false for a unique key", base+i)
					return
				}
			}
		}(uint64(g) * perG)
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Size(); got != goroutines*perG {
		t.Fatalf("Size() = %d, want %d", got, goroutines*perG)
	}
	for k := uint64(0); k < goroutines*perG; k++ {
		if !tr.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

// TestConcurrentDisjointMixed partitions the key space and runs a random
// mixed workload (including replaces within the partition) against a
// per-goroutine oracle. Because partitions are disjoint, each goroutine's
// operations are sequential with respect to its own keys, so the oracle
// must match exactly.
func TestConcurrentDisjointMixed(t *testing.T) {
	withThreads(t, 8)
	const (
		goroutines = 8
		span       = uint64(512)
		ops        = 30000
	)
	tr := mustNew(t, 20)
	var wg sync.WaitGroup
	oracles := make([]map[uint64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		oracles[g] = make(map[uint64]bool)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * span
			rng := rand.New(rand.NewSource(int64(g)))
			oracle := oracles[g]
			for i := 0; i < ops; i++ {
				k := base + rng.Uint64()%span
				switch rng.Intn(4) {
				case 0:
					if got, want := tr.Insert(k), !oracle[k]; got != want {
						t.Errorf("g%d Insert(%d)=%v want %v", g, k, got, want)
						return
					}
					oracle[k] = true
				case 1:
					if got, want := tr.Delete(k), oracle[k]; got != want {
						t.Errorf("g%d Delete(%d)=%v want %v", g, k, got, want)
						return
					}
					delete(oracle, k)
				case 2:
					k2 := base + rng.Uint64()%span
					want := oracle[k] && !oracle[k2] && k != k2
					if got := tr.Replace(k, k2); got != want {
						t.Errorf("g%d Replace(%d,%d)=%v want %v", g, k, k2, got, want)
						return
					}
					if want {
						delete(oracle, k)
						oracle[k2] = true
					}
				case 3:
					if got, want := tr.Contains(k), oracle[k]; got != want {
						t.Errorf("g%d Contains(%d)=%v want %v", g, k, got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for g, oracle := range oracles {
		base := uint64(g) * span
		for k := base; k < base+span; k++ {
			if got, want := tr.Contains(k), oracle[k]; got != want {
				t.Fatalf("g%d final Contains(%d)=%v want %v", g, k, got, want)
			}
		}
	}
}

// TestConcurrentContendedCounting hammers a tiny key range from many
// goroutines and then checks per-key accounting: for every key, the
// number of successful inserts minus successful deletes must be 0 or 1
// and must equal its final presence. This holds in every linearization.
func TestConcurrentContendedCounting(t *testing.T) {
	withThreads(t, 8)
	const (
		goroutines = 8
		keyRange   = 16
		ops        = 20000
	)
	tr := mustNew(t, 8)
	var ins, del [keyRange]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				k := rng.Uint64() % keyRange
				if rng.Intn(2) == 0 {
					if tr.Insert(k) {
						ins[k].Add(1)
					}
				} else {
					if tr.Delete(k) {
						del[k].Add(1)
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keyRange; k++ {
		diff := ins[k].Load() - del[k].Load()
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d: inserts-deletes = %d, must be 0 or 1", k, diff)
		}
		if got, want := tr.Contains(uint64(k)), diff == 1; got != want {
			t.Fatalf("key %d: Contains=%v but accounting says %v", k, got, want)
		}
	}
}

// TestConcurrentReplaceConservation checks the atomicity consequence of
// replace: every successful replace removes one key and adds one, so
// under a replace-only workload the set's cardinality is invariant.
func TestConcurrentReplaceConservation(t *testing.T) {
	withThreads(t, 8)
	const (
		goroutines = 8
		initial    = 200
		keyRange   = uint64(4096)
		ops        = 15000
	)
	tr := mustNew(t, 12)
	for k := uint64(0); k < initial; k++ {
		tr.Insert(k * (keyRange / initial))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				tr.Replace(rng.Uint64()%keyRange, rng.Uint64()%keyRange)
			}
		}(int64(g))
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Size(); got != initial {
		t.Fatalf("Size() = %d after replace-only load, want %d", got, initial)
	}
}

// TestConcurrentReplaceAndFind runs replaces against concurrent wait-free
// finds; finds must never crash, never block, and must always return a
// coherent answer for keys that are permanently present.
func TestConcurrentReplaceAndFind(t *testing.T) {
	withThreads(t, 8)
	const anchored = uint64(1_000_000 - 1)
	tr := mustNew(t, 20)
	tr.Insert(anchored)
	for k := uint64(0); k < 128; k++ {
		tr.Insert(k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					tr.Replace(rng.Uint64()%512, rng.Uint64()%512)
				}
			}
		}(int64(g))
	}
	for i := 0; i < 50000; i++ {
		if !tr.Contains(anchored) {
			t.Error("anchored key vanished during concurrent replaces")
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentHighContentionMixed is a catch-all stress run over a tiny
// key range with all four operations plus invariant validation; primarily
// valuable under -race.
func TestConcurrentHighContentionMixed(t *testing.T) {
	withThreads(t, 8)
	const (
		goroutines = 8
		keyRange   = 8
		ops        = 10000
	)
	tr := mustNew(t, 6)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				k := rng.Uint64() % keyRange
				switch rng.Intn(4) {
				case 0:
					tr.Insert(k)
				case 1:
					tr.Delete(k)
				case 2:
					tr.Replace(k, rng.Uint64()%keyRange)
				case 3:
					tr.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

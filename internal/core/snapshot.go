package core

import (
	"nbtrie/internal/engine"
	"nbtrie/internal/keys"
)

// Snapshot is a read-only point-in-time view of the fixed-width trie,
// obtained in O(1) from Trie.Snapshot (see internal/engine's snapshot
// protocol). It is frozen: nothing it can reach changes after Snapshot
// returns, so all methods are safe for unrestricted concurrent use and
// always answer with the state at the snapshot's linearization point.
type Snapshot[V any] struct {
	t *Trie[V]
	s *engine.Snapshot[keys.Uint64Key, V]
}

// Snapshot returns a frozen view of the trie at the moment of the call,
// in O(1) time and allocation independent of the trie's size.
func (t *Trie[V]) Snapshot() *Snapshot[V] {
	return &Snapshot[V]{t: t, s: t.e.Snapshot()}
}

// Len returns the number of keys at the snapshot point (exact: the
// count is captured inside the snapshot barrier).
func (s *Snapshot[V]) Len() int { return s.s.Len() }

// Gen returns the snapshot's engine generation (diagnostics/tests).
func (s *Snapshot[V]) Gen() uint64 { return s.s.Gen() }

// Contains reports whether k was in the set at the snapshot point.
// Wait-free, allocation-free, like the live trie's Contains.
func (s *Snapshot[V]) Contains(k uint64) bool {
	v, ok := s.t.encodeOK(k)
	return ok && s.s.Contains(v)
}

// Load returns the value bound to k at the snapshot point.
func (s *Snapshot[V]) Load(k uint64) (V, bool) {
	v, ok := s.t.encodeOK(k)
	if !ok {
		var zero V
		return zero, false
	}
	return s.s.Load(v)
}

// AscendKV calls fn on every (key, value) pair with key >= from that was
// live at the snapshot point, in increasing key order, until fn returns
// false. Unlike the live trie's AscendKV this is a true consistent cut:
// the structure cannot change mid-walk.
func (s *Snapshot[V]) AscendKV(from uint64, fn func(k uint64, val V) bool) {
	v, inRange := s.t.encodeOK(from)
	if !inRange {
		return
	}
	s.s.AscendKV(v, func(label keys.Uint64Key, val V) bool {
		return fn(keys.DecodeUint64(label, s.t.width), val)
	})
}

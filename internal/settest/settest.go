// Package settest is a reusable conformance and stress-test kit for the
// concurrent set implementations in this repository. Every implementation
// (the Patricia trie and all five baselines from the paper's evaluation)
// runs the same battery, so a behavioural difference between them is a
// test failure rather than a benchmarking artifact.
package settest

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nbtrie/internal/linearizable"
)

// Set is the minimal linearizable-set contract shared by every
// implementation.
type Set interface {
	Insert(k uint64) bool
	Delete(k uint64) bool
	Contains(k uint64) bool
}

// ReplaceSet is a Set that also supports the paper's atomic replace.
type ReplaceSet interface {
	Set
	Replace(old, new uint64) bool
}

// Factory creates a fresh, empty set able to hold keys in [0, keyRange).
type Factory func(keyRange uint64) Set

// Run executes the full battery against the factory.
func Run(t *testing.T, factory Factory) {
	t.Run("Basic", func(t *testing.T) { Basic(t, factory) })
	t.Run("SequentialOracle", func(t *testing.T) { SequentialOracle(t, factory) })
	t.Run("ConcurrentDisjoint", func(t *testing.T) { ConcurrentDisjoint(t, factory) })
	t.Run("ContendedCounting", func(t *testing.T) { ContendedCounting(t, factory) })
	t.Run("Linearizability", func(t *testing.T) { Linearizability(t, factory) })
}

// Basic checks single-threaded semantics on a handful of fixed cases.
func Basic(t *testing.T, factory Factory) {
	s := factory(1024)
	if s.Contains(0) || s.Contains(5) || s.Contains(1023) {
		t.Error("fresh set should be empty")
	}
	if s.Delete(5) {
		t.Error("Delete on empty set should fail")
	}
	if !s.Insert(5) {
		t.Error("Insert(5) into empty set should succeed")
	}
	if s.Insert(5) {
		t.Error("duplicate Insert(5) should fail")
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Error("Contains wrong after insert")
	}
	for _, k := range []uint64{0, 1023, 512, 511} {
		if !s.Insert(k) || !s.Contains(k) {
			t.Errorf("boundary key %d not usable", k)
		}
	}
	if !s.Delete(5) || s.Delete(5) || s.Contains(5) {
		t.Error("Delete semantics wrong")
	}
	for _, k := range []uint64{0, 1023, 512, 511} {
		if !s.Delete(k) {
			t.Errorf("Delete(%d) should succeed", k)
		}
	}
}

// SequentialOracle replays random single-threaded workloads against a
// map-based oracle, for several seeds and key ranges.
func SequentialOracle(t *testing.T, factory Factory) {
	for _, keyRange := range []uint64{8, 100, 4096} {
		for seed := int64(0); seed < 3; seed++ {
			s := factory(keyRange)
			rng := rand.New(rand.NewSource(seed))
			oracle := make(map[uint64]bool)
			rs, hasReplace := s.(ReplaceSet)
			for i := 0; i < 15000; i++ {
				k := rng.Uint64() % keyRange
				op := rng.Intn(4)
				if op == 3 && !hasReplace {
					op = rng.Intn(3)
				}
				switch op {
				case 0:
					if got, want := s.Insert(k), !oracle[k]; got != want {
						t.Fatalf("range=%d seed=%d op=%d: Insert(%d)=%v want %v", keyRange, seed, i, k, got, want)
					}
					oracle[k] = true
				case 1:
					if got, want := s.Delete(k), oracle[k]; got != want {
						t.Fatalf("range=%d seed=%d op=%d: Delete(%d)=%v want %v", keyRange, seed, i, k, got, want)
					}
					delete(oracle, k)
				case 2:
					if got, want := s.Contains(k), oracle[k]; got != want {
						t.Fatalf("range=%d seed=%d op=%d: Contains(%d)=%v want %v", keyRange, seed, i, k, got, want)
					}
				case 3:
					k2 := rng.Uint64() % keyRange
					want := oracle[k] && !oracle[k2] && k != k2
					if got := rs.Replace(k, k2); got != want {
						t.Fatalf("range=%d seed=%d op=%d: Replace(%d,%d)=%v want %v", keyRange, seed, i, k, k2, got, want)
					}
					if want {
						delete(oracle, k)
						oracle[k2] = true
					}
				}
			}
			for k := uint64(0); k < keyRange; k += 1 + keyRange/997 {
				if got, want := s.Contains(k), oracle[k]; got != want {
					t.Fatalf("range=%d seed=%d final: Contains(%d)=%v want %v", keyRange, seed, k, got, want)
				}
			}
		}
	}
}

// ConcurrentDisjoint partitions the key space among goroutines, each with
// a private oracle; afterwards the set must exactly match the union.
func ConcurrentDisjoint(t *testing.T, factory Factory) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		goroutines = 8
		span       = uint64(256)
		ops        = 20000
	)
	s := factory(goroutines * span)
	oracles := make([]map[uint64]bool, goroutines)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		oracles[g] = make(map[uint64]bool)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * span
			rng := rand.New(rand.NewSource(int64(g)))
			oracle := oracles[g]
			rs, hasReplace := s.(ReplaceSet)
			for i := 0; i < ops && !failed.Load(); i++ {
				k := base + rng.Uint64()%span
				op := rng.Intn(4)
				if op == 3 && !hasReplace {
					op = rng.Intn(3)
				}
				switch op {
				case 0:
					if got, want := s.Insert(k), !oracle[k]; got != want {
						failed.Store(true)
						t.Errorf("g%d Insert(%d)=%v want %v", g, k, got, want)
					}
					oracle[k] = true
				case 1:
					if got, want := s.Delete(k), oracle[k]; got != want {
						failed.Store(true)
						t.Errorf("g%d Delete(%d)=%v want %v", g, k, got, want)
					}
					delete(oracle, k)
				case 2:
					if got, want := s.Contains(k), oracle[k]; got != want {
						failed.Store(true)
						t.Errorf("g%d Contains(%d)=%v want %v", g, k, got, want)
					}
				case 3:
					k2 := base + rng.Uint64()%span
					want := oracle[k] && !oracle[k2] && k != k2
					if got := rs.Replace(k, k2); got != want {
						failed.Store(true)
						t.Errorf("g%d Replace(%d,%d)=%v want %v", g, k, k2, got, want)
					}
					if want {
						delete(oracle, k)
						oracle[k2] = true
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if failed.Load() {
		return
	}
	for g, oracle := range oracles {
		base := uint64(g) * span
		for k := base; k < base+span; k++ {
			if got, want := s.Contains(k), oracle[k]; got != want {
				t.Fatalf("g%d final Contains(%d)=%v want %v", g, k, got, want)
			}
		}
	}
}

// ContendedCounting hammers a tiny key range and verifies per-key insert/
// delete accounting, which must hold in every linearization.
func ContendedCounting(t *testing.T, factory Factory) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		goroutines = 8
		keyRange   = 16
		ops        = 15000
	)
	s := factory(keyRange)
	var ins, del [keyRange]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				k := rng.Uint64() % keyRange
				if rng.Intn(2) == 0 {
					if s.Insert(k) {
						ins[k].Add(1)
					}
				} else {
					if s.Delete(k) {
						del[k].Add(1)
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		diff := ins[k].Load() - del[k].Load()
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d: inserts-deletes = %d, must be 0 or 1", k, diff)
		}
		if got, want := s.Contains(uint64(k)), diff == 1; got != want {
			t.Fatalf("key %d: Contains=%v but accounting says %v", k, got, want)
		}
	}
}

// Linearizability records many small concurrent histories and checks each
// with the Wing–Gong checker. Keys are drawn from a 3-element universe to
// keep contention (and hence interesting interleavings) high.
func Linearizability(t *testing.T, factory Factory) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		trials  = 150
		workers = 3
		perW    = 6
	)
	for trial := 0; trial < trials; trial++ {
		s := factory(8)
		_, hasReplace := s.(ReplaceSet)
		rec := linearizable.NewRecorder()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < perW; i++ {
					k := rng.Uint64() % 3
					op := rng.Intn(4)
					if op == 3 && !hasReplace {
						op = rng.Intn(3)
					}
					switch op {
					case 0:
						rec.Record(linearizable.Insert, k, 0, func() bool { return s.Insert(k) })
					case 1:
						rec.Record(linearizable.Delete, k, 0, func() bool { return s.Delete(k) })
					case 2:
						rec.Record(linearizable.Contains, k, 0, func() bool { return s.Contains(k) })
					case 3:
						k2 := rng.Uint64() % 3
						rs := s.(ReplaceSet)
						rec.Record(linearizable.Replace, k, k2, func() bool { return rs.Replace(k, k2) })
					}
				}
			}(int64(trial*workers + w))
		}
		wg.Wait()
		if !linearizable.Check(rec.History()) {
			t.Fatalf("trial %d: non-linearizable history:\n%v", trial, rec.History())
		}
	}
}

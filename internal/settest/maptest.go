package settest

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"nbtrie/internal/linearizable"
)

// Map is the linearizable key→value contract of the map layer, stated
// over uint64 values so the kit can drive any Map[V] instantiation
// through a thin adapter.
type Map interface {
	Load(k uint64) (uint64, bool)
	Store(k uint64, v uint64) bool
	LoadOrStore(k, v uint64) (uint64, bool)
	Delete(k uint64) bool
	CompareAndSwap(k, old, new uint64) bool
	CompareAndDelete(k, old uint64) bool
	ReplaceKey(old, new uint64) bool
}

// MapFactory creates a fresh, empty map able to hold keys in
// [0, keyRange).
type MapFactory func(keyRange uint64) Map

// RunMap executes the map battery against the factory.
func RunMap(t *testing.T, factory MapFactory) {
	t.Run("MapBasic", func(t *testing.T) { MapBasic(t, factory) })
	t.Run("MapSequentialOracle", func(t *testing.T) { MapSequentialOracle(t, factory) })
	t.Run("ConcurrentLoadOrStore", func(t *testing.T) { ConcurrentLoadOrStore(t, factory) })
	t.Run("ConcurrentCASCounter", func(t *testing.T) { ConcurrentCASCounter(t, factory) })
	t.Run("MapLinearizability", func(t *testing.T) { MapLinearizability(t, factory) })
}

// MapBasic checks single-threaded map semantics on fixed cases.
func MapBasic(t *testing.T, factory MapFactory) {
	m := factory(1024)
	if _, ok := m.Load(5); ok {
		t.Error("fresh map must be empty")
	}
	if !m.Store(5, 50) {
		t.Error("Store must succeed")
	}
	if v, ok := m.Load(5); !ok || v != 50 {
		t.Errorf("Load(5) = %d,%v want 50,true", v, ok)
	}
	m.Store(5, 51)
	if v, _ := m.Load(5); v != 51 {
		t.Errorf("Load(5) after overwrite = %d", v)
	}
	if v, loaded := m.LoadOrStore(5, 99); !loaded || v != 51 {
		t.Errorf("LoadOrStore(present) = %d,%v", v, loaded)
	}
	if v, loaded := m.LoadOrStore(6, 60); loaded || v != 60 {
		t.Errorf("LoadOrStore(absent) = %d,%v", v, loaded)
	}
	if m.CompareAndSwap(5, 99, 1) || !m.CompareAndSwap(5, 51, 52) {
		t.Error("CompareAndSwap semantics wrong")
	}
	if m.CompareAndDelete(5, 99) || !m.CompareAndDelete(5, 52) {
		t.Error("CompareAndDelete semantics wrong")
	}
	if !m.ReplaceKey(6, 7) {
		t.Error("ReplaceKey must succeed")
	}
	if v, ok := m.Load(7); !ok || v != 60 {
		t.Errorf("ReplaceKey must carry the value: Load(7) = %d,%v", v, ok)
	}
	if _, ok := m.Load(6); ok {
		t.Error("ReplaceKey must remove the old key")
	}
	if !m.Delete(7) || m.Delete(7) {
		t.Error("Delete semantics wrong")
	}
}

// MapSequentialOracle replays random single-threaded map workloads
// against a Go map oracle.
func MapSequentialOracle(t *testing.T, factory MapFactory) {
	for _, keyRange := range []uint64{8, 100, 4096} {
		for seed := int64(0); seed < 3; seed++ {
			m := factory(keyRange)
			rng := rand.New(rand.NewSource(seed))
			oracle := make(map[uint64]uint64)
			for i := 0; i < 12000; i++ {
				k := rng.Uint64() % keyRange
				val := rng.Uint64() % 16
				switch op := rng.Intn(7); op {
				case 0:
					if !m.Store(k, val) {
						t.Fatalf("range=%d seed=%d op=%d: Store(%d) failed", keyRange, seed, i, k)
					}
					oracle[k] = val
				case 1:
					ov, oOK := oracle[k]
					if v, ok := m.Load(k); ok != oOK || (ok && v != ov) {
						t.Fatalf("range=%d seed=%d op=%d: Load(%d)=%d,%v want %d,%v", keyRange, seed, i, k, v, ok, ov, oOK)
					}
				case 2:
					ov, oOK := oracle[k]
					v, loaded := m.LoadOrStore(k, val)
					if loaded != oOK || (loaded && v != ov) || (!loaded && v != val) {
						t.Fatalf("range=%d seed=%d op=%d: LoadOrStore(%d,%d)=%d,%v oracle %d,%v", keyRange, seed, i, k, val, v, loaded, ov, oOK)
					}
					if !loaded {
						oracle[k] = val
					}
				case 3:
					old := rng.Uint64() % 16
					ov, oOK := oracle[k]
					want := oOK && ov == old
					if got := m.CompareAndSwap(k, old, val); got != want {
						t.Fatalf("range=%d seed=%d op=%d: CAS(%d,%d,%d)=%v want %v", keyRange, seed, i, k, old, val, got, want)
					}
					if want {
						oracle[k] = val
					}
				case 4:
					old := rng.Uint64() % 16
					ov, oOK := oracle[k]
					want := oOK && ov == old
					if got := m.CompareAndDelete(k, old); got != want {
						t.Fatalf("range=%d seed=%d op=%d: CompareAndDelete(%d,%d)=%v want %v", keyRange, seed, i, k, old, got, want)
					}
					if want {
						delete(oracle, k)
					}
				case 5:
					_, oOK := oracle[k]
					if got := m.Delete(k); got != oOK {
						t.Fatalf("range=%d seed=%d op=%d: Delete(%d)=%v want %v", keyRange, seed, i, k, got, oOK)
					}
					delete(oracle, k)
				case 6:
					k2 := rng.Uint64() % keyRange
					ov, oOK := oracle[k]
					_, o2OK := oracle[k2]
					want := oOK && !o2OK && k != k2
					if got := m.ReplaceKey(k, k2); got != want {
						t.Fatalf("range=%d seed=%d op=%d: ReplaceKey(%d,%d)=%v want %v", keyRange, seed, i, k, k2, got, want)
					}
					if want {
						delete(oracle, k)
						oracle[k2] = ov
					}
				}
			}
			for k, ov := range oracle {
				if v, ok := m.Load(k); !ok || v != ov {
					t.Fatalf("range=%d seed=%d final: Load(%d)=%d,%v want %d,true", keyRange, seed, k, v, ok, ov)
				}
			}
		}
	}
}

// ConcurrentLoadOrStore races LoadOrStore on shared keys: per key exactly
// one value wins, and every racer observes the winner.
func ConcurrentLoadOrStore(t *testing.T, factory MapFactory) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		goroutines = 8
		keyCount   = 128
	)
	m := factory(keyCount)
	seen := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		seen[g] = make([]uint64, keyCount)
		go func(g int) {
			defer wg.Done()
			for k := uint64(0); k < keyCount; k++ {
				v, _ := m.LoadOrStore(k, uint64(g)*1000+k)
				seen[g][k] = v
			}
		}(g)
	}
	wg.Wait()
	for k := uint64(0); k < keyCount; k++ {
		winner, ok := m.Load(k)
		if !ok {
			t.Fatalf("key %d missing after the race", k)
		}
		for g := 0; g < goroutines; g++ {
			if seen[g][k] != winner {
				t.Fatalf("key %d: goroutine %d saw %d, winner %d", k, g, seen[g][k], winner)
			}
		}
	}
}

// ConcurrentCASCounter increments shared counters through CAS loops; no
// increment may be lost or duplicated.
func ConcurrentCASCounter(t *testing.T, factory MapFactory) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		goroutines = 8
		increments = 1500
		counters   = 4
	)
	m := factory(64)
	for k := uint64(0); k < counters; k++ {
		m.Store(k, 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < increments; i++ {
				k := rng.Uint64() % counters
				for {
					v, ok := m.Load(k)
					if !ok {
						t.Error("counter key vanished")
						return
					}
					if m.CompareAndSwap(k, v, v+1) {
						break
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	var total uint64
	for k := uint64(0); k < counters; k++ {
		v, _ := m.Load(k)
		total += v
	}
	if total != goroutines*increments {
		t.Fatalf("counters sum to %d, want %d", total, goroutines*increments)
	}
}

// MapLinearizability records many small concurrent histories over the
// full map surface — including value reads — and checks each with the
// Wing–Gong checker.
func MapLinearizability(t *testing.T, factory MapFactory) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		trials  = 150
		workers = 3
		perW    = 6
	)
	for trial := 0; trial < trials; trial++ {
		m := factory(8)
		rec := linearizable.NewRecorder()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < perW; i++ {
					k := rng.Uint64() % 3
					val := rng.Uint64() % 4
					switch rng.Intn(7) {
					case 0:
						rec.RecordOp(func() linearizable.Op {
							v, ok := m.Load(k)
							return linearizable.Op{Kind: linearizable.Load, Key: k, Val: v, Result: ok}
						})
					case 1:
						rec.RecordOp(func() linearizable.Op {
							ok := m.Store(k, val)
							return linearizable.Op{Kind: linearizable.Store, Key: k, Val: val, Result: ok}
						})
					case 2:
						rec.RecordOp(func() linearizable.Op {
							v, loaded := m.LoadOrStore(k, val)
							return linearizable.Op{Kind: linearizable.LoadOrStore, Key: k, Val: val, Val2: v, Result: loaded}
						})
					case 3:
						old := rng.Uint64() % 4
						rec.RecordOp(func() linearizable.Op {
							ok := m.CompareAndSwap(k, old, val)
							return linearizable.Op{Kind: linearizable.CompareAndSwap, Key: k, Val: old, Val2: val, Result: ok}
						})
					case 4:
						old := rng.Uint64() % 4
						rec.RecordOp(func() linearizable.Op {
							ok := m.CompareAndDelete(k, old)
							return linearizable.Op{Kind: linearizable.CompareAndDelete, Key: k, Val: old, Result: ok}
						})
					case 5:
						rec.RecordOp(func() linearizable.Op {
							ok := m.Delete(k)
							return linearizable.Op{Kind: linearizable.Delete, Key: k, Result: ok}
						})
					case 6:
						k2 := rng.Uint64() % 3
						rec.RecordOp(func() linearizable.Op {
							ok := m.ReplaceKey(k, k2)
							return linearizable.Op{Kind: linearizable.Replace, Key: k, Key2: k2, Result: ok}
						})
					}
				}
			}(int64(trial*workers + w))
		}
		wg.Wait()
		if !linearizable.Check(rec.History()) {
			t.Fatalf("trial %d: non-linearizable map history:\n%v", trial, rec.History())
		}
	}
}

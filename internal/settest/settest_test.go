package settest

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"nbtrie/internal/linearizable"
)

// lockedSet is a trivially correct reference implementation: the kit must
// pass against it.
type lockedSet struct {
	mu sync.Mutex
	m  map[uint64]bool
}

func newLockedSet(uint64) Set { return &lockedSet{m: make(map[uint64]bool)} }

func (s *lockedSet) Insert(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[k] {
		return false
	}
	s.m[k] = true
	return true
}

func (s *lockedSet) Delete(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[k] {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *lockedSet) Contains(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (s *lockedSet) Replace(old, new uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[old] || s.m[new] || old == new {
		return false
	}
	delete(s.m, old)
	s.m[new] = true
	return true
}

func TestKitAgainstLockedReference(t *testing.T) {
	Run(t, newLockedSet)
}

// tornSet implements Replace non-atomically (delete, yield, insert). The
// linearizability machinery must be able to catch the resulting torn
// reads; this guards the kit itself against vacuity.
type tornSet struct {
	lockedSet
}

func (s *tornSet) Replace(old, new uint64) bool {
	if !s.Delete(old) {
		return false
	}
	runtime.Gosched() // widen the torn window
	if !s.Insert(new) {
		s.Insert(old) // crude rollback; still observably torn
		return false
	}
	return true
}

func TestKitDetectsTornReplace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s := &tornSet{lockedSet{m: map[uint64]bool{1: true}}}
		// Seed key 1 is present; worker A replaces 1->2 repeatedly while
		// worker B reads both keys. A torn window shows both absent.
		rec := linearizable.NewRecorder()
		rec.Record(linearizable.Insert, 1, 0, func() bool { return false }) // key 1 pre-inserted
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			rec.Record(linearizable.Replace, 1, 2, func() bool { return s.Replace(1, 2) })
		}()
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(trial)))
			for i := 0; i < 4; i++ {
				k := uint64(1 + rng.Intn(2))
				rec.Record(linearizable.Contains, k, 0, func() bool { return s.Contains(k) })
			}
		}()
		wg.Wait()
		// The pre-insert was recorded with result false but applied to a
		// set that already contained 1; fix the record to reflect the
		// actual initial insertion.
		h := rec.History()
		h[0].Result = true
		h[0].Start, h[0].End = -2, -1
		if !linearizable.Check(h) {
			return // anomaly caught: the kit is not vacuous
		}
	}
	t.Skip("torn replace not observed in this run (scheduling-dependent); kit vacuity not disproven")
}

// lockedMap is the trivially correct reference for the map battery.
type lockedMap struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func newLockedMap(uint64) Map { return &lockedMap{m: make(map[uint64]uint64)} }

func (s *lockedMap) Load(k uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

func (s *lockedMap) Store(k, v uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = v
	return true
}

func (s *lockedMap) LoadOrStore(k, v uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[k]; ok {
		return old, true
	}
	s.m[k] = v
	return v, false
}

func (s *lockedMap) Delete(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; !ok {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *lockedMap) CompareAndSwap(k, old, new uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[k]; !ok || v != old {
		return false
	}
	s.m[k] = new
	return true
}

func (s *lockedMap) CompareAndDelete(k, old uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[k]; !ok || v != old {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *lockedMap) ReplaceKey(old, new uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[old]
	if !ok {
		return false
	}
	if _, clash := s.m[new]; clash || old == new {
		return false
	}
	delete(s.m, old)
	s.m[new] = v
	return true
}

func TestMapKitAgainstLockedReference(t *testing.T) {
	RunMap(t, newLockedMap)
}

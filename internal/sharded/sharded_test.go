package sharded

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestNewValidation pins the constructor contract: width bounds, the
// power-of-two shard count requirement, the 0 = default rule, and the
// shardBits <= width-1 clamp.
func TestNewValidation(t *testing.T) {
	for _, width := range []uint32{0, 64} {
		if _, err := New[int](width, 4); err == nil {
			t.Errorf("width %d must be rejected", width)
		}
	}
	for _, shards := range []int{-1, 3, 5, 6, 7, MaxShards + 1, MaxShards * 2} {
		if _, err := New[int](20, shards); err == nil {
			t.Errorf("shard count %d must be rejected", shards)
		}
	}
	tr, err := New[int](20, 16)
	if err != nil || tr.Shards() != 16 || tr.ShardBits() != 4 || tr.Width() != 20 {
		t.Fatalf("New(20, 16) = shards %d bits %d width %d, err %v",
			tr.Shards(), tr.ShardBits(), tr.Width(), err)
	}

	// 0 selects the default, which must be a power of two in range.
	d, err := New[int](30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Shards(); n < 1 || n > MaxShards || n&(n-1) != 0 {
		t.Errorf("default shard count %d is not a power of two in [1, %d]", n, MaxShards)
	}
	if d.Shards() != DefaultShards() {
		t.Errorf("Shards() = %d, DefaultShards() = %d", d.Shards(), DefaultShards())
	}

	// Narrow widths clamp the shard bits so each shard keeps >= 1 key bit.
	narrow, err := New[int](2, 256)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Shards() != 2 || narrow.ShardBits() != 1 {
		t.Errorf("width-2 trie with 256 requested shards: got %d shards (%d bits), want 2 (1)",
			narrow.Shards(), narrow.ShardBits())
	}
	for k := uint64(0); k < 4; k++ {
		if !narrow.Insert(k) || !narrow.Contains(k) {
			t.Errorf("clamped trie cannot hold key %d", k)
		}
	}
}

// TestShardBoundaryKeys drives the first and last key of every shard —
// the keys where a routing off-by-one would misfile or collide — through
// insert/contains/load/delete.
func TestShardBoundaryKeys(t *testing.T) {
	const width = 10
	tr, err := New[uint64](width, 8)
	if err != nil {
		t.Fatal(err)
	}
	span := uint64(1) << (width - tr.ShardBits())
	var boundary []uint64
	for idx := uint64(0); idx < uint64(tr.Shards()); idx++ {
		boundary = append(boundary, idx*span, idx*span+span-1)
	}
	for _, k := range boundary {
		if !tr.InsertValue(k, k*3) {
			t.Fatalf("InsertValue(%d) failed", k)
		}
	}
	if tr.Size() != len(boundary) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(boundary))
	}
	for _, k := range boundary {
		if v, ok := tr.Load(k); !ok || v != k*3 {
			t.Fatalf("Load(%d) = %d,%v want %d,true", k, v, ok, k*3)
		}
		idx, ok := tr.ShardOf(k)
		if !ok || idx != int(k/span) {
			t.Fatalf("ShardOf(%d) = %d,%v want %d,true", k, idx, ok, k/span)
		}
	}
	// The base of each shard must not shadow the last key of the previous
	// one (their per-shard rests are the extremes 0 and span-1).
	for idx := uint64(1); idx < uint64(tr.Shards()); idx++ {
		if !tr.Delete(idx * span) {
			t.Fatalf("Delete(base %d) failed", idx*span)
		}
		if !tr.Contains(idx*span - 1) {
			t.Fatalf("deleting base %d removed the previous shard's last key", idx*span)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAscendAcrossSeams pins the stitched iteration order: keys
// straddling every shard seam come back globally sorted, from any
// starting point — mid-shard, exactly on a seam, and one below it.
func TestAscendAcrossSeams(t *testing.T) {
	const width = 10
	tr, err := New[uint64](width, 8)
	if err != nil {
		t.Fatal(err)
	}
	span := uint64(1) << (width - tr.ShardBits())
	var want []uint64
	for idx := uint64(0); idx < uint64(tr.Shards()); idx++ {
		base := idx * span
		for _, k := range []uint64{base, base + 1, base + span - 1} {
			if tr.InsertValue(k, k+1000) {
				want = append(want, k)
			}
		}
	}
	// want was built in ascending order already (bases ascend, offsets
	// ascend, no duplicates since span > 2).

	collect := func(from uint64) []uint64 {
		var got []uint64
		tr.AscendKV(from, func(k uint64, v uint64) bool {
			if v != k+1000 {
				t.Fatalf("AscendKV(%d): key %d carries value %d", from, k, v)
			}
			got = append(got, k)
			return true
		})
		return got
	}

	all := collect(0)
	if len(all) != len(want) {
		t.Fatalf("full ascent yielded %d keys, want %d", len(all), len(want))
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("full ascent[%d] = %d, want %d (seam ordering broken)", i, all[i], want[i])
		}
	}

	for _, from := range []uint64{1, span - 1, span, span + 1, 3*span - 1, 3 * span, 5*span + 2} {
		got := collect(from)
		var exp []uint64
		for _, k := range want {
			if k >= from {
				exp = append(exp, k)
			}
		}
		if len(got) != len(exp) {
			t.Fatalf("Ascend(%d) yielded %d keys, want %d", from, len(got), len(exp))
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("Ascend(%d)[%d] = %d, want %d", from, i, got[i], exp[i])
			}
		}
	}

	// Early break stops the stitched walk mid-shard.
	n := 0
	tr.AscendKV(0, func(uint64, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early break visited %d keys, want 5", n)
	}
}

// TestReplaceContract pins the three-way Replace contract: same-shard
// pairs replace atomically with the value travelling, cross-shard pairs
// refuse with ErrCrossShard and leave both shards untouched, and
// out-of-range keys fail with a nil error like the unsharded trie.
func TestReplaceContract(t *testing.T) {
	const width = 10
	tr, err := New[string](width, 8)
	if err != nil {
		t.Fatal(err)
	}
	span := uint64(1) << (width - tr.ShardBits())

	// Same shard: keys 3 and 9 both live in shard 0.
	tr.Store(3, "payload")
	if swapped, err := tr.Replace(3, 9); err != nil || !swapped {
		t.Fatalf("same-shard Replace = %v, %v", swapped, err)
	}
	if v, ok := tr.Load(9); !ok || v != "payload" {
		t.Fatalf("value did not travel: Load(9) = %q,%v", v, ok)
	}
	if tr.Contains(3) {
		t.Fatal("old key survived same-shard Replace")
	}
	if !tr.SameShard(3, 9) || tr.SameShard(3, span) {
		t.Fatal("SameShard disagrees with the routing")
	}

	// Cross shard: key 9 (shard 0) to key span (shard 1).
	if swapped, err := tr.Replace(9, span); !errors.Is(err, ErrCrossShard) || swapped {
		t.Fatalf("cross-shard Replace = %v, %v; want false, ErrCrossShard", swapped, err)
	}
	if v, ok := tr.Load(9); !ok || v != "payload" {
		t.Fatal("cross-shard Replace must leave the source untouched")
	}
	if tr.Contains(span) {
		t.Fatal("cross-shard Replace must not create the destination")
	}

	// Cross-shard refusal is decided by routing alone, before any state
	// check: even an absent source reports ErrCrossShard, keeping the
	// error a pure precondition on the key pair.
	if _, err := tr.Replace(span+1, 2*span); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("cross-shard Replace with absent source: err = %v", err)
	}

	// Out of range: false with nil error, state untouched.
	if swapped, err := tr.Replace(9, 1<<width); swapped || err != nil {
		t.Fatalf("out-of-range new: Replace = %v, %v; want false, nil", swapped, err)
	}
	if swapped, err := tr.Replace(1<<width, 9); swapped || err != nil {
		t.Fatalf("out-of-range old: Replace = %v, %v; want false, nil", swapped, err)
	}
	if v, ok := tr.Load(9); !ok || v != "payload" {
		t.Fatal("out-of-range Replace must leave the map unchanged")
	}
}

// TestSequentialOracle replays random workloads (all map operations,
// replace included with its same-shard/cross-shard contract) against a
// Go map oracle.
func TestSequentialOracle(t *testing.T) {
	const width = 9
	for _, shardCount := range []int{1, 4, 32} {
		tr, err := New[uint64](width, shardCount)
		if err != nil {
			t.Fatal(err)
		}
		keyRange := uint64(1) << width
		rng := rand.New(rand.NewSource(int64(shardCount)))
		oracle := make(map[uint64]uint64)
		for i := 0; i < 20000; i++ {
			k := rng.Uint64() % keyRange
			val := rng.Uint64() % 64
			switch rng.Intn(6) {
			case 0:
				if !tr.Store(k, val) {
					t.Fatalf("shards=%d op=%d: Store(%d) failed", shardCount, i, k)
				}
				oracle[k] = val
			case 1:
				ov, oOK := oracle[k]
				if v, ok := tr.Load(k); ok != oOK || (ok && v != ov) {
					t.Fatalf("shards=%d op=%d: Load(%d) = %d,%v want %d,%v", shardCount, i, k, v, ok, ov, oOK)
				}
			case 2:
				_, oOK := oracle[k]
				if got := tr.Delete(k); got != oOK {
					t.Fatalf("shards=%d op=%d: Delete(%d) = %v want %v", shardCount, i, k, got, oOK)
				}
				delete(oracle, k)
			case 3:
				ov, oOK := oracle[k]
				old := rng.Uint64() % 64
				want := oOK && ov == old
				if got := tr.CompareAndSwap(k, old, val); got != want {
					t.Fatalf("shards=%d op=%d: CAS(%d) = %v want %v", shardCount, i, k, got, want)
				}
				if want {
					oracle[k] = val
				}
			case 4:
				ov, oOK := oracle[k]
				v, loaded, ok := tr.LoadOrStore(k, val)
				if !ok || loaded != oOK || (loaded && v != ov) || (!loaded && v != val) {
					t.Fatalf("shards=%d op=%d: LoadOrStore(%d) = %d,%v,%v oracle %d,%v", shardCount, i, k, v, loaded, ok, ov, oOK)
				}
				if !loaded {
					oracle[k] = val
				}
			case 5:
				k2 := rng.Uint64() % keyRange
				ov, oOK := oracle[k]
				_, o2OK := oracle[k2]
				swapped, err := tr.Replace(k, k2)
				if !tr.SameShard(k, k2) {
					if !errors.Is(err, ErrCrossShard) || swapped {
						t.Fatalf("shards=%d op=%d: cross-shard Replace(%d,%d) = %v, %v", shardCount, i, k, k2, swapped, err)
					}
					continue
				}
				want := oOK && !o2OK && k != k2
				if err != nil || swapped != want {
					t.Fatalf("shards=%d op=%d: Replace(%d,%d) = %v, %v want %v, nil", shardCount, i, k, k2, swapped, err, want)
				}
				if swapped {
					delete(oracle, k)
					oracle[k2] = ov
				}
			}
		}
		if tr.Size() != len(oracle) {
			t.Fatalf("shards=%d: Size = %d, oracle %d", shardCount, tr.Size(), len(oracle))
		}
		for k, ov := range oracle {
			if v, ok := tr.Load(k); !ok || v != ov {
				t.Fatalf("shards=%d final: Load(%d) = %d,%v want %d,true", shardCount, k, v, ok, ov)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("shards=%d: %v", shardCount, err)
		}
	}
}

// TestOutOfRangeKeys: keys outside [0, 2^width) are permanently absent
// on every path, including iteration starting points.
func TestOutOfRangeKeys(t *testing.T) {
	tr, err := New[int](8, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr.Store(3, 33)
	for _, k := range []uint64{256, 1 << 20, ^uint64(0)} {
		if tr.Store(k, 1) || tr.Insert(k) || tr.Contains(k) || tr.Delete(k) {
			t.Errorf("out-of-range %d must be absent on every path", k)
		}
		if _, ok := tr.Load(k); ok {
			t.Errorf("Load(%d) must miss", k)
		}
		if _, loaded, ok := tr.LoadOrStore(k, 1); ok || loaded {
			t.Errorf("LoadOrStore(%d) must reject", k)
		}
		if tr.CompareAndSwap(k, 1, 2) || tr.CompareAndDelete(k, 1) {
			t.Errorf("value ops on out-of-range %d must fail", k)
		}
		if _, ok := tr.ShardOf(k); ok {
			t.Errorf("ShardOf(%d) must report no owner", k)
		}
		n := 0
		tr.AscendKV(k, func(uint64, int) bool { n++; return true })
		if n != 0 {
			t.Errorf("AscendKV(%d) yielded %d keys, want 0", k, n)
		}
	}
	if v, ok := tr.Load(3); !ok || v != 33 {
		t.Error("in-range entry damaged by out-of-range probing")
	}
}

// TestConcurrentCrossShardTraffic hammers all shards from several
// goroutines — uniform keys, so every seam sees concurrent traffic on
// both sides — and cross-checks a final per-key invariant. Run with
// -race this doubles as the sharded front-end's data-race probe.
func TestConcurrentCrossShardTraffic(t *testing.T) {
	const width = 10
	tr, err := New[uint64](width, 8)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				k := rng.Uint64() % (1 << width)
				switch rng.Intn(4) {
				case 0:
					tr.Store(k, uint64(g))
				case 1:
					tr.Delete(k)
				case 2:
					if v, ok := tr.Load(k); ok && v >= goroutines {
						panic("torn value")
					}
				case 3:
					// Same-shard replace to the key's sibling (flip the
					// lowest bit — always the same shard).
					if swapped, err := tr.Replace(k, k^1); err != nil {
						panic(err) // sibling keys can never be cross-shard
					} else {
						_ = swapped
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1<<width; k++ {
		if v, ok := tr.Load(k); ok && v >= goroutines {
			t.Fatalf("key %d holds impossible value %d", k, v)
		}
	}
}

// TestNewSpan pins the k-ary composition: NewSpan validates the span
// range, New is NewSpan at span 1, and a span-4 sharded trie serves the
// full op surface (including same-shard Replace) with intact per-shard
// invariants. Shard routing strips the top bits *before* the per-shard
// trie digitizes, so span does not have to divide the shard width.
func TestNewSpan(t *testing.T) {
	for _, span := range []uint32{0, 7, 100} {
		if _, err := NewSpan[int](20, 4, span); err == nil {
			t.Errorf("span %d must be rejected", span)
		}
	}
	tr, err := NewSpan[int](20, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Shards() != 8 || tr.Width() != 20 {
		t.Fatalf("NewSpan(20, 8, 4) = shards %d width %d", tr.Shards(), tr.Width())
	}
	const n = 2000
	for k := uint64(0); k < n; k++ {
		// Spread keys across shards: the top 3 of 20 bits route.
		key := k << 9
		if !tr.Store(key, int(k)) {
			t.Fatalf("Store(%d) failed", key)
		}
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := tr.Load(k << 9); !ok || v != int(k) {
			t.Fatalf("Load(%d) = %d, %v", k<<9, v, ok)
		}
	}
	// Same-shard replace: keys differing only in low bits share a shard.
	if swapped, err := tr.Replace(5<<9, 5<<9|1); err != nil || !swapped {
		t.Fatalf("same-shard Replace = %v, %v", swapped, err)
	}
	if tr.Contains(5<<9) || !tr.Contains(5<<9|1) {
		t.Fatal("Replace moved the wrong key")
	}
	for k := uint64(0); k < n; k += 2 {
		if k != 5 && !tr.Delete(k<<9) {
			t.Fatalf("Delete(%d) failed", k<<9)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

package sharded

import (
	"nbtrie/internal/core"
	"nbtrie/internal/keys"
)

// Snapshot is a read-only point-in-time view of the sharded trie: one
// engine snapshot per shard, taken in shard-index order. Each shard's
// view is an exact frozen cut of that shard; the cuts are taken
// sequentially, not under a global barrier, so the composite is NOT a
// single linearization point of the whole map — an update to a
// lower-index shard that starts after a higher-index shard's cut can be
// missing while a later update to the higher-index shard is present.
// Callers that need a globally exact cut must provide their own write
// barrier around Snapshot (the nbtried server does exactly that: its
// persistence gate quiesces mutators for the O(shards) instant the cuts
// take). For a single writer, or writers partitioned by shard, the
// composite is exact as-is.
type Snapshot[V any] struct {
	t      *Trie[V]
	shards []*core.Snapshot[V]
}

// Snapshot returns a frozen view of every shard, O(shards) time and
// allocation, independent of the number of keys. See the type comment
// for the cross-shard consistency contract.
func (t *Trie[V]) Snapshot() *Snapshot[V] {
	ss := make([]*core.Snapshot[V], len(t.shards))
	for i, sh := range t.shards {
		ss[i] = sh.Snapshot()
	}
	return &Snapshot[V]{t: t, shards: ss}
}

// Len sums the per-shard snapshot counts: exact per shard, and exact
// globally whenever the snapshot was taken with mutators quiesced.
func (s *Snapshot[V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Contains reports whether k was present in its shard's cut.
func (s *Snapshot[V]) Contains(k uint64) bool {
	if !keys.InRange(k, s.t.width) {
		return false
	}
	return s.shards[keys.ShardOf(k, s.t.width, s.t.shardBits)].
		Contains(keys.ShardRest(k, s.t.width, s.t.shardBits))
}

// Load returns the value bound to k in its shard's cut.
func (s *Snapshot[V]) Load(k uint64) (V, bool) {
	if !keys.InRange(k, s.t.width) {
		var zero V
		return zero, false
	}
	return s.shards[keys.ShardOf(k, s.t.width, s.t.shardBits)].
		Load(keys.ShardRest(k, s.t.width, s.t.shardBits))
}

// AscendKV calls fn on every (key, value) pair with key >= from, in
// ascending key order, stitching the per-shard frozen walks in
// shard-index order (the same stitching as the live trie's AscendKV),
// until fn returns false.
func (s *Snapshot[V]) AscendKV(from uint64, fn func(k uint64, val V) bool) {
	t := s.t
	if !keys.InRange(from, t.width) {
		return
	}
	start := keys.ShardOf(from, t.width, t.shardBits)
	more := true
	for idx := start; more && idx < uint64(len(s.shards)); idx++ {
		base := keys.ShardBase(idx, t.width, t.shardBits)
		rest := uint64(0)
		if idx == start {
			rest = keys.ShardRest(from, t.width, t.shardBits)
		}
		s.shards[idx].AscendKV(rest, func(k uint64, val V) bool {
			more = fn(base|k, val)
			return more
		})
	}
}

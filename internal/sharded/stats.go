package sharded

import "nbtrie/internal/engine"

// EngineStats returns the contention counters summed over every shard.
// Each shard's block is snapshotted independently, so the merge is not a
// single global cut — fine for metrics, by design.
func (t *Trie[V]) EngineStats() engine.StatsSnapshot {
	var agg engine.StatsSnapshot
	for _, sh := range t.shards {
		s := sh.EngineStats()
		agg.Merge(s)
	}
	return agg
}

// ShardEngineStats returns shard i's own counter snapshot; i must be in
// [0, Shards()).
func (t *Trie[V]) ShardEngineStats(i int) engine.StatsSnapshot {
	return t.shards[i].EngineStats()
}

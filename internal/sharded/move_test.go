package sharded

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// newMoveTrie builds the move tests' standard fixture: width 16, 8
// shards, so the top 3 bits route and the shard boundary is computable
// (0..8191 share shard 0, 8192 starts shard 1).
func newMoveTrie(t *testing.T) *Trie[string] {
	t.Helper()
	tr, err := New[string](16, 8)
	if err != nil {
		t.Fatalf("New(16, 8): %v", err)
	}
	return tr
}

func TestMoveKeySameShardIsReplace(t *testing.T) {
	tr := newMoveTrie(t)
	tr.Store(100, "v")
	moved, err := tr.MoveKey(100, 200)
	if !moved || err != nil {
		t.Fatalf("MoveKey(100, 200) = %v, %v", moved, err)
	}
	if v, ok := tr.Load(200); !ok || v != "v" {
		t.Fatalf("Load(200) = %q, %v", v, ok)
	}
	if tr.Contains(100) {
		t.Fatal("source survived a same-shard move")
	}
	if tr.PendingMoves() != 0 {
		t.Fatalf("PendingMoves = %d after same-shard move (no marker should be used)", tr.PendingMoves())
	}
}

func TestMoveKeyCrossShard(t *testing.T) {
	tr := newMoveTrie(t)
	if tr.SameShard(100, 8292) {
		t.Fatal("test premise broken: keys share a shard")
	}
	tr.Store(100, "v")
	moved, err := tr.MoveKey(100, 8292)
	if !moved || err != nil {
		t.Fatalf("MoveKey(100, 8292) = %v, %v", moved, err)
	}
	if v, ok := tr.Load(8292); !ok || v != "v" {
		t.Fatalf("Load(8292) = %q, %v", v, ok)
	}
	if tr.Contains(100) {
		t.Fatal("source survived the move")
	}
	if tr.PendingMoves() != 0 {
		t.Fatalf("PendingMoves = %d after a completed move", tr.PendingMoves())
	}
}

func TestMoveKeyRefusals(t *testing.T) {
	tr := newMoveTrie(t)
	tr.Store(100, "src")
	tr.Store(8292, "dst")

	// Absent source.
	if moved, err := tr.MoveKey(5, 8300); moved || err != nil {
		t.Fatalf("MoveKey(absent) = %v, %v", moved, err)
	}
	// Occupied destination: refused with no side effects, marker dropped.
	if moved, err := tr.MoveKey(100, 8292); moved || err != nil {
		t.Fatalf("MoveKey(occupied dest) = %v, %v", moved, err)
	}
	if v, _ := tr.Load(100); v != "src" {
		t.Fatalf("source changed by a refused move: %q", v)
	}
	if v, _ := tr.Load(8292); v != "dst" {
		t.Fatalf("destination changed by a refused move: %q", v)
	}
	if tr.PendingMoves() != 0 {
		t.Fatalf("PendingMoves = %d after a refused move", tr.PendingMoves())
	}
	// Move to self and out-of-range keys.
	if moved, err := tr.MoveKey(100, 100); moved || err != nil {
		t.Fatalf("MoveKey(self) = %v, %v", moved, err)
	}
	if moved, err := tr.MoveKey(100, 1<<16); moved || err != nil {
		t.Fatalf("MoveKey(out of range) = %v, %v", moved, err)
	}
}

// TestMoveKeyBusy exercises the per-source mutual exclusion: while one
// move of a source is between registration and completion, a second
// MoveKey of the same source fails with ErrMoveBusy instead of risking
// value duplication.
func TestMoveKeyBusy(t *testing.T) {
	tr := newMoveTrie(t)
	tr.Store(100, "v")
	var busyErr error
	tr.moveHook = func(phase int) {
		if phase == 1 {
			// In the move window: marker registered, destination not yet
			// written. A competing move of the same source must refuse.
			_, busyErr = tr.MoveKey(100, 8400)
		}
	}
	moved, err := tr.MoveKey(100, 8292)
	if !moved || err != nil {
		t.Fatalf("MoveKey = %v, %v", moved, err)
	}
	if !errors.Is(busyErr, ErrMoveBusy) {
		t.Fatalf("competing move err = %v, want ErrMoveBusy", busyErr)
	}
	if tr.Contains(8400) {
		t.Fatal("refused competing move left a destination copy")
	}
}

// TestMoveKeyConcurrentOverwriteSurvives lands a Store on the source
// inside the move window (destination inserted, source not yet
// deleted). Phase 3's value-conditional delete must leave the overwrite
// in place — the legal serialization move-then-store — instead of
// erasing an acked write so that it exists at neither key.
func TestMoveKeyConcurrentOverwriteSurvives(t *testing.T) {
	tr := newMoveTrie(t)
	tr.Store(100, "v")
	tr.moveHook = func(phase int) {
		if phase == 2 {
			tr.Store(100, "overwrite")
		}
	}
	moved, err := tr.MoveKey(100, 8292)
	if !moved || err != nil {
		t.Fatalf("MoveKey = %v, %v", moved, err)
	}
	if v, ok := tr.Load(100); !ok || v != "overwrite" {
		t.Fatalf("Load(source) = %q, %v; a mid-move overwrite must survive phase 3", v, ok)
	}
	if v, ok := tr.Load(8292); !ok || v != "v" {
		t.Fatalf("Load(dest) = %q, %v", v, ok)
	}
	if tr.PendingMoves() != 0 {
		t.Fatalf("PendingMoves = %d after a completed move", tr.PendingMoves())
	}
}

// TestMoveKeyOverwriteIdentity is the same race with []byte values and
// an equal-content overwrite: allocation identity, not content, decides
// whether phase 3 deletes — the same test the server's expiry purge
// applies, so an acked SET of identical bytes still survives.
func TestMoveKeyOverwriteIdentity(t *testing.T) {
	tr, err := New[[]byte](16, 8)
	if err != nil {
		t.Fatalf("New(16, 8): %v", err)
	}
	tr.Store(100, []byte("v"))
	tr.moveHook = func(phase int) {
		if phase == 2 {
			tr.Store(100, []byte("v")) // same bytes, fresh allocation
		}
	}
	moved, err := tr.MoveKey(100, 8292)
	if !moved || err != nil {
		t.Fatalf("MoveKey = %v, %v", moved, err)
	}
	if v, ok := tr.Load(100); !ok || string(v) != "v" {
		t.Fatalf("Load(source) = %q, %v; an equal-content overwrite must survive phase 3", v, ok)
	}
	if v, ok := tr.Load(8292); !ok || string(v) != "v" {
		t.Fatalf("Load(dest) = %q, %v", v, ok)
	}
}

// TestMoveKeyCrashAfterInsert kills the mover (simulated with a hook
// panic) between phase 2 (destination inserted) and phase 3 (source
// deleted): both copies exist, the marker records the move, and
// ResolveMoves completes it — destination kept, source deleted.
func TestMoveKeyCrashAfterInsert(t *testing.T) {
	tr := newMoveTrie(t)
	tr.Store(100, "v")
	tr.moveHook = func(phase int) {
		if phase == 2 {
			panic("simulated mover death after destination insert")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hook did not fire")
			}
		}()
		tr.MoveKey(100, 8292)
	}()
	tr.moveHook = nil

	// The interrupted state: at-least-one-copy held as both copies.
	if !tr.Contains(100) || !tr.Contains(8292) {
		t.Fatalf("interrupted move: source=%v dest=%v, want both", tr.Contains(100), tr.Contains(8292))
	}
	if tr.PendingMoves() != 1 {
		t.Fatalf("PendingMoves = %d, want 1 marker", tr.PendingMoves())
	}
	if n := tr.ResolveMoves(); n != 1 {
		t.Fatalf("ResolveMoves = %d, want 1 completed", n)
	}
	if tr.Contains(100) {
		t.Fatal("ResolveMoves kept the source of a committed move")
	}
	if v, ok := tr.Load(8292); !ok || v != "v" {
		t.Fatalf("Load(8292) after resolve = %q, %v", v, ok)
	}
	if tr.PendingMoves() != 0 {
		t.Fatal("marker survived ResolveMoves")
	}
}

// TestMoveKeyCrashBeforeInsert kills the mover between registration and
// the destination insert: the move never became visible, so
// ResolveMoves abandons it — source intact, marker dropped.
func TestMoveKeyCrashBeforeInsert(t *testing.T) {
	tr := newMoveTrie(t)
	tr.Store(100, "v")
	tr.moveHook = func(phase int) {
		if phase == 1 {
			panic("simulated mover death before destination insert")
		}
	}
	func() {
		defer func() { recover() }()
		tr.MoveKey(100, 8292)
	}()
	tr.moveHook = nil

	if tr.Contains(8292) {
		t.Fatal("destination exists though the mover died before inserting")
	}
	if tr.PendingMoves() != 1 {
		t.Fatalf("PendingMoves = %d, want 1 marker", tr.PendingMoves())
	}
	if n := tr.ResolveMoves(); n != 0 {
		t.Fatalf("ResolveMoves = %d, want 0 (abandoned, not completed)", n)
	}
	if v, ok := tr.Load(100); !ok || v != "v" {
		t.Fatalf("abandoned move lost the source: %q, %v", v, ok)
	}
	if tr.PendingMoves() != 0 {
		t.Fatal("marker survived ResolveMoves")
	}
}

// TestMoveKeyReaderWindow pins the mover at each phase boundary (via
// the hook) and probes the map from outside: before the destination
// insert the value is only at the source, between insert and delete a
// reader sees BOTH copies — the documented at-least-one-copy guarantee,
// observed deterministically at the exact instants it is weakest.
func TestMoveKeyReaderWindow(t *testing.T) {
	tr := newMoveTrie(t)
	tr.Store(100, "v")
	entered := make(chan int)
	release := make(chan struct{})
	tr.moveHook = func(phase int) {
		entered <- phase
		<-release
	}
	done := make(chan struct{})
	var moved bool
	var err error
	go func() {
		defer close(done)
		moved, err = tr.MoveKey(100, 8292)
	}()

	// Phase 1: marker registered, destination not yet inserted.
	if p := <-entered; p != 1 {
		t.Fatalf("first hook phase = %d", p)
	}
	if !tr.Contains(100) || tr.Contains(8292) {
		t.Fatalf("phase 1: source=%v dest=%v, want value only at source",
			tr.Contains(100), tr.Contains(8292))
	}
	if tr.PendingMoves() != 1 {
		t.Fatalf("phase 1: PendingMoves = %d", tr.PendingMoves())
	}
	release <- struct{}{}

	// Phase 2: destination inserted, source not yet deleted — the window
	// a concurrent reader can see both copies in, never neither.
	if p := <-entered; p != 2 {
		t.Fatalf("second hook phase = %d", p)
	}
	va, oka := tr.Load(100)
	vb, okb := tr.Load(8292)
	if !oka || !okb || va != "v" || vb != "v" {
		t.Fatalf("phase 2: source=(%q,%v) dest=(%q,%v), want both copies",
			va, oka, vb, okb)
	}
	release <- struct{}{}

	<-done
	if !moved || err != nil {
		t.Fatalf("MoveKey = %v, %v", moved, err)
	}
	if tr.Contains(100) || !tr.Contains(8292) {
		t.Fatalf("after move: source=%v dest=%v", tr.Contains(100), tr.Contains(8292))
	}
}

// TestMoveKeyNeverLost ping-pongs a value between two cross-shard keys
// under concurrent readers. A reader that misses both keys retries; a
// value actually LOST by the protocol would miss forever, which is what
// the bounded retry detects (transient double-misses are expected — a
// whole move can complete between a reader's two probes).
func TestMoveKeyNeverLost(t *testing.T) {
	tr := newMoveTrie(t)
	const a, b = uint64(100), uint64(8292)
	tr.Store(a, "v")

	var stop atomic.Bool
	var lost atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				found := false
				for probe := 0; probe < 200 && !found; probe++ {
					found = tr.Contains(a) || tr.Contains(b)
				}
				if !found {
					lost.Add(1)
					return
				}
			}
		}()
	}
	from, to := a, b
	for i := 0; i < 3000; i++ {
		moved, err := tr.MoveKey(from, to)
		if !moved || err != nil {
			t.Fatalf("iteration %d: MoveKey(%d, %d) = %v, %v", i, from, to, moved, err)
		}
		from, to = to, from
	}
	stop.Store(true)
	wg.Wait()
	if n := lost.Load(); n != 0 {
		t.Fatalf("%d readers found the value at neither key for 200 consecutive probe pairs", n)
	}
	if v, ok := tr.Load(from); !ok || v != "v" {
		t.Fatalf("final Load(%d) = %q, %v", from, v, ok)
	}
	if tr.Contains(to) {
		t.Fatalf("value duplicated: both %d and %d exist after the last move", from, to)
	}
}

package sharded

import "testing"

// Allocation pins for the sharded read path: routing is pure integer
// arithmetic and each shard inherits the fixed-width trie's wait-free,
// allocation-free Contains/Load, so the sharded front-end must add
// nothing. The public registry pin (alloc_test.go at the repo root)
// checks the Set surface; this white-box pin also covers Load and the
// multi-shard routing specifically.
func TestShardedReadPathDoesNotAllocate(t *testing.T) {
	tr, err := New[uint64](16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Spread keys over every shard so the pin exercises routing, not just
	// shard 0.
	for k := uint64(0); k < 1<<12; k += 3 {
		tr.Store(k, k)
	}
	span := uint64(1) << (16 - tr.ShardBits())
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Contains(3) {
			t.Fatal("Contains(3) missed")
		}
		if tr.Contains(5) {
			t.Fatal("Contains(5) false positive")
		}
		if v, ok := tr.Load(span * 2); span*2%3 == 0 && (!ok || v != span*2) {
			t.Fatal("Load across shards wrong")
		}
		if _, ok := tr.Load(1 << 16); ok {
			t.Fatal("out-of-range Load must miss")
		}
	}); n != 0 {
		t.Errorf("sharded Contains/Load allocate %v objects per call, want 0", n)
	}
}

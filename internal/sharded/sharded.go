// Package sharded is a sharded front-end over the fixed-width Patricia
// trie (internal/core): the width-bit key space is partitioned into 2^s
// contiguous slices by the top s key bits (keys.ShardOf), and each slice
// is served by its own independent instance of the shared non-blocking
// update engine. Every update funnelling through one root is the paper's
// trie's scaling ceiling — helping traffic and child-CAS retries grow
// with contention near the root — so partitioning the key space is the
// standard next lever (compare the cache-aware Ctrie line of work):
// writers touching different shards share no memory at all, while each
// shard individually keeps every per-trie guarantee.
//
// Because the partition is by top bits rather than by hash, shard i owns
// exactly the contiguous key interval [i<<(width-s), (i+1)<<(width-s)).
// Two consequences the API relies on:
//
//   - per-shard tries keep their prefix structure: keys in one shard
//     relate exactly as in the unsharded trie once the shared top s bits
//     are factored out, so each shard stores only the low width-s bits
//     of its keys (a strictly shallower trie);
//   - ascending iteration stitches: concatenating per-shard ascents in
//     shard-index order is a full ascent of the key space.
//
// Guarantees are per shard: Load/Contains stay wait-free and
// allocation-free, all single-key mutations stay lock-free, and Replace
// stays atomic when both keys live in the same shard. A cross-shard
// Replace would need one linearization point spanning two independent
// tries, which no per-shard protocol can provide without locking both —
// so it is refused with ErrCrossShard instead of being faked.
// Aggregate reads (Size, iteration) are per-shard-exact but not a global
// snapshot, same as the unsharded trie's Range contract.
package sharded

import (
	"errors"
	"fmt"
	"math/bits"
	"reflect"
	"runtime"
	"sync"

	"nbtrie/internal/core"
	"nbtrie/internal/keys"
)

// ErrCrossShard is returned by Replace when the two keys live in
// different shards. The sharded trie's Replace is atomic only within a
// shard (one engine instance, one linearization point); moving a key
// across shards is two independent linearizable operations and callers
// must decide how to compose them (delete-then-insert, tolerate both
// visible, or re-key within a shard).
var ErrCrossShard = errors.New("sharded: keys live in different shards; cross-shard replace is not atomic")

// ErrMoveBusy is returned by MoveKey when a cross-shard move of the same
// source key is already in flight: the in-flight marker doubles as a
// per-source mutual-exclusion token, so two concurrent moves can never
// duplicate one value into two destinations.
var ErrMoveBusy = errors.New("sharded: a cross-shard move of this key is already in flight")

// MaxShards caps the shard count: beyond a few hundred independent
// roots, routing wins are exhausted and per-shard fixed overhead (two
// dummy leaves and a root path each) dominates.
const MaxShards = 256

// minDefaultShards floors DefaultShards: shard demand tracks concurrent
// goroutines, which routinely outnumber GOMAXPROCS, so a few shards are
// kept even on small hosts (the same reasoning as ConcurrentHashMap's
// historical minimum segment count).
const minDefaultShards = 8

// DefaultShards is the shard count New uses when given 0:
// runtime.GOMAXPROCS rounded up to a power of two, floored at 8 and
// capped at MaxShards.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < minDefaultShards {
		n = minDefaultShards
	}
	if n > MaxShards {
		n = MaxShards
	}
	return 1 << bits.Len(uint(n-1))
}

// Trie is the sharded front-end: a linearizable set/map over uint64 keys
// in [0, 2^width) with the same per-operation surface as core.Trie,
// served by 2^s independent engine instances. All methods are safe for
// unrestricted concurrent use.
type Trie[V any] struct {
	width     uint32
	shardBits uint32
	shards    []*core.Trie[V]

	// In-flight cross-shard move markers, keyed by source key. A marker
	// exists exactly while a MoveKey is between its load and its final
	// unregister, recording enough (destination, value) for ResolveMoves
	// to finish an interrupted move. moveHook, when non-nil, is called
	// between the phases — a test seam for simulating a crash mid-move.
	moveMu   sync.Mutex
	moves    map[uint64]moveRecord[V]
	moveHook func(phase int)
}

// moveRecord is the durable-enough residue of an in-flight cross-shard
// move: where the value was headed and what it was.
type moveRecord[V any] struct {
	to  uint64
	val V
}

// New returns an empty sharded trie over keys in [0, 2^width); width
// must be in [1, keys.MaxWidth]. shardCount selects the number of
// shards: 0 means DefaultShards, anything else must be a power of two in
// [1, MaxShards]. The count is silently clamped so each shard keeps at
// least one key bit (shardBits <= width-1); Shards reports the count in
// effect.
func New[V any](width uint32, shardCount int) (*Trie[V], error) {
	return NewSpan[V](width, shardCount, 1)
}

// NewSpan is New with the per-shard tries built at digit width span
// (core.WithSpan): 2^span-child nodes resolve span key bits per level
// inside every shard, composing the sharded front-end's write scaling
// with the k-ary depth cut. span must be in [1, 6]; 1 is New.
func NewSpan[V any](width uint32, shardCount int, span uint32) (*Trie[V], error) {
	if width < 1 || width > keys.MaxWidth {
		return nil, fmt.Errorf("sharded trie: width %d out of range [1, %d]", width, keys.MaxWidth)
	}
	if span < 1 || span > 6 {
		return nil, fmt.Errorf("sharded trie: span %d out of range [1, 6]", span)
	}
	if shardCount == 0 {
		shardCount = DefaultShards()
	}
	if shardCount < 1 || shardCount > MaxShards || shardCount&(shardCount-1) != 0 {
		return nil, fmt.Errorf("sharded trie: shard count %d must be a power of two in [1, %d]", shardCount, MaxShards)
	}
	s := uint32(bits.TrailingZeros(uint(shardCount)))
	if s > width-1 {
		s = width - 1
	}
	t := &Trie[V]{
		width:     width,
		shardBits: s,
		shards:    make([]*core.Trie[V], 1<<s),
	}
	for i := range t.shards {
		st, err := core.New(width-s, core.WithSpan[V](span))
		if err != nil {
			return nil, err
		}
		t.shards[i] = st
	}
	return t, nil
}

// Width returns the user-key width in bits.
func (t *Trie[V]) Width() uint32 { return t.width }

// Shards returns the number of shards in effect.
func (t *Trie[V]) Shards() int { return len(t.shards) }

// ShardBits returns s, the number of top key bits used for routing.
func (t *Trie[V]) ShardBits() uint32 { return t.shardBits }

// ShardOf returns the index of the shard owning k, and false for keys
// outside [0, 2^width), which no shard owns.
func (t *Trie[V]) ShardOf(k uint64) (int, bool) {
	if !keys.InRange(k, t.width) {
		return 0, false
	}
	return int(keys.ShardOf(k, t.width, t.shardBits)), true
}

// SameShard reports whether a and b are both in range and owned by the
// same shard — the precondition for an atomic Replace between them.
func (t *Trie[V]) SameShard(a, b uint64) bool {
	ia, okA := t.ShardOf(a)
	ib, okB := t.ShardOf(b)
	return okA && okB && ia == ib
}

// locate routes an in-range key to its shard and per-shard key; ok is
// false for out-of-range keys, which are permanently absent.
func (t *Trie[V]) locate(k uint64) (shard *core.Trie[V], rest uint64, ok bool) {
	if !keys.InRange(k, t.width) {
		return nil, 0, false
	}
	return t.shards[keys.ShardOf(k, t.width, t.shardBits)],
		keys.ShardRest(k, t.width, t.shardBits), true
}

// Contains reports membership, wait-free and allocation-free: one shard
// index computation, then the shard trie's pure-read descent.
func (t *Trie[V]) Contains(k uint64) bool {
	sh, rest, ok := t.locate(k)
	return ok && sh.Contains(rest)
}

// Load returns the value bound to k, or (zero, false) when absent.
// Wait-free and allocation-free like Contains.
func (t *Trie[V]) Load(k uint64) (V, bool) {
	sh, rest, ok := t.locate(k)
	if !ok {
		var zero V
		return zero, false
	}
	return sh.Load(rest)
}

// Insert adds k, returning false if it was already present or out of
// range. Lock-free within the owning shard.
func (t *Trie[V]) Insert(k uint64) bool {
	sh, rest, ok := t.locate(k)
	return ok && sh.Insert(rest)
}

// InsertValue is Insert with a value payload bound to the fresh leaf.
func (t *Trie[V]) InsertValue(k uint64, val V) bool {
	sh, rest, ok := t.locate(k)
	return ok && sh.InsertValue(rest, val)
}

// Delete removes k, returning false if it was absent. Lock-free within
// the owning shard.
func (t *Trie[V]) Delete(k uint64) bool {
	sh, rest, ok := t.locate(k)
	return ok && sh.Delete(rest)
}

// Store binds k to val, inserting or overwriting (lock-free upsert). It
// returns false only for out-of-range keys.
func (t *Trie[V]) Store(k uint64, val V) bool {
	sh, rest, ok := t.locate(k)
	if !ok {
		return false
	}
	return sh.Store(rest, val)
}

// LoadOrStore returns the value bound to k if present (loaded true);
// otherwise it stores val and returns it. ok is false only for
// out-of-range keys, which can neither be loaded nor stored.
func (t *Trie[V]) LoadOrStore(k uint64, val V) (actual V, loaded, ok bool) {
	sh, rest, inRange := t.locate(k)
	if !inRange {
		var zero V
		return zero, false, false
	}
	return sh.LoadOrStore(rest, val)
}

// CompareAndSwap swaps k's value from old to new if the stored value
// equals old (interface equality; old must be comparable).
func (t *Trie[V]) CompareAndSwap(k uint64, old, new V) bool {
	sh, rest, ok := t.locate(k)
	return ok && sh.CompareAndSwap(rest, old, new)
}

// CompareAndDelete deletes k if its stored value equals old (interface
// equality; old must be comparable).
func (t *Trie[V]) CompareAndDelete(k uint64, old V) bool {
	sh, rest, ok := t.locate(k)
	return ok && sh.CompareAndDelete(rest, old)
}

// DeleteFunc deletes k if cond returns true for its stored value,
// returning true iff the key was deleted; the value cond approved is the
// value removed. cond may run more than once under contention and must
// be side-effect free.
func (t *Trie[V]) DeleteFunc(k uint64, cond func(V) bool) bool {
	sh, rest, ok := t.locate(k)
	return ok && sh.DeleteFunc(rest, cond)
}

// Replace atomically removes old and inserts new when both keys live in
// the same shard: the owning engine's Replace provides the single
// linearization point, and the value travels with the key. It returns
// (false, ErrCrossShard) when both keys are in range but owned by
// different shards — see the package comment for why this is refused
// rather than faked. Out-of-range keys make it return (false, nil), like
// the unsharded trie: an out-of-range old is never present, an
// out-of-range new cannot be inserted.
func (t *Trie[V]) Replace(old, new uint64) (bool, error) {
	if !keys.InRange(old, t.width) || !keys.InRange(new, t.width) {
		return false, nil
	}
	io := keys.ShardOf(old, t.width, t.shardBits)
	in := keys.ShardOf(new, t.width, t.shardBits)
	if io != in {
		return false, ErrCrossShard
	}
	return t.shards[io].Replace(
		keys.ShardRest(old, t.width, t.shardBits),
		keys.ShardRest(new, t.width, t.shardBits)), nil
}

// MoveKey moves the value stored under from to the key to, across shard
// boundaries. Same-shard pairs take the engine's atomic Replace (one
// linearization point, same as the Replace method). Cross-shard pairs
// run a documented two-phase protocol:
//
//  1. load the source value and register an in-flight marker
//     (source → destination, value);
//  2. insert the value at the destination (LoadOrStore — the move fails
//     without side effects if the destination already holds a key);
//  3. delete the source and drop the marker.
//
// The move is not atomic: a concurrent reader can observe both copies
// between phases 2 and 3. What the protocol does guarantee is
// at-least-one-copy — there is no instant at which neither key holds
// the value, because the source is deleted only after the destination
// insert committed. The marker makes an interrupted move recoverable:
// ResolveMoves finishes (or abandons) whatever a crashed mover left
// behind, and doubles as per-source mutual exclusion — a second MoveKey
// of the same source while one is in flight fails with ErrMoveBusy
// rather than risking value duplication.
//
// It returns (true, nil) when the value moved; (false, nil) when the
// source was absent, the destination was occupied, or either key is out
// of range; (false, ErrMoveBusy) on a marker collision. A concurrent
// Store to the source during the move window is never lost: phase 3 is
// value-conditional (identity, via DeleteFunc), so it removes the
// source only while it still holds the exact value phase 1 loaded. An
// overwrite that lands mid-move survives at the source alongside the
// moved copy at the destination — the outcome of the legal
// serialization move-then-store.
func (t *Trie[V]) MoveKey(from, to uint64) (bool, error) {
	if !keys.InRange(from, t.width) || !keys.InRange(to, t.width) {
		return false, nil
	}
	if from == to {
		return false, nil // nothing to move; mirrors Replace(k, k)
	}
	if t.SameShard(from, to) {
		moved, err := t.Replace(from, to)
		return moved, err
	}
	val, ok := t.Load(from)
	if !ok {
		return false, nil
	}
	if !t.registerMove(from, moveRecord[V]{to: to, val: val}) {
		return false, ErrMoveBusy
	}
	if h := t.moveHook; h != nil {
		h(1)
	}
	if _, loaded, _ := t.LoadOrStore(to, val); loaded {
		t.unregisterMove(from)
		return false, nil
	}
	if h := t.moveHook; h != nil {
		h(2)
	}
	// Phase 3 must not be a blind delete: mutators do not serialize
	// against moves, so a Store to the source acked during the move
	// window would be silently erased — the value at neither key. Delete
	// only the exact value phase 1 loaded; a concurrent overwrite fails
	// the identity check and survives.
	t.DeleteFunc(from, func(have V) bool { return identical(have, val) })
	t.unregisterMove(from)
	return true, nil
}

// identical reports whether two stored values are the same stored value
// — allocation identity, not content equality. Slices match on backing
// array and length (zero-length slices have no element to anchor on, so
// length equality is the whole check — the same test the server's expiry
// purge applies); other reference kinds match on their referent pointer;
// plain comparable values fall back to ==. A fresh allocation with equal
// content is deliberately NOT identical: a value stored by a concurrent
// writer must never satisfy a conditional delete aimed at the value a
// mover loaded earlier.
func identical[V any](a, b V) bool {
	va, vb := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	switch va.Kind() {
	case reflect.Slice:
		return va.Len() == vb.Len() &&
			(va.Len() == 0 || va.UnsafePointer() == vb.UnsafePointer())
	case reflect.Map, reflect.Chan, reflect.Func, reflect.Pointer, reflect.UnsafePointer:
		return va.UnsafePointer() == vb.UnsafePointer()
	default:
		return va.Comparable() && va.Equal(vb)
	}
}

// registerMove records an in-flight move marker for from, refusing
// (false) when one already exists.
func (t *Trie[V]) registerMove(from uint64, rec moveRecord[V]) bool {
	t.moveMu.Lock()
	defer t.moveMu.Unlock()
	if t.moves == nil {
		t.moves = make(map[uint64]moveRecord[V])
	}
	if _, busy := t.moves[from]; busy {
		return false
	}
	t.moves[from] = rec
	return true
}

// unregisterMove drops the in-flight marker for from.
func (t *Trie[V]) unregisterMove(from uint64) {
	t.moveMu.Lock()
	delete(t.moves, from)
	t.moveMu.Unlock()
}

// PendingMoves reports how many cross-shard moves are currently marked
// in flight (diagnostics and tests).
func (t *Trie[V]) PendingMoves() int {
	t.moveMu.Lock()
	defer t.moveMu.Unlock()
	return len(t.moves)
}

// ResolveMoves completes or abandons every cross-shard move whose mover
// died between phases, using the in-flight markers: if the destination
// key exists the insert committed, so the source is deleted (the move
// completes); otherwise the move never became visible and is abandoned
// with the source intact. Either way the marker is dropped. It returns
// the number of moves completed. Quiescent use only — it is meant for
// recovery after the goroutines that were moving keys are gone, not for
// concurrent use alongside live movers.
func (t *Trie[V]) ResolveMoves() int {
	t.moveMu.Lock()
	defer t.moveMu.Unlock()
	n := 0
	for from, rec := range t.moves {
		if t.Contains(rec.to) {
			// Same value-conditional delete as live phase 3: even in
			// recovery, only the value the interrupted mover loaded is
			// removed from the source.
			t.DeleteFunc(from, func(have V) bool { return identical(have, rec.val) })
			n++
		}
		delete(t.moves, from)
	}
	return n
}

// AscendKV calls fn on every (key, value) pair with key >= from in
// ascending key order, until fn returns false: the per-shard ascents of
// the shards at or after from's, concatenated in shard-index order
// (contiguous top-bit partitioning makes that the global key order).
// Read-only and safe under concurrent updates with the per-shard Range
// contract; entries in different shards are not a single snapshot.
func (t *Trie[V]) AscendKV(from uint64, fn func(k uint64, val V) bool) {
	if !keys.InRange(from, t.width) {
		return // nothing sorts at or after an out-of-range from
	}
	start := keys.ShardOf(from, t.width, t.shardBits)
	more := true
	for idx := start; more && idx < uint64(len(t.shards)); idx++ {
		base := keys.ShardBase(idx, t.width, t.shardBits)
		rest := uint64(0)
		if idx == start {
			rest = keys.ShardRest(from, t.width, t.shardBits)
		}
		t.shards[idx].AscendKV(rest, func(k uint64, val V) bool {
			more = fn(base|k, val)
			return more
		})
	}
}

// Size sums the shard sizes by traversal; quiescent use only (the
// per-shard counts are exact, their sum is not a global snapshot).
func (t *Trie[V]) Size() int {
	n := 0
	for _, sh := range t.shards {
		n += sh.Size()
	}
	return n
}

// Len sums the per-shard atomic counters: O(shards), allocation-free,
// exact at quiescence. Under concurrency each shard's counter is at
// most its in-flight mutations stale, and the sum is not a global
// snapshot — the same consistency window as iteration.
func (t *Trie[V]) Len() int {
	n := 0
	for _, sh := range t.shards {
		n += sh.Len()
	}
	return n
}

// Validate checks every shard's structural invariants
// (tests/diagnostics; quiescent use only).
func (t *Trie[V]) Validate() error {
	for i, sh := range t.shards {
		if err := sh.Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

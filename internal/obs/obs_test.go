package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	c.Store(7)
	if got := c.Load(); got != 7 {
		t.Fatalf("Load after Store = %d, want 7", got)
	}
}

func TestStripedSumsAcrossStripes(t *testing.T) {
	s := NewStriped(3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for stripe := uint32(0); stripe < NumStripes*2; stripe++ {
		s.Add(stripe, 1, 2)
		s.Inc(stripe, 2)
	}
	if got := s.Load(0); got != 0 {
		t.Fatalf("counter 0 = %d, want 0", got)
	}
	if got := s.Load(1); got != 32 {
		t.Fatalf("counter 1 = %d, want 32", got)
	}
	if got := s.Load(2); got != 16 {
		t.Fatalf("counter 2 = %d, want 16", got)
	}
	s.Reset()
	if got := s.Load(1); got != 0 {
		t.Fatalf("counter 1 after Reset = %d, want 0", got)
	}
}

// TestConcurrentHammer hammers a Counter, a Striped vector, and a Hist from
// many goroutines. Run under -race this verifies the record paths are
// data-race free; the final totals verify no increments are lost.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20000
	)
	var c Counter
	s := NewStriped(4)
	var h Hist
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				s.Add(uint32(g), i&3, 1)
				h.Record(uint64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("Counter = %d, want %d", got, goroutines*perG)
	}
	var stripedTotal int64
	for i := 0; i < 4; i++ {
		stripedTotal += s.Load(i)
	}
	if stripedTotal != goroutines*perG {
		t.Fatalf("Striped total = %d, want %d", stripedTotal, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Hist count = %d, want %d", got, goroutines*perG)
	}
	wantSum := int64(goroutines) * int64(perG) * int64(perG-1) / 2
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Hist sum = %d, want %d", got, wantSum)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1 << 62, ^uint64(0)} {
		h.Record(v)
	}
	s := h.Snapshot()
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 63: 1, 64: 1}
	for b, n := range want {
		if s.Buckets[b] != n {
			t.Errorf("bucket %d = %d, want %d", b, s.Buckets[b], n)
		}
	}
	if s.Count != 9 {
		t.Fatalf("Count = %d, want 9", s.Count)
	}
	if BucketUpper(0) != 1 || BucketUpper(3) != 8 || BucketUpper(64) != ^uint64(0) {
		t.Fatalf("BucketUpper boundaries wrong: %d %d %d",
			BucketUpper(0), BucketUpper(3), BucketUpper(64))
	}
}

// TestQuantileVsOracle checks the histogram quantile estimate against a
// sorted-sample oracle: with log2 buckets the estimate must land within a
// factor of two of the true quantile.
func TestQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Hist
	samples := make([]uint64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Log-uniform-ish spread so every decade of buckets is exercised.
		v := uint64(rng.Int63n(1 << uint(4+rng.Intn(28))))
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(q * float64(len(samples)))
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		oracle := samples[idx]
		est := snap.Quantile(q)
		if oracle == 0 {
			if est > 1 {
				t.Errorf("q=%v: oracle 0, est %d", q, est)
			}
			continue
		}
		if est < oracle/2 || est > oracle*2 {
			t.Errorf("q=%v: est %d not within 2x of oracle %d", q, est, oracle)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Hist
	empty := h.Snapshot()
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	h.Record(0)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero Quantile = %d, want 0", got)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Fatalf("clamped low Quantile = %d, want 0", got)
	}
	var h2 Hist
	h2.Record(100)
	s2 := h2.Snapshot()
	if got := s2.Quantile(2); got < 64 || got > 128 {
		t.Fatalf("clamped high Quantile = %d, want in [64,128]", got)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Hist
	a.Record(5)
	a.Record(100)
	b.Record(5)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 110 {
		t.Fatalf("merged Count=%d Sum=%d, want 3/110", sa.Count, sa.Sum)
	}
	if sa.Buckets[bucketOf(5)] != 2 {
		t.Fatalf("merged bucket for 5 = %d, want 2", sa.Buckets[bucketOf(5)])
	}
}

// TestRecordPathsZeroAlloc pins the record paths at zero allocations.
func TestRecordPathsZeroAlloc(t *testing.T) {
	var c Counter
	s := NewStriped(4)
	var h Hist
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { s.Add(3, 2, 1) }); n != 0 {
		t.Errorf("Striped.Add allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Errorf("Hist.Record allocs = %v, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkStripedAdd(b *testing.B) {
	s := NewStriped(8)
	b.RunParallel(func(pb *testing.PB) {
		var stripe uint32 = uint32(rand.Int31())
		for pb.Next() {
			s.Add(stripe, 3, 1)
		}
	})
}

func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	b.RunParallel(func(pb *testing.PB) {
		var v uint64
		for pb.Next() {
			v += 7919
			h.Record(v)
		}
	})
}

package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of log2 buckets in a Hist. Bucket b counts
// samples v with bits.Len64(v) == b, i.e. bucket 0 holds v==0 and bucket
// b>0 holds v in [2^(b-1), 2^b). 64 buckets cover the full uint64 range,
// so Record never needs a bounds branch beyond the Len64 itself.
const NumBuckets = 65

// Hist is a fixed-bucket log2 histogram. Record is two atomic adds —
// wait-free and zero-alloc — so it is safe inside non-blocking hot paths.
// The buckets are deliberately unpadded: a histogram is written by many
// goroutines but each sample touches one bucket plus the sum, and padding
// 65 buckets to a line each would cost 4KiB per histogram with dozens of
// histograms per server. Callers that need stripe isolation can keep one
// Hist per stripe and merge snapshots.
type Hist struct {
	buckets [NumBuckets]atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps a sample to its bucket index: 0 for v==0, else floor(log2 v)+1.
func bucketOf(v uint64) int { return bits.Len64(v) }

// Record adds one sample. Wait-free, zero-alloc.
func (h *Hist) Record(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(int64(v))
}

// Count returns the total number of recorded samples (sum over buckets).
// Under concurrent writes the result may lag in-flight Records.
func (h *Hist) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all recorded sample values.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Snapshot captures a point-in-time copy of the histogram. The copy is not
// atomic across buckets, but each bucket is individually consistent and
// counts only grow, so derived quantiles are sandwiched between the true
// quantiles at the start and end of the scan.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is an immutable copy of a Hist, used for rendering and
// quantile estimation without re-reading atomics.
type HistSnapshot struct {
	Buckets [NumBuckets]int64
	Count   int64
	Sum     int64
}

// BucketUpper returns the exclusive upper bound of bucket b: the smallest
// value that does NOT fall in bucket b. Bucket 0 (v==0) has upper bound 1;
// the last bucket saturates at MaxUint64.
func BucketUpper(b int) uint64 {
	if b >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << b
}

// Merge adds another snapshot into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by locating the bucket
// containing the target rank and interpolating linearly inside it. With
// log2 buckets the estimate is within 2x of the true value, which is plenty
// for latency dashboards. Returns 0 on an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for b := range s.Buckets {
		n := float64(s.Buckets[b])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if b == 0 {
				return 0
			}
			lo := float64(uint64(1) << (b - 1))
			hi := lo * 2
			if b >= 64 {
				hi = lo // avoid overflow; the top bucket is a point estimate
			}
			frac := (rank - cum) / n
			return uint64(lo + (hi-lo)*frac)
		}
		cum += n
	}
	return BucketUpper(NumBuckets - 1)
}

// Package obs provides lock-free observability primitives: cache-line-padded
// atomic counters, stripe-replicated counter vectors, and fixed-bucket log2
// latency histograms.
//
// Every record path (Counter.Add, Striped.Add, Hist.Record) is wait-free —
// a bounded number of atomic adds, no CAS loops, no locks — and strictly
// zero-alloc, so instrumentation can sit inside the non-blocking trie
// operations it measures without weakening their progress guarantees.
// Read paths (Load, Snapshot, Quantile) may observe a torn view across
// stripes or buckets under concurrent writes; they are monotonic and
// eventually consistent, which is all a metrics scrape needs.
package obs

import "sync/atomic"

// cacheLine is the assumed coherence-granule size. 64 bytes covers x86-64
// and most arm64 parts; on CPUs with 128-byte lines adjacent counters may
// still share a line, which costs throughput but never correctness.
const cacheLine = 64

// Counter is a single atomic counter padded to a full cache line so that
// adjacent Counters in an array never false-share. Use it for hot,
// single-writer-ish counters (per-shard engine stats); for counters hammered
// by many cores at once prefer Striped.
type Counter struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Add increments the counter by d. Wait-free, zero-alloc.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one. Wait-free, zero-alloc.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store sets the counter; intended for tests and reset paths only.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// NumStripes is the number of replicas in a Striped counter vector. Writers
// pick a stripe (e.g. from a connection sequence number) and touch only that
// replica, so concurrent writers on different stripes never contend on a
// cache line. Power of two so callers can mask cheaply.
const NumStripes = 8

// StripeMask masks an arbitrary sequence number down to a stripe index.
const StripeMask = NumStripes - 1

// Striped is a vector of n counters replicated across NumStripes stripes.
// Counter i's true value is the sum of its replicas across all stripes.
// Each stripe is padded to its own run of cache lines: stripe s, counter i
// lives at lanes[s].v[i], and distinct stripes never share a line.
type Striped struct {
	lanes [NumStripes]stripeLane
	n     int
}

// stripeLane holds one stripe's counter replicas. The trailing pad keeps the
// next stripe's first counter off this stripe's last cache line even when
// len(v) is not a multiple of 8.
type stripeLane struct {
	v []atomic.Int64
	_ [cacheLine - 24]byte
}

// NewStriped returns a striped vector of n counters, all zero.
func NewStriped(n int) *Striped {
	s := &Striped{n: n}
	// One backing array per stripe, rounded up to a whole number of cache
	// lines so stripes can never overlap a coherence granule.
	per := (n + 7) &^ 7
	for i := range s.lanes {
		s.lanes[i].v = make([]atomic.Int64, per)
	}
	return s
}

// Len returns the number of logical counters in the vector.
func (s *Striped) Len() int { return s.n }

// Add increments counter i on the given stripe by d. The stripe may be any
// value; it is masked internally. Wait-free, zero-alloc.
func (s *Striped) Add(stripe uint32, i int, d int64) {
	s.lanes[stripe&StripeMask].v[i].Add(d)
}

// Inc increments counter i on the given stripe by one. Wait-free, zero-alloc.
func (s *Striped) Inc(stripe uint32, i int) {
	s.lanes[stripe&StripeMask].v[i].Add(1)
}

// Load returns the summed value of counter i across all stripes.
func (s *Striped) Load(i int) int64 {
	var t int64
	for l := range s.lanes {
		t += s.lanes[l].v[i].Load()
	}
	return t
}

// Reset zeroes every counter on every stripe; intended for tests and
// explicit reset commands (e.g. SLOWLOG RESET-style admin paths), not for
// concurrent use with writers expecting exact totals.
func (s *Striped) Reset() {
	for l := range s.lanes {
		for i := range s.lanes[l].v {
			s.lanes[l].v[i].Store(0)
		}
	}
}

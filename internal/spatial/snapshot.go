package spatial

import (
	"nbtrie/internal/engine"
	"nbtrie/internal/keys"
)

// Snapshot is a read-only point-in-time view of the spatial trie,
// obtained in O(1) from Trie.Snapshot. Frozen after creation: all
// methods are safe for unrestricted concurrent use and answer with the
// state at the snapshot's linearization point — in particular InRect
// over a snapshot sees no point twice, at two positions, or not at all,
// even while concurrent Moves relocate points in the live trie.
type Snapshot[V any] struct {
	s *engine.Snapshot[keys.MortonKey, V]
}

// Snapshot returns a frozen view of the trie at the moment of the call,
// in O(1) time and allocation independent of the trie's size.
func (t *Trie[V]) Snapshot() *Snapshot[V] {
	return &Snapshot[V]{s: t.e.Snapshot()}
}

// Len returns the number of stored points at the snapshot point (exact).
func (s *Snapshot[V]) Len() int { return s.s.Len() }

// Contains reports whether a point was stored at (x, y) at the snapshot
// point. Wait-free, allocation-free.
func (s *Snapshot[V]) Contains(x, y uint32) bool { return s.s.Contains(enc(x, y)) }

// Load returns the value stored at (x, y) at the snapshot point.
func (s *Snapshot[V]) Load(x, y uint32) (V, bool) { return s.s.Load(enc(x, y)) }

// AscendMorton calls fn on every point live at the snapshot point with
// Morton code >= from, in Z-order, until fn returns false. A true
// consistent cut.
func (s *Snapshot[V]) AscendMorton(from uint64, fn func(m uint64, x, y uint32, val V) bool) {
	s.s.AscendKV(keys.EncodeMorton(from), func(label keys.MortonKey, val V) bool {
		m := keys.DecodeMorton(label)
		x, y := keys.Deinterleave2(m)
		return fn(m, x, y, val)
	})
}

// InRect calls fn on every snapshot point inside the axis-aligned
// rectangle [minX, maxX] × [minY, maxY], in Z-order, until fn returns
// false (the same one-interval pruned scan as the live trie's InRect).
func (s *Snapshot[V]) InRect(minX, minY, maxX, maxY uint32, fn func(x, y uint32, val V) bool) {
	if minX > maxX || minY > maxY {
		return
	}
	zMax := keys.Interleave2(maxX, maxY)
	s.AscendMorton(keys.Interleave2(minX, minY), func(m uint64, x, y uint32, val V) bool {
		if m > zMax {
			return false
		}
		if x < minX || x > maxX || y < minY || y > maxY {
			return true
		}
		return fn(x, y, val)
	})
}

// Package spatial is the Morton-keyed instantiation of the shared
// non-blocking update engine (internal/engine): a concurrent spatial
// index over points in the 2^32 × 2^32 integer plane, realizing the
// paper's own motivation for the replace operation — "a point in R^2
// whose coordinates are (x, y) can be represented as a key formed by
// interleaving the bits of x and y ... the replace operation can be
// used to move a point from one location to another atomically."
//
// Points are mapped to 64-bit Morton (Z-order) codes by bit
// interleaving (keys.Interleave2) and then into the engine's 65-bit
// internal key space (keys.MortonKey), which frees the two dummy
// strings exactly as the fixed-width trie's k -> k+1 shift does.
// Because MortonKey has bounded length and pure value arithmetic, this
// instantiation inherits the fixed-width trie's strongest guarantees:
// Contains/Load are wait-free and allocation-free, mutations are
// lock-free, and Move — the engine's Replace — relocates a point
// atomically, so concurrent readers never observe an object at two
// positions or at none.
//
// This package is the proof of the engine refactor's point: a whole new
// key space (and with it a new public type, SpatialMap) costs an
// encoding, two dummies and these thin wrappers — no protocol code.
package spatial

import (
	"fmt"

	"nbtrie/internal/engine"
	"nbtrie/internal/keys"
)

// Trie is a non-blocking Patricia trie over 2-D points keyed by their
// Morton codes, with an unboxed value payload V per point (the set view
// instantiates V = struct{}). All methods are safe for unrestricted
// concurrent use.
type Trie[V any] struct {
	e *engine.Trie[keys.MortonKey, V]
}

// New returns an empty spatial trie covering the full uint32 × uint32
// plane.
func New[V any]() *Trie[V] {
	return &Trie[V]{e: engine.New[keys.MortonKey, V](keys.MortonDummyMin(), keys.MortonDummyMax())}
}

func enc(x, y uint32) keys.MortonKey { return keys.EncodeMorton(keys.Interleave2(x, y)) }

// Contains reports whether a point is stored at (x, y). Wait-free,
// allocation-free.
func (t *Trie[V]) Contains(x, y uint32) bool { return t.e.Contains(enc(x, y)) }

// Load returns the value stored at (x, y). Wait-free, allocation-free.
func (t *Trie[V]) Load(x, y uint32) (V, bool) { return t.e.Load(enc(x, y)) }

// Insert adds the point (x, y), returning false if it was already
// present. Lock-free.
func (t *Trie[V]) Insert(x, y uint32) bool { return t.e.Insert(enc(x, y)) }

// Store binds (x, y) to val, inserting or overwriting (lock-free
// upsert).
func (t *Trie[V]) Store(x, y uint32, val V) { t.e.Store(enc(x, y), val) }

// LoadOrStore returns the value at (x, y) if present (loaded true);
// otherwise it stores val and returns it (loaded false).
func (t *Trie[V]) LoadOrStore(x, y uint32, val V) (actual V, loaded bool) {
	return t.e.LoadOrStore(enc(x, y), val)
}

// Delete removes the point at (x, y); false iff absent. Lock-free.
func (t *Trie[V]) Delete(x, y uint32) bool { return t.e.Delete(enc(x, y)) }

// CompareAndSwap swaps the value at (x, y) from old to new when the
// stored value equals old (interface equality; old must be comparable).
func (t *Trie[V]) CompareAndSwap(x, y uint32, old, new V) bool {
	return t.e.CompareAndSwap(enc(x, y), old, new)
}

// CompareAndDelete removes the point at (x, y) when its value equals old
// (interface equality; old must be comparable).
func (t *Trie[V]) CompareAndDelete(x, y uint32, old V) bool {
	return t.e.CompareAndDelete(enc(x, y), old)
}

// Move atomically relocates the point at (ox, oy) to (nx, ny), carrying
// its value: both changes become visible at a single linearization
// point, so no concurrent reader observes the point at both positions or
// at neither. It returns true iff the source held a point and the
// destination was free (and the positions differ); otherwise the index
// is unchanged. This is the paper's Replace operation on Z-order keys.
func (t *Trie[V]) Move(ox, oy, nx, ny uint32) bool {
	return t.e.Replace(enc(ox, oy), enc(nx, ny))
}

// Morton-code-level operations: the uint64 key is the raw Z-order code
// (Interleave2 of the coordinates). They let code that already speaks
// Morton codes — the registry's set adapter, the benchmark harness —
// drive the spatial trie without decode/re-encode round trips.

// ContainsCode reports membership of the raw Morton code m.
func (t *Trie[V]) ContainsCode(m uint64) bool { return t.e.Contains(keys.EncodeMorton(m)) }

// InsertCode inserts the raw Morton code m.
func (t *Trie[V]) InsertCode(m uint64) bool { return t.e.Insert(keys.EncodeMorton(m)) }

// DeleteCode removes the raw Morton code m.
func (t *Trie[V]) DeleteCode(m uint64) bool { return t.e.Delete(keys.EncodeMorton(m)) }

// ReplaceCode atomically replaces Morton code old with new.
func (t *Trie[V]) ReplaceCode(old, new uint64) bool {
	return t.e.Replace(keys.EncodeMorton(old), keys.EncodeMorton(new))
}

// AscendMorton calls fn on every stored point with Morton code >= from,
// in Z-order, until fn returns false. Read-only: exact at quiescence,
// best-effort under concurrent updates. Z-order is the trie's native
// leaf order, so range scans prune subtrees exactly like the other
// instantiations' Ascend.
func (t *Trie[V]) AscendMorton(from uint64, fn func(m uint64, x, y uint32, val V) bool) {
	t.e.AscendKV(keys.EncodeMorton(from), func(label keys.MortonKey, val V) bool {
		m := keys.DecodeMorton(label)
		x, y := keys.Deinterleave2(m)
		return fn(m, x, y, val)
	})
}

// InRect calls fn on every stored point inside the axis-aligned
// rectangle [minX, maxX] × [minY, maxY], in Z-order, until fn returns
// false. It exploits the standard Z-order range property: every point of
// the rectangle has a Morton code in [Interleave2(minX, minY),
// Interleave2(maxX, maxY)], so one pruned ascend over that code interval
// suffices, with a coordinate filter dropping the interval's
// out-of-rectangle points. (The scan may therefore visit Z-interval
// points outside the rectangle; a BIGMIN-style skip would tighten that,
// at the cost of considerably hairier code.)
func (t *Trie[V]) InRect(minX, minY, maxX, maxY uint32, fn func(x, y uint32, val V) bool) {
	if minX > maxX || minY > maxY {
		return
	}
	zMax := keys.Interleave2(maxX, maxY)
	t.AscendMorton(keys.Interleave2(minX, minY), func(m uint64, x, y uint32, val V) bool {
		if m > zMax {
			return false // past the rectangle's Z-interval: stop the walk
		}
		if x < minX || x > maxX || y < minY || y > maxY {
			return true // inside the Z-interval but outside the rectangle
		}
		return fn(x, y, val)
	})
}

// Size counts stored points by traversal; quiescent use only.
func (t *Trie[V]) Size() int { return t.e.Size() }

// Len returns the number of stored points from the engine's atomic
// counter: O(1), allocation-free, exact at quiescence, and at most the
// number of in-flight mutations stale under concurrency.
func (t *Trie[V]) Len() int { return t.e.Len() }

// Validate checks the structural invariants at quiescence: the engine's
// key-agnostic checks plus the Morton label shape (full 65-bit leaf
// labels, shorter internal labels).
func (t *Trie[V]) Validate() error {
	return t.e.Validate(func(label keys.MortonKey, leaf bool) error {
		if leaf {
			if label.Len() != 65 {
				return fmt.Errorf("leaf label length %d != 65", label.Len())
			}
		} else if label.Len() >= 65 {
			return fmt.Errorf("internal label length %d must be < 65", label.Len())
		}
		return nil
	})
}

package spatial

import "testing"

// Allocation regression pins for the Morton instantiation, mirroring
// internal/core/alloc_test.go: the shared engine's allocation-lean
// update protocol must deliver the same budgets here as on the
// fixed-width trie, because keys.MortonKey — like keys.Uint64Key — is a
// pure value type. If these drift from core's pins, the Morton key
// layer grew an allocation (or the engine did); see DESIGN.md before
// raising a budget.

const (
	// insertAllocBudget: fresh leaf + its unflag, copy of the displaced
	// leaf + its unflag, joining internal node + its unflag, the Flag
	// descriptor, and the fresh Unflag of the unflag CAS.
	insertAllocBudget = 8
	// overwriteAllocBudget: fresh leaf + its unflag, the Flag
	// descriptor, and the unflag-CAS Unflag.
	overwriteAllocBudget = 4
	// deleteAllocBudget: the Flag descriptor and the unflag-CAS Unflag
	// (the sibling is re-linked, not rebuilt).
	deleteAllocBudget = 2
)

func TestReadPathIsAllocationFree(t *testing.T) {
	tr := New[int]()
	for x := uint32(0); x < 32; x++ {
		for y := uint32(0); y < 32; y++ {
			tr.Store(x, y, int(x+y))
		}
	}
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Contains(5, 7) {
			t.Fatal("Contains(5,7) missed")
		}
		if tr.Contains(40, 40) {
			t.Fatal("Contains(40,40) false positive")
		}
		if v, ok := tr.Load(5, 7); !ok || v != 12 {
			t.Fatal("Load(5,7) wrong")
		}
	}); n != 0 {
		t.Errorf("spatial read path allocates %v objects per call, want 0", n)
	}
}

func TestUpdateAllocationBudgets(t *testing.T) {
	tr := New[int]()
	for x := uint32(0); x < 32; x++ {
		for y := uint32(0); y < 32; y++ {
			tr.Store(x, y, int(x+y))
		}
	}

	x := uint32(1000)
	if n := testing.AllocsPerRun(500, func() {
		tr.Store(x, 1000, 1)
		x++
	}); n > insertAllocBudget {
		t.Errorf("uncontended insert allocates %v objects, budget %d", n, insertAllocBudget)
	}

	if n := testing.AllocsPerRun(500, func() {
		tr.Store(5, 7, 99)
	}); n > overwriteAllocBudget {
		t.Errorf("uncontended overwrite allocates %v objects, budget %d", n, overwriteAllocBudget)
	}

	d := uint32(1000)
	if n := testing.AllocsPerRun(500, func() {
		if !tr.Delete(d, 1000) {
			t.Fatal("Delete failed")
		}
		d++
	}); n > deleteAllocBudget {
		t.Errorf("uncontended delete allocates %v objects, budget %d", n, deleteAllocBudget)
	}
}

package spatial

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"nbtrie/internal/keys"
	"nbtrie/internal/settest"
)

func TestBasicPointOps(t *testing.T) {
	tr := New[string]()
	if tr.Contains(3, 4) || tr.Size() != 0 {
		t.Error("fresh trie must be empty")
	}
	tr.Store(3, 4, "a")
	if v, ok := tr.Load(3, 4); !ok || v != "a" {
		t.Errorf("Load(3,4) = %q,%v", v, ok)
	}
	if tr.Contains(4, 3) {
		t.Error("transposed coordinates must be a different point")
	}
	tr.Store(3, 4, "b") // overwrite
	if v, _ := tr.Load(3, 4); v != "b" {
		t.Errorf("Load after overwrite = %q", v)
	}
	if v, loaded := tr.LoadOrStore(3, 4, "c"); !loaded || v != "b" {
		t.Errorf("LoadOrStore(present) = %q,%v", v, loaded)
	}
	if v, loaded := tr.LoadOrStore(5, 6, "c"); loaded || v != "c" {
		t.Errorf("LoadOrStore(absent) = %q,%v", v, loaded)
	}
	if tr.CompareAndSwap(3, 4, "nope", "x") || !tr.CompareAndSwap(3, 4, "b", "x") {
		t.Error("CompareAndSwap semantics wrong")
	}
	if tr.CompareAndDelete(3, 4, "nope") || !tr.CompareAndDelete(3, 4, "x") {
		t.Error("CompareAndDelete semantics wrong")
	}
	if !tr.Delete(5, 6) || tr.Delete(5, 6) {
		t.Error("Delete semantics wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestExtremeCoordinates(t *testing.T) {
	// The 65-bit key space exists exactly so the plane's corners work:
	// (2^32-1, 2^32-1) has Morton code 2^64-1, whose k+1 encoding
	// overflows a single word.
	tr := New[int]()
	corners := [][2]uint32{
		{0, 0}, {^uint32(0), 0}, {0, ^uint32(0)}, {^uint32(0), ^uint32(0)},
	}
	for i, c := range corners {
		tr.Store(c[0], c[1], i)
	}
	for i, c := range corners {
		if v, ok := tr.Load(c[0], c[1]); !ok || v != i {
			t.Errorf("corner %v = %d,%v want %d", c, v, ok, i)
		}
	}
	if tr.Size() != len(corners) {
		t.Errorf("Size() = %d", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	for _, c := range corners {
		if !tr.Delete(c[0], c[1]) {
			t.Errorf("Delete(%v) failed", c)
		}
	}
}

func TestMoveSemantics(t *testing.T) {
	tr := New[string]()
	tr.Store(1, 1, "v")
	if !tr.Move(1, 1, 2, 2) {
		t.Fatal("Move from occupied to free must succeed")
	}
	if tr.Contains(1, 1) || !tr.Contains(2, 2) {
		t.Fatal("Move left wrong state")
	}
	if v, ok := tr.Load(2, 2); !ok || v != "v" {
		t.Fatalf("value did not travel with Move: %q,%v", v, ok)
	}
	if tr.Move(1, 1, 3, 3) {
		t.Error("Move from empty source must fail")
	}
	tr.Store(4, 4, "w")
	if tr.Move(2, 2, 4, 4) {
		t.Error("Move onto occupied destination must fail")
	}
	if tr.Move(2, 2, 2, 2) {
		t.Error("Move onto itself must fail (paper's Replace spec)")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestInRectOracle cross-checks InRect against a brute-force filter over
// random point sets and random rectangles, including degenerate and
// empty rectangles.
func TestInRectOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New[int]()
	type pt struct{ x, y uint32 }
	pts := make(map[pt]int)
	for i := 0; i < 400; i++ {
		p := pt{uint32(rng.Intn(64)), uint32(rng.Intn(64))}
		pts[p] = i
		tr.Store(p.x, p.y, i)
	}
	for trial := 0; trial < 200; trial++ {
		x1, x2 := uint32(rng.Intn(70)), uint32(rng.Intn(70))
		y1, y2 := uint32(rng.Intn(70)), uint32(rng.Intn(70))
		minX, maxX := min(x1, x2), max(x1, x2)
		minY, maxY := min(y1, y2), max(y1, y2)
		want := map[pt]int{}
		for p, v := range pts {
			if p.x >= minX && p.x <= maxX && p.y >= minY && p.y <= maxY {
				want[p] = v
			}
		}
		got := map[pt]int{}
		var lastM uint64
		first := true
		tr.InRect(minX, minY, maxX, maxY, func(x, y uint32, v int) bool {
			m := keys.Interleave2(x, y)
			if !first && m <= lastM {
				t.Fatalf("InRect out of Z-order: %d after %d", m, lastM)
			}
			first, lastM = false, m
			got[pt{x, y}] = v
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("rect [%d,%d]x[%d,%d]: got %d points, want %d", minX, maxX, minY, maxY, len(got), len(want))
		}
		for p, v := range want {
			if got[p] != v {
				t.Fatalf("rect [%d,%d]x[%d,%d]: point %v = %d, want %d", minX, maxX, minY, maxY, p, got[p], v)
			}
		}
	}

	// Inverted (empty) rectangles yield nothing.
	tr.InRect(10, 10, 5, 20, func(x, y uint32, _ int) bool {
		t.Errorf("empty rect yielded (%d,%d)", x, y)
		return true
	})

	// Early stop.
	n := 0
	tr.InRect(0, 0, 63, 63, func(uint32, uint32, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d points", n)
	}
}

// TestConcurrentMoveConservation: concurrent random Moves never create
// or destroy points (the paper's atomicity argument, on the plane).
func TestConcurrentMoveConservation(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	tr := New[struct{}]()
	const initial = 100
	for i := uint32(0); i < initial; i++ {
		tr.Store(i*7%50, i*13%50, struct{}{})
	}
	start := tr.Size()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 4000; i++ {
				tr.Move(uint32(rng.Intn(50)), uint32(rng.Intn(50)),
					uint32(rng.Intn(50)), uint32(rng.Intn(50)))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := tr.Size(); got != start {
		t.Fatalf("Size() = %d after move-only churn, want %d", got, start)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// codeSet adapts the trie to the settest set battery via raw Morton
// codes (a bijection with uint64 keys).
type codeSet struct{ t *Trie[any] }

func (s codeSet) Insert(k uint64) bool         { return s.t.InsertCode(k) }
func (s codeSet) Delete(k uint64) bool         { return s.t.DeleteCode(k) }
func (s codeSet) Contains(k uint64) bool       { return s.t.ContainsCode(k) }
func (s codeSet) Replace(old, new uint64) bool { return s.t.ReplaceCode(old, new) }

func TestConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return codeSet{t: New[any]()} })
}

// coordMap adapts the trie to the settest map battery, deinterleaving
// the uint64 key into plane coordinates so the full coordinate API is
// what gets hammered.
type coordMap struct{ t *Trie[uint64] }

func xy(k uint64) (uint32, uint32) { return keys.Deinterleave2(k) }

func (m coordMap) Load(k uint64) (uint64, bool) { x, y := xy(k); return m.t.Load(x, y) }
func (m coordMap) Store(k, v uint64) bool       { x, y := xy(k); m.t.Store(x, y, v); return true }
func (m coordMap) LoadOrStore(k, v uint64) (uint64, bool) {
	x, y := xy(k)
	return m.t.LoadOrStore(x, y, v)
}
func (m coordMap) Delete(k uint64) bool { x, y := xy(k); return m.t.Delete(x, y) }
func (m coordMap) CompareAndSwap(k, old, new uint64) bool {
	x, y := xy(k)
	return m.t.CompareAndSwap(x, y, old, new)
}
func (m coordMap) CompareAndDelete(k, old uint64) bool {
	x, y := xy(k)
	return m.t.CompareAndDelete(x, y, old)
}
func (m coordMap) ReplaceKey(old, new uint64) bool {
	ox, oy := xy(old)
	nx, ny := xy(new)
	return m.t.Move(ox, oy, nx, ny)
}

func TestMapConformance(t *testing.T) {
	settest.RunMap(t, func(uint64) settest.Map { return coordMap{t: New[uint64]()} })
}

func TestValidateAfterChurn(t *testing.T) {
	tr := New[int]()
	rng := rand.New(rand.NewSource(9))
	live := make(map[[2]uint32]bool)
	for i := 0; i < 3000; i++ {
		p := [2]uint32{uint32(rng.Intn(100)), uint32(rng.Intn(100))}
		if rng.Intn(2) == 0 {
			tr.Store(p[0], p[1], i)
			live[p] = true
		} else {
			tr.Delete(p[0], p[1])
			delete(live, p)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	if tr.Size() != len(live) {
		t.Fatalf("Size() = %d, oracle %d", tr.Size(), len(live))
	}
	// AscendMorton yields strictly increasing codes.
	var last uint64
	first := true
	tr.AscendMorton(0, func(m uint64, x, y uint32, _ int) bool {
		if gx, gy := keys.Deinterleave2(m); gx != x || gy != y {
			t.Fatalf("AscendMorton decode mismatch: %d vs (%d,%d)", m, x, y)
		}
		if !first && m <= last {
			t.Fatalf("AscendMorton out of order: %d after %d", m, last)
		}
		first, last = false, m
		return true
	})
}

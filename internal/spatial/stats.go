package spatial

import "nbtrie/internal/engine"

// EngineStats returns a snapshot of the underlying engine's contention
// counters (see engine.Stats).
func (t *Trie[V]) EngineStats() engine.StatsSnapshot { return t.e.StatsSnapshot() }

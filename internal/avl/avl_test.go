package avl

import (
	"math"
	"testing"

	"nbtrie/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return New() })
}

func TestSizeQuiescent(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 500; k++ {
		tr.Insert(k)
	}
	if got := tr.Size(); got != 500 {
		t.Errorf("Size() = %d, want 500", got)
	}
	for k := uint64(0); k < 500; k += 5 {
		tr.Delete(k)
	}
	if got := tr.Size(); got != 400 {
		t.Errorf("Size() = %d, want 400", got)
	}
}

// TestBalancedUnderSequentialInserts drives the adversarial case for an
// unbalanced BST — ascending keys — and checks the rotations keep the
// height logarithmic (relaxed AVL: allow a generous constant).
func TestBalancedUnderSequentialInserts(t *testing.T) {
	tr := New()
	const n = 1 << 14
	for k := uint64(0); k < n; k++ {
		tr.Insert(k)
	}
	limit := int(3*math.Log2(n)) + 4
	if h := tr.HeightOf(); h > limit {
		t.Errorf("height %d after %d ascending inserts exceeds %d; rebalancing ineffective", h, n, limit)
	}
	for k := uint64(0); k < n; k++ {
		if !tr.Contains(k) {
			t.Fatalf("key %d lost during rebalancing", k)
		}
	}
}

func TestRoutingNodeResurrection(t *testing.T) {
	tr := New()
	// Build a node with two children, delete it (logical), reinsert.
	for _, k := range []uint64{10, 5, 15} {
		tr.Insert(k)
	}
	if !tr.Delete(10) || tr.Contains(10) {
		t.Fatal("logical delete of two-child node failed")
	}
	if !tr.Contains(5) || !tr.Contains(15) {
		t.Fatal("children lost after logical delete")
	}
	if !tr.Insert(10) || !tr.Contains(10) {
		t.Fatal("resurrecting a routing node failed")
	}
	if tr.Insert(10) {
		t.Fatal("duplicate insert after resurrection should fail")
	}
}

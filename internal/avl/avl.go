// Package avl implements a lock-based concurrent relaxed-balance AVL
// tree in the style of Bronson, Casper, Chafi and Olukotun, "A Practical
// Concurrent Binary Search Tree" (PPoPP 2010) — the paper's AVL baseline.
//
// The tree is partially external: removing a key whose node has two
// children merely clears its presence flag, leaving a routing node, so
// structural changes always touch nodes with at most one child. Readers
// descend optimistically without locks, validating per-node version
// stamps in the hand-over-hand fashion of the original: a rotation marks
// the node whose subtree range shrinks with a "shrinking" version bit,
// forcing concurrent readers crossing it to wait and revalidate. Writers
// take per-node mutexes only around the structural change itself, then
// repair heights and balance bottom-up with best-effort (relaxed)
// rotations. Lock chains are acquired top-down with TryLock and released
// on failure, so the locking protocol cannot deadlock.
package avl

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Version-stamp bits. A node's version changes whenever its subtree range
// may have changed; the shrinking bit is held (briefly) during rotations.
const (
	verUnlinked  = int64(1) << 0
	verShrinking = int64(1) << 1
	verChanging  = verUnlinked | verShrinking
	verStep      = int64(1) << 2
)

type node struct {
	key     uint64
	mu      sync.Mutex
	version atomic.Int64
	present atomic.Bool
	height  atomic.Int32
	parent  atomic.Pointer[node]
	left    atomic.Pointer[node]
	right   atomic.Pointer[node]
}

func (n *node) childPtr(right bool) *atomic.Pointer[node] {
	if right {
		return &n.right
	}
	return &n.left
}

func height(n *node) int32 {
	if n == nil {
		return 0
	}
	return n.height.Load()
}

// Tree is the concurrent AVL tree. The rootHolder is a sentinel whose
// right child is the true root; it is never rotated or unlinked, so its
// version is permanently zero.
type Tree struct {
	rootHolder *node
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{rootHolder: &node{}}
}

type result uint8

const (
	resRetry result = iota
	resFound
	resAbsent
)

// Contains reports whether k is in the set, using optimistic
// version-validated descent (no locks, no writes).
func (t *Tree) Contains(k uint64) bool {
	for {
		if r := t.attemptGet(k, t.rootHolder, true, 0); r != resRetry {
			return r == resFound
		}
	}
}

func (t *Tree) attemptGet(k uint64, n *node, dirRight bool, nOVL int64) result {
	for {
		child := n.childPtr(dirRight).Load()
		if child == nil {
			if n.version.Load() != nOVL {
				return resRetry
			}
			return resAbsent
		}
		if child.key == k {
			// The presence flag is the logical membership bit; reading it
			// through a validated link linearizes the lookup.
			if child.present.Load() {
				return resFound
			}
			return resAbsent
		}
		childOVL := child.version.Load()
		if childOVL&verChanging != 0 {
			waitNotChanging(child)
			if n.version.Load() != nOVL {
				return resRetry
			}
			continue
		}
		if child != n.childPtr(dirRight).Load() {
			if n.version.Load() != nOVL {
				return resRetry
			}
			continue
		}
		if n.version.Load() != nOVL {
			return resRetry
		}
		if r := t.attemptGet(k, child, k > child.key, childOVL); r != resRetry {
			return r
		}
	}
}

func waitNotChanging(n *node) {
	for i := 0; n.version.Load()&verShrinking != 0; i++ {
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// Insert adds k, returning false if already present.
func (t *Tree) Insert(k uint64) bool {
	for {
		if r := t.attemptInsert(k, t.rootHolder, true, 0); r != resRetry {
			return r == resFound // resFound here means "newly inserted"
		}
	}
}

func (t *Tree) attemptInsert(k uint64, n *node, dirRight bool, nOVL int64) result {
	for {
		child := n.childPtr(dirRight).Load()
		if child == nil {
			// Attach a new leaf under n, guarded by n's lock.
			if !n.mu.TryLock() {
				runtime.Gosched()
				if n.version.Load() != nOVL {
					return resRetry
				}
				continue
			}
			ok := n.version.Load() == nOVL && n.childPtr(dirRight).Load() == nil
			if ok {
				nn := &node{key: k}
				nn.present.Store(true)
				nn.height.Store(1)
				nn.parent.Store(n)
				n.childPtr(dirRight).Store(nn)
			}
			n.mu.Unlock()
			if !ok {
				return resRetry
			}
			t.fixUp(n)
			return resFound
		}
		if child.key == k {
			// Resurrect a routing node or report a duplicate.
			child.mu.Lock()
			if child.version.Load()&verUnlinked != 0 {
				child.mu.Unlock()
				return resRetry
			}
			was := child.present.Load()
			if !was {
				child.present.Store(true)
			}
			child.mu.Unlock()
			if was {
				return resAbsent // already present
			}
			return resFound
		}
		childOVL := child.version.Load()
		if childOVL&verChanging != 0 {
			waitNotChanging(child)
			if n.version.Load() != nOVL {
				return resRetry
			}
			continue
		}
		if child != n.childPtr(dirRight).Load() {
			if n.version.Load() != nOVL {
				return resRetry
			}
			continue
		}
		if n.version.Load() != nOVL {
			return resRetry
		}
		if r := t.attemptInsert(k, child, k > child.key, childOVL); r != resRetry {
			return r
		}
	}
}

// Delete removes k, returning false if absent. Nodes with two children
// become routing nodes (presence cleared); nodes with fewer are unlinked
// under the locks of parent and node.
func (t *Tree) Delete(k uint64) bool {
	for {
		if r := t.attemptDelete(k, t.rootHolder, true, 0); r != resRetry {
			return r == resFound
		}
	}
}

func (t *Tree) attemptDelete(k uint64, n *node, dirRight bool, nOVL int64) result {
	for {
		child := n.childPtr(dirRight).Load()
		if child == nil {
			if n.version.Load() != nOVL {
				return resRetry
			}
			return resAbsent
		}
		if child.key == k {
			return t.removeNode(n, child)
		}
		childOVL := child.version.Load()
		if childOVL&verChanging != 0 {
			waitNotChanging(child)
			if n.version.Load() != nOVL {
				return resRetry
			}
			continue
		}
		if child != n.childPtr(dirRight).Load() {
			if n.version.Load() != nOVL {
				return resRetry
			}
			continue
		}
		if n.version.Load() != nOVL {
			return resRetry
		}
		if r := t.attemptDelete(k, child, k > child.key, childOVL); r != resRetry {
			return r
		}
	}
}

// removeNode clears victim's presence and, when it has at most one child,
// splices it out under the locks of its parent and itself, repairing
// heights once the locks are released.
func (t *Tree) removeNode(parent, victim *node) result {
	res, fix := t.removeNodeLocked(parent, victim)
	if fix != nil {
		t.fixUp(fix)
	}
	return res
}

// removeNodeLocked does the locked portion of removeNode and returns the
// node from which height repair should start (nil if none); the caller
// runs fixUp after every lock is dropped, since fixUp takes locks itself.
func (t *Tree) removeNodeLocked(parent, victim *node) (result, *node) {
	if victim.left.Load() != nil && victim.right.Load() != nil {
		// Two children: logical delete only (partially external tree).
		victim.mu.Lock()
		defer victim.mu.Unlock()
		if victim.version.Load()&verUnlinked != 0 {
			return resRetry, nil
		}
		// Re-check under lock: a child may have vanished, but clearing
		// the flag is correct regardless of the current child count.
		if !victim.present.Load() {
			return resAbsent, nil
		}
		victim.present.Store(false)
		return resFound, nil
	}
	if !parent.mu.TryLock() {
		runtime.Gosched()
		return resRetry, nil
	}
	if !victim.mu.TryLock() {
		parent.mu.Unlock()
		runtime.Gosched()
		return resRetry, nil
	}
	defer victim.mu.Unlock()
	defer parent.mu.Unlock()

	if parent.version.Load()&verUnlinked != 0 || victim.parent.Load() != parent ||
		victim.version.Load()&verUnlinked != 0 {
		return resRetry, nil
	}
	if !victim.present.Load() {
		return resAbsent, nil
	}
	left, right := victim.left.Load(), victim.right.Load()
	if left != nil && right != nil {
		// Grew a second child while we were locking: logical delete.
		victim.present.Store(false)
		return resFound, nil
	}
	splice := left
	if splice == nil {
		splice = right
	}
	var vp *atomic.Pointer[node]
	switch {
	case parent.left.Load() == victim:
		vp = &parent.left
	case parent.right.Load() == victim:
		vp = &parent.right
	default:
		return resRetry, nil
	}
	victim.present.Store(false)
	victim.version.Store(victim.version.Load() | verUnlinked)
	vp.Store(splice)
	if splice != nil {
		splice.parent.Store(parent)
	}
	return resFound, parent
}

// fixUp walks from n toward the root repairing heights and applying
// best-effort single/double rotations (relaxed AVL: balance is restored
// eventually, not instantaneously).
func (t *Tree) fixUp(n *node) {
	for n != nil && n != t.rootHolder {
		if n.version.Load()&verUnlinked != 0 {
			n = n.parent.Load()
			continue
		}
		hl, hr := height(n.left.Load()), height(n.right.Load())
		bal := hl - hr
		switch {
		case bal > 1:
			t.rotate(n, false)
		case bal < -1:
			t.rotate(n, true)
		default:
			want := 1 + max32(hl, hr)
			if n.height.Load() != want {
				n.mu.Lock()
				hl, hr = height(n.left.Load()), height(n.right.Load())
				n.height.Store(1 + max32(hl, hr))
				n.mu.Unlock()
			}
		}
		n = n.parent.Load()
	}
}

// rotate applies one rotation step at n (left if leftward is true,
// meaning the right subtree is too tall). It locks parent, n and the
// pivot child top-down with TryLock, giving up (the next fixUp will
// retry) if anything moved. Double-rotation cases are handled by first
// rotating the child in the opposite direction.
func (t *Tree) rotate(n *node, leftward bool) {
	parent := n.parent.Load()
	if parent == nil {
		return
	}
	if !parent.mu.TryLock() {
		runtime.Gosched()
		return
	}
	defer parent.mu.Unlock()
	if !n.mu.TryLock() {
		return
	}
	defer n.mu.Unlock()

	if parent.version.Load()&verUnlinked != 0 || n.version.Load()&verUnlinked != 0 ||
		n.parent.Load() != parent {
		return
	}
	if parent.left.Load() != n && parent.right.Load() != n {
		return
	}
	pivot := n.childPtr(leftward).Load() // tall child
	if pivot == nil {
		return
	}
	if !pivot.mu.TryLock() {
		return
	}
	defer pivot.mu.Unlock()
	if pivot.parent.Load() != n || pivot.version.Load()&verUnlinked != 0 {
		return
	}

	// Zig-zag: rotate the pivot first so the outer rotation balances.
	inner := pivot.childPtr(!leftward).Load()
	outer := pivot.childPtr(leftward).Load()
	if height(inner) > height(outer) {
		if inner == nil || !inner.mu.TryLock() {
			return
		}
		if inner.parent.Load() != pivot || inner.version.Load()&verUnlinked != 0 {
			inner.mu.Unlock()
			return
		}
		rotateLocked(n, pivot, inner, !leftward)
		inner.mu.Unlock()
		return // next fixUp pass performs the outer rotation
	}

	rotateLocked(parent, n, pivot, leftward)
}

// rotateLocked performs the rotation with all three nodes locked:
// pivot replaces n as parent's child; n becomes pivot's (!dir) child;
// pivot's former (!dir) subtree moves under n. dir=true is a left
// rotation. n's range shrinks, so n carries the shrinking bit while
// links are inconsistent.
func rotateLocked(parent, n, pivot *node, leftward bool) {
	n.version.Store(n.version.Load() | verShrinking)

	moved := pivot.childPtr(!leftward).Load()
	n.childPtr(leftward).Store(moved)
	if moved != nil {
		moved.parent.Store(n)
	}
	pivot.childPtr(!leftward).Store(n)
	n.parent.Store(pivot)
	if parent.left.Load() == n {
		parent.left.Store(pivot)
	} else if parent.right.Load() == n {
		parent.right.Store(pivot)
	}
	pivot.parent.Store(parent)

	n.height.Store(1 + max32(height(n.left.Load()), height(n.right.Load())))
	pivot.height.Store(1 + max32(height(pivot.left.Load()), height(pivot.right.Load())))

	// Release the shrinking bit with a version bump so optimistic readers
	// that crossed n revalidate.
	n.version.Store((n.version.Load() + verStep) &^ verShrinking)
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Size counts present keys; quiescent use only.
func (t *Tree) Size() int { return sizeOf(t.rootHolder.right.Load()) }

func sizeOf(n *node) int {
	if n == nil {
		return 0
	}
	total := sizeOf(n.left.Load()) + sizeOf(n.right.Load())
	if n.present.Load() {
		total++
	}
	return total
}

// HeightOf returns the root height, exposed for balance sanity tests.
func (t *Tree) HeightOf() int {
	return int(height(t.rootHolder.right.Load()))
}

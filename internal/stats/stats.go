// Package stats provides the summary statistics reported by the paper's
// charts: per-configuration means with standard-deviation error bars over
// repeated trials.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample of trial measurements.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes the summary of xs. The standard deviation is the
// sample (n-1) estimator, matching the error bars of the paper's charts;
// it is zero for fewer than two samples.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	total := 0.0
	for _, x := range xs {
		total += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = total / float64(len(xs))
	if len(xs) < 2 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	return s
}

// RelStddev returns the coefficient of variation (stddev/mean), or 0 when
// the mean is 0.
func (s Summary) RelStddev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using
// linear interpolation between closest ranks — the convention most
// latency dashboards use, so a reported p99 here matches what an
// operator would compute from the same sample. xs is not modified; an
// empty sample reports 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Package stats provides the summary statistics reported by the paper's
// charts: per-configuration means with standard-deviation error bars over
// repeated trials.
package stats

import "math"

// Summary describes a sample of trial measurements.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes the summary of xs. The standard deviation is the
// sample (n-1) estimator, matching the error bars of the paper's charts;
// it is zero for fewer than two samples.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	total := 0.0
	for _, x := range xs {
		total += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = total / float64(len(xs))
	if len(xs) < 2 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	return s
}

// RelStddev returns the coefficient of variation (stddev/mean), or 0 when
// the mean is 0.
func (s Summary) RelStddev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

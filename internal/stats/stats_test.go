package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || !almost(s.Mean, 42) || s.Stddev != 0 || s.Min != 42 || s.Max != 42 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(s.Mean, 5) {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almost(s.Stddev, want) {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		s := Summarize(xs)
		if s.N != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelStddev(t *testing.T) {
	if got := (Summary{Mean: 10, Stddev: 1}).RelStddev(); !almost(got, 0.1) {
		t.Errorf("RelStddev = %v", got)
	}
	if got := (Summary{}).RelStddev(); got != 0 {
		t.Errorf("RelStddev of zero mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty sample p50 = %v", got)
	}
	xs := []float64{40, 10, 30, 20} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {-5, 10}, {200, 40},
		{50, 25},   // interpolated midpoint
		{25, 17.5}, // between ranks
		{99, 39.7}, // near the top
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v, %v) = %v, want %v", xs, tc.p, got, tc.want)
		}
	}
	// Input must not be mutated (the caller's trial sample is reused).
	if xs[0] != 40 || xs[3] != 20 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
	one := []float64{7}
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile(one, p); got != 7 {
			t.Errorf("single-sample Percentile(%v) = %v", p, got)
		}
	}
}

// Package kst implements a non-blocking k-ary external search tree in the
// style of Brown and Helga, "Non-blocking k-ary Search Trees" (OPODIS
// 2011) — the paper's 4-ST baseline (k = 4 was found optimal there).
//
// Elements live in leaves holding up to k sorted keys; internal nodes
// hold k-1 routing keys and k children. Inserting into a full leaf
// "sprouts" it into an internal node with k new leaves; a delete that
// empties a leaf whose parent has no other occupied subtree "prunes" the
// parent. Coordination is the Ellen-et-al. flag/mark/help scheme, shared
// with the BST baseline: updates install freshly allocated Info records
// in the parent's (and for prunes, grandparent's) update field, and any
// process that runs into a flag helps it complete.
//
// Faithful-in-spirit deviation, recorded in DESIGN.md: the original's
// exact pruning trigger is reproduced as "leaf down to zero keys and at
// most one other occupied child"; leaves are allowed to be temporarily
// empty otherwise, as in the original.
package kst

import (
	"sort"
	"sync/atomic"
)

// Arity is the default branching factor used by the paper's evaluation.
const Arity = 4

type state uint8

const (
	stateClean state = iota
	stateIFlag
	stateDFlag
	stateMark
)

// update is the (state, info) pair CASed on internal nodes; fresh records
// every transition, so pointer CAS is ABA-free.
type update struct {
	state state
	iinfo *iInfo
	dinfo *dInfo
}

// iInfo describes replacing leaf l under p with newChild (plain inserts,
// simple deletes and sprouting inserts all take this shape).
type iInfo struct {
	p        *node
	l        *node
	newChild *node
	routeKey uint64 // key whose search path identifies the child slot
}

// dInfo describes a pruning delete: mark p and swing gp's pointer from p
// to replacement.
type dInfo struct {
	gp, p, l    *node
	pupdate     *update
	replacement *node
	routeKey    uint64
}

// node is a leaf (sorted keys, no children) or an internal routing node
// (exactly k-1 routing keys, k children). Key slices are immutable.
type node struct {
	leaf   bool
	keys   []uint64 // leaf: 0..k elements; internal: k-1 routing keys
	inf    []bool   // internal only: routing key i is +∞ (root sentinels)
	update atomic.Pointer[update]
	child  []atomic.Pointer[node]
}

func newLeaf(ks []uint64) *node {
	n := &node{leaf: true, keys: ks}
	n.update.Store(&update{state: stateClean})
	return n
}

func newInternal(arity int, ks []uint64, inf []bool, children []*node) *node {
	n := &node{keys: ks, inf: inf, child: make([]atomic.Pointer[node], arity)}
	n.update.Store(&update{state: stateClean})
	for i, c := range children {
		n.child[i].Store(c)
	}
	return n
}

// Tree is the non-blocking k-ary search tree.
type Tree struct {
	arity int
	root  *node
}

// New returns an empty tree with the given branching factor (>= 2).
func New(arity int) *Tree {
	if arity < 2 {
		arity = Arity
	}
	ks := make([]uint64, arity-1)
	inf := make([]bool, arity-1)
	children := make([]*node, arity)
	for i := range inf {
		inf[i] = true // all routing keys +∞: user keys route to child 0
	}
	for i := range children {
		children[i] = newLeaf(nil)
	}
	return &Tree{arity: arity, root: newInternal(arity, ks, inf, children)}
}

// route returns the child index for key k at internal node n.
func route(n *node, k uint64) int {
	for i := range n.keys {
		if n.inf[i] || k < n.keys[i] {
			return i
		}
	}
	return len(n.keys)
}

// leafHas reports whether leaf l contains k.
func leafHas(l *node, k uint64) bool {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= k })
	return i < len(l.keys) && l.keys[i] == k
}

type searchResult struct {
	gp, p, l          *node
	pupdate, gpupdate *update
}

func (t *Tree) search(k uint64) searchResult {
	var r searchResult
	l := t.root
	for !l.leaf {
		r.gp, r.gpupdate = r.p, r.pupdate
		r.p = l
		r.pupdate = l.update.Load()
		l = l.child[route(l, k)].Load()
	}
	r.l = l
	return r
}

// Contains reports whether k is in the set; read-only.
func (t *Tree) Contains(k uint64) bool {
	return leafHas(t.search(k).l, k)
}

// Insert adds k, returning false if already present. A non-full leaf is
// replaced by a bigger leaf; a full leaf sprouts into an internal node
// whose k fresh leaves share the k+1 keys.
func (t *Tree) Insert(k uint64) bool {
	for {
		r := t.search(k)
		if leafHas(r.l, k) {
			return false
		}
		if r.pupdate.state != stateClean {
			t.help(r.pupdate)
			continue
		}
		merged := insertSorted(r.l.keys, k)
		var newChild *node
		if len(merged) <= t.arity {
			newChild = newLeaf(merged)
		} else {
			newChild = t.sprout(merged)
		}
		op := &iInfo{p: r.p, l: r.l, newChild: newChild, routeKey: k}
		if r.p.update.CompareAndSwap(r.pupdate, &update{state: stateIFlag, iinfo: op}) {
			t.helpInsert(op)
			return true
		}
		t.help(r.p.update.Load())
	}
}

// sprout builds the internal node replacing a full leaf: arity leaves
// holding the arity+1 keys (first leaf gets the extra one), with routing
// keys the minima of leaves 1..arity-1.
func (t *Tree) sprout(merged []uint64) *node {
	sizes := make([]int, t.arity)
	for i := range sizes {
		sizes[i] = 1
	}
	for extra := len(merged) - t.arity; extra > 0; extra-- {
		sizes[extra-1]++
	}
	children := make([]*node, t.arity)
	ks := make([]uint64, t.arity-1)
	inf := make([]bool, t.arity-1)
	off := 0
	for i := range children {
		children[i] = newLeaf(merged[off : off+sizes[i] : off+sizes[i]])
		if i > 0 {
			ks[i-1] = merged[off]
		}
		off += sizes[i]
	}
	return newInternal(t.arity, ks, inf, children)
}

// Delete removes k, returning false if absent. A leaf with other keys
// (or whose parent is the root, or whose siblings are occupied) shrinks
// in place; otherwise the parent is pruned and replaced by its only
// occupied child.
func (t *Tree) Delete(k uint64) bool {
	for {
		r := t.search(k)
		if !leafHas(r.l, k) {
			return false
		}
		if r.pupdate.state != stateClean {
			t.help(r.pupdate)
			continue
		}
		if len(r.l.keys) > 1 || r.gp == nil {
			// Simple delete: shrink the leaf.
			op := &iInfo{p: r.p, l: r.l, newChild: newLeaf(removeSorted(r.l.keys, k)), routeKey: k}
			if r.p.update.CompareAndSwap(r.pupdate, &update{state: stateIFlag, iinfo: op}) {
				t.helpInsert(op)
				return true
			}
			t.help(r.p.update.Load())
			continue
		}
		// Leaf is about to become empty: inspect p's other children. The
		// reads below are validated by the mark CAS on pupdate — any
		// change to p's children first changes p.update, failing the CAS.
		occupied := make([]*node, 0, t.arity)
		foundL := false
		for i := 0; i < t.arity; i++ {
			c := r.p.child[i].Load()
			if c == r.l {
				foundL = true
				continue
			}
			if !c.leaf || len(c.keys) > 0 {
				occupied = append(occupied, c)
			}
		}
		if !foundL {
			continue // l already replaced; retry
		}
		if len(occupied) > 1 {
			// Other subtrees remain: shrink to an empty leaf in place.
			op := &iInfo{p: r.p, l: r.l, newChild: newLeaf(nil), routeKey: k}
			if r.p.update.CompareAndSwap(r.pupdate, &update{state: stateIFlag, iinfo: op}) {
				t.helpInsert(op)
				return true
			}
			t.help(r.p.update.Load())
			continue
		}
		// Pruning delete: p collapses to its only occupied child (or an
		// empty leaf when none remain).
		var replacement *node
		if len(occupied) == 1 {
			replacement = occupied[0]
		} else {
			replacement = newLeaf(nil)
		}
		if r.gpupdate.state != stateClean {
			t.help(r.gpupdate)
			continue
		}
		op := &dInfo{gp: r.gp, p: r.p, l: r.l, pupdate: r.pupdate, replacement: replacement, routeKey: k}
		if r.gp.update.CompareAndSwap(r.gpupdate, &update{state: stateDFlag, dinfo: op}) {
			if t.helpDelete(op) {
				return true
			}
			continue
		}
		t.help(r.gp.update.Load())
	}
}

func (t *Tree) help(u *update) {
	switch u.state {
	case stateIFlag:
		t.helpInsert(u.iinfo)
	case stateMark:
		t.helpMarked(u.dinfo)
	case stateDFlag:
		t.helpDelete(u.dinfo)
	}
}

func (t *Tree) helpInsert(op *iInfo) {
	op.p.child[route(op.p, op.routeKey)].CompareAndSwap(op.l, op.newChild)
	cur := op.p.update.Load()
	if cur.state == stateIFlag && cur.iinfo == op {
		op.p.update.CompareAndSwap(cur, &update{state: stateClean})
	}
}

func (t *Tree) helpDelete(op *dInfo) bool {
	op.p.update.CompareAndSwap(op.pupdate, &update{state: stateMark, dinfo: op})
	cur := op.p.update.Load()
	if cur.state == stateMark && cur.dinfo == op {
		t.helpMarked(op)
		return true
	}
	t.help(cur)
	gcur := op.gp.update.Load()
	if gcur.state == stateDFlag && gcur.dinfo == op {
		op.gp.update.CompareAndSwap(gcur, &update{state: stateClean}) // backtrack
	}
	return false
}

func (t *Tree) helpMarked(op *dInfo) {
	// p is marked: its children are frozen at the values the deleter
	// validated, so the precomputed replacement is exact.
	op.gp.child[route(op.gp, op.routeKey)].CompareAndSwap(op.p, op.replacement)
	cur := op.gp.update.Load()
	if cur.state == stateDFlag && cur.dinfo == op {
		op.gp.update.CompareAndSwap(cur, &update{state: stateClean})
	}
}

// Size counts keys; quiescent use only.
func (t *Tree) Size() int { return sizeOf(t.root) }

func sizeOf(n *node) int {
	if n.leaf {
		return len(n.keys)
	}
	total := 0
	for i := range n.child {
		total += sizeOf(n.child[i].Load())
	}
	return total
}

func insertSorted(ks []uint64, k uint64) []uint64 {
	i := sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
	out := make([]uint64, 0, len(ks)+1)
	out = append(out, ks[:i]...)
	out = append(out, k)
	return append(out, ks[i:]...)
}

func removeSorted(ks []uint64, k uint64) []uint64 {
	i := sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
	out := make([]uint64, 0, len(ks)-1)
	out = append(out, ks[:i]...)
	return append(out, ks[i+1:]...)
}

package kst

import "fmt"

// Validate checks the structural invariants at quiescence: reachable
// nodes are Clean, leaf key arrays are sorted, internal routing keys are
// non-decreasing, and every leaf key lies within the routing bounds
// accumulated on its path.
func (t *Tree) Validate() error {
	return t.validateNode(t.root, boundKey{}, boundKey{inf: true})
}

// boundKey is a routing bound; inf marks +∞ (also used as "-∞ absent"
// for the lower bound via the unbounded flag).
type boundKey struct {
	v         uint64
	inf       bool
	unbounded bool
}

func (t *Tree) validateNode(n *node, lo, hi boundKey) error {
	if u := n.update.Load(); u.state != stateClean {
		return fmt.Errorf("reachable node not Clean at quiescence")
	}
	within := func(k uint64) bool {
		if !lo.unbounded && lo.inf {
			return false // subtree above a +∞ routing key must be empty
		}
		if !lo.unbounded && k < lo.v {
			return false
		}
		if hi.inf {
			return true
		}
		return k < hi.v
	}
	if n.leaf {
		for i, k := range n.keys {
			if i > 0 && n.keys[i-1] >= k {
				return fmt.Errorf("leaf keys not strictly sorted: %v", n.keys)
			}
			if !within(k) {
				return fmt.Errorf("leaf key %d outside routing bounds [%+v, %+v)", k, lo, hi)
			}
		}
		return nil
	}
	if len(n.child) != t.arity || len(n.keys) != t.arity-1 {
		return fmt.Errorf("internal node has %d children / %d keys for arity %d",
			len(n.child), len(n.keys), t.arity)
	}
	for i := 1; i < len(n.keys); i++ {
		if !n.inf[i-1] && !n.inf[i] && n.keys[i-1] > n.keys[i] {
			return fmt.Errorf("routing keys not sorted: %v", n.keys)
		}
		if n.inf[i-1] && !n.inf[i] {
			return fmt.Errorf("finite routing key after ∞: %v inf=%v", n.keys, n.inf)
		}
	}
	childLo := boundKey{unbounded: true}
	if !lo.unbounded {
		childLo = lo
	}
	for i := 0; i < t.arity; i++ {
		childHi := hi
		if i < len(n.keys) {
			childHi = boundKey{v: n.keys[i], inf: n.inf[i]}
		}
		c := n.child[i].Load()
		if c == nil {
			return fmt.Errorf("internal node has nil child %d", i)
		}
		if err := t.validateNode(c, childLo, childHi); err != nil {
			return err
		}
		childLo = childHi
	}
	return nil
}

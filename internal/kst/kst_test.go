package kst

import (
	"math/rand"
	"sync"
	"testing"

	"nbtrie/internal/settest"
)

func TestConformanceK4(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return New(4) })
}

func TestConformanceK2(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return New(2) })
}

func TestConformanceK8(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return New(8) })
}

func TestSproutAndPrune(t *testing.T) {
	tr := New(4)
	// Fill one leaf past capacity to force a sprout.
	for k := uint64(10); k < 15; k++ {
		if !tr.Insert(k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if got := tr.Size(); got != 5 {
		t.Fatalf("Size() = %d, want 5", got)
	}
	for k := uint64(10); k < 15; k++ {
		if !tr.Contains(k) {
			t.Fatalf("Contains(%d) = false after sprout", k)
		}
	}
	// Drain to force pruning back down.
	for k := uint64(10); k < 15; k++ {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if got := tr.Size(); got != 0 {
		t.Fatalf("Size() = %d after draining, want 0", got)
	}
}

func TestValidateAfterChurn(t *testing.T) {
	for _, arity := range []int{2, 4, 8} {
		tr := New(arity)
		if err := tr.Validate(); err != nil {
			t.Fatalf("arity %d fresh: %v", arity, err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 10000; i++ {
			k := rng.Uint64() % 512
			if rng.Intn(2) == 0 {
				tr.Insert(k)
			} else {
				tr.Delete(k)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("arity %d after churn: %v", arity, err)
		}
	}
}

func TestValidateAfterConcurrentChurn(t *testing.T) {
	tr := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := rng.Uint64() % 128
				if rng.Intn(2) == 0 {
					tr.Insert(k)
				} else {
					tr.Delete(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after concurrent churn: %v", err)
	}
}

func TestArityDefaulting(t *testing.T) {
	tr := New(0) // invalid arity falls back to the paper's k=4
	if tr.arity != Arity {
		t.Errorf("arity = %d, want %d", tr.arity, Arity)
	}
}

func TestRouteBounds(t *testing.T) {
	tr := New(4)
	n := tr.root
	if got := route(n, 0); got != 0 {
		t.Errorf("route to sentinel root = %d, want 0", got)
	}
}

func TestSortedHelpers(t *testing.T) {
	ks := []uint64{2, 4, 6}
	if got := insertSorted(ks, 5); len(got) != 4 || got[2] != 5 {
		t.Errorf("insertSorted = %v", got)
	}
	if got := removeSorted(ks, 4); len(got) != 2 || got[1] != 6 {
		t.Errorf("removeSorted = %v", got)
	}
	if got := insertSorted(nil, 1); len(got) != 1 {
		t.Errorf("insertSorted(nil) = %v", got)
	}
}

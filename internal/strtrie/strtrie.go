// Package strtrie implements the unbounded-length-key extension of the
// paper's Section VI: a non-blocking Patricia trie over arbitrary byte
// strings. Each key is encoded bit-wise as 01/10 pairs with a 11
// terminator (keys.EncodeString), making the encoded key space
// prefix-free, and the two dummy leaves hold 00 and 111, which bound all
// encoded keys. The algorithm is the same flag/help scheme as
// internal/core with one semantic difference the paper calls out:
// because key length is unbounded, searches are non-blocking but no
// longer wait-free.
//
// Like internal/core, the trie is generic over the leaf value payload V
// and its update protocol is allocation-lean: values live unboxed on
// leaves, descriptors are built from fixed-size stack arrays (an update
// flags at most four nodes and swings at most two child pointers, the
// same bounds as the fixed-width trie), and speculative node construction
// is deferred until the captured info values are known not to belong to a
// conflicting update. The fresh Unflag allocated per unflag CAS is
// load-bearing for no-ABA and must not be pooled; see DESIGN.md.
//
// Empty keys are rejected: the paper's encoding maps the empty string to
// "11", which is a prefix of the 111 dummy and therefore cannot coexist
// with it in a Patricia trie.
package strtrie

import (
	"fmt"

	"sync/atomic"

	"nbtrie/internal/keys"
)

// node mirrors internal/core's node with Bitstring labels. val is the
// immutable, unboxed value payload of a leaf (zero for internal nodes and
// for set-API leaves); value updates install fresh leaves through the
// child-CAS path, exactly as in internal/core, so no-ABA is preserved.
type node[V any] struct {
	label keys.Bitstring
	leaf  bool
	val   V
	info  atomic.Pointer[desc[V]]
	child [2]atomic.Pointer[node[V]]
}

func newLeaf[V any](label keys.Bitstring) *node[V] {
	var zero V
	return newLeafVal(label, zero)
}

func newLeafVal[V any](label keys.Bitstring, val V) *node[V] {
	n := &node[V]{label: label, leaf: true, val: val}
	n.info.Store(newUnflag[V]())
	return n
}

func newInternal[V any](label keys.Bitstring, left, right *node[V]) *node[V] {
	n := &node[V]{label: label}
	n.info.Store(newUnflag[V]())
	n.child[0].Store(left)
	n.child[1].Store(right)
	return n
}

func copyNode[V any](n *node[V]) *node[V] {
	if n.leaf {
		return newLeafVal(n.label, n.val)
	}
	return newInternal(n.label, n.child[0].Load(), n.child[1].Load())
}

type descKind uint8

const (
	kindUnflag descKind = iota + 1
	kindFlag
)

// desc is the Flag/Unflag Info object, identical in role to core's. The
// same worst case applies — a general-case replace with an internal
// insertion point flags four nodes, unflags two and performs two child
// CASes — so the same fixed-size arrays bound it, and a descriptor is a
// single allocation.
type desc[V any] struct {
	kind descKind

	nFlag   uint8
	nUnflag uint8
	nPNode  uint8

	flag    [4]*node[V]
	oldInfo [4]*desc[V]
	unflag  [2]*node[V]

	pNode    [2]*node[V]
	oldChild [2]*node[V]
	newChild [2]*node[V]

	rmvLeaf  *node[V]
	flagDone atomic.Bool
}

// newUnflag allocates a fresh Unflag descriptor; the allocation is
// load-bearing for no-ABA on info fields (see core.newUnflag).
func newUnflag[V any]() *desc[V] { return &desc[V]{kind: kindUnflag} }

func (d *desc[V]) flagged() bool { return d.kind == kindFlag }

// Trie is the variable-length-key Patricia trie. Keys are arbitrary
// non-empty byte strings; each leaf carries an unboxed value of type V
// (the set view instantiates V = struct{}).
type Trie[V any] struct {
	root *node[V]
}

// New returns an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{root: newInternal(keys.Bitstring{},
		newLeaf[V](keys.StrDummyMin()),
		newLeaf[V](keys.StrDummyMax()))}
}

func encode(k []byte) keys.Bitstring {
	if len(k) == 0 {
		panic("strtrie: empty keys are not supported (their Section VI encoding " +
			"collides with the 111 dummy)")
	}
	return keys.EncodeString(k)
}

type searchResult[V any] struct {
	gp, p, node   *node[V]
	gpInfo, pInfo *desc[V]
	rmvd          bool
}

// search descends to v's location. The loop is bounded by v's encoded
// length plus churn from concurrent restructuring: lock-free, not
// wait-free (Section VI).
func (t *Trie[V]) search(v keys.Bitstring) searchResult[V] {
	var r searchResult[V]
	n := t.root
	for !n.leaf && n.label.IsPrefixOf(v) && n.label.Len() < v.Len() {
		r.gp, r.gpInfo = r.p, r.pInfo
		r.p, r.pInfo = n, n.info.Load()
		n = r.p.child[v.Bit(r.p.label.Len())].Load()
	}
	r.node = n
	if n.leaf {
		r.rmvd = logicallyRemoved(n.info.Load())
	}
	return r
}

func logicallyRemoved[V any](i *desc[V]) bool {
	if !i.flagged() {
		return false
	}
	p, old := i.pNode[0], i.oldChild[0]
	return p.child[0].Load() != old && p.child[1].Load() != old
}

func keyInTrie[V any](n *node[V], v keys.Bitstring, rmvd bool) bool {
	return n.leaf && n.label.Equal(v) && !rmvd
}

// Contains reports whether k is in the set (read-only, lock-free).
func (t *Trie[V]) Contains(k []byte) bool {
	v := encode(k)
	r := t.search(v)
	return keyInTrie(r.node, v, r.rmvd)
}

// help is the core help routine over Bitstring nodes; see
// internal/core/update.go for the step-by-step commentary.
func (t *Trie[V]) help(i *desc[V]) bool {
	doChildCAS := true
	for j := 0; j < int(i.nFlag) && doChildCAS; j++ {
		n := i.flag[j]
		n.info.CompareAndSwap(i.oldInfo[j], i)
		doChildCAS = n.info.Load() == i
	}
	if doChildCAS {
		i.flagDone.Store(true)
		if i.rmvLeaf != nil {
			i.rmvLeaf.info.Store(i)
		}
		for j := 0; j < int(i.nPNode); j++ {
			p, nc := i.pNode[j], i.newChild[j]
			k := nc.label.Bit(p.label.Len())
			p.child[k].CompareAndSwap(i.oldChild[j], nc)
		}
	}
	if i.flagDone.Load() {
		for j := int(i.nUnflag) - 1; j >= 0; j-- {
			i.unflag[j].info.CompareAndSwap(i, newUnflag[V]())
		}
		return true
	}
	for j := int(i.nFlag) - 1; j >= 0; j-- {
		i.flag[j].info.CompareAndSwap(i, newUnflag[V]())
	}
	return false
}

// newDesc validates, deduplicates and orders the flag set (newFlag). As
// in internal/core the parameters are fixed-size arrays with occupancy
// counts, passed by value and mutated in place; the descriptor on the
// success path is the only heap allocation.
func (t *Trie[V]) newDesc(
	flag [4]*node[V], oldInfo [4]*desc[V], nFlag int,
	unflag [2]*node[V], nUnflag int,
	pNode, oldChild, newChild [2]*node[V], nPNode int,
	rmvLeaf *node[V],
) *desc[V] {
	for j := 0; j < nFlag; j++ {
		if oldInfo[j].flagged() {
			t.help(oldInfo[j])
			return nil
		}
	}
	m := 0
	for a := 0; a < nFlag; a++ {
		dup := false
		for b := 0; b < m; b++ {
			if flag[b] == flag[a] {
				if oldInfo[b] != oldInfo[a] {
					return nil
				}
				dup = true
				break
			}
		}
		if !dup {
			flag[m], oldInfo[m] = flag[a], oldInfo[a]
			m++
		}
	}
	nFlag = m

	m = 0
	for a := 0; a < nUnflag; a++ {
		dup := false
		for b := 0; b < m; b++ {
			if unflag[b] == unflag[a] {
				dup = true
				break
			}
		}
		if !dup {
			unflag[m] = unflag[a]
			m++
		}
	}
	nUnflag = m

	// Sort the flag set by label, permuting oldInfo alongside.
	for a := 1; a < nFlag; a++ {
		for b := a; b > 0 && flag[b].label.Compare(flag[b-1].label) < 0; b-- {
			flag[b], flag[b-1] = flag[b-1], flag[b]
			oldInfo[b], oldInfo[b-1] = oldInfo[b-1], oldInfo[b]
		}
	}

	return &desc[V]{
		kind:     kindFlag,
		nFlag:    uint8(nFlag),
		nUnflag:  uint8(nUnflag),
		nPNode:   uint8(nPNode),
		flag:     flag,
		oldInfo:  oldInfo,
		unflag:   unflag,
		pNode:    pNode,
		oldChild: oldChild,
		newChild: newChild,
		rmvLeaf:  rmvLeaf,
	}
}

// helpConflict helps the first flagged descriptor among the captured
// info values, reporting whether one was found; see core.helpConflict.
func (t *Trie[V]) helpConflict(i1, i2, i3, i4 *desc[V]) bool {
	for _, d := range [...]*desc[V]{i1, i2, i3, i4} {
		if d != nil && d.flagged() {
			t.help(d)
			return true
		}
	}
	return false
}

// makeInternal is createNode: nil on prefix conflict (helping the given
// info first when it is a Flag).
func (t *Trie[V]) makeInternal(n1, n2 *node[V], info *desc[V]) *node[V] {
	if n1.label.IsPrefixOf(n2.label) || n2.label.IsPrefixOf(n1.label) {
		if info != nil && info.flagged() {
			t.help(info)
		}
		return nil
	}
	cp := n1.label.CommonPrefix(n2.label)
	if n1.label.Bit(cp.Len()) == 0 {
		return newInternal(cp, n1, n2)
	}
	return newInternal(cp, n2, n1)
}

// Insert adds k, returning false if already present.
func (t *Trie[V]) Insert(k []byte) bool {
	var zero V
	return t.InsertValue(k, zero)
}

// InsertValue is Insert with a value payload bound to the fresh leaf.
func (t *Trie[V]) InsertValue(k []byte, val V) bool {
	v := encode(k)
	for {
		r := t.search(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if t.tryInsert(v, val, r) {
			return true
		}
	}
}

// tryInsert attempts one round of the insert protocol; false means
// re-search and retry. Construction is deferred past the conflicting-
// update check, as in core.tryInsert.
func (t *Trie[V]) tryInsert(v keys.Bitstring, val V, r searchResult[V]) bool {
	n := r.node
	nodeInfo := n.info.Load()
	if t.helpConflict(r.pInfo, nodeInfo, nil, nil) {
		return false
	}
	newNode := t.makeInternal(copyNode(n), newLeafVal(v, val), nodeInfo)
	if newNode == nil {
		return false
	}
	var i *desc[V]
	if !n.leaf {
		i = t.newDesc(
			[4]*node[V]{r.p, n}, [4]*desc[V]{r.pInfo, nodeInfo}, 2,
			[2]*node[V]{r.p}, 1,
			[2]*node[V]{r.p}, [2]*node[V]{n}, [2]*node[V]{newNode}, 1,
			nil)
	} else {
		i = t.newDesc(
			[4]*node[V]{r.p}, [4]*desc[V]{r.pInfo}, 1,
			[2]*node[V]{r.p}, 1,
			[2]*node[V]{r.p}, [2]*node[V]{n}, [2]*node[V]{newNode}, 1,
			nil)
	}
	return i != nil && t.help(i)
}

// Delete removes k, returning false if absent.
func (t *Trie[V]) Delete(k []byte) bool {
	v := encode(k)
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if t.tryDelete(v, r) {
			return true
		}
	}
}

// tryDelete attempts one round of the delete protocol; false means
// re-search and retry. As in core.tryDelete the defensive nil-gp branch
// comes before any read through r.p (only dummies sit directly under the
// root, so the branch is unreachable from Delete).
func (t *Trie[V]) tryDelete(v keys.Bitstring, r searchResult[V]) bool {
	if r.gp == nil {
		return false
	}
	sib := r.p.child[1-v.Bit(r.p.label.Len())].Load()
	i := t.newDesc(
		[4]*node[V]{r.gp, r.p}, [4]*desc[V]{r.gpInfo, r.pInfo}, 2,
		[2]*node[V]{r.gp}, 1,
		[2]*node[V]{r.gp}, [2]*node[V]{r.p}, [2]*node[V]{sib}, 1,
		nil)
	return i != nil && t.help(i)
}

// Load returns the value stored under k; like Contains it only reads
// shared memory and performs no CAS. The value comes back unboxed; the
// only allocation on the Load path is the key encoding itself.
func (t *Trie[V]) Load(k []byte) (V, bool) {
	v := encode(k)
	r := t.search(v)
	if !keyInTrie(r.node, v, r.rmvd) {
		var zero V
		return zero, false
	}
	return r.node.val, true
}

// Store binds k to val, inserting or overwriting (lock-free upsert).
func (t *Trie[V]) Store(k []byte, val V) {
	v := encode(k)
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			if t.tryInsert(v, val, r) {
				return
			}
			continue
		}
		if t.tryOverwrite(v, val, r) {
			return
		}
	}
}

// LoadOrStore returns the existing value for k if present (loaded true);
// otherwise it stores val and returns it (loaded false).
func (t *Trie[V]) LoadOrStore(k []byte, val V) (actual V, loaded bool) {
	v := encode(k)
	for {
		r := t.search(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return r.node.val, true
		}
		if t.tryInsert(v, val, r) {
			return val, false
		}
	}
}

// valuesEqual compares with interface equality (sync.Map contract); it
// panics when the values are not comparable.
func valuesEqual[V any](a, b V) bool {
	return any(a) == any(b)
}

// CompareAndSwap swaps k's value from old to new when the stored value
// equals old (interface equality; old must be comparable).
func (t *Trie[V]) CompareAndSwap(k []byte, old, new V) bool {
	v := encode(k)
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if !valuesEqual(r.node.val, old) {
			return false
		}
		if t.tryOverwrite(v, new, r) {
			return true
		}
	}
}

// CompareAndDelete deletes k when its stored value equals old (interface
// equality; old must be comparable).
func (t *Trie[V]) CompareAndDelete(k []byte, old V) bool {
	v := encode(k)
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if !valuesEqual(r.node.val, old) {
			return false
		}
		if t.tryDelete(v, r) {
			return true
		}
	}
}

// tryOverwrite replaces the live leaf r.node with a fresh leaf carrying
// val — the descriptor shape of Replace's special case 1: flag the
// parent, one child CAS old leaf → new leaf. The leaf is built only after
// the captured parent info is known not to be a Flag.
func (t *Trie[V]) tryOverwrite(v keys.Bitstring, val V, r searchResult[V]) bool {
	if t.helpConflict(r.pInfo, nil, nil, nil) {
		return false
	}
	i := t.newDesc(
		[4]*node[V]{r.p}, [4]*desc[V]{r.pInfo}, 1,
		[2]*node[V]{r.p}, 1,
		[2]*node[V]{r.p}, [2]*node[V]{r.node},
		[2]*node[V]{newLeafVal(v, val)}, 1,
		nil)
	return i != nil && t.help(i)
}

// Replace atomically removes old and inserts new; the same general and
// special cases as internal/core's Replace (paper lines 42-71), with the
// same help-before-build discipline.
func (t *Trie[V]) Replace(old, new []byte) bool {
	vd, vi := encode(old), encode(new)
	for {
		rd := t.search(vd)
		if !keyInTrie(rd.node, vd, rd.rmvd) {
			return false
		}
		ri := t.search(vi)
		if keyInTrie(ri.node, vi, ri.rmvd) {
			return false
		}
		nodeInfoI := ri.node.info.Load()
		sibD := rd.p.child[1-vd.Bit(rd.p.label.Len())].Load()

		var i *desc[V]
		switch {
		case rd.gp != nil &&
			ri.node != rd.node && ri.node != rd.p && ri.node != rd.gp &&
			ri.p != rd.p:
			// General case: two child CASes, insert side first.
			if t.helpConflict(rd.gpInfo, rd.pInfo, ri.pInfo, nodeInfoI) {
				break
			}
			newNodeI := t.makeInternal(copyNode(ri.node), newLeafVal(vi, rd.node.val), nodeInfoI)
			if newNodeI == nil {
				break
			}
			if !ri.node.leaf {
				i = t.newDesc(
					[4]*node[V]{rd.gp, rd.p, ri.p, ri.node},
					[4]*desc[V]{rd.gpInfo, rd.pInfo, ri.pInfo, nodeInfoI}, 4,
					[2]*node[V]{rd.gp, ri.p}, 2,
					[2]*node[V]{ri.p, rd.gp},
					[2]*node[V]{ri.node, rd.p},
					[2]*node[V]{newNodeI, sibD}, 2,
					rd.node)
			} else {
				i = t.newDesc(
					[4]*node[V]{rd.gp, rd.p, ri.p},
					[4]*desc[V]{rd.gpInfo, rd.pInfo, ri.pInfo}, 3,
					[2]*node[V]{rd.gp, ri.p}, 2,
					[2]*node[V]{ri.p, rd.gp},
					[2]*node[V]{ri.node, rd.p},
					[2]*node[V]{newNodeI, sibD}, 2,
					rd.node)
			}
		case ri.node == rd.node:
			if t.helpConflict(rd.pInfo, nil, nil, nil) {
				break
			}
			i = t.newDesc(
				[4]*node[V]{rd.p}, [4]*desc[V]{rd.pInfo}, 1,
				[2]*node[V]{rd.p}, 1,
				[2]*node[V]{rd.p}, [2]*node[V]{ri.node},
				[2]*node[V]{newLeafVal(vi, rd.node.val)}, 1,
				nil)
		case (ri.node == rd.p && ri.p == rd.gp) ||
			(rd.gp != nil && ri.p == rd.p):
			if t.helpConflict(rd.gpInfo, rd.pInfo, nil, nil) {
				break
			}
			newNodeI := t.makeInternal(sibD, newLeafVal(vi, rd.node.val), sibD.info.Load())
			if newNodeI == nil {
				break
			}
			i = t.newDesc(
				[4]*node[V]{rd.gp, rd.p}, [4]*desc[V]{rd.gpInfo, rd.pInfo}, 2,
				[2]*node[V]{rd.gp}, 1,
				[2]*node[V]{rd.gp}, [2]*node[V]{rd.p},
				[2]*node[V]{newNodeI}, 1,
				nil)
		case ri.node == rd.gp:
			if t.helpConflict(ri.pInfo, rd.gpInfo, rd.pInfo, nil) {
				break
			}
			pSibD := rd.gp.child[1-vd.Bit(rd.gp.label.Len())].Load()
			newChildI := t.makeInternal(sibD, pSibD, nil)
			if newChildI == nil {
				break
			}
			newNodeI := t.makeInternal(newChildI, newLeafVal(vi, rd.node.val), nil)
			if newNodeI == nil {
				break
			}
			i = t.newDesc(
				[4]*node[V]{ri.p, rd.gp, rd.p},
				[4]*desc[V]{ri.pInfo, rd.gpInfo, rd.pInfo}, 3,
				[2]*node[V]{ri.p}, 1,
				[2]*node[V]{ri.p}, [2]*node[V]{ri.node},
				[2]*node[V]{newNodeI}, 1,
				nil)
		}
		if i != nil && t.help(i) {
			return true
		}
	}
}

// Keys returns the decoded keys in encoded-key order; quiescent use
// only. Encoded order is lexicographic for keys that are not prefixes of
// one another; a proper prefix sorts after its extensions, because the
// Section VI terminator (11) is greater than either continuation pair
// (01, 10).
func (t *Trie[V]) Keys() [][]byte {
	var out [][]byte
	t.AllKV(func(k []byte, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// AllKV calls fn on every (key, value) pair in encoded-key order until
// fn returns false. Like Keys it is read-only: exact at quiescence,
// best-effort under concurrent updates.
func (t *Trie[V]) AllKV(fn func(k []byte, val V) bool) {
	t.walkKV(t.root, fn)
}

func (t *Trie[V]) walkKV(n *node[V], fn func(k []byte, val V) bool) bool {
	if n.leaf {
		if k, ok := keys.DecodeString(n.label); ok && !logicallyRemoved(n.info.Load()) {
			return fn(k, n.val)
		}
		return true
	}
	return t.walkKV(n.child[0].Load(), fn) && t.walkKV(n.child[1].Load(), fn)
}

// Size counts keys; quiescent use only.
func (t *Trie[V]) Size() int { return len(t.Keys()) }

// Validate checks the structural invariants at quiescence, mirroring
// internal/core's checker over variable-length labels: labels strictly
// lengthen along paths with the correct branch bits, leaves hold the
// dummies at the extremes, leaf labels are strictly increasing in
// encoded order, and no reachable node is still flagged.
func (t *Trie[V]) Validate() error {
	if t.root.leaf || t.root.label.Len() != 0 {
		return fmt.Errorf("root must be internal with empty label")
	}
	var leaves []keys.Bitstring
	if err := t.validateNode(t.root, &leaves); err != nil {
		return err
	}
	if len(leaves) < 2 {
		return fmt.Errorf("dummies missing: %d leaves", len(leaves))
	}
	for i := 1; i < len(leaves); i++ {
		if leaves[i-1].Compare(leaves[i]) >= 0 {
			return fmt.Errorf("leaf labels out of order: %q before %q", leaves[i-1], leaves[i])
		}
	}
	if !leaves[0].Equal(keys.StrDummyMin()) {
		return fmt.Errorf("leftmost leaf %q is not the 00 dummy", leaves[0])
	}
	if !leaves[len(leaves)-1].Equal(keys.StrDummyMax()) {
		return fmt.Errorf("rightmost leaf %q is not the 111 dummy", leaves[len(leaves)-1])
	}
	return nil
}

func (t *Trie[V]) validateNode(n *node[V], leaves *[]keys.Bitstring) error {
	if n.info.Load().flagged() {
		return fmt.Errorf("reachable node %q flagged at quiescence", n.label)
	}
	if n.leaf {
		*leaves = append(*leaves, n.label)
		return nil
	}
	for idx := 0; idx < 2; idx++ {
		c := n.child[idx].Load()
		if c == nil {
			return fmt.Errorf("internal node %q has nil child %d", n.label, idx)
		}
		if c.label.Len() <= n.label.Len() {
			return fmt.Errorf("child label %q not longer than parent %q", c.label, n.label)
		}
		if !n.label.IsPrefixOf(c.label) {
			return fmt.Errorf("parent label %q not a prefix of child %q", n.label, c.label)
		}
		if c.label.Bit(n.label.Len()) != idx {
			return fmt.Errorf("child %d of %q has wrong branch bit", idx, n.label)
		}
		if err := t.validateNode(c, leaves); err != nil {
			return err
		}
	}
	return nil
}

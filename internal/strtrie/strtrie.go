// Package strtrie is the unbounded-length-key instantiation of the
// shared non-blocking update engine (internal/engine): the paper's
// Section VI extension, a non-blocking Patricia trie over arbitrary
// byte strings. Each key is encoded bit-wise as 01/10 pairs with a 11
// terminator (keys.EncodeString), making the encoded key space
// prefix-free, and the two dummy leaves hold 00 and 111, which bound all
// encoded keys.
//
// The descriptor/flag/help/unflag protocol lives entirely in
// internal/engine — this package contributes only the key layer (the
// Section VI encoding and its dummies) plus the byte-string API. The
// engine is instantiated with keys.Bitstring, whose unbounded length is
// the one semantic difference the paper calls out: searches are
// non-blocking but no longer wait-free, which is why this
// instantiation's registry entry does not claim WaitFreeRead while the
// fixed-width and Morton instantiations do.
//
// Empty keys are rejected: the paper's encoding maps the empty string to
// "11", which is a prefix of the 111 dummy and therefore cannot coexist
// with it in a Patricia trie.
package strtrie

import (
	"fmt"

	"nbtrie/internal/engine"
	"nbtrie/internal/keys"
)

// Trie is the variable-length-key Patricia trie. Keys are arbitrary
// non-empty byte strings; each leaf carries an unboxed value of type V
// (the set view instantiates V = struct{}).
type Trie[V any] struct {
	e *engine.Trie[keys.Bitstring, V]
}

// New returns an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{e: engine.New[keys.Bitstring, V](keys.StrDummyMin(), keys.StrDummyMax())}
}

func encode(k []byte) keys.Bitstring {
	if len(k) == 0 {
		panic("strtrie: empty keys are not supported (their Section VI encoding " +
			"collides with the 111 dummy)")
	}
	return keys.EncodeString(k)
}

// Contains reports whether k is in the set (read-only, lock-free).
func (t *Trie[V]) Contains(k []byte) bool { return t.e.Contains(encode(k)) }

// Insert adds k, returning false if already present.
func (t *Trie[V]) Insert(k []byte) bool { return t.e.Insert(encode(k)) }

// InsertValue is Insert with a value payload bound to the fresh leaf.
func (t *Trie[V]) InsertValue(k []byte, val V) bool { return t.e.InsertValue(encode(k), val) }

// Delete removes k, returning false if absent.
func (t *Trie[V]) Delete(k []byte) bool { return t.e.Delete(encode(k)) }

// Replace atomically removes old and inserts new; true iff old was
// present and new absent. The value payload travels with the key.
func (t *Trie[V]) Replace(old, new []byte) bool {
	return t.e.Replace(encode(old), encode(new))
}

// Load returns the value stored under k; like Contains it only reads
// shared memory and performs no CAS. The value comes back unboxed; the
// only allocation on the Load path is the key encoding itself.
func (t *Trie[V]) Load(k []byte) (V, bool) { return t.e.Load(encode(k)) }

// Store binds k to val, inserting or overwriting (lock-free upsert).
func (t *Trie[V]) Store(k []byte, val V) { t.e.Store(encode(k), val) }

// LoadOrStore returns the existing value for k if present (loaded true);
// otherwise it stores val and returns it (loaded false).
func (t *Trie[V]) LoadOrStore(k []byte, val V) (actual V, loaded bool) {
	return t.e.LoadOrStore(encode(k), val)
}

// CompareAndSwap swaps k's value from old to new when the stored value
// equals old (interface equality; old must be comparable).
func (t *Trie[V]) CompareAndSwap(k []byte, old, new V) bool {
	return t.e.CompareAndSwap(encode(k), old, new)
}

// CompareAndDelete deletes k when its stored value equals old (interface
// equality; old must be comparable).
func (t *Trie[V]) CompareAndDelete(k []byte, old V) bool {
	return t.e.CompareAndDelete(encode(k), old)
}

// Keys returns the decoded keys in encoded-key order; quiescent use
// only. Encoded order is lexicographic for keys that are not prefixes of
// one another; a proper prefix sorts after its extensions, because the
// Section VI terminator (11) is greater than either continuation pair
// (01, 10).
func (t *Trie[V]) Keys() [][]byte {
	var out [][]byte
	t.AllKV(func(k []byte, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// AllKV calls fn on every (key, value) pair in encoded-key order until
// fn returns false. Like Keys it is read-only: exact at quiescence,
// best-effort under concurrent updates.
func (t *Trie[V]) AllKV(fn func(k []byte, val V) bool) {
	t.e.AscendKV(keys.Bitstring{}, func(label keys.Bitstring, val V) bool {
		k, ok := keys.DecodeString(label)
		if !ok {
			return true // defensive: only dummies fail to decode, and the engine skips them
		}
		return fn(k, val)
	})
}

// AscendKV calls fn on every (key, value) pair whose encoded key is
// >= the encoding of from, in encoded-key order, until fn returns false.
// Subtrees entirely below from are pruned, so resuming an iteration from
// a midpoint costs one descent rather than a full scan. Same consistency
// contract as AllKV.
func (t *Trie[V]) AscendKV(from []byte, fn func(k []byte, val V) bool) {
	t.e.AscendKV(encode(from), func(label keys.Bitstring, val V) bool {
		k, ok := keys.DecodeString(label)
		if !ok {
			return true
		}
		return fn(k, val)
	})
}

// Size counts keys by traversal; quiescent use only.
func (t *Trie[V]) Size() int { return t.e.Size() }

// Len returns the number of keys from the engine's atomic counter:
// O(1), allocation-free, exact at quiescence, and at most the number of
// in-flight mutations stale under concurrency (see engine.Trie.Len).
func (t *Trie[V]) Len() int { return t.e.Len() }

// Validate checks the structural invariants at quiescence. The engine
// checks the key-agnostic invariants; the instantiation-specific check
// is that every leaf label decodes under the Section VI scheme or is a
// dummy.
func (t *Trie[V]) Validate() error {
	return t.e.Validate(func(label keys.Bitstring, leaf bool) error {
		if !leaf {
			return nil
		}
		if label.Equal(keys.StrDummyMin()) || label.Equal(keys.StrDummyMax()) {
			return nil
		}
		if _, ok := keys.DecodeString(label); !ok {
			return fmt.Errorf("leaf label %q is not a valid Section VI encoding", label)
		}
		return nil
	})
}

// Package strtrie implements the unbounded-length-key extension of the
// paper's Section VI: a non-blocking Patricia trie over arbitrary byte
// strings. Each key is encoded bit-wise as 01/10 pairs with a 11
// terminator (keys.EncodeString), making the encoded key space
// prefix-free, and the two dummy leaves hold 00 and 111, which bound all
// encoded keys. The algorithm is the same flag/help scheme as
// internal/core with one semantic difference the paper calls out:
// because key length is unbounded, searches are non-blocking but no
// longer wait-free.
//
// Empty keys are rejected: the paper's encoding maps the empty string to
// "11", which is a prefix of the 111 dummy and therefore cannot coexist
// with it in a Patricia trie.
package strtrie

import (
	"fmt"

	"sync/atomic"

	"nbtrie/internal/keys"
)

// node mirrors internal/core's node with Bitstring labels. val is the
// immutable value payload of a leaf (nil for internal nodes and for
// set-API leaves); value updates install fresh leaves through the child-
// CAS path, exactly as in internal/core, so no-ABA is preserved.
type node struct {
	label keys.Bitstring
	leaf  bool
	val   any
	info  atomic.Pointer[desc]
	child [2]atomic.Pointer[node]
}

func newLeaf(label keys.Bitstring) *node {
	return newLeafVal(label, nil)
}

func newLeafVal(label keys.Bitstring, val any) *node {
	n := &node{label: label, leaf: true, val: val}
	n.info.Store(newUnflag())
	return n
}

func newInternal(label keys.Bitstring, left, right *node) *node {
	n := &node{label: label}
	n.info.Store(newUnflag())
	n.child[0].Store(left)
	n.child[1].Store(right)
	return n
}

func copyNode(n *node) *node {
	if n.leaf {
		return newLeafVal(n.label, n.val)
	}
	return newInternal(n.label, n.child[0].Load(), n.child[1].Load())
}

type descKind uint8

const (
	kindUnflag descKind = iota + 1
	kindFlag
)

// desc is the Flag/Unflag Info object, identical in role to core's.
type desc struct {
	kind descKind

	flag     []*node
	oldInfo  []*desc
	unflag   []*node
	pNode    []*node
	oldChild []*node
	newChild []*node

	rmvLeaf  *node
	flagDone atomic.Bool
}

func newUnflag() *desc { return &desc{kind: kindUnflag} }

func (d *desc) flagged() bool { return d.kind == kindFlag }

// Trie is the variable-length-key Patricia trie. Keys are arbitrary
// non-empty byte strings.
type Trie struct {
	root *node
}

// New returns an empty trie.
func New() *Trie {
	return &Trie{root: newInternal(keys.Bitstring{},
		newLeaf(keys.StrDummyMin()),
		newLeaf(keys.StrDummyMax()))}
}

func encode(k []byte) keys.Bitstring {
	if len(k) == 0 {
		panic("strtrie: empty keys are not supported (their Section VI encoding " +
			"collides with the 111 dummy)")
	}
	return keys.EncodeString(k)
}

type searchResult struct {
	gp, p, node   *node
	gpInfo, pInfo *desc
	rmvd          bool
}

// search descends to v's location. The loop is bounded by v's encoded
// length plus churn from concurrent restructuring: lock-free, not
// wait-free (Section VI).
func (t *Trie) search(v keys.Bitstring) searchResult {
	var r searchResult
	n := t.root
	for !n.leaf && n.label.IsPrefixOf(v) && n.label.Len() < v.Len() {
		r.gp, r.gpInfo = r.p, r.pInfo
		r.p, r.pInfo = n, n.info.Load()
		n = r.p.child[v.Bit(r.p.label.Len())].Load()
	}
	r.node = n
	if n.leaf {
		r.rmvd = logicallyRemoved(n.info.Load())
	}
	return r
}

func logicallyRemoved(i *desc) bool {
	if !i.flagged() {
		return false
	}
	p, old := i.pNode[0], i.oldChild[0]
	return p.child[0].Load() != old && p.child[1].Load() != old
}

func keyInTrie(n *node, v keys.Bitstring, rmvd bool) bool {
	return n.leaf && n.label.Equal(v) && !rmvd
}

// Contains reports whether k is in the set (read-only, lock-free).
func (t *Trie) Contains(k []byte) bool {
	v := encode(k)
	r := t.search(v)
	return keyInTrie(r.node, v, r.rmvd)
}

// help is the core help routine over Bitstring nodes; see
// internal/core/update.go for the step-by-step commentary.
func (t *Trie) help(i *desc) bool {
	doChildCAS := true
	for j := 0; j < len(i.flag) && doChildCAS; j++ {
		n := i.flag[j]
		n.info.CompareAndSwap(i.oldInfo[j], i)
		doChildCAS = n.info.Load() == i
	}
	if doChildCAS {
		i.flagDone.Store(true)
		if i.rmvLeaf != nil {
			i.rmvLeaf.info.Store(i)
		}
		for j := 0; j < len(i.pNode); j++ {
			p, nc := i.pNode[j], i.newChild[j]
			k := nc.label.Bit(p.label.Len())
			p.child[k].CompareAndSwap(i.oldChild[j], nc)
		}
	}
	if i.flagDone.Load() {
		for j := len(i.unflag) - 1; j >= 0; j-- {
			i.unflag[j].info.CompareAndSwap(i, newUnflag())
		}
		return true
	}
	for j := len(i.flag) - 1; j >= 0; j-- {
		i.flag[j].info.CompareAndSwap(i, newUnflag())
	}
	return false
}

// newDesc validates, deduplicates and orders the flag set (newFlag).
func (t *Trie) newDesc(
	flag []*node, oldInfo []*desc, unflag []*node,
	pNode, oldChild, newChild []*node, rmvLeaf *node,
) *desc {
	for _, oi := range oldInfo {
		if oi.flagged() {
			t.help(oi)
			return nil
		}
	}
	for a := 0; a < len(flag); a++ {
		for b := a + 1; b < len(flag); b++ {
			if flag[a] == flag[b] && oldInfo[a] != oldInfo[b] {
				return nil
			}
		}
	}
	df := make([]*node, 0, len(flag))
	di := make([]*desc, 0, len(flag))
	for a, n := range flag {
		dup := false
		for b := 0; b < a; b++ {
			if flag[b] == n {
				dup = true
				break
			}
		}
		if !dup {
			df = append(df, n)
			di = append(di, oldInfo[a])
		}
	}
	du := make([]*node, 0, len(unflag))
	for a, n := range unflag {
		dup := false
		for b := 0; b < a; b++ {
			if unflag[b] == n {
				dup = true
				break
			}
		}
		if !dup {
			du = append(du, n)
		}
	}
	// Sort the flag set by label, permuting oldInfo alongside.
	for a := 1; a < len(df); a++ {
		for b := a; b > 0 && df[b].label.Compare(df[b-1].label) < 0; b-- {
			df[b], df[b-1] = df[b-1], df[b]
			di[b], di[b-1] = di[b-1], di[b]
		}
	}
	return &desc{
		kind: kindFlag, flag: df, oldInfo: di, unflag: du,
		pNode: pNode, oldChild: oldChild, newChild: newChild, rmvLeaf: rmvLeaf,
	}
}

// makeInternal is createNode: nil on prefix conflict (helping the given
// info first when it is a Flag).
func (t *Trie) makeInternal(n1, n2 *node, info *desc) *node {
	if n1.label.IsPrefixOf(n2.label) || n2.label.IsPrefixOf(n1.label) {
		if info != nil && info.flagged() {
			t.help(info)
		}
		return nil
	}
	cp := n1.label.CommonPrefix(n2.label)
	if n1.label.Bit(cp.Len()) == 0 {
		return newInternal(cp, n1, n2)
	}
	return newInternal(cp, n2, n1)
}

// Insert adds k, returning false if already present.
func (t *Trie) Insert(k []byte) bool {
	return t.InsertValue(k, nil)
}

// InsertValue is Insert with a value payload bound to the fresh leaf.
func (t *Trie) InsertValue(k []byte, val any) bool {
	v := encode(k)
	for {
		r := t.search(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if t.tryInsert(v, val, r) {
			return true
		}
	}
}

// tryInsert attempts one round of the insert protocol; false means
// re-search and retry.
func (t *Trie) tryInsert(v keys.Bitstring, val any, r searchResult) bool {
	n := r.node
	nodeInfo := n.info.Load()
	newNode := t.makeInternal(copyNode(n), newLeafVal(v, val), nodeInfo)
	if newNode == nil {
		return false
	}
	var i *desc
	if !n.leaf {
		i = t.newDesc(
			[]*node{r.p, n}, []*desc{r.pInfo, nodeInfo},
			[]*node{r.p},
			[]*node{r.p}, []*node{n}, []*node{newNode}, nil)
	} else {
		i = t.newDesc(
			[]*node{r.p}, []*desc{r.pInfo},
			[]*node{r.p},
			[]*node{r.p}, []*node{n}, []*node{newNode}, nil)
	}
	return i != nil && t.help(i)
}

// Delete removes k, returning false if absent.
func (t *Trie) Delete(k []byte) bool {
	v := encode(k)
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if t.tryDelete(v, r) {
			return true
		}
	}
}

// tryDelete attempts one round of the delete protocol; false means
// re-search and retry.
func (t *Trie) tryDelete(v keys.Bitstring, r searchResult) bool {
	sib := r.p.child[1-v.Bit(r.p.label.Len())].Load()
	if r.gp == nil {
		return false // only dummies sit directly under the root
	}
	i := t.newDesc(
		[]*node{r.gp, r.p}, []*desc{r.gpInfo, r.pInfo},
		[]*node{r.gp},
		[]*node{r.gp}, []*node{r.p}, []*node{sib}, nil)
	return i != nil && t.help(i)
}

// Load returns the value stored under k; like Contains it only reads
// shared memory and performs no CAS.
func (t *Trie) Load(k []byte) (any, bool) {
	v := encode(k)
	r := t.search(v)
	if !keyInTrie(r.node, v, r.rmvd) {
		return nil, false
	}
	return r.node.val, true
}

// Store binds k to val, inserting or overwriting (lock-free upsert).
func (t *Trie) Store(k []byte, val any) {
	v := encode(k)
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			if t.tryInsert(v, val, r) {
				return
			}
			continue
		}
		if t.tryOverwrite(v, val, r) {
			return
		}
	}
}

// LoadOrStore returns the existing value for k if present (loaded true);
// otherwise it stores val and returns it (loaded false).
func (t *Trie) LoadOrStore(k []byte, val any) (actual any, loaded bool) {
	v := encode(k)
	for {
		r := t.search(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return r.node.val, true
		}
		if t.tryInsert(v, val, r) {
			return val, false
		}
	}
}

// CompareAndSwap swaps k's value from old to new when the stored value
// equals old (interface equality; old must be comparable).
func (t *Trie) CompareAndSwap(k []byte, old, new any) bool {
	v := encode(k)
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if r.node.val != old {
			return false
		}
		if t.tryOverwrite(v, new, r) {
			return true
		}
	}
}

// CompareAndDelete deletes k when its stored value equals old (interface
// equality; old must be comparable).
func (t *Trie) CompareAndDelete(k []byte, old any) bool {
	v := encode(k)
	for {
		r := t.search(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if r.node.val != old {
			return false
		}
		if t.tryDelete(v, r) {
			return true
		}
	}
}

// tryOverwrite replaces the live leaf r.node with a fresh leaf carrying
// val — the descriptor shape of Replace's special case 1: flag the
// parent, one child CAS old leaf → new leaf.
func (t *Trie) tryOverwrite(v keys.Bitstring, val any, r searchResult) bool {
	i := t.newDesc(
		[]*node{r.p}, []*desc{r.pInfo},
		[]*node{r.p},
		[]*node{r.p}, []*node{r.node},
		[]*node{newLeafVal(v, val)}, nil)
	return i != nil && t.help(i)
}

// Replace atomically removes old and inserts new; the same general and
// special cases as internal/core's Replace (paper lines 42-71).
func (t *Trie) Replace(old, new []byte) bool {
	vd, vi := encode(old), encode(new)
	for {
		rd := t.search(vd)
		if !keyInTrie(rd.node, vd, rd.rmvd) {
			return false
		}
		ri := t.search(vi)
		if keyInTrie(ri.node, vi, ri.rmvd) {
			return false
		}
		nodeInfoI := ri.node.info.Load()
		sibD := rd.p.child[1-vd.Bit(rd.p.label.Len())].Load()

		var i *desc
		switch {
		case rd.gp != nil &&
			ri.node != rd.node && ri.node != rd.p && ri.node != rd.gp &&
			ri.p != rd.p:
			// General case: two child CASes, insert side first.
			newNodeI := t.makeInternal(copyNode(ri.node), newLeafVal(vi, rd.node.val), nodeInfoI)
			if newNodeI == nil {
				break
			}
			if !ri.node.leaf {
				i = t.newDesc(
					[]*node{rd.gp, rd.p, ri.p, ri.node},
					[]*desc{rd.gpInfo, rd.pInfo, ri.pInfo, nodeInfoI},
					[]*node{rd.gp, ri.p},
					[]*node{ri.p, rd.gp},
					[]*node{ri.node, rd.p},
					[]*node{newNodeI, sibD},
					rd.node)
			} else {
				i = t.newDesc(
					[]*node{rd.gp, rd.p, ri.p},
					[]*desc{rd.gpInfo, rd.pInfo, ri.pInfo},
					[]*node{rd.gp, ri.p},
					[]*node{ri.p, rd.gp},
					[]*node{ri.node, rd.p},
					[]*node{newNodeI, sibD},
					rd.node)
			}
		case ri.node == rd.node:
			i = t.newDesc(
				[]*node{rd.p}, []*desc{rd.pInfo},
				[]*node{rd.p},
				[]*node{rd.p}, []*node{ri.node},
				[]*node{newLeafVal(vi, rd.node.val)}, nil)
		case (ri.node == rd.p && ri.p == rd.gp) ||
			(rd.gp != nil && ri.p == rd.p):
			newNodeI := t.makeInternal(sibD, newLeafVal(vi, rd.node.val), sibD.info.Load())
			if newNodeI == nil {
				break
			}
			i = t.newDesc(
				[]*node{rd.gp, rd.p}, []*desc{rd.gpInfo, rd.pInfo},
				[]*node{rd.gp},
				[]*node{rd.gp}, []*node{rd.p},
				[]*node{newNodeI}, nil)
		case ri.node == rd.gp:
			pSibD := rd.gp.child[1-vd.Bit(rd.gp.label.Len())].Load()
			newChildI := t.makeInternal(sibD, pSibD, nil)
			if newChildI == nil {
				break
			}
			newNodeI := t.makeInternal(newChildI, newLeafVal(vi, rd.node.val), nil)
			if newNodeI == nil {
				break
			}
			i = t.newDesc(
				[]*node{ri.p, rd.gp, rd.p},
				[]*desc{ri.pInfo, rd.gpInfo, rd.pInfo},
				[]*node{ri.p},
				[]*node{ri.p}, []*node{ri.node},
				[]*node{newNodeI}, nil)
		}
		if i != nil && t.help(i) {
			return true
		}
	}
}

// Keys returns the decoded keys in encoded-key order; quiescent use
// only. Encoded order is lexicographic for keys that are not prefixes of
// one another; a proper prefix sorts after its extensions, because the
// Section VI terminator (11) is greater than either continuation pair
// (01, 10).
func (t *Trie) Keys() [][]byte {
	var out [][]byte
	t.AllKV(func(k []byte, _ any) bool {
		out = append(out, k)
		return true
	})
	return out
}

// AllKV calls fn on every (key, value) pair in encoded-key order until
// fn returns false. Like Keys it is read-only: exact at quiescence,
// best-effort under concurrent updates.
func (t *Trie) AllKV(fn func(k []byte, val any) bool) {
	t.walkKV(t.root, fn)
}

func (t *Trie) walkKV(n *node, fn func(k []byte, val any) bool) bool {
	if n.leaf {
		if k, ok := keys.DecodeString(n.label); ok && !logicallyRemoved(n.info.Load()) {
			return fn(k, n.val)
		}
		return true
	}
	return t.walkKV(n.child[0].Load(), fn) && t.walkKV(n.child[1].Load(), fn)
}

// Size counts keys; quiescent use only.
func (t *Trie) Size() int { return len(t.Keys()) }

// Validate checks the structural invariants at quiescence, mirroring
// internal/core's checker over variable-length labels: labels strictly
// lengthen along paths with the correct branch bits, leaves hold the
// dummies at the extremes, leaf labels are strictly increasing in
// encoded order, and no reachable node is still flagged.
func (t *Trie) Validate() error {
	if t.root.leaf || t.root.label.Len() != 0 {
		return fmt.Errorf("root must be internal with empty label")
	}
	var leaves []keys.Bitstring
	if err := t.validateNode(t.root, &leaves); err != nil {
		return err
	}
	if len(leaves) < 2 {
		return fmt.Errorf("dummies missing: %d leaves", len(leaves))
	}
	for i := 1; i < len(leaves); i++ {
		if leaves[i-1].Compare(leaves[i]) >= 0 {
			return fmt.Errorf("leaf labels out of order: %q before %q", leaves[i-1], leaves[i])
		}
	}
	if !leaves[0].Equal(keys.StrDummyMin()) {
		return fmt.Errorf("leftmost leaf %q is not the 00 dummy", leaves[0])
	}
	if !leaves[len(leaves)-1].Equal(keys.StrDummyMax()) {
		return fmt.Errorf("rightmost leaf %q is not the 111 dummy", leaves[len(leaves)-1])
	}
	return nil
}

func (t *Trie) validateNode(n *node, leaves *[]keys.Bitstring) error {
	if n.info.Load().flagged() {
		return fmt.Errorf("reachable node %q flagged at quiescence", n.label)
	}
	if n.leaf {
		*leaves = append(*leaves, n.label)
		return nil
	}
	for idx := 0; idx < 2; idx++ {
		c := n.child[idx].Load()
		if c == nil {
			return fmt.Errorf("internal node %q has nil child %d", n.label, idx)
		}
		if c.label.Len() <= n.label.Len() {
			return fmt.Errorf("child label %q not longer than parent %q", c.label, n.label)
		}
		if !n.label.IsPrefixOf(c.label) {
			return fmt.Errorf("parent label %q not a prefix of child %q", n.label, c.label)
		}
		if c.label.Bit(n.label.Len()) != idx {
			return fmt.Errorf("child %d of %q has wrong branch bit", idx, n.label)
		}
		if err := t.validateNode(c, leaves); err != nil {
			return err
		}
	}
	return nil
}

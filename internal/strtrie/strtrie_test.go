package strtrie

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"nbtrie/internal/settest"
)

// stringAdapter drives the byte-string trie through the uint64-based
// conformance kit by printing keys in decimal (order differs from
// numeric, which the kit never relies on).
type stringAdapter struct{ t *Trie[any] }

func key(k uint64) []byte { return []byte(fmt.Sprintf("%020d", k)) }

func (a stringAdapter) Insert(k uint64) bool   { return a.t.Insert(key(k)) }
func (a stringAdapter) Delete(k uint64) bool   { return a.t.Delete(key(k)) }
func (a stringAdapter) Contains(k uint64) bool { return a.t.Contains(key(k)) }
func (a stringAdapter) Replace(old, new uint64) bool {
	return a.t.Replace(key(old), key(new))
}

func TestConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return stringAdapter{t: New[any]()} })
}

func TestVariableLengthKeys(t *testing.T) {
	tr := New[any]()
	ks := [][]byte{
		[]byte("a"), []byte("ab"), []byte("abc"), []byte("b"),
		[]byte("zebra"), []byte("z"), {0}, {0, 0}, {0xff, 0xff, 0xff, 0xff},
	}
	for _, k := range ks {
		if !tr.Insert(k) {
			t.Fatalf("Insert(%q) failed", k)
		}
	}
	for _, k := range ks {
		if !tr.Contains(k) {
			t.Fatalf("Contains(%q) = false", k)
		}
		if tr.Insert(k) {
			t.Fatalf("duplicate Insert(%q) succeeded", k)
		}
	}
	// Prefix relations between source keys must not confuse membership.
	if tr.Contains([]byte("abcd")) || tr.Contains([]byte("zeb")) {
		t.Error("prefix/extension of a stored key reported present")
	}
	if got := tr.Size(); got != len(ks) {
		t.Fatalf("Size() = %d, want %d", got, len(ks))
	}
	for _, k := range ks {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%q) failed", k)
		}
	}
	if got := tr.Size(); got != 0 {
		t.Fatalf("Size() = %d after draining", got)
	}
}

func TestKeysEncodedOrder(t *testing.T) {
	// Prefix-free word sets come out in plain lexicographic order.
	tr := New[any]()
	words := []string{"pear", "apple", "banana", "cherry", "zebra"}
	for _, w := range words {
		tr.Insert([]byte(w))
	}
	got := tr.Keys()
	want := make([]string, len(words))
	copy(want, words)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("Keys() returned %d keys", len(got))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("Keys()[%d] = %q, want %q", i, got[i], want[i])
		}
	}

	// The Section VI terminator sorts a proper prefix after its
	// extensions (11 > 01/10); pin that documented quirk.
	tr2 := New[any]()
	tr2.Insert([]byte("app"))
	tr2.Insert([]byte("applesauce"))
	got2 := tr2.Keys()
	if string(got2[0]) != "applesauce" || string(got2[1]) != "app" {
		t.Fatalf("encoded order of prefix pair = %q", got2)
	}
}

func TestReplaceAcrossLengths(t *testing.T) {
	tr := New[any]()
	tr.Insert([]byte("short"))
	if !tr.Replace([]byte("short"), []byte("a much longer key than before")) {
		t.Fatal("replace to longer key failed")
	}
	if tr.Contains([]byte("short")) || !tr.Contains([]byte("a much longer key than before")) {
		t.Fatal("replace semantics wrong")
	}
}

func TestEmptyKeyPanics(t *testing.T) {
	tr := New[any]()
	defer func() {
		if recover() == nil {
			t.Error("empty key must panic (encoding collides with the 111 dummy)")
		}
	}()
	tr.Insert(nil)
}

func TestQuickRandomByteKeys(t *testing.T) {
	tr := New[any]()
	oracle := make(map[string]bool)
	f := func(k []byte, insert bool) bool {
		if len(k) == 0 {
			return true
		}
		if insert {
			want := !oracle[string(k)]
			if tr.Insert(k) != want {
				return false
			}
			oracle[string(k)] = true
		} else {
			want := oracle[string(k)]
			if tr.Delete(k) != want {
				return false
			}
			delete(oracle, string(k))
		}
		return tr.Contains(k) == oracle[string(k)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReplaceConservation(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	tr := New[any]()
	const initial = 100
	for i := 0; i < initial; i++ {
		tr.Insert([]byte(fmt.Sprintf("task-%03d", i*7)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 4000; i++ {
				from := []byte(fmt.Sprintf("task-%03d", rng.Intn(1000)))
				to := []byte(fmt.Sprintf("task-%03d", rng.Intn(1000)))
				tr.Replace(from, to)
			}
		}(int64(g))
	}
	wg.Wait()
	if got := tr.Size(); got != initial {
		t.Fatalf("Size() = %d after replace-only churn, want %d", got, initial)
	}
}

func TestValidateAfterChurn(t *testing.T) {
	tr := New[any]()
	if err := tr.Validate(); err != nil {
		t.Fatalf("fresh trie: %v", err)
	}
	rng := rand.New(rand.NewSource(8))
	live := make(map[string]bool)
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("key-%d", rng.Intn(500)))
		if rng.Intn(2) == 0 {
			tr.Insert(k)
			live[string(k)] = true
		} else {
			tr.Delete(k)
			delete(live, string(k))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	if tr.Size() != len(live) {
		t.Fatalf("Size() = %d, oracle %d", tr.Size(), len(live))
	}
}

// (Validate corruption-detection is tested white-box in internal/engine,
// which owns the node structure shared by every instantiation.)

func TestLongKeysCrossWordBoundaries(t *testing.T) {
	tr := New[any]()
	long := bytes.Repeat([]byte("x"), 100) // 1602 encoded bits
	tr.Insert(long)
	if !tr.Contains(long) {
		t.Fatal("long key lost")
	}
	almost := bytes.Repeat([]byte("x"), 99)
	if tr.Contains(almost) {
		t.Fatal("prefix of long key misreported")
	}
}

func TestMapOperations(t *testing.T) {
	tr := New[any]()
	k := []byte("alpha")
	if _, ok := tr.Load(k); ok {
		t.Error("Load on empty trie must miss")
	}
	tr.Store(k, 1)
	if v, ok := tr.Load(k); !ok || v != 1 {
		t.Errorf("Load = %v,%v", v, ok)
	}
	tr.Store(k, 2) // overwrite
	if v, _ := tr.Load(k); v != 2 {
		t.Errorf("Load after overwrite = %v", v)
	}
	if v, loaded := tr.LoadOrStore(k, 9); !loaded || v != 2 {
		t.Errorf("LoadOrStore(present) = %v,%v", v, loaded)
	}
	if v, loaded := tr.LoadOrStore([]byte("beta"), 9); loaded || v != 9 {
		t.Errorf("LoadOrStore(absent) = %v,%v", v, loaded)
	}
	if tr.CompareAndSwap(k, 1, 3) || !tr.CompareAndSwap(k, 2, 3) {
		t.Error("CompareAndSwap semantics wrong")
	}
	if tr.CompareAndDelete(k, 99) || !tr.CompareAndDelete(k, 3) {
		t.Error("CompareAndDelete semantics wrong")
	}
	if tr.Contains(k) {
		t.Error("key survived CompareAndDelete")
	}
	// Replace carries the value to the new key.
	if !tr.Replace([]byte("beta"), []byte("gamma")) {
		t.Error("Replace failed")
	}
	if v, ok := tr.Load([]byte("gamma")); !ok || v != 9 {
		t.Errorf("Replace dropped the value: %v,%v", v, ok)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAllKV(t *testing.T) {
	tr := New[any]()
	tr.Store([]byte("a"), 1)
	tr.Store([]byte("b"), 2)
	got := map[string]any{}
	tr.AllKV(func(k []byte, v any) bool {
		got[string(k)] = v
		return true
	})
	if len(got) != 2 || got["a"] != 1 || got["b"] != 2 {
		t.Errorf("AllKV = %v", got)
	}
	n := 0
	tr.AllKV(func([]byte, any) bool { n++; return false })
	if n != 1 {
		t.Errorf("AllKV early stop visited %d", n)
	}
}

func TestConcurrentMapOps(t *testing.T) {
	tr := New[any]()
	keys := [][]byte{[]byte("x"), []byte("xy"), []byte("xyz"), []byte("y")}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := keys[(g+i)%len(keys)]
				switch i % 3 {
				case 0:
					tr.Store(k, g)
				case 1:
					if v, ok := tr.Load(k); ok {
						if n, isInt := v.(int); !isInt || n < 0 || n >= goroutines {
							panic("torn value observed")
						}
					}
				case 2:
					if v, ok := tr.Load(k); ok {
						tr.CompareAndDelete(k, v)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

package strtrie

import (
	"nbtrie/internal/engine"
	"nbtrie/internal/keys"
)

// Snapshot is a read-only point-in-time view of the byte-string trie,
// obtained in O(1) from Trie.Snapshot. Frozen after creation: all
// methods are safe for unrestricted concurrent use and answer with the
// state at the snapshot's linearization point.
type Snapshot[V any] struct {
	s *engine.Snapshot[keys.Bitstring, V]
}

// Snapshot returns a frozen view of the trie at the moment of the call,
// in O(1) time and allocation independent of the trie's size.
func (t *Trie[V]) Snapshot() *Snapshot[V] {
	return &Snapshot[V]{s: t.e.Snapshot()}
}

// Len returns the number of keys at the snapshot point (exact).
func (s *Snapshot[V]) Len() int { return s.s.Len() }

// Contains reports whether k was in the set at the snapshot point.
func (s *Snapshot[V]) Contains(k []byte) bool { return s.s.Contains(encode(k)) }

// Load returns the value bound to k at the snapshot point.
func (s *Snapshot[V]) Load(k []byte) (V, bool) { return s.s.Load(encode(k)) }

// AllKV calls fn on every (key, value) pair live at the snapshot point,
// in encoded-key order, until fn returns false. A true consistent cut:
// the structure cannot change mid-walk.
func (s *Snapshot[V]) AllKV(fn func(k []byte, val V) bool) {
	s.s.AscendKV(keys.Bitstring{}, func(label keys.Bitstring, val V) bool {
		k, ok := keys.DecodeString(label)
		if !ok {
			return true // defensive: only dummies fail to decode
		}
		return fn(k, val)
	})
}

// AscendKV is AllKV starting at the encoding of from; from must be
// non-empty like every trie key.
func (s *Snapshot[V]) AscendKV(from []byte, fn func(k []byte, val V) bool) {
	s.s.AscendKV(encode(from), func(label keys.Bitstring, val V) bool {
		k, ok := keys.DecodeString(label)
		if !ok {
			return true
		}
		return fn(k, val)
	})
}

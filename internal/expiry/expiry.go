// Package expiry is nbtried's key-expiry subsystem: a secondary,
// deadline-ordered index over the primary key space, built from the same
// non-blocking Patricia-trie engine as the primary map and kept loosely
// consistent with it.
//
// Two tries make up an Index:
//
//   - entries, a sharded trie mapping primary key → Entry{deadline, seq},
//     sharded identically to the primary map so a key's TTL lives on the
//     same shard partition as its value (one extra wait-free descent on
//     the read path, no cross-shard traffic);
//   - byDeadline, a single ordered trie mapping deadline<<20|seq →
//     primary key. Packing the deadline into the top bits makes trie
//     order deadline order, so "everything due by now" is one Ascend
//     range scan and "when must the reaper next wake" is one Min — the
//     ordered-traversal dividend of the Patricia trie (the paper's
//     structure keeps keys in bit order for free; a hash index would
//     need a separate heap).
//
// The seq suffix (20 bits, from a global counter) makes index keys
// unique even when many keys share one deadline millisecond; 43 bits
// remain for the deadline, which covers Unix-milliseconds past year
// 2500.
//
// Loose consistency, precisely: entries is authoritative; byDeadline is
// a hint. A racing re-EXPIRE can briefly leave a byDeadline node whose
// entry has moved on — the reaper detects the mismatch (the entry it
// loads no longer matches the node's deadline) and discards the stale
// node without touching the key. Every purge is therefore
// entry-conditional (CompareAndDelete on the Entry, value-conditional
// DeleteFunc on the primary), never a blind delete.
package expiry

import (
	"math"
	"sync/atomic"

	"nbtrie/internal/core"
	"nbtrie/internal/sharded"
)

const (
	// seqBits is the width of the uniquifying suffix in byDeadline keys.
	seqBits = 20
	seqMask = (1 << seqBits) - 1

	// idxWidth is byDeadline's key width: the full 63 bits the engine
	// offers, split 43 deadline / 20 seq.
	idxWidth = 63

	// MaxDeadlineMS is the largest representable absolute deadline
	// (Unix milliseconds): 2^43-1 ms ≈ year 2248. Later deadlines are
	// clamped here — indistinguishable from "never" on any real horizon.
	MaxDeadlineMS = int64(1)<<(idxWidth-seqBits) - 1
)

// Entry is one key's expiry record: the absolute deadline and the
// uniquifying sequence number its byDeadline node carries. Entry is
// comparable, so the conditional trie operations (CompareAndDelete) work
// on it directly — an Entry value identifies one specific arming of one
// key's TTL.
type Entry struct {
	DeadlineMS int64
	Seq        uint64
}

// idxKey packs the entry into its byDeadline key.
func (e Entry) idxKey() uint64 {
	return uint64(e.DeadlineMS)<<seqBits | e.Seq
}

// Index is the deadline-ordered expiry index. All methods are safe for
// unrestricted concurrent use; consistency between the index and the
// primary map it annotates is the caller's protocol (see the package
// comment and DESIGN.md §12).
type Index struct {
	entries    *sharded.Trie[Entry]
	byDeadline *core.Trie[uint64]
	seq        atomic.Uint64

	// Reaper coordination: armed holds the deadline the reaper is
	// currently sleeping toward (MaxInt64 when idle scanning); Set sends
	// on wake — capacity 1, non-blocking — when it installs an earlier
	// deadline, so the reaper can never sleep past work.
	armed atomic.Int64
	wake  chan struct{}

	expired atomic.Uint64
	passes  atomic.Uint64
}

// New returns an empty index for primary keys of the given width,
// sharded shardCount ways (same constraints as the primary map — use the
// primary's width and shard count so the partition lines up).
func New(width uint32, shardCount int) (*Index, error) {
	entries, err := sharded.New[Entry](width, shardCount)
	if err != nil {
		return nil, err
	}
	byDeadline, err := core.New(idxWidth, core.WithSpan[uint64](4))
	if err != nil {
		return nil, err
	}
	x := &Index{entries: entries, byDeadline: byDeadline, wake: make(chan struct{}, 1)}
	x.armed.Store(math.MaxInt64)
	return x, nil
}

// setRetryLap bounds how many consecutive seq-collision retries Set
// makes at one millisecond before degrading to a neighboring one: a
// full lap of the suffix space in production (every slot provably
// probed); tests lower it to exercise the exhaustion path without
// arming 2^20 keys.
var setRetryLap = seqMask

// clampDeadline forces a deadline into the representable range.
func clampDeadline(ms int64) int64 {
	if ms < 0 {
		return 0
	}
	if ms > MaxDeadlineMS {
		return MaxDeadlineMS
	}
	return ms
}

// Set arms (or re-arms) k's deadline. The byDeadline node is inserted
// before the entry is published, so the reaper can never observe an
// entry without a node to find it by; the previous arming's node, if
// any, is removed afterwards (on a lost race it survives as a stale node
// for the reaper to discard). Finally the reaper is woken if the new
// deadline is earlier than what it is sleeping toward. It returns the
// Entry now in force; its deadline can differ from the requested one by
// the representable-range clamp or, when every seq slot of a
// millisecond is occupied, by the neighboring-millisecond fallback.
func (x *Index) Set(k uint64, deadlineMS int64) Entry {
	deadlineMS = clampDeadline(deadlineMS)
	old, had := x.entries.Load(k)
	e := Entry{DeadlineMS: deadlineMS}
	down := false
	for tries := 0; ; tries++ {
		e.Seq = x.seq.Add(1) & seqMask
		if x.byDeadline.InsertValue(e.idxKey(), k) {
			break
		}
		// Seq collision after 2^20 wraps at one millisecond: take the
		// next counter value and retry. If a full lap finds every seq
		// slot for this millisecond occupied (>2^20 keys armed at one
		// deadline — a mass restore or bulk EXPIREAT), degrade by one
		// millisecond instead of spinning forever: prefer later (firing
		// a hair late is invisible), walk earlier once the clamp ceiling
		// is hit so the search still terminates.
		if tries >= setRetryLap {
			if down || e.DeadlineMS >= MaxDeadlineMS {
				down = true
				e.DeadlineMS--
			} else {
				e.DeadlineMS++
			}
			tries = -1
		}
	}
	x.entries.Store(k, e)
	if had {
		x.byDeadline.CompareAndDelete(old.idxKey(), k)
	}
	if e.DeadlineMS < x.armed.Load() {
		x.notify()
	}
	return e
}

// Clear removes k's deadline (PERSIST, or a plain SET overwriting a
// TTL'd key), returning true iff an arming was removed.
func (x *Index) Clear(k uint64) bool {
	for {
		e, ok := x.entries.Load(k)
		if !ok {
			return false
		}
		if x.entries.CompareAndDelete(k, e) {
			x.byDeadline.CompareAndDelete(e.idxKey(), k)
			return true
		}
		// Lost a race with a concurrent Set/Clear of the same key; the
		// authoritative entry changed under us — reload and retry.
	}
}

// Lookup returns k's current arming, if any. Wait-free, allocation-free
// (one sharded-trie descent): this is the read-path check.
func (x *Index) Lookup(k uint64) (Entry, bool) {
	return x.entries.Load(k)
}

// Remove deletes k's arming only if it is still exactly e — the
// conditional half of a purge. Returns true iff the entry was removed by
// this call. The byDeadline node is removed best-effort either way.
func (x *Index) Remove(k uint64, e Entry) bool {
	if !x.entries.CompareAndDelete(k, e) {
		return false
	}
	x.byDeadline.CompareAndDelete(e.idxKey(), k)
	return true
}

// Earliest returns the soonest armed deadline, if any arming exists.
// Stale nodes can make it report a deadline whose arming has moved on —
// harmless, the reaper's scan discards them.
func (x *Index) Earliest() (deadlineMS int64, ok bool) {
	idx, ok := x.byDeadline.Min()
	if !ok {
		return 0, false
	}
	return int64(idx >> seqBits), true
}

// Arm records the deadline the reaper is about to sleep toward. Calling
// Arm(math.MaxInt64) before scanning for the next deadline closes the
// missed-wakeup window: any Set landing after that store sees an
// "infinitely late" armed value and notifies.
func (x *Index) Arm(deadlineMS int64) { x.armed.Store(deadlineMS) }

// Wake is the reaper's wakeup channel: capacity 1, signalled (never
// blocking) whenever a deadline earlier than the armed one is installed.
func (x *Index) Wake() <-chan struct{} { return x.wake }

func (x *Index) notify() {
	select {
	case x.wake <- struct{}{}:
	default:
	}
}

// Reap scans everything due at or before nowMS in deadline order. For
// each candidate whose arming still matches its node, purge is invoked
// with the key and its Entry; purge owns the actual removal protocol
// (value-conditional primary delete, then Remove) and reports whether it
// expired the key. Nodes whose arming moved on are discarded. Reap
// returns the number of keys purge reported expired; it also counts one
// reaper pass.
func (x *Index) Reap(nowMS int64, purge func(k uint64, e Entry) bool) int {
	x.passes.Add(1)
	limit := uint64(clampDeadline(nowMS))<<seqBits | seqMask
	type cand struct{ idx, key uint64 }
	var cands []cand
	x.byDeadline.AscendKV(0, func(idx uint64, key uint64) bool {
		if idx > limit {
			return false
		}
		cands = append(cands, cand{idx, key})
		return true
	})
	n := 0
	for _, c := range cands {
		e, ok := x.entries.Load(c.key)
		if !ok || e.idxKey() != c.idx {
			// Stale node: the arming it described was cleared or
			// replaced. Drop the node; the key is not touched.
			x.byDeadline.CompareAndDelete(c.idx, c.key)
			continue
		}
		if purge(c.key, e) {
			n++
		}
		// purge's Remove already dropped the node on success; on a lost
		// race (concurrent re-arm) this conditional delete is a no-op
		// for the new arming and cleanup for the old.
		x.byDeadline.CompareAndDelete(c.idx, c.key)
	}
	return n
}

// NoteExpired counts a key expired (lazy purge or reaper purge); it
// feeds INFO's expired_keys.
func (x *Index) NoteExpired() { x.expired.Add(1) }

// Stats returns the lifetime counters: keys expired and reaper passes.
func (x *Index) Stats() (expired, passes uint64) {
	return x.expired.Load(), x.passes.Load()
}

// Len reports the number of armed keys (per-shard-exact counter sum,
// same contract as the primary map's Len).
func (x *Index) Len() int { return x.entries.Len() }

// Snapshot returns a frozen view of the armings — an O(shards) cut of
// the entries trie, taken by the server under its persistence gate next
// to the primary snapshot so dumps see one consistent (value, deadline)
// cut per key.
func (x *Index) Snapshot() *Snapshot {
	return &Snapshot{s: x.entries.Snapshot()}
}

// Snapshot is a point-in-time view of the index's armings.
type Snapshot struct {
	s *sharded.Snapshot[Entry]
}

// DeadlineMS returns k's absolute deadline in the cut, 0 when k had no
// TTL at the cut.
func (s *Snapshot) DeadlineMS(k uint64) int64 {
	e, ok := s.s.Load(k)
	if !ok {
		return 0
	}
	return e.DeadlineMS
}

package expiry

import (
	"math"
	"sync"
	"testing"
)

func newIndex(t testing.TB) *Index {
	t.Helper()
	x, err := New(16, 4)
	if err != nil {
		t.Fatalf("New(16, 4): %v", err)
	}
	return x
}

func TestSetLookupClear(t *testing.T) {
	x := newIndex(t)
	if _, ok := x.Lookup(7); ok {
		t.Fatal("Lookup on empty index")
	}
	e := x.Set(7, 1000)
	if e.DeadlineMS != 1000 {
		t.Fatalf("Set returned deadline %d", e.DeadlineMS)
	}
	got, ok := x.Lookup(7)
	if !ok || got != e {
		t.Fatalf("Lookup = %+v, %v; want %+v", got, ok, e)
	}
	// Re-arm: the new entry replaces the old, old node cleaned up.
	e2 := x.Set(7, 2000)
	if got, _ := x.Lookup(7); got != e2 {
		t.Fatalf("Lookup after re-arm = %+v, want %+v", got, e2)
	}
	if d, ok := x.Earliest(); !ok || d != 2000 {
		t.Fatalf("Earliest after re-arm = %d, %v (stale node survived?)", d, ok)
	}
	if !x.Clear(7) {
		t.Fatal("Clear found nothing")
	}
	if x.Clear(7) {
		t.Fatal("second Clear succeeded")
	}
	if _, ok := x.Earliest(); ok {
		t.Fatal("Earliest nonempty after Clear")
	}
	if x.Len() != 0 {
		t.Fatalf("Len = %d", x.Len())
	}
}

func TestRemoveIsConditional(t *testing.T) {
	x := newIndex(t)
	e1 := x.Set(3, 100)
	e2 := x.Set(3, 200) // e1 is now a stale identity
	if x.Remove(3, e1) {
		t.Fatal("Remove succeeded with a superseded entry")
	}
	if got, ok := x.Lookup(3); !ok || got != e2 {
		t.Fatalf("stale Remove disturbed the live arming: %+v, %v", got, ok)
	}
	if !x.Remove(3, e2) {
		t.Fatal("Remove with the live entry failed")
	}
	if _, ok := x.Lookup(3); ok {
		t.Fatal("arming survived Remove")
	}
}

func TestEarliestOrdering(t *testing.T) {
	x := newIndex(t)
	x.Set(1, 500)
	x.Set(2, 100)
	x.Set(3, 900)
	if d, ok := x.Earliest(); !ok || d != 100 {
		t.Fatalf("Earliest = %d, %v; want 100", d, ok)
	}
	x.Clear(2)
	if d, ok := x.Earliest(); !ok || d != 500 {
		t.Fatalf("Earliest after clearing the min = %d, %v; want 500", d, ok)
	}
}

func TestClamping(t *testing.T) {
	x := newIndex(t)
	if e := x.Set(1, -50); e.DeadlineMS != 0 {
		t.Fatalf("negative deadline clamped to %d, want 0", e.DeadlineMS)
	}
	if e := x.Set(2, math.MaxInt64); e.DeadlineMS != MaxDeadlineMS {
		t.Fatalf("huge deadline clamped to %d, want %d", e.DeadlineMS, MaxDeadlineMS)
	}
	if d, ok := x.Earliest(); !ok || d != 0 {
		t.Fatalf("Earliest = %d, %v", d, ok)
	}
}

// TestSetExhaustedMillisecond arms a key at a deadline whose seq slot
// space is already occupied — a mass restore or bulk EXPIREAT aimed at
// one deadline: Set must terminate by degrading to a neighboring
// millisecond instead of retrying the exhausted slot space forever.
// The lap bound is lowered and the colliding byDeadline nodes planted
// directly (a fresh index's seq counter starts at 0, so Set probes
// seqs 1, 2, 3, ...); exhausting the real 2^20-slot space exercises the
// identical loop at ~2M trie ops per case.
func TestSetExhaustedMillisecond(t *testing.T) {
	const lap = 8
	defer func(orig int) { setRetryLap = orig }(setRetryLap)
	setRetryLap = lap

	plant := func(t *testing.T, x *Index, d int64) {
		t.Helper()
		for seq := uint64(1); seq <= lap+1; seq++ {
			if !x.byDeadline.InsertValue(uint64(d)<<seqBits|seq, ^uint64(0)) {
				t.Fatalf("planting seq %d failed", seq)
			}
		}
	}

	t.Run("degrades later", func(t *testing.T) {
		x := newIndex(t)
		const d = int64(5000)
		plant(t, x, d)
		e := x.Set(9, d)
		if e.DeadlineMS != d+1 {
			t.Fatalf("Set on an exhausted millisecond landed at %d, want %d", e.DeadlineMS, d+1)
		}
		if got, ok := x.Lookup(9); !ok || got != e {
			t.Fatalf("Lookup = %+v, %v; want %+v", got, ok, e)
		}
	})

	t.Run("walks earlier at the clamp ceiling", func(t *testing.T) {
		x := newIndex(t)
		plant(t, x, MaxDeadlineMS)
		e := x.Set(9, math.MaxInt64) // clamps to MaxDeadlineMS, which is full
		if e.DeadlineMS != MaxDeadlineMS-1 {
			t.Fatalf("Set at the exhausted ceiling landed at %d, want %d", e.DeadlineMS, MaxDeadlineMS-1)
		}
	})
}

// purgeInto returns a Reap purge callback implementing the server's
// protocol against a plain map primary: delete from the primary, then
// conditionally Remove the arming.
func purgeInto(x *Index, primary map[uint64]bool) func(k uint64, e Entry) bool {
	return func(k uint64, e Entry) bool {
		delete(primary, k)
		return x.Remove(k, e)
	}
}

func TestReap(t *testing.T) {
	x := newIndex(t)
	primary := map[uint64]bool{10: true, 11: true, 12: true, 13: true}
	x.Set(10, 100)
	x.Set(11, 200)
	x.Set(12, 200) // same millisecond: seq disambiguates
	x.Set(13, 300)

	if n := x.Reap(50, purgeInto(x, primary)); n != 0 {
		t.Fatalf("Reap(50) purged %d", n)
	}
	// The limit is inclusive: everything due AT now expires too.
	if n := x.Reap(200, purgeInto(x, primary)); n != 3 {
		t.Fatalf("Reap(200) purged %d, want 3", n)
	}
	if !primary[13] || len(primary) != 1 {
		t.Fatalf("primary after reap = %v", primary)
	}
	if d, ok := x.Earliest(); !ok || d != 300 {
		t.Fatalf("Earliest after reap = %d, %v", d, ok)
	}
	expired, passes := x.Stats()
	if expired != 0 { // Reap itself doesn't count; the server's purge calls NoteExpired
		t.Fatalf("expired = %d before any NoteExpired", expired)
	}
	if passes != 2 {
		t.Fatalf("passes = %d, want 2", passes)
	}
}

// TestReapSkipsRearmed: a key re-armed to a later deadline between the
// scan and the purge must not be purged via its old node — the entry
// check detects the stale node and discards it without touching the key.
func TestReapSkipsRearmed(t *testing.T) {
	x := newIndex(t)
	primary := map[uint64]bool{5: true}
	e1 := x.Set(5, 100)
	// Simulate the race: the old byDeadline node survives (re-insert it
	// as a stale node the way a lost CAD race would), while the entry
	// moves on to a later deadline.
	x.byDeadline.InsertValue(e1.idxKey(), 5)
	x.Set(5, 99999)

	if n := x.Reap(200, purgeInto(x, primary)); n != 0 {
		t.Fatalf("Reap purged %d through a stale node", n)
	}
	if !primary[5] {
		t.Fatal("re-armed key was purged")
	}
	if _, ok := x.Lookup(5); !ok {
		t.Fatal("live arming lost")
	}
	// The stale node was discarded: the earliest deadline is the live one.
	if d, ok := x.Earliest(); !ok || d != 99999 {
		t.Fatalf("Earliest = %d, %v; stale node survived the reap", d, ok)
	}
}

func TestWakeSignalling(t *testing.T) {
	x := newIndex(t)
	x.Arm(5000) // reaper sleeping toward 5000
	x.Set(1, 9000)
	select {
	case <-x.Wake():
		t.Fatal("later deadline woke the reaper")
	default:
	}
	x.Set(2, 1000)
	select {
	case <-x.Wake():
	default:
		t.Fatal("earlier deadline did not wake the reaper")
	}
}

// TestConcurrentSetClearRemove hammers one key from many goroutines;
// the invariant is convergence — after the dust settles the entry and
// node views agree — plus no panics/races under -race.
func TestConcurrentSetClearRemove(t *testing.T) {
	x := newIndex(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(i % 16)
				switch g % 3 {
				case 0:
					x.Set(k, int64(1000+i))
				case 1:
					x.Clear(k)
				case 2:
					if e, ok := x.Lookup(k); ok {
						x.Remove(k, e)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Quiescent convergence: one final reap far in the future purges
	// every surviving arming and discards every stale node.
	n := x.Reap(MaxDeadlineMS, func(k uint64, e Entry) bool { return x.Remove(k, e) })
	if x.Len() != 0 {
		t.Fatalf("Len = %d after a total reap (purged %d)", x.Len(), n)
	}
	if _, ok := x.Earliest(); ok {
		t.Fatal("byDeadline nonempty after a total reap")
	}
}

// FuzzExpiryIndexOps drives a byte-coded op sequence against the index
// and a plain timed-map oracle; after every op the views must agree on
// membership, deadlines, order (Earliest) and count. Single-threaded,
// so byDeadline must mirror entries exactly (Set/Clear/Remove clean up
// their own nodes when unraced).
func FuzzExpiryIndexOps(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x42})
	f.Add([]byte{0x10, 0x05, 0x11, 0x05, 0x30, 0x06})
	f.Add([]byte{0x00, 0xFF, 0x20, 0x00, 0x30, 0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := New(16, 4)
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]int64{} // key → clamped deadline
		check := func(op string) {
			if got, want := x.Len(), len(oracle); got != want {
				t.Fatalf("after %s: Len = %d, oracle %d", op, got, want)
			}
			var min int64 = math.MaxInt64
			for k, d := range oracle {
				e, ok := x.Lookup(k)
				if !ok || e.DeadlineMS != d {
					t.Fatalf("after %s: Lookup(%d) = %+v, %v; oracle %d", op, k, e, ok, d)
				}
				if d < min {
					min = d
				}
			}
			d, ok := x.Earliest()
			if ok != (len(oracle) > 0) || (ok && d != min) {
				t.Fatalf("after %s: Earliest = %d, %v; oracle min %d of %d keys",
					op, d, ok, min, len(oracle))
			}
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			k := uint64(arg % 32)
			switch op % 4 {
			case 0: // set
				d := clampDeadline(int64(op/4) * int64(arg) * 7)
				x.Set(k, d)
				oracle[k] = d
				check("set")
			case 1: // clear
				if got, want := x.Clear(k), oracle[k] != 0 || hasKey(oracle, k); got != want {
					t.Fatalf("Clear(%d) = %v, oracle had=%v", k, got, want)
				}
				delete(oracle, k)
				check("clear")
			case 2: // conditional remove of the live entry
				if e, ok := x.Lookup(k); ok {
					if !x.Remove(k, e) {
						t.Fatalf("Remove(%d, live entry) failed unraced", k)
					}
					delete(oracle, k)
				}
				check("remove")
			case 3: // reap everything due by an arbitrary now
				now := int64(op/4) * int64(arg) * 5
				x.Reap(now, func(k uint64, e Entry) bool { return x.Remove(k, e) })
				for k, d := range oracle {
					if d <= clampDeadline(now) {
						delete(oracle, k)
					}
				}
				check("reap")
			}
		}
	})
}

func hasKey(m map[uint64]int64, k uint64) bool {
	_, ok := m[k]
	return ok
}

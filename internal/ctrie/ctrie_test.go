package ctrie

import (
	"testing"

	"nbtrie/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return New() })
}

func TestHashInjectiveOnSample(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for k := uint64(0); k < 1<<16; k++ {
		h := hash(k)
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision: %d and %d", prev, k)
		}
		seen[h] = k
	}
}

func TestSizeAndCompression(t *testing.T) {
	c := New()
	for k := uint64(0); k < 1000; k++ {
		c.Insert(k)
	}
	if got := c.Size(); got != 1000 {
		t.Fatalf("Size() = %d, want 1000", got)
	}
	for k := uint64(0); k < 1000; k++ {
		if !c.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if got := c.Size(); got != 0 {
		t.Fatalf("Size() = %d after deleting all, want 0", got)
	}
	// After removing everything, compression must have collapsed the
	// trie back to (nearly) a bare root.
	if d := maxDepth(c.root); d > 2 {
		t.Errorf("trie depth %d after emptying; tombing/compression not working", d)
	}
}

func maxDepth(i *inode) int {
	m := i.main.Load()
	if m.cn == nil {
		return 1
	}
	d := 1
	for _, b := range m.cn.arr {
		if b.in != nil {
			if c := 1 + maxDepth(b.in); c > d {
				d = c
			}
		}
	}
	return d
}

func TestDualSeparatesDeepCollisions(t *testing.T) {
	// Keys engineered to share low hash chunks still separate eventually.
	c := New()
	for k := uint64(0); k < 64; k++ {
		if !c.Insert(k << 40) {
			t.Fatalf("Insert(%d) failed", k<<40)
		}
	}
	for k := uint64(0); k < 64; k++ {
		if !c.Contains(k << 40) {
			t.Fatalf("Contains(%d) = false", k<<40)
		}
	}
}

// Package ctrie implements the non-blocking concurrent hash trie of
// Prokopec, Bronson, Bagwell and Odersky, "Concurrent Tries with
// Efficient Non-blocking Snapshots" (PPoPP 2012) — the paper's Ctrie
// baseline. As in the paper's evaluation, snapshots are not used, so this
// is the plain CAS-based trie: indirection nodes (inodes) whose main
// pointer is CASed between immutable branch nodes (cnodes), with tombing
// and compression keeping the trie from accumulating single-child paths.
//
// Nodes branch 32 ways on successive 5-bit chunks of the key's hash. The
// hash is the splitmix64 finalizer, which is a bijection on uint64, so
// distinct keys always separate at some level and the collision-list
// (lnode) machinery of the original is unnecessary.
package ctrie

import (
	"math/bits"
	"sync/atomic"
)

const (
	chunkBits = 5
	chunkMask = 1<<chunkBits - 1
)

// hash is the splitmix64 finalizer: an invertible mixer, so it is
// injective on the full uint64 key space.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// snode is an immutable singleton holding one key.
type snode struct {
	key uint64
	h   uint64
}

// branch is one slot of a cnode: either a child inode or an snode.
type branch struct {
	in *inode
	sn *snode
}

// cnode is an immutable 32-way branch node: a bitmap of occupied slots
// plus a dense array of branches.
type cnode struct {
	bmp uint32
	arr []branch
}

// mainNode is what an inode points at: a cnode, or a tombed snode (the
// tnode of the original) marking a single-element subtree awaiting
// contraction into its parent.
type mainNode struct {
	cn *cnode
	tn *snode
}

// inode is the mutable indirection node; all modification is CAS on main.
type inode struct {
	main atomic.Pointer[mainNode]
}

func newINode(m *mainNode) *inode {
	in := &inode{}
	in.main.Store(m)
	return in
}

// Trie is the concurrent hash trie set.
type Trie struct {
	root *inode
}

// New returns an empty Ctrie.
func New() *Trie {
	return &Trie{root: newINode(&mainNode{cn: &cnode{}})}
}

// flagpos splits the hash chunk for this level into the bitmap flag and
// the dense array position.
func flagpos(h uint64, lev uint, bmp uint32) (flag uint32, pos int) {
	idx := uint32(h>>lev) & chunkMask
	flag = 1 << idx
	pos = bits.OnesCount32(bmp & (flag - 1))
	return flag, pos
}

// inserted returns a copy of cn with a new branch at (flag, pos).
func (cn *cnode) inserted(flag uint32, pos int, b branch) *cnode {
	arr := make([]branch, len(cn.arr)+1)
	copy(arr, cn.arr[:pos])
	arr[pos] = b
	copy(arr[pos+1:], cn.arr[pos:])
	return &cnode{bmp: cn.bmp | flag, arr: arr}
}

// updated returns a copy of cn with the branch at pos replaced.
func (cn *cnode) updated(pos int, b branch) *cnode {
	arr := make([]branch, len(cn.arr))
	copy(arr, cn.arr)
	arr[pos] = b
	return &cnode{bmp: cn.bmp, arr: arr}
}

// removed returns a copy of cn without the branch at (flag, pos).
func (cn *cnode) removed(flag uint32, pos int) *cnode {
	arr := make([]branch, len(cn.arr)-1)
	copy(arr, cn.arr[:pos])
	copy(arr[pos:], cn.arr[pos+1:])
	return &cnode{bmp: cn.bmp &^ flag, arr: arr}
}

// dual builds the subtree separating two snodes whose hashes first
// diverge at or below lev. Injective hashing guarantees termination.
func dual(x, y *snode, lev uint) *mainNode {
	xi := uint32(x.h>>lev) & chunkMask
	yi := uint32(y.h>>lev) & chunkMask
	if xi == yi {
		inner := newINode(dual(x, y, lev+chunkBits))
		return &mainNode{cn: &cnode{bmp: 1 << xi, arr: []branch{{in: inner}}}}
	}
	lo, hi := branch{sn: x}, branch{sn: y}
	if xi > yi {
		lo, hi = hi, lo
	}
	return &mainNode{cn: &cnode{bmp: 1<<xi | 1<<yi, arr: []branch{lo, hi}}}
}

// toContracted tombs a single-snode cnode below the root so the parent
// can absorb it.
func toContracted(cn *cnode, lev uint) *mainNode {
	if lev > 0 && len(cn.arr) == 1 && cn.arr[0].sn != nil {
		return &mainNode{tn: cn.arr[0].sn}
	}
	return &mainNode{cn: cn}
}

// toCompressed resurrects tombed children of cn and contracts the result.
func toCompressed(cn *cnode, lev uint) *mainNode {
	arr := make([]branch, len(cn.arr))
	for i, b := range cn.arr {
		if b.in != nil {
			if m := b.in.main.Load(); m.tn != nil {
				arr[i] = branch{sn: m.tn}
				continue
			}
		}
		arr[i] = b
	}
	return toContracted(&cnode{bmp: cn.bmp, arr: arr}, lev)
}

// clean compresses the cnode under i (called when a descent trips over a
// tombed child).
func clean(i *inode, lev uint) {
	if m := i.main.Load(); m.cn != nil {
		i.main.CompareAndSwap(m, toCompressed(m.cn, lev))
	}
}

// cleanParent retries absorbing the tombed inode i into its parent.
func cleanParent(p, i *inode, h uint64, lev uint) {
	for {
		m := p.main.Load()
		if m.cn == nil {
			return
		}
		flag, pos := flagpos(h, lev, m.cn.bmp)
		if m.cn.bmp&flag == 0 {
			return
		}
		if m.cn.arr[pos].in != i {
			return
		}
		im := i.main.Load()
		if im.tn == nil {
			return
		}
		ncn := m.cn.updated(pos, branch{sn: im.tn})
		if p.main.CompareAndSwap(m, toContracted(ncn, lev)) {
			return
		}
	}
}

type result uint8

const (
	resRestart result = iota
	resTrue
	resFalse
)

// Contains reports whether k is in the set.
func (t *Trie) Contains(k uint64) bool {
	h := hash(k)
	for {
		if r := t.lookup(t.root, nil, h, k, 0); r != resRestart {
			return r == resTrue
		}
	}
}

func (t *Trie) lookup(i, parent *inode, h, k uint64, lev uint) result {
	m := i.main.Load()
	if m.cn == nil {
		clean(parent, lev-chunkBits)
		return resRestart
	}
	flag, pos := flagpos(h, lev, m.cn.bmp)
	if m.cn.bmp&flag == 0 {
		return resFalse
	}
	b := m.cn.arr[pos]
	if b.in != nil {
		return t.lookup(b.in, i, h, k, lev+chunkBits)
	}
	if b.sn.key == k {
		return resTrue
	}
	return resFalse
}

// Insert adds k, returning false if already present.
func (t *Trie) Insert(k uint64) bool {
	h := hash(k)
	for {
		if r := t.insert(t.root, nil, h, k, 0); r != resRestart {
			return r == resTrue
		}
	}
}

func (t *Trie) insert(i, parent *inode, h, k uint64, lev uint) result {
	m := i.main.Load()
	if m.cn == nil {
		clean(parent, lev-chunkBits)
		return resRestart
	}
	cn := m.cn
	flag, pos := flagpos(h, lev, cn.bmp)
	if cn.bmp&flag == 0 {
		ncn := cn.inserted(flag, pos, branch{sn: &snode{key: k, h: h}})
		if i.main.CompareAndSwap(m, &mainNode{cn: ncn}) {
			return resTrue
		}
		return resRestart
	}
	b := cn.arr[pos]
	if b.in != nil {
		return t.insert(b.in, i, h, k, lev+chunkBits)
	}
	if b.sn.key == k {
		return resFalse
	}
	inner := newINode(dual(b.sn, &snode{key: k, h: h}, lev+chunkBits))
	ncn := cn.updated(pos, branch{in: inner})
	if i.main.CompareAndSwap(m, &mainNode{cn: ncn}) {
		return resTrue
	}
	return resRestart
}

// Delete removes k, returning false if absent.
func (t *Trie) Delete(k uint64) bool {
	h := hash(k)
	for {
		if r := t.remove(t.root, nil, h, k, 0); r != resRestart {
			return r == resTrue
		}
	}
}

func (t *Trie) remove(i, parent *inode, h, k uint64, lev uint) result {
	m := i.main.Load()
	if m.cn == nil {
		clean(parent, lev-chunkBits)
		return resRestart
	}
	cn := m.cn
	flag, pos := flagpos(h, lev, cn.bmp)
	if cn.bmp&flag == 0 {
		return resFalse
	}
	b := cn.arr[pos]
	var res result
	switch {
	case b.in != nil:
		res = t.remove(b.in, i, h, k, lev+chunkBits)
	case b.sn.key != k:
		res = resFalse
	default:
		ncn := cn.removed(flag, pos)
		if !i.main.CompareAndSwap(m, toContracted(ncn, lev)) {
			return resRestart
		}
		res = resTrue
	}
	if res == resTrue && parent != nil {
		// If the removal left this subtree tombed, pull it into the
		// parent so lookups do not keep paying the extra indirection.
		if cur := i.main.Load(); cur.tn != nil {
			cleanParent(parent, i, h, lev-chunkBits)
		}
	}
	return res
}

// Size counts the keys; quiescent use only.
func (t *Trie) Size() int {
	return sizeOf(t.root)
}

func sizeOf(i *inode) int {
	m := i.main.Load()
	if m.tn != nil {
		return 1
	}
	n := 0
	for _, b := range m.cn.arr {
		if b.in != nil {
			n += sizeOf(b.in)
		} else {
			n++
		}
	}
	return n
}

package persist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"nbtrie/internal/resp"
)

// SyncPolicy says when appended records are forced to stable storage,
// mirroring Redis's appendfsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every acknowledgement batch: an
	// acknowledged write survives any crash. Slowest.
	SyncAlways SyncPolicy = iota
	// SyncEverySec fsyncs on a one-second ticker: a crash loses at most
	// about a second of acknowledged writes. The Redis default.
	SyncEverySec
	// SyncNo never fsyncs explicitly; the OS writes back on its own
	// schedule. Fastest, weakest.
	SyncNo
)

// ParseSyncPolicy parses the appendfsync spellings.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "everysec":
		return SyncEverySec, nil
	case "no":
		return SyncNo, nil
	}
	return 0, fmt.Errorf("persist: unknown sync policy %q (want always, everysec or no)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEverySec:
		return "everysec"
	default:
		return "no"
	}
}

// AOF is one append-only segment: RESP command records, one per
// acknowledged mutation, appended in acknowledgement order. Appends are
// buffered; Commit moves the buffer into the file (and through fsync
// under SyncAlways) and is what the server calls after handling a
// pipelined batch, before the batch's replies reach the client — so a
// record is on its way to disk strictly before the write it describes
// is acknowledged. Safe for concurrent use.
type AOF struct {
	mu     sync.Mutex
	f      *os.File
	w      *resp.Writer
	bw     *bufio.Writer
	policy SyncPolicy
	dirty  bool // bytes written to the file since the last fsync
	err    error

	stopTick chan struct{}
	tickDone chan struct{}
}

// OpenAOF opens (creating if needed) the segment at path for appending.
// Under SyncEverySec a background ticker fsyncs once a second until
// Close.
func OpenAOF(path string, policy SyncPolicy) (*AOF, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(f)
	a := &AOF{f: f, bw: bw, w: resp.NewWriter(bw), policy: policy}
	if policy == SyncEverySec {
		a.stopTick = make(chan struct{})
		a.tickDone = make(chan struct{})
		go a.syncLoop()
	}
	return a, nil
}

func (a *AOF) syncLoop() {
	defer close(a.tickDone)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			a.Sync()
		case <-a.stopTick:
			return
		}
	}
}

// Append buffers one command record. The record is not durable (nor
// necessarily in the file) until Commit.
func (a *AOF) Append(args ...[]byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	if err := a.w.WriteCommand(args...); err != nil {
		a.err = err
	}
	return a.err
}

// Commit flushes buffered records into the file; under SyncAlways it
// also fsyncs, so on return every appended record is durable. Called on
// the batch boundary, before replies are flushed to clients.
func (a *AOF) Commit() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commitLocked()
}

func (a *AOF) commitLocked() error {
	if a.err != nil {
		return a.err
	}
	if a.bw.Buffered() > 0 {
		if err := a.bw.Flush(); err != nil {
			a.err = err
			return err
		}
		a.dirty = true
	}
	if a.policy == SyncAlways && a.dirty {
		if err := a.f.Sync(); err != nil {
			a.err = err
			return err
		}
		a.dirty = false
	}
	return nil
}

// Sync flushes and fsyncs regardless of policy (the everysec ticker,
// rotation, shutdown).
func (a *AOF) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	if a.bw.Buffered() > 0 {
		if err := a.bw.Flush(); err != nil {
			a.err = err
			return err
		}
		a.dirty = true
	}
	if a.dirty {
		if err := a.f.Sync(); err != nil {
			a.err = err
			return err
		}
		a.dirty = false
	}
	return nil
}

// Size returns the segment's current on-disk-plus-buffered length
// (diagnostics: INFO reporting).
func (a *AOF) Size() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, err := a.f.Stat()
	if err != nil {
		return 0
	}
	return st.Size() + int64(a.bw.Buffered())
}

// Close syncs and closes the segment. Safe to call once.
func (a *AOF) Close() error {
	if a.stopTick != nil {
		close(a.stopTick)
		<-a.tickDone
	}
	syncErr := a.Sync()
	a.mu.Lock()
	defer a.mu.Unlock()
	closeErr := a.f.Close()
	if a.err == nil {
		a.err = fmt.Errorf("persist: aof closed")
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// ApplyError wraps an error returned by the replay callback — the
// record was structurally sound; APPLYING it failed. Callers use it
// (via errors.As) to keep "the AOF is damaged" and "a well-formed
// record could not be applied" as distinct diagnoses; reporting an
// apply failure as file corruption would send an operator chasing the
// wrong problem.
type ApplyError struct{ Err error }

func (e *ApplyError) Error() string { return "applying record: " + e.Err.Error() }
func (e *ApplyError) Unwrap() error { return e.Err }

// Replay parses RESP command records from r, calling fn for each in
// order. It returns the byte offset just past the last complete record
// (valid), torn = true when the stream ends mid-record — the expected
// shape of a crash-truncated tail, whose partial record was never
// acknowledged and is safely discarded by truncating the file to valid
// — and a non-nil error only for real corruption (a structurally
// invalid byte sequence before the tail) or for a failure from fn,
// which is wrapped in *ApplyError so the two causes stay
// distinguishable. Replay never panics on arbitrary input;
// FuzzAOFReplay holds it to that.
func Replay(r io.Reader, lim resp.Limits, fn func(args [][]byte) error) (valid int64, torn bool, err error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	rr := resp.NewRequestReader(br, lim)
	for {
		args, err := rr.ReadCommand()
		switch {
		case err == nil:
			valid = cr.n - int64(br.Buffered())
			if err := fn(args); err != nil {
				return valid, false, &ApplyError{Err: err}
			}
		case err == io.EOF:
			return valid, false, nil // clean end between records
		case err == io.ErrUnexpectedEOF:
			return valid, true, nil // torn tail: crash mid-record
		default:
			return valid, false, err // corruption (ProtocolError) or I/O
		}
	}
}

// ReplayFile is Replay over the file at path, truncating a torn tail in
// place (the crash-recovery path). Returns the number of records
// replayed and whether a tail was truncated. A missing file is zero
// records, not an error.
func ReplayFile(path string, lim resp.Limits, fn func(args [][]byte) error) (records int64, truncated bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	valid, torn, err := Replay(f, lim, func(args [][]byte) error {
		records++
		return fn(args)
	})
	f.Close()
	if err != nil {
		// An apply failure is the caller's record rejecting, not file
		// damage; only structural errors get the corruption wording.
		var ae *ApplyError
		if errors.As(err, &ae) {
			return records, false, fmt.Errorf("persist: aof %s: record ending at offset %d failed to apply: %w", path, valid, ae.Err)
		}
		return records, false, fmt.Errorf("persist: aof %s invalid at offset %d: %w", path, valid, err)
	}
	if torn {
		if err := os.Truncate(path, valid); err != nil {
			return records, false, err
		}
		truncated = true
	}
	return records, truncated, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

package persist

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The manifest binds the data directory's files into one recovery
// recipe: load Base (if any), then replay every Incr segment in order.
// It is a short text file replaced atomically, so recovery always sees
// a complete recipe.
//
// The rotation protocol (driven by the server's BGSAVE) keeps the
// recipe conservative: before a new base dump starts, the manifest is
// committed listing the NEW incr segment appended to the existing
// chain — so a crash while the dump is still being written recovers
// from the old base plus the whole chain, including writes acknowledged
// after rotation. Only after the dump file is complete and fsynced does
// a second commit swing Base to it and drop the pre-rotation segments.
const manifestMagic = "NBMANIFEST1"

// ManifestName is the manifest's file name inside the data directory.
const ManifestName = "MANIFEST"

// Manifest lists the current recovery recipe.
type Manifest struct {
	Base  string   // base dump file name, "" before the first completed dump
	Incrs []string // AOF segment names, replayed in order after Base
}

// BaseName returns the canonical base-dump file name for seq.
func BaseName(seq uint64) string { return fmt.Sprintf("base-%08d.rdb", seq) }

// IncrName returns the canonical AOF segment file name for seq.
func IncrName(seq uint64) string { return fmt.Sprintf("incr-%08d.aof", seq) }

// SeqOf extracts the sequence number from a BaseName/IncrName-shaped
// name; ok is false for anything else.
func SeqOf(name string) (uint64, bool) {
	base := strings.TrimSuffix(strings.TrimPrefix(name, "base-"), ".rdb")
	incr := strings.TrimSuffix(strings.TrimPrefix(name, "incr-"), ".aof")
	for _, s := range []string{base, incr} {
		if s == name || len(s) == 0 {
			continue
		}
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			return n, true
		}
	}
	return 0, false
}

// validName rejects names that could escape the data directory.
func validName(name string) bool {
	return name != "" && name == filepath.Base(name) && !strings.ContainsAny(name, "\n\r")
}

// WriteManifest atomically replaces dir's manifest: temp file, fsync,
// rename, directory fsync. After it returns the new recipe is durable.
func WriteManifest(dir string, m Manifest) error {
	for _, n := range append([]string{}, m.Incrs...) {
		if !validName(n) {
			return fmt.Errorf("persist: bad manifest entry %q", n)
		}
	}
	if m.Base != "" && !validName(m.Base) {
		return fmt.Errorf("persist: bad manifest base %q", m.Base)
	}
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	var sb strings.Builder
	sb.WriteString(manifestMagic + "\n")
	if m.Base != "" {
		sb.WriteString("base " + m.Base + "\n")
	}
	for _, n := range m.Incrs {
		sb.WriteString("incr " + n + "\n")
	}
	if _, err := tmp.WriteString(sb.String()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadManifest loads dir's manifest. ok is false when none exists (a
// fresh data directory); a malformed manifest is an error, not an empty
// result — silently ignoring one would discard committed data.
func ReadManifest(dir string) (m Manifest, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != manifestMagic {
		return Manifest{}, false, fmt.Errorf("persist: manifest missing magic")
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		kind, name, found := strings.Cut(line, " ")
		if !found || !validName(name) {
			return Manifest{}, false, fmt.Errorf("persist: malformed manifest line %q", line)
		}
		switch kind {
		case "base":
			if m.Base != "" {
				return Manifest{}, false, fmt.Errorf("persist: manifest has two base lines")
			}
			m.Base = name
		case "incr":
			m.Incrs = append(m.Incrs, name)
		default:
			return Manifest{}, false, fmt.Errorf("persist: malformed manifest line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}

// SaveDump writes a dump of iter to dir/name crash-safely: temp file,
// WriteDump, fsync, atomic rename, directory fsync.
func SaveDump(dir, name string, iter func(fn func(k, v []byte, expireAtMS uint64) bool)) error {
	if !validName(name) {
		return fmt.Errorf("persist: bad dump name %q", name)
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := WriteDump(bw, iter); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadDump reads the dump at dir/name through fn. A missing file with
// name == "" (no base yet) is not an error; a missing named file is.
func LoadDump(dir, name string, fn func(k, v []byte, expireAtMS uint64) error) error {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return ReadDump(f, fn)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms refuse to fsync directories; those errors are ignored (the
// rename itself is still atomic there).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() // best-effort by design
	return nil
}

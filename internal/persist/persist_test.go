package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbtrie/internal/resp"
)

func pairs(n int) [][2][]byte {
	out := make([][2][]byte, n)
	for i := range out {
		out[i] = [2][]byte{
			[]byte(fmt.Sprintf("key-%06d", i)),
			[]byte(fmt.Sprintf("value-%d-%s", i, string(make([]byte, i%37)))),
		}
	}
	return out
}

// ttlFor gives every third pair a deadline so dump tests exercise both
// TTL'd and TTL-less records.
func ttlFor(i int) uint64 {
	if i%3 != 0 {
		return 0
	}
	return uint64(1_700_000_000_000 + i)
}

func iterOf(ps [][2][]byte) func(func(k, v []byte, expireAtMS uint64) bool) {
	return func(fn func(k, v []byte, expireAtMS uint64) bool) {
		for i, p := range ps {
			if !fn(p[0], p[1], ttlFor(i)) {
				return
			}
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 1000} {
		ps := pairs(n)
		var buf bytes.Buffer
		if err := WriteDump(&buf, iterOf(ps)); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		var got [][2][]byte
		var ttls []uint64
		err := ReadDump(bytes.NewReader(buf.Bytes()), func(k, v []byte, expireAtMS uint64) error {
			got = append(got, [2][]byte{k, v})
			ttls = append(ttls, expireAtMS)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: read back %d records", n, len(got))
		}
		for i := range ps {
			if !bytes.Equal(got[i][0], ps[i][0]) || !bytes.Equal(got[i][1], ps[i][1]) {
				t.Fatalf("n=%d: record %d mismatch", n, i)
			}
			if ttls[i] != ttlFor(i) {
				t.Fatalf("n=%d: record %d deadline %d, want %d", n, i, ttls[i], ttlFor(i))
			}
		}
	}
}

// TestDumpReadsV1 pins backward compatibility: a version-1 dump (no TTL
// field per record) must load with every record reporting no deadline.
func TestDumpReadsV1(t *testing.T) {
	ps := pairs(7)
	var buf bytes.Buffer
	writeDumpV1(&buf, ps)
	var n int
	err := ReadDump(bytes.NewReader(buf.Bytes()), func(k, v []byte, expireAtMS uint64) error {
		if !bytes.Equal(k, ps[n][0]) || !bytes.Equal(v, ps[n][1]) {
			t.Fatalf("record %d mismatch", n)
		}
		if expireAtMS != 0 {
			t.Fatalf("record %d: v1 dump reports deadline %d", n, expireAtMS)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("read v1: %v", err)
	}
	if n != len(ps) {
		t.Fatalf("read %d of %d v1 records", n, len(ps))
	}
	// Damage detection must hold for v1 framing too.
	raw := buf.Bytes()
	mut := append([]byte(nil), raw...)
	mut[len(mut)/2] ^= 0x41
	if err := ReadDump(bytes.NewReader(mut), func(k, v []byte, e uint64) error { return nil }); err == nil {
		t.Error("damaged v1 dump went undetected")
	}
}

// writeDumpV1 emits the NBRDB001 frame (no per-record TTL), as the
// pre-expiry writer did, so the reader's compatibility path stays pinned.
func writeDumpV1(buf *bytes.Buffer, ps [][2][]byte) {
	var body bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	body.WriteString(dumpMagicV1)
	for _, p := range ps {
		body.WriteByte(recEntry)
		body.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(p[0])))])
		body.Write(p[0])
		body.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(p[1])))])
		body.Write(p[1])
	}
	body.WriteByte(recEnd)
	body.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(ps)))])
	crc := crc64.Update(0, crcTable, body.Bytes())
	binary.LittleEndian.PutUint64(scratch[:8], crc)
	body.Write(scratch[:8])
	buf.Write(body.Bytes())
}

// TestDumpDetectsDamage flips, truncates and extends a valid dump at
// every byte position: every mutation must surface as a CorruptError,
// never a silent partial load or a panic.
func TestDumpDetectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDump(&buf, iterOf(pairs(5))); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	discard := func(k, v []byte, expireAtMS uint64) error { return nil }

	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x41
		if err := ReadDump(bytes.NewReader(mut), discard); err == nil {
			t.Errorf("flipping byte %d went undetected", i)
		}
	}
	for i := 0; i < len(valid); i++ {
		if err := ReadDump(bytes.NewReader(valid[:i]), discard); err == nil {
			t.Errorf("truncation to %d bytes went undetected", i)
		}
	}
	if err := ReadDump(bytes.NewReader(append(append([]byte(nil), valid...), 'x')), discard); err == nil {
		t.Error("trailing garbage went undetected")
	}
}

func TestSaveLoadDumpFile(t *testing.T) {
	dir := t.TempDir()
	ps := pairs(100)
	if err := SaveDump(dir, BaseName(1), iterOf(ps)); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := LoadDump(dir, BaseName(1), func(k, v []byte, expireAtMS uint64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("loaded %d records, want 100", n)
	}
	// No temp litter.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("data dir holds %d files after SaveDump, want 1", len(ents))
	}
}

func TestAOFAppendReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, IncrName(1))
	a, err := OpenAOF(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	a.Append([]byte("SET"), []byte("k1"), []byte("v1"))
	a.Append([]byte("SET"), []byte("k2"), []byte("v2"))
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	a.Append([]byte("DEL"), []byte("k1"))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]string
	rec, trunc, err := ReplayFile(path, resp.Limits{}, func(args [][]byte) error {
		var ss []string
		for _, a := range args {
			ss = append(ss, string(a))
		}
		got = append(got, ss)
		return nil
	})
	if err != nil || trunc {
		t.Fatalf("replay: rec=%d trunc=%v err=%v", rec, trunc, err)
	}
	want := [][]string{{"SET", "k1", "v1"}, {"SET", "k2", "v2"}, {"DEL", "k1"}}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("record %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}

// TestAOFTornTail simulates a crash mid-append: every proper prefix of
// a valid AOF must replay its complete records, report the tear, and
// after ReplayFile the file must be truncated to a clean boundary that
// replays tear-free.
func TestAOFTornTail(t *testing.T) {
	var buf bytes.Buffer
	w := resp.NewWriter(newBufWriter(&buf))
	w.WriteCommand([]byte("SET"), []byte("alpha"), []byte("1"))
	w.WriteCommand([]byte("SET"), []byte("beta"), []byte("2"))
	w.WriteCommand([]byte("DEL"), []byte("alpha"))
	w.Flush()
	full := buf.Bytes()

	for cut := 0; cut <= len(full); cut++ {
		n := 0
		valid, torn, err := Replay(bytes.NewReader(full[:cut]), resp.Limits{}, func([][]byte) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if int64(cut) == valid && torn {
			t.Errorf("cut %d: clean boundary misreported as torn", cut)
		}
		if int64(cut) != valid && !torn {
			t.Errorf("cut %d: lost bytes (valid=%d) without reporting a tear", cut, valid)
		}
		// The recovered prefix must itself replay cleanly.
		n2 := 0
		v2, torn2, err := Replay(bytes.NewReader(full[:valid]), resp.Limits{}, func([][]byte) error {
			n2++
			return nil
		})
		if err != nil || torn2 || v2 != valid || n2 != n {
			t.Fatalf("cut %d: recovered prefix not clean (n=%d n2=%d valid=%d v2=%d torn2=%v err=%v)",
				cut, n, n2, valid, v2, torn2, err)
		}
	}

	// File-level: torn file gets truncated in place.
	dir := t.TempDir()
	path := filepath.Join(dir, IncrName(7))
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, trunc, err := ReplayFile(path, resp.Limits{}, func([][]byte) error { return nil })
	if err != nil || !trunc || rec != 2 {
		t.Fatalf("torn file: rec=%d trunc=%v err=%v", rec, trunc, err)
	}
	rec2, trunc2, err := ReplayFile(path, resp.Limits{}, func([][]byte) error { return nil })
	if err != nil || trunc2 || rec2 != 2 {
		t.Fatalf("after truncation: rec=%d trunc=%v err=%v", rec2, trunc2, err)
	}
}

// TestAOFCorruptionRefused: garbage before the tail is corruption, not
// a tear.
func TestAOFCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := resp.NewWriter(newBufWriter(&buf))
	w.WriteCommand([]byte("SET"), []byte("a"), []byte("1"))
	w.WriteCommand([]byte("SET"), []byte("b"), []byte("2"))
	w.Flush()
	b := buf.Bytes()
	b[0] = '!' // first record's array marker destroyed
	_, torn, err := Replay(bytes.NewReader(b), resp.Limits{}, func([][]byte) error { return nil })
	if err == nil || torn {
		t.Fatalf("corrupt head must error, got torn=%v err=%v", torn, err)
	}
	if !resp.IsProtocolError(err) {
		t.Errorf("want ProtocolError, got %v", err)
	}
}

func TestManifestRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadManifest(dir); ok || err != nil {
		t.Fatalf("fresh dir: ok=%v err=%v", ok, err)
	}
	m := Manifest{Base: BaseName(3), Incrs: []string{IncrName(3), IncrName(4)}}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.Base != m.Base || len(got.Incrs) != 2 || got.Incrs[0] != m.Incrs[0] || got.Incrs[1] != m.Incrs[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Overwrite: readers must never see a partial recipe, and no temp
	// litter may remain.
	if err := WriteManifest(dir, Manifest{Incrs: []string{IncrName(9)}}); err != nil {
		t.Fatal(err)
	}
	got, _, _ = ReadManifest(dir)
	if got.Base != "" || len(got.Incrs) != 1 {
		t.Fatalf("second commit not honored: %+v", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("manifest dir holds %d files, want 1", len(ents))
	}
	// Path traversal refused.
	if err := WriteManifest(dir, Manifest{Base: "../evil.rdb"}); err == nil {
		t.Error("path-escaping base accepted")
	}
}

func TestSeqOf(t *testing.T) {
	if n, ok := SeqOf(BaseName(42)); !ok || n != 42 {
		t.Errorf("BaseName(42): %d %v", n, ok)
	}
	if n, ok := SeqOf(IncrName(7)); !ok || n != 7 {
		t.Errorf("IncrName(7): %d %v", n, ok)
	}
	for _, bad := range []string{"", "MANIFEST", "base-.rdb", "foo.aof"} {
		if _, ok := SeqOf(bad); ok {
			t.Errorf("SeqOf(%q) accepted", bad)
		}
	}
}

// FuzzAOFReplay holds Replay to its contract on arbitrary bytes: no
// panic ever; no error and no tear implies the input is exactly the
// valid records (replaying the reported valid prefix must reproduce the
// same record count and a clean result).
func FuzzAOFReplay(f *testing.F) {
	var seed bytes.Buffer
	w := resp.NewWriter(newBufWriter(&seed))
	w.WriteCommand([]byte("SET"), []byte("key"), []byte("value"))
	w.WriteCommand([]byte("DEL"), []byte("key"))
	w.Flush()
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-4])
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		valid, torn, err := Replay(bytes.NewReader(data), resp.Limits{}, func(args [][]byte) error {
			n++
			return nil
		})
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of range [0, %d]", valid, len(data))
		}
		if err != nil {
			return // corruption detected: acceptable for arbitrary bytes
		}
		if !torn && valid != int64(len(data)) {
			t.Fatalf("clean result but %d of %d bytes consumed", valid, len(data))
		}
		// The reported valid prefix must be exactly replayable.
		n2 := 0
		v2, torn2, err2 := Replay(bytes.NewReader(data[:valid]), resp.Limits{}, func([][]byte) error {
			n2++
			return nil
		})
		if err2 != nil || torn2 || v2 != valid || n2 != n {
			t.Fatalf("valid prefix not stable: n=%d n2=%d valid=%d v2=%d torn2=%v err2=%v",
				n, n2, valid, v2, torn2, err2)
		}
	})
}

func newBufWriter(w *bytes.Buffer) *bufio.Writer { return bufio.NewWriter(w) }

// TestReplayDistinguishesApplyErrors: an error from the replay callback
// is an apply failure wrapped in *ApplyError, never reported in the
// corruption wording — misdiagnosing a rejected record as file damage
// would send recovery (and the operator) down the wrong path.
func TestReplayDistinguishesApplyErrors(t *testing.T) {
	var buf bytes.Buffer
	w := resp.NewWriter(newBufWriter(&buf))
	w.WriteCommand([]byte("SET"), []byte("a"), []byte("1"))
	w.WriteCommand([]byte("SET"), []byte("b"), []byte("2"))
	w.Flush()

	boom := errors.New("boom: record rejected")
	_, torn, err := Replay(bytes.NewReader(buf.Bytes()), resp.Limits{}, func(args [][]byte) error {
		if string(args[1]) == "b" {
			return boom
		}
		return nil
	})
	if torn {
		t.Fatal("apply failure misreported as torn tail")
	}
	var ae *ApplyError
	if !errors.As(err, &ae) || !errors.Is(err, boom) {
		t.Fatalf("fn error not wrapped as ApplyError: %v", err)
	}

	// File-level wording: apply failures say so; structural damage keeps
	// the corruption message.
	dir := t.TempDir()
	path := filepath.Join(dir, IncrName(3))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplayFile(path, resp.Limits{}, func([][]byte) error { return boom })
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "failed to apply") {
		t.Fatalf("apply failure wording: %v", err)
	}
	if strings.Contains(err.Error(), "invalid at offset") {
		t.Fatalf("apply failure misworded as corruption: %v", err)
	}

	damaged := append([]byte{'!'}, buf.Bytes()...)
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplayFile(path, resp.Limits{}, func([][]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "invalid at offset") {
		t.Fatalf("corruption wording: %v", err)
	}
	if errors.As(err, &ae) {
		t.Fatalf("corruption misreported as apply failure: %v", err)
	}
}

// Package persist is nbtried's durability layer: RDB-style point-in-time
// dumps, an append-only file (AOF) of acknowledged mutations in the RESP
// wire encoding, and the manifest that binds one base dump to the chain
// of AOF segments extending it. The package speaks []byte keys and
// values and RESP command records only — it knows nothing about tries,
// shards or key encodings; the server layer feeds it snapshot iterations
// and replays records back through its own dispatch.
//
// Crash-safety model (the same contract as Redis, sharpened where its
// docs are vague):
//
//   - A dump is valid only if completely written: readers verify the
//     magic, every record frame, the trailing entry count and a CRC-64
//     over every preceding byte. Dumps are written to a temp file and
//     atomically renamed, so a crash mid-dump leaves the previous state
//     untouched.
//   - The AOF is append-only; a crash can only tear its tail. Replay
//     accepts a torn tail (the writes it held were never acknowledged
//     under appendfsync always) and reports the byte offset of the last
//     complete record so the caller can truncate; any malformation
//     before the tail is corruption and replay refuses it.
//   - The manifest is replaced atomically (temp file, fsync, rename,
//     directory fsync), so recovery always sees either the old or the
//     new file set, never a half-switched one.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
)

// dumpMagic opens every dump file: format name + version in 8 bytes.
// Version 2 adds a third uvarint per record — the absolute expiry
// deadline in Unix milliseconds, 0 meaning "no TTL" — so deadlines
// survive dump/restore. Version 1 files (no TTL field) are still read;
// their records load with no deadline.
const (
	dumpMagic   = "NBRDB002"
	dumpMagicV1 = "NBRDB001"
)

// Record markers.
const (
	recEntry = 'R' // one key/value pair
	recEnd   = 'E' // trailer: entry count + CRC
)

// MaxDumpValueLen bounds a single key or value read back from a dump,
// so a corrupt length prefix cannot allocate unbounded memory. It
// matches the server's default RESP bulk limit.
const MaxDumpValueLen = 8 << 20

var crcTable = crc64.MakeTable(crc64.ECMA)

// CorruptError reports a structurally invalid dump file.
type CorruptError struct{ msg string }

func (e *CorruptError) Error() string { return "persist: corrupt dump: " + e.msg }

func corruptf(format string, args ...any) error {
	return &CorruptError{msg: fmt.Sprintf(format, args...)}
}

// crcWriter tracks the running CRC-64 and the first sticky error of the
// underlying writer, so WriteDump can stream without checking every
// write.
type crcWriter struct {
	w   io.Writer
	crc uint64
	err error
}

func (cw *crcWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	cw.crc = crc64.Update(cw.crc, crcTable, p)
	_, cw.err = cw.w.Write(p)
}

// WriteDump streams a dump: the magic, one framed record per entry
// yielded by iter, and the trailer (entry count + CRC-64/ECMA of every
// preceding byte). Each record carries the entry's absolute expiry
// deadline in Unix milliseconds (0 = no TTL). iter must call its
// argument once per entry and stop when it returns false (it only
// returns false on a write error, to cut a doomed iteration short). The
// caller owns w — buffering, fsync and atomic rename happen at the file
// layer (SaveDump).
func WriteDump(w io.Writer, iter func(fn func(k, v []byte, expireAtMS uint64) bool)) error {
	cw := &crcWriter{w: w}
	var scratch [binary.MaxVarintLen64]byte
	cw.write([]byte(dumpMagic))
	count := uint64(0)
	iter(func(k, v []byte, expireAtMS uint64) bool {
		cw.write([]byte{recEntry})
		cw.write(scratch[:binary.PutUvarint(scratch[:], uint64(len(k)))])
		cw.write(k)
		cw.write(scratch[:binary.PutUvarint(scratch[:], uint64(len(v)))])
		cw.write(v)
		cw.write(scratch[:binary.PutUvarint(scratch[:], expireAtMS)])
		count++
		return cw.err == nil
	})
	cw.write([]byte{recEnd})
	cw.write(scratch[:binary.PutUvarint(scratch[:], count)])
	if cw.err != nil {
		return cw.err
	}
	// The CRC covers everything before itself; write it raw (not
	// through cw, which would fold it into itself).
	binary.LittleEndian.PutUint64(scratch[:8], cw.crc)
	_, err := w.Write(scratch[:8])
	return err
}

// crcReader mirrors crcWriter: every byte logically consumed from the
// stream is folded into the digest, so the trailer check covers exactly
// the bytes a writer digested. It reads through a bufio.Reader but
// updates the CRC per consumed piece, never per buffered chunk.
type crcReader struct {
	r   *bufio.Reader
	crc uint64
}

func (cr *crcReader) readByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc = crc64.Update(cr.crc, crcTable, []byte{b})
	}
	return b, err
}

func (cr *crcReader) readFull(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		return err
	}
	cr.crc = crc64.Update(cr.crc, crcTable, p)
	return nil
}

func (cr *crcReader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := cr.readByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, corruptf("uvarint overflows 64 bits")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, corruptf("uvarint overflows 64 bits")
}

// ReadDump parses a dump written by WriteDump, calling fn for every
// record with its absolute expiry deadline (Unix milliseconds, 0 = no
// TTL; always 0 for version-1 dumps, which predate TTLs). The key and
// value slices are freshly allocated and may be retained. Any structural
// violation — bad magic, unknown marker, a length beyond
// MaxDumpValueLen, short file, count or CRC mismatch, trailing garbage —
// returns a *CorruptError (a dump is all-or-nothing; there is no
// torn-tail tolerance here, that is the AOF's department). An error from
// fn aborts the read and is returned as-is.
func ReadDump(r io.Reader, fn func(k, v []byte, expireAtMS uint64) error) error {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(dumpMagic))
	if err := cr.readFull(magic); err != nil {
		return corruptf("short magic: %v", err)
	}
	hasTTL := string(magic) == dumpMagic
	if !hasTTL && string(magic) != dumpMagicV1 {
		return corruptf("bad magic %q", magic)
	}
	var count uint64
	for {
		marker, err := cr.readByte()
		if err != nil {
			return corruptf("missing trailer: %v", err)
		}
		if marker == recEnd {
			break
		}
		if marker != recEntry {
			return corruptf("unknown record marker %q at entry %d", marker, count)
		}
		k, err := cr.readLenPrefixed()
		if err != nil {
			return err
		}
		v, err := cr.readLenPrefixed()
		if err != nil {
			return err
		}
		var expireAt uint64
		if hasTTL {
			expireAt, err = cr.readUvarint()
			if err != nil {
				return corruptf("short expiry deadline: %v", err)
			}
		}
		count++
		if err := fn(k, v, expireAt); err != nil {
			return err
		}
	}
	declared, err := cr.readUvarint()
	if err != nil {
		return corruptf("short trailer count: %v", err)
	}
	if declared != count {
		return corruptf("trailer declares %d entries, file holds %d", declared, count)
	}
	sum := cr.crc // digest of everything before the CRC field
	var crcBuf [8]byte
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return corruptf("short trailer CRC: %v", err)
	}
	if got := binary.LittleEndian.Uint64(crcBuf[:]); got != sum {
		return corruptf("CRC mismatch: file says %016x, content is %016x", got, sum)
	}
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return corruptf("trailing garbage after trailer")
	}
	return nil
}

func (cr *crcReader) readLenPrefixed() ([]byte, error) {
	n, err := cr.readUvarint()
	if err != nil {
		return nil, corruptf("short length prefix: %v", err)
	}
	if n > MaxDumpValueLen {
		return nil, corruptf("length %d exceeds limit %d", n, MaxDumpValueLen)
	}
	buf := make([]byte, n)
	if err := cr.readFull(buf); err != nil {
		return nil, corruptf("short payload: %v", err)
	}
	return buf, nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"nbtrie/internal/workload"
)

// Benchmark artifacts: the machine-readable output of cmd/benchtrie's
// -json mode. One artifact per figure, written as BENCH_<figure>.json,
// captures everything a later session (or CI run) needs to compare
// against: the workload configuration, throughput per series per thread
// count, and a benchmem-style allocs/op profile of each implementation's
// three basic operations. Artifacts checked into the repository form the
// performance trajectory of the project; regenerate them with
//
//	go run ./cmd/benchtrie -json [-quick]

// ArtifactSchema identifies the JSON layout; bump it when a field
// changes meaning so downstream comparisons fail loudly.
const ArtifactSchema = "nbtrie-bench/v1"

// AllocsProfile is a benchmem-style allocs/op measurement of the three
// basic set operations, taken single-threaded and uncontended on a
// prefilled structure. Throughput tells you how fast an implementation
// is on this machine today; allocs/op tells you how it will behave under
// GC pressure anywhere.
type AllocsProfile struct {
	Contains float64 `json:"contains"`
	Insert   float64 `json:"insert"`
	Delete   float64 `json:"delete"`
}

// MeasureAllocs profiles allocs/op for a fresh, half-prefilled instance
// from factory. Every operation is measured on its successful path:
// Contains alternates a hit and a miss, Insert consumes a pool of absent
// in-range keys, and Delete removes what Insert just added.
func MeasureAllocs(factory func() Set, keyRange uint64) AllocsProfile {
	s := factory()
	Prefill(s, keyRange, 1)
	// A key that is present and a pool of keys that are absent; all
	// in-range, so width-bounded implementations take their real paths.
	hit := uint64(0)
	var absent []uint64
	for k := uint64(0); k < keyRange && len(absent) < 257; k++ {
		if s.Contains(k) {
			hit = k
		} else {
			absent = append(absent, k)
		}
	}
	if len(absent) < 2 {
		// Degenerate key range (the stationary half-full distribution
		// left nothing absent); report an empty profile rather than
		// measuring failed operations.
		return AllocsProfile{}
	}
	p := AllocsProfile{}
	miss := absent[0]
	p.Contains = testing.AllocsPerRun(200, func() {
		s.Contains(hit)
		s.Contains(miss)
	}) / 2
	// AllocsPerRun invokes f runs+1 times (one warmup); advancing an
	// index each call keeps every insert/delete on its successful path.
	i := 0
	p.Insert = testing.AllocsPerRun(len(absent)-1, func() {
		s.Insert(absent[i])
		i++
	})
	j := 0
	p.Delete = testing.AllocsPerRun(len(absent)-1, func() {
		s.Delete(absent[j])
		j++
	})
	return p
}

// ArtifactConfig records the experiment parameters that produced an
// artifact, flattened to JSON-friendly fields.
type ArtifactConfig struct {
	Mix        workload.Mix `json:"mix"`
	KeyRange   uint64       `json:"key_range"`
	DurationMS float64      `json:"duration_ms"`
	WarmupMS   float64      `json:"warmup_ms"`
	Trials     int          `json:"trials"`
	SeqLen     uint64       `json:"seq_len"`
	Seed       uint64       `json:"seed"`
	Width      uint32       `json:"width"`

	// Server-benchmark extras (cmd/nbtriebench). Additive and omitted
	// when zero, so library artifacts are byte-identical to before and
	// old artifacts still parse: no schema bump needed.
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	ValueSize     int `json:"value_size,omitempty"`
}

// ArtifactPoint is one (threads, throughput) measurement. The latency
// percentiles are additive (cmd/nbtriebench measures them client-side
// per pipelined batch, divided by the pipeline depth); they are omitted
// by producers that do not measure latency, and absent from artifacts
// written before they existed — consumers must treat zero as "not
// measured", which is also why benchcheck does not gate on them.
type ArtifactPoint struct {
	Threads         int     `json:"threads"`
	MeanOpsPerSec   float64 `json:"mean_ops_per_sec"`
	StddevOpsPerSec float64 `json:"stddev_ops_per_sec"`
	P50LatencyUS    float64 `json:"p50_latency_us,omitempty"`
	P99LatencyUS    float64 `json:"p99_latency_us,omitempty"`
	// ServerCmdCalls is the server-counted per-command call delta over
	// this point's measured trials (INFO Commandstats diffed around
	// them), keyed by lowercase command name. Additive: only server
	// artifacts from producers that snapshot Commandstats carry it, and
	// benchcheck does not gate on it.
	ServerCmdCalls map[string]int64 `json:"server_cmd_calls,omitempty"`
}

// ServerAllocsProfile pins the SERVER-side dispatch path (wire parse →
// command dispatch → reply encode), measured in-process by
// cmd/nbtriebench via internal/server's probe — the numbers the wire
// hides from a client-side profile. SetCodec excludes the engine's own
// store-path allocations (those are pinned by the library artifacts);
// the other ops run their full path, engine included, because it is
// allocation-free.
type ServerAllocsProfile struct {
	Get      float64 `json:"get"`
	Set      float64 `json:"set"` // full path, engine included
	SetCodec float64 `json:"set_codec"`
	Del      float64 `json:"del"`
	Exists   float64 `json:"exists"`
	MGet     float64 `json:"mget"`
}

// ArtifactSeries is one line of a figure: an implementation's sweep plus
// its allocation profile. ServerAllocsPerOp is additive (server
// artifacts only); benchcheck gates it only when the baseline has it.
type ArtifactSeries struct {
	Name string `json:"name"`
	// Fanout is the implementation's branching factor (omitted in
	// artifacts from before series carried it, and for callers that do
	// not set it). Informational: benchcheck matches series by Name.
	Fanout            int                  `json:"fanout,omitempty"`
	Points            []ArtifactPoint      `json:"points"`
	AllocsPerOp       *AllocsProfile       `json:"allocs_per_op,omitempty"`
	ServerAllocsPerOp *ServerAllocsProfile `json:"server_allocs_per_op,omitempty"`
}

// Machine records the shape of the host that produced an artifact —
// enough to judge whether two artifacts are comparable at all.
// Additive: library artifacts omit it (nil), old artifacts parse fine.
type Machine struct {
	NumCPU int    `json:"num_cpu"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
}

// HostMachine describes the current host.
func HostMachine() *Machine {
	return &Machine{NumCPU: runtime.NumCPU(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
}

// Artifact is the full BENCH_<figure>.json document.
type Artifact struct {
	Schema     string           `json:"schema"`
	Figure     string           `json:"figure"`
	Title      string           `json:"title"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Quick      bool             `json:"quick"`
	Machine    *Machine         `json:"machine,omitempty"`
	Config     ArtifactConfig   `json:"config"`
	Series     []ArtifactSeries `json:"series"`
}

// NewArtifact assembles an artifact from completed series.
func NewArtifact(figure, title string, cfg Config, width uint32, quick bool) Artifact {
	return Artifact{
		Schema:     ArtifactSchema,
		Figure:     figure,
		Title:      title,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Config: ArtifactConfig{
			Mix:        cfg.Mix,
			KeyRange:   cfg.KeyRange,
			DurationMS: float64(cfg.Duration.Microseconds()) / 1e3,
			WarmupMS:   float64(cfg.Warmup.Microseconds()) / 1e3,
			Trials:     cfg.Trials,
			SeqLen:     cfg.SeqLen,
			Seed:       cfg.Seed,
			Width:      width,
		},
	}
}

// AddSeries appends one implementation's results to the artifact.
func (a *Artifact) AddSeries(s Series, allocs *AllocsProfile) {
	as := ArtifactSeries{Name: s.Name, Fanout: s.Fanout, AllocsPerOp: allocs}
	for _, p := range s.Points {
		as.Points = append(as.Points, ArtifactPoint{
			Threads:         p.Threads,
			MeanOpsPerSec:   p.Summary.Mean,
			StddevOpsPerSec: p.Summary.Stddev,
			P50LatencyUS:    p.P50LatencyUS,
			P99LatencyUS:    p.P99LatencyUS,
			ServerCmdCalls:  p.ServerCmdCalls,
		})
	}
	a.Series = append(a.Series, as)
}

// ArtifactFilename returns the canonical file name for a figure's
// artifact, BENCH_<figure>.json.
func ArtifactFilename(figure string) string {
	return fmt.Sprintf("BENCH_%s.json", figure)
}

// WriteArtifact writes the artifact to dir under its canonical name and
// returns the full path.
func WriteArtifact(dir string, a Artifact) (string, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, ArtifactFilename(a.Figure))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func mkSeries(name string, means map[int]float64, allocs *AllocsProfile) ArtifactSeries {
	s := ArtifactSeries{Name: name, AllocsPerOp: allocs}
	// Deterministic point order, ascending threads.
	for _, th := range []int{1, 2, 4, 8} {
		if m, ok := means[th]; ok {
			s.Points = append(s.Points, ArtifactPoint{Threads: th, MeanOpsPerSec: m})
		}
	}
	return s
}

func mkArtifact(fig string, series ...ArtifactSeries) Artifact {
	return Artifact{Schema: ArtifactSchema, Figure: fig, Series: series}
}

func TestCompareArtifactsPasses(t *testing.T) {
	base := mkArtifact("9b",
		mkSeries("PAT", map[int]float64{1: 1000, 2: 2000, 4: 4000}, &AllocsProfile{Insert: 8, Delete: 2}),
	)
	// Candidate: small drop within tolerance at 1 thread, improvement at
	// 2, no point at 4 (quick sweep), equal allocs — all fine. Extra
	// series pass freely.
	cand := mkArtifact("9b",
		mkSeries("PAT", map[int]float64{1: 900, 2: 2600}, &AllocsProfile{Insert: 8, Delete: 2}),
		mkSeries("PAT-S", map[int]float64{1: 1500}, &AllocsProfile{Insert: 8}),
	)
	regs, err := CompareArtifacts(base, cand, CompareOptions{MaxDrop: 0.25, AllocSlack: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("expected clean gate, got %v", regs)
	}
}

func TestCompareArtifactsThroughputRegression(t *testing.T) {
	base := mkArtifact("9b", mkSeries("PAT", map[int]float64{1: 1000, 2: 2000}, nil))
	cand := mkArtifact("9b", mkSeries("PAT", map[int]float64{1: 1000, 2: 1400}, nil))
	regs, err := CompareArtifacts(base, cand, CompareOptions{MaxDrop: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Series != "PAT" || !strings.Contains(regs[0].Metric, "2 threads") {
		t.Fatalf("want one 2-thread throughput regression, got %v", regs)
	}
	// Exactly at the tolerance boundary: 25% drop with MaxDrop 0.25 passes.
	cand2 := mkArtifact("9b", mkSeries("PAT", map[int]float64{1: 750, 2: 1500}, nil))
	regs, err = CompareArtifacts(base, cand2, CompareOptions{MaxDrop: 0.25})
	if err != nil || len(regs) != 0 {
		t.Fatalf("boundary drop must pass, got %v, %v", regs, err)
	}
}

func TestCompareArtifactsAllocRegression(t *testing.T) {
	base := mkArtifact("9a", mkSeries("PAT", map[int]float64{1: 1000},
		&AllocsProfile{Contains: 0, Insert: 8, Delete: 2}))
	cand := mkArtifact("9a", mkSeries("PAT", map[int]float64{1: 5000},
		&AllocsProfile{Contains: 1, Insert: 8, Delete: 2}))
	regs, err := CompareArtifacts(base, cand, CompareOptions{MaxDrop: 0.25, AllocSlack: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0].Metric, "contains") {
		t.Fatalf("want one contains-allocs regression, got %v", regs)
	}
	// A candidate that silently drops its alloc profile fails too.
	cand.Series[0].AllocsPerOp = nil
	regs, err = CompareArtifacts(base, cand, CompareOptions{MaxDrop: 0.25, AllocSlack: 0.25})
	if err != nil || len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("missing profile must regress, got %v, %v", regs, err)
	}
	// Lower allocs pass (the pin is one-sided).
	cand.Series[0].AllocsPerOp = &AllocsProfile{Contains: 0, Insert: 4, Delete: 1}
	regs, _ = CompareArtifacts(base, cand, CompareOptions{MaxDrop: 0.25, AllocSlack: 0.25})
	if len(regs) != 0 {
		t.Fatalf("improved allocs must pass, got %v", regs)
	}
}

func TestCompareArtifactsMissingSeries(t *testing.T) {
	base := mkArtifact("9b",
		mkSeries("PAT", map[int]float64{1: 1000}, nil),
		mkSeries("BST", map[int]float64{1: 800}, nil))
	cand := mkArtifact("9b", mkSeries("PAT", map[int]float64{1: 1000}, nil))
	regs, err := CompareArtifacts(base, cand, CompareOptions{MaxDrop: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Series != "BST" || regs[0].Metric != "series" {
		t.Fatalf("want one missing-series regression, got %v", regs)
	}
}

func TestCompareArtifactsMisuse(t *testing.T) {
	a := mkArtifact("9a")
	b := mkArtifact("9b")
	if _, err := CompareArtifacts(a, b, CompareOptions{MaxDrop: 0.25}); err == nil {
		t.Error("figure mismatch must error")
	}
	if _, err := CompareArtifacts(a, a, CompareOptions{MaxDrop: 1.5}); err == nil {
		t.Error("MaxDrop >= 1 must error")
	}
	if _, err := CompareArtifacts(a, a, CompareOptions{MaxDrop: -0.1}); err == nil {
		t.Error("negative MaxDrop must error")
	}
}

func TestReadArtifactRoundTripAndSchemaGate(t *testing.T) {
	dir := t.TempDir()
	a := mkArtifact("9b", mkSeries("PAT", map[int]float64{1: 1000}, &AllocsProfile{Insert: 8}))
	path, err := WriteArtifact(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Figure != "9b" || len(got.Series) != 1 || got.Series[0].Points[0].MeanOpsPerSec != 1000 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	// Wrong schema fails loudly.
	bad := a
	bad.Schema = "nbtrie-bench/v0"
	bad.Figure = "bad"
	if _, err := WriteArtifact(dir, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(filepath.Join(dir, ArtifactFilename("bad"))); err == nil {
		t.Error("schema mismatch must error")
	}
	// Missing and malformed files error too.
	if _, err := ReadArtifact(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing file must error")
	}
}

// TestCompareArtifactsServerAllocs: the server-path pins gate like the
// client codec's, but only when the baseline carries them — an old
// baseline without the field never fails a candidate that has it.
func TestCompareArtifactsServerAllocs(t *testing.T) {
	withSrv := func(name string, srv *ServerAllocsProfile) ArtifactSeries {
		s := mkSeries(name, map[int]float64{1: 1000}, nil)
		s.ServerAllocsPerOp = srv
		return s
	}
	opt := CompareOptions{MaxDrop: 0.25, AllocSlack: 0.25}

	// Old baseline (no server pins) vs new candidate (with pins and
	// latency fields): additive fields must pass untouched.
	base := mkArtifact("server", mkSeries("get90-set10", map[int]float64{1: 1000}, nil))
	cand := mkArtifact("server", withSrv("get90-set10", &ServerAllocsProfile{Set: 5, SetCodec: 1}))
	cand.Series[0].Points[0].P50LatencyUS = 80
	cand.Series[0].Points[0].P99LatencyUS = 400
	if regs, err := CompareArtifacts(base, cand, opt); err != nil || len(regs) != 0 {
		t.Fatalf("old baseline vs pinned candidate: regs=%v err=%v", regs, err)
	}

	// Pinned baseline vs rising candidate: each risen op is a regression.
	base = mkArtifact("server", withSrv("get90-set10", &ServerAllocsProfile{Get: 0, Set: 5, SetCodec: 1}))
	cand = mkArtifact("server", withSrv("get90-set10", &ServerAllocsProfile{Get: 2, Set: 5, SetCodec: 3}))
	regs, err := CompareArtifacts(base, cand, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("want 2 server-alloc regressions, got %v", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r.Metric, "server allocs/op") {
			t.Errorf("unexpected metric %q", r.Metric)
		}
	}

	// Pinned baseline vs candidate that dropped the profile entirely.
	cand = mkArtifact("server", withSrv("get90-set10", nil))
	if regs, _ := CompareArtifacts(base, cand, opt); len(regs) != 1 || !strings.Contains(regs[0].Message, "missing") {
		t.Fatalf("dropped profile must regress, got %v", regs)
	}

	// Latency-only change never regresses (not gated).
	base = mkArtifact("server", mkSeries("get90-set10", map[int]float64{1: 1000}, nil))
	base.Series[0].Points[0].P99LatencyUS = 100
	cand = mkArtifact("server", mkSeries("get90-set10", map[int]float64{1: 1000}, nil))
	cand.Series[0].Points[0].P99LatencyUS = 9999
	if regs, _ := CompareArtifacts(base, cand, opt); len(regs) != 0 {
		t.Fatalf("latency must not gate, got %v", regs)
	}
}

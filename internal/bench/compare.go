package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Artifact comparison: the regression gate behind cmd/benchcheck. Two
// nbtrie-bench/v1 artifacts of the same figure are compared point by
// point; a drop in throughput beyond the configured tolerance on any
// shared (series, threads) point, any rise in an allocs/op pin, or a
// series that vanished entirely is a Regression. Throughput is noisy —
// CI machines doubly so — hence the generous, configurable drop
// tolerance; allocs/op is deterministic, so any rise at all (beyond a
// tiny quantization slack) fails.

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// MaxDrop is the tolerated relative throughput drop on a shared
	// point, as a fraction: 0.25 fails a point whose candidate mean falls
	// below 75% of the baseline mean. Zero means "any drop fails" —
	// usually not what a noisy environment wants.
	MaxDrop float64
	// AllocSlack is the tolerated absolute rise in an allocs/op pin.
	// AllocsPerRun measurements are near-deterministic; the default gate
	// passes a small fraction (e.g. 0.25) to absorb sampling jitter while
	// still failing any genuine extra allocation per op.
	AllocSlack float64
}

// Regression is one detected failure of the gate.
type Regression struct {
	Series  string  // legend name, e.g. "PAT-S"
	Metric  string  // "ops/sec @ N threads", "allocs/op (insert)", "series"
	Old     float64 // baseline value (0 for structural regressions)
	New     float64 // candidate value
	Message string  // human-readable one-liner
}

func (r Regression) String() string { return r.Message }

// ReadArtifact loads and schema-checks one artifact file.
func ReadArtifact(path string) (Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("%s: not a benchmark artifact: %w", path, err)
	}
	if a.Schema != ArtifactSchema {
		return Artifact{}, fmt.Errorf("%s: schema %q, want %q (regenerate with cmd/benchtrie)", path, a.Schema, ArtifactSchema)
	}
	return a, nil
}

// CompareArtifacts gates candidate against baseline and returns every
// regression found (empty means the gate passes). The artifacts must
// describe the same figure; an error reports misuse of the tool, not a
// regression. Points are matched by thread count and series by name, so
// a quick candidate sweep (threads 1,2) gates correctly against a full
// baseline sweep — only shared points are compared. A series present in
// the baseline but missing from the candidate is a regression (an
// implementation fell out of the registry); extra candidate series are
// new work and pass freely.
func CompareArtifacts(baseline, candidate Artifact, opt CompareOptions) ([]Regression, error) {
	if baseline.Figure != candidate.Figure {
		return nil, fmt.Errorf("figure mismatch: baseline %q vs candidate %q", baseline.Figure, candidate.Figure)
	}
	if opt.MaxDrop < 0 || opt.MaxDrop >= 1 {
		return nil, fmt.Errorf("MaxDrop %v out of range [0, 1)", opt.MaxDrop)
	}
	candSeries := make(map[string]ArtifactSeries, len(candidate.Series))
	for _, s := range candidate.Series {
		candSeries[s.Name] = s
	}
	var regs []Regression
	for _, base := range baseline.Series {
		cand, ok := candSeries[base.Name]
		if !ok {
			regs = append(regs, Regression{
				Series: base.Name, Metric: "series",
				Message: fmt.Sprintf("%s: series missing from candidate artifact", base.Name),
			})
			continue
		}
		regs = append(regs, compareThroughput(base, cand, opt.MaxDrop)...)
		regs = append(regs, compareAllocs(base, cand, opt.AllocSlack)...)
		regs = append(regs, compareServerAllocs(base, cand, opt.AllocSlack)...)
	}
	return regs, nil
}

func compareThroughput(base, cand ArtifactSeries, maxDrop float64) []Regression {
	candPoints := make(map[int]ArtifactPoint, len(cand.Points))
	for _, p := range cand.Points {
		candPoints[p.Threads] = p
	}
	var regs []Regression
	for _, bp := range base.Points {
		cp, ok := candPoints[bp.Threads]
		if !ok || bp.MeanOpsPerSec <= 0 {
			continue // unshared point or degenerate baseline: nothing to gate
		}
		floor := bp.MeanOpsPerSec * (1 - maxDrop)
		if cp.MeanOpsPerSec < floor {
			regs = append(regs, Regression{
				Series: base.Name,
				Metric: fmt.Sprintf("ops/sec @ %d threads", bp.Threads),
				Old:    bp.MeanOpsPerSec, New: cp.MeanOpsPerSec,
				Message: fmt.Sprintf("%s @ %d threads: %.0f -> %.0f ops/sec (-%.0f%%, tolerance %.0f%%)",
					base.Name, bp.Threads, bp.MeanOpsPerSec, cp.MeanOpsPerSec,
					100*(1-cp.MeanOpsPerSec/bp.MeanOpsPerSec), 100*maxDrop),
			})
		}
	}
	return regs
}

func compareAllocs(base, cand ArtifactSeries, slack float64) []Regression {
	if base.AllocsPerOp == nil {
		return nil // baseline never pinned allocations for this series
	}
	if cand.AllocsPerOp == nil {
		return []Regression{{
			Series: base.Name, Metric: "allocs/op",
			Message: fmt.Sprintf("%s: allocs/op profile missing from candidate (baseline pins one)", base.Name),
		}}
	}
	ops := []struct {
		name     string
		old, new float64
	}{
		{"contains", base.AllocsPerOp.Contains, cand.AllocsPerOp.Contains},
		{"insert", base.AllocsPerOp.Insert, cand.AllocsPerOp.Insert},
		{"delete", base.AllocsPerOp.Delete, cand.AllocsPerOp.Delete},
	}
	var regs []Regression
	for _, op := range ops {
		if op.new > op.old+slack {
			regs = append(regs, Regression{
				Series: base.Name,
				Metric: fmt.Sprintf("allocs/op (%s)", op.name),
				Old:    op.old, New: op.new,
				Message: fmt.Sprintf("%s: %s allocs/op rose %.2f -> %.2f (slack %.2f)",
					base.Name, op.name, op.old, op.new, slack),
			})
		}
	}
	return regs
}

// compareServerAllocs gates the server-side dispatch pins the same way
// compareAllocs gates the client codec — but only when the baseline has
// them, so pre-existing artifacts (and library figures, which never
// measure the server path) pass untouched. Latency percentiles are
// deliberately NOT gated: they are throughput's noisy cousin, recorded
// for inspection, not regression-tested.
func compareServerAllocs(base, cand ArtifactSeries, slack float64) []Regression {
	if base.ServerAllocsPerOp == nil {
		return nil
	}
	if cand.ServerAllocsPerOp == nil {
		return []Regression{{
			Series: base.Name, Metric: "server allocs/op",
			Message: fmt.Sprintf("%s: server_allocs_per_op missing from candidate (baseline pins it)", base.Name),
		}}
	}
	b, c := base.ServerAllocsPerOp, cand.ServerAllocsPerOp
	ops := []struct {
		name     string
		old, new float64
	}{
		{"get", b.Get, c.Get},
		{"set", b.Set, c.Set},
		{"set_codec", b.SetCodec, c.SetCodec},
		{"del", b.Del, c.Del},
		{"exists", b.Exists, c.Exists},
		{"mget", b.MGet, c.MGet},
	}
	var regs []Regression
	for _, op := range ops {
		if op.new > op.old+slack {
			regs = append(regs, Regression{
				Series: base.Name,
				Metric: fmt.Sprintf("server allocs/op (%s)", op.name),
				Old:    op.old, New: op.new,
				Message: fmt.Sprintf("%s: server %s allocs/op rose %.2f -> %.2f (slack %.2f)",
					base.Name, op.name, op.old, op.new, slack),
			})
		}
	}
	return regs
}

// Package bench is the throughput harness that regenerates the paper's
// evaluation (Section V, Figures 8-11). It reproduces the paper's
// protocol: each data point starts from a structure prefilled to half
// capacity, runs a warmup pass (standing in for JIT warmup on the
// paper's JVM), then averages several fixed-duration timed trials, and
// reports mean throughput with standard deviation.
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nbtrie/internal/stats"
	"nbtrie/internal/workload"
)

// Set is the operation surface the harness drives.
type Set interface {
	Insert(k uint64) bool
	Delete(k uint64) bool
	Contains(k uint64) bool
}

// ReplaceSet is required for workloads with a replace component.
type ReplaceSet interface {
	Set
	Replace(old, new uint64) bool
}

// Config describes one data point of a figure.
type Config struct {
	Mix      workload.Mix
	KeyRange uint64
	Threads  int
	Duration time.Duration
	Trials   int
	Warmup   time.Duration
	// SeqLen > 0 selects the paper's non-uniform generator (Figure 11
	// uses runs of 50 consecutive keys).
	SeqLen uint64
	// Seed varies the whole experiment deterministically.
	Seed uint64
}

// Validate reports configuration errors before any work is done.
func (c Config) Validate() error {
	if !c.Mix.Valid() {
		return fmt.Errorf("bench: mix %+v does not sum to 100", c.Mix)
	}
	if c.KeyRange < 2 {
		return fmt.Errorf("bench: key range %d too small", c.KeyRange)
	}
	if c.Threads < 1 {
		return fmt.Errorf("bench: thread count %d < 1", c.Threads)
	}
	if c.Duration <= 0 || c.Trials < 1 {
		return fmt.Errorf("bench: need positive duration and >= 1 trials")
	}
	return nil
}

// Prefill populates s to half-full over [0, keyRange). The paper fills by
// running a random i50-d50 stream to steady state, which leaves each key
// present with probability 1/2; we sample that stationary distribution
// directly. Keys are inserted in a shuffled order: the random stream's
// insertion order is what gives the unbalanced trees (BST, k-ST) their
// expected logarithmic depth, so a sequential fill would mismeasure them
// catastrophically.
func Prefill(s Set, keyRange, seed uint64) {
	g := workload.NewGenerator(workload.MixI50D50, keyRange, seed)
	perm := make([]uint64, keyRange)
	for k := range perm {
		perm[k] = uint64(k)
	}
	for k := uint64(keyRange) - 1; k > 0; k-- {
		j := g.Next().Key % (k + 1) // generator doubles as shuffle source
		perm[k], perm[j] = perm[j], perm[k]
	}
	for _, k := range perm {
		if g.Next().Key&1 == 0 {
			s.Insert(k)
		}
	}
}

// RunTrial drives cfg.Threads workers against s for cfg.Duration and
// returns the aggregate throughput in operations per second.
func RunTrial(s Set, cfg Config, trialSeed uint64) (float64, error) {
	rs, hasReplace := s.(ReplaceSet)
	if cfg.Mix.ReplacePct > 0 && !hasReplace {
		return 0, fmt.Errorf("bench: mix %v needs a ReplaceSet", cfg.Mix)
	}
	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var g *workload.Generator
			if cfg.SeqLen > 0 {
				g = workload.NewSequenceGenerator(cfg.Mix, cfg.KeyRange, cfg.SeqLen, seed)
			} else {
				g = workload.NewGenerator(cfg.Mix, cfg.KeyRange, seed)
			}
			n := int64(0)
			for !stop.Load() {
				// Batch the stop check so the atomic load does not
				// dominate very fast operations.
				for i := 0; i < 64; i++ {
					op := g.Next()
					switch op.Kind {
					case workload.OpInsert:
						s.Insert(op.Key)
					case workload.OpDelete:
						s.Delete(op.Key)
					case workload.OpFind:
						s.Contains(op.Key)
					case workload.OpReplace:
						rs.Replace(op.Key, op.Key2)
					}
				}
				n += 64
			}
			total.Add(n)
		}(trialSeed*1000003 + uint64(w)*7919)
	}
	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(total.Load()) / elapsed.Seconds(), nil
}

// RunExperiment produces one data point: a fresh prefilled set per trial,
// one warmup trial, then cfg.Trials measured trials summarized as in the
// paper's charts (mean with stddev error bars).
func RunExperiment(factory func() Set, cfg Config) (stats.Summary, error) {
	if err := cfg.Validate(); err != nil {
		return stats.Summary{}, err
	}
	xs := make([]float64, 0, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		s := factory()
		Prefill(s, cfg.KeyRange, cfg.Seed+uint64(trial))
		if cfg.Warmup > 0 {
			wcfg := cfg
			wcfg.Duration = cfg.Warmup
			if _, err := RunTrial(s, wcfg, cfg.Seed+uint64(trial)+500009); err != nil {
				return stats.Summary{}, err
			}
		}
		x, err := RunTrial(s, cfg, cfg.Seed+uint64(trial)+1000003)
		if err != nil {
			return stats.Summary{}, err
		}
		xs = append(xs, x)
	}
	return stats.Summarize(xs), nil
}

// Point is one (threads, throughput) measurement of a series. The
// latency percentiles are optional (zero = not measured): only
// cmd/nbtriebench's client-measured per-batch sampling fills them.
// ServerCmdCalls is likewise optional: cmd/nbtriebench diffs the
// server's INFO Commandstats around the point's trials, so the artifact
// records what the SERVER counted (warmup excluded, per command) next
// to what the client measured — a cross-check that the workload that
// ran is the workload that was asked for.
type Point struct {
	Threads        int
	Summary        stats.Summary
	P50LatencyUS   float64
	P99LatencyUS   float64
	ServerCmdCalls map[string]int64
}

// Series is one line of a figure: an implementation swept over thread
// counts. Fanout is the implementation's branching factor from the
// registry (0 when the caller does not set it), carried into artifacts
// so series are self-describing instead of assumed binary.
type Series struct {
	Name   string
	Fanout int
	Points []Point
}

// RunSeries sweeps cfg over the given thread counts for one
// implementation.
func RunSeries(name string, factory func() Set, cfg Config, threads []int) (Series, error) {
	s := Series{Name: name}
	for _, th := range threads {
		c := cfg
		c.Threads = th
		sum, err := RunExperiment(factory, c)
		if err != nil {
			return Series{}, fmt.Errorf("%s @ %d threads: %w", name, th, err)
		}
		s.Points = append(s.Points, Point{Threads: th, Summary: sum})
	}
	return s, nil
}

// DefaultThreads returns a thread sweep adapted to the host: the paper
// sweeps 1..128 hardware threads; we sweep powers of two up to a small
// multiple of GOMAXPROCS so oversubscription effects are still visible.
func DefaultThreads() []int {
	maxT := 4 * runtime.GOMAXPROCS(0)
	if maxT > 128 {
		maxT = 128
	}
	out := []int{1}
	for t := 2; t <= maxT; t *= 2 {
		out = append(out, t)
	}
	return out
}

package bench

import (
	"sync"
	"testing"
	"time"

	"nbtrie/internal/workload"
)

// lockedSet is a minimal reference implementation for harness tests.
type lockedSet struct {
	mu sync.Mutex
	m  map[uint64]bool
}

func newLockedSet() Set { return &lockedSet{m: make(map[uint64]bool)} }

func (s *lockedSet) Insert(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[k] {
		return false
	}
	s.m[k] = true
	return true
}

func (s *lockedSet) Delete(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[k] {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *lockedSet) Contains(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func TestConfigValidate(t *testing.T) {
	good := Config{Mix: workload.MixI50D50, KeyRange: 100, Threads: 2, Duration: time.Millisecond, Trials: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Mix: workload.Mix{InsertPct: 50}, KeyRange: 100, Threads: 1, Duration: time.Millisecond, Trials: 1},
		{Mix: workload.MixI50D50, KeyRange: 1, Threads: 1, Duration: time.Millisecond, Trials: 1},
		{Mix: workload.MixI50D50, KeyRange: 100, Threads: 0, Duration: time.Millisecond, Trials: 1},
		{Mix: workload.MixI50D50, KeyRange: 100, Threads: 1, Duration: 0, Trials: 1},
		{Mix: workload.MixI50D50, KeyRange: 100, Threads: 1, Duration: time.Millisecond, Trials: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPrefillRoughlyHalf(t *testing.T) {
	s := newLockedSet()
	Prefill(s, 10000, 1)
	n := 0
	for k := uint64(0); k < 10000; k++ {
		if s.Contains(k) {
			n++
		}
	}
	if n < 4500 || n > 5500 {
		t.Errorf("prefill left %d/10000 keys, want ~5000", n)
	}
}

func TestRunTrialCountsOps(t *testing.T) {
	cfg := Config{Mix: workload.MixI50D50, KeyRange: 128, Threads: 2,
		Duration: 50 * time.Millisecond, Trials: 1}
	tput, err := RunTrial(newLockedSet(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Errorf("throughput %v, want > 0", tput)
	}
}

func TestRunTrialRejectsReplaceWithoutSupport(t *testing.T) {
	cfg := Config{Mix: workload.MixI10D10R80, KeyRange: 128, Threads: 1,
		Duration: time.Millisecond, Trials: 1}
	if _, err := RunTrial(newLockedSet(), cfg, 1); err == nil {
		t.Error("replace mix against a plain Set must error")
	}
}

func TestRunExperimentAndSeries(t *testing.T) {
	cfg := Config{Mix: workload.MixI5D5F90, KeyRange: 256, Threads: 1,
		Duration: 20 * time.Millisecond, Trials: 2}
	sum, err := RunExperiment(newLockedSet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 2 || sum.Mean <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	series, err := RunSeries("locked", newLockedSet, cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 2 || series.Points[1].Threads != 2 {
		t.Errorf("series = %+v", series)
	}
}

func TestDefaultThreadsShape(t *testing.T) {
	ths := DefaultThreads()
	if len(ths) == 0 || ths[0] != 1 {
		t.Fatalf("DefaultThreads() = %v", ths)
	}
	for i := 1; i < len(ths); i++ {
		if ths[i] <= ths[i-1] {
			t.Fatalf("thread sweep not increasing: %v", ths)
		}
	}
	if ths[len(ths)-1] > 128 {
		t.Fatalf("sweep exceeds the paper's 128 threads: %v", ths)
	}
}

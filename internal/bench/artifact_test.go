package bench

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"nbtrie/internal/stats"
	"nbtrie/internal/workload"
)

func TestMeasureAllocsOnMapSet(t *testing.T) {
	p := MeasureAllocs(newLockedSet, 1000)
	// A mutex-guarded map set: Contains must not allocate, Insert may
	// (map growth); the point here is that the probe finds real hit/miss
	// keys and the numbers are non-negative and finite.
	if p.Contains != 0 {
		t.Errorf("map set Contains allocs = %v, want 0", p.Contains)
	}
	if p.Insert < 0 || p.Delete < 0 {
		t.Errorf("negative alloc profile: %+v", p)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	cfg := Config{
		Mix:      workload.MixI5D5F90,
		KeyRange: 1000,
		Threads:  1,
		Duration: 5 * time.Millisecond,
		Trials:   1,
		Seed:     7,
	}
	a := NewArtifact("9b", "test figure", cfg, 10, true)
	a.AddSeries(Series{
		Name: "PAT",
		Points: []Point{
			{Threads: 1, Summary: stats.Summary{N: 1, Mean: 123456, Stddev: 42}},
			{Threads: 2, Summary: stats.Summary{N: 1, Mean: 234567, Stddev: 17}},
		},
	}, &AllocsProfile{Contains: 0, Insert: 8, Delete: 2})

	dir := t.TempDir()
	path, err := WriteArtifact(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	if want := dir + "/" + ArtifactFilename("9b"); path != want {
		t.Errorf("artifact path %q, want %q", path, want)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Schema != ArtifactSchema {
		t.Errorf("schema %q, want %q", back.Schema, ArtifactSchema)
	}
	if back.Figure != "9b" || !back.Quick {
		t.Errorf("figure/quick lost: %+v", back)
	}
	if len(back.Series) != 1 || back.Series[0].Name != "PAT" {
		t.Fatalf("series lost: %+v", back.Series)
	}
	if got := back.Series[0].Points[1].MeanOpsPerSec; got != 234567 {
		t.Errorf("point mean = %v, want 234567", got)
	}
	if back.Series[0].AllocsPerOp == nil || back.Series[0].AllocsPerOp.Insert != 8 {
		t.Errorf("allocs profile lost: %+v", back.Series[0].AllocsPerOp)
	}
	if back.Config.KeyRange != 1000 || back.Config.Width != 10 || back.Config.Seed != 7 {
		t.Errorf("config lost: %+v", back.Config)
	}
}

package resp

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// Steady-state allocation pins for the server-side codec: after the
// arena has grown to the workload's shape, parsing a command with
// ReadCommandReuse and writing its reply must not allocate at all, and
// Detach (the one copy-out a SET value needs) must cost exactly one
// allocation. These are the wire-layer half of the server-path pins in
// internal/server/alloc_test.go.

// repeatingReader replays the same request bytes forever, so the
// AllocsPerRun loop never sees EOF or a growing input.
type repeatingReader struct {
	data []byte
	off  int
}

func (r *repeatingReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func pinParse(t *testing.T, name string, cmd []byte, want float64) {
	t.Helper()
	rr := NewRequestReader(bufio.NewReaderSize(&repeatingReader{data: cmd}, 16<<10), Limits{})
	// Warm the arena, span table and args header to steady state.
	for i := 0; i < 3; i++ {
		if _, err := rr.ReadCommandReuse(); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(100, func() {
		if _, err := rr.ReadCommandReuse(); err != nil {
			panic(err)
		}
	})
	if got > want {
		t.Errorf("%s: ReadCommandReuse allocates %.1f/op, pinned at %.0f", name, got, want)
	}
}

func TestArenaParseDoesNotAllocate(t *testing.T) {
	pinParse(t, "GET", []byte("*2\r\n$3\r\nGET\r\n$7\r\nkey:123\r\n"), 0)
	pinParse(t, "EXISTS", []byte("*2\r\n$6\r\nEXISTS\r\n$7\r\nkey:123\r\n"), 0)
	pinParse(t, "DEL", []byte("*2\r\n$3\r\nDEL\r\n$7\r\nkey:123\r\n"), 0)
	pinParse(t, "MGET", []byte("*4\r\n$4\r\nMGET\r\n$2\r\naa\r\n$2\r\nab\r\n$2\r\nac\r\n"), 0)
	val := bytes.Repeat([]byte{'x'}, 64)
	set := []byte("*3\r\n$3\r\nSET\r\n$7\r\nkey:123\r\n$64\r\n" + string(val) + "\r\n")
	pinParse(t, "SET", set, 0)
}

func TestDetachIsOneAlloc(t *testing.T) {
	payload := bytes.Repeat([]byte{'v'}, 64)
	got := testing.AllocsPerRun(100, func() {
		if d := Detach(payload); len(d) != len(payload) {
			panic("detach lost bytes")
		}
	})
	if got != 1 {
		t.Errorf("Detach allocates %.1f/op, want exactly 1", got)
	}
	if Detach(nil) != nil {
		t.Error("Detach(nil) must stay nil")
	}
	if d := Detach([]byte{}); d == nil {
		t.Error("Detach of an empty non-nil slice must stay non-nil (empty bulk != null bulk)")
	}
}

func TestReplyWritingDoesNotAllocate(t *testing.T) {
	w := NewWriter(bufio.NewWriterSize(io.Discard, 16<<10))
	val := bytes.Repeat([]byte{'x'}, 64)
	got := testing.AllocsPerRun(100, func() {
		w.WriteSimple("OK")
		w.WriteBulk(val)
		w.WriteNull()
		w.WriteInt(42)
		w.WriteArrayHeader(3)
		if err := w.Flush(); err != nil {
			panic(err)
		}
	})
	if got != 0 {
		t.Errorf("reply writing allocates %.1f/op, pinned at 0", got)
	}
}

package resp

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzRESP throws arbitrary bytes at both parser entry points (the
// server's request reader and the client's reply reader) and checks the
// crash-safety invariants the server's connection loop relies on:
//
//   - no panic and bounded allocation on any input (the Limits must be
//     enforced before any length-prefix-sized allocation happens);
//   - whatever ReadCommand accepts must round-trip: re-encoding the
//     parsed command with WriteCommand and re-parsing yields the same
//     arguments — so the parser cannot "repair" malformed input into a
//     command the client never sent.
//
// The small limits make the fuzzer explore the limit-rejection paths
// with tiny inputs instead of needing megabyte-long bulks.
func FuzzRESP(f *testing.F) {
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$0\r\n\r\n"))
	f.Add([]byte("GET foo\r\n")) // inline: must be rejected
	f.Add([]byte("*0\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("*2\r\n$100\r\nshort\r\n"))
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("-ERR x\r\n"))
	f.Add([]byte(":12345\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Add([]byte("*2\r\n*1\r\n:1\r\n$1\r\nz\r\n"))

	lim := Limits{MaxArrayLen: 16, MaxBulkLen: 512}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Server side: parse a stream of commands to exhaustion, with
		// the arena reader shadowing the allocating one — the two modes
		// must accept exactly the same streams and produce identical
		// arguments, or the server's fast path silently diverges from
		// the codec every other consumer uses.
		rr := NewRequestReader(bufio.NewReader(bytes.NewReader(data)), lim)
		shadow := NewRequestReader(bufio.NewReader(bytes.NewReader(data)), lim)
		for i := 0; i < 64; i++ {
			args, err := rr.ReadCommand()
			arenaArgs, arenaErr := shadow.ReadCommandReuse()
			if (err == nil) != (arenaErr == nil) {
				t.Fatalf("reader modes disagree: ReadCommand err %v, ReadCommandReuse err %v", err, arenaErr)
			}
			if err == nil {
				if len(arenaArgs) != len(args) {
					t.Fatalf("reader modes disagree on arg count: %q vs %q", args, arenaArgs)
				}
				for j := range args {
					if !bytes.Equal(args[j], arenaArgs[j]) {
						t.Fatalf("reader modes disagree on arg %d: %q vs %q", j, args[j], arenaArgs[j])
					}
				}
			}
			if err != nil {
				break
			}
			if len(args) == 0 {
				t.Fatal("ReadCommand returned an empty command without error")
			}
			for _, a := range args {
				if len(a) > lim.MaxBulkLen {
					t.Fatalf("accepted bulk of %d bytes past the %d limit", len(a), lim.MaxBulkLen)
				}
			}
			// Round-trip: re-encode and re-parse.
			var buf bytes.Buffer
			bw := bufio.NewWriter(&buf)
			w := NewWriter(bw)
			w.WriteCommand(args...)
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			again, err := NewRequestReader(bufio.NewReader(&buf), lim).ReadCommand()
			if err != nil {
				t.Fatalf("re-parsing re-encoded command failed: %v (args %q)", err, args)
			}
			if len(again) != len(args) {
				t.Fatalf("round trip changed arg count: %q vs %q", again, args)
			}
			for i := range args {
				if !bytes.Equal(again[i], args[i]) {
					t.Fatalf("round trip changed arg %d: %q vs %q", i, again[i], args[i])
				}
			}
		}

		// Client side: parse a stream of replies to exhaustion.
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			if _, err := ReadReply(r, lim); err != nil {
				break
			}
		}
	})
}

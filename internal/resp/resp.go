// Package resp implements the subset of the RESP2 wire protocol
// (REdis Serialization Protocol, version 2) that the nbtried server
// speaks, exactly once, for its three consumers: the server's request
// reader and reply writer (internal/server), the load generator's
// client codec (cmd/nbtriebench) and triecli's -connect mode.
//
// The subset, and the deliberate restrictions:
//
//   - Client requests are RESP arrays of bulk strings only
//     ("*N\r\n$len\r\n...\r\n..."), the format every real Redis client
//     library emits. The legacy inline-command form (a bare text line)
//     is rejected outright: inline parsing is a historical telnet
//     convenience with its own quoting grammar, and accepting it would
//     double the parser attack surface for zero client benefit.
//   - Replies use the five RESP2 types: simple strings (+), errors (-),
//     integers (:), bulk strings ($, with $-1 as the null bulk) and
//     arrays (*, possibly nested).
//   - Hard limits bound every allocation the parser makes before it
//     trusts the input: a request array may hold at most
//     Limits.MaxArrayLen elements and a bulk string at most
//     Limits.MaxBulkLen bytes. Violations are ProtocolErrors, which the
//     server treats as fatal to the connection (matching Redis, which
//     closes on protocol errors rather than trying to resynchronize a
//     corrupted stream).
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
)

// Wire type markers.
const (
	TypeSimple  = '+'
	TypeError   = '-'
	TypeInt     = ':'
	TypeBulk    = '$'
	TypeArray   = '*'
	TypeNull    = 'N' // synthetic: a $-1 null bulk parsed client-side
	crlf        = "\r\n"
	maxLineDecl = 20 // digits in a length line: enough for any int64
)

// Limits bounds parser allocations. The zero value means "use the
// defaults" wherever a Limits is accepted.
type Limits struct {
	// MaxArrayLen caps the element count of a request or reply array.
	MaxArrayLen int
	// MaxBulkLen caps the byte length of one bulk string.
	MaxBulkLen int
}

// DefaultLimits are generous for a key-value workload (Redis itself
// caps a bulk at 512MB; values that large do not belong in a trie
// serving millions of users) while keeping a hostile length prefix from
// allocating unbounded memory.
var DefaultLimits = Limits{MaxArrayLen: 1024, MaxBulkLen: 8 << 20}

// WithDefaults returns l with zero fields filled from DefaultLimits —
// the resolved limits a parser built from l will actually enforce.
// Servers use it to align reply sizing (e.g. SCAN's page cap) with the
// request-side limits.
func (l Limits) WithDefaults() Limits { return l.orDefaults() }

// orDefaults fills zero fields from DefaultLimits.
func (l Limits) orDefaults() Limits {
	if l.MaxArrayLen <= 0 {
		l.MaxArrayLen = DefaultLimits.MaxArrayLen
	}
	if l.MaxBulkLen <= 0 {
		l.MaxBulkLen = DefaultLimits.MaxBulkLen
	}
	return l
}

// ProtocolError is a violation of the wire format (bad type marker,
// malformed length, missing CRLF, limit exceeded). After one of these
// the stream position is untrustworthy, so connections must be closed;
// errors.As distinguishes it from plain I/O errors.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return "resp: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{msg: fmt.Sprintf(format, args...)}
}

// IsProtocolError reports whether err is (or wraps) a ProtocolError.
func IsProtocolError(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe)
}

// readLine reads one CRLF-terminated line (without the terminator),
// rejecting bare CR or LF inside and unreasonably long lines. It is
// used only for type-marker lines, whose payload is a length or a short
// string; bulk payloads are read by exact byte count instead.
func readLine(r *bufio.Reader, maxLen int) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, protoErrf("line exceeds %d bytes", maxLen)
		}
		return nil, err
	}
	if len(line) > maxLen+2 {
		return nil, protoErrf("line exceeds %d bytes", maxLen)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, protoErrf("line not terminated by CRLF")
	}
	return line[:len(line)-2], nil
}

// parseLen parses the decimal length payload of a *, $ or : line.
// Only canonical forms are accepted — bare digits with no sign and no
// leading zeros, exactly like Redis; strconv alone would also take
// "+2" and "007". -1 is allowed only where the caller says so (null
// bulk / null array), and only spelled exactly "-1". Parsed by hand:
// this runs once per request element, and a string(b) conversion for
// strconv would put an allocation on the hot path.
func parseLen(b []byte, allowNeg bool) (int64, error) {
	if allowNeg && len(b) == 2 && b[0] == '-' && b[1] == '1' {
		return -1, nil
	}
	if len(b) == 0 || (len(b) > 1 && b[0] == '0') {
		return 0, protoErrf("bad length %q", b)
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, protoErrf("bad length %q", b)
		}
		if n > (math.MaxInt64-9)/10 {
			return 0, protoErrf("bad length %q", b)
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

// RequestReader parses client requests from a connection. It is the
// server half of the codec: every request is an array of bulk strings
// or the connection is toast.
//
// It offers two parsing modes. ReadCommand allocates fresh slices per
// command — the right call for clients, tools and replay code that
// keep arguments around. ReadCommandReuse parses into a per-reader
// arena that the next call overwrites, so a long-lived connection
// parses commands with zero steady-state allocations; values that must
// outlive the command (a SET payload headed into the map) are copied
// out explicitly with Detach.
type RequestReader struct {
	r   *bufio.Reader
	lim Limits

	// Arena state for ReadCommandReuse: one grown-on-demand scratch
	// buffer holding every bulk payload of the current command, a span
	// table into it, and the reusable [][]byte handed to the caller.
	// All three retain their capacity across commands.
	arena []byte
	spans []bulkSpan
	args  [][]byte
}

// bulkSpan locates one argument inside the arena. Offsets, not
// subslices, are recorded during the parse: the arena may be
// reallocated while later bulks of the same command grow it, and
// offsets survive that move where pointers would dangle.
type bulkSpan struct{ off, n int }

// arenaRetainMax caps the arena capacity kept across commands. One
// pathological multi-megabyte command should not pin that much memory
// to an idle connection forever; past the cap the arena is dropped and
// the next command re-grows from scratch.
const arenaRetainMax = 1 << 20

// NewRequestReader wraps r. Zero fields of lim take DefaultLimits.
func NewRequestReader(r *bufio.Reader, lim Limits) *RequestReader {
	return &RequestReader{r: r, lim: lim.orDefaults()}
}

// Buffered reports how many request bytes are already in memory. The
// server uses it to decide when a pipelined batch is exhausted and the
// reply buffer should be flushed before blocking in the next read.
func (rr *RequestReader) Buffered() int { return rr.r.Buffered() }

// ReadCommand reads one complete command: a RESP array of bulk strings.
// The returned slices are freshly allocated and remain valid after the
// next call. io.EOF before the first byte of a command is a clean
// disconnect; any malformed input is a ProtocolError. Empty arrays
// ("*0") are rejected — a command needs at least a name.
func (rr *RequestReader) ReadCommand() ([][]byte, error) {
	first, err := rr.r.ReadByte()
	if err != nil {
		return nil, err // io.EOF here = clean disconnect between commands
	}
	if first != TypeArray {
		// The one place inline commands would be accepted; refuse them
		// loudly enough that a human typing into a raw socket learns
		// what to use instead.
		return nil, protoErrf("expected '*' (multibulk request), got %q; inline commands are not supported", first)
	}
	header, err := readLine(rr.r, maxLineDecl)
	if err != nil {
		return nil, eofToUnexpected(err)
	}
	n, err := parseLen(header, false)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, protoErrf("empty command array")
	}
	if n > int64(rr.lim.MaxArrayLen) {
		return nil, protoErrf("request of %d elements exceeds limit %d", n, rr.lim.MaxArrayLen)
	}
	args := make([][]byte, 0, n)
	for i := int64(0); i < n; i++ {
		arg, err := rr.readBulk()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}
	return args, nil
}

// readBulk reads one $-prefixed bulk string of a request (null bulks
// are not valid inside requests).
func (rr *RequestReader) readBulk() ([]byte, error) {
	marker, err := rr.r.ReadByte()
	if err != nil {
		return nil, eofToUnexpected(err)
	}
	if marker != TypeBulk {
		return nil, protoErrf("expected '$' (bulk string) in request, got %q", marker)
	}
	header, err := readLine(rr.r, maxLineDecl)
	if err != nil {
		return nil, eofToUnexpected(err)
	}
	ln, err := parseLen(header, false)
	if err != nil {
		return nil, err
	}
	if ln > int64(rr.lim.MaxBulkLen) {
		return nil, protoErrf("bulk of %d bytes exceeds limit %d", ln, rr.lim.MaxBulkLen)
	}
	buf := make([]byte, ln+2)
	if _, err := io.ReadFull(rr.r, buf); err != nil {
		return nil, eofToUnexpected(err)
	}
	if buf[ln] != '\r' || buf[ln+1] != '\n' {
		return nil, protoErrf("bulk payload not terminated by CRLF")
	}
	return buf[:ln:ln], nil
}

// ReadCommandReuse reads one complete command like ReadCommand, but
// the returned slice and every argument in it are only valid until the
// next ReadCommand/ReadCommandReuse call: arguments point into a
// per-reader arena the next command overwrites, and the [][]byte
// header is reused too. After the arena and span tables have grown to
// a workload's steady state, parsing allocates nothing at all. Callers
// that need an argument to survive the command copy it out with
// Detach; everything handed onward synchronously (map lookups, reply
// writes, AOF appends that buffer immediately) can use the arguments
// in place.
func (rr *RequestReader) ReadCommandReuse() ([][]byte, error) {
	first, err := rr.r.ReadByte()
	if err != nil {
		return nil, err // io.EOF here = clean disconnect between commands
	}
	if first != TypeArray {
		return nil, protoErrf("expected '*' (multibulk request), got %q; inline commands are not supported", first)
	}
	header, err := readLine(rr.r, maxLineDecl)
	if err != nil {
		return nil, eofToUnexpected(err)
	}
	n, err := parseLen(header, false)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, protoErrf("empty command array")
	}
	if n > int64(rr.lim.MaxArrayLen) {
		return nil, protoErrf("request of %d elements exceeds limit %d", n, rr.lim.MaxArrayLen)
	}
	if cap(rr.arena) > arenaRetainMax {
		rr.arena = nil
	}
	rr.arena = rr.arena[:0]
	rr.spans = rr.spans[:0]
	for i := int64(0); i < n; i++ {
		if err := rr.readBulkArena(); err != nil {
			return nil, err
		}
	}
	// Materialize the argument slices only now, from the arena's final
	// backing array: a mid-command grow can no longer move anything.
	rr.args = rr.args[:0]
	for _, sp := range rr.spans {
		rr.args = append(rr.args, rr.arena[sp.off:sp.off+sp.n:sp.off+sp.n])
	}
	return rr.args, nil
}

// readBulkArena reads one $-prefixed bulk string of a request into the
// arena, recording its span.
func (rr *RequestReader) readBulkArena() error {
	marker, err := rr.r.ReadByte()
	if err != nil {
		return eofToUnexpected(err)
	}
	if marker != TypeBulk {
		return protoErrf("expected '$' (bulk string) in request, got %q", marker)
	}
	header, err := readLine(rr.r, maxLineDecl)
	if err != nil {
		return eofToUnexpected(err)
	}
	ln, err := parseLen(header, false)
	if err != nil {
		return err
	}
	if ln > int64(rr.lim.MaxBulkLen) {
		return protoErrf("bulk of %d bytes exceeds limit %d", ln, rr.lim.MaxBulkLen)
	}
	off := len(rr.arena)
	need := off + int(ln) + 2 // payload + trailing CRLF
	rr.arena = slices.Grow(rr.arena, int(ln)+2)[:need]
	if _, err := io.ReadFull(rr.r, rr.arena[off:need]); err != nil {
		return eofToUnexpected(err)
	}
	if rr.arena[need-2] != '\r' || rr.arena[need-1] != '\n' {
		return protoErrf("bulk payload not terminated by CRLF")
	}
	rr.spans = append(rr.spans, bulkSpan{off: off, n: int(ln)})
	return nil
}

// Detach copies an argument returned by ReadCommandReuse out of the
// arena so it survives the next command — the one allocation a stored
// SET value costs. It is a bytes.Clone with a name that marks arena
// escapes at the call site.
func Detach(b []byte) []byte { return bytes.Clone(b) }

// eofToUnexpected turns a mid-command EOF into io.ErrUnexpectedEOF so
// only a clean between-commands disconnect reads as io.EOF.
func eofToUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Writer emits RESP replies (server side) and commands (client side)
// into a bufio.Writer the caller owns; nothing reaches the wire until
// Flush. All methods return the first sticky error of the underlying
// writer, so callers may write a whole pipelined batch and check once.
type Writer struct {
	w       *bufio.Writer
	scratch [24]byte // integer formatting without allocation

	// errs counts WriteError calls. The server's dispatch layer diffs it
	// around each command to attribute error replies per command without
	// threading a flag through every arm. Plain int: a Writer is owned by
	// one connection goroutine.
	errs int64
}

// NewWriter wraps w.
func NewWriter(w *bufio.Writer) *Writer { return &Writer{w: w} }

// Flush forces everything written so far onto the wire.
func (w *Writer) Flush() error { return w.w.Flush() }

// Buffered reports bytes not yet flushed.
func (w *Writer) Buffered() int { return w.w.Buffered() }

func (w *Writer) line(marker byte, payload string) error {
	w.w.WriteByte(marker)
	w.w.WriteString(payload)
	_, err := w.w.WriteString(crlf)
	return err
}

func (w *Writer) lineInt(marker byte, n int64) error {
	w.w.WriteByte(marker)
	w.w.Write(strconv.AppendInt(w.scratch[:0], n, 10))
	_, err := w.w.WriteString(crlf)
	return err
}

// WriteSimple writes "+s\r\n". s must not contain CR or LF.
func (w *Writer) WriteSimple(s string) error { return w.line(TypeSimple, s) }

// WriteError writes "-msg\r\n". msg must not contain CR or LF; by RESP
// convention it starts with an uppercase error-class word ("ERR ...",
// "CROSSSHARD ...").
func (w *Writer) WriteError(msg string) error {
	w.errs++
	return w.line(TypeError, msg)
}

// ErrorCount returns the number of WriteError calls on this Writer.
func (w *Writer) ErrorCount() int64 { return w.errs }

// WriteInt writes ":n\r\n".
func (w *Writer) WriteInt(n int64) error { return w.lineInt(TypeInt, n) }

// WriteBulk writes "$len\r\n<b>\r\n". nil is NOT the null bulk — use
// WriteNull for absent values; an empty non-nil slice is "$0\r\n\r\n".
func (w *Writer) WriteBulk(b []byte) error {
	w.lineInt(TypeBulk, int64(len(b)))
	w.w.Write(b)
	_, err := w.w.WriteString(crlf)
	return err
}

// WriteBulkString is WriteBulk for a string without converting through
// a byte slice.
func (w *Writer) WriteBulkString(s string) error {
	w.lineInt(TypeBulk, int64(len(s)))
	w.w.WriteString(s)
	_, err := w.w.WriteString(crlf)
	return err
}

// WriteNull writes the RESP2 null bulk "$-1\r\n" (absent value).
func (w *Writer) WriteNull() error { return w.line(TypeBulk, "-1") }

// WriteArrayHeader writes "*n\r\n"; the caller then writes n elements.
func (w *Writer) WriteArrayHeader(n int) error { return w.lineInt(TypeArray, int64(n)) }

// WriteCommand writes one client request: an array of bulk strings.
func (w *Writer) WriteCommand(args ...[]byte) error {
	w.WriteArrayHeader(len(args))
	var err error
	for _, a := range args {
		err = w.WriteBulk(a)
	}
	return err
}

// WriteCommandString is WriteCommand over string arguments.
func (w *Writer) WriteCommandString(args ...string) error {
	w.WriteArrayHeader(len(args))
	var err error
	for _, a := range args {
		err = w.WriteBulkString(a)
	}
	return err
}

// Value is one parsed reply, the client half of the codec. Kind is the
// wire type marker (TypeSimple, TypeError, TypeInt, TypeBulk,
// TypeArray) or TypeNull for the $-1 null bulk.
type Value struct {
	Kind  byte
	Str   []byte  // simple string, error text, or bulk payload
	Int   int64   // integer reply
	Array []Value // array reply, nil for the *-1 null array
}

// IsNull reports the null bulk / null array.
func (v Value) IsNull() bool { return v.Kind == TypeNull }

// Err returns the error reply as a Go error, or nil for any other kind.
func (v Value) Err() error {
	if v.Kind == TypeError {
		return fmt.Errorf("%s", v.Str)
	}
	return nil
}

// String renders the value for human-facing output (triecli -connect).
func (v Value) String() string {
	switch v.Kind {
	case TypeSimple:
		return string(v.Str)
	case TypeError:
		return "(error) " + string(v.Str)
	case TypeInt:
		return "(integer) " + strconv.FormatInt(v.Int, 10)
	case TypeBulk:
		return strconv.Quote(string(v.Str))
	case TypeNull:
		return "(nil)"
	case TypeArray:
		if len(v.Array) == 0 {
			return "(empty array)"
		}
		s := ""
		for i, e := range v.Array {
			if i > 0 {
				s += "\n"
			}
			s += fmt.Sprintf("%d) %s", i+1, e)
		}
		return s
	default:
		return fmt.Sprintf("(unknown type %q)", v.Kind)
	}
}

// ReadReply parses one complete reply of any RESP2 type. Nested arrays
// are bounded to the same element limit per level and a fixed depth.
func ReadReply(r *bufio.Reader, lim Limits) (Value, error) {
	return readReply(r, lim.orDefaults(), 0)
}

// maxReplyDepth bounds array nesting; the server subset never nests
// past 2 (SCAN's [cursor, [keys...]]), so 8 is generous and keeps a
// hostile byte stream from recursing the client to death.
const maxReplyDepth = 8

func readReply(r *bufio.Reader, lim Limits, depth int) (Value, error) {
	if depth > maxReplyDepth {
		return Value{}, protoErrf("reply nesting exceeds depth %d", maxReplyDepth)
	}
	marker, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch marker {
	case TypeSimple, TypeError:
		line, err := readLine(r, lim.MaxBulkLen)
		if err != nil {
			return Value{}, eofToUnexpected(err)
		}
		return Value{Kind: marker, Str: append([]byte(nil), line...)}, nil
	case TypeInt:
		line, err := readLine(r, maxLineDecl)
		if err != nil {
			return Value{}, eofToUnexpected(err)
		}
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return Value{}, protoErrf("bad integer %q", line)
		}
		return Value{Kind: TypeInt, Int: n}, nil
	case TypeBulk:
		line, err := readLine(r, maxLineDecl)
		if err != nil {
			return Value{}, eofToUnexpected(err)
		}
		ln, err := parseLen(line, true)
		if err != nil {
			return Value{}, err
		}
		if ln == -1 {
			return Value{Kind: TypeNull}, nil
		}
		if ln > int64(lim.MaxBulkLen) {
			return Value{}, protoErrf("bulk of %d bytes exceeds limit %d", ln, lim.MaxBulkLen)
		}
		buf := make([]byte, ln+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, eofToUnexpected(err)
		}
		if buf[ln] != '\r' || buf[ln+1] != '\n' {
			return Value{}, protoErrf("bulk payload not terminated by CRLF")
		}
		return Value{Kind: TypeBulk, Str: buf[:ln:ln]}, nil
	case TypeArray:
		line, err := readLine(r, maxLineDecl)
		if err != nil {
			return Value{}, eofToUnexpected(err)
		}
		n, err := parseLen(line, true)
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Kind: TypeNull}, nil
		}
		if n > int64(lim.MaxArrayLen) {
			return Value{}, protoErrf("array of %d elements exceeds limit %d", n, lim.MaxArrayLen)
		}
		out := Value{Kind: TypeArray, Array: make([]Value, 0, n)}
		for i := int64(0); i < n; i++ {
			e, err := readReply(r, lim, depth+1)
			if err != nil {
				return Value{}, eofToUnexpected(err)
			}
			out.Array = append(out.Array, e)
		}
		return out, nil
	default:
		return Value{}, protoErrf("unknown reply type %q", marker)
	}
}

package resp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

func reqReader(s string, lim Limits) *RequestReader {
	return NewRequestReader(bufio.NewReader(strings.NewReader(s)), lim)
}

func TestReadCommand(t *testing.T) {
	rr := reqReader("*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n*1\r\n$4\r\nPING\r\n", Limits{})
	args, err := rr.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || string(args[0]) != "SET" || string(args[1]) != "foo" || string(args[2]) != "bar" {
		t.Fatalf("args = %q", args)
	}
	args, err = rr.ReadCommand()
	if err != nil || len(args) != 1 || string(args[0]) != "PING" {
		t.Fatalf("second command = %q, %v", args, err)
	}
	if _, err := rr.ReadCommand(); err != io.EOF {
		t.Fatalf("at stream end: %v, want io.EOF", err)
	}
}

func TestReadCommandBinarySafe(t *testing.T) {
	// Keys and values may contain CR, LF and NUL; the length-prefixed
	// format must carry them through untouched.
	raw := "*2\r\n$3\r\nGET\r\n$5\r\na\r\n\x00b\r\n"
	args, err := reqReader(raw, Limits{}).ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if string(args[1]) != "a\r\n\x00b" {
		t.Fatalf("binary arg = %q", args[1])
	}
}

// TestReadCommandMalformed is the table the fuzz target grew from:
// every way a request can be malformed must yield a ProtocolError (or a
// truncation error), never a panic and never a bogus parse.
func TestReadCommandMalformed(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		proto bool // expect a ProtocolError specifically
	}{
		{"inline command", "PING\r\n", true},
		{"inline get", "GET foo\r\n", true},
		{"empty array", "*0\r\n", true},
		{"negative array", "*-1\r\n", true},
		{"huge array", "*999999999\r\n", true},
		{"array len overflow", "*99999999999999999999\r\n", true},
		{"bad array len", "*x\r\n", true},
		{"array lf only", "*1\n$4\r\nPING\r\n", true},
		{"element not bulk", "*1\r\n+PING\r\n", true},
		{"nested array element", "*1\r\n*1\r\n$4\r\nPING\r\n", true},
		{"negative bulk", "*1\r\n$-1\r\n", true},
		{"bad bulk len", "*1\r\n$abc\r\n", true},
		{"plus-signed array len", "*+1\r\n$4\r\nPING\r\n", true},
		{"leading-zero array len", "*01\r\n$4\r\nPING\r\n", true},
		{"leading-zero bulk len", "*1\r\n$04\r\nPING\r\n", true},
		{"minus-zero bulk len", "*1\r\n$-0\r\n", true},
		{"huge bulk", "*1\r\n$999999999\r\n", true},
		{"bulk not crlf terminated", "*1\r\n$4\r\nPINGxx", true},
		{"bulk short payload", "*1\r\n$10\r\nPING\r\n", false},
		{"truncated header", "*", false},
		{"truncated after header", "*2\r\n$4\r\nPING\r\n", false},
		{"truncated bulk header", "*1\r\n$4", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := reqReader(tc.in, Limits{}).ReadCommand()
			if err == nil {
				t.Fatal("malformed input parsed without error")
			}
			if err == io.EOF {
				t.Fatal("mid-command truncation must not read as a clean EOF")
			}
			if tc.proto && !IsProtocolError(err) {
				t.Fatalf("err = %v, want ProtocolError", err)
			}
		})
	}
}

func TestLimits(t *testing.T) {
	lim := Limits{MaxArrayLen: 3, MaxBulkLen: 5}
	if _, err := reqReader("*4\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n$1\r\nd\r\n", lim).ReadCommand(); !IsProtocolError(err) {
		t.Fatalf("oversized array: %v", err)
	}
	if _, err := reqReader("*1\r\n$6\r\nabcdef\r\n", lim).ReadCommand(); !IsProtocolError(err) {
		t.Fatalf("oversized bulk: %v", err)
	}
	// At the limits, both pass.
	if _, err := reqReader("*3\r\n$5\r\nabcde\r\n$1\r\nb\r\n$1\r\nc\r\n", lim).ReadCommand(); err != nil {
		t.Fatalf("at-limit request rejected: %v", err)
	}
}

func TestWriterReplies(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	w := NewWriter(bw)
	w.WriteSimple("OK")
	w.WriteError("ERR boom")
	w.WriteInt(-42)
	w.WriteBulk([]byte("hi"))
	w.WriteBulk([]byte{})
	w.WriteNull()
	w.WriteArrayHeader(2)
	w.WriteBulkString("cursor")
	w.WriteArrayHeader(0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR boom\r\n:-42\r\n$2\r\nhi\r\n$0\r\n\r\n$-1\r\n*2\r\n$6\r\ncursor\r\n*0\r\n"
	if buf.String() != want {
		t.Fatalf("wire = %q, want %q", buf.String(), want)
	}
}

func TestReadReplyAllTypes(t *testing.T) {
	wire := "+OK\r\n-ERR nope\r\n:7\r\n$3\r\nabc\r\n$-1\r\n*2\r\n$1\r\nx\r\n:1\r\n*-1\r\n*0\r\n"
	r := bufio.NewReader(strings.NewReader(wire))
	read := func() Value {
		t.Helper()
		v, err := ReadReply(r, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := read(); v.Kind != TypeSimple || string(v.Str) != "OK" {
		t.Fatalf("simple = %+v", v)
	}
	if v := read(); v.Err() == nil || v.Err().Error() != "ERR nope" {
		t.Fatalf("error = %+v", v)
	}
	if v := read(); v.Kind != TypeInt || v.Int != 7 {
		t.Fatalf("int = %+v", v)
	}
	if v := read(); v.Kind != TypeBulk || string(v.Str) != "abc" {
		t.Fatalf("bulk = %+v", v)
	}
	if v := read(); !v.IsNull() {
		t.Fatalf("null bulk = %+v", v)
	}
	v := read()
	if v.Kind != TypeArray || len(v.Array) != 2 ||
		string(v.Array[0].Str) != "x" || v.Array[1].Int != 1 {
		t.Fatalf("array = %+v", v)
	}
	if v := read(); !v.IsNull() {
		t.Fatalf("null array = %+v", v)
	}
	if v := read(); v.Kind != TypeArray || len(v.Array) != 0 {
		t.Fatalf("empty array = %+v", v)
	}
}

func TestReadReplyMalformed(t *testing.T) {
	for _, in := range []string{
		"?\r\n",
		":notanint\r\n",
		"$5\r\nab\r\n",
		"$2\r\nabcd\r\n",
		"*2\r\n:1\r\n",
		strings.Repeat("*1\r\n", maxReplyDepth+2) + ":1\r\n",
	} {
		if _, err := ReadReply(bufio.NewReader(strings.NewReader(in)), Limits{}); err == nil {
			t.Errorf("ReadReply(%q) parsed without error", in)
		}
	}
}

// TestCommandRoundTrip: anything WriteCommand emits, ReadCommand parses
// back verbatim — the property the fuzz target generalizes.
func TestCommandRoundTrip(t *testing.T) {
	cmds := [][][]byte{
		{[]byte("PING")},
		{[]byte("SET"), []byte("k"), []byte("")},
		{[]byte("MSET"), []byte("a"), {0, 1, 2, '\r', '\n'}, []byte("b"), []byte("v")},
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	w := NewWriter(bw)
	for _, c := range cmds {
		w.WriteCommand(c...)
	}
	w.Flush()
	rr := NewRequestReader(bufio.NewReader(&buf), Limits{})
	for _, c := range cmds {
		got, err := rr.ReadCommand()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c) {
			t.Fatalf("arg count %d, want %d", len(got), len(c))
		}
		for i := range c {
			if !bytes.Equal(got[i], c[i]) {
				t.Fatalf("arg %d = %q, want %q", i, got[i], c[i])
			}
		}
	}
}

func TestValueString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Value{Kind: TypeSimple, Str: []byte("OK")}, "OK"},
		{Value{Kind: TypeNull}, "(nil)"},
		{Value{Kind: TypeInt, Int: 3}, "(integer) 3"},
		{Value{Kind: TypeBulk, Str: []byte("v")}, `"v"`},
		{Value{Kind: TypeArray}, "(empty array)"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestReadCommandReuseArenaSemantics: arguments from ReadCommandReuse
// are overwritten by the next command (that is the contract), Detach
// rescues the ones that must survive, and a huge command does not pin
// its arena to the reader forever.
func TestReadCommandReuseArenaSemantics(t *testing.T) {
	stream := bytes.NewBufferString(
		"*3\r\n$3\r\nSET\r\n$2\r\naa\r\n$5\r\nfirst\r\n" +
			"*3\r\n$3\r\nSET\r\n$2\r\nbb\r\n$6\r\nsecond\r\n")
	rr := NewRequestReader(bufio.NewReader(stream), Limits{})

	args, err := rr.ReadCommandReuse()
	if err != nil {
		t.Fatal(err)
	}
	aliased := args[2]      // points into the arena
	kept := Detach(args[2]) // survives the next command
	if string(kept) != "first" {
		t.Fatalf("detached value %q, want %q", kept, "first")
	}

	args2, err := rr.ReadCommandReuse()
	if err != nil {
		t.Fatal(err)
	}
	if string(args2[1]) != "bb" || string(args2[2]) != "second" {
		t.Fatalf("second command parsed as %q", args2)
	}
	if string(kept) != "first" {
		t.Fatalf("detached copy corrupted by arena reuse: %q", kept)
	}
	// The aliased slice now reads the second command's bytes — the
	// documented hazard Detach exists for. (Same length prefix "fi" vs
	// arena layout means we only assert it is NOT guaranteed stable.)
	_ = aliased

	// Retention cap: a command past arenaRetainMax is parsed fine, and
	// the arena is dropped afterward instead of pinning megabytes.
	big := bytes.Repeat([]byte{'z'}, arenaRetainMax+1)
	var bigCmd bytes.Buffer
	fmt.Fprintf(&bigCmd, "*3\r\n$3\r\nSET\r\n$2\r\ncc\r\n$%d\r\n%s\r\n", len(big), big)
	bigCmd.WriteString("*1\r\n$4\r\nPING\r\n")
	rr2 := NewRequestReader(bufio.NewReader(&bigCmd), Limits{MaxBulkLen: arenaRetainMax + 2})
	got, err := rr2.ReadCommandReuse()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[2], big) {
		t.Fatal("big bulk corrupted through the arena")
	}
	if _, err := rr2.ReadCommandReuse(); err != nil {
		t.Fatal(err)
	}
	if cap(rr2.arena) > arenaRetainMax {
		t.Fatalf("arena cap %d retained past arenaRetainMax %d", cap(rr2.arena), arenaRetainMax)
	}
}

package engine

import (
	"sync/atomic"
	"testing"
	"time"
)

// Failure-injection tests: a process is stalled right after planting its
// flags — the paper's "if an operation dies while nodes are flagged for
// it, other processes can complete the operation and remove the flags".
// These tests prove the helping path deterministically, not just under
// racy stress. They run here, against the shared engine, once for every
// instantiation in the repository.

// stallFirst installs a hook that blocks the first process to finish
// flagging (simulating a crash) and lets every later caller — the
// helpers — pass through. It returns (stalled, release): stalled is
// signalled once the victim is parked; closing release revives it.
func stallFirst(t *testing.T) (stalled chan *udesc, release chan struct{}) {
	t.Helper()
	stalled = make(chan *udesc, 1)
	release = make(chan struct{})
	var once atomic.Bool
	testHookAfterFlagging = func(d any) {
		if once.CompareAndSwap(false, true) {
			stalled <- d.(*udesc)
			<-release
		}
	}
	t.Cleanup(func() { testHookAfterFlagging = nil })
	return stalled, release
}

// TestHelperCompletesStalledInsert stalls an Insert after flagging; a
// second operation needing the same node must complete the stalled
// insert (its key appears!) before performing its own.
func TestHelperCompletesStalledInsert(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(100)
	stalled, release := stallFirst(t)

	done := make(chan bool)
	go func() { done <- tr.Insert(101) }()
	<-stalled // the inserter is parked with its flags planted

	// 101's leaf is not linked yet: the stalled process never performed
	// its child CAS. A search must not find it...
	if tr.Contains(101) {
		t.Fatal("stalled insert must not be visible before any helper runs")
	}
	// ...but an update that needs the flagged parent must help first.
	// 100 and 101 share a parent, so Insert(102) (same 8-bit prefix
	// region) collides with the planted flag and helps.
	if !tr.Insert(102) {
		t.Fatal("helper insert failed")
	}
	if !tr.Contains(101) {
		t.Fatal("helper must have completed the stalled insert's child CAS")
	}
	if !tr.Contains(102) {
		t.Fatal("helper's own insert lost")
	}

	close(release)
	if !<-done {
		t.Fatal("stalled inserter must still report success")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
}

// TestHelperCompletesStalledReplace stalls a general-case Replace after
// it flagged four nodes; the helper must then perform BOTH child CASes —
// the old key vanishes and the new key appears atomically even though
// the original process is dead to the world.
func TestHelperCompletesStalledReplace(t *testing.T) {
	tr := mustNew(t, 12)
	tr.Insert(100)  // vd, left region
	tr.Insert(101)  // vd's sibling-ish neighbour (gives vd a grandparent)
	tr.Insert(3000) // far region so the replace takes the general case
	tr.Insert(3001)
	stalled, release := stallFirst(t)

	done := make(chan bool)
	go func() { done <- tr.Replace(100, 3002) }()
	d := <-stalled
	if d.rmvLeaf == nil {
		t.Fatalf("expected the stall to catch a general-case replace (rmvLeaf set)")
	}

	// An update near the insertion point runs into the flags and helps.
	if !tr.Insert(3003) {
		t.Fatal("helper insert failed")
	}
	if tr.Contains(100) {
		t.Fatal("helper must have completed the replace's delete half")
	}
	if !tr.Contains(3002) {
		t.Fatal("helper must have completed the replace's insert half")
	}

	close(release)
	if !<-done {
		t.Fatal("stalled replacer must still report success")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{101, 3000, 3001, 3002, 3003} {
		if !tr.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

// TestReaderNeverBlocksOnStalledUpdate pins the wait-free find claim: a
// search crossing flagged nodes completes immediately, without helping
// and without waiting for the stalled updater.
func TestReaderNeverBlocksOnStalledUpdate(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(100)
	stalled, release := stallFirst(t)

	done := make(chan bool)
	go func() { done <- tr.Insert(101) }()
	<-stalled

	finished := make(chan struct{})
	go func() {
		for k := uint64(0); k < 256; k++ {
			tr.Contains(k)
		}
		close(finished)
	}()
	select {
	case <-finished:
		// Searches sailed straight through the planted flags.
	case <-time.After(5 * time.Second):
		t.Fatal("wait-free search blocked behind a stalled update")
	}

	close(release)
	<-done
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadPerformsNoCAS verifies the wait-free read path: with an update
// stalled mid-protocol (flags planted, child CASes pending), Load must
// complete, never help, and leave every info field exactly as it found
// it — and it must not allocate.
func TestLoadPerformsNoCAS(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Store(10, "ten")
	tr.Store(20, "twenty")

	entered := make(chan *udesc, 1)
	release := make(chan struct{})
	testHookAfterFlagging = func(d any) {
		entered <- d.(*udesc)
		<-release
	}
	defer func() { testHookAfterFlagging = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		tr.Insert(21) // stalls after its flag CASes succeed
	}()
	d := <-entered

	// The stalled insert is not yet linearized (no child CAS): 21 absent.
	if _, ok := tr.Load(21); ok {
		t.Error("Load observed an update before its linearization point")
	}
	if v, ok := tr.Load(10); !ok || v != "ten" {
		t.Errorf("Load(10) = %v,%v under a stalled update", v, ok)
	}
	if v, ok := tr.Load(20); !ok || v != "twenty" {
		t.Errorf("Load(20) = %v,%v under a stalled update", v, ok)
	}

	// Load must not have helped: every node the stalled update flagged
	// still carries its descriptor (a CAS-ing reader would have completed
	// the child swaps or unflagged them).
	for j := 0; j < int(d.nFlag); j++ {
		if d.flag[j].info.Load() != d {
			t.Error("a flag planted by the stalled update was changed by Load")
		}
	}

	// And it must not allocate: the returned value is the leaf's already-
	// boxed payload.
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := tr.Load(10); !ok {
			t.Fatal("Load(10) missed")
		}
	}); n != 0 {
		t.Errorf("Load allocates %v objects per call, want 0", n)
	}

	close(release)
	<-done
	if v, ok := tr.Load(21); !ok || v != nil {
		t.Errorf("Load(21) after release = %v,%v", v, ok)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

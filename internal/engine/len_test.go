package engine

import (
	"sync"
	"testing"
)

// The Len counter is bumped only by the initiating goroutine of a
// successful insert or delete, after the operation's linearization
// point. These tests pin the two halves of that contract: every
// key-count-changing path moves it by exactly one, every neutral path
// (failed ops, overwrites, replaces) leaves it alone, and after any
// amount of concurrent hammering it agrees with a full traversal.

func TestLenSequential(t *testing.T) {
	tr := mustNew(t, 8)
	check := func(want int, what string) {
		t.Helper()
		if got := tr.Len(); got != want {
			t.Fatalf("after %s: Len() = %d, want %d", what, got, want)
		}
		if got, size := tr.Len(), tr.Size(); got != size {
			t.Fatalf("after %s: Len() = %d but Size() = %d", what, got, size)
		}
	}
	check(0, "construction")

	tr.Insert(10)
	check(1, "insert")
	tr.Insert(10) // duplicate: no change
	check(1, "duplicate insert")

	tr.Store(20, "v") // store-insert
	check(2, "store-insert")
	tr.Store(20, "w") // store-overwrite: no change
	check(2, "store-overwrite")

	tr.Trie.LoadOrStore(tr.enc(30), "x") // stores
	check(3, "LoadOrStore store")
	tr.Trie.LoadOrStore(tr.enc(30), "y") // loads: no change
	check(3, "LoadOrStore load")

	tr.Trie.CompareAndSwap(tr.enc(30), "x", "z") // value only: no change
	check(3, "CompareAndSwap")

	if !tr.Replace(10, 11) {
		t.Fatal("Replace(10, 11) failed")
	}
	check(3, "replace") // net zero: one key out, one in
	tr.Replace(10, 12)  // old absent: failed replace, no change
	check(3, "failed replace")

	if !tr.Trie.CompareAndDelete(tr.enc(30), "z") {
		t.Fatal("CompareAndDelete failed")
	}
	check(2, "CompareAndDelete")
	tr.Trie.CompareAndDelete(tr.enc(30), "z") // absent: no change
	check(2, "failed CompareAndDelete")

	tr.Delete(11)
	check(1, "delete")
	tr.Delete(11) // absent: no change
	check(1, "duplicate delete")
	tr.Delete(20)
	check(0, "final delete")
}

// TestLenConcurrent hammers one trie from many goroutines with every
// mutating operation and requires the counter to agree exactly with a
// traversal at quiescence: each successful operation must have been
// counted exactly once no matter how much helping went on.
func TestLenConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 3000
		width   = 10
		space   = 1 << width
	)
	tr := mustNew(t, width)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed*2654435761 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < rounds; i++ {
				k := next() % space
				switch next() % 6 {
				case 0:
					tr.Insert(k)
				case 1:
					tr.Delete(k)
				case 2:
					tr.Store(k, seed)
				case 3:
					tr.Trie.LoadOrStore(tr.enc(k), seed)
				case 4:
					tr.Trie.CompareAndDelete(tr.enc(k), seed)
				case 5:
					tr.Replace(k, next()%space)
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	if got, size := tr.Len(), tr.Size(); got != size {
		t.Fatalf("at quiescence Len() = %d but traversal Size() = %d", got, size)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

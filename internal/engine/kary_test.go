package engine

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"nbtrie/internal/keys"
)

// Tests of the k-ary (span > 1) generalization: the slot fill/clear
// paths that do not exist at span 1, the root-CAS sentinel, digit-based
// contraction, snapshots over wide nodes, and the discipline that span 1
// keeps the inline two-slot layout (so the binary alloc pins hold).

func karyNew(t *testing.T, width, span uint32) testTrie {
	t.Helper()
	return mustNew(t, width, WithSpan[keys.Uint64Key, any](span))
}

func TestKarySpanBounds(t *testing.T) {
	for _, s := range []uint32{0, 7, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WithSpan(%d) must panic", s)
				}
			}()
			WithSpan[keys.Uint64Key, any](s)
		}()
	}
}

// TestSpanLayout pins the hybrid child storage: span 1 nodes use the
// inline two-slot array (ext == nil, one allocation per internal node —
// the binary alloc budgets depend on it), wide nodes carry a 2^s ext.
func TestSpanLayout(t *testing.T) {
	bin := mustNew(t, 8)
	for _, k := range []uint64{3, 9, 200, 77} {
		bin.Insert(k)
	}
	var walk func(n *unode)
	walk = func(n *unode) {
		if n.leaf {
			return
		}
		if n.ext != nil || n.fanout() != 2 {
			t.Fatalf("span-1 internal node %v has ext (fanout %d)", n.label, n.fanout())
		}
		for j := 0; j < n.fanout(); j++ {
			if c := n.kid(j).Load(); c != nil {
				walk(c)
			}
		}
	}
	walk(bin.root.Load())

	wide := karyNew(t, 8, 4)
	if got := wide.root.Load().fanout(); got != 16 {
		t.Fatalf("span-4 root fanout = %d, want 16", got)
	}
	if err := wide.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKaryRootFillAndClear drives the two update paths that exist only
// for wide nodes on the root itself, where there is no grandparent and
// the descriptor uses the root-CAS sentinel: filling an empty slot on
// insert and clearing a slot on delete (the root never contracts).
func TestKaryRootFillAndClear(t *testing.T) {
	tr := karyNew(t, 7, 4) // internal keys are 8 bits: two whole digits
	r0 := tr.root.Load()
	if live, _ := r0.census(-1); live != 2 {
		t.Fatalf("fresh root has %d children, want the 2 dummies", live)
	}

	// Key 47 encodes to 0x30: first digit 3, an empty root slot.
	if !tr.Insert(47) {
		t.Fatal("Insert(47) failed")
	}
	r1 := tr.root.Load()
	if r1 == r0 {
		t.Fatal("slot fill must install a fresh root copy via the root CAS")
	}
	if c := r1.kid(3).Load(); c == nil || !c.leaf {
		t.Fatal("filled slot 3 must hold the new leaf")
	}
	if !tr.Contains(47) || tr.Size() != 1 {
		t.Fatal("Insert(47) not visible")
	}

	if !tr.Insert(79) { // encodes to 0x50: slot 5
		t.Fatal("Insert(79) failed")
	}
	if !tr.Delete(47) {
		t.Fatal("Delete(47) failed")
	}
	r2 := tr.root.Load()
	if r2.kid(3).Load() != nil {
		t.Fatal("slot clear must leave slot 3 empty")
	}
	if tr.Contains(47) || !tr.Contains(79) || tr.Size() != 1 {
		t.Fatal("Delete(47) wrong contents")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKaryDeepFillAndContract exercises the same paths one level down,
// where the grandparent exists, plus the digit-based contraction: a wide
// node left with exactly two children is replaced by its lone surviving
// subtree, exactly as in the binary protocol.
func TestKaryDeepFillAndContract(t *testing.T) {
	tr := karyNew(t, 7, 4)
	// 48 → 0x31 (digits 3,1) and 49 → 0x32 (digits 3,2) share the first
	// digit, so they join under an internal node with a 4-bit label.
	tr.Insert(48)
	tr.Insert(49)
	a := tr.root.Load().kid(3).Load()
	if a == nil || a.leaf || a.label.Len() != 4 || a.fanout() != 16 {
		t.Fatalf("expected a wide internal node with a one-digit label under root slot 3")
	}

	// 62 → 0x3F (digits 3,15): an empty slot of a, with the root as gp.
	if !tr.Insert(62) {
		t.Fatal("Insert(62) failed")
	}
	b := tr.root.Load().kid(3).Load()
	if b == a {
		t.Fatal("deep slot fill must swing the grandparent's child to a fresh copy")
	}
	if live, _ := b.census(-1); live != 3 {
		t.Fatalf("filled node has %d children, want 3", live)
	}

	// Removing 62 brings it back to two children — but via slot clear is
	// wrong (three live before the removal means clear; two means
	// contract). First the clear...
	if !tr.Delete(62) {
		t.Fatal("Delete(62) failed")
	}
	c := tr.root.Load().kid(3).Load()
	if c.leaf || c.kid(15).Load() != nil {
		t.Fatal("slot clear must leave a wide node with slot 15 empty")
	}
	// ...then the contraction: deleting 49 leaves 48 alone under c, and c
	// contracts into 48's leaf.
	if !tr.Delete(49) {
		t.Fatal("Delete(49) failed")
	}
	if d := tr.root.Load().kid(3).Load(); d == nil || !d.leaf {
		t.Fatal("two-child wide node must contract into the surviving leaf")
	}
	if !tr.Contains(48) || tr.Contains(49) || tr.Size() != 1 {
		t.Fatal("wrong contents after contraction")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKaryReplaceShapes drives Replace through the overlap shapes that
// are new at span > 1: the replacement landing on the removed key's own
// leaf (one CAS), and the insert half ending at an empty slot of the
// removed key's parent (the fused fill+clear copy).
func TestKaryReplaceShapes(t *testing.T) {
	// ri.node == rd.node: with only 48 present, the search for 49 (0x32,
	// digits 3,2) stops at 48's leaf (0x31) under root slot 3.
	tr := karyNew(t, 7, 4)
	tr.Insert(48)
	if !tr.Replace(48, 49) {
		t.Fatal("Replace(48, 49) failed")
	}
	if tr.Contains(48) || !tr.Contains(49) || tr.Size() != 1 {
		t.Fatal("Replace(48, 49) wrong contents")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// ri.p == rd.p with ri.node == nil: 79 (0x50, digit 5) routes to an
	// empty slot of the root, the same node that holds 49's leaf — one
	// copy with both the fill and the clear, one root CAS.
	if !tr.Replace(49, 79) {
		t.Fatal("Replace(49, 79) failed")
	}
	if tr.Contains(49) || !tr.Contains(79) || tr.Size() != 1 {
		t.Fatal("Replace(49, 79) wrong contents")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// Disjoint halves: delete under one wide node, fill under another.
	tr2 := karyNew(t, 7, 4)
	for _, k := range []uint64{48, 49, 111, 112} { // 0x31,0x32 / 0x70,0x71
		tr2.Insert(k)
	}
	if !tr2.Replace(48, 126) { // 126 → 0x7F: empty slot 15 of the 0x7-node
		t.Fatal("Replace(48, 126) failed")
	}
	if tr2.Contains(48) || !tr2.Contains(126) || tr2.Size() != 4 {
		t.Fatal("Replace(48, 126) wrong contents")
	}
	for _, k := range []uint64{49, 111, 112} {
		if !tr2.Contains(k) {
			t.Fatalf("bystander key %d lost", k)
		}
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKarySnapshotFrozen: snapshots must freeze wide structure too —
// slot fills and clears after the snapshot go through copy-on-write and
// never disturb the captured view.
func TestKarySnapshotFrozen(t *testing.T) {
	tr := karyNew(t, 7, 4)
	for _, k := range []uint64{10, 48, 49, 100} {
		tr.Insert(k)
	}
	snap := tr.Trie.Snapshot()
	if snap.Len() != 4 {
		t.Fatalf("snapshot Len = %d, want 4", snap.Len())
	}

	tr.Delete(48)      // slot clear behind the snapshot's back
	tr.Insert(79)      // root slot fill
	tr.Replace(49, 62) // fused under the 0x3-node
	tr.Store(10, "x")  // leaf overwrite

	for _, k := range []uint64{10, 48, 49, 100} {
		if !snap.Contains(tr.enc(k)) {
			t.Errorf("snapshot lost key %d", k)
		}
	}
	for _, k := range []uint64{79, 62} {
		if snap.Contains(tr.enc(k)) {
			t.Errorf("snapshot sees post-snapshot key %d", k)
		}
	}
	if v, ok := snap.Load(tr.enc(10)); !ok || v != nil {
		t.Errorf("snapshot Load(10) = %v, %v; want nil, true", v, ok)
	}
	n := 0
	snap.AscendKV(keys.Uint64Key{}, func(keys.Uint64Key, any) bool { n++; return true })
	if n != 4 {
		t.Errorf("snapshot iteration saw %d keys, want 4", n)
	}
	for _, k := range []uint64{10, 62, 79, 100} {
		if !tr.Contains(k) {
			t.Errorf("live trie lost key %d", k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKaryQuickOpSequences is the random op-sequence property test at
// each wide span, at a width whose internal key length (17) is a
// multiple of none of them — every trie has partial bottom digits.
func TestKaryQuickOpSequences(t *testing.T) {
	for _, span := range []uint32{2, 4, 6} {
		type op struct {
			Kind byte
			K    uint16
			K2   uint16
		}
		f := func(ops []op) bool {
			tr := karyNew(t, 16, span)
			oracle := make(map[uint64]bool)
			for _, o := range ops {
				k, k2 := uint64(o.K), uint64(o.K2)
				switch o.Kind % 4 {
				case 0:
					if tr.Insert(k) != !oracle[k] {
						return false
					}
					oracle[k] = true
				case 1:
					if tr.Delete(k) != oracle[k] {
						return false
					}
					delete(oracle, k)
				case 2:
					if tr.Contains(k) != oracle[k] {
						return false
					}
				case 3:
					want := oracle[k] && !oracle[k2] && k != k2
					if tr.Replace(k, k2) != want {
						return false
					}
					if want {
						delete(oracle, k)
						oracle[k2] = true
					}
				}
			}
			return tr.Validate() == nil && tr.Size() == len(oracle)
		}
		cfg := &quick.Config{
			MaxCount: 150,
			Rand:     rand.New(rand.NewSource(int64(span))),
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("span %d: %v", span, err)
		}
	}
}

// TestKaryConcurrent is the racy battery for wide nodes: goroutines
// hammer disjoint key ranges (so the final contents are deterministic)
// while a snapshotter forces generation bumps and copy-on-write renewals
// through the wide-node paths. Run under -race in CI.
func TestKaryConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 300
	)
	tr := karyNew(t, 16, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				s := tr.Trie.Snapshot()
				_ = s.Len()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * 2048)
			for i := uint64(0); i < perW; i++ {
				tr.Insert(base + i)
			}
			for i := uint64(0); i < perW; i += 2 {
				tr.Delete(base + i)
			}
			for i := uint64(1); i < perW; i += 4 {
				// odd i: survived the deletes; move it up out of the range.
				tr.Replace(base+i, base+1024+i)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-snapDone

	for w := 0; w < workers; w++ {
		base := uint64(w * 2048)
		for i := uint64(0); i < perW; i++ {
			want := i%2 == 1 && i%4 != 1
			if got := tr.Contains(base + i); got != want {
				t.Fatalf("worker %d key %d: Contains = %v, want %v", w, i, got, want)
			}
			if i%4 == 1 {
				if !tr.Contains(base + 1024 + i) {
					t.Fatalf("worker %d replaced key %d missing", w, i)
				}
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != tr.Len() {
		t.Fatalf("Size %d != Len %d at quiescence", tr.Size(), tr.Len())
	}
}

package engine

import "nbtrie/internal/keys"

// Ordered traversal and queries, generic over the key type. The trie's
// leaves are sorted by K's prefix-first lexicographic Compare, so
// ascending iteration and ceiling/floor queries are structural walks
// with Compare-based pruning: a subtree rooted at label L holds exactly
// the live keys that are proper extensions of L, and every extension of
// L sorts on the same side of a probe v as L itself unless L is a prefix
// of v. All of these read without synchronization: results are exact at
// quiescence and best-effort under concurrent updates (each visited link
// was current at the moment it was read).

// usableLeaf reports whether a leaf holds a live user key: not one of
// the two dummies and not logically removed by a general-case replace.
func (t *Trie[K, V]) usableLeaf(n *node[K, V]) bool {
	if n.label.Equal(t.dummyMin) || n.label.Equal(t.dummyMax) {
		return false
	}
	return !t.logicallyRemoved(n.info.Load())
}

// allBelow reports whether every leaf under c sorts strictly before v:
// c's label differs from v at some bit before either ends and is
// smaller there, so all of its extensions are too. (When c.label is a
// prefix of v its subtree straddles v and cannot be pruned.)
func allBelow[K keys.Key[K], V any](c *node[K, V], v K) bool {
	return c.label.Compare(v) < 0 && !c.label.IsPrefixOf(v)
}

// allAbove is the symmetric upper prune: every leaf under c sorts
// strictly after v.
func allAbove[K keys.Key[K], V any](c *node[K, V], v K) bool {
	return c.label.Compare(v) > 0 && !c.label.IsPrefixOf(v)
}

// AscendKV calls fn on every live (key, value) pair with key >= from, in
// ascending encoded-key order, until fn returns false. A zero-value K
// (the empty string) iterates everything. Subtrees entirely below from
// are pruned, so resuming an iteration from a midpoint costs one
// descent, not a full walk.
func (t *Trie[K, V]) AscendKV(from K, fn func(k K, val V) bool) {
	t.ascendNode(t.root.Load(), from, fn)
}

func (t *Trie[K, V]) ascendNode(n *node[K, V], v K, fn func(K, V) bool) bool {
	if n.leaf {
		if n.label.Compare(v) >= 0 && t.usableLeaf(n) {
			return fn(n.label, n.val)
		}
		return true
	}
	for idx := 0; idx < n.fanout(); idx++ {
		c := n.kid(idx).Load()
		if c == nil || allBelow(c, v) {
			continue
		}
		if !t.ascendNode(c, v, fn) {
			return false
		}
	}
	return true
}

// Ceiling returns the smallest live key >= v, if any.
func (t *Trie[K, V]) Ceiling(v K) (K, bool) {
	return t.ceilNode(t.root.Load(), v)
}

func (t *Trie[K, V]) ceilNode(n *node[K, V], v K) (K, bool) {
	if n.leaf {
		if n.label.Compare(v) >= 0 && t.usableLeaf(n) {
			return n.label, true
		}
		var zero K
		return zero, false
	}
	for idx := 0; idx < n.fanout(); idx++ {
		c := n.kid(idx).Load()
		if c == nil || allBelow(c, v) {
			continue
		}
		if k, ok := t.ceilNode(c, v); ok {
			return k, true
		}
	}
	var zero K
	return zero, false
}

// Floor returns the largest live key <= v, if any.
func (t *Trie[K, V]) Floor(v K) (K, bool) {
	return t.floorNode(t.root.Load(), v)
}

func (t *Trie[K, V]) floorNode(n *node[K, V], v K) (K, bool) {
	if n.leaf {
		if n.label.Compare(v) <= 0 && t.usableLeaf(n) {
			return n.label, true
		}
		var zero K
		return zero, false
	}
	for idx := n.fanout() - 1; idx >= 0; idx-- {
		c := n.kid(idx).Load()
		if c == nil || allAbove(c, v) {
			continue
		}
		if k, ok := t.floorNode(c, v); ok {
			return k, true
		}
	}
	var zero K
	return zero, false
}

package engine

import (
	"testing"

	"nbtrie/internal/keys"
)

// runEngineOps drives the shared engine through an operation sequence —
// the full surface: Insert, Delete, Contains, Replace, Store, Load,
// LoadOrStore, CompareAndSwap, CompareAndDelete — against a Go map
// oracle, and checks the structural invariants at the end. The byte
// stream decodes to (op, key, key2/value) triples, so a fuzzer can
// construct adversarial shapes (prefix pile-ups, replace chains,
// overwrite storms) no hand-written table covers. span selects the
// digit width; 1 is the paper's binary trie.
func runEngineOps(t *testing.T, data []byte, span uint32) {
	const width = 10
	tr := New[keys.Uint64Key, uint16](keys.Uint64DummyMin(width), keys.Uint64DummyMax(width),
		WithSpan[keys.Uint64Key, uint16](span))
	enc := func(k uint64) keys.Uint64Key { return keys.EncodeUint64(k, width) }

	type entry struct {
		present bool
		val     uint16
	}
	oracle := make(map[uint64]entry)

	for i := 0; i+2 < len(data); i += 3 {
		op := data[i] % 9
		k := uint64(data[i+1]) // keys in [0, 256): plenty of collisions
		arg := uint64(data[i+2])
		val := uint16(data[i+2])
		switch op {
		case 0: // Insert
			want := !oracle[k].present
			if tr.Insert(enc(k)) != want {
				t.Fatalf("op %d: Insert(%d) disagreed with oracle", i, k)
			}
			if want {
				oracle[k] = entry{present: true}
			}
		case 1: // Delete
			want := oracle[k].present
			if tr.Delete(enc(k)) != want {
				t.Fatalf("op %d: Delete(%d) disagreed with oracle", i, k)
			}
			delete(oracle, k)
		case 2: // Contains
			if tr.Contains(enc(k)) != oracle[k].present {
				t.Fatalf("op %d: Contains(%d) disagreed with oracle", i, k)
			}
		case 3: // Replace
			want := oracle[k].present && !oracle[arg].present && k != arg
			if tr.Replace(enc(k), enc(arg)) != want {
				t.Fatalf("op %d: Replace(%d,%d) disagreed with oracle", i, k, arg)
			}
			if want {
				oracle[arg] = oracle[k]
				delete(oracle, k)
			}
		case 4: // Store
			tr.Store(enc(k), val)
			oracle[k] = entry{present: true, val: val}
		case 5: // Load
			e := oracle[k]
			v, ok := tr.Load(enc(k))
			if ok != e.present || (ok && v != e.val) {
				t.Fatalf("op %d: Load(%d) = %d,%v want %d,%v", i, k, v, ok, e.val, e.present)
			}
		case 6: // LoadOrStore
			e := oracle[k]
			v, loaded := tr.LoadOrStore(enc(k), val)
			if loaded != e.present || (loaded && v != e.val) || (!loaded && v != val) {
				t.Fatalf("op %d: LoadOrStore(%d,%d) = %d,%v oracle %+v", i, k, val, v, loaded, e)
			}
			if !loaded {
				oracle[k] = entry{present: true, val: val}
			}
		case 7: // CompareAndSwap (old value = low bits of arg)
			old := uint16(arg % 8)
			e := oracle[k]
			want := e.present && e.val == old
			if tr.CompareAndSwap(enc(k), old, val) != want {
				t.Fatalf("op %d: CAS(%d,%d,%d) disagreed with oracle %+v", i, k, old, val, e)
			}
			if want {
				oracle[k] = entry{present: true, val: val}
			}
		case 8: // CompareAndDelete
			old := uint16(arg % 8)
			e := oracle[k]
			want := e.present && e.val == old
			if tr.CompareAndDelete(enc(k), old) != want {
				t.Fatalf("op %d: CompareAndDelete(%d,%d) disagreed with oracle %+v", i, k, old, e)
			}
			if want {
				delete(oracle, k)
			}
		}
	}

	if err := tr.Validate(nil); err != nil {
		t.Fatalf("invariants violated after op sequence: %v", err)
	}
	if got := tr.Size(); got != len(oracle) {
		t.Fatalf("Size() = %d, oracle %d", got, len(oracle))
	}
	for k, e := range oracle {
		if v, ok := tr.Load(enc(k)); !ok || v != e.val {
			t.Fatalf("final Load(%d) = %d,%v want %d,true", k, v, ok, e.val)
		}
	}
}

// FuzzEngineOps fuzzes operation sequences against the oracle at span 1,
// the paper's binary trie.
func FuzzEngineOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 2, 0, 3, 1, 9, 1, 1, 0})
	f.Add([]byte{0, 5, 0, 3, 5, 9, 0, 9, 0, 3, 9, 5, 1, 9, 0})
	f.Add([]byte{4, 1, 7, 5, 1, 7, 8, 1, 7, 6, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		runEngineOps(t, data, 1)
	})
}

// FuzzEngineOpsKary is the same oracle fuzz with the first byte selecting
// the digit width from {1, 2, 4, 6}, so one corpus exercises the binary
// protocol and the k-ary slot fill/clear paths (including the partial
// bottom digit: width 10 is not a multiple of 4 or 6) side by side.
func FuzzEngineOpsKary(f *testing.F) {
	f.Add([]byte{2, 0, 1, 0, 1, 2, 0, 3, 1, 9, 1, 1, 0})
	f.Add([]byte{1, 0, 5, 0, 3, 5, 9, 0, 9, 0, 3, 9, 5, 1, 9, 0})
	f.Add([]byte{3, 4, 1, 7, 5, 1, 7, 8, 1, 7, 6, 1, 9})
	f.Add([]byte{0, 0, 8, 0, 0, 9, 0, 1, 8, 0, 3, 8, 200, 1, 9, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		spans := [...]uint32{1, 2, 4, 6}
		runEngineOps(t, data[1:], spans[data[0]%4])
	})
}

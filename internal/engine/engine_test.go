package engine

import (
	"testing"

	"nbtrie/internal/keys"
)

// The engine's white-box tests instantiate it once, with the fixed-width
// Uint64Key at a small width, and drive the protocol machinery directly.
// Every instantiation (core, strtrie, spatial) shares this exact code
// path, so the helping, backtracking and failure-injection batteries run
// here once instead of per-trie copies.

// Type shorthands for the Uint64Key/any instantiation used throughout.
type (
	unode = node[keys.Uint64Key, any]
	udesc = desc[keys.Uint64Key, any]
)

// testTrie wraps the engine with a width so tests can speak uint64 user
// keys; the embedded Trie's white-box internals (root, search, help,
// newDesc, ...) stay directly reachable.
type testTrie struct {
	*Trie[keys.Uint64Key, any]
	width uint32
}

// enc maps a user key to its full-length internal key.
func (tt testTrie) enc(k uint64) keys.Uint64Key { return keys.EncodeUint64(k, tt.width) }

func (tt testTrie) Insert(k uint64) bool   { return tt.Trie.Insert(tt.enc(k)) }
func (tt testTrie) Delete(k uint64) bool   { return tt.Trie.Delete(tt.enc(k)) }
func (tt testTrie) Contains(k uint64) bool { return tt.Trie.Contains(tt.enc(k)) }
func (tt testTrie) Replace(old, new uint64) bool {
	return tt.Trie.Replace(tt.enc(old), tt.enc(new))
}
func (tt testTrie) Store(k uint64, v any) { tt.Trie.Store(tt.enc(k), v) }
func (tt testTrie) Load(k uint64) (any, bool) {
	return tt.Trie.Load(tt.enc(k))
}
func (tt testTrie) Validate() error {
	return tt.Trie.Validate(nil)
}

func mustNew(t *testing.T, width uint32, opts ...Option[keys.Uint64Key, any]) testTrie {
	t.Helper()
	return testTrie{
		Trie:  New[keys.Uint64Key, any](keys.Uint64DummyMin(width), keys.Uint64DummyMax(width), opts...),
		width: width,
	}
}

func newTestLeaf(tt testTrie, k uint64) *unode {
	return newLeaf[keys.Uint64Key, any](tt.enc(k))
}

func TestEngineBasicRoundTrip(t *testing.T) {
	tr := mustNew(t, 8)
	if tr.Contains(5) || tr.Size() != 0 {
		t.Error("fresh engine trie must be empty")
	}
	if !tr.Insert(5) || tr.Insert(5) {
		t.Error("Insert semantics broken")
	}
	if !tr.Contains(5) || tr.Contains(6) {
		t.Error("Contains semantics broken")
	}
	if !tr.Replace(5, 6) || tr.Contains(5) || !tr.Contains(6) {
		t.Error("Replace semantics broken")
	}
	if !tr.Delete(6) || tr.Delete(6) {
		t.Error("Delete semantics broken")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEngineWithoutReplacePanics(t *testing.T) {
	tr := mustNew(t, 8, WithoutReplace[keys.Uint64Key, any]())
	tr.Insert(1)
	if !tr.Contains(1) || tr.Contains(2) {
		t.Error("basic ops must still work with WithoutReplace")
	}
	defer func() {
		if recover() == nil {
			t.Error("Replace on a WithoutReplace trie should panic")
		}
	}()
	tr.Replace(1, 2)
}

package engine

// Replace atomically removes old and inserts new, returning true exactly
// when old was present and new absent (lines 42-71). Both changes become
// visible at the operation's first successful child CAS: in the general
// case the new key's leaf is installed first, which simultaneously makes
// the old key's leaf "logically removed" (searches detect this through
// the leaf's info field), and the old leaf is physically unlinked by a
// second child CAS. When the two changes would overlap — the four special
// cases of the paper's Figure 6 — a single child CAS swings in a freshly
// built subtree that realizes both changes at once.
//
// Replace moves the key's value payload along with it: after a
// successful Replace(old, new), new is bound to the value old held.
//
// Each case helps any conflicting update found among the captured info
// values before building its replacement subtree, so a doomed attempt
// costs no node allocations.
//
// Replace panics if the trie was built with WithoutReplace.
func (t *Trie[K, V]) Replace(vd, vi K) bool {
	if t.skipRmvdCheck {
		panic("patricia trie: Replace called on a trie built with WithoutReplace")
	}
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for {
		rd := t.searchMut(vd)
		if !keyInTrie(rd.node, vd, rd.rmvd) {
			return false // old key absent (line 46)
		}
		ri := t.searchMut(vi)
		if keyInTrie(ri.node, vi, ri.rmvd) {
			return false // new key already present (line 48)
		}
		nodeInfoI := ri.node.info.Load()                      // line 49
		sibD := rd.p.child[1-vd.Bit(rd.p.label.Len())].Load() // line 50

		var i *desc[K, V]
		switch {
		case rd.gp != nil &&
			ri.node != rd.node && ri.node != rd.p && ri.node != rd.gp &&
			ri.p != rd.p:
			i = t.replaceGeneral(vi, rd, ri, nodeInfoI, sibD)

		case ri.node == rd.node:
			// Special case 1 (lines 58-59): the insertion point is the
			// very leaf being removed; overwrite it with a fresh leaf.
			if t.helpConflict(rd.pInfo, nil, nil, nil) {
				break
			}
			i = t.newDesc(
				[4]*node[K, V]{rd.p}, [4]*desc[K, V]{rd.pInfo}, 1,
				[2]*node[K, V]{rd.p}, 1,
				[2]*node[K, V]{rd.p}, [2]*node[K, V]{ri.node},
				[2]*node[K, V]{newLeafVal(vi, rd.node.val)}, 1,
				nil)

		case (ri.node == rd.p && ri.p == rd.gp) ||
			(rd.gp != nil && ri.p == rd.p):
			// Special cases 2 and 3 (lines 60-64): the deletion removes
			// the node the insertion would replace (or they share a
			// parent). Replace the old leaf's parent with a new internal
			// node joining the old leaf's sibling and the new key.
			if t.helpConflict(rd.gpInfo, rd.pInfo, nil, nil) {
				break
			}
			newNodeI := t.makeInternal(sibD, newLeafVal(vi, rd.node.val), sibD.info.Load())
			if newNodeI == nil {
				break
			}
			i = t.newDesc(
				[4]*node[K, V]{rd.gp, rd.p}, [4]*desc[K, V]{rd.gpInfo, rd.pInfo}, 2,
				[2]*node[K, V]{rd.gp}, 1,
				[2]*node[K, V]{rd.gp}, [2]*node[K, V]{rd.p},
				[2]*node[K, V]{newNodeI}, 1,
				nil)

		case ri.node == rd.gp:
			// Special case 4 (lines 65-70): the insertion would replace
			// the old key's grandparent. Rebuild that subtree without the
			// old leaf or its parent, then join it with the new key.
			if t.helpConflict(ri.pInfo, rd.gpInfo, rd.pInfo, nil) {
				break
			}
			pSibD := rd.gp.child[1-vd.Bit(rd.gp.label.Len())].Load()
			newChildI := t.makeInternal(sibD, pSibD, nil)
			if newChildI == nil {
				break
			}
			newNodeI := t.makeInternal(newChildI, newLeafVal(vi, rd.node.val), nil)
			if newNodeI == nil {
				break
			}
			i = t.newDesc(
				[4]*node[K, V]{ri.p, rd.gp, rd.p},
				[4]*desc[K, V]{ri.pInfo, rd.gpInfo, rd.pInfo}, 3,
				[2]*node[K, V]{ri.p}, 1,
				[2]*node[K, V]{ri.p}, [2]*node[K, V]{ri.node},
				[2]*node[K, V]{newNodeI}, 1,
				nil)
		}

		if i != nil && t.help(i) {
			return true
		}
	}
}

// replaceGeneral builds the descriptor for the paper's general case
// (lines 51-57): the insertion and deletion touch disjoint parts of the
// trie, so the update flags the union of what insert(vi) and delete(vd)
// would flag, marks the old leaf, and performs two child CASes — insert
// first, then delete. rmvLeaf is the old key's leaf; once the first child
// CAS lands, searches reaching that leaf see it as logically removed.
func (t *Trie[K, V]) replaceGeneral(vi K, rd, ri searchResult[K, V], nodeInfoI *desc[K, V], sibD *node[K, V]) *desc[K, V] {
	// Help-before-build: every info value this case will hand to newDesc
	// is checked up front, so no subtree is constructed for an attempt
	// that is already doomed by a conflicting update.
	if t.helpConflict(rd.gpInfo, rd.pInfo, ri.pInfo, nodeInfoI) {
		return nil
	}
	// The fresh leaf for the new key inherits the removed leaf's value:
	// rd.node is immutable, so reading its payload here is consistent
	// with the leaf the descriptor marks as rmvLeaf.
	newNodeI := t.makeInternal(copyNode(ri.node, t.curGen()), newLeafVal(vi, rd.node.val), nodeInfoI) // lines 52-53
	if newNodeI == nil {
		return nil
	}
	if !ri.node.leaf {
		// Line 55: the displaced insertion point is internal, so it too
		// must be flagged (permanently — it leaves the trie).
		return t.newDesc(
			[4]*node[K, V]{rd.gp, rd.p, ri.p, ri.node},
			[4]*desc[K, V]{rd.gpInfo, rd.pInfo, ri.pInfo, nodeInfoI}, 4,
			[2]*node[K, V]{rd.gp, ri.p}, 2,
			[2]*node[K, V]{ri.p, rd.gp},
			[2]*node[K, V]{ri.node, rd.p},
			[2]*node[K, V]{newNodeI, sibD}, 2,
			rd.node)
	}
	// Line 57: leaf insertion point.
	return t.newDesc(
		[4]*node[K, V]{rd.gp, rd.p, ri.p},
		[4]*desc[K, V]{rd.gpInfo, rd.pInfo, ri.pInfo}, 3,
		[2]*node[K, V]{rd.gp, ri.p}, 2,
		[2]*node[K, V]{ri.p, rd.gp},
		[2]*node[K, V]{ri.node, rd.p},
		[2]*node[K, V]{newNodeI, sibD}, 2,
		rd.node)
}

package engine

import "nbtrie/internal/keys"

// Replace atomically removes old and inserts new, returning true exactly
// when old was present and new absent (lines 42-71). Both changes become
// visible at the operation's first successful child CAS: in the general
// case the new key's leaf is installed first, which simultaneously makes
// the old key's leaf "logically removed" (searches detect this through
// the leaf's info field), and the old leaf is physically unlinked by a
// second child CAS. When the two changes would overlap — the four special
// cases of the paper's Figure 6, extended here to wide nodes — a single
// child CAS swings in a freshly built subtree that realizes both changes
// at once.
//
// The wide-node (span > 1) generalization adds two degrees of freedom to
// the case analysis. First, the insertion point may be an empty slot
// (ri.node == nil), in which case the insert half replaces ri.p wholesale
// with a filled copy rather than CASing a slot in place — see tryFill —
// and the overlap cases are reworked around that: the delete must fold
// into the copy whenever its CAS would target ri.p (which the fill
// removes) or whenever the fill's CAS would target a node the delete
// removes. Second, the delete half only contracts the parent when it has
// exactly two children; a wider parent gets a slot-cleared copy
// (afterDelete), and either form drops into the enclosing copy in the
// fused cases. Every fused case remains a single child CAS; the general
// cases remain exactly two, insert first. At span 1 every wide-only
// branch is dead (binary nodes have no empty slots and always exactly two
// children) and the descriptors produced are the paper's, shape for
// shape.
//
// Replace moves the key's value payload along with it: after a
// successful Replace(old, new), new is bound to the value old held.
//
// Each case helps any conflicting update found among the captured info
// values before building its replacement subtree, so a doomed attempt
// costs no node allocations.
//
// Replace panics if the trie was built with WithoutReplace.
func (t *Trie[K, V]) Replace(vd, vi K) bool {
	if t.skipRmvdCheck {
		panic("patricia trie: Replace called on a trie built with WithoutReplace")
	}
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for first := true; ; first = false {
		if !first {
			t.stats.OpRetries.Inc()
		}
		rd := t.searchMut(vd)
		if !keyInTrie(rd.node, vd, rd.rmvd) {
			return false // old key absent (line 46)
		}
		ri := t.searchMut(vi)
		if keyInTrie(ri.node, vi, ri.rmvd) {
			return false // new key already present (line 48)
		}
		var i *desc[K, V]
		if ri.node == nil {
			i = t.replaceFill(vi, rd, ri)
		} else {
			i = t.replaceAt(vi, rd, ri)
		}
		if i != nil && t.help(i) {
			return true
		}
	}
}

// afterDelete builds what replaces p once the removed leaf's slot sd is
// vacated: the lone remaining sibling when only one other child exists
// (the paper's contraction), or a fresh slot-cleared copy of p when two
// or more remain. contracted distinguishes the forms for callers whose
// shape depends on it. The copy reads p's children, so the caller must
// flag p with the info captured at search time (Lemma 31).
func (t *Trie[K, V]) afterDelete(p *node[K, V], sd int, g uint64) (res *node[K, V], contracted bool) {
	live, sib := p.census(sd)
	if live == 2 {
		return sib, true
	}
	return t.copyNodeSet(p, g, sd, nil, -1, nil), false
}

// oneCAS packs the descriptor for every fused replace case: a single
// child CAS swinging target's slot (nil target = the trie root pointer)
// from oldC to newC, flagging the nFlag nodes in f. The target is the
// only flagged node that stays in the trie, so it alone is unflagged.
func (t *Trie[K, V]) oneCAS(target, oldC, newC *node[K, V],
	f [4]*node[K, V], fi [4]*desc[K, V], nFlag int) *desc[K, V] {
	var unflag [2]*node[K, V]
	nUnflag := 0
	if target != nil {
		unflag[0] = target
		nUnflag = 1
	}
	return t.newDesc(f, fi, nFlag, unflag, nUnflag,
		[2]*node[K, V]{target}, [2]*node[K, V]{oldC}, [2]*node[K, V]{newC}, 1,
		nil)
}

// replaceAt builds the descriptor when the insertion point is an
// occupied position ri.node: the paper's Figure 6, with the delete half
// generalized through afterDelete.
func (t *Trie[K, V]) replaceAt(vi K, rd, ri searchResult[K, V]) *desc[K, V] {
	nodeInfoI := ri.node.info.Load() // line 49: info before children
	sd := t.slotOf(rd.node.label, rd.p.label.Len())
	g := t.curGen()

	switch {
	case ri.node == rd.node:
		// Special case 1 (lines 58-59): the insertion point is the very
		// leaf being removed; overwrite it with a fresh leaf. The new
		// key shares the removed key's digit at rd.p (both searches
		// descended through the same slot), so the one CAS lands on the
		// removed leaf's slot.
		if t.helpConflict(rd.pInfo, nil, nil, nil) {
			return nil
		}
		return t.oneCAS(rd.p, ri.node, newLeafVal(vi, rd.node.val),
			[4]*node[K, V]{rd.p}, [4]*desc[K, V]{rd.pInfo}, 1)

	case ri.node == rd.p && ri.p == rd.gp:
		// Special case 2 (lines 60-62): the new key diverges from the
		// removed key's parent. One CAS replaces rd.p with the join of
		// the new leaf and rd.p-after-the-delete.
		if t.helpConflict(rd.gpInfo, rd.pInfo, nil, nil) {
			return nil
		}
		res, _ := t.afterDelete(rd.p, sd, g)
		newNodeI := t.makeInternal(res, newLeafVal(vi, rd.node.val), nodeInfoI)
		if newNodeI == nil {
			return nil
		}
		return t.oneCAS(rd.gp, rd.p, newNodeI,
			[4]*node[K, V]{rd.gp, rd.p}, [4]*desc[K, V]{rd.gpInfo, rd.pInfo}, 2)

	case ri.p == rd.p:
		// Special case 3 (lines 63-64): both positions share a parent
		// (in distinct slots). The new leaf joins the insertion point;
		// the parent either contracts into that join (two children —
		// always, at span 1) or gets a copy with the removed slot
		// cleared and the insertion slot rejoined. ri.node is reused,
		// not copied, exactly as the paper reuses the sibling: its new
		// position is inside a fresh node, so no slot ever repeats a
		// child value.
		if t.helpConflict(rd.gpInfo, rd.pInfo, nodeInfoI, nil) {
			return nil
		}
		sub := t.makeInternal(ri.node, newLeafVal(vi, rd.node.val), nodeInfoI)
		if sub == nil {
			return nil
		}
		live, _ := rd.p.census(sd)
		np := sub
		if live == 2 {
			if rd.gp == nil {
				// The root never contracts (it always keeps both dummy
				// subtrees); a two-child census here is torn. Retry.
				return nil
			}
		} else {
			si := t.slotOf(vi, rd.p.label.Len())
			np = t.copyNodeSet(rd.p, g, sd, nil, si, sub)
		}
		return t.oneCAS(rd.gp, rd.p, np,
			[4]*node[K, V]{rd.p, rd.gp}, [4]*desc[K, V]{rd.pInfo, rd.gpInfo}, flagCount(rd.gp, 2))

	case ri.node == rd.gp:
		// Special case 4 (lines 65-70): the insertion displaces the
		// removed key's grandparent. Rebuild rd.gp with the delete
		// applied to its rd.p slot, then join that copy with the new
		// leaf and swing it in over rd.gp.
		if t.helpConflict(ri.pInfo, rd.gpInfo, rd.pInfo, nil) {
			return nil
		}
		res, _ := t.afterDelete(rd.p, sd, g)
		sp := t.slotOf(rd.p.label, rd.gp.label.Len())
		gpAfter := t.copyNodeSet(rd.gp, g, sp, res, -1, nil)
		newNodeI := t.makeInternal(gpAfter, newLeafVal(vi, rd.node.val), nodeInfoI)
		if newNodeI == nil {
			return nil
		}
		return t.newDesc(
			[4]*node[K, V]{ri.p, rd.gp, rd.p},
			[4]*desc[K, V]{ri.pInfo, rd.gpInfo, rd.pInfo}, 3,
			[2]*node[K, V]{ri.p}, 1,
			[2]*node[K, V]{ri.p}, [2]*node[K, V]{ri.node},
			[2]*node[K, V]{newNodeI}, 1,
			nil)

	case ri.p != rd.p:
		return t.replaceGeneral(vi, rd, ri, nodeInfoI, sd, g)
	}
	// ri.node == rd.p but ri.p != rd.gp: the two searches saw different
	// parents for the same node — stale positions; retry.
	return nil
}

// flagCount returns n when gp is non-nil and n-1 otherwise: the fused
// cases flag one node fewer when the CAS target is the root pointer.
// Callers list gp LAST in the flag array — occupancy counts truncate
// from the end, so dropping the count drops exactly the nil entry
// (newDesc sorts the survivors anyway).
func flagCount[K keys.Key[K], V any](gp *node[K, V], n int) int {
	if gp == nil {
		return n - 1
	}
	return n
}

// replaceGeneral builds the descriptor for the paper's general case
// (lines 51-57): the insertion and deletion touch disjoint parts of the
// trie, so the update flags the union of what insert(vi) and delete(vd)
// would flag, marks the old leaf, and performs two child CASes — insert
// first, then delete. rmvLeaf is the old key's leaf; once the first child
// CAS lands, searches reaching that leaf see it as logically removed.
func (t *Trie[K, V]) replaceGeneral(vi K, rd, ri searchResult[K, V], nodeInfoI *desc[K, V], sd int, g uint64) *desc[K, V] {
	// Help-before-build: every info value this case will hand to newDesc
	// is checked up front, so no subtree is constructed for an attempt
	// that is already doomed by a conflicting update.
	if t.helpConflict(rd.gpInfo, rd.pInfo, ri.pInfo, nodeInfoI) {
		return nil
	}
	res, contracted := t.afterDelete(rd.p, sd, g)
	if contracted && rd.gp == nil {
		// The root never contracts; torn census, retry.
		return nil
	}
	// The fresh leaf for the new key inherits the removed leaf's value:
	// rd.node is immutable, so reading its payload here is consistent
	// with the leaf the descriptor marks as rmvLeaf.
	newNodeI := t.makeInternal(t.copyNode(ri.node, g), newLeafVal(vi, rd.node.val), nodeInfoI) // lines 52-53
	if newNodeI == nil {
		return nil
	}
	if !ri.node.leaf {
		// Line 55: the displaced insertion point is internal, so it too
		// must be flagged (permanently — it leaves the trie).
		if rd.gp == nil {
			return t.newDesc(
				[4]*node[K, V]{rd.p, ri.p, ri.node},
				[4]*desc[K, V]{rd.pInfo, ri.pInfo, nodeInfoI}, 3,
				[2]*node[K, V]{ri.p}, 1,
				[2]*node[K, V]{ri.p, nil},
				[2]*node[K, V]{ri.node, rd.p},
				[2]*node[K, V]{newNodeI, res}, 2,
				rd.node)
		}
		return t.newDesc(
			[4]*node[K, V]{rd.gp, rd.p, ri.p, ri.node},
			[4]*desc[K, V]{rd.gpInfo, rd.pInfo, ri.pInfo, nodeInfoI}, 4,
			[2]*node[K, V]{rd.gp, ri.p}, 2,
			[2]*node[K, V]{ri.p, rd.gp},
			[2]*node[K, V]{ri.node, rd.p},
			[2]*node[K, V]{newNodeI, res}, 2,
			rd.node)
	}
	// Line 57: leaf insertion point.
	if rd.gp == nil {
		return t.newDesc(
			[4]*node[K, V]{rd.p, ri.p},
			[4]*desc[K, V]{rd.pInfo, ri.pInfo}, 2,
			[2]*node[K, V]{ri.p}, 1,
			[2]*node[K, V]{ri.p, nil},
			[2]*node[K, V]{ri.node, rd.p},
			[2]*node[K, V]{newNodeI, res}, 2,
			rd.node)
	}
	return t.newDesc(
		[4]*node[K, V]{rd.gp, rd.p, ri.p},
		[4]*desc[K, V]{rd.gpInfo, rd.pInfo, ri.pInfo}, 3,
		[2]*node[K, V]{rd.gp, ri.p}, 2,
		[2]*node[K, V]{ri.p, rd.gp},
		[2]*node[K, V]{ri.node, rd.p},
		[2]*node[K, V]{newNodeI, res}, 2,
		rd.node)
}

// replaceFill builds the descriptor when the insertion point is an empty
// slot si of the wide node ri.p (span > 1 only): the insert half is a
// wholesale replacement of ri.p by a filled copy — tryFill's shape — and
// the overlap analysis is reworked around which node that replacement
// removes (ri.p) and which node its CAS targets (ri.gp, or the root).
func (t *Trie[K, V]) replaceFill(vi K, rd, ri searchResult[K, V]) *desc[K, V] {
	g := t.curGen()
	sd := t.slotOf(rd.node.label, rd.p.label.Len())
	si := t.slotOf(vi, ri.p.label.Len())

	switch {
	case ri.p == rd.p:
		// Fill and clear land on the same node: one copy realizes both.
		// The child count is unchanged, so no contraction can be due
		// regardless of how many children rd.p has.
		if t.helpConflict(rd.gpInfo, rd.pInfo, nil, nil) {
			return nil
		}
		np := t.copyNodeSet(rd.p, g, sd, nil, si, newLeafVal(vi, rd.node.val))
		return t.oneCAS(rd.gp, rd.p, np,
			[4]*node[K, V]{rd.p, rd.gp}, [4]*desc[K, V]{rd.pInfo, rd.gpInfo}, flagCount(rd.gp, 2))

	case ri.gp == rd.p:
		// The delete replaces rd.p, whose child ri.p holds the empty
		// slot: fold the filled copy of ri.p into the delete's result.
		if t.helpConflict(rd.gpInfo, rd.pInfo, ri.pInfo, nil) {
			return nil
		}
		fp := t.copyNodeSet(ri.p, g, si, newLeafVal(vi, rd.node.val), -1, nil)
		live, sib := rd.p.census(sd)
		np := fp
		if live == 2 {
			// rd.p contracts; its lone surviving child must be ri.p,
			// whose filled copy takes its place. Anything else is a torn
			// census (retry; the flag CAS would have failed anyway).
			if sib != ri.p || rd.gp == nil {
				return nil
			}
		} else {
			sp := t.slotOf(ri.p.label, rd.p.label.Len())
			np = t.copyNodeSet(rd.p, g, sd, nil, sp, fp)
		}
		return t.oneCAS(rd.gp, rd.p, np,
			[4]*node[K, V]{rd.p, ri.p, rd.gp},
			[4]*desc[K, V]{rd.pInfo, ri.pInfo, rd.gpInfo}, flagCount(rd.gp, 3))

	case ri.p == rd.gp:
		// The fill replaces ri.p, which the delete's CAS would target:
		// fold the delete's result into the filled copy's rd.p slot.
		if t.helpConflict(ri.gpInfo, ri.pInfo, rd.pInfo, nil) {
			return nil
		}
		res, _ := t.afterDelete(rd.p, sd, g)
		sp := t.slotOf(rd.p.label, ri.p.label.Len())
		np := t.copyNodeSet(ri.p, g, si, newLeafVal(vi, rd.node.val), sp, res)
		return t.oneCAS(ri.gp, ri.p, np,
			[4]*node[K, V]{ri.p, rd.p, ri.gp},
			[4]*desc[K, V]{ri.pInfo, rd.pInfo, ri.gpInfo}, flagCount(ri.gp, 3))
	}

	// Disjoint: two CASes, fill first (pNode[0] — the linearization
	// point, after which rd.node reads as logically removed), then the
	// delete. ri.p and rd.p both leave the trie and stay flagged; the two
	// CAS targets survive and are unflagged. At most one target can be
	// the root (both would mean ri.p == rd.p, handled above).
	if t.helpConflict(ri.gpInfo, ri.pInfo, rd.gpInfo, rd.pInfo) {
		return nil
	}
	res, contracted := t.afterDelete(rd.p, sd, g)
	if contracted && rd.gp == nil {
		return nil
	}
	np := t.copyNodeSet(ri.p, g, si, newLeafVal(vi, rd.node.val), -1, nil)

	var flag [4]*node[K, V]
	var fi [4]*desc[K, V]
	var unflag [2]*node[K, V]
	nFlag, nUnflag := 0, 0
	if ri.gp != nil {
		flag[nFlag], fi[nFlag] = ri.gp, ri.gpInfo
		nFlag++
		unflag[nUnflag] = ri.gp
		nUnflag++
	}
	flag[nFlag], fi[nFlag] = ri.p, ri.pInfo
	nFlag++
	if rd.gp != nil {
		flag[nFlag], fi[nFlag] = rd.gp, rd.gpInfo
		nFlag++
		unflag[nUnflag] = rd.gp
		nUnflag++
	}
	flag[nFlag], fi[nFlag] = rd.p, rd.pInfo
	nFlag++
	return t.newDesc(
		flag, fi, nFlag,
		unflag, nUnflag,
		[2]*node[K, V]{ri.gp, rd.gp},
		[2]*node[K, V]{ri.p, rd.p},
		[2]*node[K, V]{np, res}, 2,
		rd.node)
}

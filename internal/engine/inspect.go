package engine

import (
	"fmt"
	"strings"
)

// The helpers in this file traverse the trie without synchronization and
// are intended for quiescent use (tests, examples, offline inspection).
// Called concurrently with updates they are safe — they only read — but
// may observe a mix of states.

// Len returns the number of live user keys, read from the atomic
// counter maintained on the insert/delete paths (see the count field):
// O(1), allocation-free, exact at quiescence, and under concurrent
// mutation stale by at most the number of in-flight operations. Unlike
// the rest of this file it is safe and meaningful under full
// concurrency.
//
// The raw counter can dip below zero transiently (an insert past its
// linearization point but before its bump, whose key a concurrent
// delete already removed and counted); clamp so callers can use Len as
// a capacity without a makeslice panic.
func (t *Trie[K, V]) Len() int {
	if n := t.count.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// Size returns the number of live user keys in the set by traversal.
// Tests compare it against Len to validate the counter.
func (t *Trie[K, V]) Size() int {
	n := 0
	var zero K
	t.AscendKV(zero, func(K, V) bool {
		n++
		return true
	})
	return n
}

// Validate checks the structural invariants of the trie and returns the
// first violation found, or nil. It must be called at quiescence (no
// concurrent updates). Checked invariants, from the paper's proof,
// generalized to 2^s-child nodes:
//
//   - Invariant 7: if slot i of x holds y then x.label · digit(i) is a
//     prefix of y.label; hence labels strictly lengthen along every path.
//   - Every internal node has at least two non-nil children (Lemma 4;
//     exactly two at span 1), each in the slot its label's digit selects.
//   - Internal labels are a whole number of digits long.
//   - The two dummy leaves are the extreme leaves of the trie.
//   - Leaf labels appear in strictly increasing order.
//   - No reachable node is flagged (Lemma 64: after every help call
//     returns, no reachable node's info is a Flag).
//
// extra, when non-nil, runs on every reachable node so instantiations
// can add key-space-specific checks (canonical representation, full
// leaf length, ...); its first error is reported.
func (t *Trie[K, V]) Validate(extra func(label K, leaf bool) error) error {
	root := t.root.Load()
	if root.leaf || root.label.Len() != 0 {
		return fmt.Errorf("root must be an internal node with empty label")
	}
	var leaves []K
	if err := t.validateNode(root, extra, &leaves); err != nil {
		return err
	}
	if len(leaves) < 2 {
		return fmt.Errorf("trie must always hold the two dummy leaves, found %d leaves", len(leaves))
	}
	for i := 1; i < len(leaves); i++ {
		if leaves[i-1].Compare(leaves[i]) >= 0 {
			return fmt.Errorf("leaf labels out of order: %v before %v", leaves[i-1], leaves[i])
		}
	}
	if !leaves[0].Equal(t.dummyMin) {
		return fmt.Errorf("leftmost leaf %v is not the minimum dummy", leaves[0])
	}
	if !leaves[len(leaves)-1].Equal(t.dummyMax) {
		return fmt.Errorf("rightmost leaf %v is not the maximum dummy", leaves[len(leaves)-1])
	}
	return nil
}

func (t *Trie[K, V]) validateNode(n *node[K, V], extra func(K, bool) error, leaves *[]K) error {
	if n.info.Load().flagged() {
		return fmt.Errorf("reachable node %v is flagged at quiescence", n.label)
	}
	if extra != nil {
		if err := extra(n.label, n.leaf); err != nil {
			return err
		}
	}
	if n.leaf {
		*leaves = append(*leaves, n.label)
		return nil
	}
	if n.label.Len()%t.span != 0 {
		return fmt.Errorf("internal label %v is not a whole number of %d-bit digits", n.label, t.span)
	}
	want := 2
	if t.span > 1 {
		want = 1 << t.span
	}
	if n.fanout() != want {
		return fmt.Errorf("internal node %v has fanout %d, want %d", n.label, n.fanout(), want)
	}
	live := 0
	for idx := 0; idx < n.fanout(); idx++ {
		c := n.kid(idx).Load()
		if c == nil {
			continue
		}
		live++
		if c.label.Len() <= n.label.Len() {
			return fmt.Errorf("child label length %d not longer than parent's %d", c.label.Len(), n.label.Len())
		}
		if !n.label.IsPrefixOf(c.label) {
			return fmt.Errorf("parent label %v is not a prefix of child label %v", n.label, c.label)
		}
		if t.slotOf(c.label, n.label.Len()) != idx {
			return fmt.Errorf("child in slot %d of %v has wrong branch digit", idx, n.label)
		}
		if err := t.validateNode(c, extra, leaves); err != nil {
			return err
		}
	}
	if live < 2 {
		return fmt.Errorf("internal node %v has %d non-nil children, want >= 2", n.label, live)
	}
	return nil
}

// Dump renders the trie structure as an indented multi-line string, for
// debugging and the triecli tool; format renders one node (the
// instantiation knows how to decode labels and name its dummies).
// Quiescent use only.
func (t *Trie[K, V]) Dump(format func(label K, leaf bool) string) string {
	var sb strings.Builder
	t.dumpNode(&sb, t.root.Load(), format, 0)
	return sb.String()
}

func (t *Trie[K, V]) dumpNode(sb *strings.Builder, n *node[K, V], format func(K, bool) string, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(format(n.label, n.leaf))
	sb.WriteByte('\n')
	if n.leaf {
		return
	}
	for idx := 0; idx < n.fanout(); idx++ {
		if c := n.kid(idx).Load(); c != nil {
			t.dumpNode(sb, c, format, depth+1)
		}
	}
}

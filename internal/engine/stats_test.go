package engine

import (
	"sync"
	"testing"
)

// TestStatsIdleZero: a trie that has only ever seen uncontended, single-
// goroutine operations must show zero on every contention counter. Help is
// nonzero (every update IS a help invocation) but the conflict-only
// counters stay at zero — the property the /metrics "zero on idle" check
// relies on.
func TestStatsIdleZero(t *testing.T) {
	tr := mustNew(t, 16)
	for k := uint64(0); k < 200; k++ {
		tr.Insert(k)
	}
	for k := uint64(0); k < 100; k++ {
		tr.Delete(k)
	}
	s := tr.StatsSnapshot()
	if s.Help == 0 {
		t.Fatal("Help must count initiator invocations")
	}
	if s.HelpAssist != 0 || s.ChildCASFail != 0 || s.FlagBacktrack != 0 ||
		s.OpRetries != 0 || s.SnapshotRenewals != 0 {
		t.Fatalf("contention counters must be zero single-threaded: %+v", s)
	}
	if s.Depth.Count == 0 {
		t.Fatal("Depth must have recorded mutator descents")
	}
}

// TestStatsHelperCounted: stall an insert after flagging; the operation
// that completes it must be counted as an assist (HelpAssist >= 1) — the
// deterministic version of "nonzero under contention".
func TestStatsHelperCounted(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(100)
	before := tr.StatsSnapshot()
	if before.HelpAssist != 0 {
		t.Fatalf("HelpAssist before = %d, want 0", before.HelpAssist)
	}
	stalled, release := stallFirst(t)

	done := make(chan bool)
	go func() { done <- tr.Insert(101) }()
	<-stalled

	if !tr.Insert(102) {
		t.Fatal("helper insert failed")
	}
	close(release)
	<-done

	s := tr.StatsSnapshot()
	if s.HelpAssist == 0 {
		t.Fatal("completing a stalled update must bump HelpAssist")
	}
	if s.OpRetries == 0 {
		t.Fatal("the helping insert retried after assisting; OpRetries must show it")
	}
}

// TestStatsSnapshotRenewals: after Snapshot bumps the generation, the
// first mutation down a stale path renews nodes and the counter must say
// so.
func TestStatsSnapshotRenewals(t *testing.T) {
	tr := mustNew(t, 16)
	for k := uint64(0); k < 64; k++ {
		tr.Insert(k)
	}
	if got := tr.StatsSnapshot().SnapshotRenewals; got != 0 {
		t.Fatalf("SnapshotRenewals before snapshot = %d, want 0", got)
	}
	_ = tr.Snapshot()
	tr.Insert(1000)
	if got := tr.StatsSnapshot().SnapshotRenewals; got == 0 {
		t.Fatal("post-snapshot mutation must renew at least one stale node")
	}
}

// TestStatsMerge exercises the per-shard → aggregate path.
func TestStatsMerge(t *testing.T) {
	a := mustNew(t, 16)
	b := mustNew(t, 16)
	a.Insert(1)
	a.Insert(2)
	b.Insert(3)
	sa, sb := a.StatsSnapshot(), b.StatsSnapshot()
	want := sa.Help + sb.Help
	sa.Merge(sb)
	if sa.Help != want {
		t.Fatalf("merged Help = %d, want %d", sa.Help, want)
	}
	if sa.Depth.Count != a.StatsSnapshot().Depth.Count+b.StatsSnapshot().Depth.Count {
		t.Fatal("merged Depth count mismatch")
	}
}

// TestStatsUnderContention: racy, sanity-level — hammering one small key
// range from many goroutines must light up the contention counters on a
// multi-core box. Skipped on a single CPU where the race never happens.
func TestStatsUnderContention(t *testing.T) {
	tr := mustNew(t, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				k := uint64(i % 16)
				if g%2 == 0 {
					tr.Insert(k)
				} else {
					tr.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	s := tr.StatsSnapshot()
	t.Logf("contention stats: %+v", s)
	if s.Help == 0 || s.Depth.Count == 0 {
		t.Fatal("basic counters must be nonzero after mutations")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

package engine

import "nbtrie/internal/keys"

// O(1) point-in-time snapshots via generation stamps, the Ctrie line's
// signature trick (Prokopec et al., "Cache-Aware Lock-Free Concurrent
// Hash Tries") adapted to the paper's flag/help protocol.
//
// Every node carries the generation it was created in. Snapshot bumps
// the generation by swapping in a fresh root (sharing both children)
// under a brief barrier: it waits for every in-flight mutation to drain
// and keeps new ones out for the O(1) swap. From then on the two roots
// diverge by copy-on-write: before a mutation may flag an internal node
// or swing one of its child pointers, the node must belong to the
// current generation; searchMut renews stale internal nodes along its
// descent path by splicing in a current-generation copy through the
// ordinary flag protocol (flag the current-generation parent and the
// stale node, one child CAS, exactly the descriptor shape of an insert
// displacing an internal node). The stale original stays reachable from
// the snapshot root and — like every node an update removes — stays
// flagged forever, so no later operation can ever mutate it.
//
// Why the drained structure is frozen. After Snapshot returns, the only
// code that can touch a pre-snapshot node is a late helper of an update
// that already completed (its owner drained before the snapshot).
// Helping is idempotent-by-CAS: the completed update's child CASes
// already moved every pointer away from the helper's expected old
// values, and child pointers never repeat a value (fresh nodes only),
// so every late CAS fails harmlessly. The single non-CAS write in the
// protocol — a general-case replace storing its Flag into the removed
// leaf's info — can only re-store the same value for a drained update;
// for a post-snapshot replace it lands on a leaf that may be shared
// with the snapshot, which is why the snapshot's logical-removal check
// is generation-aware (removed): a Flag whose pNode[0] belongs to a
// newer generation describes a removal that happened after this
// snapshot and is ignored.
//
// Mutating operations that find no stale node on their path pay only
// the snapMu read lock (two uncontended atomic ops, no allocation);
// the pinned allocs/op budgets are unchanged. Renewal cost is paid once
// per stale path segment after a snapshot and amortizes away, exactly
// as in Ctries.

// Snapshot is a read-only point-in-time view of a Trie, obtained in
// O(1) from Trie.Snapshot. It shares structure with the live trie:
// nothing reachable from its root can change after Snapshot returns, so
// all methods are safe for unrestricted concurrent use (against each
// other and against live-trie updates) and always observe exactly the
// state the trie held at the snapshot's linearization point.
type Snapshot[K keys.Key[K], V any] struct {
	t    *Trie[K, V]
	root *node[K, V]
	gen  uint64
	n    int64
}

// Snapshot returns a read-only view of the trie at the moment of the
// call, in O(1) time and allocation independent of the trie's size: it
// waits for in-flight mutations to drain (the barrier is bounded by the
// duration of individual lock-free operations, not by the map), swaps
// in a fresh root carrying the next generation, and captures the entry
// count. Subsequent mutations copy-on-write stale paths, so the
// returned view is frozen while the live trie moves on.
func (t *Trie[K, V]) Snapshot() *Snapshot[K, V] {
	t.snapMu.Lock()
	old := t.root.Load()
	t.root.Store(t.copyNode(old, old.gen+1))
	n := t.count.Load()
	t.snapMu.Unlock()
	if n < 0 {
		n = 0
	}
	return &Snapshot[K, V]{t: t, root: old, gen: old.gen, n: n}
}

// Gen returns the snapshot's generation (diagnostics and tests).
func (s *Snapshot[K, V]) Gen() uint64 { return s.gen }

// Len returns the number of live user keys at the snapshot's
// linearization point. Exact: the count was read inside the barrier,
// with no mutation in flight.
func (s *Snapshot[K, V]) Len() int { return int(s.n) }

// removed is the snapshot's generation-aware version of
// logicallyRemoved: a Flag planted on a leaf by a replace whose flagged
// parents belong to a generation newer than the snapshot describes a
// removal that happened after the snapshot was taken, so the leaf was
// live in this view. (A replace from this or an older generation
// completed before the snapshot's barrier released — the barrier drains
// all in-flight mutations — so its leaf was already physically
// unlinked and cannot be reached from the snapshot root at all; the
// structural check below is kept as a defensive fallback.)
func (s *Snapshot[K, V]) removed(i *desc[K, V]) bool {
	if !i.flagged() {
		return false
	}
	p, old := i.pNode[0], i.oldChild[0]
	if p == nil {
		// Root-CAS sentinel: the replace's insert half swapped the root
		// node itself. The displaced root (oldChild[0], always internal)
		// carries the generation the replace ran in.
		if old.gen > s.gen {
			return false
		}
		return s.t.root.Load() != old
	}
	if p.gen > s.gen {
		return false
	}
	for j := 0; j < p.fanout(); j++ {
		if p.kid(j).Load() == old {
			return false
		}
	}
	return true
}

// search is the read-only descent over the frozen structure.
func (s *Snapshot[K, V]) search(v K) (n *node[K, V], rmvd bool) {
	n = s.root
	for n != nil && !n.leaf && n.label.Len() < v.Len() && n.label.IsPrefixOf(v) {
		n = n.kid(s.t.slotOf(v, n.label.Len())).Load()
	}
	if n != nil && n.leaf && !s.t.skipRmvdCheck {
		rmvd = s.removed(n.info.Load())
	}
	return n, rmvd
}

// Contains reports whether the encoded key v was in the set at the
// snapshot point.
func (s *Snapshot[K, V]) Contains(v K) bool {
	n, rmvd := s.search(v)
	return keyInTrie(n, v, rmvd)
}

// Load returns the value bound to v at the snapshot point.
func (s *Snapshot[K, V]) Load(v K) (V, bool) {
	n, rmvd := s.search(v)
	if !keyInTrie(n, v, rmvd) {
		var zero V
		return zero, false
	}
	return n.val, true
}

// AscendKV calls fn on every (key, value) pair with key >= from that was
// live at the snapshot point, in ascending encoded-key order, until fn
// returns false. Unlike the live trie's iterator this is a true
// consistent cut: the structure cannot change mid-walk.
func (s *Snapshot[K, V]) AscendKV(from K, fn func(k K, val V) bool) {
	s.ascendNode(s.root, from, fn)
}

func (s *Snapshot[K, V]) ascendNode(n *node[K, V], v K, fn func(K, V) bool) bool {
	if n.leaf {
		if n.label.Compare(v) >= 0 && s.usable(n) {
			return fn(n.label, n.val)
		}
		return true
	}
	for idx := 0; idx < n.fanout(); idx++ {
		c := n.kid(idx).Load()
		if c == nil || allBelow(c, v) {
			continue
		}
		if !s.ascendNode(c, v, fn) {
			return false
		}
	}
	return true
}

// usable mirrors Trie.usableLeaf with the generation-aware removal check.
func (s *Snapshot[K, V]) usable(n *node[K, V]) bool {
	if n.label.Equal(s.t.dummyMin) || n.label.Equal(s.t.dummyMax) {
		return false
	}
	return !s.removed(n.info.Load())
}

// searchMut is search for mutating operations: the same descent, but it
// renews any stale internal node it meets — splicing a current-generation
// copy over it through the flag protocol — and restarts, so the returned
// position's gp, p and node (when internal) all carry the current
// generation and are safe to flag and child-CAS without ever mutating a
// node a snapshot can reach. Must be called with snapMu held for read.
func (t *Trie[K, V]) searchMut(v K) searchResult[K, V] {
	root := t.root.Load()
	g := root.gen
restart:
	for {
		var r searchResult[K, V]
		var depth uint64
		n := root
		for n != nil && !n.leaf && n.label.Len() < v.Len() && n.label.IsPrefixOf(v) {
			r.gp, r.gpInfo = r.p, r.pInfo
			r.p, r.pInfo = n, n.info.Load()
			n = r.p.kid(t.slotOf(v, r.p.label.Len())).Load()
			depth++
			if n != nil && !n.leaf && n.gen != g {
				t.renewChild(r.p, r.pInfo, n, g)
				continue restart
			}
		}
		r.node = n
		t.stats.Depth.Record(depth)
		if n != nil && n.leaf && !t.skipRmvdCheck {
			r.rmvd = t.logicallyRemoved(n.info.Load())
		}
		return r
	}
}

// renewChild splices a current-generation copy of the stale internal
// node c over c itself, under its current-generation parent p: flag p
// (expecting the info captured during the descent) and c, one child CAS
// from c to the copy, unflag p. The copy shares c's children, so a
// renewal is O(1); c leaves the live trie and — like every removed node
// — stays flagged forever, which both keeps later operations off it and
// preserves its child pointers for the snapshots that still reach it.
// c's info is captured before its children are read, so the flag CAS on
// c certifies the copy is faithful (the same Lemma 31 argument as
// copyNode). On any conflict the attempt is abandoned after helping;
// the caller re-descends either way.
func (t *Trie[K, V]) renewChild(p *node[K, V], pInfo *desc[K, V], c *node[K, V], g uint64) {
	t.stats.SnapshotRenewals.Inc()
	cInfo := c.info.Load()
	if t.helpConflict(pInfo, cInfo, nil, nil) {
		return
	}
	nc := t.copyNode(c, g)
	i := t.newDesc(
		[4]*node[K, V]{p, c}, [4]*desc[K, V]{pInfo, cInfo}, 2,
		[2]*node[K, V]{p}, 1,
		[2]*node[K, V]{p}, [2]*node[K, V]{c}, [2]*node[K, V]{nc}, 1,
		nil)
	if i != nil {
		t.help(i)
	}
}

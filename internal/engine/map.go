package engine

// Map operations: the trie as a linearizable K → V map. Every leaf
// carries an immutable, unboxed value payload, so a value update is a
// structural update — the leaf is replaced wholesale by a fresh leaf via
// the same flag/child-CAS protocol as the paper's Replace special case 1
// (overwrite the leaf at the insertion point). That keeps all of the
// paper's invariants intact: child pointers only ever swing to freshly
// allocated nodes (no ABA), the flag on the leaf's parent serializes the
// overwrite against any concurrent insert/delete/replace touching the
// same pointer, and the overwrite is linearized at its single child CAS.
//
// Reads (Load) reuse the read-only search and add only a field read of
// the immutable leaf; they perform no CAS and write no shared memory.
//
// CompareAndSwap and CompareAndDelete compare values with Go interface
// equality, mirroring sync.Map: the old value must be comparable or the
// comparison panics. Because leaf values are immutable, a value read at
// search time is still the leaf's value when the parent flag CAS
// succeeds — the flag CAS aborts if the parent's info changed since the
// search, and the paper's Lemma 31 argument then pins the child pointer
// (and hence the leaf) for the duration.

// Store binds the encoded key v to val, inserting the key if absent and
// overwriting the value if present (lock-free upsert).
func (t *Trie[K, V]) Store(v K, val V) {
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for first := true; ; first = false {
		if !first {
			t.stats.OpRetries.Inc()
		}
		r := t.searchMut(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			if t.tryInsert(v, val, r) {
				t.count.Add(1)
				return
			}
			continue
		}
		if t.tryOverwrite(v, val, r) {
			return
		}
	}
}

// LoadOrStore returns the value bound to v if present (loaded == true);
// otherwise it stores val and returns it. The load path performs no CAS.
func (t *Trie[K, V]) LoadOrStore(v K, val V) (actual V, loaded bool) {
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for first := true; ; first = false {
		if !first {
			t.stats.OpRetries.Inc()
		}
		r := t.searchMut(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return r.node.val, true
		}
		if t.tryInsert(v, val, r) {
			t.count.Add(1)
			return val, false
		}
	}
}

// valuesEqual compares two values with Go interface equality (the
// sync.Map contract): it panics when the values are not comparable. The
// conversions to any may box, but only on the CompareAndSwap /
// CompareAndDelete paths, which mutate and hence allocate anyway.
func valuesEqual[V any](a, b V) bool {
	return any(a) == any(b)
}

// CompareAndSwap swaps the value bound to v from old to new if the stored
// value equals old (interface equality; old must be comparable). It
// returns true iff the swap happened.
func (t *Trie[K, V]) CompareAndSwap(v K, old, new V) bool {
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for first := true; ; first = false {
		if !first {
			t.stats.OpRetries.Inc()
		}
		r := t.searchMut(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if !valuesEqual(r.node.val, old) {
			return false
		}
		if t.tryOverwrite(v, new, r) {
			return true
		}
	}
}

// CompareAndDelete deletes v if its stored value equals old (interface
// equality; old must be comparable). It returns true iff the key was
// deleted.
func (t *Trie[K, V]) CompareAndDelete(v K, old V) bool {
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for first := true; ; first = false {
		if !first {
			t.stats.OpRetries.Inc()
		}
		r := t.searchMut(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if !valuesEqual(r.node.val, old) {
			return false
		}
		// The value check above is still valid when the delete commits:
		// tryDelete's flag CAS on the parent fails unless the parent's
		// info is unchanged since the search, which pins the leaf we
		// inspected (a concurrent overwrite must flag the same parent).
		if t.tryDelete(v, r) {
			t.count.Add(-1)
			return true
		}
	}
}

// DeleteFunc deletes v if cond returns true for its stored value. It
// returns true iff the key was deleted. The condition runs on the value
// read at search time; as with CompareAndDelete, the flag CAS on the
// parent pins that leaf until the delete commits, so the value the
// condition approved is the value that is removed. cond may be called
// multiple times (once per retry) and must be side-effect free.
func (t *Trie[K, V]) DeleteFunc(v K, cond func(V) bool) bool {
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for first := true; ; first = false {
		if !first {
			t.stats.OpRetries.Inc()
		}
		r := t.searchMut(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if !cond(r.node.val) {
			return false
		}
		if t.tryDelete(v, r) {
			t.count.Add(-1)
			return true
		}
	}
}

// tryOverwrite attempts to replace the live leaf r.node (holding encoded
// key v) with a fresh leaf carrying val — the descriptor shape of the
// paper's Replace special case 1: flag the parent, one child CAS from the
// old leaf to the new. False means re-search and retry. The fresh leaf is
// only built once the captured parent info is known not to be a Flag.
func (t *Trie[K, V]) tryOverwrite(v K, val V, r searchResult[K, V]) bool {
	if t.helpConflict(r.pInfo, nil, nil, nil) {
		return false
	}
	i := t.newDesc(
		[4]*node[K, V]{r.p}, [4]*desc[K, V]{r.pInfo}, 1,
		[2]*node[K, V]{r.p}, 1,
		[2]*node[K, V]{r.p}, [2]*node[K, V]{r.node},
		[2]*node[K, V]{newLeafVal(v, val)}, 1,
		nil)
	return i != nil && t.help(i)
}

package engine

// testHookAfterFlagging, when non-nil, runs inside help after all flag
// CASes succeeded and before the child CASes. It receives the *desc[K, V]
// of the stalled update as an any (a package-level hook cannot be
// generic). It exists only for failure-injection tests (stalling an
// operation at its most delicate point); it is nil in production and must
// only be set at quiescence. Because the engine is instantiated by every
// trie in the repository, the helping tests driven through this hook run
// once, here, rather than per instantiation.
var testHookAfterFlagging func(any)

// help carries out the real work of the update described by the Flag
// descriptor I (lines 86-106). It may be called by the update's own
// process or by any process that encounters I while flagging; all calls
// perform the same CAS sequence, and the algorithm guarantees each step
// succeeds exactly once regardless of how many helpers race.
//
// The steps, in order: flag every node in I.flag (label order); if all
// succeeded, publish flagDone, flag the removed leaf (general-case
// replace only), and perform the child CASes; finally unflag survivors
// (success) or backtrack the flags (failure). The update is linearized at
// its first successful child CAS.
func (t *Trie[K, V]) help(i *desc[K, V]) bool {
	t.stats.Help.Inc()
	doChildCAS := true
	for j := 0; j < int(i.nFlag) && doChildCAS; j++ {
		n := i.flag[j]
		n.info.CompareAndSwap(i.oldInfo[j], i) // flag CAS (line 90)
		doChildCAS = n.info.Load() == i
	}

	if doChildCAS {
		if h := testHookAfterFlagging; h != nil {
			// Failure-injection point for tests: a process can be stalled
			// here, "crashed" with its flags planted, to prove that other
			// processes finish its update for it.
			h(i)
		}
		i.flagDone.Store(true)
		if i.rmvLeaf != nil {
			// Flag the leaf to be removed (line 95). A plain store
			// suffices in the paper because only helpers of I reach here
			// and they all write the same value; Lemma 40 shows no other
			// Flag can land on this leaf first.
			i.rmvLeaf.info.Store(i)
		}
		for j := 0; j < int(i.nPNode); j++ {
			p, nc := i.pNode[j], i.newChild[j]
			if p == nil {
				// Root-CAS sentinel: the update replaces the root node
				// itself (a slot fill or clear on a root with no parent
				// to re-point). Safe against Snapshot's root swap because
				// every mutation, helpers included, runs under the snapMu
				// read lock.
				if !t.root.CompareAndSwap(i.oldChild[j], nc) {
					t.stats.ChildCASFail.Inc()
				}
				continue
			}
			// The slot is computed from the new child's label: every new
			// child extends p's label, and it routes through the same slot
			// as the old child it replaces (copies keep the old label;
			// fresh joins and leaves share the old child's digit, or the
			// search would not have reached it).
			k := t.slotOf(nc.label, p.label.Len())
			if !p.kid(k).CompareAndSwap(i.oldChild[j], nc) { // child CAS (line 98)
				// A failed child CAS here means a racing helper of this
				// same descriptor already swung the pointer — a pure
				// contention signal, never a correctness event.
				t.stats.ChildCASFail.Inc()
			}
		}
	}

	if i.flagDone.Load() {
		for j := int(i.nUnflag) - 1; j >= 0; j-- {
			// The fresh Unflag per CAS is required for no-ABA; see
			// newUnflag.
			i.unflag[j].info.CompareAndSwap(i, newUnflag[K, V]()) // unflag CAS (line 101)
		}
		return true
	}
	t.stats.FlagBacktrack.Inc()
	for j := int(i.nFlag) - 1; j >= 0; j-- {
		i.flag[j].info.CompareAndSwap(i, newUnflag[K, V]()) // backtrack CAS (line 105)
	}
	return false
}

// newDesc builds the Flag descriptor for an update (the paper's newFlag,
// lines 107-116). It returns nil — after helping the conflicting update,
// if any — when some node to be flagged is already owned by another
// operation, or when the same node was captured twice with different info
// values (its children may have changed between the two reads). Otherwise
// it deduplicates and sorts the flag set by label in place and packs the
// descriptor.
//
// The parameters are fixed-size arrays with explicit occupancy counts,
// passed by value: they live on the caller's stack, are mutated locally
// (dedup and sort happen in place on the parameter copies), and the only
// heap allocation on any path is the descriptor itself on success. The
// earlier slice-based signature allocated up to nine slices per attempt —
// including every retry of a contended update.
func (t *Trie[K, V]) newDesc(
	flag [4]*node[K, V], oldInfo [4]*desc[K, V], nFlag int,
	unflag [2]*node[K, V], nUnflag int,
	pNode, oldChild, newChild [2]*node[K, V], nPNode int,
	rmvLeaf *node[K, V],
) *desc[K, V] {
	// Lines 108-111: if any captured info value is a Flag, that update is
	// incomplete; help it and make the caller retry from scratch.
	for j := 0; j < nFlag; j++ {
		if oldInfo[j].flagged() {
			t.stats.HelpAssist.Inc()
			t.help(oldInfo[j])
			return nil
		}
	}

	// Lines 112-114: deduplicate in place, keeping first occurrences.
	// Duplicates with disagreeing old values mean the node changed
	// between our two reads of it; retry.
	m := 0
	for a := 0; a < nFlag; a++ {
		dup := false
		for b := 0; b < m; b++ {
			if flag[b] == flag[a] {
				if oldInfo[b] != oldInfo[a] {
					return nil
				}
				dup = true
				break
			}
		}
		if !dup {
			flag[m], oldInfo[m] = flag[a], oldInfo[a]
			m++
		}
	}
	nFlag = m

	m = 0
	for a := 0; a < nUnflag; a++ {
		dup := false
		for b := 0; b < m; b++ {
			if unflag[b] == unflag[a] {
				dup = true
				break
			}
		}
		if !dup {
			unflag[m] = unflag[a]
			m++
		}
	}
	nUnflag = m

	// Line 115: sort the flag set (and its old values) by label so every
	// operation flags nodes in the same global order. Reachable nodes
	// have distinct labels (Lemma 9), and K's Compare orders distinct
	// labels totally, which is what the progress proof's "blaming"
	// argument needs.
	for a := 1; a < nFlag; a++ {
		for b := a; b > 0 && flag[b].label.Compare(flag[b-1].label) < 0; b-- {
			flag[b], flag[b-1] = flag[b-1], flag[b]
			oldInfo[b], oldInfo[b-1] = oldInfo[b-1], oldInfo[b]
		}
	}

	return &desc[K, V]{
		kind:     kindFlag,
		nFlag:    uint8(nFlag),
		nUnflag:  uint8(nUnflag),
		nPNode:   uint8(nPNode),
		flag:     flag,
		oldInfo:  oldInfo,
		unflag:   unflag,
		pNode:    pNode,
		oldChild: oldChild,
		newChild: newChild,
		rmvLeaf:  rmvLeaf,
	}
}

// helpConflict helps the first flagged descriptor among the captured info
// values, reporting whether one was found. Update attempts call it before
// building any speculative nodes: a flagged capture dooms the attempt
// (newDesc would reject it), so helping-then-retrying here avoids
// constructing leaves and copies that would be thrown away. nil entries
// are skipped.
func (t *Trie[K, V]) helpConflict(i1, i2, i3, i4 *desc[K, V]) bool {
	for _, d := range [...]*desc[K, V]{i1, i2, i3, i4} {
		if d != nil && d.flagged() {
			t.stats.HelpAssist.Inc()
			t.help(d)
			return true
		}
	}
	return false
}

// makeInternal is the paper's createNode (lines 117-121): it returns a new
// internal node whose label is the longest common prefix of the two
// labels floored to a digit boundary and whose children sit in their
// digit slots (the two digits differ: the floored prefix's next digit
// contains the first differing bit, and same-length digits that share a
// prefix up to a differing bit differ as integers). If either label is a
// prefix of the other no such node exists; in that case the captured
// info value is helped if it is a Flag (the usual cause: n1 is a stale
// copy of a node another update is replacing) and nil is returned so the
// caller retries.
func (t *Trie[K, V]) makeInternal(n1, n2 *node[K, V], info *desc[K, V]) *node[K, V] {
	if n1.label.IsPrefixOf(n2.label) || n2.label.IsPrefixOf(n1.label) {
		if info != nil && info.flagged() {
			t.stats.HelpAssist.Inc()
			t.help(info)
		}
		return nil
	}
	cp := n1.label.CommonDigitPrefix(n2.label, t.span) // shorter than both labels
	nn := t.newNode(cp, t.curGen())
	nn.kid(t.slotOf(n1.label, cp.Len())).Store(n1)
	nn.kid(t.slotOf(n2.label, cp.Len())).Store(n2)
	return nn
}

// Insert adds the encoded key v to the set, returning false if it was
// already present (lines 20-32). The leaf (or internal node) at the
// insertion point is replaced by a new internal node whose children are a
// fresh leaf for v and a fresh copy of the displaced node; copying avoids
// ABA on child pointers. When the displaced node is internal it is
// flagged permanently, since it leaves the trie.
func (t *Trie[K, V]) Insert(v K) bool {
	var zero V
	return t.InsertValue(v, zero)
}

// InsertValue is Insert with a value payload bound to the fresh leaf.
func (t *Trie[K, V]) InsertValue(v K, val V) bool {
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for first := true; ; first = false {
		if !first {
			t.stats.OpRetries.Inc()
		}
		r := t.searchMut(v)
		if keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if t.tryInsert(v, val, r) {
			t.count.Add(1)
			return true
		}
	}
}

// tryInsert attempts one round of the insert protocol for the encoded
// key v at the position located by r; it returns false when the caller
// must re-search and retry (conflicting update helped, or CAS lost).
func (t *Trie[K, V]) tryInsert(v K, val V, r searchResult[K, V]) bool {
	n := r.node
	if n == nil {
		return t.tryFill(v, val, r)
	}
	nodeInfo := n.info.Load() // line 25: info before children
	// Deferred speculative construction: a flagged capture means newDesc
	// would reject this attempt anyway, so help the conflicting update
	// and retry before building the fresh leaf, the copy of n and the
	// joining internal node only to discard them.
	if t.helpConflict(r.pInfo, nodeInfo, nil, nil) {
		return false
	}
	newNode := t.makeInternal(t.copyNode(n, t.curGen()), newLeafVal(v, val), nodeInfo)
	if newNode == nil {
		return false
	}
	var i *desc[K, V]
	if !n.leaf {
		i = t.newDesc(
			[4]*node[K, V]{r.p, n}, [4]*desc[K, V]{r.pInfo, nodeInfo}, 2,
			[2]*node[K, V]{r.p}, 1,
			[2]*node[K, V]{r.p}, [2]*node[K, V]{n}, [2]*node[K, V]{newNode}, 1,
			nil)
	} else {
		i = t.newDesc(
			[4]*node[K, V]{r.p}, [4]*desc[K, V]{r.pInfo}, 1,
			[2]*node[K, V]{r.p}, 1,
			[2]*node[K, V]{r.p}, [2]*node[K, V]{n}, [2]*node[K, V]{newNode}, 1,
			nil)
	}
	return i != nil && t.help(i)
}

// tryFill handles the insert case that exists only for wide nodes: the
// search ended at an empty slot of r.p. The slot is never CASed from nil
// in place (nil repeats as an expected value — ABA); instead a fresh copy
// of r.p with the slot holding v's leaf replaces r.p wholesale under
// r.gp, or under the root pointer when r.p is the root. r.p leaves the
// trie and stays flagged, exactly like every removed node.
func (t *Trie[K, V]) tryFill(v K, val V, r searchResult[K, V]) bool {
	if t.helpConflict(r.gpInfo, r.pInfo, nil, nil) {
		return false
	}
	si := t.slotOf(v, r.p.label.Len())
	np := t.copyNodeSet(r.p, t.curGen(), si, newLeafVal(v, val), -1, nil)
	var i *desc[K, V]
	if r.gp == nil {
		i = t.newDesc(
			[4]*node[K, V]{r.p}, [4]*desc[K, V]{r.pInfo}, 1,
			[2]*node[K, V]{}, 0,
			[2]*node[K, V]{nil}, [2]*node[K, V]{r.p}, [2]*node[K, V]{np}, 1,
			nil)
	} else {
		i = t.newDesc(
			[4]*node[K, V]{r.gp, r.p}, [4]*desc[K, V]{r.gpInfo, r.pInfo}, 2,
			[2]*node[K, V]{r.gp}, 1,
			[2]*node[K, V]{r.gp}, [2]*node[K, V]{r.p}, [2]*node[K, V]{np}, 1,
			nil)
	}
	return i != nil && t.help(i)
}

// Delete removes the encoded key v from the set, returning false if it
// was absent (lines 33-41). The parent of v's leaf is replaced by the
// leaf's sibling; both the grandparent and the parent are flagged, and
// the parent — which leaves the trie — stays flagged forever.
func (t *Trie[K, V]) Delete(v K) bool {
	t.snapMu.RLock()
	defer t.snapMu.RUnlock()
	for first := true; ; first = false {
		if !first {
			t.stats.OpRetries.Inc()
		}
		r := t.searchMut(v)
		if !keyInTrie(r.node, v, r.rmvd) {
			return false
		}
		if t.tryDelete(v, r) {
			t.count.Add(-1)
			return true
		}
	}
}

// tryDelete attempts one round of the delete protocol for the encoded
// key v located by r; false means re-search and retry. A parent left
// with one child contracts into its sibling as in the paper; a wide
// parent with three or more children instead gets a fresh copy with the
// slot cleared, swung in under the grandparent (or the root pointer when
// the parent is the root — the root always keeps at least the two dummy
// subtrees, so it is never contracted away).
func (t *Trie[K, V]) tryDelete(v K, r searchResult[K, V]) bool {
	sd := t.slotOf(v, r.p.label.Len())
	live, sib := r.p.census(sd)
	if live == 2 {
		if r.gp == nil {
			// A binary parent that is the root cannot hold a user leaf:
			// its two children are the dummy subtrees, and a wide root
			// with a direct user leaf has at least three children (the
			// leaf's digit is shared with no other key, and each dummy
			// anchors its own slot). Unreachable from Delete; retry
			// defensively before any read through r.p, so a malformed
			// searchResult (white-box callers, future refactors) fails
			// closed instead of dereferencing an uncertified position.
			return false
		}
		i := t.newDesc(
			[4]*node[K, V]{r.gp, r.p}, [4]*desc[K, V]{r.gpInfo, r.pInfo}, 2,
			[2]*node[K, V]{r.gp}, 1,
			[2]*node[K, V]{r.gp}, [2]*node[K, V]{r.p}, [2]*node[K, V]{sib}, 1,
			nil)
		return i != nil && t.help(i)
	}
	// Slot clear: wide parent keeps >= 2 children after the removal.
	if t.helpConflict(r.gpInfo, r.pInfo, nil, nil) {
		return false
	}
	np := t.copyNodeSet(r.p, t.curGen(), sd, nil, -1, nil)
	var i *desc[K, V]
	if r.gp == nil {
		i = t.newDesc(
			[4]*node[K, V]{r.p}, [4]*desc[K, V]{r.pInfo}, 1,
			[2]*node[K, V]{}, 0,
			[2]*node[K, V]{nil}, [2]*node[K, V]{r.p}, [2]*node[K, V]{np}, 1,
			nil)
	} else {
		i = t.newDesc(
			[4]*node[K, V]{r.gp, r.p}, [4]*desc[K, V]{r.gpInfo, r.pInfo}, 2,
			[2]*node[K, V]{r.gp}, 1,
			[2]*node[K, V]{r.gp}, [2]*node[K, V]{r.p}, [2]*node[K, V]{np}, 1,
			nil)
	}
	return i != nil && t.help(i)
}
